//===- bench/bench_vm.cpp -------------------------------------------------===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
//
// E11 — the register bytecode VM vs the tree-walking interpreter. Three
// engine configurations per workload: the interpreter (checks on, the
// differential baseline), the VM with reservation-check ops compiled in
// (checked), and the VM with every check compiled out on the strength of
// Theorems 6.1/6.2 (erased). The erased VM is the shipping
// configuration; the acceptance bar is >=2x over the interpreter on the
// bench_runtime hot loops and an allocation-free steady-state dispatch
// loop (allocs_per_iter, measured differentially).
//
// Counters exported per benchmark (into BENCH_pr7.json via
// tools/bench.sh): vm_instructions, ic_hits, ic_misses, checks_erased,
// and the spin workload adds allocs_per_iter.
//
//===----------------------------------------------------------------------===//

#include <atomic>
#include <cstdlib>
#include <new>

// Allocation counting for the dispatch-loop claim: the binary replaces
// global operator new so the differential spin measurement sees every
// heap allocation.
static std::atomic<uint64_t> GHeapAllocs{0};

void *operator new(std::size_t Size) {
  GHeapAllocs.fetch_add(1, std::memory_order_relaxed);
  if (void *P = std::malloc(Size ? Size : 1))
    return P;
  throw std::bad_alloc();
}
void *operator new[](std::size_t Size) { return ::operator new(Size); }
void operator delete(void *P) noexcept { std::free(P); }
void operator delete(void *P, std::size_t) noexcept { std::free(P); }
void operator delete[](void *P) noexcept { std::free(P); }
void operator delete[](void *P, std::size_t) noexcept { std::free(P); }

#include "driver/Driver.h"
#include "runtime/Machine.h"
#include "vm/Compiler.h"

#include <benchmark/benchmark.h>

using namespace fearless;

namespace {

enum class Engine { Interp, VmChecked, VmErased };

/// Pure dispatch cost: a counted loop with no heap traffic. The VM
/// retires it as five bytecode ops per iteration; the interpreter
/// re-walks the while/assign/binop trees.
const char *SpinProgram = R"prog(
def drive(n : int) : int {
  let i = 0;
  while (i < n) { i = i + 1 };
  i
}
)prog";

/// The bench_runtime sll hot loop: build a list, then sum it repeatedly
/// (field reads through the inline caches dominate).
const char *SllDriver = R"prog(
def drive(n, rounds : int) : int {
  let l = sll_new();
  let i = 0;
  while (i < n) {
    let p = new data(i) in { push_front(l, p) };
    i = i + 1
  };
  let total = 0;
  let r = 0;
  while (r < rounds) {
    total = total + sum(l);
    r = r + 1
  };
  total
}
)prog";

void runWorkload(benchmark::State &State, const std::string &Source,
                 std::vector<Value> Args, Engine E) {
  Expected<Pipeline> P = compile(Source);
  if (!P) {
    State.SkipWithError(P.error().Message.c_str());
    return;
  }
  vm::CompiledProgram Code;
  if (E != Engine::Interp) {
    vm::CompileOptions VO;
    VO.EmitChecks = E == Engine::VmChecked;
    Expected<vm::CompiledProgram> C = vm::compileProgram(P->Checked, VO);
    if (!C) {
      State.SkipWithError(C.error().Message.c_str());
      return;
    }
    Code = std::move(*C);
  }
  Symbol Drive = P->Prog->Names.intern("drive");
  RuntimeMetrics Last;
  for (auto _ : State) {
    MachineOptions Opts;
    if (E != Engine::Interp)
      Opts.VmCode = &Code;
    Machine M(P->Checked, Opts);
    M.spawn(Drive, Args);
    Expected<MachineSummary> R = M.run();
    if (!R) {
      State.SkipWithError(R.error().Message.c_str());
      return;
    }
    benchmark::DoNotOptimize(R->ThreadResults[0]);
    Last = M.metrics();
  }
  State.counters["vm_instructions"] =
      static_cast<double>(Last.VmInstructions);
  State.counters["ic_hits"] = static_cast<double>(Last.IcHits);
  State.counters["ic_misses"] = static_cast<double>(Last.IcMisses);
  State.counters["checks_erased"] = static_cast<double>(Last.ChecksErased);
  State.counters["reservation_checks"] =
      static_cast<double>(Last.ReservationChecks);
  if (Last.VmInstructions)
    State.SetItemsProcessed(State.iterations() *
                            static_cast<int64_t>(Last.VmInstructions));
}

void BM_Spin_Interp(benchmark::State &State) {
  runWorkload(State, SpinProgram, {Value::intVal(State.range(0))},
              Engine::Interp);
}
BENCHMARK(BM_Spin_Interp)->Arg(4096)->Arg(65536);

void BM_Spin_VmChecked(benchmark::State &State) {
  runWorkload(State, SpinProgram, {Value::intVal(State.range(0))},
              Engine::VmChecked);
}
BENCHMARK(BM_Spin_VmChecked)->Arg(4096)->Arg(65536);

void BM_Spin_VmErased(benchmark::State &State) {
  runWorkload(State, SpinProgram, {Value::intVal(State.range(0))},
              Engine::VmErased);
}
BENCHMARK(BM_Spin_VmErased)->Arg(4096)->Arg(65536);

void BM_SllWalk_Interp(benchmark::State &State) {
  runWorkload(State, std::string(programs::SllSuite) + SllDriver,
              {Value::intVal(State.range(0)), Value::intVal(50)},
              Engine::Interp);
}
BENCHMARK(BM_SllWalk_Interp)->Arg(64)->Arg(256)->Arg(1024);

void BM_SllWalk_VmChecked(benchmark::State &State) {
  runWorkload(State, std::string(programs::SllSuite) + SllDriver,
              {Value::intVal(State.range(0)), Value::intVal(50)},
              Engine::VmChecked);
}
BENCHMARK(BM_SllWalk_VmChecked)->Arg(64)->Arg(256)->Arg(1024);

void BM_SllWalk_VmErased(benchmark::State &State) {
  runWorkload(State, std::string(programs::SllSuite) + SllDriver,
              {Value::intVal(State.range(0)), Value::intVal(50)},
              Engine::VmErased);
}
BENCHMARK(BM_SllWalk_VmErased)->Arg(64)->Arg(256)->Arg(1024);

/// Allocation count of one erased-VM spin run (UINT64_MAX on failure).
uint64_t spinAllocs(Pipeline &P, const vm::CompiledProgram &Code,
                    int64_t N) {
  MachineOptions Opts;
  Opts.VmCode = &Code;
  Machine M(P.Checked, Opts);
  M.spawn(P.Prog->Names.intern("drive"), {Value::intVal(N)});
  uint64_t Before = GHeapAllocs.load(std::memory_order_relaxed);
  Expected<MachineSummary> R = M.run();
  uint64_t After = GHeapAllocs.load(std::memory_order_relaxed);
  if (!R || !(R->ThreadResults[0] == Value::intVal(N)))
    return UINT64_MAX;
  return After - Before;
}

/// `allocs_per_iter` for the steady-state dispatch loop, measured
/// differentially: two runs that differ only in loop count; the delta
/// divided by the extra iterations is the per-iteration allocation cost.
/// The acceptance bar is 0 — registers live in a preallocated file and
/// the hot loop never touches the allocator.
void BM_VmDispatchAllocs(benchmark::State &State) {
  Expected<Pipeline> P = compile(SpinProgram);
  if (!P) {
    State.SkipWithError(P.error().Message.c_str());
    return;
  }
  Expected<vm::CompiledProgram> Code = vm::compileProgram(P->Checked);
  if (!Code) {
    State.SkipWithError(Code.error().Message.c_str());
    return;
  }
  double AllocsPerIter = 0;
  for (auto _ : State) {
    uint64_t Small = spinAllocs(*P, *Code, 4000);
    uint64_t Large = spinAllocs(*P, *Code, 16000);
    if (Small == UINT64_MAX || Large == UINT64_MAX) {
      State.SkipWithError("spin workload failed");
      return;
    }
    AllocsPerIter =
        static_cast<double>(Large - Small) / (16000 - 4000);
    benchmark::DoNotOptimize(AllocsPerIter);
  }
  State.counters["allocs_per_iter"] = AllocsPerIter;
}
BENCHMARK(BM_VmDispatchAllocs)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
