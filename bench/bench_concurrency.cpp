//===- bench/bench_concurrency.cpp ----------------------------------------===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
//
// E7 — fearless concurrency (§7): producer/consumer pipelines over real
// OS threads with the dynamic checks erased and zero per-object locking
// (only the channels synchronize). Throughput should scale with producer
// count until the single consumer saturates.
//
//===----------------------------------------------------------------------===//

#include "concurrency/ParallelExec.h"
#include "driver/Driver.h"
#include "runtime/Machine.h"

#include <benchmark/benchmark.h>

using namespace fearless;

namespace {

/// Exports the executor's per-run RuntimeMetrics as benchmark counters,
/// so `--benchmark_format=json` yields step/send/recv/disconnected
/// counters comparable across revisions (BENCH_*.json).
void exportMetrics(benchmark::State &State, const RuntimeMetrics &M) {
  State.counters["steps"] = static_cast<double>(M.Steps);
  State.counters["sends"] = static_cast<double>(M.Sends);
  State.counters["recvs"] = static_cast<double>(M.Recvs);
  State.counters["allocations"] = static_cast<double>(M.Allocations);
  State.counters["disconnect_checks"] =
      static_cast<double>(M.DisconnectChecks);
  State.counters["channel_peak_depth"] =
      static_cast<double>(M.ChannelPeakDepth);
  State.counters["threads_cancelled"] =
      static_cast<double>(M.ThreadsCancelled);
}

void BM_ParallelItemPipeline(benchmark::State &State) {
  Expected<Pipeline> P = compile(programs::MessagePassing);
  if (!P) {
    State.SkipWithError(P.error().Message.c_str());
    return;
  }
  int Producers = static_cast<int>(State.range(0));
  const int PerProducer = 2000;
  Symbol Producer = P->Prog->Names.intern("producer");
  Symbol Consumer = P->Prog->Names.intern("consumer");
  RuntimeMetrics LastRun;
  for (auto _ : State) {
    ParallelExec Exec(P->Checked);
    for (int I = 0; I < Producers; ++I)
      Exec.spawn(Producer, {Value::intVal(PerProducer)});
    Exec.spawn(Consumer, {Value::intVal(Producers * PerProducer)});
    Expected<std::vector<Value>> R = Exec.run();
    if (!R) {
      State.SkipWithError(R.error().Message.c_str());
      return;
    }
    benchmark::DoNotOptimize((*R).back());
    LastRun = Exec.metrics();
  }
  State.SetItemsProcessed(State.iterations() * Producers * PerProducer);
  State.counters["producers"] = Producers;
  exportMetrics(State, LastRun);
}
BENCHMARK(BM_ParallelItemPipeline)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_ParallelListPipeline(benchmark::State &State) {
  Expected<Pipeline> P = compile(programs::MessagePassing);
  if (!P) {
    State.SkipWithError(P.error().Message.c_str());
    return;
  }
  int Producers = static_cast<int>(State.range(0));
  const int Lists = 200;
  const int Chunk = 32;
  Symbol Producer = P->Prog->Names.intern("producer_lists");
  Symbol Consumer = P->Prog->Names.intern("consumer_lists");
  RuntimeMetrics LastRun;
  for (auto _ : State) {
    ParallelExec Exec(P->Checked);
    for (int I = 0; I < Producers; ++I)
      Exec.spawn(Producer, {Value::intVal(Lists), Value::intVal(Chunk)});
    Exec.spawn(Consumer, {Value::intVal(Producers * Lists)});
    Expected<std::vector<Value>> R = Exec.run();
    if (!R) {
      State.SkipWithError(R.error().Message.c_str());
      return;
    }
    benchmark::DoNotOptimize((*R).back());
    LastRun = Exec.metrics();
  }
  State.SetItemsProcessed(State.iterations() * Producers * Lists * Chunk);
  State.counters["producers"] = Producers;
  exportMetrics(State, LastRun);
}
BENCHMARK(BM_ParallelListPipeline)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/// Baseline: the same single-item pipeline on the deterministic abstract
/// machine (checks on, one interpreter, no parallelism).
void BM_AbstractMachineItemPipeline(benchmark::State &State) {
  Expected<Pipeline> P = compile(programs::MessagePassing);
  if (!P) {
    State.SkipWithError(P.error().Message.c_str());
    return;
  }
  const int Items = 2000;
  Symbol Producer = P->Prog->Names.intern("producer");
  Symbol Consumer = P->Prog->Names.intern("consumer");
  RuntimeMetrics LastRun;
  for (auto _ : State) {
    Machine M(P->Checked);
    M.spawn(Producer, {Value::intVal(Items)});
    M.spawn(Consumer, {Value::intVal(Items)});
    Expected<MachineSummary> R = M.run();
    if (!R) {
      State.SkipWithError(R.error().Message.c_str());
      return;
    }
    benchmark::DoNotOptimize(R->Steps);
    LastRun = M.metrics();
  }
  State.SetItemsProcessed(State.iterations() * Items);
  exportMetrics(State, LastRun);
}
BENCHMARK(BM_AbstractMachineItemPipeline);

} // namespace

BENCHMARK_MAIN();
