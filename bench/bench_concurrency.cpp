//===- bench/bench_concurrency.cpp ----------------------------------------===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
//
// E7 — fearless concurrency (§7): producer/consumer pipelines over real
// OS threads with the dynamic checks erased and zero per-object locking
// (only the channels synchronize). Throughput should scale with producer
// count until the single consumer saturates.
//
//===----------------------------------------------------------------------===//

#include "concurrency/ParallelExec.h"
#include "driver/Driver.h"
#include "runtime/Machine.h"
#include "support/FaultInjector.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

using namespace fearless;

namespace {

/// Exports the executor's per-run RuntimeMetrics as benchmark counters,
/// so `--benchmark_format=json` yields step/send/recv/disconnected
/// counters comparable across revisions (BENCH_*.json).
void exportMetrics(benchmark::State &State, const RuntimeMetrics &M) {
  State.counters["steps"] = static_cast<double>(M.Steps);
  State.counters["sends"] = static_cast<double>(M.Sends);
  State.counters["recvs"] = static_cast<double>(M.Recvs);
  State.counters["allocations"] = static_cast<double>(M.Allocations);
  State.counters["disconnect_checks"] =
      static_cast<double>(M.DisconnectChecks);
  State.counters["channel_peak_depth"] =
      static_cast<double>(M.ChannelPeakDepth);
  State.counters["threads_cancelled"] =
      static_cast<double>(M.ThreadsCancelled);
}

void BM_ParallelItemPipeline(benchmark::State &State) {
  Expected<Pipeline> P = compile(programs::MessagePassing);
  if (!P) {
    State.SkipWithError(P.error().Message.c_str());
    return;
  }
  int Producers = static_cast<int>(State.range(0));
  const int PerProducer = 2000;
  Symbol Producer = P->Prog->Names.intern("producer");
  Symbol Consumer = P->Prog->Names.intern("consumer");
  RuntimeMetrics LastRun;
  for (auto _ : State) {
    ParallelExec Exec(P->Checked);
    for (int I = 0; I < Producers; ++I)
      Exec.spawn(Producer, {Value::intVal(PerProducer)});
    Exec.spawn(Consumer, {Value::intVal(Producers * PerProducer)});
    Expected<std::vector<Value>> R = Exec.run();
    if (!R) {
      State.SkipWithError(R.error().Message.c_str());
      return;
    }
    benchmark::DoNotOptimize((*R).back());
    LastRun = Exec.metrics();
  }
  State.SetItemsProcessed(State.iterations() * Producers * PerProducer);
  State.counters["producers"] = Producers;
  exportMetrics(State, LastRun);
}
BENCHMARK(BM_ParallelItemPipeline)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_ParallelListPipeline(benchmark::State &State) {
  Expected<Pipeline> P = compile(programs::MessagePassing);
  if (!P) {
    State.SkipWithError(P.error().Message.c_str());
    return;
  }
  int Producers = static_cast<int>(State.range(0));
  const int Lists = 200;
  const int Chunk = 32;
  Symbol Producer = P->Prog->Names.intern("producer_lists");
  Symbol Consumer = P->Prog->Names.intern("consumer_lists");
  RuntimeMetrics LastRun;
  for (auto _ : State) {
    ParallelExec Exec(P->Checked);
    for (int I = 0; I < Producers; ++I)
      Exec.spawn(Producer, {Value::intVal(Lists), Value::intVal(Chunk)});
    Exec.spawn(Consumer, {Value::intVal(Producers * Lists)});
    Expected<std::vector<Value>> R = Exec.run();
    if (!R) {
      State.SkipWithError(R.error().Message.c_str());
      return;
    }
    benchmark::DoNotOptimize((*R).back());
    LastRun = Exec.metrics();
  }
  State.SetItemsProcessed(State.iterations() * Producers * Lists * Chunk);
  State.counters["producers"] = Producers;
  exportMetrics(State, LastRun);
}
BENCHMARK(BM_ParallelListPipeline)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/// Baseline: the same single-item pipeline on the deterministic abstract
/// machine (checks on, one interpreter, no parallelism).
void BM_AbstractMachineItemPipeline(benchmark::State &State) {
  Expected<Pipeline> P = compile(programs::MessagePassing);
  if (!P) {
    State.SkipWithError(P.error().Message.c_str());
    return;
  }
  const int Items = 2000;
  Symbol Producer = P->Prog->Names.intern("producer");
  Symbol Consumer = P->Prog->Names.intern("consumer");
  RuntimeMetrics LastRun;
  for (auto _ : State) {
    Machine M(P->Checked);
    M.spawn(Producer, {Value::intVal(Items)});
    M.spawn(Consumer, {Value::intVal(Items)});
    Expected<MachineSummary> R = M.run();
    if (!R) {
      State.SkipWithError(R.error().Message.c_str());
      return;
    }
    benchmark::DoNotOptimize(R->Steps);
    LastRun = M.metrics();
  }
  State.SetItemsProcessed(State.iterations() * Items);
  exportMetrics(State, LastRun);
}
BENCHMARK(BM_AbstractMachineItemPipeline);

/// FEARLESS_TRACE_OUT hook: after the benchmarks, run one traced
/// item-pipeline (4 producers, 1 consumer) and write its merged Chrome
/// trace to the named file. Gives `tools/bench.sh` / users a one-command
/// way to capture a real multi-thread trace from the E7 workload:
///
///   FEARLESS_TRACE_OUT=pipeline.json ./bench_concurrency
///
/// FEARLESS_TRACE_ITEMS overrides the per-producer item count (default
/// 500; docs/trace_example.json was captured with 50 to keep it small).
int writeTracedPipeline(const char *Path) {
  Expected<Pipeline> P = compile(programs::MessagePassing);
  if (!P) {
    std::fprintf(stderr, "bench_concurrency: trace workload: %s\n",
                 P.error().Message.c_str());
    return 1;
  }
  const int Producers = 4;
  int PerProducer = 500;
  if (const char *Items = std::getenv("FEARLESS_TRACE_ITEMS"))
    PerProducer = std::max(1, std::atoi(Items));
  TraceSession Trace;
  ParallelExecOptions Opts;
  Opts.Trace = &Trace;
  ParallelExec Exec(P->Checked, Opts);
  Symbol Producer = P->Prog->Names.intern("producer");
  Symbol Consumer = P->Prog->Names.intern("consumer");
  for (int I = 0; I < Producers; ++I)
    Exec.spawn(Producer, {Value::intVal(PerProducer)});
  Exec.spawn(Consumer, {Value::intVal(Producers * PerProducer)});
  Expected<std::vector<Value>> R = Exec.run();
  if (!R) {
    std::fprintf(stderr, "bench_concurrency: trace workload: %s\n",
                 R.error().Message.c_str());
    return 1;
  }
  std::string Error;
  if (!Trace.writeChromeJson(Path, Error)) {
    std::fprintf(stderr, "bench_concurrency: %s\n", Error.c_str());
    return 1;
  }
  std::fprintf(stderr,
               "bench_concurrency: wrote trace of %d-thread pipeline "
               "to %s (%zu buffers)\n",
               Producers + 1, Path, Trace.bufferCount());
  return 0;
}

/// FEARLESS_FAULTS hook: after the benchmarks, run the item pipeline
/// once fault-free (baseline) and once under the env-configured fault
/// plan with supervision enabled, and check the chaos contract: the run
/// must terminate (no hang), and when every fault was absorbed by
/// restarts the results must be bit-identical to the baseline. CI's
/// chaos smoke loops this over seeds:
///
///   FEARLESS_FAULTS='thread.start=prob:0.3,seed=7' \
///     ./bench_concurrency --benchmark_filter=NONE
int runChaosPipeline() {
  std::string FaultError;
  std::unique_ptr<FaultInjector> Faults =
      FaultInjector::fromEnv(&FaultError);
  if (!Faults) {
    std::fprintf(stderr, "bench_concurrency: %s\n",
                 FaultError.empty() ? "FEARLESS_FAULTS: empty spec"
                                    : FaultError.c_str());
    return 1;
  }
  Expected<Pipeline> P = compile(programs::MessagePassing);
  if (!P) {
    std::fprintf(stderr, "bench_concurrency: chaos workload: %s\n",
                 P.error().Message.c_str());
    return 1;
  }
  const int Producers = 2;
  const int PerProducer = 200;
  auto Spawn = [&](ParallelExec &Exec) {
    Symbol Producer = P->Prog->Names.intern("producer");
    Symbol Consumer = P->Prog->Names.intern("consumer");
    for (int I = 0; I < Producers; ++I)
      Exec.spawn(Producer, {Value::intVal(PerProducer)});
    Exec.spawn(Consumer, {Value::intVal(Producers * PerProducer)});
  };

  ParallelExec Baseline(P->Checked);
  Spawn(Baseline);
  Expected<std::vector<Value>> Want = Baseline.run();
  if (!Want) {
    std::fprintf(stderr, "bench_concurrency: chaos baseline: %s\n",
                 Want.error().Message.c_str());
    return 1;
  }

  ParallelExecOptions Opts;
  Opts.Faults = Faults.get();
  Opts.MaxRestarts = 4;
  Opts.RestartBackoffMillis = 1;
  Opts.RestartBackoffCapMillis = 8;
  Opts.RestartSeed = Faults->plan().Seed;
  // Safety net: a supervision or shutdown bug becomes a diagnostic, not
  // a hung CI job.
  Opts.WatchdogMillis = 60'000;
  ParallelExec Exec(P->Checked, Opts);
  Spawn(Exec);
  Expected<std::vector<Value>> R = Exec.run();
  const RuntimeMetrics &M = Exec.metrics();
  if (M.WatchdogFired) {
    std::fprintf(stderr,
                 "bench_concurrency: chaos run hung (watchdog fired)\n");
    return 1;
  }
  if (R.hasValue()) {
    if (M.FaultsEscalated != 0) {
      std::fprintf(stderr, "bench_concurrency: chaos run succeeded but "
                           "reports escalated faults\n");
      return 1;
    }
    for (size_t I = 0; I < Want->size(); ++I)
      if (!((*R)[I] == (*Want)[I])) {
        std::fprintf(stderr,
                     "bench_concurrency: recovered chaos run diverged "
                     "from baseline at thread %zu\n",
                     I);
        return 1;
      }
  }
  std::fprintf(stderr,
               "bench_concurrency: chaos ok (%s; injected=%llu "
               "restarted=%llu escalated=%llu)\n",
               R.hasValue() ? (M.ThreadsRestarted ? "recovered" : "clean")
                           : "aborted cleanly",
               static_cast<unsigned long long>(M.FaultsInjected),
               static_cast<unsigned long long>(M.ThreadsRestarted),
               static_cast<unsigned long long>(M.FaultsEscalated));
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (const char *TraceOut = std::getenv("FEARLESS_TRACE_OUT"))
    return writeTracedPipeline(TraceOut);
  if (std::getenv("FEARLESS_FAULTS"))
    return runChaosPipeline();
  return 0;
}
