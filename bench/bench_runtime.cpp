//===- bench/bench_runtime.cpp --------------------------------------------===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
//
// E6 — §3.2: the dynamic reservation checks are *erasable* for well-typed
// programs (Theorems 6.1/6.2 guarantee they never fire). This bench
// measures the interpreter with the checks on vs erased over the list and
// tree workloads: the delta is exactly the cost a naive implementation
// would pay, and what the type system saves.
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "runtime/Machine.h"

#include <benchmark/benchmark.h>

using namespace fearless;

namespace {

/// Workload drivers written in the surface language.
const char *SllDriver = R"prog(
def drive(n, rounds : int) : int {
  let l = sll_new();
  let i = 0;
  while (i < n) {
    let p = new data(i) in { push_front(l, p) };
    i = i + 1
  };
  let total = 0;
  let r = 0;
  while (r < rounds) {
    total = total + sum(l);
    r = r + 1
  };
  total
}
)prog";

const char *RbDriver = R"prog(
def drive(n : int) : int {
  let t = rb_new();
  let i = 0;
  while (i < n) {
    let k = (i * 7919) % 100000;
    let p = new data(k) in { rb_insert(t, p) };
    i = i + 1
  };
  rb_size(t)
}
)prog";

void runWorkload(benchmark::State &State, const std::string &Source,
                 std::vector<Value> Args, bool Checks) {
  Expected<Pipeline> P = compile(Source);
  if (!P) {
    State.SkipWithError(P.error().Message.c_str());
    return;
  }
  Symbol Drive = P->Prog->Names.intern("drive");
  uint64_t Steps = 0;
  for (auto _ : State) {
    MachineOptions Opts;
    Opts.CheckReservations = Checks;
    Machine M(P->Checked, Opts);
    M.spawn(Drive, Args);
    Expected<MachineSummary> R = M.run();
    if (!R) {
      State.SkipWithError(R.error().Message.c_str());
      return;
    }
    benchmark::DoNotOptimize(R->ThreadResults[0]);
    Steps = R->Steps;
  }
  State.counters["steps"] = static_cast<double>(Steps);
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(Steps));
}

void BM_SllWalk_ChecksOn(benchmark::State &State) {
  runWorkload(State, std::string(programs::SllSuite) + SllDriver,
              {Value::intVal(State.range(0)), Value::intVal(50)}, true);
}
BENCHMARK(BM_SllWalk_ChecksOn)->Arg(64)->Arg(256)->Arg(1024);

void BM_SllWalk_ChecksErased(benchmark::State &State) {
  runWorkload(State, std::string(programs::SllSuite) + SllDriver,
              {Value::intVal(State.range(0)), Value::intVal(50)}, false);
}
BENCHMARK(BM_SllWalk_ChecksErased)->Arg(64)->Arg(256)->Arg(1024);

void BM_RbInsert_ChecksOn(benchmark::State &State) {
  runWorkload(State, std::string(programs::RedBlackTree) + RbDriver,
              {Value::intVal(State.range(0))}, true);
}
BENCHMARK(BM_RbInsert_ChecksOn)->Arg(256)->Arg(1024)->Arg(4096);

void BM_RbInsert_ChecksErased(benchmark::State &State) {
  runWorkload(State, std::string(programs::RedBlackTree) + RbDriver,
              {Value::intVal(State.range(0))}, false);
}
BENCHMARK(BM_RbInsert_ChecksErased)->Arg(256)->Arg(1024)->Arg(4096);

//===----------------------------------------------------------------------===//
// dll remove_tail microbench: the Fig. 5 operation end to end, including
// its run-time `if disconnected`.
//===----------------------------------------------------------------------===//

const char *DllDriver = R"prog(
def drive(n : int) : int {
  let l = dll_new();
  let i = 0;
  while (i < n) {
    let p = new data(i) in { push_front(l, p) };
    i = i + 1
  };
  let removed = 0;
  let j = 0;
  while (j < n) {
    let d = let some(x) = remove_tail(l) in { 1 } else { 0 };
    removed = removed + d;
    j = j + 1
  };
  removed
}
)prog";

void BM_DllRemoveTail(benchmark::State &State) {
  runWorkload(State, std::string(programs::DllSuite) + DllDriver,
              {Value::intVal(State.range(0))}, true);
}
BENCHMARK(BM_DllRemoveTail)->Arg(64)->Arg(512);

} // namespace

BENCHMARK_MAIN();
