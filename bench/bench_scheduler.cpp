//===- bench/bench_scheduler.cpp ------------------------------------------===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
//
// E8 — the M:N work-stealing task scheduler: language-thread counts far
// beyond what thread-per-spawn can host. A 100,000-language-thread token
// ring runs to completion on a fixed pool (at most 2x hardware threads);
// fan-in/fan-out stress the park/unpark protocol from both directions;
// the two-task ping-pong measures the steady-state allocation cost of a
// park/unpark round trip differentially (it must be zero — tasks park
// intrusively, channels hand values straight to parked waiters).
//
// Counters exported per benchmark (into BENCH_pr6.json via
// tools/bench.sh): tasks_spawned, steals, parks, workers, and
// items_per_second doubles as tasks/sec for the ring. The ping-pong adds
// allocs_per_iter.
//
//===----------------------------------------------------------------------===//

#include "concurrency/ParallelExec.h"
#include "driver/Driver.h"

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>

using namespace fearless;

namespace {
/// Global C++ heap allocation counter for the differential steady-state
/// measurement (same idiom as tests/fault_test.cpp).
std::atomic<uint64_t> GHeapAllocs{0};
} // namespace

void *operator new(std::size_t Size) {
  GHeapAllocs.fetch_add(1, std::memory_order_relaxed);
  if (void *P = std::malloc(Size ? Size : 1))
    return P;
  throw std::bad_alloc();
}

void *operator new[](std::size_t Size) { return ::operator new(Size); }

void operator delete(void *P) noexcept { std::free(P); }
void operator delete[](void *P) noexcept { std::free(P); }
void operator delete(void *P, std::size_t) noexcept { std::free(P); }
void operator delete[](void *P, std::size_t) noexcept { std::free(P); }

namespace {

/// Token ring: `hop` tasks each consume the token once and pass it on
/// incremented; the sink keeps re-injecting it until every hop has
/// contributed. Result = number of hops, independent of routing. All
/// values are ints: the workload is pure scheduling + channel traffic.
constexpr const char *RingProgram = R"prog(
def hop() : unit {
  let t = recv<int>();
  send(t + 1)
}

def sink(n : int) : int {
  let t = 0;
  while (t < n) {
    send(t);
    t = recv<int>()
  };
  t
}
)prog";

/// Fan-in: n one-shot senders converge on one gatherer. Fan-out: one
/// scatterer feeds n one-shot receivers. Ping-pong: two tasks exchange a
/// token n times over *directed* channels (int one way, bool the other —
/// channels are typed, so neither task can consume its own send).
constexpr const char *FanProgram = R"prog(
def shot() : unit {
  send(1)
}

def gather(n : int) : int {
  let t = 0;
  let i = 0;
  while (i < n) {
    t = t + recv<int>();
    i = i + 1
  };
  t
}

def scatter(n : int) : unit {
  let i = 0;
  while (i < n) {
    send(i);
    i = i + 1
  }
}

def take() : int {
  recv<int>()
}

def ping(n : int) : int {
  let i = 0;
  while (i < n) {
    send(i);
    let ack = recv<bool>();
    i = i + 1
  };
  i
}

def pong(n : int) : unit {
  let j = 0;
  while (j < n) {
    let t = recv<int>();
    send(true);
    j = j + 1
  }
}
)prog";

void exportSchedMetrics(benchmark::State &State, const RuntimeMetrics &M) {
  State.counters["tasks_spawned"] = static_cast<double>(M.TasksSpawned);
  State.counters["steals"] = static_cast<double>(M.Steals);
  State.counters["parks"] = static_cast<double>(M.Parks);
  State.counters["sends"] = static_cast<double>(M.ChannelSends);
  State.counters["recvs"] = static_cast<double>(M.ChannelRecvs);
  unsigned HW = std::thread::hardware_concurrency();
  State.counters["workers"] = static_cast<double>(
      std::min<uint64_t>(2 * (HW ? HW : 1), M.TasksSpawned));
}

/// The headline workload: a ring of `Hops` language threads plus the
/// sink, run on the fixed default pool (min(2x hardware threads, task
/// count)). items_per_second reads as language tasks retired per second.
void BM_TokenRing(benchmark::State &State) {
  Expected<Pipeline> P = compile(RingProgram);
  if (!P) {
    State.SkipWithError(P.error().Message.c_str());
    return;
  }
  const int64_t Hops = State.range(0);
  Symbol Hop = P->Prog->Names.intern("hop");
  Symbol Sink = P->Prog->Names.intern("sink");
  RuntimeMetrics LastRun;
  for (auto _ : State) {
    ParallelExecOptions Opts;
    Opts.WatchdogMillis = 300'000; // a scheduler hang fails, not wedges
    ParallelExec Exec(P->Checked, Opts);
    for (int64_t I = 0; I < Hops; ++I)
      Exec.spawn(Hop);
    Exec.spawn(Sink, {Value::intVal(Hops)});
    Expected<std::vector<Value>> R = Exec.run();
    if (!R) {
      State.SkipWithError(R.error().Message.c_str());
      return;
    }
    if (!((*R)[Hops] == Value::intVal(Hops))) {
      State.SkipWithError("ring token lost");
      return;
    }
    LastRun = Exec.metrics();
  }
  State.SetItemsProcessed(State.iterations() * (Hops + 1));
  exportSchedMetrics(State, LastRun);
}
BENCHMARK(BM_TokenRing)->Arg(1'000)->Arg(10'000)
    ->Unit(benchmark::kMillisecond);
// The acceptance-scale ring: 100k language threads on the same fixed
// pool. One iteration is plenty of work to time.
BENCHMARK(BM_TokenRing)->Arg(100'000)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_FanIn(benchmark::State &State) {
  Expected<Pipeline> P = compile(FanProgram);
  if (!P) {
    State.SkipWithError(P.error().Message.c_str());
    return;
  }
  const int64_t Senders = State.range(0);
  Symbol Shot = P->Prog->Names.intern("shot");
  Symbol Gather = P->Prog->Names.intern("gather");
  RuntimeMetrics LastRun;
  for (auto _ : State) {
    ParallelExecOptions Opts;
    Opts.WatchdogMillis = 300'000;
    ParallelExec Exec(P->Checked, Opts);
    for (int64_t I = 0; I < Senders; ++I)
      Exec.spawn(Shot);
    Exec.spawn(Gather, {Value::intVal(Senders)});
    Expected<std::vector<Value>> R = Exec.run();
    if (!R) {
      State.SkipWithError(R.error().Message.c_str());
      return;
    }
    if (!((*R)[Senders] == Value::intVal(Senders))) {
      State.SkipWithError("fan-in sum wrong");
      return;
    }
    LastRun = Exec.metrics();
  }
  State.SetItemsProcessed(State.iterations() * Senders);
  exportSchedMetrics(State, LastRun);
}
BENCHMARK(BM_FanIn)->Arg(1'000)->Arg(10'000)
    ->Unit(benchmark::kMillisecond);

void BM_FanOut(benchmark::State &State) {
  Expected<Pipeline> P = compile(FanProgram);
  if (!P) {
    State.SkipWithError(P.error().Message.c_str());
    return;
  }
  const int64_t Receivers = State.range(0);
  Symbol Scatter = P->Prog->Names.intern("scatter");
  Symbol Take = P->Prog->Names.intern("take");
  RuntimeMetrics LastRun;
  for (auto _ : State) {
    ParallelExecOptions Opts;
    Opts.WatchdogMillis = 300'000;
    ParallelExec Exec(P->Checked, Opts);
    Exec.spawn(Scatter, {Value::intVal(Receivers)});
    for (int64_t I = 0; I < Receivers; ++I)
      Exec.spawn(Take);
    Expected<std::vector<Value>> R = Exec.run();
    if (!R) {
      State.SkipWithError(R.error().Message.c_str());
      return;
    }
    LastRun = Exec.metrics();
  }
  State.SetItemsProcessed(State.iterations() * Receivers);
  exportSchedMetrics(State, LastRun);
}
BENCHMARK(BM_FanOut)->Arg(1'000)->Arg(10'000)
    ->Unit(benchmark::kMillisecond);

/// Runs a two-task ping-pong of \p Exchanges round trips and returns the
/// C++ heap allocations the whole run performed.
uint64_t pingPongAllocs(Pipeline &P, int64_t Exchanges) {
  ParallelExecOptions Opts;
  Opts.WatchdogMillis = 300'000;
  ParallelExec Exec(P.Checked, Opts);
  Exec.spawn(P.Prog->Names.intern("ping"), {Value::intVal(Exchanges)});
  Exec.spawn(P.Prog->Names.intern("pong"), {Value::intVal(Exchanges)});
  uint64_t Before = GHeapAllocs.load(std::memory_order_relaxed);
  Expected<std::vector<Value>> R = Exec.run();
  uint64_t After = GHeapAllocs.load(std::memory_order_relaxed);
  if (!R || !((*R)[0] == Value::intVal(Exchanges)))
    return UINT64_MAX;
  return After - Before;
}

/// Two tasks bouncing a token through park/unpark on every exchange.
/// `allocs_per_iter` is measured differentially — two runs differing
/// only in exchange count; the delta divided by the extra exchanges is
/// the steady-state allocation cost of one park/unpark round trip.
/// The acceptance bar is 0: both the park (intrusive waiter) and the
/// unpark (handoff + fixed-capacity inject ring) are allocation-free.
void BM_PingPongParkUnpark(benchmark::State &State) {
  Expected<Pipeline> P = compile(FanProgram);
  if (!P) {
    State.SkipWithError(P.error().Message.c_str());
    return;
  }
  const int64_t N1 = 2'000, N2 = 10'000;
  uint64_t A1 = pingPongAllocs(*P, N1);
  uint64_t A2 = pingPongAllocs(*P, N2);
  if (A1 == UINT64_MAX || A2 == UINT64_MAX) {
    State.SkipWithError("ping-pong run failed");
    return;
  }
  double AllocsPerIter =
      static_cast<double>(A2 > A1 ? A2 - A1 : 0) /
      static_cast<double>(N2 - N1);

  const int64_t Exchanges = State.range(0);
  Symbol Ping = P->Prog->Names.intern("ping");
  Symbol Pong = P->Prog->Names.intern("pong");
  RuntimeMetrics LastRun;
  for (auto _ : State) {
    ParallelExecOptions Opts;
    Opts.WatchdogMillis = 300'000;
    ParallelExec Exec(P->Checked, Opts);
    Exec.spawn(Ping, {Value::intVal(Exchanges)});
    Exec.spawn(Pong, {Value::intVal(Exchanges)});
    Expected<std::vector<Value>> R = Exec.run();
    if (!R) {
      State.SkipWithError(R.error().Message.c_str());
      return;
    }
    benchmark::DoNotOptimize((*R)[0]);
    LastRun = Exec.metrics();
  }
  State.SetItemsProcessed(State.iterations() * Exchanges);
  State.counters["allocs_per_iter"] = AllocsPerIter;
  exportSchedMetrics(State, LastRun);
}
BENCHMARK(BM_PingPongParkUnpark)->Arg(10'000)
    ->Unit(benchmark::kMillisecond);

/// Cross-mode reference: the same fan-in on the legacy thread-per-spawn
/// executor at a size it can still host, for the scaling story in
/// EXPERIMENTS.md. (At ring scale the OS mode would need 100k native
/// threads — the very wall this scheduler removes.)
void BM_FanInOsThreads(benchmark::State &State) {
  Expected<Pipeline> P = compile(FanProgram);
  if (!P) {
    State.SkipWithError(P.error().Message.c_str());
    return;
  }
  const int64_t Senders = State.range(0);
  Symbol Shot = P->Prog->Names.intern("shot");
  Symbol Gather = P->Prog->Names.intern("gather");
  RuntimeMetrics LastRun;
  for (auto _ : State) {
    ParallelExecOptions Opts;
    Opts.OsThreads = true;
    Opts.WatchdogMillis = 300'000;
    ParallelExec Exec(P->Checked, Opts);
    for (int64_t I = 0; I < Senders; ++I)
      Exec.spawn(Shot);
    Exec.spawn(Gather, {Value::intVal(Senders)});
    Expected<std::vector<Value>> R = Exec.run();
    if (!R) {
      State.SkipWithError(R.error().Message.c_str());
      return;
    }
    LastRun = Exec.metrics();
  }
  State.SetItemsProcessed(State.iterations() * Senders);
  State.counters["sends"] = static_cast<double>(LastRun.ChannelSends);
  State.counters["recvs"] = static_cast<double>(LastRun.ChannelRecvs);
}
BENCHMARK(BM_FanInOsThreads)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

/// FEARLESS_SCHED_SMOKE hook: run the acceptance checks directly (no
/// benchmark timing) so tools/ci.sh can gate them cheaply, including
/// under TSan:
///
///   FEARLESS_SCHED_SMOKE=100000 ./bench_scheduler --benchmark_filter=NONE
///
/// Checks: the N-hop ring completes with the token intact on the fixed
/// default pool, and the ping-pong steady state allocates nothing per
/// park/unpark round trip.
int runSchedSmoke(const char *Spec) {
  int64_t Hops = std::max<int64_t>(1, std::atoll(Spec));
  Expected<Pipeline> Ring = compile(RingProgram);
  Expected<Pipeline> Fan = compile(FanProgram);
  if (!Ring || !Fan) {
    std::fprintf(stderr, "bench_scheduler: smoke compile failed\n");
    return 1;
  }
  ParallelExecOptions Opts;
  Opts.WatchdogMillis = 300'000;
  ParallelExec Exec(Ring->Checked, Opts);
  Symbol Hop = Ring->Prog->Names.intern("hop");
  for (int64_t I = 0; I < Hops; ++I)
    Exec.spawn(Hop);
  Exec.spawn(Ring->Prog->Names.intern("sink"), {Value::intVal(Hops)});
  Expected<std::vector<Value>> R = Exec.run();
  if (!R) {
    std::fprintf(stderr, "bench_scheduler: smoke ring failed: %s\n",
                 R.error().Message.c_str());
    return 1;
  }
  if (!((*R)[Hops] == Value::intVal(Hops))) {
    std::fprintf(stderr, "bench_scheduler: smoke ring lost the token\n");
    return 1;
  }
  const RuntimeMetrics &M = Exec.metrics();

  uint64_t A1 = pingPongAllocs(*Fan, 2'000);
  uint64_t A2 = pingPongAllocs(*Fan, 10'000);
  if (A1 == UINT64_MAX || A2 == UINT64_MAX) {
    std::fprintf(stderr, "bench_scheduler: smoke ping-pong failed\n");
    return 1;
  }
  uint64_t Delta = A2 > A1 ? A2 - A1 : 0;
  if (Delta != 0) {
    std::fprintf(stderr,
                 "bench_scheduler: park/unpark path allocates in steady "
                 "state (%llu allocs across 8000 extra exchanges)\n",
                 static_cast<unsigned long long>(Delta));
    return 1;
  }
  std::fprintf(stderr,
               "bench_scheduler: smoke ok (ring=%lld tasks_spawned=%llu "
               "steals=%llu parks=%llu allocs_per_iter=0)\n",
               static_cast<long long>(Hops + 1),
               static_cast<unsigned long long>(M.TasksSpawned),
               static_cast<unsigned long long>(M.Steals),
               static_cast<unsigned long long>(M.Parks));
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (const char *Smoke = std::getenv("FEARLESS_SCHED_SMOKE"))
    return runSchedSmoke(Smoke);
  return 0;
}
