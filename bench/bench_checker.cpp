//===- bench/bench_checker.cpp --------------------------------------------===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
//
// E3 — "checks our most complex examples in seconds" (§1, §5.1): wall
// clock for the full pipeline on every suite, plus scaling on synthetic
// programs.
//
// E4 — §4.6 complexity: branch unification is common-case polynomial with
// the liveness oracle and worst-case exponential without it. The
// pathological family forces a specific k-slot keep-set at a merge: the
// oracle finds it in one candidate; the naive search enumerates subsets
// in ascending size, trying ~2^k candidates.
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"

#include <benchmark/benchmark.h>

#include <sstream>

using namespace fearless;

namespace {

//===----------------------------------------------------------------------===//
// E3: suites
//===----------------------------------------------------------------------===//

void BM_Check_SllSuite(benchmark::State &State) {
  for (auto _ : State)
    benchmark::DoNotOptimize(compile(programs::SllSuite).hasValue());
}
BENCHMARK(BM_Check_SllSuite);

void BM_Check_DllSuite(benchmark::State &State) {
  for (auto _ : State)
    benchmark::DoNotOptimize(compile(programs::DllSuite).hasValue());
}
BENCHMARK(BM_Check_DllSuite);

void BM_Check_RedBlackTree(benchmark::State &State) {
  for (auto _ : State)
    benchmark::DoNotOptimize(compile(programs::RedBlackTree).hasValue());
}
BENCHMARK(BM_Check_RedBlackTree);

void BM_Check_MessagePassing(benchmark::State &State) {
  for (auto _ : State)
    benchmark::DoNotOptimize(
        compile(programs::MessagePassing).hasValue());
}
BENCHMARK(BM_Check_MessagePassing);

void BM_Check_RedBlackTree_NoDerivations(benchmark::State &State) {
  CheckerOptions Opts;
  Opts.EmitDerivations = false;
  for (auto _ : State)
    benchmark::DoNotOptimize(
        compile(programs::RedBlackTree, Opts, /*Verify=*/false)
            .hasValue());
}
BENCHMARK(BM_Check_RedBlackTree_NoDerivations);

//===----------------------------------------------------------------------===//
// E3: synthetic scaling — N copies of the sll function suite
//===----------------------------------------------------------------------===//

std::string scaledProgram(int Copies) {
  std::ostringstream OS;
  OS << R"(
struct data { value : int; }
struct node { iso payload : data; iso next : node?; }
)";
  for (int I = 0; I < Copies; ++I) {
    OS << "def walk" << I << "(n : node) : int {\n"
       << "  let some(next) = n.next in { n.payload.value + walk" << I
       << "(next) } else { n.payload.value }\n}\n"
       << "def pop" << I << "(n : node) : data? {\n"
       << "  let some(next) = n.next in {\n"
       << "    n.next = next.next;\n"
       << "    some next.payload\n"
       << "  } else { none }\n}\n";
  }
  return OS.str();
}

void BM_Check_Scaling(benchmark::State &State) {
  std::string Source = scaledProgram(static_cast<int>(State.range(0)));
  for (auto _ : State)
    benchmark::DoNotOptimize(compile(Source).hasValue());
  State.counters["functions"] =
      static_cast<double>(2 * State.range(0));
}
BENCHMARK(BM_Check_Scaling)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

//===----------------------------------------------------------------------===//
// E4: oracle vs naive unification on the pathological family
//===----------------------------------------------------------------------===//

/// A merge that *requires* keeping exactly the k tracked slots: k live
/// aliases into the k iso-field targets survive the conditional.
std::string pathological(int K) {
  std::ostringstream OS;
  OS << "struct data { value : int; }\n";
  OS << "struct many {\n";
  for (int I = 0; I < K; ++I)
    OS << "  iso f" << I << " : data;\n";
  OS << "}\n";
  OS << "def f(x : many, c : bool) : int {\n";
  for (int I = 0; I < K; ++I)
    OS << "  let v" << I << " = x.f" << I << ";\n";
  OS << "  if (c) { 1 } else { 2 };\n";
  OS << "  0";
  for (int I = 0; I < K; ++I)
    OS << " + v" << I << ".value";
  OS << "\n}\n";
  return OS.str();
}

void BM_Unify_Oracle(benchmark::State &State) {
  std::string Source = pathological(static_cast<int>(State.range(0)));
  CheckerOptions Opts;
  Opts.UseLivenessOracle = true;
  Opts.EmitDerivations = false;
  size_t Candidates = 0;
  for (auto _ : State) {
    Expected<Pipeline> P = compile(Source, Opts, false);
    if (!P)
      State.SkipWithError(P.error().Message.c_str());
    else
      Candidates = P->Checked.Functions.begin()
                       ->second.Stats.UnifyCandidates;
  }
  State.counters["candidates"] = static_cast<double>(Candidates);
}
BENCHMARK(BM_Unify_Oracle)->DenseRange(2, 12, 2);

void BM_Unify_NaiveSearch(benchmark::State &State) {
  std::string Source = pathological(static_cast<int>(State.range(0)));
  CheckerOptions Opts;
  Opts.UseLivenessOracle = false;
  Opts.EmitDerivations = false;
  Opts.UnifySearchLimit = 1 << 20;
  size_t Candidates = 0;
  for (auto _ : State) {
    Expected<Pipeline> P = compile(Source, Opts, false);
    if (!P)
      State.SkipWithError(P.error().Message.c_str());
    else
      Candidates = P->Checked.Functions.begin()
                       ->second.Stats.UnifyCandidates;
  }
  State.counters["candidates"] = static_cast<double>(Candidates);
}
BENCHMARK(BM_Unify_NaiveSearch)->DenseRange(2, 12, 2);

//===----------------------------------------------------------------------===//
// Prover–verifier: re-checking emitted derivations (§5)
//===----------------------------------------------------------------------===//

void BM_Verify_RedBlackTree(benchmark::State &State) {
  Expected<Pipeline> P =
      compile(programs::RedBlackTree, CheckerOptions{}, /*Verify=*/false);
  if (!P) {
    State.SkipWithError(P.error().Message.c_str());
    return;
  }
  size_t Steps = 0;
  for (auto _ : State) {
    Expected<VerifyStats> Stats = verifyProgram(P->Checked);
    if (!Stats) {
      State.SkipWithError(Stats.error().Message.c_str());
      return;
    }
    Steps = Stats->StepsChecked;
  }
  State.counters["derivation_steps"] = static_cast<double>(Steps);
}
BENCHMARK(BM_Verify_RedBlackTree);

void BM_Verify_DllSuite(benchmark::State &State) {
  Expected<Pipeline> P =
      compile(programs::DllSuite, CheckerOptions{}, /*Verify=*/false);
  if (!P) {
    State.SkipWithError(P.error().Message.c_str());
    return;
  }
  size_t Steps = 0;
  for (auto _ : State) {
    Expected<VerifyStats> Stats = verifyProgram(P->Checked);
    if (!Stats) {
      State.SkipWithError(Stats.error().Message.c_str());
      return;
    }
    Steps = Stats->StepsChecked;
  }
  State.counters["derivation_steps"] = static_cast<double>(Steps);
}
BENCHMARK(BM_Verify_DllSuite);

} // namespace

BENCHMARK_MAIN();
