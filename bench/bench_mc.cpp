//===- bench/bench_mc.cpp -------------------------------------------------===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
//
// E14 — the stateless model checker: exploration throughput
// (schedules/sec), the DPOR pruning ratio against naive DFS, and the
// overhead of replaying a recorded schedule vs running the seeded
// scheduler directly.
//
// Workload: the MessagePassing producer/consumer pipeline at interpreter
// step granularity — every step of a 2-thread run is a potential branch
// point, so naive DFS faces a combinatorial space while DPOR's
// persistent/sleep sets collapse it to a handful of representatives.
//
// Counters exported per benchmark (into BENCH_pr10.json via
// tools/bench.sh):
//  - BM_Mc_DporExplore: schedules_explored, schedules_pruned,
//    steps_executed, pruning_ratio_vs_naive (naive explores >= that many
//    times more schedules before its budget expires WITHOUT finishing —
//    a lower bound on the true ratio), and items_per_second doubles as
//    schedules/sec.
//  - BM_Mc_NaiveDfs: schedules_explored at the budget, complete (0: the
//    budget always expires first).
//  - BM_Mc_DirectRun / BM_Mc_ScheduleReplay: steps; the pair measures
//    replay overhead differentially (same program, same interleaving).
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "mc/Dpor.h"
#include "mc/Replay.h"
#include "runtime/Machine.h"

#include <benchmark/benchmark.h>

using namespace fearless;

namespace {

constexpr int64_t PipelineCount = 3;
constexpr uint64_t NaiveBudget = 500;

Pipeline &pipeline() {
  static Pipeline P = []() {
    Expected<Pipeline> R = compile(programs::MessagePassing);
    if (!R)
      std::abort();
    return std::move(*R);
  }();
  return P;
}

std::unique_ptr<Machine> freshMachine(Pipeline &P) {
  auto M = std::make_unique<Machine>(P.Checked);
  M->spawn(P.Prog->Names.intern("producer"),
           {Value::intVal(PipelineCount)});
  M->spawn(P.Prog->Names.intern("consumer"),
           {Value::intVal(PipelineCount)});
  return M;
}

mc::McReport exploreOnce(Pipeline &P, bool UseDpor, uint64_t Budget) {
  mc::McOptions Opts;
  Opts.UseDpor = UseDpor;
  Opts.MaxSchedules = Budget;
  Expected<mc::McReport> Rep =
      mc::explore([&P]() { return freshMachine(P); }, Opts);
  if (!Rep || Rep->Counterexample)
    std::abort(); // the workload is violation-free by construction
  return *Rep;
}

void BM_Mc_DporExplore(benchmark::State &State) {
  Pipeline &P = pipeline();
  // One-time naive reference for the pruning-ratio counter: naive DFS
  // burns the whole budget without finishing the space DPOR exhausts.
  mc::McReport Naive = exploreOnce(P, /*UseDpor=*/false, NaiveBudget);
  mc::McReport Last;
  for (auto _ : State) {
    Last = exploreOnce(P, /*UseDpor=*/true, /*Budget=*/0);
    benchmark::DoNotOptimize(Last.SchedulesExplored);
  }
  State.SetItemsProcessed(int64_t(State.iterations()) *
                          int64_t(Last.SchedulesExplored));
  State.counters["schedules_explored"] = double(Last.SchedulesExplored);
  State.counters["schedules_pruned"] = double(Last.SchedulesPruned);
  State.counters["steps_executed"] = double(Last.StepsExecuted);
  State.counters["complete"] = Last.Complete ? 1 : 0;
  State.counters["pruning_ratio_vs_naive"] =
      double(Naive.SchedulesExplored) / double(Last.SchedulesExplored);
}
BENCHMARK(BM_Mc_DporExplore)->Unit(benchmark::kMillisecond);

void BM_Mc_NaiveDfs(benchmark::State &State) {
  Pipeline &P = pipeline();
  mc::McReport Last;
  for (auto _ : State) {
    Last = exploreOnce(P, /*UseDpor=*/false, NaiveBudget);
    benchmark::DoNotOptimize(Last.SchedulesExplored);
  }
  State.SetItemsProcessed(int64_t(State.iterations()) *
                          int64_t(Last.SchedulesExplored));
  State.counters["schedules_explored"] = double(Last.SchedulesExplored);
  State.counters["complete"] = Last.Complete ? 1 : 0;
}
BENCHMARK(BM_Mc_NaiveDfs)->Unit(benchmark::kMillisecond);

void BM_Mc_DirectRun(benchmark::State &State) {
  Pipeline &P = pipeline();
  uint64_t Steps = 0;
  for (auto _ : State) {
    std::unique_ptr<Machine> M = freshMachine(P);
    Expected<MachineSummary> R = M->run(7);
    if (!R)
      std::abort();
    Steps = R->Steps;
    benchmark::DoNotOptimize(Steps);
  }
  State.SetItemsProcessed(int64_t(State.iterations()) * int64_t(Steps));
  State.counters["steps"] = double(Steps);
}
BENCHMARK(BM_Mc_DirectRun);

void BM_Mc_ScheduleReplay(benchmark::State &State) {
  Pipeline &P = pipeline();
  // Record seed 7's interleaving once; every iteration replays it from
  // the schedule, so the delta vs BM_Mc_DirectRun is pure replay
  // machinery (choice lookups instead of xorshift picks).
  mc::Schedule Sched;
  {
    std::unique_ptr<Machine> M = freshMachine(P);
    if (!mc::runRecording(*M, 7, Sched))
      std::abort();
  }
  uint64_t Steps = 0;
  for (auto _ : State) {
    std::unique_ptr<Machine> M = freshMachine(P);
    Expected<MachineSummary> R = mc::runSchedule(*M, Sched);
    if (!R)
      std::abort();
    Steps = R->Steps;
    benchmark::DoNotOptimize(Steps);
  }
  State.SetItemsProcessed(int64_t(State.iterations()) * int64_t(Steps));
  State.counters["steps"] = double(Steps);
  State.counters["schedule_choices"] = double(Sched.Choices.size());
}
BENCHMARK(BM_Mc_ScheduleReplay);

} // namespace

BENCHMARK_MAIN();
