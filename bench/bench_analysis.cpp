//===- bench/bench_analysis.cpp -------------------------------------------===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
//
// E12 — interprocedural analysis scaling: wall clock of the static
// region-graph analysis against function count, intra-procedural
// (signature havoc at every call) vs interprocedural (bottom-up
// summaries over the SCC condensation), plus the verdict split each
// mode achieves on the same program. The synthetic family mirrors
// tools/gen_corpus.py: reader/site pairs with cross-call disconnect
// proofs, writer pairs that must stay unknown, long reader chains, and
// mutually recursive reader pairs for the SCC fixpoint.
//
//===----------------------------------------------------------------------===//

#include "analysis/StaticDisconnect.h"
#include "driver/Driver.h"

#include <benchmark/benchmark.h>

#include <sstream>

using namespace fearless;

namespace {

/// ~Fns functions in the gen_corpus "mixed" spirit: one long reader
/// chain (a quarter of the budget), then reader/site and writer/site
/// pairs with a recursive reader pair every eighth pair.
std::string corpusProgram(int Fns) {
  std::ostringstream OS;
  OS << "struct cnode { next : cnode; value : int; }\n";

  auto Site = [&OS](const std::string &Name, const std::string &Callee,
                    bool IntArg) {
    OS << "def " << Name << "() : int {\n"
       << "  let a = new cnode();\n"
       << "  let b = new cnode();\n"
       << "  a.next = b;\n"
       << "  a.next = a;\n"
       << "  let v = " << Callee << (IntArg ? "(a, 4)" : "(a)") << ";\n"
       << "  if disconnected(a, b) { v + 1 } else { 0 }\n"
       << "}\n";
  };

  int Budget = Fns;
  int ChainLen = Fns / 4 > 2 ? Fns / 4 : 2;
  for (int I = 0; I < ChainLen; ++I) {
    OS << "def chain_f" << I << "(x : cnode) : int {\n";
    if (I + 1 < ChainLen)
      OS << "  let c = chain_f" << I + 1 << "(x);\n  x.value + c\n";
    else
      OS << "  x.value\n";
    OS << "}\n";
  }
  Site("chain_site", "chain_f0", /*IntArg=*/false);
  Budget -= ChainLen + 1;

  int Pair = 0;
  while (Budget > 1) {
    std::ostringstream Name;
    if (Pair % 8 == 7 && Budget > 2) {
      // Mutually recursive reader pair (SCC fixpoint).
      OS << "def rec_a" << Pair << "(x : cnode, n : int) : int {\n"
         << "  if (n < 1) { x.value } else { rec_b" << Pair
         << "(x, n - 1) }\n}\n"
         << "def rec_b" << Pair << "(x : cnode, n : int) : int {\n"
         << "  if (n < 1) { 0 } else { rec_a" << Pair
         << "(x, n - 1) }\n}\n";
      Name << "rec_site" << Pair;
      Site(Name.str(), "rec_a" + std::to_string(Pair), /*IntArg=*/true);
      Budget -= 3;
    } else if (Pair % 4 == 3) {
      // Writer pair: the site must stay unknown in both modes.
      OS << "def wr" << Pair << "(x : cnode) : int {\n"
         << "  x.next = new cnode();\n  x.value\n}\n";
      Name << "wr_site" << Pair;
      Site(Name.str(), "wr" + std::to_string(Pair), /*IntArg=*/false);
      Budget -= 2;
    } else {
      OS << "def rd" << Pair << "(x : cnode) : int {\n"
         << "  x.value + " << Pair << "\n}\n";
      Name << "rd_site" << Pair;
      Site(Name.str(), "rd" + std::to_string(Pair), /*IntArg=*/false);
      Budget -= 2;
    }
    ++Pair;
  }
  OS << "def main() : int {\n  chain_site()\n}\n";
  return OS.str();
}

void runAnalysisBench(benchmark::State &State, bool Interprocedural) {
  std::string Source = corpusProgram(static_cast<int>(State.range(0)));
  Expected<Pipeline> P = compile(Source);
  if (!P) {
    State.SkipWithError(P.error().Message.c_str());
    return;
  }
  AnalysisOptions Opts;
  Opts.Interprocedural = Interprocedural;
  size_t MustDisc = 0, MustConn = 0, Unknown = 0, Sites = 0;
  for (auto _ : State) {
    AnalysisReport R = analyzeProgram(P->Checked, Opts);
    MustDisc = MustConn = Unknown = 0;
    Sites = R.Sites.size();
    for (const SiteReport &S : R.Sites) {
      if (S.Verdict == DisconnectVerdict::MustDisconnected)
        ++MustDisc;
      else if (S.Verdict == DisconnectVerdict::MustConnected)
        ++MustConn;
      else
        ++Unknown;
    }
    benchmark::DoNotOptimize(R.Sites.data());
  }
  State.counters["functions"] =
      static_cast<double>(P->Checked.Functions.size());
  State.counters["sites"] = static_cast<double>(Sites);
  State.counters["must_disconnected"] = static_cast<double>(MustDisc);
  State.counters["must_connected"] = static_cast<double>(MustConn);
  State.counters["unknown"] = static_cast<double>(Unknown);
}

void BM_Analyze_Interprocedural(benchmark::State &State) {
  runAnalysisBench(State, /*Interprocedural=*/true);
}
BENCHMARK(BM_Analyze_Interprocedural)
    ->Arg(32)
    ->Arg(128)
    ->Arg(512)
    ->Arg(2048);

void BM_Analyze_Intra(benchmark::State &State) {
  runAnalysisBench(State, /*Interprocedural=*/false);
}
BENCHMARK(BM_Analyze_Intra)->Arg(32)->Arg(128)->Arg(512)->Arg(2048);

/// The summary engine alone (call-graph + SCC fixpoint + effect runs),
/// without the per-function verdict pass on top.
void BM_Summaries_Only(benchmark::State &State) {
  std::string Source = corpusProgram(static_cast<int>(State.range(0)));
  Expected<Pipeline> P = compile(Source);
  if (!P) {
    State.SkipWithError(P.error().Message.c_str());
    return;
  }
  SummaryStats Stats;
  for (auto _ : State) {
    SummaryTable T = computeSummaries(P->Checked, &Stats);
    benchmark::DoNotOptimize(T.size());
  }
  State.counters["functions"] = static_cast<double>(Stats.Functions);
  State.counters["sccs"] = static_cast<double>(Stats.Sccs);
  State.counters["effect_runs"] = static_cast<double>(Stats.EffectRuns);
  State.counters["preserved_params"] =
      static_cast<double>(Stats.PreservedParams);
}
BENCHMARK(BM_Summaries_Only)->Arg(32)->Arg(128)->Arg(512)->Arg(2048);

} // namespace

BENCHMARK_MAIN();
