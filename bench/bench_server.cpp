//===- bench/bench_server.cpp ---------------------------------------------===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
//
// E13 — the fearlessd derivation cache, measured end to end over the
// unix-socket wire. Each benchmark starts a real in-process Server and
// drives it through WireClient, so the numbers include framing, JSON,
// socket hops, and scheduling — the latency an editor plugin would see.
//
// The headline comparison is cold vs warm `check`: a cold request gets a
// never-seen source (a per-iteration salt function changes the content
// hash), a warm request replays the same bytes and must be served from
// the derivation cache. The acceptance bar is warm p50 >= 10x better
// than cold; BM_CheckColdVsWarm exports the ratio directly
// (warm_speedup_p50) so BENCH_pr9.json carries the claim in one entry.
//
// Counters exported per benchmark: p50_ns / p99_ns round-trip latency
// (manually sampled), requests per second via items_per_second, cache
// hit/miss totals, and — for the admission-control benchmark — the
// requests_rejected count that proves the backpressure path ran.
//
//===----------------------------------------------------------------------===//

#include "server/Client.h"
#include "server/Server.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace fearless;
using namespace fearless::server;

namespace {

/// A realistic medium-sized workload: a struct, recursion through an
/// option field, and enough functions that the checker does real work.
const char *const BaseProgram = R"(
struct node {
  value : int;
  iso next : node?;
}

def sum(n : node) : int {
  let some(nx) = n.next in { n.value + sum(nx) } else { n.value }
}

def build(n : int) : node {
  let head = new node(n, none);
  let i = n - 1;
  while (i > 0) {
    head = new node(i, some head);
    i = i - 1
  };
  head
}

def main() : int {
  let l = build(64);
  sum(l)
}
)";

/// The benchmark source: BaseProgram plus a few dozen generated helper
/// functions. Checking cost scales with program size while a warm hit
/// only pays hashing (linear, tiny constant), so a realistically sized
/// module is what separates the cold and warm distributions.
const std::string &benchSource() {
  static const std::string Source = [] {
    std::string S = BaseProgram;
    for (int I = 0; I < 24; ++I) {
      std::string N = std::to_string(I);
      S += "\ndef helper" + N + "(n : int) : int {\n"
           "  let l = build(n + " + N + ");\n"
           "  let total = sum(l);\n"
           "  let i = 0;\n"
           "  while (i < n) {\n"
           "    total = total + i;\n"
           "    i = i + 1\n"
           "  };\n"
           "  total\n"
           "}\n";
    }
    return S;
  }();
  return Source;
}

std::string uniqueSocketPath() {
  static std::atomic<int> Counter{0};
  return "/tmp/fearless-bench-" + std::to_string(::getpid()) + "-" +
         std::to_string(Counter++) + ".sock";
}

/// A source that has never been seen by any cache: a salt function with
/// a process-unique constant changes the content hash while keeping the
/// compile workload essentially identical.
std::string saltedSource() {
  static std::atomic<int64_t> Salt{0};
  return benchSource() + "\ndef salt_fn() : int { " +
         std::to_string(Salt++) + " }\n";
}

WireRequest checkRequest(std::string Source) {
  WireRequest R;
  R.Op = WireOp::Check;
  R.Id = 1;
  R.Name = "bench.fls";
  R.Source = std::move(Source);
  return R;
}

/// Starts a server on a fresh socket; shut down by the caller via
/// requestShutdown()+run() (the fixture pattern server_test uses).
std::unique_ptr<Server> startServer(ServerOptions O,
                                    std::string &PathOut) {
  PathOut = uniqueSocketPath();
  O.SocketPath = PathOut;
  if (O.Workers == 0)
    O.Workers = 2;
  auto S = std::make_unique<Server>(std::move(O));
  if (!S->start().hasValue())
    return nullptr;
  return S;
}

void stopServer(std::unique_ptr<Server> &S) {
  if (S) {
    S->requestShutdown();
    S->run();
    S.reset();
  }
}

double percentile(std::vector<double> &Ns, double P) {
  if (Ns.empty())
    return 0;
  std::sort(Ns.begin(), Ns.end());
  size_t Idx = static_cast<size_t>(P * static_cast<double>(Ns.size() - 1));
  return Ns[Idx];
}

/// One timed round trip; returns latency in nanoseconds, or -1 on error.
double timedRequest(WireClient &C, const WireRequest &R) {
  auto T0 = std::chrono::steady_clock::now();
  Expected<WireResponse> Resp = C.request(R);
  auto T1 = std::chrono::steady_clock::now();
  if (!Resp.hasValue() || !Resp->Ok)
    return -1;
  return std::chrono::duration<double, std::nano>(T1 - T0).count();
}

/// Cold check latency: every iteration ships a never-before-seen source,
/// so every request compiles. This is the daemon's miss path — what a
/// first open of a file costs.
void BM_CheckCold(benchmark::State &State) {
  std::string Path;
  std::unique_ptr<Server> S = startServer({}, Path);
  if (!S) {
    State.SkipWithError("server failed to start");
    return;
  }
  WireClient C;
  if (!C.connect(Path).hasValue()) {
    State.SkipWithError("connect failed");
    stopServer(S);
    return;
  }
  std::vector<double> Lat;
  for (auto _ : State) {
    double Ns = timedRequest(C, checkRequest(saltedSource()));
    if (Ns < 0) {
      State.SkipWithError("request failed");
      stopServer(S);
      return;
    }
    Lat.push_back(Ns);
  }
  State.counters["p50_ns"] = percentile(Lat, 0.50);
  State.counters["p99_ns"] = percentile(Lat, 0.99);
  State.counters["cache_misses"] =
      static_cast<double>(S->metricsSnapshot().CacheMisses);
  State.SetItemsProcessed(State.iterations());
  stopServer(S);
}
BENCHMARK(BM_CheckCold)->Unit(benchmark::kMicrosecond);

/// Warm check latency: one priming miss, then every iteration replays
/// identical bytes and must be a derivation-cache hit.
void BM_CheckWarm(benchmark::State &State) {
  std::string Path;
  std::unique_ptr<Server> S = startServer({}, Path);
  if (!S) {
    State.SkipWithError("server failed to start");
    return;
  }
  WireClient C;
  if (!C.connect(Path).hasValue()) {
    State.SkipWithError("connect failed");
    stopServer(S);
    return;
  }
  WireRequest Req = checkRequest(benchSource());
  if (timedRequest(C, Req) < 0) { // prime: the one and only miss
    State.SkipWithError("priming request failed");
    stopServer(S);
    return;
  }
  std::vector<double> Lat;
  for (auto _ : State) {
    double Ns = timedRequest(C, Req);
    if (Ns < 0) {
      State.SkipWithError("request failed");
      stopServer(S);
      return;
    }
    Lat.push_back(Ns);
  }
  State.counters["p50_ns"] = percentile(Lat, 0.50);
  State.counters["p99_ns"] = percentile(Lat, 0.99);
  State.counters["cache_hits"] =
      static_cast<double>(S->metricsSnapshot().CacheHits);
  State.SetItemsProcessed(State.iterations());
  stopServer(S);
}
BENCHMARK(BM_CheckWarm)->Unit(benchmark::kMicrosecond);

/// The acceptance-bar entry: interleaves cold and warm samples against
/// one server and exports both p50s plus their ratio, so the >=10x
/// warm-cache claim is a single counter in BENCH_pr9.json
/// (warm_speedup_p50) instead of cross-entry arithmetic.
void BM_CheckColdVsWarm(benchmark::State &State) {
  std::string Path;
  std::unique_ptr<Server> S = startServer({}, Path);
  if (!S) {
    State.SkipWithError("server failed to start");
    return;
  }
  WireClient C;
  if (!C.connect(Path).hasValue()) {
    State.SkipWithError("connect failed");
    stopServer(S);
    return;
  }
  WireRequest Warm = checkRequest(benchSource());
  if (timedRequest(C, Warm) < 0) {
    State.SkipWithError("priming request failed");
    stopServer(S);
    return;
  }
  std::vector<double> Cold, Hot;
  for (auto _ : State) {
    double ColdNs = timedRequest(C, checkRequest(saltedSource()));
    double WarmNs = timedRequest(C, Warm);
    if (ColdNs < 0 || WarmNs < 0) {
      State.SkipWithError("request failed");
      stopServer(S);
      return;
    }
    Cold.push_back(ColdNs);
    Hot.push_back(WarmNs);
  }
  double ColdP50 = percentile(Cold, 0.50);
  double WarmP50 = percentile(Hot, 0.50);
  State.counters["cold_p50_ns"] = ColdP50;
  State.counters["warm_p50_ns"] = WarmP50;
  State.counters["cold_p99_ns"] = percentile(Cold, 0.99);
  State.counters["warm_p99_ns"] = percentile(Hot, 0.99);
  State.counters["warm_speedup_p50"] =
      WarmP50 > 0 ? ColdP50 / WarmP50 : 0;
  stopServer(S);
}
BENCHMARK(BM_CheckColdVsWarm)->Unit(benchmark::kMicrosecond);

/// Warm `run` round trip: the artifact is cached, so this prices the
/// wire + VM execution, i.e. the daemon's steady-state eval latency.
void BM_RunWarm(benchmark::State &State) {
  std::string Path;
  std::unique_ptr<Server> S = startServer({}, Path);
  if (!S) {
    State.SkipWithError("server failed to start");
    return;
  }
  WireClient C;
  if (!C.connect(Path).hasValue()) {
    State.SkipWithError("connect failed");
    stopServer(S);
    return;
  }
  WireRequest Req = checkRequest(benchSource());
  Req.Op = WireOp::Run;
  Req.Fn = "main";
  if (timedRequest(C, Req) < 0) {
    State.SkipWithError("priming request failed");
    stopServer(S);
    return;
  }
  std::vector<double> Lat;
  for (auto _ : State) {
    double Ns = timedRequest(C, Req);
    if (Ns < 0) {
      State.SkipWithError("request failed");
      stopServer(S);
      return;
    }
    Lat.push_back(Ns);
  }
  State.counters["p50_ns"] = percentile(Lat, 0.50);
  State.counters["p99_ns"] = percentile(Lat, 0.99);
  State.SetItemsProcessed(State.iterations());
  stopServer(S);
}
BENCHMARK(BM_RunWarm)->Unit(benchmark::kMicrosecond);

/// Aggregate warm throughput with N concurrent client threads hammering
/// the same cache key — the single-flight + shared-artifact path under
/// contention. items_per_second is the daemon's req/sec.
void BM_ConcurrentWarmClients(benchmark::State &State) {
  int Clients = static_cast<int>(State.range(0));
  std::string Path;
  ServerOptions O;
  O.Workers = static_cast<size_t>(Clients);
  O.MaxSessions = static_cast<size_t>(Clients) * 4;
  std::unique_ptr<Server> S = startServer(std::move(O), Path);
  if (!S) {
    State.SkipWithError("server failed to start");
    return;
  }
  {
    WireClient Prime;
    if (!Prime.connect(Path).hasValue() ||
        timedRequest(Prime, checkRequest(benchSource())) < 0) {
      State.SkipWithError("priming request failed");
      stopServer(S);
      return;
    }
  }
  constexpr int PerThread = 16;
  int64_t Total = 0;
  for (auto _ : State) {
    std::atomic<bool> Failed{false};
    std::vector<std::thread> Threads;
    for (int I = 0; I < Clients; ++I)
      Threads.emplace_back([&] {
        WireClient C;
        if (!C.connect(Path).hasValue()) {
          Failed = true;
          return;
        }
        WireRequest Req = checkRequest(benchSource());
        for (int J = 0; J < PerThread; ++J)
          if (timedRequest(C, Req) < 0) {
            Failed = true;
            return;
          }
      });
    for (std::thread &T : Threads)
      T.join();
    if (Failed) {
      State.SkipWithError("a client failed");
      stopServer(S);
      return;
    }
    Total += Clients * PerThread;
  }
  State.SetItemsProcessed(Total);
  stopServer(S);
}
BENCHMARK(BM_ConcurrentWarmClients)->Arg(2)->Arg(4)->Unit(
    benchmark::kMillisecond);

/// Admission control under saturation: with a zero-capacity pending
/// queue every connection takes the rejection path, so each iteration
/// measures the typed `overloaded` round trip — the daemon's overload
/// floor — and requests_rejected proves the backpressure path ran.
void BM_OverloadRejection(benchmark::State &State) {
  std::string Path;
  ServerOptions O;
  O.Workers = 1;
  O.MaxSessions = 0;
  std::unique_ptr<Server> S = startServer(std::move(O), Path);
  if (!S) {
    State.SkipWithError("server failed to start");
    return;
  }
  std::vector<double> Lat;
  for (auto _ : State) {
    WireClient C;
    auto T0 = std::chrono::steady_clock::now();
    if (!C.connect(Path).hasValue()) {
      State.SkipWithError("connect failed");
      stopServer(S);
      return;
    }
    Expected<std::string> P = C.readPayload();
    auto T1 = std::chrono::steady_clock::now();
    if (!P.hasValue()) {
      State.SkipWithError("no rejection frame");
      stopServer(S);
      return;
    }
    Expected<WireResponse> R = decodeResponse(*P);
    if (!R.hasValue() || R->ErrorCode != "overloaded") {
      State.SkipWithError("expected an overloaded rejection");
      stopServer(S);
      return;
    }
    Lat.push_back(
        std::chrono::duration<double, std::nano>(T1 - T0).count());
  }
  State.counters["p50_ns"] = percentile(Lat, 0.50);
  State.counters["p99_ns"] = percentile(Lat, 0.99);
  State.counters["requests_rejected"] =
      static_cast<double>(S->metricsSnapshot().RequestsRejected);
  State.SetItemsProcessed(State.iterations());
  stopServer(S);
}
BENCHMARK(BM_OverloadRejection)->Unit(benchmark::kMicrosecond);

} // namespace

BENCHMARK_MAIN();
