//===- bench/bench_table1.cpp ---------------------------------------------===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
//
// E1 — Table 1 (§9.5), derived mechanically. Each cell is computed by
// running the corresponding checker on the corresponding program:
//
//   sll      — does the checker accept the Fig. 2 remove_tail (without
//              O(list) mutations / destructive reads)?
//   dll-repr — does it accept the circular doubly linked list
//              declarations at all?
//   Simple   — annotation count over the full sll+dll suites (this
//              paper's checker; the paper reports needing annotations
//              only at function boundaries, `consumes` twice in the sll
//              suite).
//
// The binary prints the table, then benchmarks the per-cell check times.
//
//===----------------------------------------------------------------------===//

#include "baselines/AffineChecker.h"
#include "baselines/GlobalDomChecker.h"
#include "driver/Driver.h"
#include "parser/Parser.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace fearless;

namespace {

struct Cells {
  const char *Name;
  bool Sll = false;
  bool DllRepr = false;
  std::string Simple;
};

std::optional<Program> parseOrDie(const char *Source) {
  DiagnosticEngine Diags;
  auto P = parseProgram(Source, Diags);
  if (!P) {
    std::fprintf(stderr, "parse error: %s\n", Diags.renderAll().c_str());
    std::abort();
  }
  return P;
}

/// Counts surface annotations (consumes / pinned / after / before) in a
/// parsed program.
size_t countAnnotations(const Program &P) {
  size_t N = 0;
  for (const FnDecl &F : P.Functions)
    N += F.Consumes.size() + F.Pinned.size() + F.Afters.size() +
         F.Befores.size();
  return N;
}

Cells affineRow() {
  Cells Row{"Rust-like (affine tree)", false, false, ""};
  auto Sll = parseOrDie(programs::SllSuite);
  StructTable SllStructs;
  DiagnosticEngine D1;
  SllStructs.build(*Sll, D1);
  const FnDecl *RemoveTail =
      Sll->findFunction(Sll->Names.intern("remove_tail"));
  Row.Sll = affineCheckFunction(*Sll, SllStructs, *RemoveTail).Accepted;

  auto Dll = parseOrDie(programs::DllSuite);
  StructTable DllStructs;
  DiagnosticEngine D2;
  DllStructs.build(*Dll, D2);
  Row.DllRepr = true;
  for (const StructDecl &S : Dll->Structs)
    if (!affineCheckStruct(*Dll, DllStructs, S).Accepted)
      Row.DllRepr = false;
  Row.Simple = "~ (move discipline pervades)";
  return Row;
}

Cells globalDomRow() {
  Cells Row{"LaCasa-like (global domination)", false, false, ""};
  auto Sll = parseOrDie(programs::SllSuite);
  StructTable SllStructs;
  DiagnosticEngine D1;
  SllStructs.build(*Sll, D1);
  const FnDecl *RemoveTail =
      Sll->findFunction(Sll->Names.intern("remove_tail"));
  Row.Sll =
      globalDomCheckFunction(*Sll, SllStructs, *RemoveTail).Accepted;

  auto Dll = parseOrDie(programs::DllSuite);
  StructTable DllStructs;
  DiagnosticEngine D2;
  DllStructs.build(*Dll, D2);
  Row.DllRepr = true;
  for (const StructDecl &S : Dll->Structs)
    if (!globalDomCheckStruct(*Dll, DllStructs, S).Accepted)
      Row.DllRepr = false;
  Row.Simple = "x (destructive reads / swap needed)";
  return Row;
}

Cells thisPaperRow() {
  Cells Row{"This paper", false, false, ""};
  Row.Sll = compile(programs::SllSuite).hasValue();
  Row.DllRepr = compile(programs::DllSuite).hasValue();
  auto Sll = parseOrDie(programs::SllSuite);
  auto Dll = parseOrDie(programs::DllSuite);
  size_t SllCount = countAnnotations(*Sll);
  size_t FnCount = Sll->Functions.size() + Dll->Functions.size();
  Row.Simple = "v (" + std::to_string(SllCount) + " annotations across " +
               std::to_string(Sll->Functions.size()) +
               " sll functions; " +
               std::to_string(countAnnotations(*Dll)) + " across " +
               std::to_string(Dll->Functions.size()) + " dll; " +
               std::to_string(FnCount) + " functions total)";
  return Row;
}

void printTable() {
  std::printf("\nTable 1 (reproduced mechanically; see §9.5)\n");
  std::printf("%-34s | %-4s | %-8s | %s\n", "Checker", "sll", "dll-repr",
              "Simple");
  std::printf("-----------------------------------+------+----------+---"
              "--------\n");
  for (const Cells &Row : {affineRow(), globalDomRow(), thisPaperRow()}) {
    std::printf("%-34s | %-4s | %-8s | %s\n", Row.Name,
                Row.Sll ? "v" : "x", Row.DllRepr ? "v" : "x",
                Row.Simple.c_str());
  }
  std::printf("\n(v = accepted, x = rejected, ~ = encodable with "
              "pervasive restructuring)\n\n");
}

void BM_Table1_AffineSll(benchmark::State &State) {
  auto P = parseOrDie(programs::SllSuite);
  StructTable Structs;
  DiagnosticEngine Diags;
  Structs.build(*P, Diags);
  for (auto _ : State)
    benchmark::DoNotOptimize(affineCheckProgram(*P, Structs).Accepted);
}
BENCHMARK(BM_Table1_AffineSll);

void BM_Table1_GlobalDomSll(benchmark::State &State) {
  auto P = parseOrDie(programs::SllSuite);
  StructTable Structs;
  DiagnosticEngine Diags;
  Structs.build(*P, Diags);
  for (auto _ : State)
    benchmark::DoNotOptimize(globalDomCheckProgram(*P, Structs).Accepted);
}
BENCHMARK(BM_Table1_GlobalDomSll);

void BM_Table1_ThisPaperSll(benchmark::State &State) {
  for (auto _ : State)
    benchmark::DoNotOptimize(compile(programs::SllSuite).hasValue());
}
BENCHMARK(BM_Table1_ThisPaperSll);

void BM_Table1_ThisPaperDll(benchmark::State &State) {
  for (auto _ : State)
    benchmark::DoNotOptimize(compile(programs::DllSuite).hasValue());
}
BENCHMARK(BM_Table1_ThisPaperDll);

} // namespace

int main(int argc, char **argv) {
  printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
