//===- bench/bench_faults.cpp ---------------------------------------------===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
//
// E9 — cost of the fault-injection layer (support/FaultInjector.h).
//
//  - The runtime-disabled path (null FaultInjector*, what every
//    instrumented site pays when `--faults` is off): one pointer test.
//  - An armed injector whose queried point is unarmed (Never trigger):
//    one plain load, no counter traffic.
//  - An armed nth-trigger point that never reaches N: the steady-state
//    cost of counting occurrences (one relaxed fetch_add).
//  - A probability point at p=0: counting plus the splitmix64 decision.
//
// All query paths must report allocs_per_iter == 0 (the same global
// operator-new discipline as bench_trace); a regression here means the
// injector leaked work onto the runtime hot path.
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjector.h"

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>

//===----------------------------------------------------------------------===//
// Global allocation counter: proves the query path is allocation-free
// (BENCH_*.json tracks allocs_per_iter).
//===----------------------------------------------------------------------===//

namespace {
std::atomic<uint64_t> GHeapAllocs{0};
} // namespace

void *operator new(std::size_t Size) {
  GHeapAllocs.fetch_add(1, std::memory_order_relaxed);
  if (void *P = std::malloc(Size ? Size : 1))
    return P;
  throw std::bad_alloc();
}
void *operator new[](std::size_t Size) { return ::operator new(Size); }
void operator delete(void *P) noexcept { std::free(P); }
void operator delete(void *P, std::size_t) noexcept { std::free(P); }
void operator delete[](void *P) noexcept { std::free(P); }
void operator delete[](void *P, std::size_t) noexcept { std::free(P); }

using namespace fearless;

namespace {

template <typename Fn>
void runAllocCounted(benchmark::State &State, Fn Body) {
  uint64_t AllocsBefore = GHeapAllocs.load(std::memory_order_relaxed);
  for (auto _ : State)
    Body();
  uint64_t AllocsInLoop =
      GHeapAllocs.load(std::memory_order_relaxed) - AllocsBefore;
  State.counters["allocs_per_iter"] =
      State.iterations()
          ? static_cast<double>(AllocsInLoop) /
                static_cast<double>(State.iterations())
          : 0.0;
}

/// Disabled: the null-pointer guard every site compiles to when no
/// injector is configured. This is the cost the acceptance gate bounds.
void BM_ShouldFireDisabled(benchmark::State &State) {
  FaultInjector *FI = nullptr;
  runAllocCounted(State, [&] {
    bool Fire = FI && FI->shouldFire(FaultPoint::ChanSend);
    benchmark::DoNotOptimize(Fire);
  });
}
BENCHMARK(BM_ShouldFireDisabled);

/// Armed injector, unarmed point: one trigger-kind load, no atomics.
void BM_ShouldFireNeverTrigger(benchmark::State &State) {
  FaultPlan Plan;
  Plan.Triggers[static_cast<size_t>(FaultPoint::HeapAlloc)] =
      FaultTrigger{FaultTrigger::Kind::Nth, 1, 0};
  FaultInjector FI(Plan);
  FaultInjector *P = &FI;
  runAllocCounted(State, [&] {
    bool Fire = P && P->shouldFire(FaultPoint::ChanSend);
    benchmark::DoNotOptimize(Fire);
  });
}
BENCHMARK(BM_ShouldFireNeverTrigger);

/// Armed nth point that never fires: occurrence counting in steady state.
void BM_ShouldFireArmedNth(benchmark::State &State) {
  FaultPlan Plan;
  Plan.Triggers[static_cast<size_t>(FaultPoint::ChanSend)] =
      FaultTrigger{FaultTrigger::Kind::Nth, ~0ull, 0};
  FaultInjector FI(Plan);
  FaultInjector *P = &FI;
  runAllocCounted(State, [&] {
    bool Fire = P && P->shouldFire(FaultPoint::ChanSend);
    benchmark::DoNotOptimize(Fire);
  });
}
BENCHMARK(BM_ShouldFireArmedNth);

/// Probability point at p = 0: counting plus the seeded decision hash.
void BM_ShouldFireProbability(benchmark::State &State) {
  FaultPlan Plan;
  Plan.Seed = 42;
  Plan.Triggers[static_cast<size_t>(FaultPoint::SchedStep)] =
      FaultTrigger{FaultTrigger::Kind::Probability, 0, 0.0};
  FaultInjector FI(Plan);
  FaultInjector *P = &FI;
  runAllocCounted(State, [&] {
    bool Fire = P && P->shouldFire(FaultPoint::SchedStep);
    benchmark::DoNotOptimize(Fire);
  });
}
BENCHMARK(BM_ShouldFireProbability);

/// Spec parse cost (cold path, once per process — for reference only).
void BM_ParseFaultSpec(benchmark::State &State) {
  for (auto _ : State) {
    Expected<FaultPlan> Plan = parseFaultSpec(
        "chan.send=nth:3,heap.alloc=prob:0.01,sched.step=every:64,"
        "seed=42");
    benchmark::DoNotOptimize(Plan.hasValue());
  }
}
BENCHMARK(BM_ParseFaultSpec);

} // namespace

BENCHMARK_MAIN();
