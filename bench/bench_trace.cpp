//===- bench/bench_trace.cpp ----------------------------------------------===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
//
// E8 — cost of the structured tracing layer (support/Trace.h).
//
//  - The runtime-disabled path (null TraceBuffer*, what every
//    instrumentation site pays when `--trace` is off): one pointer test.
//  - The enabled record path: a steady-clock read plus a store into the
//    per-thread ring; `allocs_per_iter` must be 0 once the buffer exists,
//    the same steady-state guarantee PR 2 proves for the runtime itself.
//  - Ring wraparound: recording far past capacity stays flat (overwrite,
//    never grow).
//  - Export cost: merging a full buffer into Chrome trace_event JSON —
//    paid once at exit, never in the hot loop, but worth a number.
//  - End to end: a Machine run over the Fig. 5 dll workload traced vs
//    untraced; the delta is the whole-program overhead of `--trace`.
//
// Like bench_ifdisconnected, the binary replaces global operator new to
// export `allocs_per_iter` for the hot-path benchmarks.
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "runtime/Machine.h"
#include "support/Trace.h"

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>

//===----------------------------------------------------------------------===//
// Global allocation counter: proves record/span paths are allocation-free
// in steady state (BENCH_*.json tracks allocs_per_iter).
//===----------------------------------------------------------------------===//

namespace {
std::atomic<uint64_t> GHeapAllocs{0};
} // namespace

void *operator new(std::size_t Size) {
  GHeapAllocs.fetch_add(1, std::memory_order_relaxed);
  if (void *P = std::malloc(Size ? Size : 1))
    return P;
  throw std::bad_alloc();
}
void *operator new[](std::size_t Size) { return ::operator new(Size); }
void operator delete(void *P) noexcept { std::free(P); }
void operator delete(void *P, std::size_t) noexcept { std::free(P); }
void operator delete[](void *P) noexcept { std::free(P); }
void operator delete[](void *P, std::size_t) noexcept { std::free(P); }

using namespace fearless;

namespace {

/// Measures \p Body per iteration with the allocation counter armed and
/// exports allocs_per_iter (expected 0 for every hot-path bench here).
template <typename Fn>
void runAllocCounted(benchmark::State &State, Fn Body) {
  uint64_t AllocsBefore = GHeapAllocs.load(std::memory_order_relaxed);
  for (auto _ : State)
    Body();
  uint64_t AllocsInLoop =
      GHeapAllocs.load(std::memory_order_relaxed) - AllocsBefore;
  State.counters["allocs_per_iter"] =
      State.iterations()
          ? static_cast<double>(AllocsInLoop) /
                static_cast<double>(State.iterations())
          : 0.0;
}

//===----------------------------------------------------------------------===//
// Hot path: disabled vs enabled record cost.
//===----------------------------------------------------------------------===//

void BM_SpanDisabled(benchmark::State &State) {
  // What every instrumented site costs when tracing is off at runtime:
  // construct + destroy a span over a null buffer.
  TraceBuffer *Null = nullptr;
  runAllocCounted(State, [&] {
    TraceSpan Span(Null, "bench.span", "bench");
    benchmark::DoNotOptimize(Null);
  });
}
BENCHMARK(BM_SpanDisabled);

void BM_SpanEnabled(benchmark::State &State) {
  // The enabled span: two clock reads and one ring store. The session and
  // buffer exist before the measured region; the loop must not allocate.
  TraceSession Session;
  TraceBuffer &Buf = Session.registerThread(0, "bench");
  runAllocCounted(State, [&] {
    TraceSpan Span(&Buf, "bench.span", "bench");
    Span.setArg("iter", 1);
  });
  State.counters["recorded"] = static_cast<double>(Buf.recorded());
}
BENCHMARK(BM_SpanEnabled);

void BM_InstantEnabled(benchmark::State &State) {
  // The cheapest enabled event: one clock read, one store.
  TraceSession Session;
  TraceBuffer &Buf = Session.registerThread(0, "bench");
  runAllocCounted(State,
                  [&] { Buf.instant("bench.tick", "bench", "n", 7); });
  State.counters["recorded"] = static_cast<double>(Buf.recorded());
}
BENCHMARK(BM_InstantEnabled);

void BM_RecordWraparound(benchmark::State &State) {
  // A deliberately tiny ring recorded far past capacity: overwrite must
  // stay flat (no growth, no allocation) and the drop tally must account
  // for everything beyond the newest window.
  TraceConfig Config;
  Config.BufferCapacity = static_cast<size_t>(State.range(0));
  TraceSession Session(Config);
  TraceBuffer &Buf = Session.registerThread(0, "bench");
  runAllocCounted(State, [&] {
    Buf.record("bench.wrap", "bench", 'X', 1, 1, "n", 42);
  });
  State.counters["capacity"] = static_cast<double>(Buf.capacity());
  State.counters["dropped"] = static_cast<double>(Buf.dropped());
}
BENCHMARK(BM_RecordWraparound)->Arg(64)->Arg(4096);

//===----------------------------------------------------------------------===//
// Export: paid once at exit, after the writers joined.
//===----------------------------------------------------------------------===//

void BM_ExportChromeJson(benchmark::State &State) {
  size_t N = static_cast<size_t>(State.range(0));
  TraceConfig Config;
  Config.BufferCapacity = N;
  TraceSession Session(Config);
  TraceBuffer &Buf = Session.registerThread(0, "bench");
  for (size_t I = 0; I < N; ++I)
    Buf.record("bench.event", "bench", 'X', I * 1000, 500, "i", I);
  size_t Bytes = 0;
  for (auto _ : State) {
    std::string Json = Session.toChromeJson();
    Bytes = Json.size();
    benchmark::DoNotOptimize(Json.data());
  }
  State.counters["events"] = static_cast<double>(Buf.retained());
  State.counters["json_bytes"] = static_cast<double>(Bytes);
}
BENCHMARK(BM_ExportChromeJson)->Arg(1024)->Arg(16384);

//===----------------------------------------------------------------------===//
// End to end: a whole Machine run traced vs untraced (the Fig. 5 dll
// workload from bench_runtime, including its runtime `if disconnected`).
//===----------------------------------------------------------------------===//

const char *DllDriver = R"prog(
def drive(n : int) : int {
  let l = dll_new();
  let i = 0;
  while (i < n) {
    let p = new data(i) in { push_front(l, p) };
    i = i + 1
  };
  let removed = 0;
  let j = 0;
  while (j < n) {
    let d = let some(x) = remove_tail(l) in { 1 } else { 0 };
    removed = removed + d;
    j = j + 1
  };
  removed
}
)prog";

void runMachineWorkload(benchmark::State &State, bool Traced) {
  Expected<Pipeline> P =
      compile(std::string(programs::DllSuite) + DllDriver);
  if (!P) {
    State.SkipWithError(P.error().Message.c_str());
    return;
  }
  Symbol Drive = P->Prog->Names.intern("drive");
  uint64_t Steps = 0;
  for (auto _ : State) {
    // The session (buffer registration + teardown) is part of what
    // `--trace` costs per run, so it stays inside the timed region; the
    // JSON export is paid once at exit in real runs and is benched
    // separately above. The ring is sized to the workload (~n traversal
    // spans + step ticks) so the per-run zeroing of the default 64Ki
    // buffers does not drown the record cost being measured.
    TraceConfig Config;
    Config.BufferCapacity = 4 * 1024;
    TraceSession Trace(Config);
    MachineOptions Opts;
    if (Traced)
      Opts.Trace = &Trace;
    Machine M(P->Checked, Opts);
    M.spawn(Drive, {Value::intVal(State.range(0))});
    Expected<MachineSummary> R = M.run();
    if (!R) {
      State.SkipWithError(R.error().Message.c_str());
      return;
    }
    benchmark::DoNotOptimize(R->ThreadResults[0]);
    Steps = R->Steps;
  }
  State.counters["steps"] = static_cast<double>(Steps);
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(Steps));
}

void BM_MachineDll_Untraced(benchmark::State &State) {
  runMachineWorkload(State, /*Traced=*/false);
}
BENCHMARK(BM_MachineDll_Untraced)->Arg(64)->Arg(512);

void BM_MachineDll_Traced(benchmark::State &State) {
  runMachineWorkload(State, /*Traced=*/true);
}
BENCHMARK(BM_MachineDll_Traced)->Arg(64)->Arg(512);

} // namespace

BENCHMARK_MAIN();
