//===- bench/bench_ifdisconnected.cpp -------------------------------------===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
//
// E5 — §5.2: the efficient `if disconnected` check.
//
//  - Detaching one object from an n-object region: the refcount-based
//    interleaved traversal is O(1) regardless of n; the naive exact check
//    is O(n).
//  - Detaching a k-object subgraph: O(k) vs O(n).
//  - The "buggy" case (arguments still connected): the interleaved
//    traversal still terminates after O(min-side) work — the paper's
//    claim that buggy uses cost nearly nothing extra. The
//    `losing_side_visited` counter tracks the objects expanded on the
//    large (losing) side, making that claim a number instead of prose.
//
// Every benchmark drives the checks through one reused DisconnectScratch
// (exactly how the interpreter's per-thread scratch behaves), and the
// binary replaces global operator new to export `allocs_per_iter`: the
// steady-state allocation count per check, which must be 0.
//
//===----------------------------------------------------------------------===//

#include "analysis/StaticDisconnect.h"
#include "checker/Checker.h"
#include "parser/Parser.h"
#include "runtime/Disconnected.h"
#include "runtime/Heap.h"
#include "sema/StructTable.h"

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>

//===----------------------------------------------------------------------===//
// Global allocation counter: proves the scratch-reuse paths are
// allocation-free in steady state (BENCH_*.json tracks allocs_per_iter).
//===----------------------------------------------------------------------===//

namespace {
std::atomic<uint64_t> GHeapAllocs{0};
} // namespace

void *operator new(std::size_t Size) {
  GHeapAllocs.fetch_add(1, std::memory_order_relaxed);
  if (void *P = std::malloc(Size ? Size : 1))
    return P;
  throw std::bad_alloc();
}
void *operator new[](std::size_t Size) { return ::operator new(Size); }
void operator delete(void *P) noexcept { std::free(P); }
void operator delete(void *P, std::size_t) noexcept { std::free(P); }
void operator delete[](void *P) noexcept { std::free(P); }
void operator delete[](void *P, std::size_t) noexcept { std::free(P); }

using namespace fearless;

namespace {

/// A heap containing one circular doubly linked region of n nodes, plus a
/// detached subgraph of k nodes (self-contained ring).
struct Workload {
  std::optional<Program> Prog;
  StructTable Structs;
  std::unique_ptr<Heap> TheHeap;
  Loc RegionRoot;   // root of the n-node ring
  Loc DetachedRoot; // root of the k-node ring
  Symbol NextSym, PrevSym;
  /// Reused across every check in the benchmark loop, mirroring the
  /// interpreter's per-thread scratch ownership.
  DisconnectScratch Scratch;

  Workload(size_t N, size_t K, bool Connected) {
    DiagnosticEngine Diags;
    Prog = parseProgram(R"(
struct node {
  iso item : node?;
  next : node?;
  prev : node?;
}
)",
                        Diags);
    Structs.build(*Prog, Diags);
    TheHeap = std::make_unique<Heap>(Structs, N + K + 16);
    NextSym = Prog->Names.intern("next");
    PrevSym = Prog->Names.intern("prev");
    RegionRoot = ring(N);
    DetachedRoot = ring(K);
    if (Connected) {
      // Sneak one non-iso edge from the big ring into the small one: the
      // "buggy code" case — the graphs are not actually disjoint.
      link(RegionRoot, NextSym, DetachedRoot);
    }
  }

  void link(Loc From, Symbol Field, Loc To) {
    const FieldInfo *F = TheHeap->get(From).Struct->findField(Field);
    TheHeap->setField(From, F->Index, Value::locVal(To));
  }

  Loc ring(size_t N) {
    std::vector<Loc> Nodes;
    Symbol NodeSym = Prog->Names.intern("node");
    for (size_t I = 0; I < N; ++I)
      Nodes.push_back(TheHeap->allocate(NodeSym));
    for (size_t I = 0; I < N; ++I) {
      link(Nodes[I], NextSym, Nodes[(I + 1) % N]);
      link(Nodes[I], PrevSym, Nodes[(I + N - 1) % N]);
    }
    return Nodes.front();
  }
};

/// Runs \p Check once to warm the scratch, then measures the loop with
/// the allocation counter armed; exports visited/edge/allocation
/// counters. \p Check runs with A = the detached root and B = the region
/// root, so ObjectsVisitedB is the work spent on the big (in the buggy
/// case: losing) side.
template <typename CheckFn>
void runCheckLoop(benchmark::State &State, Workload &W, CheckFn Check) {
  DisconnectOutcome Last = Check(W); // warm-up: grows the scratch tables
  uint64_t AllocsBefore = GHeapAllocs.load(std::memory_order_relaxed);
  for (auto _ : State) {
    DisconnectOutcome Out = Check(W);
    benchmark::DoNotOptimize(Out.Disconnected);
    Last = Out;
  }
  uint64_t AllocsInLoop =
      GHeapAllocs.load(std::memory_order_relaxed) - AllocsBefore;
  State.counters["visited"] = static_cast<double>(Last.ObjectsVisited);
  State.counters["edges"] = static_cast<double>(Last.EdgesTraversed);
  State.counters["losing_side_visited"] =
      static_cast<double>(Last.ObjectsVisitedB);
  State.counters["allocs_per_iter"] =
      State.iterations()
          ? static_cast<double>(AllocsInLoop) /
                static_cast<double>(State.iterations())
          : 0.0;
}

DisconnectOutcome refCount(Workload &W) {
  return checkDisconnectedRefCount(*W.TheHeap, W.DetachedRoot,
                                   W.RegionRoot, W.Scratch);
}

DisconnectOutcome naive(Workload &W) {
  return checkDisconnectedNaive(*W.TheHeap, W.DetachedRoot, W.RegionRoot,
                                W.Scratch);
}

void BM_RefCount_DetachSmall(benchmark::State &State) {
  size_t N = static_cast<size_t>(State.range(0));
  Workload W(N, /*K=*/1, /*Connected=*/false);
  runCheckLoop(State, W, refCount);
  State.counters["region_size"] = static_cast<double>(N);
}
BENCHMARK(BM_RefCount_DetachSmall)
    ->Arg(16)
    ->Arg(256)
    ->Arg(4096)
    ->Arg(65536)
    ->Arg(1 << 20);

void BM_Naive_DetachSmall(benchmark::State &State) {
  size_t N = static_cast<size_t>(State.range(0));
  Workload W(N, /*K=*/1, /*Connected=*/false);
  runCheckLoop(State, W, naive);
  State.counters["region_size"] = static_cast<double>(N);
}
BENCHMARK(BM_Naive_DetachSmall)
    ->Arg(16)
    ->Arg(256)
    ->Arg(4096)
    ->Arg(65536)
    ->Arg(1 << 20);

void BM_RefCount_DetachSubgraph(benchmark::State &State) {
  size_t K = static_cast<size_t>(State.range(0));
  Workload W(/*N=*/1 << 18, K, /*Connected=*/false);
  runCheckLoop(State, W, refCount);
  State.counters["detached_size"] = static_cast<double>(K);
}
BENCHMARK(BM_RefCount_DetachSubgraph)
    ->Arg(1)
    ->Arg(16)
    ->Arg(256)
    ->Arg(4096);

//===----------------------------------------------------------------------===//
// Elision: the static analysis proved the site must-disconnected, so the
// interpreter answers from the verdict table without touching the heap.
//===----------------------------------------------------------------------===//

/// A checked program whose single `if disconnected` site the static
/// analysis classifies as must-disconnected, plus its verdict table —
/// the exact inputs the interpreter's elision path consults.
struct ElisionOracle {
  FrontendResult Front;
  AnalysisReport Report;
  DisconnectVerdictTable Table;
  const Expr *Site = nullptr;

  ElisionOracle() {
    auto FR = checkSource(R"(
struct gnode { next : gnode; }

def detach(unused : int) : int {
  let a = new gnode();
  let b = new gnode();
  a.next = b;
  a.next = a;
  if disconnected(a, b) { 1 } else { 0 }
}
)");
    if (!FR) {
      std::fprintf(stderr, "elision workload failed to check: %s\n",
                   FR.error().render().c_str());
      std::abort();
    }
    Front = std::move(*FR);
    Report = analyzeProgram(Front.Checked);
    Table = Report.verdictTable();
    if (Report.Sites.size() != 1 ||
        Report.Sites[0].Verdict != DisconnectVerdict::MustDisconnected) {
      std::fprintf(stderr,
                   "elision workload is not must-disconnected\n");
      std::abort();
    }
    Site = Report.Sites[0].Site;
  }
};

void BM_Elided_DetachSubgraph(benchmark::State &State) {
  // Same shape as BM_RefCount_DetachSubgraph — a k-object subgraph
  // detached from a 2^18-object region — but the check is answered from
  // the static verdict table, the way Interp does for must-* sites. The
  // heap is live but untouched: ns/op must be flat in k and every
  // traversal counter must be exactly zero.
  size_t K = static_cast<size_t>(State.range(0));
  Workload W(/*N=*/1 << 18, K, /*Connected=*/false);
  ElisionOracle Oracle;
  DisconnectOutcome Warm{};
  uint64_t AllocsBefore = GHeapAllocs.load(std::memory_order_relaxed);
  for (auto _ : State) {
    auto It = Oracle.Table.find(Oracle.Site);
    bool Disc = It != Oracle.Table.end() &&
                It->second == DisconnectVerdict::MustDisconnected;
    benchmark::DoNotOptimize(Disc);
  }
  uint64_t AllocsInLoop =
      GHeapAllocs.load(std::memory_order_relaxed) - AllocsBefore;
  State.counters["visited"] = static_cast<double>(Warm.ObjectsVisited);
  State.counters["edges"] = static_cast<double>(Warm.EdgesTraversed);
  State.counters["losing_side_visited"] =
      static_cast<double>(Warm.ObjectsVisitedB);
  State.counters["allocs_per_iter"] =
      State.iterations()
          ? static_cast<double>(AllocsInLoop) /
                static_cast<double>(State.iterations())
          : 0.0;
  State.counters["detached_size"] = static_cast<double>(K);
}
BENCHMARK(BM_Elided_DetachSubgraph)->Arg(1)->Arg(16)->Arg(256)->Arg(4096);

void BM_RefCount_BuggyStillConnected(benchmark::State &State) {
  // The arguments' graphs intersect (the programmer forgot to repoint a
  // field, the Fig. 5 discussion): the interleaved traversal detects the
  // intersection after exploring only the small side, so
  // losing_side_visited must stay O(1) as region_size grows.
  size_t N = static_cast<size_t>(State.range(0));
  Workload W(N, /*K=*/2, /*Connected=*/true);
  runCheckLoop(State, W, refCount);
  State.counters["region_size"] = static_cast<double>(N);
}
BENCHMARK(BM_RefCount_BuggyStillConnected)
    ->Arg(256)
    ->Arg(4096)
    ->Arg(65536);

void BM_Naive_BuggyStillConnected(benchmark::State &State) {
  // Baseline: the exact check pays for the whole losing side.
  size_t N = static_cast<size_t>(State.range(0));
  Workload W(N, /*K=*/2, /*Connected=*/true);
  runCheckLoop(State, W, naive);
  State.counters["region_size"] = static_cast<double>(N);
}
BENCHMARK(BM_Naive_BuggyStillConnected)->Arg(256)->Arg(4096)->Arg(65536);

} // namespace

BENCHMARK_MAIN();
