//===- bench/bench_ifdisconnected.cpp -------------------------------------===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
//
// E5 — §5.2: the efficient `if disconnected` check.
//
//  - Detaching one object from an n-object region: the refcount-based
//    interleaved traversal is O(1) regardless of n; the naive exact check
//    is O(n).
//  - Detaching a k-object subgraph: O(k) vs O(n).
//  - The "buggy" case (arguments still connected): the interleaved
//    traversal still terminates after O(min-side) work — the paper's
//    claim that buggy uses cost nearly nothing extra.
//
//===----------------------------------------------------------------------===//

#include "parser/Parser.h"
#include "runtime/Disconnected.h"
#include "runtime/Heap.h"
#include "sema/StructTable.h"

#include <benchmark/benchmark.h>

using namespace fearless;

namespace {

/// A heap containing one circular doubly linked region of n nodes, plus a
/// detached subgraph of k nodes (self-contained ring).
struct Workload {
  std::optional<Program> Prog;
  StructTable Structs;
  std::unique_ptr<Heap> TheHeap;
  Loc RegionRoot;   // root of the n-node ring
  Loc DetachedRoot; // root of the k-node ring
  Symbol NextSym, PrevSym;

  Workload(size_t N, size_t K, bool Connected) {
    DiagnosticEngine Diags;
    Prog = parseProgram(R"(
struct node {
  iso item : node?;
  next : node?;
  prev : node?;
}
)",
                        Diags);
    Structs.build(*Prog, Diags);
    TheHeap = std::make_unique<Heap>(Structs, N + K + 16);
    NextSym = Prog->Names.intern("next");
    PrevSym = Prog->Names.intern("prev");
    RegionRoot = ring(N);
    DetachedRoot = ring(K);
    if (Connected) {
      // Sneak one non-iso edge from the big ring into the small one: the
      // "buggy code" case — the graphs are not actually disjoint.
      link(RegionRoot, NextSym, DetachedRoot);
    }
  }

  void link(Loc From, Symbol Field, Loc To) {
    const FieldInfo *F = TheHeap->get(From).Struct->findField(Field);
    TheHeap->setField(From, F->Index, Value::locVal(To));
  }

  Loc ring(size_t N) {
    std::vector<Loc> Nodes;
    Symbol NodeSym = Prog->Names.intern("node");
    for (size_t I = 0; I < N; ++I)
      Nodes.push_back(TheHeap->allocate(NodeSym));
    for (size_t I = 0; I < N; ++I) {
      link(Nodes[I], NextSym, Nodes[(I + 1) % N]);
      link(Nodes[I], PrevSym, Nodes[(I + N - 1) % N]);
    }
    return Nodes.front();
  }
};

void BM_RefCount_DetachSmall(benchmark::State &State) {
  size_t N = static_cast<size_t>(State.range(0));
  Workload W(N, /*K=*/1, /*Connected=*/false);
  size_t Visited = 0;
  size_t Edges = 0;
  for (auto _ : State) {
    DisconnectOutcome Out = checkDisconnectedRefCount(
        *W.TheHeap, W.DetachedRoot, W.RegionRoot);
    benchmark::DoNotOptimize(Out.Disconnected);
    Visited = Out.ObjectsVisited;
    Edges = Out.EdgesTraversed;
  }
  State.counters["visited"] = static_cast<double>(Visited);
  State.counters["edges"] = static_cast<double>(Edges);
  State.counters["region_size"] = static_cast<double>(N);
}
BENCHMARK(BM_RefCount_DetachSmall)
    ->Arg(16)
    ->Arg(256)
    ->Arg(4096)
    ->Arg(65536)
    ->Arg(1 << 20);

void BM_Naive_DetachSmall(benchmark::State &State) {
  size_t N = static_cast<size_t>(State.range(0));
  Workload W(N, /*K=*/1, /*Connected=*/false);
  size_t Visited = 0;
  size_t Edges = 0;
  for (auto _ : State) {
    DisconnectOutcome Out =
        checkDisconnectedNaive(*W.TheHeap, W.DetachedRoot, W.RegionRoot);
    benchmark::DoNotOptimize(Out.Disconnected);
    Visited = Out.ObjectsVisited;
    Edges = Out.EdgesTraversed;
  }
  State.counters["visited"] = static_cast<double>(Visited);
  State.counters["edges"] = static_cast<double>(Edges);
  State.counters["region_size"] = static_cast<double>(N);
}
BENCHMARK(BM_Naive_DetachSmall)
    ->Arg(16)
    ->Arg(256)
    ->Arg(4096)
    ->Arg(65536)
    ->Arg(1 << 20);

void BM_RefCount_DetachSubgraph(benchmark::State &State) {
  size_t K = static_cast<size_t>(State.range(0));
  Workload W(/*N=*/1 << 18, K, /*Connected=*/false);
  size_t Visited = 0;
  size_t Edges = 0;
  for (auto _ : State) {
    DisconnectOutcome Out = checkDisconnectedRefCount(
        *W.TheHeap, W.DetachedRoot, W.RegionRoot);
    benchmark::DoNotOptimize(Out.Disconnected);
    Visited = Out.ObjectsVisited;
    Edges = Out.EdgesTraversed;
  }
  State.counters["visited"] = static_cast<double>(Visited);
  State.counters["edges"] = static_cast<double>(Edges);
  State.counters["detached_size"] = static_cast<double>(K);
}
BENCHMARK(BM_RefCount_DetachSubgraph)
    ->Arg(1)
    ->Arg(16)
    ->Arg(256)
    ->Arg(4096);

void BM_RefCount_BuggyStillConnected(benchmark::State &State) {
  // The arguments' graphs intersect (the programmer forgot to repoint a
  // field, the Fig. 5 discussion): the interleaved traversal detects the
  // intersection after exploring only the small side.
  size_t N = static_cast<size_t>(State.range(0));
  Workload W(N, /*K=*/2, /*Connected=*/true);
  size_t Visited = 0;
  size_t Edges = 0;
  for (auto _ : State) {
    DisconnectOutcome Out = checkDisconnectedRefCount(
        *W.TheHeap, W.DetachedRoot, W.RegionRoot);
    benchmark::DoNotOptimize(Out.Disconnected);
    Visited = Out.ObjectsVisited;
    Edges = Out.EdgesTraversed;
  }
  State.counters["visited"] = static_cast<double>(Visited);
  State.counters["edges"] = static_cast<double>(Edges);
  State.counters["region_size"] = static_cast<double>(N);
}
BENCHMARK(BM_RefCount_BuggyStillConnected)
    ->Arg(256)
    ->Arg(4096)
    ->Arg(65536);

void BM_Naive_BuggyStillConnected(benchmark::State &State) {
  size_t N = static_cast<size_t>(State.range(0));
  Workload W(N, /*K=*/2, /*Connected=*/true);
  size_t Visited = 0;
  size_t Edges = 0;
  for (auto _ : State) {
    DisconnectOutcome Out =
        checkDisconnectedNaive(*W.TheHeap, W.DetachedRoot, W.RegionRoot);
    benchmark::DoNotOptimize(Out.Disconnected);
    Visited = Out.ObjectsVisited;
    Edges = Out.EdgesTraversed;
  }
  State.counters["visited"] = static_cast<double>(Visited);
  State.counters["edges"] = static_cast<double>(Edges);
  State.counters["region_size"] = static_cast<double>(N);
}
BENCHMARK(BM_Naive_BuggyStillConnected)->Arg(256)->Arg(4096)->Arg(65536);

} // namespace

BENCHMARK_MAIN();
