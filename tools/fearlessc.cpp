//===- tools/fearlessc.cpp - Command-line driver ---------------*- C++ -*-===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
//
// fearlessc — check, inspect, analyze, and run surface-language programs.
//
//   fearlessc check file.fls            parse + region-check + verify
//   fearlessc analyze file.fls          static region-graph analysis:
//                                       per-site disconnect verdicts and
//                                       region lints (--samples analyzes
//                                       every embedded sample instead)
//   fearlessc run file.fls main [ints]  check, then run main(ints...)
//   fearlessc mc file.fls [fn [ints]]   model-check the bounded schedule
//                                       space of fn (default main) plus
//                                       every --spawn thread: DFS over
//                                       scheduler choices with DPOR +
//                                       sleep-set pruning; a property
//                                       violation exits 7 and writes a
//                                       replayable counterexample
//                                       schedule (docs/MODELCHECK.md)
//   fearlessc disasm file.fls           print the compiled bytecode:
//                                       chunks, constant pools, and the
//                                       per-site check/erased decisions
//   fearlessc sig file.fls              print every elaborated signature
//   fearlessc derive file.fls fn        print fn's typing derivation
//   fearlessc sample NAME               print an embedded sample program
//                                       (sll | dll | rbtree | message)
//   fearlessc metrics                   (--daemon only) daemon metrics
//   fearlessc shutdown                  (--daemon only) drain the daemon
//
// The check/run pipeline itself lives in driver/CompilePipeline.h; this
// file is argument parsing plus printing. With --daemon SOCKET the same
// commands are served by a fearlessd instance over fearless-wire-v1
// (docs/SERVER.md) with bit-identical output — warm submissions skip
// parse/check/analyze/compile via the daemon's derivation cache.
//
// Options: --interprocedural[=on|off] (bottom-up function summaries at
// call sites, on by default; off restores pure signature havoc), --json
// (machine-readable analyze output, schema "fearless-analysis-v1"),
// --summaries (append the per-function summary dump to the analyze
// report), --werror (lint diagnostics fail the analyze with the check
// exit code), --no-oracle (naive unification search), --seed N (schedule),
// --engine vm|interp (register-bytecode VM — the default — or the
// tree-walking interpreter; debug builds cross-check vm results against
// the interpreter), --no-checks (erase dynamic reservation checks),
// --no-elide (keep the dynamic traversal even for statically proven
// disconnect sites),
// --stats, --metrics (runtime metrics as one JSON line on stdout),
// --trace FILE (Chrome trace_event JSON for Perfetto/chrome://tracing;
// composes with --metrics), --faults SPEC (deterministic fault
// injection, e.g. "chan.send=nth:3,seed=7"; the FEARLESS_FAULTS env var
// is the no-flag fallback — see docs/OBSERVABILITY.md),
// --daemon SOCKET (serve the command through a fearlessd instance),
// --spawn FN[:ints] (extra root thread for machine-mode run/mc,
// repeatable), --schedule FILE (replay a recorded schedule), and the mc
// budgets --mc-depth N, --mc-schedules N, --mc-preemptions N,
// --mc-checks=on|off, --mc-dpor=on|off, --mc-out FILE.
//
// Exit codes are distinct per failure class so scripts need not parse
// messages: 0 ok, 1 generic/internal, 2 usage, 3 parse error, 4
// check/verify rejection, 5 runtime fault (trap or injected), 6 daemon
// overloaded / shutting down (--daemon only), 7 model-checker
// counterexample (mc only).
//
//===----------------------------------------------------------------------===//

#include "analysis/StaticDisconnect.h"
#include "driver/CompilePipeline.h"
#include "driver/Driver.h"
#include "mc/Dpor.h"
#include "runtime/Invariants.h"
#include "server/Client.h"
#include "support/FaultInjector.h"
#include "support/Trace.h"
#include "vm/Compiler.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <vector>

using namespace fearless;

namespace {

// Exit codes (documented in docs/OBSERVABILITY.md, "Exit codes").
constexpr int ExitError = 1;        // generic / infrastructure
constexpr int ExitUsage = 2;        // bad invocation (incl. bad --faults)
constexpr int ExitParse = 3;        // syntax error
constexpr int ExitRuntimeFault = 5; // runtime trap or injected fault
constexpr int ExitCounterexample = 7; // mc found a property violation

/// Maps a pipeline diagnostic to the CLI exit code for its stage.
int exitCodeFor(const Diagnostic &D) { return exitCodeForStage(D.Stage); }

int usage() {
  std::fprintf(
      stderr,
      "usage: fearlessc <check|analyze|run|sig|derive|sample> [args] "
      "[options]\n"
      "  check   <file>                parse + region-check + verify\n"
      "  analyze <file>|--samples      static disconnect verdicts + lints\n"
      "  run     <file> <fn> [ints...] check, then run fn(ints...)\n"
      "  mc      <file> [fn [ints...]] model-check the bounded schedule\n"
      "                                space (fn defaults to main; add\n"
      "                                root threads with --spawn)\n"
      "  disasm  <file>                print the compiled bytecode\n"
      "  sig     <file>                print elaborated signatures\n"
      "  derive  <file> <fn>           print fn's typing derivation\n"
      "  dot     <file> <fn>           derivation as a Graphviz digraph\n"
      "  sample  <sll|dll|rbtree|message|trie|extras>  print a sample\n"
      "  metrics                       --daemon only: lifetime metrics\n"
      "  shutdown                      --daemon only: drain the daemon\n"
      "options: --interprocedural[=on|off] --json --summaries --werror "
      "--no-oracle --seed N --engine NAME --no-checks "
      "--no-elide --stats "
      "--metrics --trace FILE --faults SPEC --workers N --sched-seed N "
      "--daemon SOCKET\n"
      "  --interprocedural[=on|off]  bottom-up function summaries at\n"
      "                  call sites (default on; off = signature havoc)\n"
      "  --json          analyze: machine-readable output (schema\n"
      "                  fearless-analysis-v1)\n"
      "  --summaries     analyze: append the per-function summary dump\n"
      "  --werror        analyze: lint diagnostics exit with the check\n"
      "                  error code (4)\n"
      "  --engine NAME   execution engine for run: vm (the register\n"
      "                  bytecode VM, default) or interp (the\n"
      "                  tree-walking interpreter)\n"
      "  --workers N     run on the parallel executor's M:N task\n"
      "                  scheduler with an N-worker pool (0 = auto)\n"
      "  --sched-seed N  scheduling-decision seed for --workers runs\n"
      "  --spawn SPEC    extra root thread FN or FN:a,b,... for the\n"
      "                  deterministic machine (run and mc; repeatable)\n"
      "  --schedule FILE run: replay a recorded counterexample schedule\n"
      "                  deterministically (fearless-schedule-v1)\n"
      "  --mc-depth N    mc: max scheduler turns per execution\n"
      "                  (default 100000)\n"
      "  --mc-schedules N mc: max schedules to explore (0 = unlimited;\n"
      "                  default 100000)\n"
      "  --mc-preemptions N  mc: preemption bound (iterative context\n"
      "                  bounding; default unbounded)\n"
      "  --mc-checks=on|off  mc: explore with dynamic reservation checks\n"
      "                  erased (off) — the erasure-soundness gate; the\n"
      "                  §6 invariant validator always runs\n"
      "  --mc-dpor=on|off    mc: DPOR + sleep-set pruning (off = naive\n"
      "                  DFS over every interleaving)\n"
      "  --mc-out FILE   mc: counterexample schedule path (default\n"
      "                  <file>.sched)\n"
      "  --daemon SOCKET serve check/analyze/run/metrics/shutdown\n"
      "                  through the fearlessd instance at SOCKET\n"
      "                  (docs/SERVER.md); output is bit-identical to\n"
      "                  the standalone command\n"
      "exit codes: 0 ok, 1 error, 2 usage, 3 parse error, 4 check "
      "error, 5 runtime fault, 6 daemon overloaded/shutting down, "
      "7 mc counterexample\n");
  return ExitUsage;
}

Expected<std::string> readFile(const char *Path) {
  std::ifstream In(Path);
  if (!In)
    return fail(std::string("cannot open '") + Path + "'");
  std::ostringstream OS;
  OS << In.rdbuf();
  return OS.str();
}

struct Options {
  bool UseOracle = true;
  bool Checks = true;
  bool Elide = true;
  bool Stats = false;
  bool Metrics = false;
  /// Chrome trace_event output path (empty = tracing off). Composes
  /// with --metrics: the trace goes to this file, metrics to stdout.
  std::string TracePath;
  /// Fault-injection spec from --faults (see support/FaultInjector.h);
  /// empty = fall back to the FEARLESS_FAULTS env var, then disabled.
  std::string FaultSpec;
  bool FaultSpecSet = false;
  uint64_t Seed = 0;
  /// --engine: "vm" (register-bytecode VM, default) or "interp" (the
  /// tree-walking interpreter, retained as the differential oracle).
  std::string Engine = "vm";
  /// --workers: run on ParallelExec's M:N task scheduler instead of the
  /// deterministic abstract machine. 0 = auto-sized pool.
  size_t Workers = 0;
  bool WorkersSet = false;
  /// --sched-seed: scheduling-decision seed for --workers runs.
  uint64_t SchedSeed = 0;
  /// --interprocedural[=on|off]: bottom-up function summaries at call
  /// sites (default on; off = pure signature havoc).
  bool Interprocedural = true;
  /// --json: machine-readable analyze output.
  bool Json = false;
  /// --summaries: append the per-function summary dump to the report.
  bool DumpSummaries = false;
  /// --werror: lint diagnostics make `analyze` exit with the check
  /// error code.
  bool Werror = false;
  /// --daemon: fearlessd socket path; empty = standalone execution.
  std::string DaemonSocket;
  /// --spawn SPEC (repeatable): extra root threads for the deterministic
  /// machine, as "fn" or "fn:1,2,3". run and mc only.
  std::vector<std::string> SpawnSpecs;
  /// --schedule FILE: replay a recorded schedule (run only).
  std::string SchedulePath;
  /// mc budgets and modes (see mc/Dpor.h for semantics).
  uint64_t McDepth = 100000;
  uint64_t McSchedules = 100000;
  int64_t McPreemptions = -1;
  bool McChecksOn = true;
  bool McDpor = true;
  /// --mc-out: counterexample schedule path; empty = <file>.sched.
  std::string McOut;
};

/// Parses a --spawn spec: "fn" or "fn:1,2,3" (int args only, matching
/// the positional-argument rule for the entry function).
bool parseSpawnSpec(const std::string &Spec,
                    std::pair<std::string, std::vector<int64_t>> &Out) {
  size_t Colon = Spec.find(':');
  Out.first = Spec.substr(0, Colon == std::string::npos ? Spec.size()
                                                        : Colon);
  Out.second.clear();
  if (Out.first.empty())
    return false;
  if (Colon == std::string::npos)
    return true;
  std::string Rest = Spec.substr(Colon + 1);
  size_t Pos = 0;
  while (Pos <= Rest.size()) {
    size_t Comma = Rest.find(',', Pos);
    std::string Tok = Rest.substr(
        Pos, Comma == std::string::npos ? Rest.size() - Pos : Comma - Pos);
    if (Tok.empty())
      return false;
    char *End = nullptr;
    long long V = std::strtoll(Tok.c_str(), &End, 10);
    if (*End != '\0')
      return false;
    Out.second.push_back(V);
    if (Comma == std::string::npos)
      break;
    Pos = Comma + 1;
  }
  return true;
}

/// Resolves the effective fault plan: --faults wins, then the
/// FEARLESS_FAULTS env var, then none. A malformed spec is a usage
/// error, diagnosed by the caller via the error channel.
Expected<std::optional<FaultPlan>> resolveFaultPlan(const Options &Opts) {
  std::string FaultSpec = Opts.FaultSpec;
  if (!Opts.FaultSpecSet) {
    if (const char *Env = std::getenv("FEARLESS_FAULTS"))
      FaultSpec = Env;
  }
  if (FaultSpec.empty())
    return std::optional<FaultPlan>();
  Expected<FaultPlan> Plan = parseFaultSpec(FaultSpec);
  if (!Plan)
    return Plan.takeFailure();
  return std::optional<FaultPlan>(*Plan);
}

/// The artifact-level option subset (the derivation-cache key side).
/// Must mirror the daemon's mapping in Server::handleRequest so a
/// standalone run and a daemon run of the same invocation build the
/// same artifact.
PipelineOptions pipelineOptions(const Options &Opts) {
  PipelineOptions PO;
  PO.UseOracle = Opts.UseOracle;
  PO.Interprocedural = Opts.Interprocedural;
  PO.Checks = Opts.Checks;
  PO.Elide = Opts.Elide;
  PO.EmitChecks = Opts.Checks && !Opts.WorkersSet;
  PO.Engine = Opts.Engine;
  return PO;
}

Expected<Pipeline> compileFile(const char *Path, const Options &Opts) {
  Expected<std::string> Source = readFile(Path);
  if (!Source)
    return Source.takeFailure();
  CheckerOptions CO;
  CO.UseLivenessOracle = Opts.UseOracle;
  return compile(*Source, CO);
}

int cmdCheck(const char *Path, const Options &Opts) {
  Expected<std::string> Source = readFile(Path);
  if (!Source) {
    std::fprintf(stderr, "%s\n", Source.error().render().c_str());
    return exitCodeFor(Source.error());
  }
  Expected<std::shared_ptr<const CompiledArtifact>> A =
      buildArtifact(*Source, pipelineOptions(Opts));
  if (!A) {
    std::fprintf(stderr, "%s\n", A.error().render().c_str());
    return exitCodeFor(A.error());
  }
  std::fputs(renderCheckOutput(**A, Path, Opts.Stats).c_str(), stdout);
  return 0;
}

int analyzeOne(std::string_view Source, const char *Name,
               const Options &Opts) {
  SourceAnalysisOptions AO;
  AO.Interprocedural = Opts.Interprocedural;
  AO.DumpSummaries = Opts.DumpSummaries;
  AO.Json = Opts.Json;
  SourceAnalysis A = analyzeSourceText(Source, Name, AO);
  std::fputs(A.Rendered.c_str(), stdout);
  if (A.HardError)
    return ExitParse;
  if (Opts.Werror && A.LintDiags > 0) {
    // Lints are check-stage findings, so --werror exits with the
    // check-stage code — scripts can distinguish "region misuse" from
    // infrastructure failures without parsing messages.
    Diagnostic D;
    D.Stage = DiagnosticStage::Check;
    std::fprintf(stderr,
                 "fearlessc: error: %zu lint diagnostic(s) with --werror\n",
                 A.LintDiags);
    return exitCodeFor(D);
  }
  return 0;
}

int cmdAnalyze(const char *Path, const Options &Opts) {
  Expected<std::string> Source = readFile(Path);
  if (!Source) {
    std::fprintf(stderr, "%s\n", Source.error().render().c_str());
    return 1;
  }
  return analyzeOne(*Source, Path, Opts);
}

/// The embedded sample programs, keyed by CLI name. Function-local
/// static on purpose: MessagePassing/Extras point into composite
/// std::strings built by Driver.cpp's dynamic initializers, so a
/// namespace-scope array here could capture null pointers depending on
/// cross-TU static initialization order.
const std::vector<std::pair<const char *, const char *>> &
embeddedSamples() {
  static const std::vector<std::pair<const char *, const char *>> Samples =
      {{"sll", programs::SllSuite},
       {"dll", programs::DllSuite},
       {"rbtree", programs::RedBlackTree},
       {"message", programs::MessagePassing},
       {"trie", programs::BitTrie},
       {"extras", programs::Extras}};
  return Samples;
}

int cmdAnalyzeSamples(const Options &Opts) {
  int Rc = 0;
  for (const auto &[Name, Source] : embeddedSamples())
    Rc |= analyzeOne(Source, Name, Opts);
  return Rc;
}

int cmdRun(const char *Path, const char *Fn,
           const std::vector<int64_t> &Args, const Options &Opts) {
  // Fault injection: --faults wins; the FEARLESS_FAULTS env var is the
  // hook for harnesses that cannot edit the command line. A malformed
  // spec is an invocation error (exit 2), reported before any work.
  Expected<std::optional<FaultPlan>> Plan = resolveFaultPlan(Opts);
  if (!Plan) {
    std::fprintf(stderr, "fearlessc: bad fault spec: %s\n",
                 Plan.error().Message.c_str());
    return ExitUsage;
  }
  std::unique_ptr<FaultInjector> Faults;
  if (*Plan)
    Faults = std::make_unique<FaultInjector>(**Plan);

  // --spawn / --schedule: resolved up front so a malformed spec or an
  // unreadable/corrupt schedule file is a clean error before any work.
  std::vector<std::pair<std::string, std::vector<int64_t>>> Spawns;
  for (const std::string &Spec : Opts.SpawnSpecs) {
    std::pair<std::string, std::vector<int64_t>> S;
    if (!parseSpawnSpec(Spec, S)) {
      std::fprintf(stderr,
                   "fearlessc: bad --spawn spec '%s' (expected FN or "
                   "FN:int,int,...)\n",
                   Spec.c_str());
      return ExitUsage;
    }
    Spawns.push_back(std::move(S));
  }
  std::optional<mc::Schedule> Sched;
  if (!Opts.SchedulePath.empty()) {
    Expected<mc::Schedule> S = mc::Schedule::loadFile(Opts.SchedulePath);
    if (!S) {
      std::fprintf(stderr, "fearlessc: %s\n", S.error().Message.c_str());
      return ExitUsage;
    }
    Sched.emplace(S.take());
  }

  Expected<std::string> Source = readFile(Path);
  if (!Source) {
    std::fprintf(stderr, "%s\n", Source.error().render().c_str());
    return exitCodeFor(Source.error());
  }

  // Tracing: probe the sink *before* the run so an unwritable path is a
  // clean up-front error, not a lost trace after minutes of execution.
  TraceSession Trace;
  bool UseTrace = !Opts.TracePath.empty();
  if (UseTrace) {
    std::ofstream Probe(Opts.TracePath, std::ios::app);
    if (!Probe) {
      std::fprintf(stderr,
                   "fearlessc: cannot open trace output '%s' for "
                   "writing\n",
                   Opts.TracePath.c_str());
      return 1;
    }
#if !FEARLESS_TRACING_ENABLED
    std::fprintf(stderr,
                 "fearlessc: warning: tracing is compiled out "
                 "(FEARLESS_TRACE=OFF); '%s' will hold an empty trace\n",
                 Opts.TracePath.c_str());
#endif
  }

  Expected<std::shared_ptr<const CompiledArtifact>> A = buildArtifact(
      *Source, pipelineOptions(Opts), UseTrace ? &Trace : nullptr);
  if (!A) {
    std::fprintf(stderr, "%s\n", A.error().render().c_str());
    return exitCodeFor(A.error());
  }

  RunSpec Spec;
  Spec.Fn = Fn;
  Spec.Args = Args;
  Spec.Seed = Opts.Seed;
  Spec.Workers = Opts.Workers;
  Spec.WorkersSet = Opts.WorkersSet;
  Spec.SchedSeed = Opts.SchedSeed;
  Spec.Stats = Opts.Stats;
  Spec.Metrics = Opts.Metrics;
  Spec.Faults = Faults.get();
  Spec.Trace = UseTrace ? &Trace : nullptr;
  Spec.Spawns = std::move(Spawns);
  Spec.Schedule = Sched ? &*Sched : nullptr;
  RunOutcome O = runArtifact(**A, Spec);

  // Write whatever was traced even when the run fails — a trace of the
  // failing run is exactly what the flag is for.
  if (UseTrace) {
    std::string TraceError;
    if (!Trace.writeChromeJson(Opts.TracePath, TraceError)) {
      std::fprintf(stderr, "fearlessc: %s\n", TraceError.c_str());
      return ExitError;
    }
  }
  std::fputs(O.Out.c_str(), stdout);
  std::fputs(O.Err.c_str(), stderr);
  return O.Exit;
}

int cmdMc(const char *Path, const char *Fn,
          const std::vector<int64_t> &Args, const Options &Opts) {
  Expected<std::optional<FaultPlan>> Plan = resolveFaultPlan(Opts);
  if (!Plan) {
    std::fprintf(stderr, "fearlessc: bad fault spec: %s\n",
                 Plan.error().Message.c_str());
    return ExitUsage;
  }
  std::vector<std::pair<std::string, std::vector<int64_t>>> Spawns;
  for (const std::string &Spec : Opts.SpawnSpecs) {
    std::pair<std::string, std::vector<int64_t>> S;
    if (!parseSpawnSpec(Spec, S)) {
      std::fprintf(stderr,
                   "fearlessc: bad --spawn spec '%s' (expected FN or "
                   "FN:int,int,...)\n",
                   Spec.c_str());
      return ExitUsage;
    }
    Spawns.push_back(std::move(S));
  }

  Expected<std::string> Source = readFile(Path);
  if (!Source) {
    std::fprintf(stderr, "%s\n", Source.error().render().c_str());
    return exitCodeFor(Source.error());
  }

  // --mc-checks=off composes with the user's --no-checks: exploration
  // runs with dynamic reservation checks erased, while the §6 invariant
  // validator below still machine-checks every intermediate state —
  // that asymmetry is the erasure-soundness gate.
  bool EffChecks = Opts.Checks && Opts.McChecksOn;
  Options ArtifactOpts = Opts;
  ArtifactOpts.Checks = EffChecks;
  Expected<std::shared_ptr<const CompiledArtifact>> A =
      buildArtifact(*Source, pipelineOptions(ArtifactOpts));
  if (!A) {
    std::fprintf(stderr, "%s\n", A.error().render().c_str());
    return exitCodeFor(A.error());
  }
  const CompiledArtifact &Art = **A;
  const Pipeline &P = Art.P;

  // Resolve the entry and every --spawn up front (same int-argument
  // rule as `run`).
  auto Resolve =
      [&](const std::string &FnName, const std::vector<int64_t> &IntArgs,
          std::pair<Symbol, std::vector<Value>> &Out) -> bool {
    Out.first = P.Prog->Names.intern(FnName);
    const FnDecl *Decl = P.Prog->findFunction(Out.first);
    if (!Decl) {
      std::fprintf(stderr, "no function '%s'\n", FnName.c_str());
      return false;
    }
    if (Decl->Params.size() != IntArgs.size()) {
      std::fprintf(stderr,
                   "'%s' takes %zu arguments, got %zu (only int "
                   "arguments are supported from the CLI)\n",
                   FnName.c_str(), Decl->Params.size(), IntArgs.size());
      return false;
    }
    Out.second.clear();
    for (size_t I = 0; I < IntArgs.size(); ++I) {
      if (!(Decl->Params[I].ParamType == Type::intTy())) {
        std::fprintf(stderr, "parameter %zu of '%s' is not int\n", I,
                     FnName.c_str());
        return false;
      }
      Out.second.push_back(Value::intVal(IntArgs[I]));
    }
    return true;
  };
  std::vector<std::pair<Symbol, std::vector<Value>>> Roots;
  Roots.emplace_back();
  if (!Resolve(Fn, Args, Roots.back()))
    return ExitError;
  for (const auto &[SpawnFn, SpawnArgs] : Spawns) {
    Roots.emplace_back();
    if (!Resolve(SpawnFn, SpawnArgs, Roots.back()))
      return ExitError;
  }

  // Every execution gets a fresh machine and (when faults are armed) a
  // fresh injector — the injector's occurrence counters are run-local
  // state, exactly like the heap.
  std::unique_ptr<FaultInjector> InjSlot;
  mc::MachineFactory Factory = [&]() {
    if (*Plan)
      InjSlot = std::make_unique<FaultInjector>(**Plan);
    MachineOptions MO;
    MO.CheckReservations = EffChecks;
    MO.StaticVerdicts = &Art.Verdicts;
    MO.ElideDisconnect = Opts.Elide;
    MO.Faults = InjSlot.get();
    if (Art.VmCode)
      MO.VmCode = &*Art.VmCode;
    // The machine-checked gate: §6 invariant validators after every
    // small step of every explored execution, checks on or off.
    MO.StepValidator =
        [](const Machine &M) -> std::optional<std::string> {
      if (auto E = checkReservationsDisjoint(M))
        return E;
      if (auto E = checkStoredRefCounts(M.heap()))
        return E;
      return std::nullopt;
    };
    auto M = std::make_unique<Machine>(P.Checked, MO);
    for (const auto &[S, V] : Roots)
      M->spawn(S, std::vector<Value>(V));
    return M;
  };

  mc::McOptions MO;
  MO.MaxDepth = Opts.McDepth;
  MO.MaxSchedules = Opts.McSchedules;
  MO.PreemptionBound = Opts.McPreemptions;
  MO.UseDpor = Opts.McDpor;
  // An injected fault may legally kill one interleaving and not another,
  // so result divergence is only a violation in fault-free exploration.
  MO.CheckDivergence = !*Plan;

  // Tracing: one mc.run span covering the whole exploration (the
  // per-execution machines run untraced — thousands of executions would
  // re-register the same ring buffers).
  TraceSession Trace;
  bool UseTrace = !Opts.TracePath.empty();
  TraceBuffer *TB = nullptr;
  uint64_t TraceStart = 0;
  if (UseTrace) {
    TB = &Trace.registerThread(4244, "mc");
    TraceStart = TB->now();
  }
  Expected<mc::McReport> Rep = mc::explore(Factory, MO);
  if (TB) {
    TB->record("mc.run", "mc", 'X', TraceStart, TB->now() - TraceStart);
    std::string TraceError;
    if (!Trace.writeChromeJson(Opts.TracePath, TraceError))
      std::fprintf(stderr, "fearlessc: %s\n", TraceError.c_str());
  }
  if (!Rep) {
    std::fprintf(stderr, "fearlessc: %s\n", Rep.error().Message.c_str());
    return ExitError;
  }

  if (Opts.Metrics) {
    RuntimeMetrics M;
    M.McSchedulesExplored = Rep->SchedulesExplored;
    M.McSchedulesPruned = Rep->SchedulesPruned;
    M.McStatesFingerprinted = Rep->StatesFingerprinted;
    M.Steps = Rep->StepsExecuted;
    M.AnalysisMustDisconnected = Art.MustDisconnectedSites;
    M.AnalysisMustConnected = Art.MustConnectedSites;
    M.AnalysisUnknown = Art.UnknownSites;
    std::printf("%s\n", M.toJson().c_str());
  }

  if (Rep->Counterexample) {
    mc::McCounterexample &CE = *Rep->Counterexample;
    std::string Out =
        Opts.McOut.empty() ? std::string(Path) + ".sched" : Opts.McOut;
    // The schedule file carries its own provenance: the reason and the
    // exact replay command, as comments.
    std::string Replay = "fearlessc run " + std::string(Path) + " " + Fn;
    for (int64_t V : Args)
      Replay += " " + std::to_string(V);
    for (const std::string &Spec : Opts.SpawnSpecs)
      Replay += " --spawn " + Spec;
    if (!EffChecks)
      Replay += " --no-checks";
    if (Opts.Engine != "vm")
      Replay += " --engine " + Opts.Engine;
    if (Opts.FaultSpecSet)
      Replay += " --faults " + Opts.FaultSpec;
    Replay += " --schedule " + Out;
    size_t Pos = 0;
    while (Pos < CE.Reason.size()) {
      size_t Nl = CE.Reason.find('\n', Pos);
      if (Nl == std::string::npos)
        Nl = CE.Reason.size();
      if (Nl > Pos)
        CE.Sched.Comments.push_back(CE.Reason.substr(Pos, Nl - Pos));
      Pos = Nl + 1;
    }
    CE.Sched.Comments.push_back("replay: " + Replay);
    std::fprintf(stderr, "fearlessc: mc: counterexample: %s\n",
                 CE.Reason.c_str());
    if (!CE.BlockedDump.empty())
      std::fprintf(stderr, "%s\n", CE.BlockedDump.c_str());
    std::fprintf(stderr,
                 "mc: after %llu schedule(s) explored, %llu pruned\n",
                 static_cast<unsigned long long>(Rep->SchedulesExplored),
                 static_cast<unsigned long long>(Rep->SchedulesPruned));
    if (ExpectedVoid W = CE.Sched.writeFile(Out); !W) {
      std::fprintf(stderr, "fearlessc: %s\n", W.error().Message.c_str());
      return ExitError;
    }
    std::fprintf(stderr, "mc: counterexample schedule written to %s\n",
                 Out.c_str());
    std::fprintf(stderr, "mc: replay with: %s\n", Replay.c_str());
    return ExitCounterexample;
  }

  std::printf("mc: %s %s: explored %llu schedule(s), %llu pruned, %llu "
              "state(s) fingerprinted, max depth %llu, %llu step(s)\n",
              Path, Fn,
              static_cast<unsigned long long>(Rep->SchedulesExplored),
              static_cast<unsigned long long>(Rep->SchedulesPruned),
              static_cast<unsigned long long>(Rep->StatesFingerprinted),
              static_cast<unsigned long long>(Rep->MaxDepthSeen),
              static_cast<unsigned long long>(Rep->StepsExecuted));
  if (!Rep->Complete)
    std::printf("mc: warning: exploration incomplete: %s\n",
                Rep->Clipped.c_str());
  else
    std::printf("mc: no violations in the bounded schedule space\n");
  return 0;
}

int cmdDisasm(const char *Path, const Options &Opts) {
  Expected<std::string> Source = readFile(Path);
  if (!Source) {
    std::fprintf(stderr, "%s\n", Source.error().render().c_str());
    return exitCodeFor(Source.error());
  }
  PipelineOptions PO = pipelineOptions(Opts);
  // Disassembly always shows the bytecode with the checks --no-checks
  // controls, independent of --workers.
  PO.Engine = "vm";
  PO.EmitChecks = Opts.Checks;
  Expected<std::shared_ptr<const CompiledArtifact>> A =
      buildArtifact(*Source, PO);
  if (!A) {
    std::fprintf(stderr, "%s\n", A.error().render().c_str());
    return exitCodeFor(A.error());
  }
  std::fputs(vm::disassemble(*(*A)->VmCode, (*A)->P.Checked).c_str(),
             stdout);
  return 0;
}

int cmdSig(const char *Path, const Options &Opts) {
  Expected<Pipeline> P = compileFile(Path, Opts);
  if (!P) {
    std::fprintf(stderr, "%s\n", P.error().render().c_str());
    return exitCodeFor(P.error());
  }
  for (const auto &[Name, Sig] : P->Checked.Signatures)
    std::printf("%s : %s\n", P->Prog->Names.spelling(Name).c_str(),
                toString(Sig, P->Prog->Names).c_str());
  return 0;
}

int cmdDerive(const char *Path, const char *Fn, const Options &Opts) {
  Expected<Pipeline> P = compileFile(Path, Opts);
  if (!P) {
    std::fprintf(stderr, "%s\n", P.error().render().c_str());
    return exitCodeFor(P.error());
  }
  Symbol Name = P->Prog->Names.intern(Fn);
  auto It = P->Checked.Functions.find(Name);
  if (It == P->Checked.Functions.end() || !It->second.Derivation) {
    std::fprintf(stderr, "no derivation for '%s'\n", Fn);
    return 1;
  }
  std::printf("%s", printDerivation(*It->second.Derivation,
                                    P->Prog->Names)
                        .c_str());
  return 0;
}

int cmdDot(const char *Path, const char *Fn, const Options &Opts) {
  Expected<Pipeline> P = compileFile(Path, Opts);
  if (!P) {
    std::fprintf(stderr, "%s\n", P.error().render().c_str());
    return exitCodeFor(P.error());
  }
  Symbol Name = P->Prog->Names.intern(Fn);
  auto It = P->Checked.Functions.find(Name);
  if (It == P->Checked.Functions.end() || !It->second.Derivation) {
    std::fprintf(stderr, "no derivation for '%s'\n", Fn);
    return 1;
  }
  std::printf("%s", printDerivationDot(*It->second.Derivation,
                                       P->Prog->Names)
                        .c_str());
  return 0;
}

int cmdSample(const char *Name) {
  const char *Source = nullptr;
  for (const auto &[SName, SSource] : embeddedSamples())
    if (!std::strcmp(Name, SName))
      Source = SSource;
  if (!Source) {
    std::fprintf(stderr, "unknown sample '%s' (try sll, dll, rbtree, "
                         "message, trie, extras)\n",
                 Name);
    return 1;
  }
  std::fputs(Source, stdout);
  return 0;
}

//===----------------------------------------------------------------------===//
// --daemon client mode
//===----------------------------------------------------------------------===//

/// Prints a daemon response the way the standalone command would have:
/// the exact stdout/stderr bytes, or a synthesized diagnostic for
/// protocol-level errors (overloaded, shutting_down, bad_request — which
/// carry no output of their own).
int printResponse(const server::WireResponse &R) {
  if (!R.Out.empty())
    std::fputs(R.Out.c_str(), stdout);
  if (!R.Err.empty())
    std::fputs(R.Err.c_str(), stderr);
  if (!R.Ok && R.Out.empty() && R.Err.empty())
    std::fprintf(stderr, "fearlessc: daemon: %s: %s\n",
                 R.ErrorCode.c_str(), R.ErrorMessage.c_str());
  return R.Exit;
}

/// Fills the wire request's option block from the parsed CLI options —
/// the client-side half of the standalone/daemon equivalence.
server::WireRequest baseRequest(const Options &Opts) {
  server::WireRequest R;
  R.Oracle = Opts.UseOracle;
  R.Interprocedural = Opts.Interprocedural;
  R.Checks = Opts.Checks;
  R.Elide = Opts.Elide;
  R.Engine = Opts.Engine;
  R.Seed = Opts.Seed;
  R.Stats = Opts.Stats;
  R.Metrics = Opts.Metrics;
  R.Workers = Opts.WorkersSet ? static_cast<int64_t>(Opts.Workers) : -1;
  R.SchedSeed = Opts.SchedSeed;
  R.Json = Opts.Json;
  R.Summaries = Opts.DumpSummaries;
  R.Werror = Opts.Werror;
  return R;
}

int cmdDaemon(const std::vector<const char *> &Positional,
              const Options &Opts) {
  if (!Opts.TracePath.empty() || Opts.FaultSpecSet) {
    std::fprintf(stderr, "fearlessc: --trace and --faults are local "
                         "debugging hooks; they do not compose with "
                         "--daemon\n");
    return ExitUsage;
  }
  if (!Opts.SchedulePath.empty() || !Opts.SpawnSpecs.empty() ||
      !std::strcmp(Positional[0], "mc")) {
    std::fprintf(stderr, "fearlessc: mc, --schedule, and --spawn drive "
                         "the local deterministic machine; they do not "
                         "compose with --daemon\n");
    return ExitUsage;
  }
  const char *Cmd = Positional[0];
  server::WireClient Client;
  if (ExpectedVoid C = Client.connect(Opts.DaemonSocket); !C) {
    std::fprintf(stderr, "fearlessc: %s\n",
                 C.error().Message.c_str());
    return ExitError;
  }
  auto roundTrip = [&](const server::WireRequest &R) {
    Expected<server::WireResponse> Resp = Client.request(R);
    if (!Resp) {
      std::fprintf(stderr, "fearlessc: %s\n",
                   Resp.error().Message.c_str());
      return ExitError;
    }
    return printResponse(*Resp);
  };

  if (!std::strcmp(Cmd, "metrics") && Positional.size() == 1) {
    server::WireRequest R = baseRequest(Opts);
    R.Op = server::WireOp::Metrics;
    return roundTrip(R);
  }
  if (!std::strcmp(Cmd, "shutdown") && Positional.size() == 1) {
    server::WireRequest R = baseRequest(Opts);
    R.Op = server::WireOp::Shutdown;
    return roundTrip(R);
  }
  if (!std::strcmp(Cmd, "check") && Positional.size() == 2) {
    Expected<std::string> Source = readFile(Positional[1]);
    if (!Source) {
      std::fprintf(stderr, "%s\n", Source.error().render().c_str());
      return exitCodeFor(Source.error());
    }
    server::WireRequest R = baseRequest(Opts);
    R.Op = server::WireOp::Check;
    R.Name = Positional[1];
    R.Source = Source.take();
    return roundTrip(R);
  }
  if (!std::strcmp(Cmd, "analyze") && Positional.size() == 2) {
    if (!std::strcmp(Positional[1], "--samples")) {
      // Mirrors cmdAnalyzeSamples: one request per embedded sample on
      // the same connection, exit codes OR-ed.
      int Rc = 0;
      for (const auto &[Name, Text] : embeddedSamples()) {
        server::WireRequest R = baseRequest(Opts);
        R.Op = server::WireOp::Analyze;
        R.Name = Name;
        R.Source = Text;
        Rc |= roundTrip(R);
      }
      return Rc;
    }
    Expected<std::string> Source = readFile(Positional[1]);
    if (!Source) {
      std::fprintf(stderr, "%s\n", Source.error().render().c_str());
      return 1;
    }
    server::WireRequest R = baseRequest(Opts);
    R.Op = server::WireOp::Analyze;
    R.Name = Positional[1];
    R.Source = Source.take();
    return roundTrip(R);
  }
  if (!std::strcmp(Cmd, "run") && Positional.size() >= 3) {
    Expected<std::string> Source = readFile(Positional[1]);
    if (!Source) {
      std::fprintf(stderr, "%s\n", Source.error().render().c_str());
      return exitCodeFor(Source.error());
    }
    server::WireRequest R = baseRequest(Opts);
    R.Op = server::WireOp::Run;
    R.Name = Positional[1];
    R.Source = Source.take();
    R.Fn = Positional[2];
    for (size_t I = 3; I < Positional.size(); ++I)
      R.Args.push_back(std::strtoll(Positional[I], nullptr, 10));
    return roundTrip(R);
  }
  return usage();
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 2)
    return usage();

  Options Opts;
  std::vector<const char *> Positional;
  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--no-oracle"))
      Opts.UseOracle = false;
    else if (!std::strcmp(argv[I], "--no-checks"))
      Opts.Checks = false;
    else if (!std::strcmp(argv[I], "--no-elide"))
      Opts.Elide = false;
    else if (!std::strcmp(argv[I], "--interprocedural"))
      Opts.Interprocedural = true;
    else if (!std::strncmp(argv[I], "--interprocedural=", 18)) {
      const char *V = argv[I] + 18;
      if (!std::strcmp(V, "on"))
        Opts.Interprocedural = true;
      else if (!std::strcmp(V, "off"))
        Opts.Interprocedural = false;
      else {
        std::fprintf(stderr,
                     "fearlessc: bad --interprocedural value '%s' "
                     "(expected on or off)\n",
                     V);
        return ExitUsage;
      }
    } else if (!std::strcmp(argv[I], "--json"))
      Opts.Json = true;
    else if (!std::strcmp(argv[I], "--summaries"))
      Opts.DumpSummaries = true;
    else if (!std::strcmp(argv[I], "--werror"))
      Opts.Werror = true;
    else if (!std::strcmp(argv[I], "--stats"))
      Opts.Stats = true;
    else if (!std::strcmp(argv[I], "--metrics"))
      Opts.Metrics = true;
    else if (!std::strcmp(argv[I], "--trace") && I + 1 < argc)
      Opts.TracePath = argv[++I];
    else if (!std::strcmp(argv[I], "--faults") && I + 1 < argc) {
      Opts.FaultSpec = argv[++I];
      Opts.FaultSpecSet = true;
    } else if (!std::strcmp(argv[I], "--seed") && I + 1 < argc)
      Opts.Seed = std::strtoull(argv[++I], nullptr, 10);
    else if (!std::strcmp(argv[I], "--workers") && I + 1 < argc) {
      Opts.Workers = std::strtoull(argv[++I], nullptr, 10);
      Opts.WorkersSet = true;
    } else if (!std::strcmp(argv[I], "--sched-seed") && I + 1 < argc)
      Opts.SchedSeed = std::strtoull(argv[++I], nullptr, 10);
    else if (!std::strcmp(argv[I], "--spawn") && I + 1 < argc)
      Opts.SpawnSpecs.push_back(argv[++I]);
    else if (!std::strcmp(argv[I], "--schedule") && I + 1 < argc)
      Opts.SchedulePath = argv[++I];
    else if (!std::strcmp(argv[I], "--mc-depth") && I + 1 < argc)
      Opts.McDepth = std::strtoull(argv[++I], nullptr, 10);
    else if (!std::strcmp(argv[I], "--mc-schedules") && I + 1 < argc)
      Opts.McSchedules = std::strtoull(argv[++I], nullptr, 10);
    else if (!std::strcmp(argv[I], "--mc-preemptions") && I + 1 < argc)
      Opts.McPreemptions = std::strtoll(argv[++I], nullptr, 10);
    else if (!std::strncmp(argv[I], "--mc-checks=", 12)) {
      const char *V = argv[I] + 12;
      if (!std::strcmp(V, "on"))
        Opts.McChecksOn = true;
      else if (!std::strcmp(V, "off"))
        Opts.McChecksOn = false;
      else {
        std::fprintf(stderr,
                     "fearlessc: bad --mc-checks value '%s' (expected "
                     "on or off)\n",
                     V);
        return ExitUsage;
      }
    } else if (!std::strncmp(argv[I], "--mc-dpor=", 10)) {
      const char *V = argv[I] + 10;
      if (!std::strcmp(V, "on"))
        Opts.McDpor = true;
      else if (!std::strcmp(V, "off"))
        Opts.McDpor = false;
      else {
        std::fprintf(stderr,
                     "fearlessc: bad --mc-dpor value '%s' (expected on "
                     "or off)\n",
                     V);
        return ExitUsage;
      }
    } else if (!std::strcmp(argv[I], "--mc-out") && I + 1 < argc)
      Opts.McOut = argv[++I];
    else if (!std::strcmp(argv[I], "--engine") && I + 1 < argc)
      Opts.Engine = argv[++I];
    else if (!std::strncmp(argv[I], "--engine=", 9))
      Opts.Engine = argv[I] + 9;
    else if (!std::strcmp(argv[I], "--daemon") && I + 1 < argc)
      Opts.DaemonSocket = argv[++I];
    else
      Positional.push_back(argv[I]);
  }
  if (Opts.Engine != "vm" && Opts.Engine != "interp") {
    std::fprintf(stderr, "fearlessc: unknown engine '%s' (expected vm "
                         "or interp)\n",
                 Opts.Engine.c_str());
    return ExitUsage;
  }
  if (Positional.empty())
    return usage();

  if (!Opts.DaemonSocket.empty())
    return cmdDaemon(Positional, Opts);

  const char *Cmd = Positional[0];
  if (!std::strcmp(Cmd, "check") && Positional.size() == 2)
    return cmdCheck(Positional[1], Opts);
  if (!std::strcmp(Cmd, "analyze") && Positional.size() == 2) {
    if (!std::strcmp(Positional[1], "--samples"))
      return cmdAnalyzeSamples(Opts);
    return cmdAnalyze(Positional[1], Opts);
  }
  if (!std::strcmp(Cmd, "run") && Positional.size() >= 3) {
    std::vector<int64_t> Args;
    for (size_t I = 3; I < Positional.size(); ++I)
      Args.push_back(std::strtoll(Positional[I], nullptr, 10));
    return cmdRun(Positional[1], Positional[2], Args, Opts);
  }
  if (!std::strcmp(Cmd, "mc") && Positional.size() >= 2) {
    std::vector<int64_t> Args;
    for (size_t I = 3; I < Positional.size(); ++I)
      Args.push_back(std::strtoll(Positional[I], nullptr, 10));
    return cmdMc(Positional[1],
                 Positional.size() >= 3 ? Positional[2] : "main", Args,
                 Opts);
  }
  if (!std::strcmp(Cmd, "disasm") && Positional.size() == 2)
    return cmdDisasm(Positional[1], Opts);
  if (!std::strcmp(Cmd, "sig") && Positional.size() == 2)
    return cmdSig(Positional[1], Opts);
  if (!std::strcmp(Cmd, "derive") && Positional.size() == 3)
    return cmdDerive(Positional[1], Positional[2], Opts);
  if (!std::strcmp(Cmd, "dot") && Positional.size() == 3)
    return cmdDot(Positional[1], Positional[2], Opts);
  if (!std::strcmp(Cmd, "sample") && Positional.size() == 2)
    return cmdSample(Positional[1]);
  return usage();
}
