//===- tools/fearlessc.cpp - Command-line driver ---------------*- C++ -*-===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
//
// fearlessc — check, inspect, analyze, and run surface-language programs.
//
//   fearlessc check file.fls            parse + region-check + verify
//   fearlessc analyze file.fls          static region-graph analysis:
//                                       per-site disconnect verdicts and
//                                       region lints (--samples analyzes
//                                       every embedded sample instead)
//   fearlessc run file.fls main [ints]  check, then run main(ints...)
//   fearlessc disasm file.fls           print the compiled bytecode:
//                                       chunks, constant pools, and the
//                                       per-site check/erased decisions
//   fearlessc sig file.fls              print every elaborated signature
//   fearlessc derive file.fls fn        print fn's typing derivation
//   fearlessc sample NAME               print an embedded sample program
//                                       (sll | dll | rbtree | message)
//
// Options: --interprocedural[=on|off] (bottom-up function summaries at
// call sites, on by default; off restores pure signature havoc), --json
// (machine-readable analyze output, schema "fearless-analysis-v1"),
// --summaries (append the per-function summary dump to the analyze
// report), --werror (lint diagnostics fail the analyze with the check
// exit code), --no-oracle (naive unification search), --seed N (schedule),
// --engine vm|interp (register-bytecode VM — the default — or the
// tree-walking interpreter; debug builds cross-check vm results against
// the interpreter), --no-checks (erase dynamic reservation checks),
// --no-elide (keep the dynamic traversal even for statically proven
// disconnect sites),
// --stats, --metrics (runtime metrics as one JSON line on stdout),
// --trace FILE (Chrome trace_event JSON for Perfetto/chrome://tracing;
// composes with --metrics), --faults SPEC (deterministic fault
// injection, e.g. "chan.send=nth:3,seed=7"; the FEARLESS_FAULTS env var
// is the no-flag fallback — see docs/OBSERVABILITY.md).
//
// Exit codes are distinct per failure class so scripts need not parse
// messages: 0 ok, 1 generic/internal, 2 usage, 3 parse error, 4
// check/verify rejection, 5 runtime fault (trap or injected).
//
//===----------------------------------------------------------------------===//

#include "analysis/StaticDisconnect.h"
#include "concurrency/ParallelExec.h"
#include "driver/Driver.h"
#include "runtime/Machine.h"
#include "support/FaultInjector.h"
#include "support/Trace.h"
#include "vm/Compiler.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <vector>

using namespace fearless;

namespace {

// Exit codes (documented in docs/OBSERVABILITY.md, "Exit codes").
constexpr int ExitOk = 0;
constexpr int ExitError = 1;        // generic / infrastructure
constexpr int ExitUsage = 2;        // bad invocation (incl. bad --faults)
constexpr int ExitParse = 3;        // syntax error
constexpr int ExitCheck = 4;        // region checker / verifier rejection
constexpr int ExitRuntimeFault = 5; // runtime trap or injected fault

/// Maps a pipeline diagnostic to the CLI exit code for its stage.
int exitCodeFor(const Diagnostic &D) {
  switch (D.Stage) {
  case DiagnosticStage::Parse:
    return ExitParse;
  case DiagnosticStage::Check:
    return ExitCheck;
  case DiagnosticStage::Runtime:
    return ExitRuntimeFault;
  case DiagnosticStage::Unknown:
    break;
  }
  return ExitError;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: fearlessc <check|analyze|run|sig|derive|sample> [args] "
      "[options]\n"
      "  check   <file>                parse + region-check + verify\n"
      "  analyze <file>|--samples      static disconnect verdicts + lints\n"
      "  run     <file> <fn> [ints...] check, then run fn(ints...)\n"
      "  disasm  <file>                print the compiled bytecode\n"
      "  sig     <file>                print elaborated signatures\n"
      "  derive  <file> <fn>           print fn's typing derivation\n"
      "  dot     <file> <fn>           derivation as a Graphviz digraph\n"
      "  sample  <sll|dll|rbtree|message|trie|extras>  print a sample\n"
      "options: --interprocedural[=on|off] --json --summaries --werror "
      "--no-oracle --seed N --engine NAME --no-checks "
      "--no-elide --stats "
      "--metrics --trace FILE --faults SPEC --workers N --sched-seed N\n"
      "  --interprocedural[=on|off]  bottom-up function summaries at\n"
      "                  call sites (default on; off = signature havoc)\n"
      "  --json          analyze: machine-readable output (schema\n"
      "                  fearless-analysis-v1)\n"
      "  --summaries     analyze: append the per-function summary dump\n"
      "  --werror        analyze: lint diagnostics exit with the check\n"
      "                  error code (4)\n"
      "  --engine NAME   execution engine for run: vm (the register\n"
      "                  bytecode VM, default) or interp (the\n"
      "                  tree-walking interpreter)\n"
      "  --workers N     run on the parallel executor's M:N task\n"
      "                  scheduler with an N-worker pool (0 = auto)\n"
      "  --sched-seed N  scheduling-decision seed for --workers runs\n"
      "exit codes: 0 ok, 1 error, 2 usage, 3 parse error, 4 check "
      "error, 5 runtime fault\n");
  return ExitUsage;
}

Expected<std::string> readFile(const char *Path) {
  std::ifstream In(Path);
  if (!In)
    return fail(std::string("cannot open '") + Path + "'");
  std::ostringstream OS;
  OS << In.rdbuf();
  return OS.str();
}

struct Options {
  bool UseOracle = true;
  bool Checks = true;
  bool Elide = true;
  bool Stats = false;
  bool Metrics = false;
  /// Chrome trace_event output path (empty = tracing off). Composes
  /// with --metrics: the trace goes to this file, metrics to stdout.
  std::string TracePath;
  /// Fault-injection spec from --faults (see support/FaultInjector.h);
  /// empty = fall back to the FEARLESS_FAULTS env var, then disabled.
  std::string FaultSpec;
  bool FaultSpecSet = false;
  uint64_t Seed = 0;
  /// --engine: "vm" (register-bytecode VM, default) or "interp" (the
  /// tree-walking interpreter, retained as the differential oracle).
  std::string Engine = "vm";
  /// --workers: run on ParallelExec's M:N task scheduler instead of the
  /// deterministic abstract machine. 0 = auto-sized pool.
  size_t Workers = 0;
  bool WorkersSet = false;
  /// --sched-seed: scheduling-decision seed for --workers runs.
  uint64_t SchedSeed = 0;
  /// --interprocedural[=on|off]: bottom-up function summaries at call
  /// sites (default on; off = pure signature havoc).
  bool Interprocedural = true;
  /// --json: machine-readable analyze output.
  bool Json = false;
  /// --summaries: append the per-function summary dump to the report.
  bool DumpSummaries = false;
  /// --werror: lint diagnostics make `analyze` exit with the check
  /// error code.
  bool Werror = false;
};

Expected<Pipeline> compileFile(const char *Path, const Options &Opts) {
  Expected<std::string> Source = readFile(Path);
  if (!Source)
    return Source.takeFailure();
  CheckerOptions CO;
  CO.UseLivenessOracle = Opts.UseOracle;
  return compile(*Source, CO);
}

void printStats(const Pipeline &P) {
  size_t Virtuals = 0, Unify = 0, Loops = 0;
  for (const auto &[Name, Fn] : P.Checked.Functions) {
    (void)Name;
    Virtuals += Fn.Stats.VirtualSteps;
    Unify += Fn.Stats.UnifyCandidates;
    Loops += Fn.Stats.LoopIterations;
  }
  std::printf("functions: %zu, virtual transformations: %zu, "
              "unification candidates: %zu, loop refinements: %zu\n"
              "verifier: %zu derivation steps (%zu virtual) re-checked\n",
              P.Checked.Functions.size(), Virtuals, Unify, Loops,
              P.Verified.StepsChecked, P.Verified.VirtualStepsChecked);
}

int cmdCheck(const char *Path, const Options &Opts) {
  Expected<Pipeline> P = compileFile(Path, Opts);
  if (!P) {
    std::fprintf(stderr, "%s\n", P.error().render().c_str());
    return exitCodeFor(P.error());
  }
  std::printf("%s: OK (%zu functions)\n", Path,
              P->Checked.Functions.size());
  // Checker-integrated warnings: always/never-taken disconnect branches
  // found by the static region-graph analysis.
  AnalysisOptions AO;
  AO.Interprocedural = Opts.Interprocedural;
  AnalysisReport Report = analyzeProgram(P->Checked, AO);
  std::vector<AnalysisDiag> Warnings;
  for (const AnalysisDiag &D : Report.Diags)
    if (D.Kind == AnalysisDiagKind::DeadBranch ||
        D.Kind == AnalysisDiagKind::NeverPopulated)
      Warnings.push_back(D);
  if (!Warnings.empty())
    std::printf("%s", renderDiags(Warnings, Path).c_str());
  if (Opts.Stats)
    printStats(*P);
  return 0;
}

int analyzeOne(std::string_view Source, const char *Name,
               const Options &Opts) {
  SourceAnalysisOptions AO;
  AO.Interprocedural = Opts.Interprocedural;
  AO.DumpSummaries = Opts.DumpSummaries;
  AO.Json = Opts.Json;
  SourceAnalysis A = analyzeSourceText(Source, Name, AO);
  std::fputs(A.Rendered.c_str(), stdout);
  if (A.HardError)
    return ExitParse;
  if (Opts.Werror && A.LintDiags > 0) {
    // Lints are check-stage findings, so --werror exits with the
    // check-stage code — scripts can distinguish "region misuse" from
    // infrastructure failures without parsing messages.
    Diagnostic D;
    D.Stage = DiagnosticStage::Check;
    std::fprintf(stderr,
                 "fearlessc: error: %zu lint diagnostic(s) with --werror\n",
                 A.LintDiags);
    return exitCodeFor(D);
  }
  return 0;
}

int cmdAnalyze(const char *Path, const Options &Opts) {
  Expected<std::string> Source = readFile(Path);
  if (!Source) {
    std::fprintf(stderr, "%s\n", Source.error().render().c_str());
    return 1;
  }
  return analyzeOne(*Source, Path, Opts);
}

int cmdAnalyzeSamples(const Options &Opts) {
  const std::pair<const char *, const char *> Samples[] = {
      {"sll", programs::SllSuite},       {"dll", programs::DllSuite},
      {"rbtree", programs::RedBlackTree}, {"message", programs::MessagePassing},
      {"trie", programs::BitTrie},       {"extras", programs::Extras},
  };
  int Rc = 0;
  for (const auto &[Name, Source] : Samples)
    Rc |= analyzeOne(Source, Name, Opts);
  return Rc;
}

int cmdRun(const char *Path, const char *Fn,
           const std::vector<int64_t> &Args, const Options &Opts) {
  // Fault injection: --faults wins; the FEARLESS_FAULTS env var is the
  // hook for harnesses that cannot edit the command line. A malformed
  // spec is an invocation error (exit 2), reported before any work.
  std::unique_ptr<FaultInjector> Faults;
  std::string FaultSpec = Opts.FaultSpec;
  if (!Opts.FaultSpecSet) {
    if (const char *Env = std::getenv("FEARLESS_FAULTS"))
      FaultSpec = Env;
  }
  if (!FaultSpec.empty()) {
    Expected<FaultPlan> Plan = parseFaultSpec(FaultSpec);
    if (!Plan) {
      std::fprintf(stderr, "fearlessc: bad fault spec: %s\n",
                   Plan.error().Message.c_str());
      return ExitUsage;
    }
    Faults = std::make_unique<FaultInjector>(*Plan);
  }

  Expected<Pipeline> P = compileFile(Path, Opts);
  if (!P) {
    std::fprintf(stderr, "%s\n", P.error().render().c_str());
    return exitCodeFor(P.error());
  }
  Symbol Entry = P->Prog->Names.intern(Fn);
  const FnDecl *Decl = P->Prog->findFunction(Entry);
  if (!Decl) {
    std::fprintf(stderr, "no function '%s'\n", Fn);
    return 1;
  }
  if (Decl->Params.size() != Args.size()) {
    std::fprintf(stderr, "'%s' takes %zu arguments, got %zu (only int "
                         "arguments are supported from the CLI)\n",
                 Fn, Decl->Params.size(), Args.size());
    return 1;
  }
  std::vector<Value> Values;
  for (size_t I = 0; I < Args.size(); ++I) {
    if (!(Decl->Params[I].ParamType == Type::intTy())) {
      std::fprintf(stderr, "parameter %zu of '%s' is not int\n", I, Fn);
      return 1;
    }
    Values.push_back(Value::intVal(Args[I]));
  }
  // Static verdicts feed the runtime elision hook by default; --no-elide
  // restores the always-traverse behavior for comparison.
  AnalysisOptions AO;
  AO.Interprocedural = Opts.Interprocedural;
  AnalysisReport Report = analyzeProgram(P->Checked, AO);
  DisconnectVerdictTable Verdicts = Report.verdictTable();
  // The verdict split goes out with --metrics so runs record how much of
  // the elision the analysis could prove (the engines never see these;
  // they are compile-time facts).
  uint64_t MustDiscSites = 0, MustConnSites = 0, UnknownSites = 0;
  for (const SiteReport &S : Report.Sites) {
    switch (S.Verdict) {
    case DisconnectVerdict::MustDisconnected:
      ++MustDiscSites;
      break;
    case DisconnectVerdict::MustConnected:
      ++MustConnSites;
      break;
    case DisconnectVerdict::Unknown:
      ++UnknownSites;
      break;
    }
  }
  auto WithAnalysis = [&](RuntimeMetrics M) {
    M.AnalysisMustDisconnected = MustDiscSites;
    M.AnalysisMustConnected = MustConnSites;
    M.AnalysisUnknown = UnknownSites;
    return M;
  };

  // Tracing: probe the sink *before* the run so an unwritable path is a
  // clean up-front error, not a lost trace after minutes of execution.
  TraceSession Trace;
  if (!Opts.TracePath.empty()) {
    std::ofstream Probe(Opts.TracePath, std::ios::app);
    if (!Probe) {
      std::fprintf(stderr,
                   "fearlessc: cannot open trace output '%s' for "
                   "writing\n",
                   Opts.TracePath.c_str());
      return 1;
    }
#if !FEARLESS_TRACING_ENABLED
    std::fprintf(stderr,
                 "fearlessc: warning: tracing is compiled out "
                 "(FEARLESS_TRACE=OFF); '%s' will hold an empty trace\n",
                 Opts.TracePath.c_str());
#endif
  }

  // --engine=vm (the default): lower the checked program to register
  // bytecode up front. The Machine path compiles in whatever mode
  // --no-checks selects, so the checked VM stays a faithful differential
  // baseline; the workers path always erases (the parallel executors
  // never run dynamic checks — the checker proved them redundant).
  Expected<vm::CompiledProgram> VmCode = fail("vm not requested");
  bool UseVm = Opts.Engine == "vm";
  if (UseVm) {
    vm::CompileOptions VO;
    VO.EmitChecks = !Opts.WorkersSet && Opts.Checks;
    VO.Verdicts = &Verdicts;
    VO.ElideDisconnect = Opts.Elide;
#ifndef NDEBUG
    VO.CrossCheckElision = true;
#endif
    uint64_t CompileStart = 0;
    TraceBuffer *CompileTB = nullptr;
    if (!Opts.TracePath.empty()) {
      CompileTB = &Trace.registerThread(4242, "vm-compiler");
      CompileStart = CompileTB->now();
    }
    VmCode = vm::compileProgram(P->Checked, VO);
    if (CompileTB)
      CompileTB->record("vm.compile", "vm", 'X', CompileStart,
                        CompileTB->now() - CompileStart);
    if (!VmCode) {
      std::fprintf(stderr, "%s\n", VmCode.error().render().c_str());
      return ExitError;
    }
  }

  // --workers: hand the entry function to the parallel executor (the
  // M:N task scheduler; dynamic checks erased, as for any checked
  // program) instead of the deterministic abstract machine.
  if (Opts.WorkersSet) {
    ParallelExecOptions PO;
    PO.NumWorkers = Opts.Workers;
    PO.SchedSeed = Opts.SchedSeed;
    PO.Faults = Faults.get();
    if (UseVm)
      PO.VmCode = &*VmCode;
    if (!Opts.TracePath.empty())
      PO.Trace = &Trace;
    ParallelExec Exec(P->Checked, PO);
    Exec.spawn(Entry, std::move(Values));
    Expected<std::vector<Value>> R = Exec.run();
    if (!Opts.TracePath.empty()) {
      std::string TraceError;
      if (!Trace.writeChromeJson(Opts.TracePath, TraceError)) {
        std::fprintf(stderr, "fearlessc: %s\n", TraceError.c_str());
        return ExitError;
      }
    }
    if (!R) {
      std::fprintf(stderr, "%s\n", R.error().render().c_str());
      if (Opts.Metrics)
        std::printf("%s\n", WithAnalysis(Exec.metrics()).toJson().c_str());
      return Exec.metrics().FaultsEscalated ? ExitRuntimeFault
                                            : ExitError;
    }
    std::printf("%s(...) = %s\n", Fn, toString((*R)[0]).c_str());
    if (Opts.Metrics)
      std::printf("%s\n", WithAnalysis(Exec.metrics()).toJson().c_str());
    return 0;
  }

  MachineOptions MO;
  MO.CheckReservations = Opts.Checks;
  MO.StaticVerdicts = &Verdicts;
  MO.ElideDisconnect = Opts.Elide;
  MO.Faults = Faults.get();
  if (UseVm)
    MO.VmCode = &*VmCode;
  if (!Opts.TracePath.empty())
    MO.Trace = &Trace;
  Machine M(P->Checked, MO);
  std::vector<Value> InterpValues = Values; // for the debug cross-check
  M.spawn(Entry, std::move(Values));
  Expected<MachineSummary> R = M.run(Opts.Seed);

#ifndef NDEBUG
  // Debug builds: re-run the VM result through the tree-walking
  // interpreter and fail loudly on divergence — the two engines are
  // differential oracles for each other. Skipped under fault injection
  // (the injector's triggers are stateful and would fire differently on
  // the second run).
  if (UseVm && R && !Faults) {
    MachineOptions IO = MO;
    IO.VmCode = nullptr;
    IO.Trace = nullptr;
    Machine IM(P->Checked, IO);
    IM.spawn(Entry, std::move(InterpValues));
    Expected<MachineSummary> IR = IM.run(Opts.Seed);
    if (!IR || !(IR->ThreadResults[0] == R->ThreadResults[0])) {
      std::fprintf(stderr,
                   "fearlessc: engine divergence: vm produced %s, "
                   "interpreter produced %s\n",
                   toString(R->ThreadResults[0]).c_str(),
                   IR ? toString(IR->ThreadResults[0]).c_str()
                      : IR.error().render().c_str());
      return ExitError;
    }
  }
#endif
  // Write whatever was traced even when the run fails — a trace of the
  // failing run is exactly what the flag is for.
  if (!Opts.TracePath.empty()) {
    std::string TraceError;
    if (!Trace.writeChromeJson(Opts.TracePath, TraceError)) {
      std::fprintf(stderr, "fearlessc: %s\n", TraceError.c_str());
      return ExitError;
    }
  }
  if (!R) {
    // A structured fault (runtime trap or injection) gets the dedicated
    // diagnostic and exit code; other failures (deadlock, violation,
    // step limit) stay generic.
    if (M.lastFault()) {
      std::fprintf(stderr, "fearlessc: %s\n",
                   M.lastFault()->render().c_str());
      if (Opts.Metrics)
        std::printf("%s\n", WithAnalysis(M.metrics()).toJson().c_str());
      return ExitRuntimeFault;
    }
    std::fprintf(stderr, "%s\n", R.error().render().c_str());
    return ExitError;
  }
  std::printf("%s(...) = %s\n", Fn,
              toString(R->ThreadResults[0]).c_str());
  if (Opts.Stats)
    std::printf("steps: %llu, reservation checks: %llu, allocations: "
                "%llu, disconnect checks: %llu\n",
                static_cast<unsigned long long>(R->Steps),
                static_cast<unsigned long long>(
                    M.stats().ReservationChecks),
                static_cast<unsigned long long>(M.stats().Allocations),
                static_cast<unsigned long long>(
                    M.stats().DisconnectChecks));
  if (Opts.Metrics)
    std::printf("%s\n", WithAnalysis(M.metrics()).toJson().c_str());
  return 0;
}

int cmdDisasm(const char *Path, const Options &Opts) {
  Expected<Pipeline> P = compileFile(Path, Opts);
  if (!P) {
    std::fprintf(stderr, "%s\n", P.error().render().c_str());
    return exitCodeFor(P.error());
  }
  AnalysisOptions AO;
  AO.Interprocedural = Opts.Interprocedural;
  AnalysisReport Report = analyzeProgram(P->Checked, AO);
  DisconnectVerdictTable Verdicts = Report.verdictTable();
  vm::CompileOptions VO;
  VO.EmitChecks = Opts.Checks;
  VO.Verdicts = &Verdicts;
  VO.ElideDisconnect = Opts.Elide;
  Expected<vm::CompiledProgram> Code = vm::compileProgram(P->Checked, VO);
  if (!Code) {
    std::fprintf(stderr, "%s\n", Code.error().render().c_str());
    return ExitError;
  }
  std::fputs(vm::disassemble(*Code, P->Checked).c_str(), stdout);
  return 0;
}

int cmdSig(const char *Path, const Options &Opts) {
  Expected<Pipeline> P = compileFile(Path, Opts);
  if (!P) {
    std::fprintf(stderr, "%s\n", P.error().render().c_str());
    return exitCodeFor(P.error());
  }
  for (const auto &[Name, Sig] : P->Checked.Signatures)
    std::printf("%s : %s\n", P->Prog->Names.spelling(Name).c_str(),
                toString(Sig, P->Prog->Names).c_str());
  return 0;
}

int cmdDerive(const char *Path, const char *Fn, const Options &Opts) {
  Expected<Pipeline> P = compileFile(Path, Opts);
  if (!P) {
    std::fprintf(stderr, "%s\n", P.error().render().c_str());
    return exitCodeFor(P.error());
  }
  Symbol Name = P->Prog->Names.intern(Fn);
  auto It = P->Checked.Functions.find(Name);
  if (It == P->Checked.Functions.end() || !It->second.Derivation) {
    std::fprintf(stderr, "no derivation for '%s'\n", Fn);
    return 1;
  }
  std::printf("%s", printDerivation(*It->second.Derivation,
                                    P->Prog->Names)
                        .c_str());
  return 0;
}

int cmdDot(const char *Path, const char *Fn, const Options &Opts) {
  Expected<Pipeline> P = compileFile(Path, Opts);
  if (!P) {
    std::fprintf(stderr, "%s\n", P.error().render().c_str());
    return exitCodeFor(P.error());
  }
  Symbol Name = P->Prog->Names.intern(Fn);
  auto It = P->Checked.Functions.find(Name);
  if (It == P->Checked.Functions.end() || !It->second.Derivation) {
    std::fprintf(stderr, "no derivation for '%s'\n", Fn);
    return 1;
  }
  std::printf("%s", printDerivationDot(*It->second.Derivation,
                                       P->Prog->Names)
                        .c_str());
  return 0;
}

int cmdSample(const char *Name) {
  const char *Source = nullptr;
  if (!std::strcmp(Name, "sll"))
    Source = programs::SllSuite;
  else if (!std::strcmp(Name, "dll"))
    Source = programs::DllSuite;
  else if (!std::strcmp(Name, "rbtree"))
    Source = programs::RedBlackTree;
  else if (!std::strcmp(Name, "message"))
    Source = programs::MessagePassing;
  else if (!std::strcmp(Name, "trie"))
    Source = programs::BitTrie;
  else if (!std::strcmp(Name, "extras"))
    Source = programs::Extras;
  if (!Source) {
    std::fprintf(stderr, "unknown sample '%s' (try sll, dll, rbtree, "
                         "message, trie, extras)\n",
                 Name);
    return 1;
  }
  std::fputs(Source, stdout);
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 2)
    return usage();

  Options Opts;
  std::vector<const char *> Positional;
  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--no-oracle"))
      Opts.UseOracle = false;
    else if (!std::strcmp(argv[I], "--no-checks"))
      Opts.Checks = false;
    else if (!std::strcmp(argv[I], "--no-elide"))
      Opts.Elide = false;
    else if (!std::strcmp(argv[I], "--interprocedural"))
      Opts.Interprocedural = true;
    else if (!std::strncmp(argv[I], "--interprocedural=", 18)) {
      const char *V = argv[I] + 18;
      if (!std::strcmp(V, "on"))
        Opts.Interprocedural = true;
      else if (!std::strcmp(V, "off"))
        Opts.Interprocedural = false;
      else {
        std::fprintf(stderr,
                     "fearlessc: bad --interprocedural value '%s' "
                     "(expected on or off)\n",
                     V);
        return ExitUsage;
      }
    } else if (!std::strcmp(argv[I], "--json"))
      Opts.Json = true;
    else if (!std::strcmp(argv[I], "--summaries"))
      Opts.DumpSummaries = true;
    else if (!std::strcmp(argv[I], "--werror"))
      Opts.Werror = true;
    else if (!std::strcmp(argv[I], "--stats"))
      Opts.Stats = true;
    else if (!std::strcmp(argv[I], "--metrics"))
      Opts.Metrics = true;
    else if (!std::strcmp(argv[I], "--trace") && I + 1 < argc)
      Opts.TracePath = argv[++I];
    else if (!std::strcmp(argv[I], "--faults") && I + 1 < argc) {
      Opts.FaultSpec = argv[++I];
      Opts.FaultSpecSet = true;
    } else if (!std::strcmp(argv[I], "--seed") && I + 1 < argc)
      Opts.Seed = std::strtoull(argv[++I], nullptr, 10);
    else if (!std::strcmp(argv[I], "--workers") && I + 1 < argc) {
      Opts.Workers = std::strtoull(argv[++I], nullptr, 10);
      Opts.WorkersSet = true;
    } else if (!std::strcmp(argv[I], "--sched-seed") && I + 1 < argc)
      Opts.SchedSeed = std::strtoull(argv[++I], nullptr, 10);
    else if (!std::strcmp(argv[I], "--engine") && I + 1 < argc)
      Opts.Engine = argv[++I];
    else if (!std::strncmp(argv[I], "--engine=", 9))
      Opts.Engine = argv[I] + 9;
    else
      Positional.push_back(argv[I]);
  }
  if (Opts.Engine != "vm" && Opts.Engine != "interp") {
    std::fprintf(stderr, "fearlessc: unknown engine '%s' (expected vm "
                         "or interp)\n",
                 Opts.Engine.c_str());
    return ExitUsage;
  }
  if (Positional.empty())
    return usage();

  const char *Cmd = Positional[0];
  if (!std::strcmp(Cmd, "check") && Positional.size() == 2)
    return cmdCheck(Positional[1], Opts);
  if (!std::strcmp(Cmd, "analyze") && Positional.size() == 2) {
    if (!std::strcmp(Positional[1], "--samples"))
      return cmdAnalyzeSamples(Opts);
    return cmdAnalyze(Positional[1], Opts);
  }
  if (!std::strcmp(Cmd, "run") && Positional.size() >= 3) {
    std::vector<int64_t> Args;
    for (size_t I = 3; I < Positional.size(); ++I)
      Args.push_back(std::strtoll(Positional[I], nullptr, 10));
    return cmdRun(Positional[1], Positional[2], Args, Opts);
  }
  if (!std::strcmp(Cmd, "disasm") && Positional.size() == 2)
    return cmdDisasm(Positional[1], Opts);
  if (!std::strcmp(Cmd, "sig") && Positional.size() == 2)
    return cmdSig(Positional[1], Opts);
  if (!std::strcmp(Cmd, "derive") && Positional.size() == 3)
    return cmdDerive(Positional[1], Positional[2], Opts);
  if (!std::strcmp(Cmd, "dot") && Positional.size() == 3)
    return cmdDot(Positional[1], Positional[2], Opts);
  if (!std::strcmp(Cmd, "sample") && Positional.size() == 2)
    return cmdSample(Positional[1]);
  return usage();
}
