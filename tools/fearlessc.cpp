//===- tools/fearlessc.cpp - Command-line driver ---------------*- C++ -*-===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
//
// fearlessc — check, inspect, analyze, and run surface-language programs.
//
//   fearlessc check file.fls            parse + region-check + verify
//   fearlessc analyze file.fls          static region-graph analysis:
//                                       per-site disconnect verdicts and
//                                       region lints (--samples analyzes
//                                       every embedded sample instead)
//   fearlessc run file.fls main [ints]  check, then run main(ints...)
//   fearlessc disasm file.fls           print the compiled bytecode:
//                                       chunks, constant pools, and the
//                                       per-site check/erased decisions
//   fearlessc sig file.fls              print every elaborated signature
//   fearlessc derive file.fls fn        print fn's typing derivation
//   fearlessc sample NAME               print an embedded sample program
//                                       (sll | dll | rbtree | message)
//   fearlessc metrics                   (--daemon only) daemon metrics
//   fearlessc shutdown                  (--daemon only) drain the daemon
//
// The check/run pipeline itself lives in driver/CompilePipeline.h; this
// file is argument parsing plus printing. With --daemon SOCKET the same
// commands are served by a fearlessd instance over fearless-wire-v1
// (docs/SERVER.md) with bit-identical output — warm submissions skip
// parse/check/analyze/compile via the daemon's derivation cache.
//
// Options: --interprocedural[=on|off] (bottom-up function summaries at
// call sites, on by default; off restores pure signature havoc), --json
// (machine-readable analyze output, schema "fearless-analysis-v1"),
// --summaries (append the per-function summary dump to the analyze
// report), --werror (lint diagnostics fail the analyze with the check
// exit code), --no-oracle (naive unification search), --seed N (schedule),
// --engine vm|interp (register-bytecode VM — the default — or the
// tree-walking interpreter; debug builds cross-check vm results against
// the interpreter), --no-checks (erase dynamic reservation checks),
// --no-elide (keep the dynamic traversal even for statically proven
// disconnect sites),
// --stats, --metrics (runtime metrics as one JSON line on stdout),
// --trace FILE (Chrome trace_event JSON for Perfetto/chrome://tracing;
// composes with --metrics), --faults SPEC (deterministic fault
// injection, e.g. "chan.send=nth:3,seed=7"; the FEARLESS_FAULTS env var
// is the no-flag fallback — see docs/OBSERVABILITY.md),
// --daemon SOCKET (serve the command through a fearlessd instance).
//
// Exit codes are distinct per failure class so scripts need not parse
// messages: 0 ok, 1 generic/internal, 2 usage, 3 parse error, 4
// check/verify rejection, 5 runtime fault (trap or injected), 6 daemon
// overloaded / shutting down (--daemon only).
//
//===----------------------------------------------------------------------===//

#include "analysis/StaticDisconnect.h"
#include "driver/CompilePipeline.h"
#include "driver/Driver.h"
#include "server/Client.h"
#include "support/FaultInjector.h"
#include "support/Trace.h"
#include "vm/Compiler.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <vector>

using namespace fearless;

namespace {

// Exit codes (documented in docs/OBSERVABILITY.md, "Exit codes").
constexpr int ExitError = 1;        // generic / infrastructure
constexpr int ExitUsage = 2;        // bad invocation (incl. bad --faults)
constexpr int ExitParse = 3;        // syntax error
constexpr int ExitRuntimeFault = 5; // runtime trap or injected fault

/// Maps a pipeline diagnostic to the CLI exit code for its stage.
int exitCodeFor(const Diagnostic &D) { return exitCodeForStage(D.Stage); }

int usage() {
  std::fprintf(
      stderr,
      "usage: fearlessc <check|analyze|run|sig|derive|sample> [args] "
      "[options]\n"
      "  check   <file>                parse + region-check + verify\n"
      "  analyze <file>|--samples      static disconnect verdicts + lints\n"
      "  run     <file> <fn> [ints...] check, then run fn(ints...)\n"
      "  disasm  <file>                print the compiled bytecode\n"
      "  sig     <file>                print elaborated signatures\n"
      "  derive  <file> <fn>           print fn's typing derivation\n"
      "  dot     <file> <fn>           derivation as a Graphviz digraph\n"
      "  sample  <sll|dll|rbtree|message|trie|extras>  print a sample\n"
      "  metrics                       --daemon only: lifetime metrics\n"
      "  shutdown                      --daemon only: drain the daemon\n"
      "options: --interprocedural[=on|off] --json --summaries --werror "
      "--no-oracle --seed N --engine NAME --no-checks "
      "--no-elide --stats "
      "--metrics --trace FILE --faults SPEC --workers N --sched-seed N "
      "--daemon SOCKET\n"
      "  --interprocedural[=on|off]  bottom-up function summaries at\n"
      "                  call sites (default on; off = signature havoc)\n"
      "  --json          analyze: machine-readable output (schema\n"
      "                  fearless-analysis-v1)\n"
      "  --summaries     analyze: append the per-function summary dump\n"
      "  --werror        analyze: lint diagnostics exit with the check\n"
      "                  error code (4)\n"
      "  --engine NAME   execution engine for run: vm (the register\n"
      "                  bytecode VM, default) or interp (the\n"
      "                  tree-walking interpreter)\n"
      "  --workers N     run on the parallel executor's M:N task\n"
      "                  scheduler with an N-worker pool (0 = auto)\n"
      "  --sched-seed N  scheduling-decision seed for --workers runs\n"
      "  --daemon SOCKET serve check/analyze/run/metrics/shutdown\n"
      "                  through the fearlessd instance at SOCKET\n"
      "                  (docs/SERVER.md); output is bit-identical to\n"
      "                  the standalone command\n"
      "exit codes: 0 ok, 1 error, 2 usage, 3 parse error, 4 check "
      "error, 5 runtime fault, 6 daemon overloaded/shutting down\n");
  return ExitUsage;
}

Expected<std::string> readFile(const char *Path) {
  std::ifstream In(Path);
  if (!In)
    return fail(std::string("cannot open '") + Path + "'");
  std::ostringstream OS;
  OS << In.rdbuf();
  return OS.str();
}

struct Options {
  bool UseOracle = true;
  bool Checks = true;
  bool Elide = true;
  bool Stats = false;
  bool Metrics = false;
  /// Chrome trace_event output path (empty = tracing off). Composes
  /// with --metrics: the trace goes to this file, metrics to stdout.
  std::string TracePath;
  /// Fault-injection spec from --faults (see support/FaultInjector.h);
  /// empty = fall back to the FEARLESS_FAULTS env var, then disabled.
  std::string FaultSpec;
  bool FaultSpecSet = false;
  uint64_t Seed = 0;
  /// --engine: "vm" (register-bytecode VM, default) or "interp" (the
  /// tree-walking interpreter, retained as the differential oracle).
  std::string Engine = "vm";
  /// --workers: run on ParallelExec's M:N task scheduler instead of the
  /// deterministic abstract machine. 0 = auto-sized pool.
  size_t Workers = 0;
  bool WorkersSet = false;
  /// --sched-seed: scheduling-decision seed for --workers runs.
  uint64_t SchedSeed = 0;
  /// --interprocedural[=on|off]: bottom-up function summaries at call
  /// sites (default on; off = pure signature havoc).
  bool Interprocedural = true;
  /// --json: machine-readable analyze output.
  bool Json = false;
  /// --summaries: append the per-function summary dump to the report.
  bool DumpSummaries = false;
  /// --werror: lint diagnostics make `analyze` exit with the check
  /// error code.
  bool Werror = false;
  /// --daemon: fearlessd socket path; empty = standalone execution.
  std::string DaemonSocket;
};

/// The artifact-level option subset (the derivation-cache key side).
/// Must mirror the daemon's mapping in Server::handleRequest so a
/// standalone run and a daemon run of the same invocation build the
/// same artifact.
PipelineOptions pipelineOptions(const Options &Opts) {
  PipelineOptions PO;
  PO.UseOracle = Opts.UseOracle;
  PO.Interprocedural = Opts.Interprocedural;
  PO.Checks = Opts.Checks;
  PO.Elide = Opts.Elide;
  PO.EmitChecks = Opts.Checks && !Opts.WorkersSet;
  PO.Engine = Opts.Engine;
  return PO;
}

Expected<Pipeline> compileFile(const char *Path, const Options &Opts) {
  Expected<std::string> Source = readFile(Path);
  if (!Source)
    return Source.takeFailure();
  CheckerOptions CO;
  CO.UseLivenessOracle = Opts.UseOracle;
  return compile(*Source, CO);
}

int cmdCheck(const char *Path, const Options &Opts) {
  Expected<std::string> Source = readFile(Path);
  if (!Source) {
    std::fprintf(stderr, "%s\n", Source.error().render().c_str());
    return exitCodeFor(Source.error());
  }
  Expected<std::shared_ptr<const CompiledArtifact>> A =
      buildArtifact(*Source, pipelineOptions(Opts));
  if (!A) {
    std::fprintf(stderr, "%s\n", A.error().render().c_str());
    return exitCodeFor(A.error());
  }
  std::fputs(renderCheckOutput(**A, Path, Opts.Stats).c_str(), stdout);
  return 0;
}

int analyzeOne(std::string_view Source, const char *Name,
               const Options &Opts) {
  SourceAnalysisOptions AO;
  AO.Interprocedural = Opts.Interprocedural;
  AO.DumpSummaries = Opts.DumpSummaries;
  AO.Json = Opts.Json;
  SourceAnalysis A = analyzeSourceText(Source, Name, AO);
  std::fputs(A.Rendered.c_str(), stdout);
  if (A.HardError)
    return ExitParse;
  if (Opts.Werror && A.LintDiags > 0) {
    // Lints are check-stage findings, so --werror exits with the
    // check-stage code — scripts can distinguish "region misuse" from
    // infrastructure failures without parsing messages.
    Diagnostic D;
    D.Stage = DiagnosticStage::Check;
    std::fprintf(stderr,
                 "fearlessc: error: %zu lint diagnostic(s) with --werror\n",
                 A.LintDiags);
    return exitCodeFor(D);
  }
  return 0;
}

int cmdAnalyze(const char *Path, const Options &Opts) {
  Expected<std::string> Source = readFile(Path);
  if (!Source) {
    std::fprintf(stderr, "%s\n", Source.error().render().c_str());
    return 1;
  }
  return analyzeOne(*Source, Path, Opts);
}

/// The embedded sample programs, keyed by CLI name. Function-local
/// static on purpose: MessagePassing/Extras point into composite
/// std::strings built by Driver.cpp's dynamic initializers, so a
/// namespace-scope array here could capture null pointers depending on
/// cross-TU static initialization order.
const std::vector<std::pair<const char *, const char *>> &
embeddedSamples() {
  static const std::vector<std::pair<const char *, const char *>> Samples =
      {{"sll", programs::SllSuite},
       {"dll", programs::DllSuite},
       {"rbtree", programs::RedBlackTree},
       {"message", programs::MessagePassing},
       {"trie", programs::BitTrie},
       {"extras", programs::Extras}};
  return Samples;
}

int cmdAnalyzeSamples(const Options &Opts) {
  int Rc = 0;
  for (const auto &[Name, Source] : embeddedSamples())
    Rc |= analyzeOne(Source, Name, Opts);
  return Rc;
}

int cmdRun(const char *Path, const char *Fn,
           const std::vector<int64_t> &Args, const Options &Opts) {
  // Fault injection: --faults wins; the FEARLESS_FAULTS env var is the
  // hook for harnesses that cannot edit the command line. A malformed
  // spec is an invocation error (exit 2), reported before any work.
  std::unique_ptr<FaultInjector> Faults;
  std::string FaultSpec = Opts.FaultSpec;
  if (!Opts.FaultSpecSet) {
    if (const char *Env = std::getenv("FEARLESS_FAULTS"))
      FaultSpec = Env;
  }
  if (!FaultSpec.empty()) {
    Expected<FaultPlan> Plan = parseFaultSpec(FaultSpec);
    if (!Plan) {
      std::fprintf(stderr, "fearlessc: bad fault spec: %s\n",
                   Plan.error().Message.c_str());
      return ExitUsage;
    }
    Faults = std::make_unique<FaultInjector>(*Plan);
  }

  Expected<std::string> Source = readFile(Path);
  if (!Source) {
    std::fprintf(stderr, "%s\n", Source.error().render().c_str());
    return exitCodeFor(Source.error());
  }

  // Tracing: probe the sink *before* the run so an unwritable path is a
  // clean up-front error, not a lost trace after minutes of execution.
  TraceSession Trace;
  bool UseTrace = !Opts.TracePath.empty();
  if (UseTrace) {
    std::ofstream Probe(Opts.TracePath, std::ios::app);
    if (!Probe) {
      std::fprintf(stderr,
                   "fearlessc: cannot open trace output '%s' for "
                   "writing\n",
                   Opts.TracePath.c_str());
      return 1;
    }
#if !FEARLESS_TRACING_ENABLED
    std::fprintf(stderr,
                 "fearlessc: warning: tracing is compiled out "
                 "(FEARLESS_TRACE=OFF); '%s' will hold an empty trace\n",
                 Opts.TracePath.c_str());
#endif
  }

  Expected<std::shared_ptr<const CompiledArtifact>> A = buildArtifact(
      *Source, pipelineOptions(Opts), UseTrace ? &Trace : nullptr);
  if (!A) {
    std::fprintf(stderr, "%s\n", A.error().render().c_str());
    return exitCodeFor(A.error());
  }

  RunSpec Spec;
  Spec.Fn = Fn;
  Spec.Args = Args;
  Spec.Seed = Opts.Seed;
  Spec.Workers = Opts.Workers;
  Spec.WorkersSet = Opts.WorkersSet;
  Spec.SchedSeed = Opts.SchedSeed;
  Spec.Stats = Opts.Stats;
  Spec.Metrics = Opts.Metrics;
  Spec.Faults = Faults.get();
  Spec.Trace = UseTrace ? &Trace : nullptr;
  RunOutcome O = runArtifact(**A, Spec);

  // Write whatever was traced even when the run fails — a trace of the
  // failing run is exactly what the flag is for.
  if (UseTrace) {
    std::string TraceError;
    if (!Trace.writeChromeJson(Opts.TracePath, TraceError)) {
      std::fprintf(stderr, "fearlessc: %s\n", TraceError.c_str());
      return ExitError;
    }
  }
  std::fputs(O.Out.c_str(), stdout);
  std::fputs(O.Err.c_str(), stderr);
  return O.Exit;
}

int cmdDisasm(const char *Path, const Options &Opts) {
  Expected<std::string> Source = readFile(Path);
  if (!Source) {
    std::fprintf(stderr, "%s\n", Source.error().render().c_str());
    return exitCodeFor(Source.error());
  }
  PipelineOptions PO = pipelineOptions(Opts);
  // Disassembly always shows the bytecode with the checks --no-checks
  // controls, independent of --workers.
  PO.Engine = "vm";
  PO.EmitChecks = Opts.Checks;
  Expected<std::shared_ptr<const CompiledArtifact>> A =
      buildArtifact(*Source, PO);
  if (!A) {
    std::fprintf(stderr, "%s\n", A.error().render().c_str());
    return exitCodeFor(A.error());
  }
  std::fputs(vm::disassemble(*(*A)->VmCode, (*A)->P.Checked).c_str(),
             stdout);
  return 0;
}

int cmdSig(const char *Path, const Options &Opts) {
  Expected<Pipeline> P = compileFile(Path, Opts);
  if (!P) {
    std::fprintf(stderr, "%s\n", P.error().render().c_str());
    return exitCodeFor(P.error());
  }
  for (const auto &[Name, Sig] : P->Checked.Signatures)
    std::printf("%s : %s\n", P->Prog->Names.spelling(Name).c_str(),
                toString(Sig, P->Prog->Names).c_str());
  return 0;
}

int cmdDerive(const char *Path, const char *Fn, const Options &Opts) {
  Expected<Pipeline> P = compileFile(Path, Opts);
  if (!P) {
    std::fprintf(stderr, "%s\n", P.error().render().c_str());
    return exitCodeFor(P.error());
  }
  Symbol Name = P->Prog->Names.intern(Fn);
  auto It = P->Checked.Functions.find(Name);
  if (It == P->Checked.Functions.end() || !It->second.Derivation) {
    std::fprintf(stderr, "no derivation for '%s'\n", Fn);
    return 1;
  }
  std::printf("%s", printDerivation(*It->second.Derivation,
                                    P->Prog->Names)
                        .c_str());
  return 0;
}

int cmdDot(const char *Path, const char *Fn, const Options &Opts) {
  Expected<Pipeline> P = compileFile(Path, Opts);
  if (!P) {
    std::fprintf(stderr, "%s\n", P.error().render().c_str());
    return exitCodeFor(P.error());
  }
  Symbol Name = P->Prog->Names.intern(Fn);
  auto It = P->Checked.Functions.find(Name);
  if (It == P->Checked.Functions.end() || !It->second.Derivation) {
    std::fprintf(stderr, "no derivation for '%s'\n", Fn);
    return 1;
  }
  std::printf("%s", printDerivationDot(*It->second.Derivation,
                                       P->Prog->Names)
                        .c_str());
  return 0;
}

int cmdSample(const char *Name) {
  const char *Source = nullptr;
  for (const auto &[SName, SSource] : embeddedSamples())
    if (!std::strcmp(Name, SName))
      Source = SSource;
  if (!Source) {
    std::fprintf(stderr, "unknown sample '%s' (try sll, dll, rbtree, "
                         "message, trie, extras)\n",
                 Name);
    return 1;
  }
  std::fputs(Source, stdout);
  return 0;
}

//===----------------------------------------------------------------------===//
// --daemon client mode
//===----------------------------------------------------------------------===//

/// Prints a daemon response the way the standalone command would have:
/// the exact stdout/stderr bytes, or a synthesized diagnostic for
/// protocol-level errors (overloaded, shutting_down, bad_request — which
/// carry no output of their own).
int printResponse(const server::WireResponse &R) {
  if (!R.Out.empty())
    std::fputs(R.Out.c_str(), stdout);
  if (!R.Err.empty())
    std::fputs(R.Err.c_str(), stderr);
  if (!R.Ok && R.Out.empty() && R.Err.empty())
    std::fprintf(stderr, "fearlessc: daemon: %s: %s\n",
                 R.ErrorCode.c_str(), R.ErrorMessage.c_str());
  return R.Exit;
}

/// Fills the wire request's option block from the parsed CLI options —
/// the client-side half of the standalone/daemon equivalence.
server::WireRequest baseRequest(const Options &Opts) {
  server::WireRequest R;
  R.Oracle = Opts.UseOracle;
  R.Interprocedural = Opts.Interprocedural;
  R.Checks = Opts.Checks;
  R.Elide = Opts.Elide;
  R.Engine = Opts.Engine;
  R.Seed = Opts.Seed;
  R.Stats = Opts.Stats;
  R.Metrics = Opts.Metrics;
  R.Workers = Opts.WorkersSet ? static_cast<int64_t>(Opts.Workers) : -1;
  R.SchedSeed = Opts.SchedSeed;
  R.Json = Opts.Json;
  R.Summaries = Opts.DumpSummaries;
  R.Werror = Opts.Werror;
  return R;
}

int cmdDaemon(const std::vector<const char *> &Positional,
              const Options &Opts) {
  if (!Opts.TracePath.empty() || Opts.FaultSpecSet) {
    std::fprintf(stderr, "fearlessc: --trace and --faults are local "
                         "debugging hooks; they do not compose with "
                         "--daemon\n");
    return ExitUsage;
  }
  const char *Cmd = Positional[0];
  server::WireClient Client;
  if (ExpectedVoid C = Client.connect(Opts.DaemonSocket); !C) {
    std::fprintf(stderr, "fearlessc: %s\n",
                 C.error().Message.c_str());
    return ExitError;
  }
  auto roundTrip = [&](const server::WireRequest &R) {
    Expected<server::WireResponse> Resp = Client.request(R);
    if (!Resp) {
      std::fprintf(stderr, "fearlessc: %s\n",
                   Resp.error().Message.c_str());
      return ExitError;
    }
    return printResponse(*Resp);
  };

  if (!std::strcmp(Cmd, "metrics") && Positional.size() == 1) {
    server::WireRequest R = baseRequest(Opts);
    R.Op = server::WireOp::Metrics;
    return roundTrip(R);
  }
  if (!std::strcmp(Cmd, "shutdown") && Positional.size() == 1) {
    server::WireRequest R = baseRequest(Opts);
    R.Op = server::WireOp::Shutdown;
    return roundTrip(R);
  }
  if (!std::strcmp(Cmd, "check") && Positional.size() == 2) {
    Expected<std::string> Source = readFile(Positional[1]);
    if (!Source) {
      std::fprintf(stderr, "%s\n", Source.error().render().c_str());
      return exitCodeFor(Source.error());
    }
    server::WireRequest R = baseRequest(Opts);
    R.Op = server::WireOp::Check;
    R.Name = Positional[1];
    R.Source = Source.take();
    return roundTrip(R);
  }
  if (!std::strcmp(Cmd, "analyze") && Positional.size() == 2) {
    if (!std::strcmp(Positional[1], "--samples")) {
      // Mirrors cmdAnalyzeSamples: one request per embedded sample on
      // the same connection, exit codes OR-ed.
      int Rc = 0;
      for (const auto &[Name, Text] : embeddedSamples()) {
        server::WireRequest R = baseRequest(Opts);
        R.Op = server::WireOp::Analyze;
        R.Name = Name;
        R.Source = Text;
        Rc |= roundTrip(R);
      }
      return Rc;
    }
    Expected<std::string> Source = readFile(Positional[1]);
    if (!Source) {
      std::fprintf(stderr, "%s\n", Source.error().render().c_str());
      return 1;
    }
    server::WireRequest R = baseRequest(Opts);
    R.Op = server::WireOp::Analyze;
    R.Name = Positional[1];
    R.Source = Source.take();
    return roundTrip(R);
  }
  if (!std::strcmp(Cmd, "run") && Positional.size() >= 3) {
    Expected<std::string> Source = readFile(Positional[1]);
    if (!Source) {
      std::fprintf(stderr, "%s\n", Source.error().render().c_str());
      return exitCodeFor(Source.error());
    }
    server::WireRequest R = baseRequest(Opts);
    R.Op = server::WireOp::Run;
    R.Name = Positional[1];
    R.Source = Source.take();
    R.Fn = Positional[2];
    for (size_t I = 3; I < Positional.size(); ++I)
      R.Args.push_back(std::strtoll(Positional[I], nullptr, 10));
    return roundTrip(R);
  }
  return usage();
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 2)
    return usage();

  Options Opts;
  std::vector<const char *> Positional;
  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--no-oracle"))
      Opts.UseOracle = false;
    else if (!std::strcmp(argv[I], "--no-checks"))
      Opts.Checks = false;
    else if (!std::strcmp(argv[I], "--no-elide"))
      Opts.Elide = false;
    else if (!std::strcmp(argv[I], "--interprocedural"))
      Opts.Interprocedural = true;
    else if (!std::strncmp(argv[I], "--interprocedural=", 18)) {
      const char *V = argv[I] + 18;
      if (!std::strcmp(V, "on"))
        Opts.Interprocedural = true;
      else if (!std::strcmp(V, "off"))
        Opts.Interprocedural = false;
      else {
        std::fprintf(stderr,
                     "fearlessc: bad --interprocedural value '%s' "
                     "(expected on or off)\n",
                     V);
        return ExitUsage;
      }
    } else if (!std::strcmp(argv[I], "--json"))
      Opts.Json = true;
    else if (!std::strcmp(argv[I], "--summaries"))
      Opts.DumpSummaries = true;
    else if (!std::strcmp(argv[I], "--werror"))
      Opts.Werror = true;
    else if (!std::strcmp(argv[I], "--stats"))
      Opts.Stats = true;
    else if (!std::strcmp(argv[I], "--metrics"))
      Opts.Metrics = true;
    else if (!std::strcmp(argv[I], "--trace") && I + 1 < argc)
      Opts.TracePath = argv[++I];
    else if (!std::strcmp(argv[I], "--faults") && I + 1 < argc) {
      Opts.FaultSpec = argv[++I];
      Opts.FaultSpecSet = true;
    } else if (!std::strcmp(argv[I], "--seed") && I + 1 < argc)
      Opts.Seed = std::strtoull(argv[++I], nullptr, 10);
    else if (!std::strcmp(argv[I], "--workers") && I + 1 < argc) {
      Opts.Workers = std::strtoull(argv[++I], nullptr, 10);
      Opts.WorkersSet = true;
    } else if (!std::strcmp(argv[I], "--sched-seed") && I + 1 < argc)
      Opts.SchedSeed = std::strtoull(argv[++I], nullptr, 10);
    else if (!std::strcmp(argv[I], "--engine") && I + 1 < argc)
      Opts.Engine = argv[++I];
    else if (!std::strncmp(argv[I], "--engine=", 9))
      Opts.Engine = argv[I] + 9;
    else if (!std::strcmp(argv[I], "--daemon") && I + 1 < argc)
      Opts.DaemonSocket = argv[++I];
    else
      Positional.push_back(argv[I]);
  }
  if (Opts.Engine != "vm" && Opts.Engine != "interp") {
    std::fprintf(stderr, "fearlessc: unknown engine '%s' (expected vm "
                         "or interp)\n",
                 Opts.Engine.c_str());
    return ExitUsage;
  }
  if (Positional.empty())
    return usage();

  if (!Opts.DaemonSocket.empty())
    return cmdDaemon(Positional, Opts);

  const char *Cmd = Positional[0];
  if (!std::strcmp(Cmd, "check") && Positional.size() == 2)
    return cmdCheck(Positional[1], Opts);
  if (!std::strcmp(Cmd, "analyze") && Positional.size() == 2) {
    if (!std::strcmp(Positional[1], "--samples"))
      return cmdAnalyzeSamples(Opts);
    return cmdAnalyze(Positional[1], Opts);
  }
  if (!std::strcmp(Cmd, "run") && Positional.size() >= 3) {
    std::vector<int64_t> Args;
    for (size_t I = 3; I < Positional.size(); ++I)
      Args.push_back(std::strtoll(Positional[I], nullptr, 10));
    return cmdRun(Positional[1], Positional[2], Args, Opts);
  }
  if (!std::strcmp(Cmd, "disasm") && Positional.size() == 2)
    return cmdDisasm(Positional[1], Opts);
  if (!std::strcmp(Cmd, "sig") && Positional.size() == 2)
    return cmdSig(Positional[1], Opts);
  if (!std::strcmp(Cmd, "derive") && Positional.size() == 3)
    return cmdDerive(Positional[1], Positional[2], Opts);
  if (!std::strcmp(Cmd, "dot") && Positional.size() == 3)
    return cmdDot(Positional[1], Positional[2], Opts);
  if (!std::strcmp(Cmd, "sample") && Positional.size() == 2)
    return cmdSample(Positional[1]);
  return usage();
}
