#!/usr/bin/env python3
"""Doc-drift gate: keep docs/OBSERVABILITY.md and the README honest.

Checks, failing with a nonzero exit on the first class of drift found:

 1. Every RuntimeMetrics counter registered in src/support/Metrics.cpp
    (the `Fn("name", ...)` rows of RuntimeMetrics::forEach — the stable
    JSON schema of `--metrics` and BENCH_*.json) is documented in
    docs/OBSERVABILITY.md's counter glossary.
 2. The reverse: every counter the glossary documents still exists in
    Metrics.cpp (no ghost rows for deleted counters).
 3. Every `--flag` shown on a line mentioning `fearlessc` in README.md,
    docs/OBSERVABILITY.md, or docs/SCHEDULER.md is actually accepted by
    tools/fearlessc.cpp (stale-flag detection — the drift this tool
    exists to catch).
 4. Every fault point named in src/support/FaultInjector.cpp's PointNames
    array has a row in docs/OBSERVABILITY.md's fault-point table, and the
    reverse (the `--faults` spec vocabulary stays documented).
 5. fearlessc accepts `--faults` (the flag the robustness docs are
    written around).
 6. fearlessc accepts `--workers` and `--sched-seed` (the flags the
    scheduler docs are written around). The scheduler's counters
    (tasks_spawned, steals, parks) are covered by checks 1-2 like any
    other RuntimeMetrics registration.
 7. fearlessc accepts `--engine` and docs/IMPLEMENTATION.md documents
    the `fearlessc disasm` subcommand (the bytecode-VM docs are written
    around both). The VM's counters (vm_instructions, ic_hits,
    ic_misses, checks_erased) are covered by checks 1-2.
 8. fearlessc accepts `--interprocedural`, `--json`, `--summaries` and
    `--werror` (the flags the interprocedural-analysis docs are written
    around); docs/ANALYSIS.md joins the flag scan of check 3. The
    analysis counters (analysis_must_disconnected etc.) are covered by
    checks 1-2 like any other RuntimeMetrics registration.
 9. The daemon docs: every wire op in src/server/Wire.cpp's OpNames
    array has a `op`-backticked mention in docs/SERVER.md; every flag
    tools/fearlessd.cpp accepts appears in docs/SERVER.md; every --flag
    on a line mentioning `fearlessd` in README.md, docs/SERVER.md, or
    docs/OBSERVABILITY.md is actually accepted by fearlessd (stale-flag
    detection, mirror of check 3); fearlessc accepts `--daemon`;
    docs/SERVER.md names all four server counters (sessions_active,
    cache_hits, cache_misses, requests_rejected — their glossary rows
    are covered by checks 1-2); and docs/SERVER.md joins the fearlessc
    flag scan of check 3.
10. Every handbook links the shared vocabulary: README.md, DESIGN.md,
    and each docs/*.md reference GLOSSARY.md.
11. The model-checker docs: fearlessc accepts the `mc` surface the docs
    are written around (`--schedule`, `--spawn`, `--mc-depth`,
    `--mc-schedules`, `--mc-preemptions`, `--mc-checks`, `--mc-dpor`,
    `--mc-out`); docs/MODELCHECK.md documents the `fearlessc mc`
    subcommand and the `fearless-schedule-v1` file format, and joins
    the flag scan of check 3 plus the GLOSSARY link rule of check 10.
    The mc counters (mc_schedules_explored etc.) are covered by checks
    1-2 like any other RuntimeMetrics registration.

Run from anywhere: paths are resolved relative to the repo root. Wired
into tools/ci.sh; `--self-test` exercises the extraction logic against
inline fixtures without touching the tree.
"""

import argparse
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

METRICS_CPP = ROOT / "src" / "support" / "Metrics.cpp"
OBSERVABILITY_MD = ROOT / "docs" / "OBSERVABILITY.md"
SCHEDULER_MD = ROOT / "docs" / "SCHEDULER.md"
IMPLEMENTATION_MD = ROOT / "docs" / "IMPLEMENTATION.md"
ANALYSIS_MD = ROOT / "docs" / "ANALYSIS.md"
SERVER_MD = ROOT / "docs" / "SERVER.md"
MODELCHECK_MD = ROOT / "docs" / "MODELCHECK.md"
GLOSSARY_MD = ROOT / "docs" / "GLOSSARY.md"
LANGUAGE_MD = ROOT / "docs" / "LANGUAGE.md"
DESIGN_MD = ROOT / "DESIGN.md"
README_MD = ROOT / "README.md"
FEARLESSC_CPP = ROOT / "tools" / "fearlessc.cpp"
FEARLESSD_CPP = ROOT / "tools" / "fearlessd.cpp"
WIRE_CPP = ROOT / "src" / "server" / "Wire.cpp"
FAULTINJECTOR_CPP = ROOT / "src" / "support" / "FaultInjector.cpp"

# The forEach registration rows: Fn("counter_name", Value);
COUNTER_RE = re.compile(r'Fn\("([a-z_]+)"')

# A documented counter: a table row whose first cell is `counter_name`,
# inside the "Metrics counter glossary" section only (other sections
# tabulate trace events, which are not counters).
GLOSSARY_HEADING = "## Metrics counter glossary"
GLOSSARY_ROW_RE = re.compile(r"^\|\s*`([a-z_]+)`", re.MULTILINE)

# A CLI flag token: --word[-word...], not preceded by another dash (so
# comment rules like //----- are not flags).
FLAG_RE = re.compile(r"(?<![-\w])--([a-z][a-z-]*)\b")

# The fault-point vocabulary: the string literals of the PointNames array
# in FaultInjector.cpp (the spec / docs / trace names).
POINT_NAMES_RE = re.compile(
    r"PointNames\[NumFaultPoints\]\s*=\s*\{(.*?)\}", re.DOTALL
)
POINT_LITERAL_RE = re.compile(r'"([a-z.]+)"')

# A documented fault point: a table row whose first cell is `point.name`,
# inside the "Fault points" subsection of the robustness docs.
FAULT_TABLE_HEADING = "### Fault points"
FAULT_ROW_RE = re.compile(r"^\|\s*`([a-z.]+)`", re.MULTILINE)

# The wire-op vocabulary: the string literals of the OpNames array in
# src/server/Wire.cpp (the `op` field values of fearless-wire-v1).
OP_NAMES_RE = re.compile(r"OpNames\[NumWireOps\]\s*=\s*\{(.*?)\}", re.DOTALL)
OP_LITERAL_RE = re.compile(r'"([a-z_]+)"')

# The four server-side RuntimeMetrics registrations; docs/SERVER.md must
# name each one (their glossary rows are checks 1-2's job).
SERVER_COUNTERS = (
    "sessions_active",
    "cache_hits",
    "cache_misses",
    "requests_rejected",
)


def extract_counters(metrics_src: str) -> set:
    return set(COUNTER_RE.findall(metrics_src))


def extract_documented_counters(doc: str) -> set:
    start = doc.find(GLOSSARY_HEADING)
    if start < 0:
        return set()
    end = doc.find("\n## ", start + len(GLOSSARY_HEADING))
    section = doc[start:] if end < 0 else doc[start:end]
    return set(GLOSSARY_ROW_RE.findall(section))


def extract_accepted_flags(cli_src: str) -> set:
    return set(FLAG_RE.findall(cli_src))


def extract_fault_points(injector_src: str) -> set:
    m = POINT_NAMES_RE.search(injector_src)
    if not m:
        return set()
    return set(POINT_LITERAL_RE.findall(m.group(1)))


def extract_documented_fault_points(doc: str) -> set:
    start = doc.find(FAULT_TABLE_HEADING)
    if start < 0:
        return set()
    end = doc.find("\n#", start + len(FAULT_TABLE_HEADING))
    section = doc[start:] if end < 0 else doc[start:end]
    return set(FAULT_ROW_RE.findall(section))


def extract_documented_flags(doc: str, binary: str = "fearlessc") -> list:
    """(line_number, flag) for every --flag on a line mentioning binary."""
    out = []
    for n, line in enumerate(doc.splitlines(), 1):
        if binary not in line:
            continue
        for flag in FLAG_RE.findall(line):
            out.append((n, flag))
    return out


def extract_wire_ops(wire_src: str) -> set:
    m = OP_NAMES_RE.search(wire_src)
    if not m:
        return set()
    return set(OP_LITERAL_RE.findall(m.group(1)))


def self_test() -> int:
    metrics = 'Fn("steps", Steps);\n  Fn("wall_micros", WallMicros);'
    assert extract_counters(metrics) == {"steps", "wall_micros"}

    doc = (
        "## Metrics counter glossary\n"
        "| `steps` | unit | interp |\n"
        "prose about `not_a_counter` outside a table\n"
        "| `wall_micros` | us | executor |\n"
        "## Trace event schema\n"
        "| `not_a_counter_event` | i | - |\n"
    )
    assert extract_documented_counters(doc) == {"steps", "wall_micros"}
    assert extract_documented_counters("no glossary here") == set()

    cli = (
        'if (!std::strcmp(argv[I], "--trace")) {} // --metrics\n'
        '"--sched-seed"\n//---\n'
    )
    assert extract_accepted_flags(cli) == {"trace", "metrics", "sched-seed"}
    # Both spellings of a valued flag register it once.
    assert extract_accepted_flags('"--engine" and "--engine=" forms') == {
        "engine"
    }

    lines = "run fearlessc with --trace out.json\nunrelated --flag here\n"
    assert extract_documented_flags(lines) == [(1, "trace")]
    dlines = (
        "start fearlessd --socket /tmp/s.sock\n"
        "fearlessc talks to it with --daemon\n"
    )
    assert extract_documented_flags(dlines, "fearlessd") == [(1, "socket")]
    assert extract_documented_flags(dlines) == [(2, "daemon")]

    wire = (
        "const char *const fearless::server::OpNames[NumWireOps] = {\n"
        '    "check", "analyze", "run", "metrics", "shutdown",\n'
        "};\n"
    )
    assert extract_wire_ops(wire) == {
        "check",
        "analyze",
        "run",
        "metrics",
        "shutdown",
    }
    assert extract_wire_ops("no ops here") == set()

    injector = (
        "static constexpr const char *PointNames[NumFaultPoints] = {\n"
        '    "chan.send",    "chan.recv",  "heap.alloc",\n'
        '    "thread.start", "sched.step", "disconnect.traverse",\n'
        "};\n"
    )
    assert extract_fault_points(injector) == {
        "chan.send",
        "chan.recv",
        "heap.alloc",
        "thread.start",
        "sched.step",
        "disconnect.traverse",
    }
    assert extract_fault_points("no array here") == set()

    fault_doc = (
        "## Robustness & fault injection\n"
        "### Fault points\n"
        "| `chan.send` | a send completing |\n"
        "| `heap.alloc` | a language-level new |\n"
        "\n### Next heading\n"
        "| `not.a.point` | other table |\n"
    )
    assert extract_documented_fault_points(fault_doc) == {
        "chan.send",
        "heap.alloc",
    }
    assert extract_documented_fault_points("nothing") == set()

    print("check_docs: self-test OK")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()
    if args.self_test:
        return self_test()

    for path in (METRICS_CPP, OBSERVABILITY_MD, SCHEDULER_MD, README_MD,
                 IMPLEMENTATION_MD, ANALYSIS_MD, SERVER_MD, GLOSSARY_MD,
                 LANGUAGE_MD, DESIGN_MD, MODELCHECK_MD, FEARLESSC_CPP,
                 FEARLESSD_CPP, WIRE_CPP, FAULTINJECTOR_CPP):
        if not path.exists():
            print(f"check_docs: missing {path.relative_to(ROOT)}",
                  file=sys.stderr)
            return 1

    counters = extract_counters(METRICS_CPP.read_text())
    observability = OBSERVABILITY_MD.read_text()
    documented = extract_documented_counters(observability)
    failures = 0

    missing = sorted(counters - documented)
    for name in missing:
        print(
            f"check_docs: counter '{name}' is registered in "
            f"src/support/Metrics.cpp but has no glossary row in "
            f"docs/OBSERVABILITY.md",
            file=sys.stderr,
        )
        failures += 1

    ghosts = sorted(documented - counters)
    for name in ghosts:
        print(
            f"check_docs: docs/OBSERVABILITY.md documents counter "
            f"'{name}' which src/support/Metrics.cpp no longer registers",
            file=sys.stderr,
        )
        failures += 1

    accepted = extract_accepted_flags(FEARLESSC_CPP.read_text())
    implementation = IMPLEMENTATION_MD.read_text()
    readme = README_MD.read_text()
    server_doc = SERVER_MD.read_text()
    modelcheck = MODELCHECK_MD.read_text()
    for doc_path, text in (
        (README_MD, readme),
        (OBSERVABILITY_MD, observability),
        (SCHEDULER_MD, SCHEDULER_MD.read_text()),
        (IMPLEMENTATION_MD, implementation),
        (ANALYSIS_MD, ANALYSIS_MD.read_text()),
        (SERVER_MD, server_doc),
        (MODELCHECK_MD, modelcheck),
    ):
        for line, flag in extract_documented_flags(text):
            if flag not in accepted:
                print(
                    f"check_docs: {doc_path.relative_to(ROOT)}:{line} "
                    f"shows 'fearlessc ... --{flag}' but fearlessc does "
                    f"not accept --{flag}",
                    file=sys.stderr,
                )
                failures += 1

    points = extract_fault_points(FAULTINJECTOR_CPP.read_text())
    documented_points = extract_documented_fault_points(observability)
    if not points:
        print(
            "check_docs: could not extract the PointNames array from "
            "src/support/FaultInjector.cpp",
            file=sys.stderr,
        )
        failures += 1
    for name in sorted(points - documented_points):
        print(
            f"check_docs: fault point '{name}' is defined in "
            f"src/support/FaultInjector.cpp but has no row in "
            f"docs/OBSERVABILITY.md's fault-point table",
            file=sys.stderr,
        )
        failures += 1
    for name in sorted(documented_points - points):
        print(
            f"check_docs: docs/OBSERVABILITY.md documents fault point "
            f"'{name}' which src/support/FaultInjector.cpp no longer "
            f"defines",
            file=sys.stderr,
        )
        failures += 1

    if "faults" not in accepted:
        print(
            "check_docs: fearlessc does not accept --faults, but the "
            "robustness docs depend on it",
            file=sys.stderr,
        )
        failures += 1

    for flag in ("workers", "sched-seed"):
        if flag not in accepted:
            print(
                f"check_docs: fearlessc does not accept --{flag}, but "
                f"the scheduler docs depend on it",
                file=sys.stderr,
            )
            failures += 1

    if "engine" not in accepted:
        print(
            "check_docs: fearlessc does not accept --engine, but the "
            "VM docs depend on it",
            file=sys.stderr,
        )
        failures += 1
    for flag in ("interprocedural", "json", "summaries", "werror"):
        if flag not in accepted:
            print(
                f"check_docs: fearlessc does not accept --{flag}, but "
                f"the interprocedural-analysis docs depend on it",
                file=sys.stderr,
            )
            failures += 1

    # 11: the model-checker docs.
    for flag in ("schedule", "spawn", "mc-depth", "mc-schedules",
                 "mc-preemptions", "mc-checks", "mc-dpor", "mc-out"):
        if flag not in accepted:
            print(
                f"check_docs: fearlessc does not accept --{flag}, but "
                f"the model-checker docs depend on it",
                file=sys.stderr,
            )
            failures += 1
    for needle in ("fearlessc mc", "fearless-schedule-v1"):
        if needle not in modelcheck:
            print(
                f"check_docs: docs/MODELCHECK.md does not document "
                f"'{needle}'",
                file=sys.stderr,
            )
            failures += 1

    if "fearlessc disasm" not in implementation:
        print(
            "check_docs: docs/IMPLEMENTATION.md does not document the "
            "`fearlessc disasm` subcommand",
            file=sys.stderr,
        )
        failures += 1

    # 9: the daemon docs.
    ops = extract_wire_ops(WIRE_CPP.read_text())
    if not ops:
        print(
            "check_docs: could not extract the OpNames array from "
            "src/server/Wire.cpp",
            file=sys.stderr,
        )
        failures += 1
    for op in sorted(ops):
        if f"`{op}`" not in server_doc:
            print(
                f"check_docs: wire op '{op}' is defined in "
                f"src/server/Wire.cpp but docs/SERVER.md never mentions "
                f"`{op}`",
                file=sys.stderr,
            )
            failures += 1

    daemon_flags = extract_accepted_flags(FEARLESSD_CPP.read_text())
    if not daemon_flags:
        print(
            "check_docs: could not extract any flags from "
            "tools/fearlessd.cpp",
            file=sys.stderr,
        )
        failures += 1
    for flag in sorted(daemon_flags):
        if f"--{flag}" not in server_doc:
            print(
                f"check_docs: fearlessd accepts --{flag} but "
                f"docs/SERVER.md never documents it",
                file=sys.stderr,
            )
            failures += 1
    for doc_path, text in (
        (README_MD, readme),
        (OBSERVABILITY_MD, observability),
        (SERVER_MD, server_doc),
    ):
        for line, flag in extract_documented_flags(text, "fearlessd"):
            if flag not in daemon_flags:
                print(
                    f"check_docs: {doc_path.relative_to(ROOT)}:{line} "
                    f"shows 'fearlessd ... --{flag}' but fearlessd does "
                    f"not accept --{flag}",
                    file=sys.stderr,
                )
                failures += 1

    if "daemon" not in accepted:
        print(
            "check_docs: fearlessc does not accept --daemon, but the "
            "server docs depend on it",
            file=sys.stderr,
        )
        failures += 1

    for name in SERVER_COUNTERS:
        if name not in server_doc:
            print(
                f"check_docs: docs/SERVER.md never mentions the server "
                f"counter '{name}'",
                file=sys.stderr,
            )
            failures += 1

    # 10: every handbook links the shared vocabulary.
    for doc_path in (README_MD, DESIGN_MD, LANGUAGE_MD, IMPLEMENTATION_MD,
                     ANALYSIS_MD, OBSERVABILITY_MD, SCHEDULER_MD, SERVER_MD,
                     MODELCHECK_MD):
        if "GLOSSARY" not in doc_path.read_text():
            print(
                f"check_docs: {doc_path.relative_to(ROOT)} does not link "
                f"docs/GLOSSARY.md",
                file=sys.stderr,
            )
            failures += 1

    if failures:
        print(f"check_docs: {failures} drift issue(s)", file=sys.stderr)
        return 1

    print(
        f"check_docs: OK ({len(counters)} counters documented, "
        f"{len(accepted)} CLI flags consistent, "
        f"{len(points)} fault points documented, "
        f"{len(ops)} wire ops and {len(daemon_flags)} fearlessd flags "
        f"documented)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
