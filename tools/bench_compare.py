#!/usr/bin/env python3
"""Compare two merged benchmark baselines produced by tools/bench.sh.

Usage:
  tools/bench_compare.py BASELINE.json CURRENT.json [options]

Options:
  --threshold X    regression threshold as a ratio (default 1.25: fail if
                   current time > 1.25x baseline time on any benchmark)
  --metric NAME    time field to compare: cpu_time (default) or real_time
  --counters       also print counter deltas (allocs_per_iter,
                   losing_side_visited, RuntimeMetrics counters, ...)
  --min-ns X       ignore benchmarks whose baseline time is below X ns
                   (micro-benchmarks under ~50ns are noise-dominated on a
                   loaded machine; default 0 = compare everything)

Exit status: 0 when no benchmark regressed beyond the threshold, 1
otherwise. Intended for local use and pre-merge checks; CI runs the
benches in smoke mode only (tools/ci.sh) and does not gate on thresholds.
"""

import argparse
import json
import sys


def load(path):
    """Load a merged baseline, exiting with a one-line diagnostic (no
    traceback) when the file is missing, unreadable, or not JSON."""
    try:
        with open(path) as f:
            data = json.load(f)
    except OSError as e:
        sys.exit(f"{path}: cannot read baseline: {e.strerror or e}")
    except json.JSONDecodeError as e:
        sys.exit(f"{path}: malformed JSON: {e} (regenerate with tools/bench.sh)")
    if not isinstance(data, dict) or data.get("schema") != "fearless-bench-v1":
        sys.exit(f"{path}: not a fearless-bench-v1 file (see tools/bench.sh)")
    entries = {}
    for bench, payload in data.get("benches", {}).items():
        if not isinstance(payload, dict):
            continue
        for bm in payload.get("benchmarks", []):
            # aggregate entries (mean/median/stddev) would double-count
            if not isinstance(bm, dict) or "name" not in bm:
                continue
            if bm.get("run_type") == "aggregate":
                continue
            entries[f"{bench}/{bm['name']}"] = bm
    return entries


def counter_rows(bc, cc):
    """Yield (key, base_val, cur_val) for every numeric counter in either
    run.

    A key present on only one side yields None for the missing value: a
    new or removed metric is an informational row, never a KeyError and
    never a regression. (Counters appear and disappear across PRs — e.g.
    a new elision counter exists only in the newer baseline.)
    """
    for k in sorted(set(bc) | set(cc)):
        if k in ("cpu_time", "real_time", "iterations"):
            continue
        b, c = bc.get(k), cc.get(k)
        if b is not None and not isinstance(b, (int, float)):
            continue
        if c is not None and not isinstance(c, (int, float)):
            continue
        yield k, b, c


def self_test():
    """Sanity-check counter_rows and load()'s one-line error handling."""
    bc = {"allocs_per_iter": 0, "gone": 7, "cpu_time": 12.5, "name": "x"}
    cc = {"allocs_per_iter": 1, "elided_checks": 3, "cpu_time": 11.0}
    rows = list(counter_rows(bc, cc))
    assert rows == [
        ("allocs_per_iter", 0, 1),
        ("elided_checks", None, 3),
        ("gone", 7, None),
    ], rows
    # No numeric counters at all: no rows, no exceptions.
    assert list(counter_rows({"name": "x"}, {})) == []

    # load() must exit with a one-line message — never a traceback — on
    # missing, malformed, wrong-schema, and wrong-shape inputs.
    import tempfile

    def expect_exit(path, needle):
        try:
            load(path)
        except SystemExit as e:
            msg = str(e.code)
            assert needle in msg, f"expected {needle!r} in {msg!r}"
            assert "Traceback" not in msg
            return
        raise AssertionError(f"load({path!r}) did not exit")

    expect_exit("/nonexistent/baseline.json", "cannot read baseline")
    cases = [
        ("{not json", "malformed JSON"),
        ('{"schema": "something-else"}', "not a fearless-bench-v1 file"),
        ('["fearless-bench-v1"]', "not a fearless-bench-v1 file"),
    ]
    for content, needle in cases:
        with tempfile.NamedTemporaryFile("w", suffix=".json") as f:
            f.write(content)
            f.flush()
            expect_exit(f.name, needle)
    # A valid file with degenerate entries loads without KeyError.
    with tempfile.NamedTemporaryFile("w", suffix=".json") as f:
        json.dump(
            {
                "schema": "fearless-bench-v1",
                "benches": {
                    "b": {"benchmarks": [{"run_type": "aggregate"}, {}, 3]},
                    "c": "not-a-dict",
                },
            },
            f,
        )
        f.flush()
        assert load(f.name) == {}
    print("bench_compare self-test: OK")
    return 0


def fmt_time(ns):
    if ns >= 1e6:
        return f"{ns / 1e6:10.2f} ms"
    if ns >= 1e3:
        return f"{ns / 1e3:10.2f} us"
    return f"{ns:10.1f} ns"


def main():
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    ap.add_argument("baseline", nargs="?")
    ap.add_argument("current", nargs="?")
    ap.add_argument("--threshold", type=float, default=1.25)
    ap.add_argument("--metric", choices=("cpu_time", "real_time"), default="cpu_time")
    ap.add_argument("--counters", action="store_true")
    ap.add_argument("--min-ns", type=float, default=0.0)
    ap.add_argument("--self-test", action="store_true")
    args = ap.parse_args()

    if args.self_test:
        return self_test()
    if args.baseline is None or args.current is None:
        ap.error("baseline and current are required unless --self-test")

    base = load(args.baseline)
    cur = load(args.current)

    regressions, improvements, skipped = [], [], 0
    width = max((len(n) for n in base if n in cur), default=20)
    print(f"{'benchmark'.ljust(width)}  {'baseline':>13}  {'current':>13}  ratio")
    for name in sorted(base):
        if name not in cur:
            continue
        b, c = base[name].get(args.metric), cur[name].get(args.metric)
        if b is None or c is None or b <= 0:
            continue
        if b < args.min_ns:
            skipped += 1
            continue
        ratio = c / b
        flag = ""
        if ratio > args.threshold:
            flag = "  << REGRESSION"
            regressions.append((name, ratio))
        elif ratio < 1.0 / args.threshold:
            flag = "  improved"
            improvements.append((name, ratio))
        print(
            f"{name.ljust(width)}  {fmt_time(b)}  {fmt_time(c)}  "
            f"{ratio:5.2f}x{flag}"
        )
        if args.counters:
            bc = base[name].get("counters", base[name])
            cc = cur[name].get("counters", cur[name])
            for k, b_val, c_val in counter_rows(bc, cc):
                if b_val is None:
                    print(f"{''.ljust(width)}    {k}: (new) {c_val:g}")
                elif c_val is None:
                    print(f"{''.ljust(width)}    {k}: {b_val:g} (removed)")
                elif b_val != c_val:
                    print(f"{''.ljust(width)}    {k}: {b_val:g} -> {c_val:g}")

    only_base = sorted(set(base) - set(cur))
    only_cur = sorted(set(cur) - set(base))
    if only_base:
        print(f"\nonly in baseline ({len(only_base)}):")
        for name in only_base:
            print(f"  {name}")
    if only_cur:
        print(f"\nonly in current ({len(only_cur)}):")
        for name in only_cur:
            print(f"  {name}")
    if skipped:
        print(f"\nskipped {skipped} sub-{args.min_ns:g}ns benchmarks")

    print(
        f"\n{len(regressions)} regression(s), {len(improvements)} improvement(s) "
        f"at threshold {args.threshold:g}x on {args.metric}"
    )
    if regressions:
        worst = max(regressions, key=lambda r: r[1])
        print(f"worst: {worst[0]} at {worst[1]:.2f}x")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
