//===- tools/fearlessd.cpp - The check/run daemon --------------*- C++ -*-===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
//
// fearlessd — the long-lived check/run daemon. Listens on a unix socket,
// speaks fearless-wire-v1 (docs/SERVER.md), serves check/analyze/run
// requests through the shared CompilePipeline with a content-hash
// derivation cache, and exposes daemon-lifetime metrics.
//
//   fearlessd --socket /tmp/fearless.sock [options]
//
// Options:
//   --socket PATH        unix socket path (required; the daemon owns it)
//   --workers N          session workers = max concurrent sessions
//                        (0 = auto, default)
//   --max-sessions N     pending-session queue bound before typed
//                        `overloaded` rejections (default 64)
//   --cache-bytes N      derivation-cache budget in bytes (default
//                        67108864 = 64 MiB; 0 disables caching)
//   --max-frame-bytes N  largest accepted request frame (default 16 MiB)
//   --trace FILE         write a Chrome trace of server activity on exit
//
// Exit codes: 0 clean shutdown, 1 startup/runtime failure, 2 usage.
// Clients: `fearlessc --daemon PATH <check|analyze|run|metrics|
// shutdown> ...` (bit-identical output to standalone fearlessc).
//
//===----------------------------------------------------------------------===//

#include "server/Server.h"
#include "support/Trace.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

using namespace fearless;
using namespace fearless::server;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: fearlessd --socket PATH [options]\n"
      "  --socket PATH        unix socket path (required)\n"
      "  --workers N          session workers = max concurrent sessions\n"
      "                       (0 = auto)\n"
      "  --max-sessions N     pending-session queue bound before typed\n"
      "                       overloaded rejections (default 64)\n"
      "  --cache-bytes N      derivation-cache budget in bytes\n"
      "                       (default 64 MiB; 0 disables caching)\n"
      "  --max-frame-bytes N  largest accepted request frame\n"
      "                       (default 16 MiB)\n"
      "  --trace FILE         write a Chrome trace on exit\n");
  return 2;
}

bool parseSize(const char *Text, size_t &Out) {
  char *End = nullptr;
  unsigned long long V = std::strtoull(Text, &End, 10);
  if (End == Text || *End != '\0')
    return false;
  Out = static_cast<size_t>(V);
  return true;
}

} // namespace

int main(int argc, char **argv) {
  ServerOptions Opts;
  std::string TracePath;
  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--socket") && I + 1 < argc)
      Opts.SocketPath = argv[++I];
    else if (!std::strcmp(argv[I], "--workers") && I + 1 < argc) {
      if (!parseSize(argv[++I], Opts.Workers))
        return usage();
    } else if (!std::strcmp(argv[I], "--max-sessions") && I + 1 < argc) {
      if (!parseSize(argv[++I], Opts.MaxSessions) ||
          Opts.MaxSessions == 0)
        return usage();
    } else if (!std::strcmp(argv[I], "--cache-bytes") && I + 1 < argc) {
      if (!parseSize(argv[++I], Opts.CacheBytes))
        return usage();
    } else if (!std::strcmp(argv[I], "--max-frame-bytes") &&
               I + 1 < argc) {
      if (!parseSize(argv[++I], Opts.MaxFrameBytes) ||
          Opts.MaxFrameBytes == 0)
        return usage();
    } else if (!std::strcmp(argv[I], "--trace") && I + 1 < argc)
      TracePath = argv[++I];
    else
      return usage();
  }
  if (Opts.SocketPath.empty())
    return usage();

  TraceSession Trace;
  if (!TracePath.empty())
    Opts.Trace = &Trace;

  // Route SIGINT/SIGTERM through a dedicated sigwait thread: the
  // server's shutdown path takes locks, so it must not run inside a
  // signal handler. The mask is installed before any server thread
  // starts, so every thread inherits it.
  sigset_t Sigs;
  sigemptyset(&Sigs);
  sigaddset(&Sigs, SIGINT);
  sigaddset(&Sigs, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &Sigs, nullptr);

  Server S(std::move(Opts));
  ExpectedVoid Started = S.start();
  if (!Started) {
    std::fprintf(stderr, "%s\n", Started.error().render().c_str());
    return 1;
  }
  std::fprintf(stderr, "fearlessd: listening (workers=%zu)\n",
               S.workerCount());

  std::thread SignalThread([&S, Sigs] {
    int Sig = 0;
    if (sigwait(&Sigs, &Sig) == 0)
      S.requestShutdown();
  });
  // The thread stays parked in sigwait on a shutdown-op exit; process
  // exit reaps it.
  SignalThread.detach();

  S.run();
  std::fprintf(stderr, "fearlessd: shut down\n");

  if (!TracePath.empty()) {
    std::string Error;
    if (!Trace.writeChromeJson(TracePath, Error)) {
      std::fprintf(stderr, "fearlessd: --trace: %s\n", Error.c_str());
      return 1;
    }
  }
  return 0;
}
