#!/usr/bin/env bash
#===- tools/ci.sh ---------------------------------------------------------===#
#
# Part of the fearless-concurrency reproduction.
#
#===----------------------------------------------------------------------===#
#
# Local CI gate: a regular build + test pass (followed by a benchmark
# smoke run — every bench binary must execute to completion; no perf
# thresholds, that is tools/bench_compare.py's job), then the same test
# suite under ThreadSanitizer. The concurrent runtime (ParallelExec,
# ChannelSet) is the part of this repo most likely to rot silently — TSan
# keeps the "fearless" claim honest.
#
# Usage: tools/ci.sh [extra ctest args...]
#
#===----------------------------------------------------------------------===#

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"

run_pass() {
  local name="$1" dir="$2"
  shift 2
  echo "==> [$name] configure"
  cmake -B "$dir" -S "$ROOT" "$@" >/dev/null
  echo "==> [$name] build"
  cmake --build "$dir" -j "$JOBS"
  echo "==> [$name] test"
  (cd "$dir" && ctest --output-on-failure -j "$JOBS" "${CTEST_ARGS[@]}")
}

# Static region-graph analysis over every example program plus the six
# embedded samples. The analyzer must not crash, and a must-connected
# verdict (a provably dead `if disconnected` then-branch) is a bug in the
# example unless the example exists to demonstrate exactly that
# (disconnect_static.fls).
run_analyze() {
  local name="$1" dir="$2"
  local fc="$dir/tools/fearlessc"
  echo "==> [$name] analyze (embedded samples)"
  "$fc" analyze --samples | sed 's/^/    /'
  for f in "$ROOT"/examples/*.fls; do
    echo "==> [$name] analyze $(basename "$f")"
    local out
    out="$("$fc" analyze "$f")"
    sed 's/^/    /' <<<"$out"
    if [[ "$(basename "$f")" != "disconnect_static.fls" ]] &&
       grep -q "is must-connected" <<<"$out"; then
      echo "==> [$name] FAIL: unexpected must-connected verdict in $f" >&2
      exit 1
    fi
  done
}

CTEST_ARGS=("$@")

echo "==> [tools] bench_compare self-test"
python3 "$ROOT/tools/bench_compare.py" --self-test

run_pass "default" "$ROOT/build"
run_analyze "default" "$ROOT/build"
echo "==> [default] bench smoke"
"$ROOT/tools/bench.sh" --smoke -B "$ROOT/build"
run_pass "tsan" "$ROOT/build-tsan" -DFEARLESS_SANITIZE=thread
run_analyze "tsan" "$ROOT/build-tsan"

echo "==> all passes green"
