#!/usr/bin/env bash
#===- tools/ci.sh ---------------------------------------------------------===#
#
# Part of the fearless-concurrency reproduction.
#
#===----------------------------------------------------------------------===#
#
# Local CI gate: a regular build + test pass (followed by a benchmark
# smoke run — every bench binary must execute to completion; no perf
# thresholds, that is tools/bench_compare.py's job), a CLI exit-code
# smoke, a fearlessd server smoke (daemon output bit-identical to
# standalone on every example, warm-cache assertion, draining
# shutdown), a seeded chaos smoke (fault injection under supervision, 8
# fixed seeds), a generated-corpus analysis smoke with an
# interprocedural precision gate, a model-checker smoke (the
# erasure-soundness gate: `fearlessc mc --mc-checks=off` over the
# examples and corpus, plus a deadlock fixture whose counterexample
# schedule must replay deterministically), then the same test suite, server
# smoke, and chaos smoke under ThreadSanitizer plus the corpus smoke
# under AddressSanitizer. The concurrent runtime (ParallelExec, ChannelSet) is
# the part of this repo most likely to rot silently — TSan and chaos
# keep the "fearless" claim honest.
#
# Usage: tools/ci.sh [extra ctest args...]
#
#===----------------------------------------------------------------------===#

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"

run_pass() {
  local name="$1" dir="$2"
  shift 2
  echo "==> [$name] configure"
  cmake -B "$dir" -S "$ROOT" "$@" >/dev/null
  echo "==> [$name] build"
  cmake --build "$dir" -j "$JOBS"
  echo "==> [$name] test"
  (cd "$dir" && ctest --output-on-failure -j "$JOBS" "${CTEST_ARGS[@]}")
}

# Static region-graph analysis over every example program plus the six
# embedded samples. The analyzer must not crash, and a must-connected
# verdict (a provably dead `if disconnected` then-branch) is a bug in the
# example unless the example exists to demonstrate exactly that
# (disconnect_static.fls).
run_analyze() {
  local name="$1" dir="$2"
  local fc="$dir/tools/fearlessc"
  echo "==> [$name] analyze (embedded samples)"
  "$fc" analyze --samples | sed 's/^/    /'
  for f in "$ROOT"/examples/*.fls; do
    echo "==> [$name] analyze $(basename "$f")"
    local out
    out="$("$fc" analyze "$f")"
    sed 's/^/    /' <<<"$out"
    if [[ "$(basename "$f")" != "disconnect_static.fls" ]] &&
       grep -q "is must-connected" <<<"$out"; then
      echo "==> [$name] FAIL: unexpected must-connected verdict in $f" >&2
      exit 1
    fi
  done
}

# Trace smoke: `fearlessc run --trace` must produce JSON that actually
# parses and follows the Chrome trace_event schema (pid/tid/ts/name/ph,
# dur on complete events). The deep validation lives in trace_test; this
# catches exporter rot end to end through the CLI.
run_trace_smoke() {
  local name="$1" dir="$2"
  echo "==> [$name] trace smoke (fearlessc run --trace)"
  local out="$dir/ci_trace_smoke.json"
  "$dir/tools/fearlessc" run "$ROOT/examples/dll_remove.fls" main \
    --metrics --trace "$out" >/dev/null
  python3 - "$out" <<'PYEOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
events = doc["traceEvents"]
for e in events:
    assert {"name", "ph", "pid", "tid"} <= e.keys(), e
    if e["ph"] != "M":
        assert "ts" in e, e
    if e["ph"] == "X":
        assert "dur" in e, e
print(f"    valid Chrome trace, {len(events)} events")
PYEOF
}

# CLI exit-code smoke: fearlessc's documented exit codes (0 ok, 2 usage,
# 3 parse, 4 check/verify, 5 runtime fault — docs/OBSERVABILITY.md,
# "Robustness & fault injection") are part of its interface; scripts and
# this gate rely on them staying distinct.
expect_exit() {
  local want="$1" label="$2"
  shift 2
  local got=0
  "$@" >/dev/null 2>&1 || got=$?
  if [[ "$got" != "$want" ]]; then
    echo "==> FAIL: $label: expected exit $want, got $got ($*)" >&2
    exit 1
  fi
  echo "    $label: exit $got"
}

run_cli_smoke() {
  local name="$1" dir="$2"
  local fc="$dir/tools/fearlessc"
  echo "==> [$name] CLI exit-code smoke"
  printf 'struct data { value : int;\n' >"$dir/ci_parse_err.fls"
  cat >"$dir/ci_check_err.fls" <<'EOF'
struct data { value : int; }
struct node { iso payload : data; }

def f(x : node, c : bool) : unit {
  if (c) { send(x) } else { unit }
}
EOF
  expect_exit 0 "success" \
    "$fc" check "$ROOT/examples/dll_remove.fls"
  expect_exit 2 "usage (malformed --faults)" \
    "$fc" run "$ROOT/examples/dll_remove.fls" main --faults 'bogus'
  expect_exit 3 "parse error" "$fc" check "$dir/ci_parse_err.fls"
  expect_exit 4 "check rejection" "$fc" check "$dir/ci_check_err.fls"
  expect_exit 5 "runtime fault" \
    "$fc" run "$ROOT/examples/dll_remove.fls" main \
    --faults 'heap.alloc=nth:3,seed=7'
}

# VM engine smoke: the bytecode VM is the default `run` engine; its
# output must match the interpreter's word for word on every runnable
# example (the deep differential lives in tests/vm_test.cpp — this
# catches engine drift end to end through the CLI), and `disasm` must
# print the chunks and the statically folded `if disconnected` sites.
run_vm_smoke() {
  local name="$1" dir="$2"
  local fc="$dir/tools/fearlessc"
  echo "==> [$name] vm differential + disasm smoke"
  local vm_out interp_out
  for f in "$ROOT/examples/disconnect_static.fls" \
           "$ROOT/examples/dll_remove.fls"; do
    vm_out="$("$fc" run "$f" main)"
    interp_out="$("$fc" run "$f" main --engine interp)"
    if [[ "$vm_out" != "$interp_out" ]]; then
      echo "==> [$name] FAIL: engine divergence on $(basename "$f"):" \
           "vm='$vm_out' interp='$interp_out'" >&2
      exit 1
    fi
    echo "    $(basename "$f"): $vm_out (both engines)"
  done
  "$fc" disasm "$ROOT/examples/dll_remove.fls" | grep -q "chunk main" || {
    echo "==> [$name] FAIL: disasm output missing chunks" >&2
    exit 1
  }
  "$fc" disasm "$ROOT/examples/disconnect_static.fls" |
    grep -q "disconn.elided" || {
    echo "==> [$name] FAIL: disasm did not fold the static sites" >&2
    exit 1
  }
  echo "    disasm: chunks and folded sites present"
}

# Server smoke: start fearlessd, drive check/run/metrics/shutdown
# through `fearlessc --daemon`, and hold the protocol to its contract
# end to end (docs/SERVER.md): daemon stdout/stderr/exit bit-identical
# to standalone on every example program (both the cold and the warm,
# cache-hit path), cache_hits advancing on a repeated request, and a
# draining shutdown that removes the socket. The socket-level abuse
# cases (malformed frames, overload) live in tests/server_test.cpp.
run_server_smoke() {
  local name="$1" dir="$2"
  local fc="$dir/tools/fearlessc" fd="$dir/tools/fearlessd"
  local sock="$dir/ci_server.sock"
  echo "==> [$name] server smoke (fearlessd + --daemon equivalence)"
  rm -f "$sock"
  "$fd" --socket "$sock" --workers 2 &
  local fd_pid=$!
  local i
  for i in $(seq 1 200); do [[ -S "$sock" ]] && break; sleep 0.05; done
  if [[ ! -S "$sock" ]]; then
    echo "==> [$name] FAIL: fearlessd never bound $sock" >&2
    kill "$fd_pid" 2>/dev/null || true
    exit 1
  fi

  local f base cmd s_exit d_exit s_out d_out
  for f in "$ROOT"/examples/*.fls; do
    base="$(basename "$f")"
    # Each command twice through the daemon: the first populates the
    # derivation cache, the second must hit it — and both must be
    # byte-identical to the standalone run (exit code included).
    for cmd in "check" "run"; do
      local -a argv=("$cmd" "$f")
      [[ "$cmd" == run ]] && argv+=(main)
      s_exit=0
      s_out="$("$fc" "${argv[@]}" 2>"$dir/ci_srv_s.err")" || s_exit=$?
      local pass
      for pass in cold warm; do
        d_exit=0
        d_out="$("$fc" --daemon "$sock" "${argv[@]}" \
                 2>"$dir/ci_srv_d.err")" || d_exit=$?
        if [[ "$s_exit" != "$d_exit" || "$s_out" != "$d_out" ]] ||
           ! cmp -s "$dir/ci_srv_s.err" "$dir/ci_srv_d.err"; then
          echo "==> [$name] FAIL: daemon/standalone divergence on" \
               "'$cmd $base' ($pass): exit $s_exit vs $d_exit" >&2
          kill "$fd_pid" 2>/dev/null || true
          exit 1
        fi
      done
      echo "    $cmd $base: exit $s_exit, cold == warm == standalone"
    done
  done

  "$fc" --daemon "$sock" metrics >"$dir/ci_srv_metrics.json"
  python3 - "$dir/ci_srv_metrics.json" <<'PYEOF'
import json, sys
with open(sys.argv[1]) as f:
    m = json.load(f)
assert m["cache_misses"] >= 1, m
assert m["cache_hits"] >= 1, f"warm requests never hit the cache: {m}"
assert m["requests_rejected"] == 0, m
print(f"    metrics: cache_hits={m['cache_hits']} "
      f"cache_misses={m['cache_misses']} (warm path exercised)")
PYEOF

  "$fc" --daemon "$sock" shutdown >/dev/null
  wait "$fd_pid" || {
    echo "==> [$name] FAIL: fearlessd exited nonzero after shutdown" >&2
    exit 1
  }
  if [[ -e "$sock" ]]; then
    echo "==> [$name] FAIL: socket not removed by draining shutdown" >&2
    exit 1
  fi
  echo "    shutdown: drained, exit 0, socket removed"
}

# Generated-corpus smoke: tools/gen_corpus.py emits a deterministic
# multi-function program per (seed, shape); `analyze --json` must accept
# it in both modes, and the precision gate holds: the interprocedural
# must-* count is never below the intra count on any shape, and strictly
# above it on the shapes built around cross-call disconnect proofs
# (chain, cross) — the whole point of the summary engine.
run_corpus_smoke() {
  local name="$1" dir="$2"
  local fc="$dir/tools/fearlessc"
  for seed in 7 21 42; do
    for shape in chain diamond scc cross mixed; do
      local src="$dir/ci_corpus_${shape}_${seed}.fls"
      python3 "$ROOT/tools/gen_corpus.py" \
        --seed "$seed" --functions 60 --shape "$shape" --out "$src"
      echo "==> [$name] corpus smoke ($shape, seed $seed)"
      "$fc" analyze --json "$src" >"$src.inter.json"
      "$fc" analyze --json --interprocedural=off "$src" >"$src.intra.json"
      python3 - "$shape" "$src.inter.json" "$src.intra.json" <<'PYEOF'
import json, sys
shape = sys.argv[1]
def musts(path):
    with open(path) as f:
        doc = json.load(f)
    assert doc["schema"] == "fearless-analysis-v1", doc.get("schema")
    assert doc["checked"] and not doc["hard_error"], path
    v = doc["verdicts"]
    return v.get("must_disconnected", 0) + v.get("must_connected", 0)
inter, intra = musts(sys.argv[2]), musts(sys.argv[3])
assert inter >= intra, f"{shape}: inter {inter} < intra {intra}"
if shape in ("chain", "cross"):
    assert inter > intra, \
        f"{shape}: interprocedural won nothing ({inter} vs {intra})"
print(f"    must-* verdicts: interprocedural={inter} intra={intra}")
PYEOF
    done
  done
}

# Model-checker smoke: the erasure-soundness gate (docs/MODELCHECK.md).
# `fearlessc mc` explores the bounded schedule space of every checkable
# example and three generated corpus programs with the dynamic
# reservation checks ERASED (--mc-checks=off) while the §6 invariant
# validators machine-check every small step — zero violations expected
# in both modes (the per-run confluence check covers cross-schedule
# result agreement), and the program *results* must be identical with
# checks on and off (`run` vs `run --no-checks`; the mc step counts
# legitimately differ, since erasing check instructions changes VM
# batch boundaries). Then the seeded deadlock fixture must produce exit
# 7 plus a counterexample schedule that `run --schedule` replays to the
# same failure twice, byte for byte.
run_mc_smoke() {
  local name="$1" dir="$2"
  local fc="$dir/tools/fearlessc"
  echo "==> [$name] model-checker smoke (erasure-soundness gate)"
  local f base on_out off_out run_on run_off
  mc_gate() {
    local src="$1" label="$2"
    on_out="$("$fc" mc "$src" main --mc-depth 20000)"
    off_out="$("$fc" mc "$src" main --mc-depth 20000 --mc-checks=off)"
    if ! grep -q "no violations" <<<"$on_out" ||
       ! grep -q "no violations" <<<"$off_out"; then
      echo "==> [$name] FAIL: mc found a violation on $label:" \
           "'$on_out' / '$off_out'" >&2
      exit 1
    fi
    run_on="$("$fc" run "$src" main)"
    run_off="$("$fc" run "$src" main --no-checks)"
    if [[ "$run_on" != "$run_off" ]]; then
      echo "==> [$name] FAIL: result changed with checks erased on" \
           "$label: '$run_on' vs '$run_off'" >&2
      exit 1
    fi
    echo "    $label: $(head -1 <<<"$off_out" | sed 's/^mc: //')" \
         "(checks erased, results identical)"
  }
  for f in "$ROOT"/examples/*.fls; do
    base="$(basename "$f")"
    # Check-failure demonstration examples cannot be model-checked.
    "$fc" check "$f" >/dev/null 2>&1 || {
      echo "    $base: skipped (not checkable by design)"; continue; }
    mc_gate "$f" "$base"
  done
  for seed in 7 21 42; do
    local src="$dir/ci_mc_corpus_$seed.fls"
    python3 "$ROOT/tools/gen_corpus.py" \
      --seed "$seed" --functions 24 --shape mixed --out "$src"
    mc_gate "$src" "corpus seed $seed"
  done

  # The two-thread pipeline explores a genuinely branching space clean.
  "$fc" mc "$ROOT/examples/msg_pipeline.fls" consumer 2 \
    --spawn producer:2 >/dev/null
  echo "    msg_pipeline consumer/producer: branching space verified"

  # Seeded deadlock fixture: exit 7 + a deterministically replayable
  # counterexample schedule.
  local sched="$dir/ci_mc_deadlock.sched"
  expect_exit 7 "mc counterexample (deadlock fixture)" \
    "$fc" mc "$ROOT/examples/msg_pipeline.fls" consumer 1 \
    --mc-out "$sched"
  [[ -f "$sched" ]] || {
    echo "==> [$name] FAIL: mc did not write $sched" >&2; exit 1; }
  local r1_exit=0 r2_exit=0
  "$fc" run "$ROOT/examples/msg_pipeline.fls" consumer 1 \
    --schedule "$sched" >"$dir/ci_mc_r1.out" 2>&1 || r1_exit=$?
  "$fc" run "$ROOT/examples/msg_pipeline.fls" consumer 1 \
    --schedule "$sched" >"$dir/ci_mc_r2.out" 2>&1 || r2_exit=$?
  if [[ "$r1_exit" == 0 || "$r1_exit" != "$r2_exit" ]] ||
     ! cmp -s "$dir/ci_mc_r1.out" "$dir/ci_mc_r2.out"; then
    echo "==> [$name] FAIL: counterexample replay not deterministic" \
         "(exits $r1_exit/$r2_exit)" >&2
    exit 1
  fi
  echo "    deadlock fixture: exit 7, replay deterministic (exit $r1_exit twice)"
}

# Scheduler smoke: bench_scheduler's FEARLESS_SCHED_SMOKE hook runs the
# 100,000-language-thread token ring to completion on the fixed default
# worker pool and checks the ping-pong park/unpark path allocates nothing
# in steady state. Running it under the TSan pass as well stresses the
# work-stealing + parking protocol with real data-race detection at full
# acceptance scale.
run_sched_smoke() {
  local name="$1" dir="$2"
  echo "==> [$name] scheduler smoke (100k-task ring + allocs_per_iter=0)"
  FEARLESS_SCHED_SMOKE=100000 \
    "$dir/bench/bench_scheduler" --benchmark_filter=NONE 2>&1 |
    grep -v "Failed to match any benchmarks" |
    sed 's/^/    /'
}

# Chaos smoke: bench_concurrency's FEARLESS_FAULTS hook runs the E7
# pipeline under a seeded fault plan with supervision on, and fails if
# the run hangs (watchdog), crashes, or a recovered run diverges from
# the fault-free baseline. Fixed seeds keep failures reproducible.
run_chaos_smoke() {
  local name="$1" dir="$2"
  local spec
  for seed in 1 2 3 4 5 6 7 8; do
    # Odd seeds inject only start-time (restartable) faults, exercising
    # the recover-and-match-baseline path; even seeds add mid-run faults
    # that exercise escalation and clean abort.
    if ((seed % 2)); then
      spec="thread.start=prob:0.4,seed=$seed"
    else
      spec="thread.start=prob:0.3,sched.step=nth:$((seed * 9)),heap.alloc=prob:0.01,seed=$seed"
    fi
    echo "==> [$name] chaos smoke (seed $seed: $spec)"
    FEARLESS_FAULTS="$spec" \
      "$dir/bench/bench_concurrency" --benchmark_filter=NONE 2>&1 |
      sed 's/^/    /'
  done
}

CTEST_ARGS=("$@")

echo "==> [tools] bench_compare self-test"
python3 "$ROOT/tools/bench_compare.py" --self-test
echo "==> [tools] check_docs (doc drift gate)"
python3 "$ROOT/tools/check_docs.py" --self-test
python3 "$ROOT/tools/check_docs.py"

run_pass "default" "$ROOT/build"
run_analyze "default" "$ROOT/build"
run_trace_smoke "default" "$ROOT/build"
run_cli_smoke "default" "$ROOT/build"
run_vm_smoke "default" "$ROOT/build"
run_server_smoke "default" "$ROOT/build"
run_corpus_smoke "default" "$ROOT/build"
run_mc_smoke "default" "$ROOT/build"
run_sched_smoke "default" "$ROOT/build"
run_chaos_smoke "default" "$ROOT/build"
echo "==> [default] bench smoke"
"$ROOT/tools/bench.sh" --smoke -B "$ROOT/build"
run_pass "tsan" "$ROOT/build-tsan" -DFEARLESS_SANITIZE=thread
run_analyze "tsan" "$ROOT/build-tsan"
run_vm_smoke "tsan" "$ROOT/build-tsan"
run_server_smoke "tsan" "$ROOT/build-tsan"
run_sched_smoke "tsan" "$ROOT/build-tsan"
run_chaos_smoke "tsan" "$ROOT/build-tsan"

# ASan pass over the analysis front end: the summary engine and the
# corpus generator push the analyzer over thousands of functions;
# AddressSanitizer on the same corpus smoke catches lifetime bugs the
# default pass would miss. Only fearlessc is needed.
echo "==> [asan] configure + build (FEARLESS_SANITIZE=address)"
cmake -B "$ROOT/build-asan" -S "$ROOT" -DFEARLESS_SANITIZE=address >/dev/null
cmake --build "$ROOT/build-asan" -j "$JOBS" --target fearlessc
run_corpus_smoke "asan" "$ROOT/build-asan"

# Compile-out pass: the tracing layer must build with FEARLESS_TRACE=OFF
# (stub API) and the trace suite must still pass (it guards its
# event-presence expectations on FEARLESS_TRACING_ENABLED). The CLI must
# still emit a valid — empty — trace.
echo "==> [notrace] configure + build (FEARLESS_TRACE=OFF)"
cmake -B "$ROOT/build-notrace" -S "$ROOT" -DFEARLESS_TRACE=OFF >/dev/null
cmake --build "$ROOT/build-notrace" -j "$JOBS" \
  --target trace_test fearlessc
echo "==> [notrace] trace_test"
"$ROOT/build-notrace/tests/trace_test"
run_trace_smoke "notrace" "$ROOT/build-notrace"

echo "==> all passes green"
