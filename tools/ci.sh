#!/usr/bin/env bash
#===- tools/ci.sh ---------------------------------------------------------===#
#
# Part of the fearless-concurrency reproduction.
#
#===----------------------------------------------------------------------===#
#
# Local CI gate: a regular build + test pass (followed by a benchmark
# smoke run — every bench binary must execute to completion; no perf
# thresholds, that is tools/bench_compare.py's job), then the same test
# suite under ThreadSanitizer. The concurrent runtime (ParallelExec,
# ChannelSet) is the part of this repo most likely to rot silently — TSan
# keeps the "fearless" claim honest.
#
# Usage: tools/ci.sh [extra ctest args...]
#
#===----------------------------------------------------------------------===#

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"

run_pass() {
  local name="$1" dir="$2"
  shift 2
  echo "==> [$name] configure"
  cmake -B "$dir" -S "$ROOT" "$@" >/dev/null
  echo "==> [$name] build"
  cmake --build "$dir" -j "$JOBS"
  echo "==> [$name] test"
  (cd "$dir" && ctest --output-on-failure -j "$JOBS" "${CTEST_ARGS[@]}")
}

CTEST_ARGS=("$@")

run_pass "default" "$ROOT/build"
echo "==> [default] bench smoke"
"$ROOT/tools/bench.sh" --smoke -B "$ROOT/build"
run_pass "tsan" "$ROOT/build-tsan" -DFEARLESS_SANITIZE=thread

echo "==> all passes green"
