#!/usr/bin/env bash
#===- tools/bench.sh ------------------------------------------------------===#
#
# Part of the fearless-concurrency reproduction.
#
#===----------------------------------------------------------------------===#
#
# Reproducible benchmark baseline pipeline: builds the twelve bench_*
# binaries, runs each with --benchmark_out_format=json (counters included,
# e.g. the RuntimeMetrics counters exported by bench_concurrency, the
# allocs_per_iter / losing_side_visited counters of bench_ifdisconnected,
# the tracing-overhead counters of bench_trace, the tasks_spawned /
# steals / parks counters of bench_scheduler, the vm_instructions /
# ic_hits / checks_erased counters of bench_vm, the verdict-split
# counters of bench_analysis, and the p50_ns / p99_ns /
# warm_speedup_p50 / requests_rejected counters of bench_server, and
# the schedules_explored / pruning_ratio_vs_naive counters of
# bench_mc), and
# merges the
# per-binary JSON into one BENCH_*.json at the repo root. Compare two
# such files with tools/bench_compare.py.
#
# Usage: tools/bench.sh [options]
#   -B DIR        build directory                (default: <repo>/build)
#   -o FILE       merged output file             (default: <repo>/BENCH_pr10.json)
#   -t SECONDS    --benchmark_min_time per bench (default: 0.05)
#   -f REGEX      --benchmark_filter passed through
#   --smoke       CI smoke mode: min_time 0.01, output under the build
#                 dir, success = every binary runs to completion (no perf
#                 gating; regression thresholds are bench_compare.py's
#                 job, for local use)
#
# Note: the vendored google-benchmark predates duration-suffixed
# --benchmark_min_time values ("0.01s"), so plain seconds are passed.
#
#===----------------------------------------------------------------------===#

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"
BUILD="$ROOT/build"
OUT="$ROOT/BENCH_pr10.json"
MIN_TIME="0.05"
FILTER=""
SMOKE=0

while [[ $# -gt 0 ]]; do
  case "$1" in
    -B) BUILD="$2"; shift 2 ;;
    -o) OUT="$2"; shift 2 ;;
    -t) MIN_TIME="$2"; shift 2 ;;
    -f) FILTER="$2"; shift 2 ;;
    --smoke) SMOKE=1; shift ;;
    *) echo "bench.sh: unknown argument: $1" >&2; exit 2 ;;
  esac
done

if [[ "$SMOKE" -eq 1 ]]; then
  MIN_TIME="0.01"
  OUT="$BUILD/BENCH_smoke.json"
fi

BENCHES=(bench_table1 bench_checker bench_ifdisconnected bench_runtime
         bench_concurrency bench_trace bench_faults bench_scheduler
         bench_vm bench_analysis bench_server bench_mc)

echo "==> [bench] build (${BUILD})"
cmake -B "$BUILD" -S "$ROOT" >/dev/null
cmake --build "$BUILD" -j "$JOBS" --target "${BENCHES[@]}" >/dev/null

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

for bench in "${BENCHES[@]}"; do
  echo "==> [bench] $bench (min_time=${MIN_TIME}s)"
  args=("--benchmark_min_time=$MIN_TIME"
        "--benchmark_out=$TMP/$bench.json"
        "--benchmark_out_format=json")
  [[ -n "$FILTER" ]] && args+=("--benchmark_filter=$FILTER")
  # Some benches (bench_table1) print human-readable tables on stdout;
  # --benchmark_out keeps the JSON clean regardless.
  "$BUILD/bench/$bench" "${args[@]}" >/dev/null
done

REVISION="$(git -C "$ROOT" rev-parse --short HEAD 2>/dev/null || echo unknown)"

echo "==> [bench] merge -> $OUT"
python3 - "$TMP" "$OUT" "$REVISION" "$MIN_TIME" "${BENCHES[@]}" <<'PYEOF'
import json
import sys

tmp, out, revision, min_time, *benches = sys.argv[1:]
merged = {
    "schema": "fearless-bench-v1",
    "revision": revision,
    "min_time_seconds": float(min_time),
    "benches": {},
}
for bench in benches:
    with open(f"{tmp}/{bench}.json") as f:
        data = json.load(f)
    # Drop the noisy per-run context except the bits that affect
    # comparability; keep every benchmark entry (counters included).
    ctx = data.get("context", {})
    merged["benches"][bench] = {
        "context": {
            k: ctx[k]
            for k in ("num_cpus", "mhz_per_cpu", "library_build_type")
            if k in ctx
        },
        "benchmarks": data.get("benchmarks", []),
    }
with open(out, "w") as f:
    json.dump(merged, f, indent=1, sort_keys=True)
    f.write("\n")
total = sum(len(v["benchmarks"]) for v in merged["benches"].values())
print(f"    {total} benchmark entries from {len(benches)} binaries")
PYEOF

echo "==> [bench] done"
