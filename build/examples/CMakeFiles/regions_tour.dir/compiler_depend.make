# Empty compiler generated dependencies file for regions_tour.
# This may be replaced when dependencies are built.
