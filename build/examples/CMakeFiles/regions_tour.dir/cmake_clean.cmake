file(REMOVE_RECURSE
  "CMakeFiles/regions_tour.dir/regions_tour.cpp.o"
  "CMakeFiles/regions_tour.dir/regions_tour.cpp.o.d"
  "regions_tour"
  "regions_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regions_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
