# Empty compiler generated dependencies file for red_black_tree.
# This may be replaced when dependencies are built.
