file(REMOVE_RECURSE
  "CMakeFiles/red_black_tree.dir/red_black_tree.cpp.o"
  "CMakeFiles/red_black_tree.dir/red_black_tree.cpp.o.d"
  "red_black_tree"
  "red_black_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/red_black_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
