# Empty dependencies file for message_passing.
# This may be replaced when dependencies are built.
