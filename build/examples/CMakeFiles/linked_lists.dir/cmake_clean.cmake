file(REMOVE_RECURSE
  "CMakeFiles/linked_lists.dir/linked_lists.cpp.o"
  "CMakeFiles/linked_lists.dir/linked_lists.cpp.o.d"
  "linked_lists"
  "linked_lists.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linked_lists.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
