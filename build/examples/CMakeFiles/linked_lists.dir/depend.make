# Empty dependencies file for linked_lists.
# This may be replaced when dependencies are built.
