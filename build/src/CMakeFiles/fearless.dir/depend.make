# Empty dependencies file for fearless.
# This may be replaced when dependencies are built.
