file(REMOVE_RECURSE
  "libfearless.a"
)
