
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/Liveness.cpp" "src/CMakeFiles/fearless.dir/analysis/Liveness.cpp.o" "gcc" "src/CMakeFiles/fearless.dir/analysis/Liveness.cpp.o.d"
  "/root/repo/src/ast/Ast.cpp" "src/CMakeFiles/fearless.dir/ast/Ast.cpp.o" "gcc" "src/CMakeFiles/fearless.dir/ast/Ast.cpp.o.d"
  "/root/repo/src/ast/AstPrinter.cpp" "src/CMakeFiles/fearless.dir/ast/AstPrinter.cpp.o" "gcc" "src/CMakeFiles/fearless.dir/ast/AstPrinter.cpp.o.d"
  "/root/repo/src/ast/Types.cpp" "src/CMakeFiles/fearless.dir/ast/Types.cpp.o" "gcc" "src/CMakeFiles/fearless.dir/ast/Types.cpp.o.d"
  "/root/repo/src/baselines/AffineChecker.cpp" "src/CMakeFiles/fearless.dir/baselines/AffineChecker.cpp.o" "gcc" "src/CMakeFiles/fearless.dir/baselines/AffineChecker.cpp.o.d"
  "/root/repo/src/baselines/GlobalDomChecker.cpp" "src/CMakeFiles/fearless.dir/baselines/GlobalDomChecker.cpp.o" "gcc" "src/CMakeFiles/fearless.dir/baselines/GlobalDomChecker.cpp.o.d"
  "/root/repo/src/checker/Checker.cpp" "src/CMakeFiles/fearless.dir/checker/Checker.cpp.o" "gcc" "src/CMakeFiles/fearless.dir/checker/Checker.cpp.o.d"
  "/root/repo/src/checker/Derivation.cpp" "src/CMakeFiles/fearless.dir/checker/Derivation.cpp.o" "gcc" "src/CMakeFiles/fearless.dir/checker/Derivation.cpp.o.d"
  "/root/repo/src/checker/Framing.cpp" "src/CMakeFiles/fearless.dir/checker/Framing.cpp.o" "gcc" "src/CMakeFiles/fearless.dir/checker/Framing.cpp.o.d"
  "/root/repo/src/checker/Unify.cpp" "src/CMakeFiles/fearless.dir/checker/Unify.cpp.o" "gcc" "src/CMakeFiles/fearless.dir/checker/Unify.cpp.o.d"
  "/root/repo/src/checker/Virtual.cpp" "src/CMakeFiles/fearless.dir/checker/Virtual.cpp.o" "gcc" "src/CMakeFiles/fearless.dir/checker/Virtual.cpp.o.d"
  "/root/repo/src/concurrency/Channel.cpp" "src/CMakeFiles/fearless.dir/concurrency/Channel.cpp.o" "gcc" "src/CMakeFiles/fearless.dir/concurrency/Channel.cpp.o.d"
  "/root/repo/src/concurrency/ParallelExec.cpp" "src/CMakeFiles/fearless.dir/concurrency/ParallelExec.cpp.o" "gcc" "src/CMakeFiles/fearless.dir/concurrency/ParallelExec.cpp.o.d"
  "/root/repo/src/concurrency/Scheduler.cpp" "src/CMakeFiles/fearless.dir/concurrency/Scheduler.cpp.o" "gcc" "src/CMakeFiles/fearless.dir/concurrency/Scheduler.cpp.o.d"
  "/root/repo/src/driver/Driver.cpp" "src/CMakeFiles/fearless.dir/driver/Driver.cpp.o" "gcc" "src/CMakeFiles/fearless.dir/driver/Driver.cpp.o.d"
  "/root/repo/src/lexer/Lexer.cpp" "src/CMakeFiles/fearless.dir/lexer/Lexer.cpp.o" "gcc" "src/CMakeFiles/fearless.dir/lexer/Lexer.cpp.o.d"
  "/root/repo/src/parser/Parser.cpp" "src/CMakeFiles/fearless.dir/parser/Parser.cpp.o" "gcc" "src/CMakeFiles/fearless.dir/parser/Parser.cpp.o.d"
  "/root/repo/src/regions/Canonical.cpp" "src/CMakeFiles/fearless.dir/regions/Canonical.cpp.o" "gcc" "src/CMakeFiles/fearless.dir/regions/Canonical.cpp.o.d"
  "/root/repo/src/regions/Contexts.cpp" "src/CMakeFiles/fearless.dir/regions/Contexts.cpp.o" "gcc" "src/CMakeFiles/fearless.dir/regions/Contexts.cpp.o.d"
  "/root/repo/src/runtime/Disconnected.cpp" "src/CMakeFiles/fearless.dir/runtime/Disconnected.cpp.o" "gcc" "src/CMakeFiles/fearless.dir/runtime/Disconnected.cpp.o.d"
  "/root/repo/src/runtime/Heap.cpp" "src/CMakeFiles/fearless.dir/runtime/Heap.cpp.o" "gcc" "src/CMakeFiles/fearless.dir/runtime/Heap.cpp.o.d"
  "/root/repo/src/runtime/Interp.cpp" "src/CMakeFiles/fearless.dir/runtime/Interp.cpp.o" "gcc" "src/CMakeFiles/fearless.dir/runtime/Interp.cpp.o.d"
  "/root/repo/src/runtime/Invariants.cpp" "src/CMakeFiles/fearless.dir/runtime/Invariants.cpp.o" "gcc" "src/CMakeFiles/fearless.dir/runtime/Invariants.cpp.o.d"
  "/root/repo/src/runtime/Machine.cpp" "src/CMakeFiles/fearless.dir/runtime/Machine.cpp.o" "gcc" "src/CMakeFiles/fearless.dir/runtime/Machine.cpp.o.d"
  "/root/repo/src/runtime/Value.cpp" "src/CMakeFiles/fearless.dir/runtime/Value.cpp.o" "gcc" "src/CMakeFiles/fearless.dir/runtime/Value.cpp.o.d"
  "/root/repo/src/sema/Resolver.cpp" "src/CMakeFiles/fearless.dir/sema/Resolver.cpp.o" "gcc" "src/CMakeFiles/fearless.dir/sema/Resolver.cpp.o.d"
  "/root/repo/src/sema/Signature.cpp" "src/CMakeFiles/fearless.dir/sema/Signature.cpp.o" "gcc" "src/CMakeFiles/fearless.dir/sema/Signature.cpp.o.d"
  "/root/repo/src/sema/StructTable.cpp" "src/CMakeFiles/fearless.dir/sema/StructTable.cpp.o" "gcc" "src/CMakeFiles/fearless.dir/sema/StructTable.cpp.o.d"
  "/root/repo/src/support/Diagnostics.cpp" "src/CMakeFiles/fearless.dir/support/Diagnostics.cpp.o" "gcc" "src/CMakeFiles/fearless.dir/support/Diagnostics.cpp.o.d"
  "/root/repo/src/support/Interner.cpp" "src/CMakeFiles/fearless.dir/support/Interner.cpp.o" "gcc" "src/CMakeFiles/fearless.dir/support/Interner.cpp.o.d"
  "/root/repo/src/verifier/Verifier.cpp" "src/CMakeFiles/fearless.dir/verifier/Verifier.cpp.o" "gcc" "src/CMakeFiles/fearless.dir/verifier/Verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
