# Empty dependencies file for bench_ifdisconnected.
# This may be replaced when dependencies are built.
