file(REMOVE_RECURSE
  "CMakeFiles/bench_ifdisconnected.dir/bench_ifdisconnected.cpp.o"
  "CMakeFiles/bench_ifdisconnected.dir/bench_ifdisconnected.cpp.o.d"
  "bench_ifdisconnected"
  "bench_ifdisconnected.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ifdisconnected.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
