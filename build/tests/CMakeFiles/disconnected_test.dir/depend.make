# Empty dependencies file for disconnected_test.
# This may be replaced when dependencies are built.
