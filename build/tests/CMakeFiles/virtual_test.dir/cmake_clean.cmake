file(REMOVE_RECURSE
  "CMakeFiles/virtual_test.dir/virtual_test.cpp.o"
  "CMakeFiles/virtual_test.dir/virtual_test.cpp.o.d"
  "virtual_test"
  "virtual_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/virtual_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
