# Empty compiler generated dependencies file for fearlessc.
# This may be replaced when dependencies are built.
