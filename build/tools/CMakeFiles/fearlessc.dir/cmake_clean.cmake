file(REMOVE_RECURSE
  "CMakeFiles/fearlessc.dir/fearlessc.cpp.o"
  "CMakeFiles/fearlessc.dir/fearlessc.cpp.o.d"
  "fearlessc"
  "fearlessc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fearlessc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
