//===- runtime/Machine.cpp ------------------------------------------------===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//

#include "runtime/Machine.h"

#include "vm/Bytecode.h"

#include <cassert>
#include <functional>
#include <unordered_map>

using namespace fearless;

Machine::Machine(const CheckedProgram &Checked, MachineOptions Opts)
    : Checked(Checked), Opts(Opts), TheHeap(Checked.Structs) {}

ThreadId Machine::spawn(Symbol FnName, std::vector<Value> Args) {
  ThreadId T = createThread();
  startThread(T, FnName, std::move(Args));
  return T;
}

ThreadId Machine::createThread() {
  ThreadState T;
  T.Id = static_cast<ThreadId>(Threads.size());
  // Not started yet: treat as finished so run() ignores it if never
  // started.
  T.Status = ThreadStatus::Finished;
  Threads.push_back(std::move(T));
  return Threads.back().Id;
}

void Machine::startThread(ThreadId Id, Symbol FnName,
                          std::vector<Value> Args) {
  assert(Id < Threads.size() && "bad thread id");
  const FnDecl *Fn = Checked.Prog->findFunction(FnName);
  assert(Fn && "spawning an unknown function");
  assert(Args.size() == Fn->Params.size() && "spawn arity mismatch");
  ThreadState &T = Threads[Id];
  for (size_t I = 0; I < Args.size(); ++I)
    T.Env.emplace_back(Fn->Params[I].Name, Args[I]);
  T.ControlExpr = Fn->Body.get();
  T.HasValue = false;
  T.Status = ThreadStatus::Runnable;
}

Loc Machine::hostAlloc(ThreadId T, Symbol StructName) {
  assert(T < Threads.size() && "bad thread id");
  Loc L = TheHeap.allocate(StructName);
  assert(L.isValid() && "hostAlloc: unknown struct or heap exhausted");
  if (!L.isValid())
    return L;
  Threads[T].Reservation.insert(L.Index);
  ++Stats.Allocations;
  return L;
}

void Machine::hostSetField(Loc L, Symbol Field, Value V) {
  const Object &O = TheHeap.get(L);
  const FieldInfo *Info = O.Struct->findField(Field);
  assert(Info && "hostSetField: unknown field");
  TheHeap.setField(L, Info->Index, V);
}

Value Machine::hostGetField(Loc L, Symbol Field) const {
  const Object &O = TheHeap.get(L);
  const FieldInfo *Info = O.Struct->findField(Field);
  assert(Info && "hostGetField: unknown field");
  return TheHeap.getField(L, Info->Index);
}

bool Machine::valueMatchesType(const Value &V, const Type &Ty) const {
  switch (V.kind()) {
  case Value::Kind::Unit:
    return Ty.BaseKind == Type::Base::Unit;
  case Value::Kind::Int:
    return Ty.BaseKind == Type::Base::Int;
  case Value::Kind::Bool:
    return Ty.BaseKind == Type::Base::Bool;
  case Value::Kind::None:
    return Ty.isMaybe();
  case Value::Kind::Location:
    return Ty.isRegionful() &&
           TheHeap.get(V.asLoc()).Struct->Name == Ty.StructName;
  }
  return false;
}

bool Machine::tryCommunicate(std::string &Error) {
  for (ThreadState &Sender : Threads) {
    if (Sender.Status != ThreadStatus::BlockedSend)
      continue;
    for (ThreadState &Receiver : Threads) {
      if (Receiver.Status != ThreadStatus::BlockedRecv)
        continue;
      // send-τ pairs with recv-τ: exact static type match, with a
      // defensive runtime-compatibility check.
      if (!(Sender.CommType == Receiver.CommType))
        continue;
      if (Sender.PendingSend.isLoc() &&
          !valueMatchesType(Sender.PendingSend, Receiver.CommType)) {
        Error = "send/recv type confusion at runtime (checker bug)";
        return false;
      }

      // EC3: transfer the live-set of the chosen root from the sender's
      // reservation to the receiver's.
      Value Sent = Sender.PendingSend;
      if (Sent.isLoc()) {
        TheHeap.liveSetInto(Sent.asLoc(), LiveBuf, LiveSeen);
        if (Opts.CheckReservations) {
          for (Loc L : LiveBuf)
            if (!Sender.Reservation.count(L.Index)) {
              Error = "send: live-set of " + toString(Sent) +
                      " is not contained in the sender's reservation "
                      "(reservation violation in thread " +
                      std::to_string(Sender.Id) + ")";
              return false;
            }
        }
        // Incremental reservation handoff: the dense tables stay exact
        // without any rebuild — membership flips per transferred object.
        for (Loc L : LiveBuf) {
          Sender.Reservation.erase(L.Index);
          Receiver.Reservation.insert(L.Index);
        }
      }
      ++Stats.Sends;
      ++Stats.Recvs; // pairing delivers both halves at once

      // Tracing: close the block→wake wait span on both sides and mark
      // the transfer itself (live-set size = objects handed over).
      if (Sender.Trace) {
        Sender.Trace->record("send.wait", "channel",
                             'X', Sender.TraceBlockStartNs,
                             Sender.Trace->now() - Sender.TraceBlockStartNs,
                             "live_set",
                             Sent.isLoc() ? LiveBuf.size() : 0);
        Sender.Trace->instant("send.transfer", "channel", "live_set",
                              Sent.isLoc() ? LiveBuf.size() : 0);
      }
      if (Receiver.Trace)
        Receiver.Trace->record(
            "recv.wait", "channel", 'X', Receiver.TraceBlockStartNs,
            Receiver.Trace->now() - Receiver.TraceBlockStartNs);

      // Sender resumes with unit; receiver resumes with the root.
      Sender.ControlValue = Value::unitVal();
      Sender.HasValue = true;
      Sender.PendingSend = Value();
      Sender.Status = ThreadStatus::Runnable;
      Receiver.ControlValue = Sent;
      Receiver.HasValue = true;
      Receiver.Status = ThreadStatus::Runnable;
      return true;
    }
  }
  return false;
}

RuntimeMetrics Machine::metrics() const {
  RuntimeMetrics M;
  M.mergeThread(Stats);
  M.FaultsInjected = Opts.Faults ? Opts.Faults->totalFired() : 0;
  M.ThreadsSpawned = Threads.size();
  for (const ThreadState &T : Threads) {
    if (T.Status == ThreadStatus::Finished)
      ++M.ThreadsFinished;
    else if (T.Status == ThreadStatus::Failed)
      ++M.ThreadsErrored;
  }
  M.HeapObjects = TheHeap.size();
  if (Opts.VmCode)
    M.ChecksErased = Opts.VmCode->ChecksErased;
  return M;
}

bool Machine::communicate(std::string &Error) {
  // EC3 pairing walks the heap (live-set transfer), so it can trap on an
  // invalid location just like a step; catch at the same frontier and
  // surface the typed fault instead of dying.
  try {
    return tryCommunicate(Error);
  } catch (const RuntimeFaultError &E) {
    LastFault = E.Fault;
    Error = E.Fault.render();
    return false;
  }
}

ExpectedVoid Machine::beginStepping() {
  LastFault.reset();
  Stepping.emplace();
  SteppingState &S = *Stepping;

  // Tracing: one buffer per language thread (tid = thread id + 1; the
  // machine itself is tid 0). The machine is single-OS-threaded, so the
  // single-writer rule holds trivially for every buffer.
  if (Opts.Trace) {
    S.TraceCtl = &Opts.Trace->registerThread(0, "machine");
    for (ThreadState &T : Threads)
      if (!T.Trace)
        T.Trace = &Opts.Trace->registerThread(T.Id + 1, "lang-thread");
  }
  S.TraceRunStart = S.TraceCtl ? S.TraceCtl->now() : 0;

  S.Services.TheHeap = &TheHeap;
  S.Services.Prog = Checked.Prog;
  S.Services.Stats = &Stats;
  S.Services.SendTypes = &Checked.SendTypes;
  S.Services.CheckReservations = Opts.CheckReservations;
  S.Services.UseNaiveDisconnect = Opts.UseNaiveDisconnect;
  S.Services.StaticVerdicts = Opts.StaticVerdicts;
  S.Services.ElideDisconnect = Opts.ElideDisconnect;
  S.Services.CrossCheckElision = Opts.CrossCheckElision;
  S.Services.Faults = Opts.Faults;
  S.Services.VmCode = Opts.VmCode;

  // Fault points the interpreter cannot see: thread.start fires once per
  // started thread (before its first step), sched.step per scheduler
  // pulse in stepChosen. The machine has no supervision — an injected
  // fault here fails the run with a typed diagnostic (exit-code 5 on the
  // CLI).
  if (Opts.Faults) {
    for (ThreadState &T : Threads) {
      if (T.Status == ThreadStatus::Finished)
        continue;
      if (Opts.Faults->shouldFire(FaultPoint::ThreadStart)) {
        RuntimeFault F;
        F.Kind = RuntimeFaultKind::Injected;
        F.Detail = static_cast<uint32_t>(FaultPoint::ThreadStart);
        F.Thread = T.Id;
        LastFault = F;
        return fail(F.render());
      }
    }
  }
  return {};
}

Expected<MachineProgress> Machine::checkProgress() {
  assert(Stepping && "checkProgress outside a stepping session");
  SteppingState &S = *Stepping;
  while (true) {
    S.Runnable.clear();
    bool AllFinished = true;
    for (size_t I = 0; I < Threads.size(); ++I) {
      if (Threads[I].Status == ThreadStatus::Runnable)
        S.Runnable.push_back(I);
      if (Threads[I].Status != ThreadStatus::Finished)
        AllFinished = false;
    }
    if (AllFinished)
      return MachineProgress::Done;
    if (!S.Runnable.empty())
      return MachineProgress::Running;
    // No runnable thread: try pairing communication (defensive — pairing
    // is eager after every blocking step); otherwise deadlock.
    std::string Error;
    if (communicate(Error))
      continue;
    if (!Error.empty())
      return fail(Error);
    return MachineProgress::Deadlock;
  }
}

const std::vector<size_t> &Machine::runnableThreads() const {
  assert(Stepping && "runnableThreads outside a stepping session");
  return Stepping->Runnable;
}

Expected<McStepRecord> Machine::stepChosen(size_t Pick) {
  assert(Stepping && "stepChosen outside a stepping session");
  SteppingState &S = *Stepping;
  assert(Pick < Threads.size() && "bad thread index");
  ThreadState &T = Threads[Pick];
  assert(T.Status == ThreadStatus::Runnable &&
         "stepping a non-runnable thread");

  McStepRecord Rec;
  Rec.Thread = T.Id;
  uint64_t FaultOcc[NumFaultPoints] = {};
  if (Opts.Faults)
    for (size_t I = 0; I < NumFaultPoints; ++I)
      FaultOcc[I] = Opts.Faults->occurrences(static_cast<FaultPoint>(I));
  auto StampFaults = [&] {
    if (!Opts.Faults)
      return;
    for (size_t I = 0; I < NumFaultPoints; ++I)
      if (Opts.Faults->occurrences(static_cast<FaultPoint>(I)) !=
          FaultOcc[I])
        Rec.FaultPointsTouched |= 1u << I;
  };

  if (Opts.Faults && Opts.Faults->shouldFire(FaultPoint::SchedStep)) {
    RuntimeFault F;
    F.Kind = RuntimeFaultKind::Injected;
    F.Detail = static_cast<uint32_t>(FaultPoint::SchedStep);
    F.Thread = T.Id;
    LastFault = F;
    return fail(F.render());
  }
  StepOutcome Out = stepThread(T, S.Services);
  ++S.Steps;
  if (Opts.StepValidator) {
    if (auto Problem = Opts.StepValidator(*this))
      return fail("step validator failed after step " +
                  std::to_string(S.Steps) + ": " + *Problem);
  }
  if (S.Steps > Opts.MaxSteps)
    return fail("machine exceeded the step limit");
  switch (Out) {
  case StepOutcome::Progress:
    Rec.StepKind = McStepRecord::Kind::Local;
    break;
  case StepOutcome::Finished:
    Rec.StepKind = McStepRecord::Kind::Finish;
    break;
  case StepOutcome::BlockedSend:
  case StepOutcome::BlockedRecv: {
    Rec.StepKind = Out == StepOutcome::BlockedSend
                       ? McStepRecord::Kind::BlockSend
                       : McStepRecord::Kind::BlockRecv;
    Rec.HasCommType = true;
    Rec.CommType = T.CommType;
    // Eager pairing. Any pre-existing send/recv pair would already have
    // been paired, so a successful pairing here involves T; the partner
    // is the other thread that went blocked → runnable.
    S.StatusScratch.clear();
    for (const ThreadState &X : Threads)
      S.StatusScratch.push_back(X.Status);
    std::string Error;
    if (communicate(Error)) {
      Rec.StepKind = McStepRecord::Kind::CommPair;
      for (size_t I = 0; I < Threads.size(); ++I)
        if (I != Pick && S.StatusScratch[I] != Threads[I].Status &&
            Threads[I].Status == ThreadStatus::Runnable)
          Rec.Partner = Threads[I].Id;
    }
    if (!Error.empty()) {
      StampFaults();
      return fail(Error);
    }
    break;
  }
  case StepOutcome::Stuck:
    if (T.Fault)
      LastFault = T.Fault;
    StampFaults();
    return fail("thread " + std::to_string(T.Id) + " is stuck: " +
                T.Error);
  }
  StampFaults();
  return Rec;
}

Expected<MachineSummary> Machine::finishStepping() {
  assert(Stepping && "finishStepping outside a stepping session");
  SteppingState &S = *Stepping;
  MachineSummary Summary;
  Summary.Steps = S.Steps;
  for (const ThreadState &T : Threads)
    Summary.ThreadResults.push_back(T.Result);
  Stats.Steps = S.Steps;
  if (S.TraceCtl)
    S.TraceCtl->record("machine.run", "machine", 'X', S.TraceRunStart,
                       S.TraceCtl->now() - S.TraceRunStart, "steps",
                       S.Steps);
  Stepping.reset();
  return Summary;
}

std::string Machine::deadlockMessage() const {
  return "deadlock: all unfinished threads are blocked on send/recv "
         "with no matching partner\n" +
         blockedStateDump();
}

std::string Machine::blockedStateDump() const {
  const Interner &Names = Checked.Prog->Names;
  std::string Out;
  for (const ThreadState &T : Threads) {
    if (T.Status == ThreadStatus::Finished)
      continue;
    Out += "  thread " + std::to_string(T.Id) + ": ";
    switch (T.Status) {
    case ThreadStatus::Runnable:
      Out += "runnable";
      break;
    case ThreadStatus::BlockedSend:
      Out += "blocked in send(" + toString(T.CommType, Names) +
             ", payload " + toString(T.PendingSend);
      if (T.PendingSend.isLoc())
        Out += ", live-set " +
               std::to_string(TheHeap.liveSet(T.PendingSend.asLoc())
                                  .size()) +
               " objects";
      Out += ")";
      break;
    case ThreadStatus::BlockedRecv:
      Out += "blocked in recv<" + toString(T.CommType, Names) + ">";
      break;
    case ThreadStatus::Failed:
      Out += "failed: " + T.Error;
      break;
    case ThreadStatus::Finished:
      break;
    }
    Out += " (reservation: " + std::to_string(T.Reservation.size()) +
           " objects)\n";
  }
  if (!Out.empty())
    Out.pop_back();
  return Out;
}

uint64_t Machine::resultFingerprint() const {
  uint64_t H = 1469598103934665603ull; // FNV-1a
  auto Mix = [&H](uint64_t V) {
    H ^= V;
    H *= 1099511628211ull;
  };
  // Canonical location renaming: locations are numbered in DFS visit
  // order from the thread results, so allocation order — which varies
  // across schedules — cannot leak into the fingerprint.
  std::unordered_map<uint32_t, uint32_t> Canon;
  std::function<void(const Value &)> Visit = [&](const Value &V) {
    switch (V.kind()) {
    case Value::Kind::Unit:
      Mix(1);
      return;
    case Value::Kind::None:
      Mix(2);
      return;
    case Value::Kind::Bool:
      Mix(3);
      Mix(V.asBool() ? 1 : 0);
      return;
    case Value::Kind::Int:
      Mix(4);
      Mix(static_cast<uint64_t>(V.asInt()));
      return;
    case Value::Kind::Location: {
      Loc L = V.asLoc();
      auto [It, Fresh] = Canon.emplace(
          L.Index, static_cast<uint32_t>(Canon.size()));
      Mix(5);
      Mix(It->second);
      if (!Fresh)
        return; // back-edge (cycles): the canonical id suffices
      const Object &O = TheHeap.get(L);
      Mix(O.Struct->Name.Id);
      Mix(O.Fields.size());
      for (const Value &F : O.Fields)
        Visit(F);
      return;
    }
    }
  };
  for (const ThreadState &T : Threads) {
    Mix(static_cast<uint64_t>(T.Status));
    Visit(T.Result);
  }
  return H;
}

Expected<MachineSummary> Machine::run(uint64_t Seed) {
  if (ExpectedVoid B = beginStepping(); !B)
    return B.takeFailure();

  uint64_t Rng = Seed ? Seed : 0;
  auto NextRandom = [&Rng]() {
    Rng ^= Rng << 13;
    Rng ^= Rng >> 7;
    Rng ^= Rng << 17;
    return Rng;
  };
  size_t RoundRobin = 0;

  while (true) {
    Expected<MachineProgress> P = checkProgress();
    if (!P)
      return P.takeFailure();
    if (*P == MachineProgress::Done)
      break;
    if (*P == MachineProgress::Deadlock)
      return fail(deadlockMessage());
    const std::vector<size_t> &Runnable = runnableThreads();
    size_t Pick = Seed ? Runnable[NextRandom() % Runnable.size()]
                       : Runnable[RoundRobin++ % Runnable.size()];
    if (Expected<McStepRecord> R = stepChosen(Pick); !R)
      return R.takeFailure();
  }
  return finishStepping();
}
