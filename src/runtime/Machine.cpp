//===- runtime/Machine.cpp ------------------------------------------------===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//

#include "runtime/Machine.h"

#include "vm/Bytecode.h"

#include <cassert>

using namespace fearless;

Machine::Machine(const CheckedProgram &Checked, MachineOptions Opts)
    : Checked(Checked), Opts(Opts), TheHeap(Checked.Structs) {}

ThreadId Machine::spawn(Symbol FnName, std::vector<Value> Args) {
  ThreadId T = createThread();
  startThread(T, FnName, std::move(Args));
  return T;
}

ThreadId Machine::createThread() {
  ThreadState T;
  T.Id = static_cast<ThreadId>(Threads.size());
  // Not started yet: treat as finished so run() ignores it if never
  // started.
  T.Status = ThreadStatus::Finished;
  Threads.push_back(std::move(T));
  return Threads.back().Id;
}

void Machine::startThread(ThreadId Id, Symbol FnName,
                          std::vector<Value> Args) {
  assert(Id < Threads.size() && "bad thread id");
  const FnDecl *Fn = Checked.Prog->findFunction(FnName);
  assert(Fn && "spawning an unknown function");
  assert(Args.size() == Fn->Params.size() && "spawn arity mismatch");
  ThreadState &T = Threads[Id];
  for (size_t I = 0; I < Args.size(); ++I)
    T.Env.emplace_back(Fn->Params[I].Name, Args[I]);
  T.ControlExpr = Fn->Body.get();
  T.HasValue = false;
  T.Status = ThreadStatus::Runnable;
}

Loc Machine::hostAlloc(ThreadId T, Symbol StructName) {
  assert(T < Threads.size() && "bad thread id");
  Loc L = TheHeap.allocate(StructName);
  assert(L.isValid() && "hostAlloc: unknown struct or heap exhausted");
  if (!L.isValid())
    return L;
  Threads[T].Reservation.insert(L.Index);
  ++Stats.Allocations;
  return L;
}

void Machine::hostSetField(Loc L, Symbol Field, Value V) {
  const Object &O = TheHeap.get(L);
  const FieldInfo *Info = O.Struct->findField(Field);
  assert(Info && "hostSetField: unknown field");
  TheHeap.setField(L, Info->Index, V);
}

Value Machine::hostGetField(Loc L, Symbol Field) const {
  const Object &O = TheHeap.get(L);
  const FieldInfo *Info = O.Struct->findField(Field);
  assert(Info && "hostGetField: unknown field");
  return TheHeap.getField(L, Info->Index);
}

bool Machine::valueMatchesType(const Value &V, const Type &Ty) const {
  switch (V.kind()) {
  case Value::Kind::Unit:
    return Ty.BaseKind == Type::Base::Unit;
  case Value::Kind::Int:
    return Ty.BaseKind == Type::Base::Int;
  case Value::Kind::Bool:
    return Ty.BaseKind == Type::Base::Bool;
  case Value::Kind::None:
    return Ty.isMaybe();
  case Value::Kind::Location:
    return Ty.isRegionful() &&
           TheHeap.get(V.asLoc()).Struct->Name == Ty.StructName;
  }
  return false;
}

bool Machine::tryCommunicate(std::string &Error) {
  for (ThreadState &Sender : Threads) {
    if (Sender.Status != ThreadStatus::BlockedSend)
      continue;
    for (ThreadState &Receiver : Threads) {
      if (Receiver.Status != ThreadStatus::BlockedRecv)
        continue;
      // send-τ pairs with recv-τ: exact static type match, with a
      // defensive runtime-compatibility check.
      if (!(Sender.CommType == Receiver.CommType))
        continue;
      if (Sender.PendingSend.isLoc() &&
          !valueMatchesType(Sender.PendingSend, Receiver.CommType)) {
        Error = "send/recv type confusion at runtime (checker bug)";
        return false;
      }

      // EC3: transfer the live-set of the chosen root from the sender's
      // reservation to the receiver's.
      Value Sent = Sender.PendingSend;
      if (Sent.isLoc()) {
        TheHeap.liveSetInto(Sent.asLoc(), LiveBuf, LiveSeen);
        if (Opts.CheckReservations) {
          for (Loc L : LiveBuf)
            if (!Sender.Reservation.count(L.Index)) {
              Error = "send: live-set of " + toString(Sent) +
                      " is not contained in the sender's reservation "
                      "(reservation violation in thread " +
                      std::to_string(Sender.Id) + ")";
              return false;
            }
        }
        // Incremental reservation handoff: the dense tables stay exact
        // without any rebuild — membership flips per transferred object.
        for (Loc L : LiveBuf) {
          Sender.Reservation.erase(L.Index);
          Receiver.Reservation.insert(L.Index);
        }
      }
      ++Stats.Sends;
      ++Stats.Recvs; // pairing delivers both halves at once

      // Tracing: close the block→wake wait span on both sides and mark
      // the transfer itself (live-set size = objects handed over).
      if (Sender.Trace) {
        Sender.Trace->record("send.wait", "channel",
                             'X', Sender.TraceBlockStartNs,
                             Sender.Trace->now() - Sender.TraceBlockStartNs,
                             "live_set",
                             Sent.isLoc() ? LiveBuf.size() : 0);
        Sender.Trace->instant("send.transfer", "channel", "live_set",
                              Sent.isLoc() ? LiveBuf.size() : 0);
      }
      if (Receiver.Trace)
        Receiver.Trace->record(
            "recv.wait", "channel", 'X', Receiver.TraceBlockStartNs,
            Receiver.Trace->now() - Receiver.TraceBlockStartNs);

      // Sender resumes with unit; receiver resumes with the root.
      Sender.ControlValue = Value::unitVal();
      Sender.HasValue = true;
      Sender.PendingSend = Value();
      Sender.Status = ThreadStatus::Runnable;
      Receiver.ControlValue = Sent;
      Receiver.HasValue = true;
      Receiver.Status = ThreadStatus::Runnable;
      return true;
    }
  }
  return false;
}

RuntimeMetrics Machine::metrics() const {
  RuntimeMetrics M;
  M.mergeThread(Stats);
  M.FaultsInjected = Opts.Faults ? Opts.Faults->totalFired() : 0;
  M.ThreadsSpawned = Threads.size();
  for (const ThreadState &T : Threads) {
    if (T.Status == ThreadStatus::Finished)
      ++M.ThreadsFinished;
    else if (T.Status == ThreadStatus::Failed)
      ++M.ThreadsErrored;
  }
  M.HeapObjects = TheHeap.size();
  if (Opts.VmCode)
    M.ChecksErased = Opts.VmCode->ChecksErased;
  return M;
}

Expected<MachineSummary> Machine::run(uint64_t Seed) {
  LastFault.reset();
  // Tracing: one buffer per language thread (tid = thread id + 1; the
  // machine itself is tid 0). The machine is single-OS-threaded, so the
  // single-writer rule holds trivially for every buffer.
  TraceBuffer *TraceCtl = nullptr;
  if (Opts.Trace) {
    TraceCtl = &Opts.Trace->registerThread(0, "machine");
    for (ThreadState &T : Threads)
      if (!T.Trace)
        T.Trace = &Opts.Trace->registerThread(T.Id + 1, "lang-thread");
  }
  uint64_t TraceRunStart = TraceCtl ? TraceCtl->now() : 0;

  InterpServices Services;
  Services.TheHeap = &TheHeap;
  Services.Prog = Checked.Prog;
  Services.Stats = &Stats;
  Services.SendTypes = &Checked.SendTypes;
  Services.CheckReservations = Opts.CheckReservations;
  Services.UseNaiveDisconnect = Opts.UseNaiveDisconnect;
  Services.StaticVerdicts = Opts.StaticVerdicts;
  Services.ElideDisconnect = Opts.ElideDisconnect;
  Services.CrossCheckElision = Opts.CrossCheckElision;
  Services.Faults = Opts.Faults;
  Services.VmCode = Opts.VmCode;

  // Fault points the interpreter cannot see: thread.start fires once per
  // started thread (before its first step), sched.step per scheduler
  // pulse below. The machine has no supervision — an injected fault here
  // fails the run with a typed diagnostic (exit-code 5 on the CLI).
  if (Opts.Faults) {
    for (ThreadState &T : Threads) {
      if (T.Status == ThreadStatus::Finished)
        continue;
      if (Opts.Faults->shouldFire(FaultPoint::ThreadStart)) {
        RuntimeFault F;
        F.Kind = RuntimeFaultKind::Injected;
        F.Detail = static_cast<uint32_t>(FaultPoint::ThreadStart);
        F.Thread = T.Id;
        LastFault = F;
        return fail(F.render());
      }
    }
  }

  uint64_t Rng = Seed ? Seed : 0;
  auto NextRandom = [&Rng]() {
    Rng ^= Rng << 13;
    Rng ^= Rng >> 7;
    Rng ^= Rng << 17;
    return Rng;
  };

  uint64_t Steps = 0;
  size_t RoundRobin = 0;
  std::vector<size_t> Runnable; // hoisted: reused across scheduler turns

  // EC3 pairing walks the heap (live-set transfer), so it can trap on an
  // invalid location just like a step; catch at the same frontier and
  // surface the typed fault instead of dying.
  auto Communicate = [&](std::string &Error) {
    try {
      return tryCommunicate(Error);
    } catch (const RuntimeFaultError &E) {
      LastFault = E.Fault;
      Error = E.Fault.render();
      return false;
    }
  };

  while (true) {
    // Collect runnable threads.
    Runnable.clear();
    bool AllFinished = true;
    for (size_t I = 0; I < Threads.size(); ++I) {
      if (Threads[I].Status == ThreadStatus::Runnable)
        Runnable.push_back(I);
      if (Threads[I].Status != ThreadStatus::Finished)
        AllFinished = false;
    }
    if (AllFinished)
      break;
    if (Runnable.empty()) {
      // Try pairing communication; otherwise deadlock.
      std::string Error;
      if (Communicate(Error))
        continue;
      if (!Error.empty())
        return fail(Error);
      return fail("deadlock: all unfinished threads are blocked on "
                  "send/recv with no matching partner");
    }

    size_t Pick = Seed ? Runnable[NextRandom() % Runnable.size()]
                       : Runnable[RoundRobin++ % Runnable.size()];
    ThreadState &T = Threads[Pick];
    if (Opts.Faults && Opts.Faults->shouldFire(FaultPoint::SchedStep)) {
      RuntimeFault F;
      F.Kind = RuntimeFaultKind::Injected;
      F.Detail = static_cast<uint32_t>(FaultPoint::SchedStep);
      F.Thread = T.Id;
      LastFault = F;
      return fail(F.render());
    }
    StepOutcome Out = stepThread(T, Services);
    ++Steps;
    if (Opts.StepValidator) {
      if (auto Problem = Opts.StepValidator(*this))
        return fail("step validator failed after step " +
                    std::to_string(Steps) + ": " + *Problem);
    }
    if (Steps > Opts.MaxSteps)
      return fail("machine exceeded the step limit");
    switch (Out) {
    case StepOutcome::Progress:
    case StepOutcome::Finished:
      break;
    case StepOutcome::BlockedSend:
    case StepOutcome::BlockedRecv: {
      std::string Error;
      (void)Communicate(Error);
      if (!Error.empty())
        return fail(Error);
      break;
    }
    case StepOutcome::Stuck:
      if (T.Fault)
        LastFault = T.Fault;
      return fail("thread " + std::to_string(T.Id) + " is stuck: " +
                  T.Error);
    }
  }

  MachineSummary Summary;
  Summary.Steps = Steps;
  for (const ThreadState &T : Threads)
    Summary.ThreadResults.push_back(T.Result);
  Stats.Steps = Steps;
  if (TraceCtl)
    TraceCtl->record("machine.run", "machine", 'X', TraceRunStart,
                     TraceCtl->now() - TraceRunStart, "steps", Steps);
  return Summary;
}
