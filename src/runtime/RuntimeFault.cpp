//===- runtime/RuntimeFault.cpp -------------------------------------------===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//

#include "runtime/RuntimeFault.h"

#include "support/FaultInjector.h"

#include <cstdio>
#include <cstdlib>

using namespace fearless;

const char *fearless::toString(RuntimeFaultKind K) {
  switch (K) {
  case RuntimeFaultKind::InvalidHeapAccess:
    return "invalid heap access";
  case RuntimeFaultKind::InvalidFieldAccess:
    return "invalid field access";
  case RuntimeFaultKind::HeapExhausted:
    return "heap exhausted";
  case RuntimeFaultKind::Injected:
    return "injected fault";
  }
  return "unknown fault";
}

std::string RuntimeFault::render() const {
  std::string Out = "runtime fault: ";
  Out += toString(Kind);
  switch (Kind) {
  case RuntimeFaultKind::InvalidHeapAccess:
    Out += Location.isValid()
               ? " at loc#" + std::to_string(Location.Index)
               : " through an invalid location";
    break;
  case RuntimeFaultKind::InvalidFieldAccess:
    Out += " at loc#" + std::to_string(Location.Index) + " field #" +
           std::to_string(Detail);
    break;
  case RuntimeFaultKind::HeapExhausted:
    break;
  case RuntimeFaultKind::Injected:
    if (Detail < NumFaultPoints)
      Out += std::string(" at ") +
             faultPointName(static_cast<FaultPoint>(Detail));
    break;
  }
  if (Thread != UINT32_MAX)
    Out += " (thread " + std::to_string(Thread) + ")";
  return Out;
}

void fearless::raiseRuntimeFault(const RuntimeFault &F) {
#ifdef NDEBUG
  throw RuntimeFaultError{F};
#else
  // Debug builds keep the loud abort: a memory-safety trap under a
  // debugger is worth more with its stack intact than unwound.
  std::fprintf(stderr, "fearless runtime: %s; aborting (debug build)\n",
               F.render().c_str());
  std::abort();
#endif
}

void fearless::raiseInjectedFault(const RuntimeFault &F) {
  throw RuntimeFaultError{F};
}
