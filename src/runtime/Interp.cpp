//===- runtime/Interp.cpp -------------------------------------------------===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//

#include "runtime/Interp.h"

#include "runtime/Disconnected.h"
#include "vm/Vm.h"

#include <cassert>

using namespace fearless;

namespace {

/// One step's worth of work over a thread configuration.
class Stepper {
public:
  Stepper(ThreadState &T, const InterpServices &S) : T(T), S(S) {}

  StepOutcome step() {
    ++S.Stats->Steps;
    // Tracing: a per-thread progress tick every 4096 steps. Per-step
    // events would dominate the trace (and the run); the tick keeps each
    // language thread's interpreter progress visible in Perfetto at
    // ~0.02% of the event rate.
    if (T.Trace && (++T.TraceSteps & 4095) == 0)
      T.Trace->instant("interp.steps", "interp", "steps", T.TraceSteps);
    if (T.HasValue)
      return applyFrame();
    return evalExpr();
  }

private:
  //===--------------------------------------------------------------------===
  // Helpers
  //===--------------------------------------------------------------------===

  StepOutcome stuck(std::string Why) {
    T.Error = std::move(Why);
    T.Status = ThreadStatus::Failed;
    return StepOutcome::Stuck;
  }

  /// Throws an injected fault for point \p P; stepThread's trap handler
  /// converts it into a Stuck outcome with T.Fault set. Call sites guard
  /// on S.Faults themselves so the disabled cost stays one branch.
  [[noreturn]] void injectFault(FaultPoint P) {
    RuntimeFault F;
    F.Kind = RuntimeFaultKind::Injected;
    F.Detail = static_cast<uint32_t>(P);
    F.Thread = T.Id;
    raiseInjectedFault(F);
  }

  /// The dynamic reservation check of the E-rules.
  bool inReservation(Loc L) {
    if (!S.CheckReservations)
      return true;
    ++S.Stats->ReservationChecks;
    return T.Reservation.count(L.Index) != 0;
  }

  /// Checks a value about to flow from a variable or field (E2/E5a).
  StepOutcome checkValue(const Value &V, const char *What) {
    if (V.isLoc() && !inReservation(V.asLoc()))
      return stuck(std::string("reservation violation: ") + What +
                   " yielded " + toString(V) +
                   " outside this thread's reservation");
    return StepOutcome::Progress;
  }

  std::pair<Symbol, Value> *findSlot(Symbol Name) {
    size_t Base = T.FrameBases.back();
    for (size_t I = T.Env.size(); I-- > Base;)
      if (T.Env[I].first == Name)
        return &T.Env[I];
    return nullptr;
  }

  void produce(Value V) {
    T.HasValue = true;
    T.ControlValue = V;
    T.ControlExpr = nullptr;
  }

  void evaluate(const Expr *E) {
    T.HasValue = false;
    T.ControlExpr = E;
  }

  const FieldInfo *fieldOf(Loc Base, Symbol Field) {
    const Object &O = S.TheHeap->get(Base);
    return O.Struct->findField(Field);
  }

  Loc allocateDefault(Symbol StructName) {
    if (S.Faults && S.Faults->shouldFire(FaultPoint::HeapAlloc))
      injectFault(FaultPoint::HeapAlloc);
    Loc L = S.TheHeap->allocate(StructName);
    if (!L.isValid())
      return L; // heap exhausted; the caller reports
    ++S.Stats->Allocations;
    T.Reservation.insert(L.Index);
    return L;
  }

  StepOutcome heapExhausted() {
    RuntimeFault F;
    F.Kind = RuntimeFaultKind::HeapExhausted;
    F.Thread = T.Id;
    T.Fault = F;
    return stuck("heap exhausted: allocation failed at " +
                 std::to_string(S.TheHeap->size()) + " live objects "
                 "(capacity " + std::to_string(S.TheHeap->capacity()) +
                 ")");
  }

  //===--------------------------------------------------------------------===
  // Expression dispatch
  //===--------------------------------------------------------------------===

  StepOutcome evalExpr() {
    const Expr &E = *T.ControlExpr;
    switch (E.kind()) {
    case ExprKind::IntLit:
      produce(Value::intVal(cast<IntLitExpr>(E).Value));
      return StepOutcome::Progress;
    case ExprKind::BoolLit:
      produce(Value::boolVal(cast<BoolLitExpr>(E).Value));
      return StepOutcome::Progress;
    case ExprKind::UnitLit:
      produce(Value::unitVal());
      return StepOutcome::Progress;
    case ExprKind::NoneLit:
      produce(Value::noneVal());
      return StepOutcome::Progress;
    case ExprKind::VarRef: {
      const auto &Var = cast<VarRefExpr>(E);
      const auto *Slot = findSlot(Var.Name);
      if (!Slot)
        return stuck("unbound variable at runtime (checker bug)");
      // E2 Variable-Ref-Step: the read value must be in the reservation.
      if (StepOutcome R = checkValue(Slot->second, "variable read");
          R != StepOutcome::Progress)
        return R;
      produce(Slot->second);
      return StepOutcome::Progress;
    }
    case ExprKind::FieldRef: {
      const auto &Ref = cast<FieldRefExpr>(E);
      T.Konts.push_back(frames::FieldRead{Ref.Field});
      evaluate(Ref.Base.get());
      return StepOutcome::Progress;
    }
    case ExprKind::AssignVar: {
      const auto &A = cast<AssignVarExpr>(E);
      T.Konts.push_back(frames::AssignVar{A.Name});
      evaluate(A.Value.get());
      return StepOutcome::Progress;
    }
    case ExprKind::AssignField: {
      const auto &A = cast<AssignFieldExpr>(E);
      T.Konts.push_back(frames::FieldWriteBase{A.Value.get(), A.Field});
      evaluate(A.Base.get());
      return StepOutcome::Progress;
    }
    case ExprKind::Let: {
      const auto &L = cast<LetExpr>(E);
      T.Konts.push_back(frames::LetBody{L.Name, L.Body.get()});
      evaluate(L.Init.get());
      return StepOutcome::Progress;
    }
    case ExprKind::LetSome: {
      const auto &L = cast<LetSomeExpr>(E);
      T.Konts.push_back(frames::LetSome{&L});
      evaluate(L.Scrutinee.get());
      return StepOutcome::Progress;
    }
    case ExprKind::If: {
      const auto &I = cast<IfExpr>(E);
      T.Konts.push_back(frames::IfCond{I.Then.get(), I.Else.get()});
      evaluate(I.Cond.get());
      return StepOutcome::Progress;
    }
    case ExprKind::IfDisconnected:
      return evalIfDisconnected(cast<IfDisconnectedExpr>(E));
    case ExprKind::While: {
      const auto &W = cast<WhileExpr>(E);
      T.Konts.push_back(frames::WhileCond{&W});
      evaluate(W.Cond.get());
      return StepOutcome::Progress;
    }
    case ExprKind::Seq: {
      const auto &Sq = cast<SeqExpr>(E);
      assert(!Sq.Elems.empty() && "parser guarantees nonempty blocks");
      if (Sq.Elems.size() > 1)
        T.Konts.push_back(frames::Seq{&Sq, 1});
      evaluate(Sq.Elems.front().get());
      return StepOutcome::Progress;
    }
    case ExprKind::New: {
      const auto &N = cast<NewExpr>(E);
      if (N.Args.empty()) {
        Loc L = allocateDefault(N.StructName);
        if (!L.isValid())
          return heapExhausted();
        produce(Value::locVal(L));
        return StepOutcome::Progress;
      }
      T.Konts.push_back(frames::NewArgs{&N, {}});
      evaluate(N.Args.front().get());
      return StepOutcome::Progress;
    }
    case ExprKind::SomeExpr:
      // some(v) is represented by v itself.
      evaluate(cast<SomeExpr>(E).Operand.get());
      return StepOutcome::Progress;
    case ExprKind::IsNone: {
      T.Konts.push_back(frames::IsNone{});
      evaluate(cast<IsNoneExpr>(E).Operand.get());
      return StepOutcome::Progress;
    }
    case ExprKind::Send: {
      const auto &Send = cast<SendExpr>(E);
      T.Konts.push_back(frames::Send{&Send});
      evaluate(Send.Operand.get());
      return StepOutcome::Progress;
    }
    case ExprKind::Recv: {
      const auto &R = cast<RecvExpr>(E);
      if (S.Faults && S.Faults->shouldFire(FaultPoint::ChanRecv))
        injectFault(FaultPoint::ChanRecv);
      T.CommType = R.ValueType;
      T.Status = ThreadStatus::BlockedRecv;
      if (T.Trace) {
        T.TraceBlockStartNs = T.Trace->now();
        T.Trace->instant("recv.block", "channel");
      }
      return StepOutcome::BlockedRecv;
    }
    case ExprKind::Call: {
      const auto &C = cast<CallExpr>(E);
      if (C.Args.empty())
        return enterFunction(C, {});
      T.Konts.push_back(frames::CallArgs{&C, {}});
      evaluate(C.Args.front().get());
      return StepOutcome::Progress;
    }
    case ExprKind::Binary: {
      const auto &B = cast<BinaryExpr>(E);
      T.Konts.push_back(frames::BinL{&B});
      evaluate(B.Lhs.get());
      return StepOutcome::Progress;
    }
    case ExprKind::Unary: {
      const auto &U = cast<UnaryExpr>(E);
      T.Konts.push_back(frames::Un{&U});
      evaluate(U.Operand.get());
      return StepOutcome::Progress;
    }
    }
    return stuck("internal: unhandled expression kind");
  }

  StepOutcome evalIfDisconnected(const IfDisconnectedExpr &E) {
    const auto *SlotA = findSlot(E.VarA);
    const auto *SlotB = findSlot(E.VarB);
    if (!SlotA || !SlotB)
      return stuck("unbound 'if disconnected' argument (checker bug)");
    if (!SlotA->second.isLoc() || !SlotB->second.isLoc())
      return stuck("'if disconnected' arguments must be objects");
    Loc A = SlotA->second.asLoc();
    Loc B = SlotB->second.asLoc();
    if (!inReservation(A) || !inReservation(B))
      return stuck("reservation violation: 'if disconnected' argument "
                   "outside the reservation");
    if (S.Faults && S.Faults->shouldFire(FaultPoint::DisconnectTraverse))
      injectFault(FaultPoint::DisconnectTraverse);
    ++S.Stats->DisconnectChecks;

    // Elision: when the static region-graph analysis proved this site's
    // outcome, skip the traversal entirely (the whole point of the
    // must-* verdicts). The cross-check re-runs the real traversal and
    // treats disagreement as a stuck state — it must never fire on
    // sound verdicts, and the property tests lean on that.
    if (S.ElideDisconnect && S.StaticVerdicts) {
      auto It = S.StaticVerdicts->find(&E);
      if (It != S.StaticVerdicts->end() &&
          It->second != DisconnectVerdict::Unknown) {
        bool Disc = It->second == DisconnectVerdict::MustDisconnected;
        if (S.CrossCheckElision) {
          DisconnectOutcome Real =
              S.UseNaiveDisconnect
                  ? checkDisconnectedNaive(*S.TheHeap, A, B, T.Scratch)
                  : checkDisconnectedRefCount(*S.TheHeap, A, B, T.Scratch);
          if (Real.Disconnected != Disc)
            return stuck("static 'if disconnected' verdict contradicts "
                         "the runtime traversal (analysis bug)");
        }
        ++S.Stats->DisconnectElided;
        if (Disc)
          ++S.Stats->DisconnectTaken;
        if (T.Trace)
          T.Trace->instant("disconnect.elided", "disconnect");
        evaluate(Disc ? E.Then.get() : E.Else.get());
        return StepOutcome::Progress;
      }
    }

    uint64_t TraceStart = T.Trace ? T.Trace->now() : 0;
    DisconnectOutcome Out =
        S.UseNaiveDisconnect
            ? checkDisconnectedNaive(*S.TheHeap, A, B, T.Scratch)
            : checkDisconnectedRefCount(*S.TheHeap, A, B, T.Scratch);
    if (T.Trace)
      T.Trace->record("disconnect.traverse", "disconnect", 'X', TraceStart,
                      T.Trace->now() - TraceStart, "objects_visited",
                      Out.ObjectsVisited);
    S.Stats->DisconnectObjectsVisited += Out.ObjectsVisited;
    S.Stats->DisconnectEdgesTraversed += Out.EdgesTraversed;
    if (Out.Disconnected)
      ++S.Stats->DisconnectTaken;
    evaluate(Out.Disconnected ? E.Then.get() : E.Else.get());
    return StepOutcome::Progress;
  }

  StepOutcome enterFunction(const CallExpr &C, std::vector<Value> Args) {
    const FnDecl *Callee = S.Prog->findFunction(C.Callee);
    if (!Callee)
      return stuck("call to unknown function at runtime (checker bug)");
    assert(Args.size() == Callee->Params.size() && "arity checked");
    T.Konts.push_back(frames::Return{T.Env.size(), T.FrameBases.size()});
    T.FrameBases.push_back(T.Env.size());
    for (size_t I = 0; I < Args.size(); ++I)
      T.Env.emplace_back(Callee->Params[I].Name, Args[I]);
    evaluate(Callee->Body.get());
    return StepOutcome::Progress;
  }

  //===--------------------------------------------------------------------===
  // Frame application
  //===--------------------------------------------------------------------===

  StepOutcome applyFrame() {
    if (T.Konts.empty()) {
      T.Result = T.ControlValue;
      T.Status = ThreadStatus::Finished;
      return StepOutcome::Finished;
    }
    Frame F = std::move(T.Konts.back());
    T.Konts.pop_back();
    Value V = T.ControlValue;

    if (auto *Let = std::get_if<frames::LetBody>(&F)) {
      T.Env.emplace_back(Let->Name, V);
      T.Konts.push_back(frames::PopVar{Let->Name});
      evaluate(Let->Body);
      return StepOutcome::Progress;
    }
    if (auto *Pop = std::get_if<frames::PopVar>(&F)) {
      assert(!T.Env.empty() && T.Env.back().first == Pop->Name &&
             "scope discipline violated");
      (void)Pop;
      T.Env.pop_back();
      produce(V);
      return StepOutcome::Progress;
    }
    if (auto *Assign = std::get_if<frames::AssignVar>(&F)) {
      auto *Slot = findSlot(Assign->Name);
      if (!Slot)
        return stuck("unbound variable in assignment (checker bug)");
      // E8 Assign-Var-Step: the assigned value must be in the reservation.
      if (StepOutcome R = checkValue(V, "variable write");
          R != StepOutcome::Progress)
        return R;
      Slot->second = V;
      produce(Value::unitVal());
      return StepOutcome::Progress;
    }
    if (auto *Read = std::get_if<frames::FieldRead>(&F)) {
      if (!V.isLoc())
        return stuck("field read on a non-object value");
      Loc Base = V.asLoc();
      if (!inReservation(Base))
        return stuck("reservation violation: field read on " +
                     toString(V));
      const FieldInfo *Field = fieldOf(Base, Read->Field);
      if (!Field)
        return stuck("no such field at runtime (checker bug)");
      Value Out = S.TheHeap->getField(Base, Field->Index);
      // E5a: the read result must be within the reservation.
      if (StepOutcome R = checkValue(Out, "field read");
          R != StepOutcome::Progress)
        return R;
      produce(Out);
      return StepOutcome::Progress;
    }
    if (auto *WriteBase = std::get_if<frames::FieldWriteBase>(&F)) {
      if (!V.isLoc())
        return stuck("field write on a non-object value");
      Loc Base = V.asLoc();
      if (!inReservation(Base))
        return stuck("reservation violation: field write on " +
                     toString(V));
      T.Konts.push_back(frames::FieldWriteVal{Base, WriteBase->Field});
      evaluate(WriteBase->ValueExpr);
      return StepOutcome::Progress;
    }
    if (auto *Write = std::get_if<frames::FieldWriteVal>(&F)) {
      // E7a: the written value must be in the reservation.
      if (StepOutcome R = checkValue(V, "field write");
          R != StepOutcome::Progress)
        return R;
      const FieldInfo *Field = fieldOf(Write->Base, Write->Field);
      if (!Field)
        return stuck("no such field at runtime (checker bug)");
      S.TheHeap->setField(Write->Base, Field->Index, V);
      produce(Value::unitVal());
      return StepOutcome::Progress;
    }
    if (auto *Sq = std::get_if<frames::Seq>(&F)) {
      // Intermediate values are discarded.
      if (Sq->Next + 1 < Sq->S->Elems.size())
        T.Konts.push_back(frames::Seq{Sq->S, Sq->Next + 1});
      evaluate(Sq->S->Elems[Sq->Next].get());
      return StepOutcome::Progress;
    }
    if (auto *If = std::get_if<frames::IfCond>(&F)) {
      if (V.kind() != Value::Kind::Bool)
        return stuck("if condition is not a bool");
      if (V.asBool()) {
        if (!If->Else)
          T.Konts.push_back(frames::DiscardToUnit{});
        evaluate(If->Then);
        return StepOutcome::Progress;
      }
      if (If->Else) {
        evaluate(If->Else);
        return StepOutcome::Progress;
      }
      produce(Value::unitVal());
      return StepOutcome::Progress;
    }
    if (std::get_if<frames::DiscardToUnit>(&F)) {
      produce(Value::unitVal());
      return StepOutcome::Progress;
    }
    if (auto *Cond = std::get_if<frames::WhileCond>(&F)) {
      if (V.kind() != Value::Kind::Bool)
        return stuck("while condition is not a bool");
      if (!V.asBool()) {
        produce(Value::unitVal());
        return StepOutcome::Progress;
      }
      T.Konts.push_back(frames::WhileBody{Cond->W});
      evaluate(Cond->W->Body.get());
      return StepOutcome::Progress;
    }
    if (auto *Body = std::get_if<frames::WhileBody>(&F)) {
      T.Konts.push_back(frames::WhileCond{Body->W});
      evaluate(Body->W->Cond.get());
      return StepOutcome::Progress;
    }
    if (auto *Call = std::get_if<frames::CallArgs>(&F)) {
      frames::CallArgs Args = std::move(*Call);
      Args.Done.push_back(V);
      if (Args.Done.size() < Args.C->Args.size()) {
        size_t Next = Args.Done.size();
        const CallExpr *C = Args.C;
        T.Konts.push_back(std::move(Args));
        evaluate(C->Args[Next].get());
        return StepOutcome::Progress;
      }
      return enterFunction(*Args.C, std::move(Args.Done));
    }
    if (auto *Ret = std::get_if<frames::Return>(&F)) {
      T.Env.resize(Ret->EnvMark);
      T.FrameBases.resize(Ret->FrameBaseMark);
      produce(V);
      return StepOutcome::Progress;
    }
    if (std::get_if<frames::IsNone>(&F)) {
      produce(Value::boolVal(V.isNone()));
      return StepOutcome::Progress;
    }
    if (auto *SendF = std::get_if<frames::Send>(&F)) {
      if (S.Faults && S.Faults->shouldFire(FaultPoint::ChanSend))
        injectFault(FaultPoint::ChanSend);
      // Resolve the send's τ: statically recorded by the checker, or
      // derived from the runtime value for unchecked programs.
      Type Ty;
      if (S.SendTypes) {
        auto It = S.SendTypes->find(SendF->E);
        if (It != S.SendTypes->end())
          Ty = It->second;
      }
      if (!Ty.isValid()) {
        switch (V.kind()) {
        case Value::Kind::Unit:
          Ty = Type::unitTy();
          break;
        case Value::Kind::Int:
          Ty = Type::intTy();
          break;
        case Value::Kind::Bool:
          Ty = Type::boolTy();
          break;
        case Value::Kind::Location:
          Ty = Type::structTy(S.TheHeap->get(V.asLoc()).Struct->Name);
          break;
        case Value::Kind::None:
          return stuck("cannot derive the type of a sent 'none' without "
                       "checker information");
        }
      }
      // Block; the machine pairs senders and receivers (EC3).
      T.PendingSend = V;
      T.CommType = Ty;
      T.Status = ThreadStatus::BlockedSend;
      if (T.Trace) {
        T.TraceBlockStartNs = T.Trace->now();
        T.Trace->instant("send.block", "channel");
      }
      return StepOutcome::BlockedSend;
    }
    if (auto *LS = std::get_if<frames::LetSome>(&F)) {
      if (V.isNone()) {
        evaluate(LS->L->NoneBody.get());
        return StepOutcome::Progress;
      }
      T.Env.emplace_back(LS->L->Name, V);
      T.Konts.push_back(frames::PopVar{LS->L->Name});
      evaluate(LS->L->SomeBody.get());
      return StepOutcome::Progress;
    }
    if (auto *New = std::get_if<frames::NewArgs>(&F)) {
      frames::NewArgs Args = std::move(*New);
      Args.Done.push_back(V);
      if (Args.Done.size() < Args.N->Args.size()) {
        size_t Next = Args.Done.size();
        const NewExpr *N = Args.N;
        T.Konts.push_back(std::move(Args));
        evaluate(N->Args[Next].get());
        return StepOutcome::Progress;
      }
      Loc L = allocateDefault(Args.N->StructName);
      if (!L.isValid())
        return heapExhausted();
      const Object &O = S.TheHeap->get(L);
      // Full form (one argument per field) or required form (one per
      // non-defaultable field).
      std::vector<uint32_t> ArgFields;
      if (Args.Done.size() == O.Struct->Fields.size()) {
        for (uint32_t FI = 0; FI < O.Struct->Fields.size(); ++FI)
          ArgFields.push_back(FI);
      } else {
        ArgFields = O.Struct->requiredFieldIndices();
      }
      assert(Args.Done.size() == ArgFields.size() && "new-arity checked");
      for (size_t I = 0; I < Args.Done.size(); ++I) {
        if (Args.Done[I].isLoc() && !inReservation(Args.Done[I].asLoc()))
          return stuck("reservation violation: 'new' initializer outside "
                       "the reservation");
        S.TheHeap->setField(L, ArgFields[I], Args.Done[I]);
      }
      produce(Value::locVal(L));
      return StepOutcome::Progress;
    }
    if (auto *BinLhs = std::get_if<frames::BinL>(&F)) {
      const BinaryExpr *B = BinLhs->B;
      // Short-circuit logical operators.
      if (B->Op == BinaryOp::And || B->Op == BinaryOp::Or) {
        if (V.kind() != Value::Kind::Bool)
          return stuck("logical operator on a non-bool");
        if ((B->Op == BinaryOp::And && !V.asBool()) ||
            (B->Op == BinaryOp::Or && V.asBool())) {
          produce(V);
          return StepOutcome::Progress;
        }
        evaluate(B->Rhs.get());
        return StepOutcome::Progress;
      }
      T.Konts.push_back(frames::BinR{B, V});
      evaluate(B->Rhs.get());
      return StepOutcome::Progress;
    }
    if (auto *BinRhs = std::get_if<frames::BinR>(&F))
      return applyBinary(*BinRhs->B, BinRhs->Lhs, V);
    if (auto *Unary = std::get_if<frames::Un>(&F)) {
      if (Unary->U->Op == UnaryOp::Not) {
        if (V.kind() != Value::Kind::Bool)
          return stuck("'!' on a non-bool");
        produce(Value::boolVal(!V.asBool()));
        return StepOutcome::Progress;
      }
      if (V.kind() != Value::Kind::Int)
        return stuck("unary '-' on a non-int");
      produce(Value::intVal(-V.asInt()));
      return StepOutcome::Progress;
    }
    return stuck("internal: unhandled continuation frame");
  }

  StepOutcome applyBinary(const BinaryExpr &B, const Value &L,
                          const Value &R) {
    auto BothInt = [&] {
      return L.kind() == Value::Kind::Int && R.kind() == Value::Kind::Int;
    };
    switch (B.Op) {
    case BinaryOp::Add:
    case BinaryOp::Sub:
    case BinaryOp::Mul: {
      if (!BothInt())
        return stuck("arithmetic on non-ints");
      int64_t A = L.asInt(), C = R.asInt();
      int64_t Out = B.Op == BinaryOp::Add   ? A + C
                    : B.Op == BinaryOp::Sub ? A - C
                                            : A * C;
      produce(Value::intVal(Out));
      return StepOutcome::Progress;
    }
    case BinaryOp::Div:
    case BinaryOp::Mod: {
      if (!BothInt())
        return stuck("arithmetic on non-ints");
      if (R.asInt() == 0)
        return stuck("division by zero");
      produce(Value::intVal(B.Op == BinaryOp::Div
                                ? L.asInt() / R.asInt()
                                : L.asInt() % R.asInt()));
      return StepOutcome::Progress;
    }
    case BinaryOp::Lt:
    case BinaryOp::Le:
    case BinaryOp::Gt:
    case BinaryOp::Ge: {
      if (!BothInt())
        return stuck("comparison on non-ints");
      bool Out = B.Op == BinaryOp::Lt   ? L.asInt() < R.asInt()
                 : B.Op == BinaryOp::Le ? L.asInt() <= R.asInt()
                 : B.Op == BinaryOp::Gt ? L.asInt() > R.asInt()
                                        : L.asInt() >= R.asInt();
      produce(Value::boolVal(Out));
      return StepOutcome::Progress;
    }
    case BinaryOp::Eq:
    case BinaryOp::Ne: {
      bool Equal = L == R;
      produce(Value::boolVal(B.Op == BinaryOp::Eq ? Equal : !Equal));
      return StepOutcome::Progress;
    }
    case BinaryOp::And:
    case BinaryOp::Or:
      return stuck("internal: short-circuit operator reached applyBinary");
    }
    return stuck("internal: unhandled binary operator");
  }

  ThreadState &T;
  const InterpServices &S;
};

} // namespace

StepOutcome fearless::stepThread(ThreadState &T,
                                 const InterpServices &Services) {
  assert(T.Status == ThreadStatus::Runnable && "stepping a blocked thread");
  // The step boundary is the trap frontier: a structured fault raised
  // anywhere inside the step (invalid heap/field access deep in the
  // heap, heap exhaustion, an injected fault) unwinds to here and fails
  // this one thread as a typed error. The executors then decide between
  // supervision restart, escalation, and diagnostic reporting — the
  // process never dies in release builds.
  try {
    if (Services.VmCode)
      return vm::stepThreadVm(T, Services);
    return Stepper(T, Services).step();
  } catch (const RuntimeFaultError &E) {
    RuntimeFault F = E.Fault;
    F.Thread = T.Id;
    T.Fault = F;
    T.Error = F.render();
    T.Status = ThreadStatus::Failed;
    if (T.Trace)
      T.Trace->instant("fault.trapped", "fault", "kind",
                       static_cast<uint64_t>(F.Kind));
    return StepOutcome::Stuck;
  }
}
