//===- runtime/Heap.h - The shared object heap ------------------*- C++ -*-===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The store h of the small-step semantics: a table of struct objects with
/// field slots. The heap additionally maintains the *stored reference
/// counts* of §5.2: per object, the number of immediate heap references
/// held in non-iso fields. The count is updated only on field assignment
/// (never on variable binds, calls, or sends), making it far cheaper than
/// a conventional reference count; `if disconnected` compares it against a
/// traversal count to decide disconnection without exploring the larger
/// side.
///
/// Storage is chunked with a pre-reserved block directory so object
/// references stay stable under concurrent allocation: the parallel
/// executor lets threads touch disjoint reservations without locks
/// (that is the point of fearless concurrency); only allocation takes a
/// mutex.
///
/// Regions do not exist at run time: a runtime "region" is a connected
/// component of the non-iso reference relation.
///
//===----------------------------------------------------------------------===//

#ifndef FEARLESS_RUNTIME_HEAP_H
#define FEARLESS_RUNTIME_HEAP_H

#include "runtime/Scratch.h"
#include "runtime/Value.h"
#include "sema/StructTable.h"

#include <atomic>
#include <cassert>
#include <memory>
#include <mutex>
#include <vector>

namespace fearless {

/// One allocated struct instance.
struct Object {
  const StructInfo *Struct = nullptr;
  std::vector<Value> Fields;
  /// Number of non-iso heap fields (anywhere) currently referencing this
  /// object (§5.2). Maintained by Heap::setField.
  uint32_t StoredRefCount = 0;
};

/// The shared store.
class Heap {
public:
  explicit Heap(const StructTable &Structs,
                size_t MaxObjects = size_t(1) << 26);

  /// Allocates an instance of \p StructName with default field values:
  /// maybe fields none, primitives zero/false/unit, and non-maybe non-iso
  /// same-struct fields a self-reference (the size-1 circular list shape
  /// of Fig. 3). Thread-safe. Returns Loc::invalid() when the heap is
  /// exhausted or the struct is unknown — callers surface a diagnostic
  /// instead of writing out of bounds.
  Loc allocate(Symbol StructName);

  /// Accessors bound-check in release builds too: an out-of-range
  /// location raises a structured RuntimeFault (thrown to the owning
  /// executor in release builds, loud abort in debug — see
  /// runtime/RuntimeFault.h) rather than silently reading or writing
  /// foreign memory.
  Object &get(Loc L) {
    if (!L.isValid() || L.Index >= size())
      heapFault(L);
    return Blocks[L.Index >> BlockShift][L.Index & (BlockSize - 1)];
  }
  const Object &get(Loc L) const {
    if (!L.isValid() || L.Index >= size())
      heapFault(L);
    return Blocks[L.Index >> BlockShift][L.Index & (BlockSize - 1)];
  }

  /// Writes field \p FieldIndex of \p L, maintaining stored reference
  /// counts for non-iso location fields. Like get(), the field index is
  /// validated in release builds too (fieldFault aborts with a
  /// diagnostic instead of indexing foreign memory).
  void setField(Loc L, uint32_t FieldIndex, const Value &V);

  /// Reads a field (release-build bound-checked, see setField).
  const Value &getField(Loc L, uint32_t FieldIndex) const {
    const Object &O = get(L);
    if (FieldIndex >= O.Fields.size())
      fieldFault(L, FieldIndex);
    return O.Fields[FieldIndex];
  }

  size_t size() const { return Count.load(std::memory_order_acquire); }
  /// Maximum number of objects this heap can ever hold.
  size_t capacity() const { return BlockStorage.size() * BlockSize; }
  const StructTable &structs() const { return Structs; }

  /// Collects every location reachable from \p Root following *all*
  /// fields (the live-set of Fig. 15, used by send).
  std::vector<Loc> liveSet(Loc Root) const;

  /// Allocation-free liveSet: appends the live-set into \p Out (cleared
  /// first, capacity reused) using \p Seen as the visited set. Out doubles
  /// as the BFS worklist, so steady-state sends allocate nothing once the
  /// buffers have grown to the transferred graph's size.
  void liveSetInto(Loc Root, std::vector<Loc> &Out, EpochSet &Seen) const;

  /// Recomputes the stored reference count of every object from scratch;
  /// used by the invariant validators.
  std::vector<uint32_t> recomputeRefCounts() const;

private:
  /// Raises an invalid-heap-access RuntimeFault; never returns (throws
  /// in release builds, aborts in debug). Kept out of line so the
  /// accessors stay small.
  [[noreturn]] void heapFault(Loc L) const;
  /// Raises an out-of-range field-index RuntimeFault on \p L.
  [[noreturn]] void fieldFault(Loc L, uint32_t FieldIndex) const;

  static constexpr uint32_t BlockShift = 12;
  static constexpr uint32_t BlockSize = 1u << BlockShift;

  const StructTable &Structs;
  /// Block directory; sized up-front so the pointer array never moves.
  std::vector<std::unique_ptr<Object[]>> BlockStorage;
  std::unique_ptr<Object[]> *Blocks = nullptr;
  std::atomic<uint32_t> Count{0};
  std::mutex AllocMutex;
};

} // namespace fearless

#endif // FEARLESS_RUNTIME_HEAP_H
