//===- runtime/Disconnected.h - `if disconnected` checks --------*- C++ -*-===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two implementations of the `if disconnected` run-time check:
///
///  - checkDisconnectedRefCount — the efficient §5.2 algorithm:
///    interleaved traversals over the non-iso reference relation from both
///    roots, stopping when the smaller side is fully explored (or the
///    frontiers intersect), then comparing the traversal reference counts
///    with the stored reference counts. Counts match ⇒ no unexplored
///    non-iso reference enters the smaller subgraph ⇒ disconnected.
///    A mismatch is *conservatively* treated as connected.
///
///  - checkDisconnectedNaive — exact full reachability intersection over
///    all fields (the specification of rules E15A/E15B). Used by tests to
///    cross-validate the efficient check and by benchmarks as the
///    baseline.
///
/// Under tempered domination (empty tracking context at the check, which
/// the type system guarantees), untracked iso fields dominate their
/// targets, so no iso edge can be the first point of intersection: the
/// non-iso-only refcount check is exact, not just sound.
///
//===----------------------------------------------------------------------===//

#ifndef FEARLESS_RUNTIME_DISCONNECTED_H
#define FEARLESS_RUNTIME_DISCONNECTED_H

#include "runtime/Heap.h"

namespace fearless {

/// Outcome of a disconnection check, with work accounting for benchmarks.
struct DisconnectOutcome {
  bool Disconnected = false;
  size_t ObjectsVisited = 0; ///< Objects expanded by the traversal(s).
  size_t EdgesTraversed = 0;
};

/// The efficient §5.2 check.
DisconnectOutcome checkDisconnectedRefCount(const Heap &H, Loc A, Loc B);

/// The exact full-traversal specification (E15A/E15B).
DisconnectOutcome checkDisconnectedNaive(const Heap &H, Loc A, Loc B);

} // namespace fearless

#endif // FEARLESS_RUNTIME_DISCONNECTED_H
