//===- runtime/Disconnected.h - `if disconnected` checks --------*- C++ -*-===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two implementations of the `if disconnected` run-time check:
///
///  - checkDisconnectedRefCount — the efficient §5.2 algorithm:
///    interleaved traversals over the non-iso reference relation from both
///    roots, stopping when the smaller side is fully explored (or the
///    frontiers intersect), then comparing the traversal reference counts
///    with the stored reference counts. Counts match ⇒ no unexplored
///    non-iso reference enters the smaller subgraph ⇒ disconnected.
///    A mismatch is *conservatively* treated as connected.
///
///  - checkDisconnectedNaive — exact full reachability intersection over
///    all fields (the specification of rules E15A/E15B). Used by tests to
///    cross-validate the efficient check and by benchmarks as the
///    baseline.
///
/// Under tempered domination (empty tracking context at the check, which
/// the type system guarantees), untracked iso fields dominate their
/// targets, so no iso edge can be the first point of intersection: the
/// non-iso-only refcount check is exact, not just sound.
///
/// Both checks run over a caller-provided DisconnectScratch (epoch-
/// stamped dense visit tables + reusable frontiers; see Scratch.h), so
/// repeated checks perform no heap allocations once the scratch has grown
/// to the heap's size — the §5.2 asymptotics are then visible instead of
/// being drowned by allocator constant factors. The scratch-less
/// overloads reuse a thread-local scratch and exist for call sites
/// without a naturally-owned one (tests, host tooling).
///
//===----------------------------------------------------------------------===//

#ifndef FEARLESS_RUNTIME_DISCONNECTED_H
#define FEARLESS_RUNTIME_DISCONNECTED_H

#include "runtime/Heap.h"
#include "runtime/Scratch.h"

namespace fearless {

/// Outcome of a disconnection check, with work accounting for benchmarks.
struct DisconnectOutcome {
  bool Disconnected = false;
  size_t ObjectsVisited = 0; ///< Objects expanded by the traversal(s).
  size_t EdgesTraversed = 0;
  /// Per-argument split of ObjectsVisited: objects expanded while
  /// standing on A's / B's side of the interleaved traversal. In the
  /// "buggy code" case (arguments still connected) the larger side is
  /// the *losing* side — bench_ifdisconnected tracks its count to pin
  /// down the paper's "buggy uses cost nearly nothing extra" claim.
  size_t ObjectsVisitedA = 0;
  size_t ObjectsVisitedB = 0;
};

/// The efficient §5.2 check, running over \p Scratch.
DisconnectOutcome checkDisconnectedRefCount(const Heap &H, Loc A, Loc B,
                                            DisconnectScratch &Scratch);

/// The exact full-traversal specification (E15A/E15B), over \p Scratch.
DisconnectOutcome checkDisconnectedNaive(const Heap &H, Loc A, Loc B,
                                         DisconnectScratch &Scratch);

/// Scratch-less conveniences over a thread-local scratch (allocation-free
/// in steady state too, but not shareable across call sites that want
/// deterministic scratch reuse).
DisconnectOutcome checkDisconnectedRefCount(const Heap &H, Loc A, Loc B);
DisconnectOutcome checkDisconnectedNaive(const Heap &H, Loc A, Loc B);

} // namespace fearless

#endif // FEARLESS_RUNTIME_DISCONNECTED_H
