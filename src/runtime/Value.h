//===- runtime/Value.h - Runtime values -------------------------*- C++ -*-===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime values of the small-step semantics: unit, 64-bit integers,
/// booleans, heap locations, and `none`. A `some(v)` is represented by v
/// itself — maybe types never nest (enforced by sema), so the context
/// always disambiguates.
///
//===----------------------------------------------------------------------===//

#ifndef FEARLESS_RUNTIME_VALUE_H
#define FEARLESS_RUNTIME_VALUE_H

#include <cstdint>
#include <string>

namespace fearless {

/// A heap location (index into the Heap's object table).
struct Loc {
  uint32_t Index = UINT32_MAX;

  static Loc invalid() { return Loc{}; }
  bool isValid() const { return Index != UINT32_MAX; }
  bool operator==(const Loc &) const = default;
  auto operator<=>(const Loc &) const = default;
};

/// A runtime value.
class Value {
public:
  enum class Kind { Unit, Int, Bool, Location, None };

  Value() : K(Kind::Unit) {}
  static Value unitVal() { return Value(); }
  static Value intVal(int64_t V) {
    Value Out;
    Out.K = Kind::Int;
    Out.IntValue = V;
    return Out;
  }
  static Value boolVal(bool V) {
    Value Out;
    Out.K = Kind::Bool;
    Out.BoolValue = V;
    return Out;
  }
  static Value locVal(Loc L) {
    Value Out;
    Out.K = Kind::Location;
    Out.LocValue = L;
    return Out;
  }
  static Value noneVal() {
    Value Out;
    Out.K = Kind::None;
    return Out;
  }

  Kind kind() const { return K; }
  bool isLoc() const { return K == Kind::Location; }
  bool isNone() const { return K == Kind::None; }

  int64_t asInt() const { return IntValue; }
  bool asBool() const { return BoolValue; }
  Loc asLoc() const { return LocValue; }

  bool operator==(const Value &) const = default;

private:
  Kind K;
  int64_t IntValue = 0;
  bool BoolValue = false;
  Loc LocValue;
};

/// Renders a value for diagnostics, e.g. "loc#3", "42", "none".
std::string toString(const Value &V);

} // namespace fearless

#endif // FEARLESS_RUNTIME_VALUE_H
