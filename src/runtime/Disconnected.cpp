//===- runtime/Disconnected.cpp -------------------------------------------===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//

#include "runtime/Disconnected.h"

#include <deque>
#include <unordered_map>
#include <unordered_set>

using namespace fearless;

namespace {

/// One side of the interleaved traversal over non-iso references.
struct Side {
  std::deque<Loc> Frontier;
  /// Visited objects with the number of times each was *encountered via
  /// an edge* during this side's traversal (roots start at zero).
  std::unordered_map<uint32_t, uint32_t> Encounters;
  bool Exhausted = false;

  explicit Side(Loc Root) {
    Frontier.push_back(Root);
    Encounters.emplace(Root.Index, 0);
  }
};

} // namespace

DisconnectOutcome fearless::checkDisconnectedRefCount(const Heap &H, Loc A,
                                                      Loc B) {
  DisconnectOutcome Out;
  if (!A.isValid() || !B.isValid())
    return Out;
  if (A == B)
    return Out; // trivially intersecting

  Side SideA(A);
  Side SideB(B);

  // Expand one object from each side alternately until one side's
  // traversal completes or the frontiers intersect.
  auto Expand = [&](Side &Self, Side &Other) -> bool /*intersected*/ {
    if (Self.Frontier.empty()) {
      Self.Exhausted = true;
      return false;
    }
    Loc L = Self.Frontier.front();
    Self.Frontier.pop_front();
    ++Out.ObjectsVisited;
    const Object &O = H.get(L);
    for (const FieldInfo &F : O.Struct->Fields) {
      if (F.Iso)
        continue; // iso references leave the region; never the first
                  // intersection point under tempered domination
      const Value &V = O.Fields[F.Index];
      if (!V.isLoc())
        continue;
      ++Out.EdgesTraversed;
      Loc T = V.asLoc();
      if (Other.Encounters.count(T.Index))
        return true; // physical intersection
      auto [It, Inserted] = Self.Encounters.emplace(T.Index, 0);
      ++It->second;
      if (Inserted)
        Self.Frontier.push_back(T);
    }
    return false;
  };

  Side *Finished = nullptr;
  while (!Finished) {
    if (Expand(SideA, SideB))
      return Out; // connected
    if (SideA.Exhausted) {
      Finished = &SideA;
      break;
    }
    if (Expand(SideB, SideA))
      return Out; // connected
    if (SideB.Exhausted)
      Finished = &SideB;
  }

  // The finished (smaller) side is fully explored. Compare its traversal
  // counts with the stored counts: any unexplored non-iso reference into
  // this subgraph would make a stored count exceed the traversal count.
  for (const auto &[Index, Count] : Finished->Encounters) {
    if (H.get(Loc{Index}).StoredRefCount != Count)
      return Out; // conservatively connected
  }
  Out.Disconnected = true;
  return Out;
}

DisconnectOutcome fearless::checkDisconnectedNaive(const Heap &H, Loc A,
                                                   Loc B) {
  DisconnectOutcome Out;
  if (!A.isValid() || !B.isValid())
    return Out;

  auto Reach = [&](Loc Root) {
    std::unordered_set<uint32_t> Seen{Root.Index};
    std::deque<Loc> Worklist{Root};
    while (!Worklist.empty()) {
      Loc L = Worklist.front();
      Worklist.pop_front();
      ++Out.ObjectsVisited;
      const Object &O = H.get(L);
      for (const Value &V : O.Fields) {
        if (!V.isLoc())
          continue;
        ++Out.EdgesTraversed;
        if (Seen.insert(V.asLoc().Index).second)
          Worklist.push_back(V.asLoc());
      }
    }
    return Seen;
  };

  std::unordered_set<uint32_t> ReachA = Reach(A);
  std::unordered_set<uint32_t> ReachB = Reach(B);
  for (uint32_t Index : ReachB)
    if (ReachA.count(Index))
      return Out;
  Out.Disconnected = true;
  return Out;
}
