//===- runtime/Disconnected.cpp -------------------------------------------===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//

#include "runtime/Disconnected.h"

using namespace fearless;

DisconnectOutcome
fearless::checkDisconnectedRefCount(const Heap &H, Loc A, Loc B,
                                    DisconnectScratch &Scratch) {
  DisconnectOutcome Out;
  if (!A.isValid() || !B.isValid())
    return Out;
  if (A == B)
    return Out; // trivially intersecting
  // Validate the roots up front (heapFault on garbage) so the scratch
  // tables, sized by H.size(), are never indexed out of bounds.
  (void)H.get(A);
  (void)H.get(B);

  Scratch.begin(H.size());
  DisconnectScratch::Side &SideA = Scratch.side(0);
  DisconnectScratch::Side &SideB = Scratch.side(1);
  SideA.seed(A);
  SideB.seed(B);

  // Expand one object from each side alternately until one side's
  // traversal completes or the frontiers intersect.
  auto Expand = [&](DisconnectScratch::Side &Self,
                    DisconnectScratch::Side &Other,
                    size_t &SideVisited) -> bool /*intersected*/ {
    if (Self.frontierEmpty()) {
      Self.Exhausted = true;
      return false;
    }
    Loc L = Self.popFrontier();
    ++Out.ObjectsVisited;
    ++SideVisited;
    const Object &O = H.get(L);
    for (const FieldInfo &F : O.Struct->Fields) {
      if (F.Iso)
        continue; // iso references leave the region; never the first
                  // intersection point under tempered domination
      const Value &V = O.Fields[F.Index];
      if (!V.isLoc())
        continue;
      ++Out.EdgesTraversed;
      Loc T = V.asLoc();
      if (Other.Mark.contains(T.Index))
        return true; // physical intersection
      Self.encounter(T);
    }
    return false;
  };

  DisconnectScratch::Side *Finished = nullptr;
  while (!Finished) {
    if (Expand(SideA, SideB, Out.ObjectsVisitedA))
      return Out; // connected
    if (SideA.Exhausted) {
      Finished = &SideA;
      break;
    }
    if (Expand(SideB, SideA, Out.ObjectsVisitedB))
      return Out; // connected
    if (SideB.Exhausted)
      Finished = &SideB;
  }

  // The finished (smaller) side is fully explored. Compare its traversal
  // counts with the stored counts: any unexplored non-iso reference into
  // this subgraph would make a stored count exceed the traversal count.
  for (uint32_t Index : Finished->Members) {
    if (H.get(Loc{Index}).StoredRefCount != Finished->Count[Index])
      return Out; // conservatively connected
  }
  Out.Disconnected = true;
  return Out;
}

DisconnectOutcome
fearless::checkDisconnectedNaive(const Heap &H, Loc A, Loc B,
                                 DisconnectScratch &Scratch) {
  DisconnectOutcome Out;
  if (!A.isValid() || !B.isValid())
    return Out;
  (void)H.get(A);
  (void)H.get(B);

  Scratch.begin(H.size());

  // Full BFS over *all* fields (iso included) into one side's tables.
  auto Reach = [&](DisconnectScratch::Side &Side, Loc Root,
                   size_t &SideVisited) {
    Side.seed(Root);
    while (!Side.frontierEmpty()) {
      Loc L = Side.popFrontier();
      ++Out.ObjectsVisited;
      ++SideVisited;
      const Object &O = H.get(L);
      for (const Value &V : O.Fields) {
        if (!V.isLoc())
          continue;
        ++Out.EdgesTraversed;
        Side.encounter(V.asLoc());
      }
    }
  };

  DisconnectScratch::Side &SideA = Scratch.side(0);
  DisconnectScratch::Side &SideB = Scratch.side(1);
  Reach(SideA, A, Out.ObjectsVisitedA);
  Reach(SideB, B, Out.ObjectsVisitedB);
  for (uint32_t Index : SideB.Members)
    if (SideA.Mark.contains(Index))
      return Out;
  Out.Disconnected = true;
  return Out;
}

// Scratch-less conveniences: one scratch per OS thread, grown once and
// reused, so even these entry points are allocation-free in steady state.
static DisconnectScratch &threadLocalScratch() {
  thread_local DisconnectScratch Scratch;
  return Scratch;
}

DisconnectOutcome fearless::checkDisconnectedRefCount(const Heap &H, Loc A,
                                                      Loc B) {
  return checkDisconnectedRefCount(H, A, B, threadLocalScratch());
}

DisconnectOutcome fearless::checkDisconnectedNaive(const Heap &H, Loc A,
                                                   Loc B) {
  return checkDisconnectedNaive(H, A, B, threadLocalScratch());
}
