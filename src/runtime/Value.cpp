//===- runtime/Value.cpp --------------------------------------------------===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//

#include "runtime/Value.h"

using namespace fearless;

std::string fearless::toString(const Value &V) {
  switch (V.kind()) {
  case Value::Kind::Unit:
    return "unit";
  case Value::Kind::Int:
    return std::to_string(V.asInt());
  case Value::Kind::Bool:
    return V.asBool() ? "true" : "false";
  case Value::Kind::Location:
    return "loc#" + std::to_string(V.asLoc().Index);
  case Value::Kind::None:
    return "none";
  }
  return "?";
}
