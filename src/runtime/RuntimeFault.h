//===- runtime/RuntimeFault.h - Structured runtime faults -------*- C++ -*-===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structured runtime faults: the typed description of a runtime trap
/// (invalid heap/field access, heap exhaustion, injected fault) and the
/// carrier that unwinds it from deep inside the interpreter or heap to
/// the owning executor.
///
/// Historically a bad heap access called `std::abort` even in release
/// builds. That is memory-safe but untestable and ungraceful: one bad
/// access in one language thread kills the whole process. The trap path
/// replaces the abort in release builds with a thrown RuntimeFaultError
/// that `stepThread` (and the executors' communication paths) catch at
/// the step boundary, turning the trap into a typed per-thread error —
/// kind, location, thread id — that Machine/ParallelExec report as a
/// diagnostic and `fearlessc` maps to a distinct exit code. Debug builds
/// keep the loud abort for genuine memory-safety traps, where a live
/// debugger beats an unwound stack. Injected faults (support/
/// FaultInjector.h) always throw: they exist to exercise recovery, in
/// every build flavor.
///
/// This is the only exception used by the runtime; library code
/// otherwise stays on Expected<T>. The throw happens only on the fault
/// path — the non-throwing path of the enclosing try block costs nothing
/// (table-based unwinding).
///
//===----------------------------------------------------------------------===//

#ifndef FEARLESS_RUNTIME_RUNTIMEFAULT_H
#define FEARLESS_RUNTIME_RUNTIMEFAULT_H

#include "runtime/Value.h"

#include <cstdint>
#include <string>

namespace fearless {

enum class RuntimeFaultKind : uint8_t {
  /// A heap access through an invalid or out-of-range location.
  InvalidHeapAccess,
  /// A field access with an out-of-range field index.
  InvalidFieldAccess,
  /// An allocation failed because the heap is at capacity.
  HeapExhausted,
  /// A fault fired by the deterministic injector (FaultInjector.h).
  Injected,
};

/// Render as "invalid heap access" etc.
const char *toString(RuntimeFaultKind K);

/// One structured fault: what went wrong, where, and on which thread.
struct RuntimeFault {
  RuntimeFaultKind Kind = RuntimeFaultKind::InvalidHeapAccess;
  /// The heap location involved (invalid when not applicable).
  Loc Location = Loc::invalid();
  /// Kind-specific detail: the field index for InvalidFieldAccess, the
  /// FaultPoint for Injected.
  uint32_t Detail = 0;
  /// The language thread that trapped; UINT32_MAX until the catch site
  /// attributes it.
  uint32_t Thread = UINT32_MAX;

  /// "runtime fault: <kind> <specifics> (thread N)".
  std::string render() const;
};

/// The unwinding carrier. Deliberately not derived from std::exception:
/// nothing but the step-boundary handlers should catch it, and a generic
/// catch (std::exception&) swallowing a fault would mask the trap.
struct RuntimeFaultError {
  RuntimeFault Fault;
};

/// Raises a memory-safety trap: prints and aborts in debug builds
/// (NDEBUG undefined), throws RuntimeFaultError in release builds.
[[noreturn]] void raiseRuntimeFault(const RuntimeFault &F);

/// Raises an injected fault: always throws, in every build flavor
/// (injected faults exist to exercise the recovery path, not to stop a
/// debugger).
[[noreturn]] void raiseInjectedFault(const RuntimeFault &F);

} // namespace fearless

#endif // FEARLESS_RUNTIME_RUNTIMEFAULT_H
