//===- runtime/Interp.h - Small-step thread interpreter ---------*- C++ -*-===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-thread small-step machine of §3.2: an explicit-continuation
/// (CEK-style) evaluator whose configuration is (d, h, s, e) — the
/// reservation d, the shared store h, the stack s, and the control e.
/// Every variable and field access consults the reservation when checks
/// are enabled; a failed check is the paper's "stuck" state and surfaces
/// as a runtime error. Theorems 6.1/6.2 guarantee well-typed programs
/// never trigger it, which is why the checks are erasable (benchmarked in
/// bench_runtime).
///
//===----------------------------------------------------------------------===//

#ifndef FEARLESS_RUNTIME_INTERP_H
#define FEARLESS_RUNTIME_INTERP_H

#include "analysis/Verdict.h"
#include "ast/Ast.h"
#include "runtime/Heap.h"
#include "runtime/RuntimeFault.h"
#include "runtime/Scratch.h"
#include "runtime/Value.h"
#include "support/FaultInjector.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace fearless {

namespace vm {
struct CompiledProgram;
struct VmState;
} // namespace vm

using ThreadId = uint32_t;

/// Continuation frames.
namespace frames {
struct LetBody {
  Symbol Name;
  const Expr *Body;
};
struct PopVar {
  Symbol Name;
};
struct AssignVar {
  Symbol Name;
};
struct FieldRead {
  Symbol Field;
};
struct FieldWriteBase {
  const Expr *ValueExpr;
  Symbol Field;
};
struct FieldWriteVal {
  Loc Base;
  Symbol Field;
};
struct Seq {
  const SeqExpr *S;
  size_t Next;
};
struct IfCond {
  const Expr *Then;
  const Expr *Else; ///< Null: statement form (result discarded).
};
struct DiscardToUnit {};
struct WhileCond {
  const WhileExpr *W;
};
struct WhileBody {
  const WhileExpr *W;
};
struct CallArgs {
  const CallExpr *C;
  std::vector<Value> Done;
};
struct Return {
  size_t EnvMark;
  size_t FrameBaseMark;
};
struct IsNone {};
struct Send {
  const SendExpr *E;
};
struct LetSome {
  const LetSomeExpr *L;
};
struct NewArgs {
  const NewExpr *N;
  std::vector<Value> Done;
};
struct BinL {
  const BinaryExpr *B;
};
struct BinR {
  const BinaryExpr *B;
  Value Lhs;
};
struct Un {
  const UnaryExpr *U;
};
} // namespace frames

using Frame = std::variant<
    frames::LetBody, frames::PopVar, frames::AssignVar, frames::FieldRead,
    frames::FieldWriteBase, frames::FieldWriteVal, frames::Seq,
    frames::IfCond, frames::DiscardToUnit, frames::WhileCond,
    frames::WhileBody, frames::CallArgs, frames::Return, frames::IsNone,
    frames::Send, frames::LetSome, frames::NewArgs, frames::BinL,
    frames::BinR, frames::Un>;

enum class ThreadStatus {
  Runnable,
  BlockedSend,
  BlockedRecv,
  Finished,
  Failed,
};

/// One thread's configuration.
struct ThreadState {
  ThreadId Id = 0;

  /// The stack s: name/value slots, with function-frame boundaries.
  std::vector<std::pair<Symbol, Value>> Env;
  std::vector<size_t> FrameBases{0};

  std::vector<Frame> Konts;
  const Expr *ControlExpr = nullptr;
  Value ControlValue;
  bool HasValue = false;

  /// The reservation d (by object index): epoch-stamped dense membership,
  /// so the §3.2 dynamic check on every access is a load + compare. Sends
  /// and receives update it incrementally (Machine::tryCommunicate).
  ReservationTable Reservation;

  /// Per-thread scratch for `if disconnected`: repeated checks reuse the
  /// same epoch-stamped tables and perform no heap allocations in steady
  /// state (§5.2's O(min-side) bound without an allocator tax).
  DisconnectScratch Scratch;

  ThreadStatus Status = ThreadStatus::Runnable;
  Value Result;
  std::string Error;
  /// Structured description when the thread died to a runtime fault
  /// (trap or injection) rather than a plain stuck state. Set alongside
  /// Error by stepThread's trap handler; executors use it to decide
  /// supervision (restart vs escalate) and exit-code mapping.
  std::optional<RuntimeFault> Fault;

  /// Blocking communication state.
  Type CommType;
  Value PendingSend;

  /// Tracing (support/Trace.h). Null = disabled: every instrumentation
  /// site in the interpreter guards on this one pointer. The buffer is
  /// single-writer, owned by whichever executor steps this thread.
  TraceBuffer *Trace = nullptr;
  /// Steps taken by *this* thread, counted only while tracing (the
  /// shared MachineStats cannot attribute steps per thread).
  uint64_t TraceSteps = 0;
  /// When the thread blocked in send/recv, for block→wake wait spans
  /// recorded by the machine at pairing time.
  uint64_t TraceBlockStartNs = 0;

  /// Bytecode-engine execution state (vm/Vm.h), lazily created on the
  /// first step when InterpServices::VmCode is set. Null under the
  /// tree-walking interpreter. shared_ptr so ThreadState stays movable
  /// with VmState incomplete here; a supervision reset (fresh
  /// ThreadState) drops it naturally.
  std::shared_ptr<vm::VmState> Vm;
};

/// Outcome of one small step.
enum class StepOutcome { Progress, Finished, BlockedSend, BlockedRecv,
                         Stuck };

// MachineStats (the per-thread counters every step updates) lives in
// support/Metrics.h next to the RuntimeMetrics registry that aggregates
// it at join.

/// Services a stepping thread needs from its machine.
struct InterpServices {
  Heap *TheHeap = nullptr;
  const Program *Prog = nullptr;
  MachineStats *Stats = nullptr;
  /// Static types of send operands (from the checker); used to pair
  /// send-τ with recv-τ. May be null for unchecked programs, in which
  /// case the type is derived from the runtime value.
  const std::map<const Expr *, Type> *SendTypes = nullptr;
  bool CheckReservations = true;
  bool UseNaiveDisconnect = false;
  /// Per-site verdicts from the static region-graph analysis
  /// (analysis/StaticDisconnect.h). Null when the program was not
  /// analyzed.
  const DisconnectVerdictTable *StaticVerdicts = nullptr;
  /// Skip the dynamic traversal for sites the table classifies as must-*.
  bool ElideDisconnect = false;
  /// Run the real traversal anyway and fail the thread on disagreement
  /// with the static verdict (debug builds / property tests).
  bool CrossCheckElision = false;
  /// Deterministic fault injection (support/FaultInjector.h). Null =
  /// disabled: every instrumented site guards on this one pointer, the
  /// same discipline as tracing. The injector is shared by every thread
  /// of a run and must outlive it.
  FaultInjector *Faults = nullptr;
  /// When set, stepThread dispatches to the register-bytecode VM
  /// (vm/Vm.h) instead of the tree-walking evaluator. The compiled
  /// program must outlive the run and must have been lowered from the
  /// same Program as Prog.
  const vm::CompiledProgram *VmCode = nullptr;
};

/// Executes one small step of \p T. On StepOutcome::Stuck, T.Error holds
/// the reason (a reservation violation or a genuine runtime fault); when
/// the cause was a structured trap or an injected fault, T.Fault
/// additionally carries the typed description. Traps raised inside the
/// step (invalid heap/field access, injected faults) are caught at this
/// boundary — they fail the thread, never the process.
StepOutcome stepThread(ThreadState &T, const InterpServices &Services);

} // namespace fearless

#endif // FEARLESS_RUNTIME_INTERP_H
