//===- runtime/Machine.h - Concurrent configuration -------------*- C++ -*-===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The concurrent configuration of §7: one shared heap h and n threads,
/// each with its own reservation d_i, stack s_i, and control e_i. The
/// machine steps threads under a deterministic (optionally seeded)
/// scheduler and pairs blocked send/recv threads per rule EC3: the sender
/// chooses a root location, the live-set reachable from it must lie in
/// the sender's reservation, and the whole set transfers to the receiver.
///
/// The machine also exposes a host API for building object graphs
/// directly into a thread's reservation (tests and examples use it to
/// call functions like remove_tail on pre-built lists).
///
//===----------------------------------------------------------------------===//

#ifndef FEARLESS_RUNTIME_MACHINE_H
#define FEARLESS_RUNTIME_MACHINE_H

#include "checker/Checker.h"
#include "runtime/Heap.h"
#include "runtime/Interp.h"
#include "support/Expected.h"
#include "support/Metrics.h"

#include <deque>
#include <functional>
#include <optional>

namespace fearless {

class Machine;

/// Machine configuration.
struct MachineOptions {
  /// Dynamic reservation checks (§3.2). Erasable for well-typed programs;
  /// bench_runtime measures exactly this toggle.
  bool CheckReservations = true;
  /// Use the naive exact `if disconnected` instead of the §5.2 refcount
  /// algorithm (for cross-validation and the bench baseline).
  bool UseNaiveDisconnect = false;
  /// Per-site verdicts from the static region-graph analysis; must
  /// outlive the machine. Null disables elision regardless of
  /// ElideDisconnect.
  const DisconnectVerdictTable *StaticVerdicts = nullptr;
  /// Answer must-* `if disconnected` sites from StaticVerdicts without
  /// running the traversal (`fearlessc run --no-elide` turns this off).
  bool ElideDisconnect = true;
  /// Re-run the real traversal on every elided check and fail on
  /// disagreement. Defaults on in debug builds; tests enable it
  /// explicitly elsewhere.
#ifndef NDEBUG
  bool CrossCheckElision = true;
#else
  bool CrossCheckElision = false;
#endif
  uint64_t MaxSteps = 500'000'000;
  /// Deterministic fault injection (support/FaultInjector.h): consulted
  /// at thread start, per scheduler pulse (`sched.step`), and by the
  /// interpreter's instrumented sites. Null = disabled (one pointer test
  /// per site). Must outlive run().
  FaultInjector *Faults = nullptr;
  /// Structured tracing (support/Trace.h): when set, run() registers one
  /// ring buffer per language thread (plus a machine control buffer) and
  /// records send/recv wait spans, `if disconnected` traversal spans,
  /// and interpreter progress ticks. Null = disabled (no overhead beyond
  /// a pointer test per site). Must outlive the machine's run().
  TraceSession *Trace = nullptr;
  /// Soundness-testing hook: run after every small step; a returned
  /// message aborts the run. Tests install the §6 invariant validators
  /// here to check I1/I2-style properties at *every* intermediate state.
  std::function<std::optional<std::string>(const Machine &)>
      StepValidator;
  /// When set, threads execute this compiled bytecode (vm/Vm.h) instead
  /// of tree-walking the AST. Must be lowered from the same
  /// CheckedProgram and outlive run(). Note the VM batches instructions,
  /// so one "step" (MaxSteps, StepValidator, scheduler pulse) covers up
  /// to a batch of ops.
  const vm::CompiledProgram *VmCode = nullptr;
};

/// Result of a completed run.
struct MachineSummary {
  std::vector<Value> ThreadResults;
  uint64_t Steps = 0;
};

/// The concurrent abstract machine.
class Machine {
public:
  /// \p Checked must outlive the machine. The program is expected to have
  /// passed the checker; running unchecked programs is possible (tests use
  /// it for failure injection) and surfaces violations as errors.
  explicit Machine(const CheckedProgram &Checked, MachineOptions Opts = {});

  /// Creates a thread that will run \p FnName(\p Args). Regionful
  /// arguments must reference graphs previously built into this thread's
  /// reservation via the host API.
  ThreadId spawn(Symbol FnName, std::vector<Value> Args = {});

  /// Two-phase spawn: create the thread first (so host allocation can
  /// target its reservation), build graphs, then start it.
  ThreadId createThread();
  void startThread(ThreadId T, Symbol FnName, std::vector<Value> Args);

  //===--------------------------------------------------------------------===
  // Host-side graph construction (before run())
  //===--------------------------------------------------------------------===

  /// Allocates a default-initialized object into thread \p T's
  /// reservation.
  Loc hostAlloc(ThreadId T, Symbol StructName);
  /// Writes a field by name (maintains stored reference counts).
  void hostSetField(Loc L, Symbol Field, Value V);
  /// Reads a field by name.
  Value hostGetField(Loc L, Symbol Field) const;

  //===--------------------------------------------------------------------===
  // Execution
  //===--------------------------------------------------------------------===

  /// Runs until every thread finishes. \p Seed selects the interleaving:
  /// 0 is round-robin; otherwise a seeded xorshift picks among runnable
  /// threads. Fails on stuck threads (reservation violations / runtime
  /// faults), deadlock, or step exhaustion.
  Expected<MachineSummary> run(uint64_t Seed = 0);

  Heap &heap() { return TheHeap; }
  const Heap &heap() const { return TheHeap; }
  const MachineStats &stats() const { return Stats; }
  /// Aggregated counters in the common RuntimeMetrics schema (the same
  /// registry the real-thread executor reports).
  RuntimeMetrics metrics() const;
  const std::vector<ThreadState> &threads() const { return Threads; }
  /// The structured fault that failed the last run(), when the failure
  /// was a runtime trap or an injected fault (empty for plain errors
  /// such as deadlock or a reservation violation). fearlessc maps this
  /// to its distinct runtime-fault exit code.
  const std::optional<RuntimeFault> &lastFault() const {
    return LastFault;
  }
  bool inReservation(ThreadId T, Loc L) const {
    return Threads[T].Reservation.count(L.Index) != 0;
  }

private:
  /// Attempts to pair one blocked sender with a type-compatible blocked
  /// receiver (EC3). Returns true if a transfer happened; the error slot
  /// is set when the transfer itself is illegal.
  bool tryCommunicate(std::string &Error);

  bool valueMatchesType(const Value &V, const Type &Ty) const;

  const CheckedProgram &Checked;
  MachineOptions Opts;
  Heap TheHeap;
  MachineStats Stats;
  std::vector<ThreadState> Threads;
  std::optional<RuntimeFault> LastFault;
  /// Reusable send-path buffers (EC3 live-set transfer): liveSetInto
  /// clears and refills them, so steady-state sends allocate nothing.
  std::vector<Loc> LiveBuf;
  EpochSet LiveSeen;
};

} // namespace fearless

#endif // FEARLESS_RUNTIME_MACHINE_H
