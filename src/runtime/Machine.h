//===- runtime/Machine.h - Concurrent configuration -------------*- C++ -*-===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The concurrent configuration of §7: one shared heap h and n threads,
/// each with its own reservation d_i, stack s_i, and control e_i. The
/// machine steps threads under a deterministic (optionally seeded)
/// scheduler and pairs blocked send/recv threads per rule EC3: the sender
/// chooses a root location, the live-set reachable from it must lie in
/// the sender's reservation, and the whole set transfers to the receiver.
///
/// The machine also exposes a host API for building object graphs
/// directly into a thread's reservation (tests and examples use it to
/// call functions like remove_tail on pre-built lists).
///
//===----------------------------------------------------------------------===//

#ifndef FEARLESS_RUNTIME_MACHINE_H
#define FEARLESS_RUNTIME_MACHINE_H

#include "checker/Checker.h"
#include "runtime/Heap.h"
#include "runtime/Interp.h"
#include "support/Expected.h"
#include "support/Metrics.h"

#include <deque>
#include <functional>
#include <optional>

namespace fearless {

class Machine;

/// Machine configuration.
struct MachineOptions {
  /// Dynamic reservation checks (§3.2). Erasable for well-typed programs;
  /// bench_runtime measures exactly this toggle.
  bool CheckReservations = true;
  /// Use the naive exact `if disconnected` instead of the §5.2 refcount
  /// algorithm (for cross-validation and the bench baseline).
  bool UseNaiveDisconnect = false;
  /// Per-site verdicts from the static region-graph analysis; must
  /// outlive the machine. Null disables elision regardless of
  /// ElideDisconnect.
  const DisconnectVerdictTable *StaticVerdicts = nullptr;
  /// Answer must-* `if disconnected` sites from StaticVerdicts without
  /// running the traversal (`fearlessc run --no-elide` turns this off).
  bool ElideDisconnect = true;
  /// Re-run the real traversal on every elided check and fail on
  /// disagreement. Defaults on in debug builds; tests enable it
  /// explicitly elsewhere.
#ifndef NDEBUG
  bool CrossCheckElision = true;
#else
  bool CrossCheckElision = false;
#endif
  uint64_t MaxSteps = 500'000'000;
  /// Deterministic fault injection (support/FaultInjector.h): consulted
  /// at thread start, per scheduler pulse (`sched.step`), and by the
  /// interpreter's instrumented sites. Null = disabled (one pointer test
  /// per site). Must outlive run().
  FaultInjector *Faults = nullptr;
  /// Structured tracing (support/Trace.h): when set, run() registers one
  /// ring buffer per language thread (plus a machine control buffer) and
  /// records send/recv wait spans, `if disconnected` traversal spans,
  /// and interpreter progress ticks. Null = disabled (no overhead beyond
  /// a pointer test per site). Must outlive the machine's run().
  TraceSession *Trace = nullptr;
  /// Soundness-testing hook: run after every small step; a returned
  /// message aborts the run. Tests install the §6 invariant validators
  /// here to check I1/I2-style properties at *every* intermediate state.
  std::function<std::optional<std::string>(const Machine &)>
      StepValidator;
  /// When set, threads execute this compiled bytecode (vm/Vm.h) instead
  /// of tree-walking the AST. Must be lowered from the same
  /// CheckedProgram and outlive run(). Note the VM batches instructions,
  /// so one "step" (MaxSteps, StepValidator, scheduler pulse) covers up
  /// to a batch of ops.
  const vm::CompiledProgram *VmCode = nullptr;
};

/// Result of a completed run.
struct MachineSummary {
  std::vector<Value> ThreadResults;
  uint64_t Steps = 0;
};

/// What one scheduled step did: the model checker's view of a transition
/// (src/mc/DependencyRelation.h decides commutativity over these) and
/// the payload of deadlock/counterexample reports.
struct McStepRecord {
  enum class Kind : uint8_t {
    Local,     ///< Progressed without touching the communication layer.
    Finish,    ///< The thread produced its result.
    BlockSend, ///< Blocked in send-τ with no matching receiver yet.
    BlockRecv, ///< Blocked in recv-τ with no matching sender yet.
    CommPair,  ///< Blocked and immediately paired (the EC3 transfer ran).
  };
  ThreadId Thread = 0;
  Kind StepKind = Kind::Local;
  /// Valid for BlockSend/BlockRecv/CommPair: the rendezvous type τ.
  /// Type-routed pairing makes τ the channel identity, so two comm steps
  /// of different types never interact.
  bool HasCommType = false;
  Type CommType{};
  /// Valid for CommPair: the thread resumed on the other side.
  ThreadId Partner = 0;
  /// Bitmask of FaultPoint indices whose occurrence counter advanced
  /// during the step. Armed fault points are global mutable state (the
  /// injector's triggers are occurrence-indexed), so two steps that
  /// consult the same armed point do not commute.
  uint32_t FaultPointsTouched = 0;
};

/// State of a stepping session between choices.
enum class MachineProgress : uint8_t { Running, Done, Deadlock };

/// The concurrent abstract machine.
class Machine {
public:
  /// \p Checked must outlive the machine. The program is expected to have
  /// passed the checker; running unchecked programs is possible (tests use
  /// it for failure injection) and surfaces violations as errors.
  explicit Machine(const CheckedProgram &Checked, MachineOptions Opts = {});

  /// Creates a thread that will run \p FnName(\p Args). Regionful
  /// arguments must reference graphs previously built into this thread's
  /// reservation via the host API.
  ThreadId spawn(Symbol FnName, std::vector<Value> Args = {});

  /// Two-phase spawn: create the thread first (so host allocation can
  /// target its reservation), build graphs, then start it.
  ThreadId createThread();
  void startThread(ThreadId T, Symbol FnName, std::vector<Value> Args);

  //===--------------------------------------------------------------------===
  // Host-side graph construction (before run())
  //===--------------------------------------------------------------------===

  /// Allocates a default-initialized object into thread \p T's
  /// reservation.
  Loc hostAlloc(ThreadId T, Symbol StructName);
  /// Writes a field by name (maintains stored reference counts).
  void hostSetField(Loc L, Symbol Field, Value V);
  /// Reads a field by name.
  Value hostGetField(Loc L, Symbol Field) const;

  //===--------------------------------------------------------------------===
  // Execution
  //===--------------------------------------------------------------------===

  /// Runs until every thread finishes. \p Seed selects the interleaving:
  /// 0 is round-robin; otherwise a seeded xorshift picks among runnable
  /// threads. Fails on stuck threads (reservation violations / runtime
  /// faults), deadlock, or step exhaustion. Implemented on the stepping
  /// API below, so run() and externally driven schedules share one code
  /// path.
  Expected<MachineSummary> run(uint64_t Seed = 0);

  //===--------------------------------------------------------------------===
  // Incremental stepping (the model checker / schedule replay drive the
  // scheduler choice themselves)
  //===--------------------------------------------------------------------===

  /// Opens a stepping session: trace buffers, interpreter services, and
  /// the thread.start fault points (which fire before any choice is
  /// made). Fails when an injected thread.start fault aborts the run.
  ExpectedVoid beginStepping();
  /// Classifies the current configuration. Attempts EC3 pairing first
  /// when no thread is runnable (mirroring run()), so Deadlock really
  /// means no step and no pairing can happen. Fails when the pairing
  /// attempt itself is illegal (reservation violation / trap).
  Expected<MachineProgress> checkProgress();
  /// Thread indices runnable after the last checkProgress() call.
  const std::vector<size_t> &runnableThreads() const;
  /// Advances thread \p Pick by one small step, mirroring exactly one
  /// scheduler turn of run(): sched.step fault point, the step itself,
  /// the step validator, the step limit, and eager EC3 pairing when the
  /// step blocked. Returns what the step did.
  Expected<McStepRecord> stepChosen(size_t Pick);
  /// Closes the session once checkProgress() returned Done: summary,
  /// machine.run trace span, aggregated step count.
  Expected<MachineSummary> finishStepping();

  /// The deadlock diagnostic run() and the model checker report: the
  /// headline plus a per-thread blocked-state dump.
  std::string deadlockMessage() const;
  /// One line per unfinished thread: the blocking channel op, its
  /// rendezvous type, the pending payload (with live-set size), and the
  /// reservation size.
  std::string blockedStateDump() const;
  /// Order-insensitive fingerprint of the final configuration: thread
  /// statuses and results with heap locations renamed in DFS visit
  /// order, so two schedules that allocate in different orders compare
  /// equal iff their results are isomorphic. The model checker uses it
  /// for the schedule-independence (confluence) property.
  uint64_t resultFingerprint() const;

  Heap &heap() { return TheHeap; }
  const Heap &heap() const { return TheHeap; }
  const MachineStats &stats() const { return Stats; }
  /// Aggregated counters in the common RuntimeMetrics schema (the same
  /// registry the real-thread executor reports).
  RuntimeMetrics metrics() const;
  const std::vector<ThreadState> &threads() const { return Threads; }
  /// The structured fault that failed the last run(), when the failure
  /// was a runtime trap or an injected fault (empty for plain errors
  /// such as deadlock or a reservation violation). fearlessc maps this
  /// to its distinct runtime-fault exit code.
  const std::optional<RuntimeFault> &lastFault() const {
    return LastFault;
  }
  bool inReservation(ThreadId T, Loc L) const {
    return Threads[T].Reservation.count(L.Index) != 0;
  }

private:
  /// Attempts to pair one blocked sender with a type-compatible blocked
  /// receiver (EC3). Returns true if a transfer happened; the error slot
  /// is set when the transfer itself is illegal.
  bool tryCommunicate(std::string &Error);
  /// tryCommunicate behind the trap frontier: an EC3 walk over an
  /// invalid location surfaces as a typed fault, not a process death.
  bool communicate(std::string &Error);

  bool valueMatchesType(const Value &V, const Type &Ty) const;

  /// Per-session state of the incremental stepping API.
  struct SteppingState {
    InterpServices Services;
    TraceBuffer *TraceCtl = nullptr;
    uint64_t TraceRunStart = 0;
    uint64_t Steps = 0;
    std::vector<size_t> Runnable;
    std::vector<ThreadStatus> StatusScratch;
  };
  std::optional<SteppingState> Stepping;

  const CheckedProgram &Checked;
  MachineOptions Opts;
  Heap TheHeap;
  MachineStats Stats;
  std::vector<ThreadState> Threads;
  std::optional<RuntimeFault> LastFault;
  /// Reusable send-path buffers (EC3 live-set transfer): liveSetInto
  /// clears and refills them, so steady-state sends allocate nothing.
  std::vector<Loc> LiveBuf;
  EpochSet LiveSeen;
};

} // namespace fearless

#endif // FEARLESS_RUNTIME_MACHINE_H
