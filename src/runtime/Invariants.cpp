//===- runtime/Invariants.cpp ---------------------------------------------===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//

#include "runtime/Invariants.h"

#include <deque>
#include <unordered_map>
#include <unordered_set>

using namespace fearless;

namespace {

/// BFS over all fields from \p Roots, optionally skipping one specific
/// (object, field-index) edge.
std::unordered_set<uint32_t>
reachableFrom(const Heap &H, const std::vector<Loc> &Roots,
              Loc SkipObject = Loc::invalid(), uint32_t SkipField = 0) {
  std::unordered_set<uint32_t> Seen;
  std::deque<Loc> Worklist;
  for (Loc R : Roots)
    if (R.isValid() && Seen.insert(R.Index).second)
      Worklist.push_back(R);
  while (!Worklist.empty()) {
    Loc L = Worklist.front();
    Worklist.pop_front();
    const Object &O = H.get(L);
    for (const FieldInfo &F : O.Struct->Fields) {
      if (L == SkipObject && F.Index == SkipField)
        continue;
      const Value &V = O.Fields[F.Index];
      if (V.isLoc() && Seen.insert(V.asLoc().Index).second)
        Worklist.push_back(V.asLoc());
    }
  }
  return Seen;
}

/// Locations referenced by a thread's stack, control value, and pending
/// communication.
std::vector<Loc> threadRoots(const ThreadState &T) {
  std::vector<Loc> Roots;
  for (const auto &[Name, V] : T.Env) {
    (void)Name;
    if (V.isLoc())
      Roots.push_back(V.asLoc());
  }
  if (T.HasValue && T.ControlValue.isLoc())
    Roots.push_back(T.ControlValue.asLoc());
  if (T.PendingSend.isLoc())
    Roots.push_back(T.PendingSend.asLoc());
  if (T.Result.isLoc())
    Roots.push_back(T.Result.asLoc());
  return Roots;
}

} // namespace

std::optional<std::string>
fearless::checkReservationsDisjoint(const Machine &M) {
  std::unordered_map<uint32_t, ThreadId> Owner;
  for (const ThreadState &T : M.threads())
    for (uint32_t Index : T.Reservation) {
      auto [It, Inserted] = Owner.emplace(Index, T.Id);
      if (!Inserted)
        return "loc#" + std::to_string(Index) +
               " is in the reservations of both thread " +
               std::to_string(It->second) + " and thread " +
               std::to_string(T.Id);
    }
  return std::nullopt;
}

std::optional<std::string>
fearless::checkReservationClosure(const Machine &M) {
  for (const ThreadState &T : M.threads()) {
    if (T.Status == ThreadStatus::Finished)
      continue; // finished results may have been conceptually returned
    auto Reach = reachableFrom(M.heap(), threadRoots(T));
    for (uint32_t Index : Reach)
      if (!T.Reservation.count(Index))
        return "thread " + std::to_string(T.Id) + " can reach loc#" +
               std::to_string(Index) + " outside its reservation";
  }
  return std::nullopt;
}

std::optional<std::string> fearless::checkStoredRefCounts(const Heap &H) {
  std::vector<uint32_t> Truth = H.recomputeRefCounts();
  for (uint32_t Index = 0; Index < Truth.size(); ++Index) {
    uint32_t Stored = H.get(Loc{Index}).StoredRefCount;
    if (Stored != Truth[Index])
      return "loc#" + std::to_string(Index) + " stores refcount " +
             std::to_string(Stored) + " but the ground truth is " +
             std::to_string(Truth[Index]);
  }
  return std::nullopt;
}

std::optional<std::string>
fearless::checkIsoDomination(const Heap &H, const std::vector<Loc> &Roots) {
  auto Reachable = reachableFrom(H, Roots);
  for (uint32_t Index : Reachable) {
    Loc L{Index};
    const Object &O = H.get(L);
    for (const FieldInfo &F : O.Struct->Fields) {
      if (!F.Iso)
        continue;
      const Value &V = O.Fields[F.Index];
      if (!V.isLoc())
        continue;
      Loc Target = V.asLoc();
      // The target's subgraph must vanish when the iso edge is removed.
      auto TargetSubgraph = reachableFrom(H, {Target});
      auto WithoutEdge = reachableFrom(H, Roots, L, F.Index);
      for (uint32_t Sub : TargetSubgraph)
        if (WithoutEdge.count(Sub))
          return "iso field loc#" + std::to_string(Index) + "." +
                 std::to_string(F.Index) +
                 " does not dominate loc#" + std::to_string(Sub) +
                 " (another path reaches it)";
    }
  }
  return std::nullopt;
}
