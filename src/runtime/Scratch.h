//===- runtime/Scratch.h - Reusable hot-path scratch state ------*- C++ -*-===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Epoch-stamped dense scratch structures for the runtime's hot paths.
///
/// The three operations the interpreter performs on (nearly) every step —
/// reservation membership, `if disconnected`, and live-set collection for
/// `send` — are all set problems over heap locations, and heap locations
/// are dense `uint32_t` indices that are never freed. That makes the
/// classic epoch-stamp trick a perfect fit: membership is an array of
/// stamps, "in the set" means `Stamp[i] == Epoch`, and resetting the set
/// is a single epoch increment instead of an O(n) clear or a fresh
/// allocation. The arrays grow monotonically with the heap and are reused
/// across calls, so steady-state operation performs **zero heap
/// allocations** — the property bench_ifdisconnected's detach-one case
/// exists to demonstrate and tests/property_test.cpp cross-validates.
///
/// Epoch wraparound (a `uint32_t` increment every check, so reachable
/// after ~4.3 billion resets) falls back to an explicit O(n) clear; the
/// stamps are then again strictly older than any epoch the set will use.
/// An explicit unit test drives a scratch across the wrap.
///
//===----------------------------------------------------------------------===//

#ifndef FEARLESS_RUNTIME_SCRATCH_H
#define FEARLESS_RUNTIME_SCRATCH_H

#include "runtime/Value.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <vector>

namespace fearless {

/// A set of heap-location indices with O(1) membership, insertion, and
/// reset. One generation of the set is identified by an epoch; begin()
/// starts a new, empty generation without touching the stamp array.
class EpochSet {
public:
  /// Starts a new empty generation able to hold indices < \p N. O(1)
  /// except when the universe grows or the epoch wraps around.
  void begin(size_t N) {
    if (Stamp.size() < N)
      Stamp.resize(N, 0);
    if (++Epoch == 0) {
      std::fill(Stamp.begin(), Stamp.end(), 0);
      Epoch = 1;
    }
  }

  /// Pre-sizes the universe without starting a generation.
  void reserve(size_t N) {
    if (Stamp.size() < N)
      Stamp.resize(N, 0);
  }

  bool contains(uint32_t Index) const { return Stamp[Index] == Epoch; }

  /// Inserts \p Index; returns true when it was not yet a member.
  bool insert(uint32_t Index) {
    if (Stamp[Index] == Epoch)
      return false;
    Stamp[Index] = Epoch;
    return true;
  }

  size_t universe() const { return Stamp.size(); }
  uint32_t epoch() const { return Epoch; }
  /// Test hook: jump the epoch close to the wraparound point so tests can
  /// exercise the O(n)-clear fallback without 2^32 checks.
  void setEpochForTesting(uint32_t E) { Epoch = E; }

private:
  std::vector<uint32_t> Stamp;
  uint32_t Epoch = 0;
};

/// Reusable state for one `if disconnected` evaluation (both the §5.2
/// refcount algorithm and the naive exact baseline). Owned per-thread
/// (ThreadState) so concurrent interpreters never share scratch; in
/// steady state a check touches only pre-grown arrays.
class DisconnectScratch {
public:
  /// One side of the interleaved traversal: membership + per-object
  /// encounter counts + the insertion-ordered list of members (for the
  /// final refcount comparison) + a FIFO frontier (vector + head cursor
  /// instead of a deque — no per-segment allocations).
  struct Side {
    EpochSet Mark;
    std::vector<uint32_t> Count;   ///< Valid only where Mark holds.
    std::vector<uint32_t> Members; ///< Indices inserted this generation.
    std::vector<Loc> Frontier;
    size_t FrontierHead = 0;
    bool Exhausted = false;

    void begin(size_t N) {
      Mark.begin(N);
      if (Count.size() < N)
        Count.resize(N, 0);
      Members.clear();
      Frontier.clear();
      FrontierHead = 0;
      Exhausted = false;
    }

    /// Seeds the side with its traversal root (encounter count zero).
    void seed(Loc Root) {
      Mark.insert(Root.Index);
      Count[Root.Index] = 0;
      Members.push_back(Root.Index);
      Frontier.push_back(Root);
    }

    /// Records an encounter of \p Target via an edge; returns true when
    /// the object is new to this side (and enqueues it).
    bool encounter(Loc Target) {
      if (!Mark.insert(Target.Index)) {
        ++Count[Target.Index];
        return false;
      }
      Count[Target.Index] = 1;
      Members.push_back(Target.Index);
      Frontier.push_back(Target);
      return true;
    }

    bool frontierEmpty() const { return FrontierHead == Frontier.size(); }
    Loc popFrontier() { return Frontier[FrontierHead++]; }
  };

  /// Prepares both sides for a check over a heap of \p HeapSize objects.
  void begin(size_t HeapSize) {
    Sides[0].begin(HeapSize);
    Sides[1].begin(HeapSize);
  }

  /// Pre-sizes both sides (e.g. to the heap's current size) so the first
  /// check after a build phase does not pay the growth.
  void reserve(size_t HeapSize) {
    Sides[0].Mark.reserve(HeapSize);
    Sides[1].Mark.reserve(HeapSize);
    if (Sides[0].Count.size() < HeapSize)
      Sides[0].Count.resize(HeapSize, 0);
    if (Sides[1].Count.size() < HeapSize)
      Sides[1].Count.resize(HeapSize, 0);
  }

  Side &side(unsigned I) { return Sides[I]; }

  /// Test hook: forwards to both sides' mark sets (see EpochSet).
  void setEpochForTesting(uint32_t E) {
    Sides[0].Mark.setEpochForTesting(E);
    Sides[1].Mark.setEpochForTesting(E);
  }
  uint32_t epoch() const { return Sides[0].Mark.epoch(); }

private:
  Side Sides[2];
};

/// A thread's reservation d: the set of heap locations the thread may
/// touch. Dense epoch-stamped membership makes the §3.2 dynamic check —
/// performed on every variable read, field access, and write — a bounds
/// test plus one load-and-compare, while clear() (used when tests hand a
/// reservation from one thread to another) stays O(1) via an epoch bump.
/// Unlike the per-check scratch sets above, membership must survive
/// across operations, so erase() writes stamp 0 (never a live epoch: the
/// epoch starts at 1 and the wraparound fallback re-clears to 0).
class ReservationTable {
public:
  class const_iterator {
  public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = uint32_t;
    using difference_type = std::ptrdiff_t;
    using pointer = const uint32_t *;
    using reference = uint32_t;

    const_iterator(const ReservationTable *T, uint32_t I)
        : Table(T), Index(I) {
      advance();
    }
    uint32_t operator*() const { return Index; }
    const_iterator &operator++() {
      ++Index;
      advance();
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator Old = *this;
      ++*this;
      return Old;
    }
    bool operator==(const const_iterator &O) const {
      return Index == O.Index;
    }
    bool operator!=(const const_iterator &O) const { return !(*this == O); }

  private:
    void advance() {
      while (Index < Table->Stamp.size() && !Table->contains(Index))
        ++Index;
    }
    const ReservationTable *Table;
    uint32_t Index;
  };

  bool contains(uint32_t Index) const {
    return Index < Stamp.size() && Stamp[Index] == Epoch;
  }
  /// unordered_set-compatible membership spelling.
  size_t count(uint32_t Index) const { return contains(Index) ? 1 : 0; }

  void insert(uint32_t Index) {
    if (Index >= Stamp.size())
      Stamp.resize(std::max<size_t>(Index + 1, Stamp.size() * 2), 0);
    if (Stamp[Index] != Epoch) {
      Stamp[Index] = Epoch;
      ++Members;
    }
  }

  void erase(uint32_t Index) {
    if (contains(Index)) {
      Stamp[Index] = 0;
      --Members;
    }
  }

  /// O(1): bump the epoch (all stamps become stale). Falls back to an
  /// O(n) zero-fill on wraparound.
  void clear() {
    Members = 0;
    if (++Epoch == 0) {
      std::fill(Stamp.begin(), Stamp.end(), 0);
      Epoch = 1;
    }
  }

  size_t size() const { return Members; }
  bool empty() const { return Members == 0; }

  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const {
    return const_iterator(this, static_cast<uint32_t>(Stamp.size()));
  }

private:
  friend class const_iterator;
  std::vector<uint32_t> Stamp;
  uint32_t Epoch = 1;
  size_t Members = 0;
};

} // namespace fearless

#endif // FEARLESS_RUNTIME_SCRATCH_H
