//===- runtime/Invariants.h - Dynamic invariant validators ------*- C++ -*-===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Run-time validators for the invariants of §6, used by tests (including
/// failure injection — hand-corrupted heaps must be caught):
///
///  - reservation disjointness (the concurrent soundness condition of §7),
///  - reservation closure: everything a thread can reach from its stack
///    lies in its reservation (invariant I1, reservation sufficiency),
///  - stored-reference-count accuracy (§5.2),
///  - iso domination: with an empty tracking context, every iso field
///    dominates its reachable subgraph (the quiescent case of I2 /
///    tempered domination).
///
//===----------------------------------------------------------------------===//

#ifndef FEARLESS_RUNTIME_INVARIANTS_H
#define FEARLESS_RUNTIME_INVARIANTS_H

#include "runtime/Machine.h"

#include <optional>
#include <string>
#include <vector>

namespace fearless {

/// No location belongs to two threads' reservations.
std::optional<std::string> checkReservationsDisjoint(const Machine &M);

/// Every location reachable from a thread's stack values is inside that
/// thread's reservation (I1). Valid at thread start and at quiescent
/// points; mid-run, stale stack bindings may legally point at transferred
/// objects (I1 only constrains what well-typed expressions can *step
/// to*, which the machine's per-access checks enforce).
std::optional<std::string> checkReservationClosure(const Machine &M);

/// Stored reference counts equal the recomputed ground truth (§5.2).
std::optional<std::string> checkStoredRefCounts(const Heap &H);

/// Every iso field reachable from \p Roots transitively dominates its
/// reachable subgraph: removing the iso edge makes the whole target
/// subgraph unreachable from the roots. Valid at quiescent points, where
/// the static tracking context is empty (untracked iso fields must
/// dominate — tempered domination / I2).
std::optional<std::string>
checkIsoDomination(const Heap &H, const std::vector<Loc> &Roots);

} // namespace fearless

#endif // FEARLESS_RUNTIME_INVARIANTS_H
