//===- runtime/Heap.cpp ---------------------------------------------------===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//

#include "runtime/Heap.h"

#include "runtime/RuntimeFault.h"

using namespace fearless;

void Heap::heapFault(Loc L) const {
  RuntimeFault F;
  F.Kind = RuntimeFaultKind::InvalidHeapAccess;
  F.Location = L;
  raiseRuntimeFault(F); // throws in release, aborts in debug
}

void Heap::fieldFault(Loc L, uint32_t FieldIndex) const {
  RuntimeFault F;
  F.Kind = RuntimeFaultKind::InvalidFieldAccess;
  F.Location = L;
  F.Detail = FieldIndex;
  raiseRuntimeFault(F);
}

Heap::Heap(const StructTable &Structs, size_t MaxObjects)
    : Structs(Structs) {
  size_t NumBlocks = (MaxObjects + BlockSize - 1) / BlockSize;
  BlockStorage.resize(NumBlocks);
  Blocks = BlockStorage.data();
}

Loc Heap::allocate(Symbol StructName) {
  const StructInfo *Info = Structs.lookup(StructName);
  if (!Info)
    return Loc::invalid(); // unknown struct: nothing sane to build

  uint32_t Index;
  {
    std::lock_guard<std::mutex> Lock(AllocMutex);
    Index = Count.load(std::memory_order_relaxed);
    uint32_t Block = Index >> BlockShift;
    if (Block >= BlockStorage.size())
      return Loc::invalid(); // heap exhausted: a real, checkable outcome
    if (!BlockStorage[Block])
      BlockStorage[Block] = std::make_unique<Object[]>(BlockSize);

    Object &O = BlockStorage[Block][Index & (BlockSize - 1)];
    O.Struct = Info;
    O.Fields.assign(Info->Fields.size(), Value());
    O.StoredRefCount = 0;
    Loc Self{Index};
    for (const FieldInfo &F : Info->Fields) {
      Value &Slot = O.Fields[F.Index];
      if (F.FieldType.isMaybe()) {
        Slot = Value::noneVal();
      } else if (F.FieldType.BaseKind == Type::Base::Int) {
        Slot = Value::intVal(0);
      } else if (F.FieldType.BaseKind == Type::Base::Bool) {
        Slot = Value::boolVal(false);
      } else if (F.FieldType.BaseKind == Type::Base::Unit) {
        Slot = Value::unitVal();
      } else if (!F.Iso && F.FieldType.StructName == StructName) {
        // Non-maybe same-struct field: self-reference.
        Slot = Value::locVal(Self);
        ++O.StoredRefCount; // self-references are non-iso heap refs
      } else {
        // No default exists; the checker guarantees an initializer is
        // stored before this placeholder can be observed.
        Slot = Value::noneVal();
      }
    }
    Count.store(Index + 1, std::memory_order_release);
  }
  return Loc{Index};
}

void Heap::setField(Loc L, uint32_t FieldIndex, const Value &V) {
  Object &O = get(L);
  if (FieldIndex >= O.Fields.size())
    fieldFault(L, FieldIndex);
  bool Iso = O.Struct->Fields[FieldIndex].Iso;
  if (!Iso) {
    const Value &Old = O.Fields[FieldIndex];
    if (Old.isLoc()) {
      Object &OldTarget = get(Old.asLoc());
      assert(OldTarget.StoredRefCount > 0 && "refcount underflow");
      --OldTarget.StoredRefCount;
    }
    if (V.isLoc())
      ++get(V.asLoc()).StoredRefCount;
  }
  O.Fields[FieldIndex] = V;
}

std::vector<Loc> Heap::liveSet(Loc Root) const {
  std::vector<Loc> Out;
  thread_local EpochSet Seen;
  liveSetInto(Root, Out, Seen);
  return Out;
}

void Heap::liveSetInto(Loc Root, std::vector<Loc> &Out,
                       EpochSet &Seen) const {
  Out.clear();
  if (!Root.isValid())
    return;
  (void)get(Root); // validate before sizing the scratch by the root
  Seen.begin(size());
  Seen.insert(Root.Index);
  Out.push_back(Root);
  // Out doubles as the FIFO worklist: everything before Head is expanded,
  // everything after is pending, and the whole vector is the result.
  for (size_t Head = 0; Head < Out.size(); ++Head) {
    const Object &O = get(Out[Head]);
    for (const Value &V : O.Fields) {
      if (!V.isLoc())
        continue;
      if (Seen.insert(V.asLoc().Index))
        Out.push_back(V.asLoc());
    }
  }
}

std::vector<uint32_t> Heap::recomputeRefCounts() const {
  std::vector<uint32_t> Counts(size(), 0);
  for (uint32_t Index = 0; Index < Counts.size(); ++Index) {
    const Object &O = get(Loc{Index});
    for (const FieldInfo &F : O.Struct->Fields)
      if (!F.Iso && O.Fields[F.Index].isLoc())
        ++Counts[O.Fields[F.Index].asLoc().Index];
  }
  return Counts;
}
