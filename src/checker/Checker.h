//===- checker/Checker.h - The region type checker --------------*- C++ -*-===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's type checker (the "prover" of §5): syntax-directed T rules
/// over (H; Γ) contexts, with virtual transformations (Fig. 11) inserted
/// on demand, framing at calls (TS2/T9), liveness-guided unification at
/// merges (§4.6/§5.1), and emission of explicit derivations that the
/// verifier re-checks independently.
///
/// Entry point: checkProgram. Well-typed programs are guaranteed free of
/// destructive data races (Theorems 6.1/6.2); the runtime's dynamic
/// reservation checks never fire on them (validated by tests).
///
//===----------------------------------------------------------------------===//

#ifndef FEARLESS_CHECKER_CHECKER_H
#define FEARLESS_CHECKER_CHECKER_H

#include "checker/Derivation.h"
#include "sema/Signature.h"
#include "sema/StructTable.h"
#include "support/Expected.h"

#include <map>
#include <memory>

namespace fearless {

/// Tuning knobs; defaults match the paper's configuration (liveness
/// oracle enabled, derivations emitted).
struct CheckerOptions {
  bool UseLivenessOracle = true;
  bool EmitDerivations = true;
  size_t UnifySearchLimit = 1 << 14;
  size_t MaxLoopIterations = 64;
};

/// Counters describing one function's check.
struct CheckStats {
  size_t VirtualSteps = 0;        ///< V/F rule applications.
  size_t UnifyCandidates = 0;     ///< Unification targets tried (§4.6).
  size_t LoopIterations = 0;      ///< While fixpoint refinements.
};

/// One successfully checked function.
struct CheckedFunction {
  FnSignature Sig;
  std::unique_ptr<DerivStep> Derivation; ///< Null if not emitted.
  CheckStats Stats;
};

/// A successfully checked program: everything the runtime and verifier
/// need.
struct CheckedProgram {
  const Program *Prog = nullptr;
  StructTable Structs;
  std::map<Symbol, FnSignature> Signatures;
  std::map<Symbol, CheckedFunction> Functions;
  /// Static operand type of every send expression (the τ of send-τ); the
  /// runtime pairs senders and receivers by exact type.
  std::map<const Expr *, Type> SendTypes;
};

/// Checks all functions of \p P. On failure the diagnostic names the rule
/// that could not be applied and the offending contexts.
Expected<CheckedProgram> checkProgram(const Program &P,
                                      const CheckerOptions &Opts = {});

/// Convenience: parse + sema + check. Returns the program (owned) and the
/// checked artifacts, or diagnostics rendered in the failure message.
struct FrontendResult {
  std::unique_ptr<Program> Prog;
  CheckedProgram Checked;
};
Expected<FrontendResult> checkSource(std::string_view Source,
                                     const CheckerOptions &Opts = {});

} // namespace fearless

#endif // FEARLESS_CHECKER_CHECKER_H
