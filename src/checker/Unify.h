//===- checker/Unify.h - Branch unification and conformance ----*- C++ -*-===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unification of typing contexts at control-flow merges (T13 If, T15
/// If-Disconnected, let-some, while back-edges) and conformance of a
/// context to a declared target (function exit vs. the signature output).
///
/// §4.6: unification cannot be purely greedy — the choice of which linear
/// resources to preserve affects whether the continuation checks. Two
/// strategies are provided:
///  - Oracle mode (§5.1): liveness of variables and iso fields determines
///    the tracked slots to keep; one candidate is built and conformed to.
///  - Naive mode: enumerate keep-subsets of the tracked slots (largest
///    first) until one unifies — worst-case exponential, reproducing the
///    complexity contrast of §4.6 (benchmarked in bench_checker).
///
//===----------------------------------------------------------------------===//

#ifndef FEARLESS_CHECKER_UNIFY_H
#define FEARLESS_CHECKER_UNIFY_H

#include "analysis/Liveness.h"
#include "checker/Derivation.h"
#include "regions/Contexts.h"
#include "support/Expected.h"

#include <vector>

namespace fearless {

/// Options controlling unification (a subset of CheckerOptions).
struct UnifyOptions {
  bool UseLivenessOracle = true;
  size_t SearchLimit = 1 << 14;
};

/// Ablation switches for the conformance engine's design choices
/// (DESIGN.md §"Key design decisions"; exercised by the ablation tests
/// and bench_checker). Production defaults: everything on.
struct ConformAblation {
  /// (b3): drop a whole region to eliminate tracking that cannot be
  /// retracted (preserves field-target capabilities such as the result's
  /// region). Without it, Fig. 5's remove_tail and pop_front fail.
  bool WholesaleDrops = true;
  /// (b): never retract a field whose target region the target context
  /// still needs (the live result, live variables). Without it, results
  /// that live under tracked fields are destroyed at merges.
  bool ProtectedGuard = true;
};

/// Process-wide ablation configuration (test/bench only; not thread-safe
/// against concurrent checking).
ConformAblation &conformAblation();

/// One branch arriving at a merge point.
struct BranchState {
  Contexts Ctx;
  RegionId ResultRegion; ///< Invalid when the result is a primitive.
  DerivStep *Sink = nullptr; ///< Derivation sink for this branch's steps.
};

/// The merged continuation state.
struct UnifyOutcome {
  Contexts Ctx;
  RegionId ResultRegion;
  size_t CandidatesTried = 0;
};

/// Drives \p Current to be equal (up to region renaming) to \p Target.
/// Anchors for the correspondence are the shared Γ variables, the tracked
/// field slots of Target, and the result regions. Mutates Current through
/// a VirtualEngine recording into \p Sink. Used for branch conformance and
/// for matching a function body's final context against the signature
/// output.
ExpectedVoid conformTo(Contexts &Current, RegionId &CurrentResult,
                       const Contexts &Target, RegionId TargetResult,
                       RegionSupply &Supply, const Interner &Names,
                       DerivStep *Sink, size_t *StepCounter, SourceLoc Loc);

/// Unifies the given branches into one continuation context. \p ResultType
/// is the merge's value type (anchor only when regionful); \p Cont is the
/// liveness information after the merge (oracle).
Expected<UnifyOutcome> unifyBranches(std::vector<BranchState> Branches,
                                     const Type &ResultType,
                                     const Continuation &Cont,
                                     const UnifyOptions &Opts,
                                     RegionSupply &Supply,
                                     const Interner &Names, SourceLoc Loc,
                                     size_t *StepCounter);

} // namespace fearless

#endif // FEARLESS_CHECKER_UNIFY_H
