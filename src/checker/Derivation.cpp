//===- checker/Derivation.cpp ---------------------------------------------===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//

#include "checker/Derivation.h"

#include "ast/AstPrinter.h"

#include <sstream>

using namespace fearless;

namespace {

void printStep(const DerivStep &Step, const Interner &Names,
               unsigned Indent, std::ostream &OS) {
  for (unsigned I = 0; I < Indent; ++I)
    OS << "  ";
  OS << Step.Rule;
  if (!Step.Detail.empty())
    OS << " [" << Step.Detail << "]";
  if (Step.E)
    OS << "  e = " << printExpr(*Step.E, Names);
  OS << "\n";
  for (unsigned I = 0; I < Indent; ++I)
    OS << "  ";
  OS << "  ⊢ " << toString(Step.Before, Names) << "\n";
  for (const auto &Child : Step.Children)
    printStep(*Child, Names, Indent + 1, OS);
  for (unsigned I = 0; I < Indent; ++I)
    OS << "  ";
  OS << "  ⊣ " << toString(Step.After, Names);
  if (Step.ResultType.isValid()) {
    OS << "  : ";
    if (Step.ResultRegion.isValid())
      OS << toString(Step.ResultRegion) << " ";
    OS << toString(Step.ResultType, Names);
  }
  OS << "\n";
}

} // namespace

std::string fearless::printDerivation(const DerivStep &Root,
                                      const Interner &Names) {
  std::ostringstream OS;
  printStep(Root, Names, 0, OS);
  return OS.str();
}

namespace {

/// Escapes a string for a dot label.
std::string dotEscape(const std::string &Text) {
  std::string Out;
  for (char C : Text) {
    if (C == '"' || C == '\\')
      Out += '\\';
    if (C == '\n') {
      Out += "\\n";
      continue;
    }
    Out += C;
  }
  return Out;
}

void dotStep(const DerivStep &Step, const Interner &Names, size_t &NextId,
             size_t Parent, std::ostream &OS) {
  size_t Id = NextId++;
  bool IsVirtual = !Step.Rule.empty() && Step.Rule[0] == 'V';
  bool IsFraming = !Step.Rule.empty() && Step.Rule[0] == 'F';
  std::string Label = Step.Rule;
  if (!Step.Detail.empty())
    Label += "\n" + Step.Detail;
  if (Step.E)
    Label += "\n" + printExpr(*Step.E, Names);
  Label += "\n⊣ " + toString(Step.After, Names);
  OS << "  n" << Id << " [label=\"" << dotEscape(Label) << "\", shape="
     << (IsVirtual ? "box, style=filled, fillcolor=lightblue"
         : IsFraming
             ? "box, style=filled, fillcolor=lightsalmon"
             : "box")
     << "];\n";
  if (Parent != SIZE_MAX)
    OS << "  n" << Parent << " -> n" << Id << ";\n";
  for (const auto &Child : Step.Children)
    dotStep(*Child, Names, NextId, Id, OS);
}

} // namespace

std::string fearless::printDerivationDot(const DerivStep &Root,
                                         const Interner &Names) {
  std::ostringstream OS;
  OS << "digraph derivation {\n"
     << "  node [fontname=\"monospace\", fontsize=9];\n"
     << "  rankdir=TB;\n";
  size_t NextId = 0;
  dotStep(Root, Names, NextId, SIZE_MAX, OS);
  OS << "}\n";
  return OS.str();
}

size_t fearless::countSteps(const DerivStep &Root, const char *Rule) {
  size_t Count = !Rule || Root.Rule == Rule ? 1 : 0;
  for (const auto &Child : Root.Children)
    Count += countSteps(*Child, Rule);
  return Count;
}
