//===- checker/Unify.cpp --------------------------------------------------===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//

#include "checker/Unify.h"

#include "checker/Virtual.h"
#include "regions/Canonical.h"

#include <algorithm>
#include <cassert>

using namespace fearless;

ConformAblation &fearless::conformAblation() {
  static ConformAblation Config;
  return Config;
}

namespace {

//===----------------------------------------------------------------------===//
// Anchors
//===----------------------------------------------------------------------===//

/// A point of correspondence between contexts: a Γ variable, a tracked
/// field slot, or the merge's result value.
struct Anchor {
  enum class Kind { Var, Slot, Result };
  Kind K = Kind::Var;
  Symbol Var;
  Symbol Field; ///< Valid iff K == Slot.

  bool operator<(const Anchor &Other) const {
    return std::tie(K, Var, Field) <
           std::tie(Other.K, Other.Var, Other.Field);
  }
  bool operator==(const Anchor &) const = default;
};

/// The region an anchor denotes in a context, or nullopt when the anchor
/// is undefined there (slot not tracked / primitive result).
std::optional<RegionId> anchorRegion(const Anchor &A, const Contexts &Ctx,
                                     RegionId Result) {
  switch (A.K) {
  case Anchor::Kind::Var: {
    const VarBinding *Binding = Ctx.Vars.lookup(A.Var);
    if (!Binding || !Binding->Region.isValid())
      return std::nullopt;
    return Binding->Region;
  }
  case Anchor::Kind::Slot: {
    auto Region = Ctx.Heap.trackingRegionOf(A.Var);
    if (!Region)
      return std::nullopt;
    const VarTrack *Track = Ctx.Heap.trackedVar(*Region, A.Var);
    auto It = Track->Fields.find(A.Field);
    if (It == Track->Fields.end())
      return std::nullopt;
    return It->second;
  }
  case Anchor::Kind::Result:
    if (!Result.isValid())
      return std::nullopt;
    return Result;
  }
  return std::nullopt;
}

/// Collects the anchors of a target context: all regionful Γ variables,
/// all tracked slots, and the result (when valid).
std::vector<Anchor> anchorsOf(const Contexts &Target, RegionId Result) {
  std::vector<Anchor> Anchors;
  for (const auto &[Var, Binding] : Target.Vars.entries())
    if (Binding.Region.isValid())
      Anchors.push_back(Anchor{Anchor::Kind::Var, Var, Symbol{}});
  for (const auto &[Region, Track] : Target.Heap.entries()) {
    (void)Region;
    for (const auto &[Var, VTrack] : Track.Vars)
      for (const auto &[Field, TargetRegion] : VTrack.Fields) {
        (void)TargetRegion;
        Anchors.push_back(Anchor{Anchor::Kind::Slot, Var, Field});
      }
  }
  if (Result.isValid())
    Anchors.push_back(Anchor{Anchor::Kind::Result, Symbol{}, Symbol{}});
  return Anchors;
}

/// Minimal union-find over anchor indices.
class UnionFind {
public:
  explicit UnionFind(size_t N) : Parent(N) {
    for (size_t I = 0; I < N; ++I)
      Parent[I] = I;
  }
  size_t find(size_t I) {
    while (Parent[I] != I) {
      Parent[I] = Parent[Parent[I]];
      I = Parent[I];
    }
    return I;
  }
  void merge(size_t A, size_t B) { Parent[find(A)] = find(B); }

private:
  std::vector<size_t> Parent;
};

} // namespace

//===----------------------------------------------------------------------===//
// conformTo
//===----------------------------------------------------------------------===//

ExpectedVoid fearless::conformTo(Contexts &Current,
                                 RegionId &CurrentResult,
                                 const Contexts &Target,
                                 RegionId TargetResult,
                                 RegionSupply &Supply,
                                 const Interner &Names, DerivStep *Sink,
                                 size_t *StepCounter, SourceLoc Loc) {
  VirtualEngine Engine(Current, Supply, Names, Sink, StepCounter);

  // (a) Ensure every tracking entry of the target exists in the current
  // context (focus / explore on demand).
  for (const auto &[Region, Track] : Target.Heap.entries()) {
    (void)Region;
    for (const auto &[Var, VTrack] : Track.Vars) {
      if (auto Err = Engine.ensureFocused(Var, Loc); !Err)
        return Err;
      for (const auto &[Field, TargetRegion] : VTrack.Fields) {
        (void)TargetRegion;
        // Only explore when the slot is genuinely missing; a dead slot in
        // the current context stays dead.
        auto CurRegion = Current.Heap.trackingRegionOf(Var);
        const VarTrack *CurTrack = Current.Heap.trackedVar(*CurRegion, Var);
        if (CurTrack->Fields.count(Field))
          continue;
        if (auto Explored = Engine.explore(Var, Field, Loc); !Explored)
          return Explored.takeFailure();
      }
    }
  }

  auto TargetTracksVar = [&](Symbol Var) -> const VarTrack * {
    auto Region = Target.Heap.trackingRegionOf(Var);
    return Region ? Target.Heap.trackedVar(*Region, Var) : nullptr;
  };

  // Protected regions: current regions of anchors that must stay valid
  // per the target. Retracting into them or dropping them would destroy
  // required capabilities.
  std::vector<Anchor> Anchors = anchorsOf(Target, TargetResult);
  auto ComputeProtected = [&]() {
    std::set<RegionId> Protected;
    for (const Anchor &A : Anchors) {
      auto TargetRegion = anchorRegion(A, Target, TargetResult);
      if (!TargetRegion || !Target.Heap.hasRegion(*TargetRegion))
        continue; // invalid in target: unprotected
      auto CurRegion = anchorRegion(A, Current, CurrentResult);
      if (CurRegion)
        Protected.insert(*CurRegion);
    }
    return Protected;
  };

  // (b) Best-effort release of tracking entries absent from the target:
  // retract unprotected targets, wholesale-drop regions whose tracking
  // cannot be retracted but whose objects the target no longer needs.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    std::set<RegionId> Protected = ComputeProtected();
    // Snapshot: (var, field) pairs and bare tracked vars.
    std::vector<std::pair<Symbol, Symbol>> ExtraFields;
    std::vector<Symbol> MaybeUnfocus;
    for (const auto &[Region, Track] : Current.Heap.entries()) {
      (void)Region;
      for (const auto &[Var, VTrack] : Track.Vars) {
        const VarTrack *TargetTrack = TargetTracksVar(Var);
        for (const auto &[Field, TargetRegion] : VTrack.Fields) {
          (void)TargetRegion;
          if (!TargetTrack || !TargetTrack->Fields.count(Field))
            ExtraFields.push_back({Var, Field});
        }
        if (!TargetTrack && VTrack.Fields.empty())
          MaybeUnfocus.push_back(Var);
      }
    }
    for (auto &[Var, Field] : ExtraFields) {
      auto Region = Current.Heap.trackingRegionOf(Var);
      if (!Region)
        continue;
      const VarTrack *Track = Current.Heap.trackedVar(*Region, Var);
      auto It = Track->Fields.find(Field);
      if (It == Track->Fields.end())
        continue;
      if (conformAblation().ProtectedGuard && Protected.count(It->second))
        continue; // The target still needs this region's capability.
      const RegionTrack *TargetRegionTrack = Current.Heap.lookup(It->second);
      if (!TargetRegionTrack || !TargetRegionTrack->empty() ||
          TargetRegionTrack->Pinned)
        continue; // Not retractable (yet, or at all).
      if (auto Err = Engine.retract(Var, Field, Loc); !Err)
        return Err;
      Changed = true;
    }
    for (Symbol Var : MaybeUnfocus) {
      auto Region = Current.Heap.trackingRegionOf(Var);
      if (!Region)
        continue;
      const VarTrack *Track = Current.Heap.trackedVar(*Region, Var);
      if (!Track->Fields.empty())
        continue;
      if (auto Err = Engine.unfocus(Var, Loc); !Err)
        return Err;
      Changed = true;
    }
    if (Changed)
      continue;
    // Wholesale drops: a variable whose tracking the target does not want
    // but whose fields could not all be retracted (e.g. they guard the
    // live result's region) loses its entire region — the objects become
    // inaccessible while field-target capabilities survive.
    if (!conformAblation().WholesaleDrops)
      continue;
    for (const auto &[Region, Track] : Current.Heap.entries()) {
      if (Track.Pinned || Track.Vars.empty())
        continue;
      if (Protected.count(Region))
        continue;
      bool AllUnwanted = true;
      for (const auto &[Var, VTrack] : Track.Vars) {
        (void)VTrack;
        if (TargetTracksVar(Var)) {
          AllUnwanted = false;
          break;
        }
      }
      if (!AllUnwanted)
        continue;
      if (auto Err = Engine.dropRegion(Region, Loc); !Err)
        return Err;
      Changed = true;
      break; // iterator invalidated
    }
  }

  // (c) Attach: anchors sharing a region in the target must share one in
  // the current context.
  std::map<RegionId, std::vector<const Anchor *>> TargetClasses;
  for (const Anchor &A : Anchors) {
    auto Region = anchorRegion(A, Target, TargetResult);
    if (Region && Target.Heap.hasRegion(*Region))
      TargetClasses[*Region].push_back(&A);
  }
  for (auto &[TargetRegion, Members] : TargetClasses) {
    (void)TargetRegion;
    RegionId First;
    for (const Anchor *A : Members) {
      auto CurRegion = anchorRegion(*A, Current, CurrentResult);
      if (!CurRegion || !Current.Heap.hasRegion(*CurRegion)) {
        std::string What =
            A->K == Anchor::Kind::Result
                ? std::string("the result")
                : A->K == Anchor::Kind::Var
                    ? "variable '" + Names.spelling(A->Var) + "'"
                    : "tracked field '" + Names.spelling(A->Var) + "." +
                          Names.spelling(A->Field) + "'";
        return fail("cannot unify: " + What +
                        " is invalid in one branch but required valid\n"
                        "  have: " + toString(Current, Names) +
                        "\n  want: " + toString(Target, Names),
                    Loc);
      }
      if (!First.isValid()) {
        First = *CurRegion;
        continue;
      }
      if (*CurRegion == First)
        continue;
      if (auto Err = Engine.attach(*CurRegion, First, Loc); !Err)
        return Err;
      if (CurrentResult == *CurRegion)
        CurrentResult = First;
    }
  }

  // (d) Validity: anchors valid here but invalid in the target lose their
  // region (weakening).
  for (const Anchor &A : Anchors) {
    auto TargetRegion = anchorRegion(A, Target, TargetResult);
    bool TargetValid = TargetRegion && Target.Heap.hasRegion(*TargetRegion);
    if (TargetValid)
      continue;
    auto CurRegion = anchorRegion(A, Current, CurrentResult);
    if (!CurRegion || !Current.Heap.hasRegion(*CurRegion))
      continue;
    if (auto Err = Engine.dropRegion(*CurRegion, Loc); !Err)
      return Err;
  }

  // (e) Pins: pin wherever the target is pinned (weakening). The converse
  // (current pinned, target unpinned) fails the final equality.
  for (auto &[TargetRegion, Members] : TargetClasses) {
    const RegionTrack *Track = Target.Heap.lookup(TargetRegion);
    if (!Track->Pinned)
      continue;
    auto CurRegion = anchorRegion(*Members.front(), Current, CurrentResult);
    if (CurRegion && Current.Heap.hasRegion(*CurRegion))
      if (auto Err = Engine.pinRegion(*CurRegion, Loc); !Err)
        return Err;
  }
  for (const auto &[Region, Track] : Target.Heap.entries()) {
    (void)Region;
    for (const auto &[Var, VTrack] : Track.Vars)
      if (VTrack.Pinned)
        if (auto Err = Engine.pinVar(Var, Loc); !Err)
          return Err;
  }

  // (f) Garbage-collect and compare.
  dropUnreachableRegions(Current, CurrentResult);
  if (!equivalentUpToRenaming(Current, CurrentResult, Target,
                              TargetResult))
    return fail("contexts do not unify:\n  have: " +
                    toString(Current, Names) + "\n  want: " +
                    toString(Target, Names),
                Loc);
  return success();
}

//===----------------------------------------------------------------------===//
// Meet construction
//===----------------------------------------------------------------------===//

namespace {

using Slot = std::pair<Symbol, Symbol>;

/// All tracked slots across the branches.
std::set<Slot> slotUnion(const std::vector<BranchState> &Branches) {
  std::set<Slot> Union;
  for (const BranchState &B : Branches)
    for (const auto &[Region, Track] : B.Ctx.Heap.entries()) {
      (void)Region;
      for (const auto &[Var, VTrack] : Track.Vars)
        for (const auto &[Field, Target] : VTrack.Fields) {
          (void)Target;
          Union.insert({Var, Field});
        }
    }
  return Union;
}

/// Slots that cannot be eliminated in some branch: their target region is
/// dead there *and* the hosting variable is wanted (live or a parameter),
/// so conformance can neither retract the field nor wholesale-drop the
/// host region.
std::set<Slot> forcedSlots(const std::vector<BranchState> &Branches,
                           const Continuation &Cont) {
  std::set<Slot> Forced;
  for (const BranchState &B : Branches)
    for (const auto &[Region, Track] : B.Ctx.Heap.entries()) {
      (void)Region;
      for (const auto &[Var, VTrack] : Track.Vars) {
        if (!Cont.wants(Var))
          continue;
        for (const auto &[Field, Target] : VTrack.Fields)
          if (!B.Ctx.Heap.hasRegion(Target))
            Forced.insert({Var, Field});
      }
    }
  return Forced;
}

/// The liveness oracle (§5.1): slots to keep across the merge.
///
/// A slot (x, f) is kept only when x is *wanted* (live or a parameter):
/// unwanted hosts can always be dropped wholesale, which preserves their
/// field-target capabilities. A wanted host's region cannot be dropped,
/// so its slot must be kept whenever retracting would destroy a needed
/// capability: the continuation reads x.f, the field is invalidated (the
/// reassignment obligation must survive), or the target region carries a
/// live variable, the live result, or another kept slot's tracking.
std::set<Slot> neededSlots(const std::vector<BranchState> &Branches,
                           const Continuation &Cont) {
  std::set<Slot> Needed = forcedSlots(Branches, Cont);
  std::set<Slot> Union = slotUnion(Branches);
  for (const Slot &S : Union)
    if (Cont.wants(S.first) && Cont.Live.usesField(S.first, S.second))
      Needed.insert(S);

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const Slot &S : Union) {
      if (Needed.count(S) || !Cont.wants(S.first))
        continue;
      for (const BranchState &B : Branches) {
        auto Region = B.Ctx.Heap.trackingRegionOf(S.first);
        if (!Region)
          continue;
        const VarTrack *Track = B.Ctx.Heap.trackedVar(*Region, S.first);
        auto It = Track->Fields.find(S.second);
        if (It == Track->Fields.end())
          continue;
        RegionId Target = It->second;
        if (!B.Ctx.Heap.hasRegion(Target))
          continue; // dead: handled by forcedSlots
        bool Matters = false;
        // Live variable bound to the target region?
        for (Symbol LiveVar : Cont.Live.Vars) {
          const VarBinding *Binding = B.Ctx.Vars.lookup(LiveVar);
          if (Binding && Binding->Region == Target) {
            Matters = true;
            break;
          }
        }
        // Live result in the target region?
        if (!Matters && Cont.ResultLive && B.ResultRegion == Target)
          Matters = true;
        // Kept tracking hosted by a *wanted* variable in the target
        // region? (An unwanted host's region would be dropped wholesale,
        // preserving capabilities, so it does not force this slot.)
        if (!Matters) {
          const RegionTrack *TT = B.Ctx.Heap.lookup(Target);
          for (const auto &[HostedVar, HostedTrack] : TT->Vars) {
            if (!Cont.wants(HostedVar))
              continue;
            for (const auto &[HostedField, HostedTarget] :
                 HostedTrack.Fields) {
              (void)HostedTarget;
              if (Needed.count({HostedVar, HostedField})) {
                Matters = true;
                break;
              }
            }
            if (Matters)
              break;
          }
        }
        if (Matters) {
          Needed.insert(S);
          Changed = true;
          break;
        }
      }
    }
  }
  return Needed;
}

/// Builds the meet context M for the given keep-set of slots. Returns the
/// meet and its result region.
struct Meet {
  Contexts Ctx;
  RegionId ResultRegion;
};

Meet buildMeet(const std::vector<BranchState> &Branches,
               const std::set<Slot> &Keep, const Type &ResultType,
               const Continuation &Cont, RegionSupply &Supply) {
  assert(!Branches.empty());
  const Contexts &First = Branches.front().Ctx;

  // Variables hosting kept slots must stay valid (their tracking lives in
  // their region).
  std::set<Symbol> SlotHosts;
  for (const Slot &S : Keep)
    SlotHosts.insert(S.first);

  // Anchor list: regionful Γ variables, kept slots, result.
  std::vector<Anchor> Anchors;
  for (const auto &[Var, Binding] : First.Vars.entries())
    if (Binding.Region.isValid())
      Anchors.push_back(Anchor{Anchor::Kind::Var, Var, Symbol{}});
  for (const Slot &S : Keep)
    Anchors.push_back(Anchor{Anchor::Kind::Slot, S.first, S.second});
  bool HasResult = ResultType.isRegionful();
  if (HasResult)
    Anchors.push_back(Anchor{Anchor::Kind::Result, Symbol{}, Symbol{}});

  // Partition join across branches.
  UnionFind Classes(Anchors.size());
  for (const BranchState &B : Branches) {
    std::map<RegionId, size_t> Rep;
    for (size_t I = 0; I < Anchors.size(); ++I) {
      auto Region = anchorRegion(Anchors[I], B.Ctx, B.ResultRegion);
      if (!Region || !B.Ctx.Heap.hasRegion(*Region))
        continue; // undefined or invalid: unconstrained here
      auto [It, Inserted] = Rep.emplace(*Region, I);
      if (!Inserted)
        Classes.merge(I, It->second);
    }
  }

  // Class validity: every defined member region present in every branch,
  // *and* the class is wanted — it contains the result, a kept slot, or
  // a wanted variable (live, parameter, or slot host). Unwanted classes
  // are invalidated: dropping a dead variable's region wholesale is how
  // conformance eliminates tracking it cannot retract.
  std::map<size_t, bool> ClassValid;
  std::map<size_t, bool> ClassPinned;
  std::map<size_t, bool> ClassWanted;
  for (size_t I = 0; I < Anchors.size(); ++I) {
    size_t C = Classes.find(I);
    ClassValid.emplace(C, true);
    ClassPinned.emplace(C, false);
    ClassWanted.emplace(C, false);
    const Anchor &A = Anchors[I];
    if (A.K == Anchor::Kind::Result || A.K == Anchor::Kind::Slot ||
        (A.K == Anchor::Kind::Var &&
         (Cont.wants(A.Var) || SlotHosts.count(A.Var))))
      ClassWanted[C] = true;
    for (const BranchState &B : Branches) {
      auto Region = anchorRegion(A, B.Ctx, B.ResultRegion);
      if (!Region)
        continue; // slot missing: will be explored fresh (valid)
      const RegionTrack *Track = B.Ctx.Heap.lookup(*Region);
      if (!Track)
        ClassValid[C] = false;
      else if (Track->Pinned)
        ClassPinned[C] = true;
    }
  }
  for (auto &[C, Valid] : ClassValid)
    if (!ClassWanted[C])
      Valid = false;

  // Assign meet regions.
  Meet M;
  RegionId DeadId = Supply.fresh(); // never added to M's H
  std::map<size_t, RegionId> ClassRegion;
  for (size_t I = 0; I < Anchors.size(); ++I) {
    size_t C = Classes.find(I);
    if (ClassRegion.count(C))
      continue;
    if (ClassValid[C]) {
      RegionId R = Supply.fresh();
      M.Ctx.Heap.addRegion(R);
      M.Ctx.Heap.lookup(R)->Pinned = ClassPinned[C];
      ClassRegion[C] = R;
    } else {
      ClassRegion[C] = DeadId;
    }
  }

  auto RegionOfAnchor = [&](const Anchor &A) {
    auto It = std::find(Anchors.begin(), Anchors.end(), A);
    assert(It != Anchors.end());
    return ClassRegion.at(
        Classes.find(static_cast<size_t>(It - Anchors.begin())));
  };

  // Γ.
  for (const auto &[Var, Binding] : First.Vars.entries()) {
    VarBinding NewBinding = Binding;
    if (Binding.Region.isValid())
      NewBinding.Region =
          RegionOfAnchor(Anchor{Anchor::Kind::Var, Var, Symbol{}});
    M.Ctx.Vars.bind(Var, NewBinding);
  }

  // Tracking: kept slots, grouped per variable. A slot on a variable whose
  // class is dead is omitted (conformance drops the region wholesale).
  // Variable pin: OR over branches.
  for (const Slot &S : Keep) {
    RegionId HostRegion =
        RegionOfAnchor(Anchor{Anchor::Kind::Var, S.first, Symbol{}});
    if (!M.Ctx.Heap.hasRegion(HostRegion))
      continue;
    RegionTrack *Track = M.Ctx.Heap.lookup(HostRegion);
    VarTrack &VTrack = Track->Vars[S.first];
    for (const BranchState &B : Branches) {
      auto Region = B.Ctx.Heap.trackingRegionOf(S.first);
      if (!Region)
        continue;
      if (B.Ctx.Heap.trackedVar(*Region, S.first)->Pinned)
        VTrack.Pinned = true;
    }
    VTrack.Fields[S.second] =
        RegionOfAnchor(Anchor{Anchor::Kind::Slot, S.first, S.second});
  }

  M.ResultRegion =
      HasResult
          ? RegionOfAnchor(Anchor{Anchor::Kind::Result, Symbol{}, Symbol{}})
          : RegionId();
  return M;
}

} // namespace

//===----------------------------------------------------------------------===//
// unifyBranches
//===----------------------------------------------------------------------===//

Expected<UnifyOutcome> fearless::unifyBranches(
    std::vector<BranchState> Branches, const Type &ResultType,
    const Continuation &Cont, const UnifyOptions &Opts,
    RegionSupply &Supply, const Interner &Names, SourceLoc Loc,
    size_t *StepCounter) {
  assert(!Branches.empty() && "unifying zero branches");

  // Γ domains must agree (the checker closes scopes before merging).
  for (const BranchState &B : Branches)
    for (const auto &[Var, Binding] : B.Ctx.Vars.entries()) {
      (void)Binding;
      if (!Branches.front().Ctx.Vars.contains(Var))
        return fail("internal: branch variable domains differ at merge",
                    Loc);
    }

  if (Branches.size() == 1) {
    UnifyOutcome Out;
    Out.Ctx = std::move(Branches.front().Ctx);
    Out.ResultRegion = Branches.front().ResultRegion;
    dropUnreachableRegions(Out.Ctx, Out.ResultRegion);
    return Out;
  }

  auto TryKeepSet = [&](const std::set<Slot> &Keep, bool Apply,
                        std::string *Error) -> bool {
    Meet M = buildMeet(Branches, Keep, ResultType, Cont, Supply);
    if (getenv("FEARLESS_DEBUG_UNIFY")) {
      fprintf(stderr, "[unify] meet: %s result=%s\n",
              toString(M.Ctx, Names).c_str(),
              toString(M.ResultRegion).c_str());
      for (auto &B : Branches)
        fprintf(stderr, "[unify] branch: %s result=%s\n",
                toString(B.Ctx, Names).c_str(),
                toString(B.ResultRegion).c_str());
    }
    for (BranchState &B : Branches) {
      Contexts Copy = B.Ctx;
      RegionId CopyResult = B.ResultRegion;
      auto Err = conformTo(Copy, CopyResult, M.Ctx, M.ResultRegion,
                           Supply, Names, nullptr, nullptr, Loc);
      if (!Err) {
        if (Error)
          *Error = Err.error().Message;
        return false;
      }
    }
    if (!Apply)
      return true;
    for (BranchState &B : Branches) {
      auto Err = conformTo(B.Ctx, B.ResultRegion, M.Ctx, M.ResultRegion,
                           Supply, Names, B.Sink, StepCounter, Loc);
      assert(Err && "conformance succeeded on copy but failed on branch");
      (void)Err;
      // Each branch keeps its own (equivalent) region names; the result
      // region stays whatever it was in that branch.
    }
    return true;
  };

  UnifyOutcome Out;
  std::string FirstError;

  if (Opts.UseLivenessOracle) {
    std::set<Slot> Keep = neededSlots(Branches, Cont);
    ++Out.CandidatesTried;
    if (TryKeepSet(Keep, /*Apply=*/true, &FirstError)) {
      // The branches now all equal the meet up to renaming; continue with
      // branch 0's conformed context (concrete names consistent with Γ).
      Out.Ctx = Branches.front().Ctx;
      Out.ResultRegion = Branches.front().ResultRegion;
      return Out;
    }
    // Fall through to search.
  }

  // Backtracking search over keep-subsets (largest first), as §4.6's
  // worst-case procedure.
  std::set<Slot> Union = slotUnion(Branches);
  std::set<Slot> Forced = forcedSlots(Branches, Cont);
  std::vector<Slot> Optional;
  for (const Slot &S : Union)
    if (!Forced.count(S))
      Optional.push_back(S);

  if (Optional.size() > 24)
    return fail("branch unification search space too large (" +
                    std::to_string(Optional.size()) + " tracked slots)",
                Loc);

  size_t N = Optional.size();
  // Enumerate subsets by ascending size. Keeping too little fails *at the
  // merge* (the conformance guards protect live capabilities), while
  // keeping too much only fails later (scope exits, signature outputs) —
  // so smallest-first is the complete order that needs no continuation
  // backtracking.
  for (size_t KeepCount = 0; KeepCount <= N; ++KeepCount) {
    // Iterate combinations of size KeepCount via bitmask enumeration.
    std::vector<bool> Select(N, false);
    std::fill(Select.begin(), Select.begin() + KeepCount, true);
    do {
      if (Out.CandidatesTried >= Opts.SearchLimit)
        return fail("branch unification exceeded the search limit (" +
                        std::to_string(Opts.SearchLimit) + " candidates)" +
                        (FirstError.empty() ? "" : "; first failure: " +
                                                       FirstError),
                    Loc);
      std::set<Slot> Keep = Forced;
      for (size_t I = 0; I < N; ++I)
        if (Select[I])
          Keep.insert(Optional[I]);
      ++Out.CandidatesTried;
      std::string Error;
      if (TryKeepSet(Keep, /*Apply=*/true, &Error)) {
        Out.Ctx = Branches.front().Ctx;
        Out.ResultRegion = Branches.front().ResultRegion;
        return Out;
      }
      if (FirstError.empty())
        FirstError = Error;
    } while (std::prev_permutation(Select.begin(), Select.end()));
  }

  return fail("branches do not unify" +
                  (FirstError.empty() ? std::string()
                                      : ": " + FirstError),
              Loc);
}
