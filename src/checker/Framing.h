//===- checker/Framing.h - Call-site framing and instantiation -*- C++ -*-===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// T9 Function-Application: matches the caller's context against a
/// signature's input (up to renaming of variables and regions), framing
/// away everything irrelevant (TS2), and applies the signature's output
/// effects — consumed regions dropped, `after:` merges attached, the
/// result region introduced.
///
/// Framing is implicit: regions not mapped to signature regions are simply
/// left untouched (they are the frame). Pinned parameters are the one case
/// where framing carries information across the call: the callee promises
/// not to focus into, merge, or consume a pinned region, so the caller's
/// tracking details for it survive unchanged.
///
//===----------------------------------------------------------------------===//

#ifndef FEARLESS_CHECKER_FRAMING_H
#define FEARLESS_CHECKER_FRAMING_H

#include "checker/Derivation.h"
#include "regions/Contexts.h"
#include "sema/Signature.h"
#include "support/Expected.h"

#include <map>
#include <vector>

namespace fearless {

/// Result of instantiating a signature at a call site.
struct CallInstantiation {
  /// Signature input region -> caller region.
  std::map<RegionId, RegionId> SigToCaller;
  /// Caller-side region of the call's result (invalid for primitives).
  RegionId ResultRegion;
};

/// Matches \p Ctx against \p Sig's input for the argument variables
/// \p ArgVars (one entry per parameter; the invalid Symbol for primitive
/// arguments), mutating \p Ctx to conform (release / focus / explore on
/// demand, all recorded), verifies the match, and applies the output
/// effects. Type agreement of arguments is the caller's responsibility.
Expected<CallInstantiation>
applySignature(Contexts &Ctx, const FnSignature &Sig,
               const std::vector<Symbol> &ArgVars, RegionSupply &Supply,
               const Interner &Names, DerivStep *Sink, size_t *StepCounter,
               SourceLoc Loc);

} // namespace fearless

#endif // FEARLESS_CHECKER_FRAMING_H
