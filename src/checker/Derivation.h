//===- checker/Derivation.h - Explicit typing derivations -------*- C++ -*-===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The checker (the "prover" of §5) emits an explicit derivation: a tree
/// of rule applications, each recording the full input and output contexts
/// and, for expression rules, the result region and type. The independent
/// verifier re-checks every node against the declarative rules without
/// trusting the prover's search — mirroring the paper's OCaml-prover /
/// Coq-verifier architecture.
///
//===----------------------------------------------------------------------===//

#ifndef FEARLESS_CHECKER_DERIVATION_H
#define FEARLESS_CHECKER_DERIVATION_H

#include "ast/Ast.h"
#include "regions/Contexts.h"

#include <memory>
#include <string>
#include <vector>

namespace fearless {

/// Names of rules as they appear in derivations. Kept as strings for
/// direct correspondence with the paper's rule labels.
namespace rules {
inline constexpr const char *V1Focus = "V1-Focus";
inline constexpr const char *V2Unfocus = "V2-Unfocus";
inline constexpr const char *V3Explore = "V3-Explore";
inline constexpr const char *V4Retract = "V4-Retract";
inline constexpr const char *V5Attach = "V5-Attach";
inline constexpr const char *FDropRegion = "F-Drop-Region";
inline constexpr const char *FPinRegion = "F-Pin-Region";
} // namespace rules

/// One derivation node. Expression rules carry the expression and result;
/// virtual-transformation / framing steps carry only contexts.
struct DerivStep {
  std::string Rule;
  std::string Detail; ///< Human-readable instantiation, e.g. "focus x in r3".
  const Expr *E = nullptr;
  Contexts Before;
  Contexts After;
  RegionId ResultRegion; ///< Invalid for primitives and V/F steps.
  Type ResultType;       ///< Invalid for V/F steps.
  std::vector<std::unique_ptr<DerivStep>> Children;

  DerivStep *addChild(std::unique_ptr<DerivStep> Child) {
    Children.push_back(std::move(Child));
    return Children.back().get();
  }
};

/// Renders the derivation tree, indented, for debugging and docs.
std::string printDerivation(const DerivStep &Root, const Interner &Names);

/// Renders the derivation as a Graphviz digraph: one node per rule
/// application (virtual transformations highlighted), labeled with the
/// rule, the instantiation detail, and the output context.
std::string printDerivationDot(const DerivStep &Root,
                               const Interner &Names);

/// Counts nodes whose rule name matches \p Rule (nullptr: all nodes).
size_t countSteps(const DerivStep &Root, const char *Rule = nullptr);

} // namespace fearless

#endif // FEARLESS_CHECKER_DERIVATION_H
