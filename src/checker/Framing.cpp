//===- checker/Framing.cpp ------------------------------------------------===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//

#include "checker/Framing.h"

#include "checker/Virtual.h"

#include <cassert>
#include <set>

using namespace fearless;

Expected<CallInstantiation> fearless::applySignature(
    Contexts &Ctx, const FnSignature &Sig,
    const std::vector<Symbol> &ArgVars, RegionSupply &Supply,
    const Interner &Names, DerivStep *Sink, size_t *StepCounter,
    SourceLoc Loc) {
  assert(Sig.Decl && ArgVars.size() == Sig.Decl->Params.size() &&
         "argument count mismatch reaches applySignature");
  VirtualEngine Engine(Ctx, Supply, Names, Sink, StepCounter);
  CallInstantiation Inst;

  // Map parameter regions to caller regions. Parameters in distinct
  // signature regions need distinct caller regions; parameters sharing a
  // signature region (a `before:` relation) need the *same* caller
  // region.
  std::map<RegionId, Symbol> CallerRegionUsed; // caller region -> arg
  std::map<Symbol, Symbol> ParamToArg;
  for (size_t I = 0; I < ArgVars.size(); ++I) {
    const ParamDecl &Param = Sig.Decl->Params[I];
    if (!Param.ParamType.isRegionful())
      continue;
    Symbol Arg = ArgVars[I];
    assert(Arg.isValid() && "regionful parameter without a variable arg");
    ParamToArg[Param.Name] = Arg;
    const VarBinding *Binding = Ctx.Vars.lookup(Arg);
    if (!Binding)
      return fail("argument '" + Names.spelling(Arg) + "' is not bound",
                  Loc);
    RegionId CallerRegion = Binding->Region;
    if (!Ctx.Heap.hasRegion(CallerRegion))
      return fail("argument '" + Names.spelling(Arg) +
                      "' is no longer in the reservation",
                  Loc);
    RegionId SigRegion = Sig.ParamRegion.at(Param.Name);
    auto [MapIt, MapInserted] =
        Inst.SigToCaller.emplace(SigRegion, CallerRegion);
    if (!MapInserted) {
      if (MapIt->second != CallerRegion)
        return fail("argument '" + Names.spelling(Arg) +
                        "' must share a region with its 'before'-related "
                        "argument, but does not",
                    Loc);
      continue; // shared region already processed
    }
    auto [UsedIt, UsedInserted] =
        CallerRegionUsed.emplace(CallerRegion, Arg);
    if (!UsedInserted)
      return fail("arguments '" + Names.spelling(UsedIt->second) +
                      "' and '" + Names.spelling(Arg) +
                      "' may alias (same region); the callee expects "
                      "separate regions",
                  Loc);
  }

  // Conform each signature input region to its declared shape. Iterate
  // over distinct signature regions (before-shared parameters map to one).
  std::set<RegionId> SeenSigRegions;
  for (const auto &[ParamName, SigRegion] : Sig.ParamRegion) {
    (void)ParamName;
    if (!SeenSigRegions.insert(SigRegion).second)
      continue;
    RegionId CallerRegion = Inst.SigToCaller.at(SigRegion);
    const RegionTrack *SigTrack = Sig.Input.Heap.lookup(SigRegion);
    assert(SigTrack && "parameter region missing from signature input");

    if (SigTrack->Pinned) {
      // Framed: the callee sees a pinned, empty view; the caller's
      // tracking details survive untouched.
      continue;
    }
    const RegionTrack *CallerTrack = Ctx.Heap.lookup(CallerRegion);
    if (CallerTrack->Pinned)
      return fail("argument region " + toString(CallerRegion) +
                      " is pinned, but the callee needs it unpinned",
                  Loc);

    if (SigTrack->Vars.empty()) {
      // Default: empty tracking context required.
      if (auto Err = Engine.releaseRegion(CallerRegion, Loc); !Err)
        return Err.takeFailure();
      continue;
    }

    // Focused parameter(s): the caller must track exactly the signature's
    // variables (mapped to the argument names) with exactly the
    // signature's fields. Release everything else first.
    std::map<Symbol, const VarTrack *> Wanted; // arg var -> sig track
    for (const auto &[SigVar, SigVarTrack] : SigTrack->Vars) {
      auto ArgIt = ParamToArg.find(SigVar);
      assert(ArgIt != ParamToArg.end() &&
             "signature input tracks a non-parameter");
      Wanted.emplace(ArgIt->second, &SigVarTrack);
    }
    while (true) {
      const RegionTrack *Current = Ctx.Heap.lookup(CallerRegion);
      Symbol Other;
      for (const auto &[Var, VTrack] : Current->Vars) {
        (void)VTrack;
        if (!Wanted.count(Var)) {
          Other = Var;
          break;
        }
      }
      if (!Other.isValid())
        break;
      if (auto Err = Engine.releaseVar(Other, Loc); !Err)
        return Err.takeFailure();
    }
    for (const auto &[Arg, SigVarTrack] : Wanted) {
      if (auto Err = Engine.ensureFocused(Arg, Loc); !Err)
        return Err.takeFailure();
      // Extra fields beyond the signature: release them.
      while (true) {
        const VarTrack *Track = Ctx.Heap.trackedVar(CallerRegion, Arg);
        Symbol Extra;
        RegionId ExtraTarget;
        for (const auto &[Field, Target] : Track->Fields) {
          if (!SigVarTrack->Fields.count(Field)) {
            Extra = Field;
            ExtraTarget = Target;
            break;
          }
        }
        if (!Extra.isValid())
          break;
        if (Ctx.Heap.hasRegion(ExtraTarget) &&
            !Ctx.Heap.lookup(ExtraTarget)->empty())
          if (auto Err = Engine.releaseRegion(ExtraTarget, Loc); !Err)
            return Err.takeFailure();
        if (auto Err = Engine.retract(Arg, Extra, Loc); !Err)
          return Err.takeFailure();
      }
      // Required fields: track them and conform their target regions.
      for (const auto &[Field, SigTarget] : SigVarTrack->Fields) {
        Expected<RegionId> CallerTarget =
            Engine.ensureFieldTracked(Arg, Field, Loc);
        if (!CallerTarget)
          return CallerTarget.takeFailure();
        if (!Ctx.Heap.hasRegion(*CallerTarget))
          return fail("argument field '" + Names.spelling(Arg) + "." +
                          Names.spelling(Field) +
                          "' was invalidated; reassign it before the call",
                      Loc);
        const RegionTrack *SigTargetTrack =
            Sig.Input.Heap.lookup(SigTarget);
        assert(SigTargetTrack && "signature field target missing");
        if (!SigTargetTrack->Pinned && SigTargetTrack->empty()) {
          // Field targets declared as plain empty regions must arrive
          // empty. (Targets that are themselves focused parameter regions
          // are conformed by the region loop instead.)
          if (auto Err = Engine.releaseRegion(*CallerTarget, Loc); !Err)
            return Err.takeFailure();
        }
        auto [It, Inserted] =
            Inst.SigToCaller.emplace(SigTarget, *CallerTarget);
        if (!Inserted && It->second != *CallerTarget)
          return fail("argument fields that the callee expects to share "
                          "a region do not",
                      Loc);
      }
    }
  }

  // Output effects. First the `after:` merges: input regions whose output
  // images coincide must be attached in the caller. Attaches rename
  // caller regions, so keep the instantiation maps current.
  std::map<RegionId, RegionId> OutputToCaller;
  auto RenameCaller = [&](RegionId From, RegionId To) {
    for (auto &[SigRegion, CallerRegion] : Inst.SigToCaller)
      if (CallerRegion == From)
        CallerRegion = To;
    for (auto &[SigRegion, CallerRegion] : OutputToCaller)
      if (CallerRegion == From)
        CallerRegion = To;
  };
  for (const auto &[SigIn, SigOut] : Sig.OutputImage) {
    if (!SigOut.isValid())
      continue; // consumed; handled below
    auto MappedIt = Inst.SigToCaller.find(SigIn);
    if (MappedIt == Inst.SigToCaller.end())
      continue;
    RegionId CallerRegion = MappedIt->second;
    auto [It, Inserted] = OutputToCaller.emplace(SigOut, CallerRegion);
    if (Inserted || It->second == CallerRegion)
      continue;
    RegionId To = It->second;
    if (auto Err = Engine.attach(CallerRegion, To, Loc); !Err)
      return Err.takeFailure();
    RenameCaller(CallerRegion, To);
  }

  // Consumed parameters: their caller regions leave the reservation.
  for (const auto &[SigIn, SigOut] : Sig.OutputImage) {
    if (SigOut.isValid())
      continue;
    auto MappedIt = Inst.SigToCaller.find(SigIn);
    assert(MappedIt != Inst.SigToCaller.end() &&
           "consumed region was not an input region");
    if (Ctx.Heap.hasRegion(MappedIt->second))
      if (auto Err = Engine.dropRegion(MappedIt->second, Loc); !Err)
        return Err.takeFailure();
  }

  // Result region.
  if (Sig.ResultRegion.isValid()) {
    auto It = OutputToCaller.find(Sig.ResultRegion);
    if (It != OutputToCaller.end()) {
      Inst.ResultRegion = It->second;
    } else {
      Inst.ResultRegion = Supply.fresh();
      Ctx.Heap.addRegion(Inst.ResultRegion);
    }
  }
  return Inst;
}
