//===- checker/Checker.cpp ------------------------------------------------===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//

#include "checker/Checker.h"

#include "analysis/Liveness.h"
#include "ast/AstPrinter.h"
#include "checker/Framing.h"
#include "checker/Unify.h"
#include "checker/Virtual.h"
#include "parser/Parser.h"
#include "regions/Canonical.h"
#include "sema/Resolver.h"

#include <cassert>

using namespace fearless;

namespace {

/// The region and type of a checked expression.
struct ExprResult {
  RegionId Region; ///< Invalid for primitive-typed results.
  Type Ty;
};

/// Checks one function body against its elaborated signature.
class FnChecker {
public:
  FnChecker(const Program &P, const StructTable &Structs,
            const std::map<Symbol, FnSignature> &Signatures,
            const CheckerOptions &Opts, UseCache &Uses,
            RegionSupply &Supply, std::map<const Expr *, Type> &SendTypes)
      : P(P), Structs(Structs), Signatures(Signatures), Opts(Opts),
        Uses(Uses), Supply(Supply), SendTypes(SendTypes) {}

  Expected<CheckedFunction> run(const FnDecl &F) {
    auto SigIt = Signatures.find(F.Name);
    assert(SigIt != Signatures.end() && "signature missing");
    const FnSignature &Sig = SigIt->second;
    ReturnType = Sig.ReturnType;
    Ctx = Sig.Input;

    CheckedFunction Out;
    Out.Sig = Sig;
    std::unique_ptr<DerivStep> Root;
    if (Opts.EmitDerivations) {
      Root = std::make_unique<DerivStep>();
      Root->Rule = "T0-Function-Definition";
      Root->Detail = P.Names.spelling(F.Name);
      Root->E = F.Body.get();
      Root->Before = Ctx;
      CurrentSink = Root.get();
    }

    Continuation Cont;
    Cont.ResultLive = true;
    for (const ParamDecl &Param : F.Params)
      if (Param.ParamType.isRegionful())
        Cont.AlwaysValid.insert(Param.Name);
    Expected<ExprResult> Res = check(*F.Body, Cont, &ReturnType);
    if (!Res)
      return Failure{prefix(F, Res.error())};
    if (!(Res->Ty == ReturnType))
      return Failure{prefix(
          F, fail("function body has type " + toString(Res->Ty, P.Names) +
                      " but the declared return type is " +
                      toString(ReturnType, P.Names),
                  F.Loc)
                 .Diag)};

    RegionId FinalResult = Res->Region;
    if (auto Err = conformTo(Ctx, FinalResult, Sig.Output,
                             Sig.ResultRegion, Supply, P.Names,
                             CurrentSink, &Stats.VirtualSteps, F.Loc);
        !Err)
      return Failure{prefix(F, Err.error())};

    if (Root) {
      Root->After = Ctx;
      Root->ResultRegion = Res->Region;
      Root->ResultType = Res->Ty;
      Out.Derivation = std::move(Root);
    }
    Out.Stats = Stats;
    return Out;
  }

private:
  Diagnostic prefix(const FnDecl &F, Diagnostic D) {
    D.Message = "in function '" + P.Names.spelling(F.Name) + "': " +
                D.Message;
    return D;
  }

  VirtualEngine engine() {
    return VirtualEngine(Ctx, Supply, P.Names,
                         Opts.EmitDerivations ? CurrentSink : nullptr,
                         &Stats.VirtualSteps);
  }

  Expected<const StructInfo *> structOf(const Type &Ty, SourceLoc Loc) {
    if (!Ty.isStruct())
      return fail("expected a (non-maybe) struct value, found " +
                      toString(Ty, P.Names) +
                      (Ty.isMaybe() ? " (unwrap it with 'let some(..)')"
                                    : ""),
                  Loc);
    const StructInfo *Info = Structs.lookup(Ty.StructName);
    assert(Info && "resolver admitted unknown struct");
    return Info;
  }

  //===--------------------------------------------------------------------===
  // Scope and rebinding hygiene
  //===--------------------------------------------------------------------===

  /// Eliminates the tracking of \p Var (scope exit or rebinding): retracts
  /// fields whose target regions the continuation does not need, and
  /// otherwise wholesale-drops Var's region so that needed field-target
  /// capabilities (e.g. the result's region) survive.
  ExpectedVoid clearVarTracking(Symbol Var, const Continuation &Cont,
                                RegionId Protect, SourceLoc Loc) {
    auto TrackRegion = Ctx.Heap.trackingRegionOf(Var);
    if (!TrackRegion)
      return success();
    VirtualEngine Engine = engine();

    auto NeededRegion = [&](RegionId R) {
      if (R == Protect)
        return true;
      // Wanted variables (live, or parameters whose capability the
      // signature output mentions) pin their regions.
      for (const auto &[Other, Binding] : Ctx.Vars.entries()) {
        if (Other == Var || !Cont.wants(Other))
          continue;
        if (Binding.Region == R)
          return true;
      }
      // Regions targeted by another variable's tracked field must stay:
      // retracting or dropping them would invalidate that field.
      for (const auto &[Region, Track] : Ctx.Heap.entries()) {
        (void)Region;
        for (const auto &[Other, VTrack] : Track.Vars) {
          if (Other == Var)
            continue;
          for (const auto &[Field, Target] : VTrack.Fields) {
            (void)Field;
            if (Target == R)
              return true;
          }
        }
      }
      return false;
    };

    bool Changed = true;
    while (Changed) {
      Changed = false;
      const VarTrack *Track = Ctx.Heap.trackedVar(*TrackRegion, Var);
      assert(Track && "tracking vanished");
      std::vector<std::pair<Symbol, RegionId>> Fields(
          Track->Fields.begin(), Track->Fields.end());
      for (auto &[Field, Target] : Fields) {
        if (!Ctx.Heap.hasRegion(Target) || NeededRegion(Target))
          continue;
        if (!Ctx.Heap.lookup(Target)->empty()) {
          // Best effort: partial releases are individually legal.
          (void)Engine.releaseRegion(Target, Loc);
        }
        const RegionTrack *TT = Ctx.Heap.lookup(Target);
        if (TT && TT->empty() && !TT->Pinned) {
          if (auto Err = Engine.retract(Var, Field, Loc); !Err)
            return Err;
          Changed = true;
        }
      }
    }

    const VarTrack *Track = Ctx.Heap.trackedVar(*TrackRegion, Var);
    if (Track->Fields.empty())
      return Engine.unfocus(Var, Loc);

    // Fields remain (dead targets or needed capabilities): drop the whole
    // region if nothing the continuation needs lives there.
    if (!conformAblation().WholesaleDrops)
      return fail("cannot release tracking of '" + P.Names.spelling(Var) +
                      "' (wholesale region drops disabled by ablation)",
                  Loc);
    RegionId R = *TrackRegion;
    if (NeededRegion(R))
      return fail("cannot release tracking of '" + P.Names.spelling(Var) +
                      "': its region still holds values the continuation "
                      "needs",
                  Loc);
    for (const auto &[Other, OtherTrack] : Ctx.Heap.lookup(R)->Vars) {
      (void)OtherTrack;
      if (Other != Var && Cont.Live.usesVar(Other))
        return fail("cannot release tracking of '" +
                        P.Names.spelling(Var) + "': variable '" +
                        P.Names.spelling(Other) +
                        "' is still tracked in the same region",
                    Loc);
    }
    return Engine.dropRegion(R, Loc);
  }

  /// Ends the scope of a let-bound variable.
  ExpectedVoid endScope(Symbol Var, const Continuation &Cont,
                        RegionId Protect, SourceLoc Loc) {
    if (auto Err = clearVarTracking(Var, Cont, Protect, Loc); !Err)
      return Err;
    Ctx.Vars.erase(Var);
    return success();
  }

  //===--------------------------------------------------------------------===
  // Expression checking
  //===--------------------------------------------------------------------===

  Expected<ExprResult> check(const Expr &E, const Continuation &Cont,
                             const Type *Want) {
    if (!Opts.EmitDerivations)
      return checkImpl(E, Cont, Want, nullptr);
    auto Node = std::make_unique<DerivStep>();
    Node->E = &E;
    Node->Before = Ctx;
    DerivStep *Parent = CurrentSink;
    CurrentSink = Node.get();
    Expected<ExprResult> Res = checkImpl(E, Cont, Want, Node.get());
    CurrentSink = Parent;
    if (Res) {
      Node->After = Ctx;
      Node->ResultRegion = Res->Region;
      Node->ResultType = Res->Ty;
      if (Parent)
        Parent->addChild(std::move(Node));
    }
    return Res;
  }

  Expected<ExprResult> checkImpl(const Expr &E, const Continuation &Cont,
                                 const Type *Want, DerivStep *Node) {
    auto Rule = [&](const char *Name) {
      if (Node)
        Node->Rule = Name;
    };
    switch (E.kind()) {
    case ExprKind::IntLit:
      Rule("T-Int-Literal");
      return ExprResult{RegionId(), Type::intTy()};
    case ExprKind::BoolLit:
      Rule("T-Bool-Literal");
      return ExprResult{RegionId(), Type::boolTy()};
    case ExprKind::UnitLit:
      Rule("T-Unit");
      return ExprResult{RegionId(), Type::unitTy()};
    case ExprKind::VarRef:
      Rule("T2-Variable-Ref");
      return checkVarRef(cast<VarRefExpr>(E));
    case ExprKind::FieldRef:
      return checkFieldRef(cast<FieldRefExpr>(E), Cont, Node);
    case ExprKind::AssignVar:
      Rule("T8-Assign-Var");
      return checkAssignVar(cast<AssignVarExpr>(E), Cont);
    case ExprKind::AssignField:
      return checkAssignField(cast<AssignFieldExpr>(E), Cont, Node);
    case ExprKind::Let:
      Rule("T-Let");
      return checkLet(cast<LetExpr>(E), Cont, Want);
    case ExprKind::LetSome:
      Rule("T-Let-Some");
      return checkLetSome(cast<LetSomeExpr>(E), Cont, Want);
    case ExprKind::If:
      Rule("T13-If-Statement");
      return checkIf(cast<IfExpr>(E), Cont, Want);
    case ExprKind::IfDisconnected:
      Rule("T15-If-Disconnected");
      return checkIfDisconnected(cast<IfDisconnectedExpr>(E), Cont,
                                 Want);
    case ExprKind::While:
      Rule("T-While");
      return checkWhile(cast<WhileExpr>(E), Cont);
    case ExprKind::Seq:
      Rule("T3-Sequence");
      return checkSeq(cast<SeqExpr>(E), Cont, Want);
    case ExprKind::New:
      Rule("T10-New-Loc");
      return checkNew(cast<NewExpr>(E), Cont);
    case ExprKind::SomeExpr:
      Rule("T-Some");
      return checkSome(cast<SomeExpr>(E), Cont, Want);
    case ExprKind::NoneLit:
      Rule("T-None");
      return checkNone(cast<NoneLitExpr>(E), Want);
    case ExprKind::IsNone:
      Rule("T-Is-None");
      return checkIsNone(cast<IsNoneExpr>(E), Cont);
    case ExprKind::Send:
      Rule("T16-Send");
      return checkSend(cast<SendExpr>(E), Cont);
    case ExprKind::Recv:
      Rule("T17-Receive");
      return checkRecv(cast<RecvExpr>(E));
    case ExprKind::Call:
      Rule("T9-Function-Application");
      return checkCall(cast<CallExpr>(E), Cont);
    case ExprKind::Binary:
      Rule("T-Binary");
      return checkBinary(cast<BinaryExpr>(E), Cont);
    case ExprKind::Unary:
      Rule("T-Unary");
      return checkUnary(cast<UnaryExpr>(E), Cont);
    }
    return fail("internal: unhandled expression kind", E.loc());
  }

  Expected<ExprResult> checkVarRef(const VarRefExpr &E) {
    const VarBinding *Binding = Ctx.Vars.lookup(E.Name);
    if (!Binding)
      return fail("variable '" + P.Names.spelling(E.Name) +
                      "' is not in scope",
                  E.loc());
    if (Binding->VarType.isRegionful() &&
        !Ctx.Heap.hasRegion(Binding->Region))
      return fail("variable '" + P.Names.spelling(E.Name) +
                      "' is no longer usable: its region left the "
                      "reservation (sent, consumed, or disconnected)",
                  E.loc());
    RegionId R =
        Binding->VarType.isRegionful() ? Binding->Region : RegionId();
    return ExprResult{R, Binding->VarType};
  }

  Expected<ExprResult> checkFieldRef(const FieldRefExpr &E,
                                     const Continuation &Cont,
                                     DerivStep *Node) {
    auto Rule = [&](const char *Name) {
      if (Node)
        Node->Rule = Name;
    };
    // Determine the base type first (without committing effects for the
    // iso case: the base must be a variable there).
    if (const auto *Var = dyn_cast<VarRefExpr>(E.Base.get())) {
      Expected<ExprResult> Base = check(*E.Base, Cont, nullptr);
      if (!Base)
        return Base;
      Expected<const StructInfo *> Info = structOf(Base->Ty, E.loc());
      if (!Info)
        return Info.takeFailure();
      const FieldInfo *Field = (*Info)->findField(E.Field);
      if (!Field)
        return fail("struct '" + P.Names.spelling((*Info)->Name) +
                        "' has no field '" + P.Names.spelling(E.Field) +
                        "'",
                    E.loc());
      if (Field->Iso) {
        Rule("T5-Isolated-Field-Reference");
        VirtualEngine Engine = engine();
        Expected<RegionId> Target =
            Engine.ensureFieldTracked(Var->Name, E.Field, E.loc());
        if (!Target)
          return Target.takeFailure();
        if (!Ctx.Heap.hasRegion(*Target))
          return fail("iso field '" + P.Names.spelling(Var->Name) + "." +
                          P.Names.spelling(E.Field) +
                          "' was invalidated; reassign it before reading",
                      E.loc());
        return ExprResult{Field->FieldType.isRegionful() ? *Target
                                                         : RegionId(),
                          Field->FieldType};
      }
      Rule("T-Field-Reference");
      return ExprResult{Field->FieldType.isRegionful() ? Base->Region
                                                       : RegionId(),
                        Field->FieldType};
    }

    // Non-variable base: only non-iso fields are accessible (the paper
    // limits typeable iso accesses to fields of declared variables).
    Expected<ExprResult> Base = check(*E.Base, Cont, nullptr);
    if (!Base)
      return Base;
    Expected<const StructInfo *> Info = structOf(Base->Ty, E.loc());
    if (!Info)
      return Info.takeFailure();
    const FieldInfo *Field = (*Info)->findField(E.Field);
    if (!Field)
      return fail("struct '" + P.Names.spelling((*Info)->Name) +
                      "' has no field '" + P.Names.spelling(E.Field) + "'",
                  E.loc());
    if (Field->Iso)
      return fail("iso field '" + P.Names.spelling(E.Field) +
                      "' can only be accessed on a variable; bind '" +
                      printExpr(*E.Base, P.Names) + "' with 'let' first",
                  E.loc());
    Rule("T-Field-Reference");
    return ExprResult{Field->FieldType.isRegionful() ? Base->Region
                                                     : RegionId(),
                      Field->FieldType};
  }

  Expected<ExprResult> checkAssignVar(const AssignVarExpr &E,
                                      const Continuation &Cont) {
    const VarBinding *Binding = Ctx.Vars.lookup(E.Name);
    if (!Binding)
      return fail("variable '" + P.Names.spelling(E.Name) +
                      "' is not in scope",
                  E.loc());
    Type DeclaredType = Binding->VarType;
    Expected<ExprResult> Value = check(*E.Value, Cont, &DeclaredType);
    if (!Value)
      return Value;
    if (!(Value->Ty == DeclaredType))
      return fail("cannot assign " + toString(Value->Ty, P.Names) +
                      " to variable '" + P.Names.spelling(E.Name) +
                      "' of type " + toString(DeclaredType, P.Names),
                  E.loc());
    if (auto Err = clearVarTracking(E.Name, Cont, Value->Region, E.loc());
        !Err)
      return Err.takeFailure();
    Ctx.Vars.bind(E.Name, VarBinding{Value->Region, DeclaredType});
    return ExprResult{RegionId(), Type::unitTy()};
  }

  Expected<ExprResult> checkAssignField(const AssignFieldExpr &E,
                                        const Continuation &Cont,
                                        DerivStep *Node) {
    auto Rule = [&](const char *Name) {
      if (Node)
        Node->Rule = Name;
    };
    Expected<ExprResult> Base =
        check(*E.Base, Cont.withUses(Uses.uses(*E.Value)), nullptr);
    if (!Base)
      return Base;
    Expected<const StructInfo *> Info = structOf(Base->Ty, E.loc());
    if (!Info)
      return Info.takeFailure();
    const FieldInfo *Field = (*Info)->findField(E.Field);
    if (!Field)
      return fail("struct '" + P.Names.spelling((*Info)->Name) +
                      "' has no field '" + P.Names.spelling(E.Field) + "'",
                  E.loc());
    Type FieldType = Field->FieldType;
    Expected<ExprResult> Value = check(*E.Value, Cont, &FieldType);
    if (!Value)
      return Value;
    if (!(Value->Ty == FieldType))
      return fail("cannot assign " + toString(Value->Ty, P.Names) +
                      " to field '" + P.Names.spelling(E.Field) +
                      "' of type " + toString(FieldType, P.Names),
                  E.loc());

    if (Field->Iso) {
      Rule("T7-Isolated-Field-Assignment");
      const auto *Var = dyn_cast<VarRefExpr>(E.Base.get());
      if (!Var)
        return fail("iso field '" + P.Names.spelling(E.Field) +
                        "' can only be assigned on a variable; bind '" +
                        printExpr(*E.Base, P.Names) + "' with 'let' first",
                    E.loc());
      VirtualEngine Engine = engine();
      Expected<RegionId> OldTarget =
          Engine.ensureFieldTracked(Var->Name, E.Field, E.loc());
      if (!OldTarget)
        return OldTarget.takeFailure();
      auto TrackRegion = Ctx.Heap.trackingRegionOf(Var->Name);
      assert(TrackRegion && "just tracked");
      assert(Value->Region.isValid() && "iso fields hold regionful values");
      Ctx.Heap.trackedVar(*TrackRegion, Var->Name)->Fields[E.Field] =
          Value->Region;
      return ExprResult{RegionId(), Type::unitTy()};
    }

    Rule("T-Field-Assignment");
    if (FieldType.isRegionful()) {
      // Intra-region reference: merge the value's region into the base's.
      VirtualEngine Engine = engine();
      if (auto Err = Engine.attach(Value->Region, Base->Region, E.loc());
          !Err)
        return Err.takeFailure();
    }
    return ExprResult{RegionId(), Type::unitTy()};
  }

  Expected<ExprResult> checkLet(const LetExpr &E, const Continuation &Cont,
                                const Type *Want) {
    const Type *InitWant = E.Declared.isValid() ? &E.Declared : nullptr;
    Expected<ExprResult> Init =
        check(*E.Init, Cont.withUses(Uses.uses(*E.Body)), InitWant);
    if (!Init)
      return Init;
    if (E.Declared.isValid() && !(Init->Ty == E.Declared))
      return fail("initializer of '" + P.Names.spelling(E.Name) +
                      "' has type " + toString(Init->Ty, P.Names) +
                      ", but it is declared " +
                      toString(E.Declared, P.Names),
                  E.loc());
    if (!Init->Ty.isValid() ||
        Init->Ty.BaseKind == Type::Base::Invalid)
      return fail("cannot infer a type for the initializer of '" +
                      P.Names.spelling(E.Name) + "'",
                  E.loc());
    Ctx.Vars.bind(E.Name, VarBinding{Init->Region, Init->Ty});
    Expected<ExprResult> Body = check(*E.Body, Cont, Want);
    if (!Body)
      return Body;
    if (auto Err = endScope(E.Name, Cont, Body->Region, E.loc()); !Err)
      return Err.takeFailure();
    return Body;
  }

  Expected<ExprResult> checkLetSome(const LetSomeExpr &E,
                                    const Continuation &Cont,
                                    const Type *Want) {
    Continuation ScrutCont = Cont.withUses(Uses.uses(*E.SomeBody))
                                 .withUses(Uses.uses(*E.NoneBody));
    Expected<ExprResult> Scrut = check(*E.Scrutinee, ScrutCont, nullptr);
    if (!Scrut)
      return Scrut;
    if (!Scrut->Ty.isMaybe())
      return fail("'let some' scrutinee must have a maybe type, found " +
                      toString(Scrut->Ty, P.Names),
                  E.loc());
    Type ElemTy = Scrut->Ty.stripMaybe();

    Contexts Snapshot = Ctx;

    // Some branch: bind the payload in the scrutinee's region.
    Ctx.Vars.bind(E.Name,
                  VarBinding{ElemTy.isRegionful() ? Scrut->Region
                                                  : RegionId(),
                             ElemTy});
    Expected<ExprResult> SomeRes = check(*E.SomeBody, Cont, Want);
    if (!SomeRes)
      return SomeRes;
    if (auto Err = endScope(E.Name, Cont, SomeRes->Region, E.loc()); !Err)
      return Err.takeFailure();
    BranchState SomeBranch{std::move(Ctx),
                           SomeRes->Ty.isRegionful() ? SomeRes->Region
                                                     : RegionId(),
                           CurrentSink};

    // None branch.
    Ctx = std::move(Snapshot);
    Expected<ExprResult> NoneRes =
        check(*E.NoneBody, Cont,
              Want ? Want
                       : (SomeRes->Ty.isValid() ? &SomeRes->Ty : nullptr));
    if (!NoneRes)
      return NoneRes;
    if (!(NoneRes->Ty == SomeRes->Ty))
      return fail("'let some' branches have different types: " +
                      toString(SomeRes->Ty, P.Names) + " vs " +
                      toString(NoneRes->Ty, P.Names),
                  E.loc());
    BranchState NoneBranch{std::move(Ctx),
                           NoneRes->Ty.isRegionful() ? NoneRes->Region
                                                     : RegionId(),
                           CurrentSink};

    return mergeBranches({std::move(SomeBranch), std::move(NoneBranch)},
                         SomeRes->Ty, Cont, E.loc());
  }

  Expected<ExprResult> checkIf(const IfExpr &E, const Continuation &Cont,
                               const Type *Want) {
    Continuation CondCont = Cont.withUses(Uses.uses(*E.Then));
    if (E.Else)
      CondCont = CondCont.withUses(Uses.uses(*E.Else));
    Type BoolTy = Type::boolTy();
    Expected<ExprResult> CondRes = check(*E.Cond, CondCont, &BoolTy);
    if (!CondRes)
      return CondRes;
    if (!(CondRes->Ty == Type::boolTy()))
      return fail("if condition must be bool, found " +
                      toString(CondRes->Ty, P.Names),
                  E.loc());

    Contexts Snapshot = Ctx;
    Expected<ExprResult> ThenRes =
        check(*E.Then, Cont, E.Else ? Want : nullptr);
    if (!ThenRes)
      return ThenRes;

    if (!E.Else) {
      // Statement form: the then-value is discarded, result is unit.
      BranchState ThenBranch{std::move(Ctx), RegionId(), CurrentSink};
      Ctx = std::move(Snapshot);
      BranchState ElseBranch{std::move(Ctx), RegionId(), CurrentSink};
      return mergeBranches({std::move(ThenBranch), std::move(ElseBranch)},
                           Type::unitTy(), Cont, E.loc());
    }

    BranchState ThenBranch{std::move(Ctx),
                           ThenRes->Ty.isRegionful() ? ThenRes->Region
                                                     : RegionId(),
                           CurrentSink};
    Ctx = std::move(Snapshot);
    Expected<ExprResult> ElseRes = check(*E.Else, Cont, Want);
    if (!ElseRes)
      return ElseRes;
    if (!(ElseRes->Ty == ThenRes->Ty))
      return fail("if branches have different types: " +
                      toString(ThenRes->Ty, P.Names) + " vs " +
                      toString(ElseRes->Ty, P.Names),
                  E.loc());
    BranchState ElseBranch{std::move(Ctx),
                           ElseRes->Ty.isRegionful() ? ElseRes->Region
                                                     : RegionId(),
                           CurrentSink};
    return mergeBranches({std::move(ThenBranch), std::move(ElseBranch)},
                         ThenRes->Ty, Cont, E.loc());
  }

  Expected<ExprResult> checkIfDisconnected(const IfDisconnectedExpr &E,
                                           const Continuation &Cont,
                                           const Type *Want) {
    auto LookupArg = [&](Symbol Name) -> Expected<VarBinding> {
      const VarBinding *Binding = Ctx.Vars.lookup(Name);
      if (!Binding)
        return fail("variable '" + P.Names.spelling(Name) +
                        "' is not in scope",
                    E.loc());
      if (!Binding->VarType.isStruct())
        return fail("'if disconnected' argument '" +
                        P.Names.spelling(Name) +
                        "' must have a (non-maybe) struct type",
                    E.loc());
      if (!Ctx.Heap.hasRegion(Binding->Region))
        return fail("'if disconnected' argument '" +
                        P.Names.spelling(Name) +
                        "' is no longer in the reservation",
                    E.loc());
      return *Binding;
    };
    Expected<VarBinding> A = LookupArg(E.VarA);
    if (!A)
      return A.takeFailure();
    Expected<VarBinding> B = LookupArg(E.VarB);
    if (!B)
      return B.takeFailure();
    if (A->Region != B->Region)
      return fail("'if disconnected' arguments must be in the same "
                      "region; '" +
                      P.Names.spelling(E.VarA) + "' is in " +
                      toString(A->Region) + " and '" +
                      P.Names.spelling(E.VarB) + "' in " +
                      toString(B->Region),
                  E.loc());
    RegionId R = A->Region;
    // T15 requires the region's tracking context to be empty.
    {
      VirtualEngine Engine = engine();
      if (auto Err = Engine.releaseRegion(R, E.loc()); !Err)
        return Err.takeFailure();
    }

    Contexts Snapshot = Ctx;

    // Then branch: the region splits. Both arguments move to fresh
    // regions; every other variable of R and every tracked field
    // targeting R is invalidated (the type system cannot know which side
    // it landed on — Fig. 5's "l.hd invalid at branch start").
    Ctx.Heap.removeRegion(R);
    RegionId RA = Supply.fresh();
    RegionId RB = Supply.fresh();
    Ctx.Heap.addRegion(RA);
    Ctx.Heap.addRegion(RB);
    Ctx.Vars.bind(E.VarA, VarBinding{RA, A->VarType});
    Ctx.Vars.bind(E.VarB, VarBinding{RB, B->VarType});
    Expected<ExprResult> ThenRes = check(*E.Then, Cont, Want);
    if (!ThenRes)
      return ThenRes;
    BranchState ThenBranch{std::move(Ctx),
                           ThenRes->Ty.isRegionful() ? ThenRes->Region
                                                     : RegionId(),
                           CurrentSink};

    // Else branch: still connected; nothing changes.
    Ctx = std::move(Snapshot);
    Expected<ExprResult> ElseRes = check(*E.Else, Cont, Want);
    if (!ElseRes)
      return ElseRes;
    if (!(ElseRes->Ty == ThenRes->Ty))
      return fail("'if disconnected' branches have different types: " +
                      toString(ThenRes->Ty, P.Names) + " vs " +
                      toString(ElseRes->Ty, P.Names),
                  E.loc());
    BranchState ElseBranch{std::move(Ctx),
                           ElseRes->Ty.isRegionful() ? ElseRes->Region
                                                     : RegionId(),
                           CurrentSink};
    return mergeBranches({std::move(ThenBranch), std::move(ElseBranch)},
                         ThenRes->Ty, Cont, E.loc());
  }

  Expected<ExprResult> checkWhile(const WhileExpr &E,
                                  const Continuation &Cont) {
    Continuation LoopCont = Cont.withUses(Uses.uses(*E.Cond))
                                .withUses(Uses.uses(*E.Body));
    Contexts Invariant = Ctx;
    Type BoolTy = Type::boolTy();

    for (size_t Iter = 0; Iter < Opts.MaxLoopIterations; ++Iter) {
      ++Stats.LoopIterations;
      Ctx = Invariant;
      // Check into a scratch derivation; only the stable iteration is
      // kept.
      auto Scratch = std::make_unique<DerivStep>();
      Scratch->Rule = "T-While-Body";
      Scratch->Before = Ctx;
      DerivStep *SavedSink = CurrentSink;
      if (Opts.EmitDerivations)
        CurrentSink = Scratch.get();

      Expected<ExprResult> CondRes = check(*E.Cond, LoopCont, &BoolTy);
      if (!CondRes) {
        CurrentSink = SavedSink;
        return CondRes;
      }
      if (!(CondRes->Ty == Type::boolTy())) {
        CurrentSink = SavedSink;
        return fail("while condition must be bool, found " +
                        toString(CondRes->Ty, P.Names),
                    E.loc());
      }
      Contexts AfterCond = Ctx;
      Expected<ExprResult> BodyRes = check(*E.Body, LoopCont, nullptr);
      CurrentSink = SavedSink;
      if (!BodyRes)
        return BodyRes;

      // Loop-invariance: the body's exit context must describe the same
      // heap as the loop entry.
      Contexts BodyExit = Ctx;
      Contexts EntryCopy = Invariant;
      dropUnreachableRegions(BodyExit);
      dropUnreachableRegions(EntryCopy);
      if (equivalentUpToRenaming(BodyExit, RegionId(), EntryCopy,
                                 RegionId())) {
        if (Opts.EmitDerivations && CurrentSink) {
          Scratch->After = Ctx;
          CurrentSink->addChild(std::move(Scratch));
        }
        Ctx = std::move(AfterCond);
        return ExprResult{RegionId(), Type::unitTy()};
      }

      // Widen: the new invariant is the meet of the entry and the body's
      // exit. Re-check from the weakened entry.
      std::vector<BranchState> States;
      States.push_back(BranchState{std::move(EntryCopy), RegionId(),
                                   nullptr});
      States.push_back(BranchState{Ctx, RegionId(), nullptr});
      Expected<UnifyOutcome> Met = unifyBranches(
          std::move(States), Type::unitTy(), LoopCont,
          UnifyOptions{Opts.UseLivenessOracle, Opts.UnifySearchLimit},
          Supply, P.Names, E.loc(), &Stats.VirtualSteps);
      if (!Met)
        return fail("while loop body changes the region context and no "
                        "loop invariant could be found: " +
                        Met.error().Message,
                    E.loc());
      Stats.UnifyCandidates += Met->CandidatesTried;
      Invariant = std::move(Met->Ctx);
    }
    return fail("while loop did not stabilize after " +
                    std::to_string(Opts.MaxLoopIterations) +
                    " refinements",
                E.loc());
  }

  Expected<ExprResult> checkSeq(const SeqExpr &E, const Continuation &Cont,
                                const Type *Want) {
    assert(!E.Elems.empty() && "parser guarantees nonempty blocks");
    ExprResult Last{RegionId(), Type::unitTy()};
    for (size_t I = 0; I < E.Elems.size(); ++I) {
      bool IsLast = I + 1 == E.Elems.size();
      Continuation ElemCont = Cont;
      if (!IsLast) {
        ElemCont.ResultLive = false;
        for (size_t J = I + 1; J < E.Elems.size(); ++J)
          ElemCont.Live.merge(Uses.uses(*E.Elems[J]));
      }
      Expected<ExprResult> Res =
          check(*E.Elems[I], ElemCont, IsLast ? Want : nullptr);
      if (!Res)
        return Res;
      Last = *Res;
    }
    return Last;
  }

  Expected<ExprResult> checkNew(const NewExpr &E, const Continuation &Cont) {
    const StructInfo *Info = Structs.lookup(E.StructName);
    assert(Info && "resolver admitted unknown struct");
    VirtualEngine Engine = engine();
    RegionId Fresh = Supply.fresh();
    Ctx.Heap.addRegion(Fresh);
    Type ResultTy = Type::structTy(E.StructName);
    if (E.Args.empty())
      return ExprResult{Fresh, ResultTy};

    // Argument-to-field mapping: full form (one per field) or required
    // form (one per non-defaultable field).
    std::vector<uint32_t> ArgFields;
    if (E.Args.size() == Info->Fields.size()) {
      for (uint32_t I = 0; I < Info->Fields.size(); ++I)
        ArgFields.push_back(I);
    } else {
      ArgFields = Info->requiredFieldIndices();
    }
    assert(E.Args.size() == ArgFields.size() &&
           "resolver checked new-arity");
    for (size_t I = 0; I < E.Args.size(); ++I) {
      const FieldInfo &Field = Info->Fields[ArgFields[I]];
      Continuation ArgCont = Cont;
      for (size_t J = I + 1; J < E.Args.size(); ++J)
        ArgCont.Live.merge(Uses.uses(*E.Args[J]));
      Type FieldTy = Field.FieldType;
      Expected<ExprResult> Arg = check(*E.Args[I], ArgCont, &FieldTy);
      if (!Arg)
        return Arg;
      if (!(Arg->Ty == FieldTy))
        return fail("initializer for field '" +
                        P.Names.spelling(Field.Name) + "' has type " +
                        toString(Arg->Ty, P.Names) + ", expected " +
                        toString(FieldTy, P.Names),
                    E.loc());
      if (!FieldTy.isRegionful())
        continue;
      if (Field.Iso) {
        // The initializer becomes the dominated target of a fresh,
        // untracked iso field: its region must be released and consumed.
        if (Arg->Region == Fresh)
          return fail("iso field initializer for '" +
                          P.Names.spelling(Field.Name) +
                          "' aliases the new object's own region",
                      E.loc());
        if (auto Err = Engine.releaseRegion(Arg->Region, E.loc()); !Err)
          return Err.takeFailure();
        const RegionTrack *Track = Ctx.Heap.lookup(Arg->Region);
        if (!Track || Track->Pinned)
          return fail("iso field initializer for '" +
                          P.Names.spelling(Field.Name) +
                          "' is in a pinned or absent region",
                      E.loc());
        Ctx.Heap.removeRegion(Arg->Region);
      } else {
        // Intra-region reference: the initializer joins the new object's
        // region.
        if (auto Err = Engine.attach(Arg->Region, Fresh, E.loc()); !Err)
          return Err.takeFailure();
      }
    }
    return ExprResult{Fresh, ResultTy};
  }

  Expected<ExprResult> checkSome(const SomeExpr &E, const Continuation &Cont,
                                 const Type *Want) {
    Type ElemExpected;
    const Type *ElemExpectedPtr = nullptr;
    if (Want && Want->isMaybe()) {
      ElemExpected = Want->stripMaybe();
      ElemExpectedPtr = &ElemExpected;
    }
    Expected<ExprResult> Operand =
        check(*E.Operand, Cont, ElemExpectedPtr);
    if (!Operand)
      return Operand;
    if (Operand->Ty.isMaybe())
      return fail("maybe types do not nest ('some' of a maybe value)",
                  E.loc());
    return ExprResult{Operand->Region, Operand->Ty.asMaybe()};
  }

  Expected<ExprResult> checkNone(const NoneLitExpr &E,
                                 const Type *Want) {
    if (!Want || !Want->isMaybe())
      return fail("cannot infer the type of 'none' here; use it where a "
                      "maybe type is expected",
                  E.loc());
    if (!Want->isRegionful())
      return ExprResult{RegionId(), *Want};
    RegionId Fresh = Supply.fresh();
    Ctx.Heap.addRegion(Fresh);
    return ExprResult{Fresh, *Want};
  }

  Expected<ExprResult> checkIsNone(const IsNoneExpr &E,
                                   const Continuation &Cont) {
    Expected<ExprResult> Operand = check(*E.Operand, Cont, nullptr);
    if (!Operand)
      return Operand;
    if (!Operand->Ty.isMaybe())
      return fail("'is_none' needs a maybe-typed operand, found " +
                      toString(Operand->Ty, P.Names),
                  E.loc());
    return ExprResult{RegionId(), Type::boolTy()};
  }

  Expected<ExprResult> checkSend(const SendExpr &E,
                                 const Continuation &Cont) {
    Expected<ExprResult> Operand = check(*E.Operand, Cont, nullptr);
    if (!Operand)
      return Operand;
    SendTypes[&E] = Operand->Ty;
    if (Operand->Ty.isRegionful()) {
      VirtualEngine Engine = engine();
      if (auto Err = Engine.releaseRegion(Operand->Region, E.loc()); !Err)
        return Err.takeFailure();
      // T16: the region capability leaves this thread's reservation.
      Ctx.Heap.removeRegion(Operand->Region);
    }
    return ExprResult{RegionId(), Type::unitTy()};
  }

  Expected<ExprResult> checkRecv(const RecvExpr &E) {
    if (!E.ValueType.isRegionful())
      return ExprResult{RegionId(), E.ValueType};
    RegionId Fresh = Supply.fresh();
    Ctx.Heap.addRegion(Fresh);
    return ExprResult{Fresh, E.ValueType};
  }

  Expected<ExprResult> checkCall(const CallExpr &E,
                                 const Continuation &Cont) {
    auto SigIt = Signatures.find(E.Callee);
    assert(SigIt != Signatures.end() && "resolver admitted unknown call");
    const FnSignature &Sig = SigIt->second;
    assert(E.Args.size() == Sig.Decl->Params.size() &&
           "resolver checked arity");

    std::vector<Symbol> ArgVars(E.Args.size());
    for (size_t I = 0; I < E.Args.size(); ++I) {
      const ParamDecl &Param = Sig.Decl->Params[I];
      Continuation ArgCont = Cont;
      for (size_t J = I + 1; J < E.Args.size(); ++J)
        ArgCont.Live.merge(Uses.uses(*E.Args[J]));
      if (Param.ParamType.isRegionful()) {
        const auto *Var = dyn_cast<VarRefExpr>(E.Args[I].get());
        if (!Var)
          return fail("argument for parameter '" +
                          P.Names.spelling(Param.Name) + "' of '" +
                          P.Names.spelling(E.Callee) +
                          "' must be a variable; bind it with 'let' first",
                      E.loc());
        Expected<ExprResult> Arg = check(*E.Args[I], ArgCont, nullptr);
        if (!Arg)
          return Arg;
        if (!(Arg->Ty == Param.ParamType))
          return fail("argument '" + P.Names.spelling(Var->Name) +
                          "' has type " + toString(Arg->Ty, P.Names) +
                          ", expected " +
                          toString(Param.ParamType, P.Names),
                      E.loc());
        ArgVars[I] = Var->Name;
      } else {
        Type ParamTy = Param.ParamType;
        Expected<ExprResult> Arg = check(*E.Args[I], ArgCont, &ParamTy);
        if (!Arg)
          return Arg;
        if (!(Arg->Ty == Param.ParamType))
          return fail("argument for parameter '" +
                          P.Names.spelling(Param.Name) + "' has type " +
                          toString(Arg->Ty, P.Names) + ", expected " +
                          toString(Param.ParamType, P.Names),
                      E.loc());
      }
    }

    Expected<CallInstantiation> Inst = applySignature(
        Ctx, Sig, ArgVars, Supply, P.Names,
        Opts.EmitDerivations ? CurrentSink : nullptr, &Stats.VirtualSteps,
        E.loc());
    if (!Inst)
      return Inst.takeFailure();
    return ExprResult{Inst->ResultRegion, Sig.ReturnType};
  }

  Expected<ExprResult> checkBinary(const BinaryExpr &E,
                                   const Continuation &Cont) {
    Expected<ExprResult> Lhs =
        check(*E.Lhs, Cont.withUses(Uses.uses(*E.Rhs)), nullptr);
    if (!Lhs)
      return Lhs;
    Expected<ExprResult> Rhs = check(*E.Rhs, Cont, &Lhs->Ty);
    if (!Rhs)
      return Rhs;
    auto Require = [&](const Type &Ty, const char *What) -> ExpectedVoid {
      if (Lhs->Ty == Ty && Rhs->Ty == Ty)
        return success();
      return fail(std::string("operator '") + toString(E.Op) +
                      "' needs " + What + " operands",
                  E.loc());
    };
    switch (E.Op) {
    case BinaryOp::Add:
    case BinaryOp::Sub:
    case BinaryOp::Mul:
    case BinaryOp::Div:
    case BinaryOp::Mod:
      if (auto Err = Require(Type::intTy(), "int"); !Err)
        return Err.takeFailure();
      return ExprResult{RegionId(), Type::intTy()};
    case BinaryOp::Lt:
    case BinaryOp::Le:
    case BinaryOp::Gt:
    case BinaryOp::Ge:
      if (auto Err = Require(Type::intTy(), "int"); !Err)
        return Err.takeFailure();
      return ExprResult{RegionId(), Type::boolTy()};
    case BinaryOp::Eq:
    case BinaryOp::Ne:
      if (!(Lhs->Ty == Rhs->Ty) ||
          (!(Lhs->Ty == Type::intTy()) && !(Lhs->Ty == Type::boolTy())))
        return fail("operator '==' / '!=' compares ints or bools (use "
                        "'is_none' for maybe values)",
                    E.loc());
      return ExprResult{RegionId(), Type::boolTy()};
    case BinaryOp::And:
    case BinaryOp::Or:
      if (auto Err = Require(Type::boolTy(), "bool"); !Err)
        return Err.takeFailure();
      return ExprResult{RegionId(), Type::boolTy()};
    }
    return fail("internal: unhandled binary operator", E.loc());
  }

  Expected<ExprResult> checkUnary(const UnaryExpr &E,
                                  const Continuation &Cont) {
    Type Want =
        E.Op == UnaryOp::Not ? Type::boolTy() : Type::intTy();
    Expected<ExprResult> Operand = check(*E.Operand, Cont, &Want);
    if (!Operand)
      return Operand;
    if (!(Operand->Ty == Want))
      return fail(std::string("operator '") + toString(E.Op) + "' needs " +
                      (E.Op == UnaryOp::Not ? "a bool" : "an int") +
                      " operand",
                  E.loc());
    return ExprResult{RegionId(), Want};
  }

  //===--------------------------------------------------------------------===
  // Merging
  //===--------------------------------------------------------------------===

  Expected<ExprResult> mergeBranches(std::vector<BranchState> Branches,
                                     const Type &ResultTy,
                                     const Continuation &Cont,
                                     SourceLoc Loc) {
    Expected<UnifyOutcome> Out = unifyBranches(
        std::move(Branches), ResultTy, Cont,
        UnifyOptions{Opts.UseLivenessOracle, Opts.UnifySearchLimit},
        Supply, P.Names, Loc, &Stats.VirtualSteps);
    if (!Out)
      return Out.takeFailure();
    Stats.UnifyCandidates += Out->CandidatesTried;
    Ctx = std::move(Out->Ctx);
    return ExprResult{ResultTy.isRegionful() ? Out->ResultRegion
                                             : RegionId(),
                      ResultTy};
  }

  const Program &P;
  const StructTable &Structs;
  const std::map<Symbol, FnSignature> &Signatures;
  const CheckerOptions &Opts;
  UseCache &Uses;
  RegionSupply &Supply;
  std::map<const Expr *, Type> &SendTypes;

  Contexts Ctx;
  Type ReturnType;
  DerivStep *CurrentSink = nullptr;
  CheckStats Stats;
};

} // namespace

Expected<CheckedProgram> fearless::checkProgram(const Program &P,
                                                const CheckerOptions &Opts) {
  CheckedProgram Out;
  Out.Prog = &P;

  DiagnosticEngine Diags;
  if (!Out.Structs.build(P, Diags))
    return fail(Diags.renderAll());
  if (!resolveProgram(P, Out.Structs, Diags))
    return fail(Diags.renderAll());

  RegionSupply Supply;
  for (const FnDecl &F : P.Functions) {
    Expected<FnSignature> Sig =
        elaborateSignature(F, Out.Structs, P.Names, Supply);
    if (!Sig)
      return Sig.takeFailure();
    Out.Signatures.emplace(F.Name, Sig.take());
  }

  UseCache Uses(P);
  for (const FnDecl &F : P.Functions) {
    FnChecker Checker(P, Out.Structs, Out.Signatures, Opts, Uses, Supply,
                      Out.SendTypes);
    Expected<CheckedFunction> Checked = Checker.run(F);
    if (!Checked)
      return Checked.takeFailure();
    Out.Functions.emplace(F.Name, std::move(*Checked));
  }
  return Out;
}

Expected<FrontendResult> fearless::checkSource(std::string_view Source,
                                               const CheckerOptions &Opts) {
  DiagnosticEngine Diags;
  std::optional<Program> Parsed = parseProgram(Source, Diags);
  if (!Parsed) {
    Failure F = fail(Diags.renderAll());
    F.Diag.Stage = DiagnosticStage::Parse;
    return F;
  }
  FrontendResult Out{std::make_unique<Program>(std::move(*Parsed)), {}};
  Expected<CheckedProgram> Checked = checkProgram(*Out.Prog, Opts);
  if (!Checked) {
    Failure F = Checked.takeFailure();
    F.Diag.Stage = DiagnosticStage::Check;
    return F;
  }
  Out.Checked = Checked.take();
  return Out;
}
