//===- checker/Virtual.cpp ------------------------------------------------===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//

#include "checker/Virtual.h"

#include <algorithm>
#include <cassert>

using namespace fearless;

ExpectedVoid VirtualEngine::focus(Symbol Var, SourceLoc Loc) {
  const VarBinding *Binding = Ctx.Vars.lookup(Var);
  if (!Binding)
    return fail("cannot focus unbound variable '" + Names.spelling(Var) +
                    "'",
                Loc);
  if (!Binding->VarType.isStruct())
    return fail("cannot focus '" + Names.spelling(Var) +
                    "': not a (non-maybe) struct",
                Loc);
  RegionId R = Binding->Region;
  RegionTrack *Track = Ctx.Heap.lookup(R);
  if (!Track)
    return fail("cannot focus '" + Names.spelling(Var) +
                    "': its region is no longer in the reservation",
                Loc);
  if (Track->Pinned)
    return fail("cannot focus '" + Names.spelling(Var) +
                    "': region " + toString(R) + " is pinned",
                Loc);
  if (!Track->empty()) {
    std::string Others;
    for (const auto &[Other, VT] : Track->Vars) {
      (void)VT;
      if (!Others.empty())
        Others += ", ";
      Others += "'" + Names.spelling(Other) + "'";
    }
    return fail("cannot focus '" + Names.spelling(Var) + "': region " +
                    toString(R) + " already tracks " + Others +
                    " (possible alias)",
                Loc);
  }
  record(rules::V1Focus,
         "focus " + Names.spelling(Var) + " in " + toString(R),
         [&] { Track->Vars.emplace(Var, VarTrack{}); });
  return success();
}

ExpectedVoid VirtualEngine::unfocus(Symbol Var, SourceLoc Loc) {
  auto Region = Ctx.Heap.trackingRegionOf(Var);
  if (!Region)
    return fail("cannot unfocus untracked variable '" +
                    Names.spelling(Var) + "'",
                Loc);
  VarTrack *Track = Ctx.Heap.trackedVar(*Region, Var);
  assert(Track && "tracking region without entry");
  if (!Track->Fields.empty())
    return fail("cannot unfocus '" + Names.spelling(Var) +
                    "': it still has tracked fields",
                Loc);
  record(rules::V2Unfocus,
         "unfocus " + Names.spelling(Var) + " in " + toString(*Region),
         [&] { Ctx.Heap.lookup(*Region)->Vars.erase(Var); });
  return success();
}

Expected<RegionId> VirtualEngine::explore(Symbol Var, Symbol Field,
                                          SourceLoc Loc) {
  auto Region = Ctx.Heap.trackingRegionOf(Var);
  if (!Region)
    return fail("cannot explore field of untracked variable '" +
                    Names.spelling(Var) + "'",
                Loc);
  VarTrack *Track = Ctx.Heap.trackedVar(*Region, Var);
  assert(Track && "tracking region without entry");
  if (Track->Pinned)
    return fail("cannot explore field of pinned variable '" +
                    Names.spelling(Var) + "'",
                Loc);
  if (Track->Fields.count(Field))
    return fail("field '" + Names.spelling(Field) + "' of '" +
                    Names.spelling(Var) + "' is already tracked",
                Loc);
  RegionId Target = Supply.fresh();
  record(rules::V3Explore,
         "explore " + Names.spelling(Var) + "." + Names.spelling(Field) +
             " -> " + toString(Target),
         [&] {
           Ctx.Heap.trackedVar(*Region, Var)->Fields[Field] = Target;
           Ctx.Heap.addRegion(Target);
         });
  return Target;
}

ExpectedVoid VirtualEngine::retract(Symbol Var, Symbol Field,
                                    SourceLoc Loc) {
  auto Region = Ctx.Heap.trackingRegionOf(Var);
  if (!Region)
    return fail("cannot retract field of untracked variable '" +
                    Names.spelling(Var) + "'",
                Loc);
  VarTrack *Track = Ctx.Heap.trackedVar(*Region, Var);
  auto FieldIt = Track->Fields.find(Field);
  if (FieldIt == Track->Fields.end())
    return fail("field '" + Names.spelling(Field) + "' of '" +
                    Names.spelling(Var) + "' is not tracked",
                Loc);
  RegionId Target = FieldIt->second;
  const RegionTrack *TargetTrack = Ctx.Heap.lookup(Target);
  if (!TargetTrack)
    return fail("cannot retract '" + Names.spelling(Var) + "." +
                    Names.spelling(Field) +
                    "': its target was invalidated; reassign the field "
                    "first",
                Loc);
  if (!TargetTrack->empty())
    return fail("cannot retract '" + Names.spelling(Var) + "." +
                    Names.spelling(Field) + "': target region " +
                    toString(Target) + " still tracks variables",
                Loc);
  if (TargetTrack->Pinned)
    return fail("cannot retract '" + Names.spelling(Var) + "." +
                    Names.spelling(Field) + "': target region " +
                    toString(Target) + " is pinned",
                Loc);
  // The target region may not be shared with another tracked field or a
  // variable binding we are about to strand silently; V4 simply drops the
  // capability, which *invalidates* those references — legal, but the
  // region itself must only be dropped once.
  record(rules::V4Retract,
         "retract " + Names.spelling(Var) + "." + Names.spelling(Field) +
             ", dropping " + toString(Target),
         [&] {
           Ctx.Heap.trackedVar(*Region, Var)->Fields.erase(Field);
           Ctx.Heap.removeRegion(Target);
         });
  return success();
}

ExpectedVoid VirtualEngine::attach(RegionId From, RegionId To,
                                   SourceLoc Loc) {
  if (From == To)
    return success();
  if (!Ctx.Heap.hasRegion(From) || !Ctx.Heap.hasRegion(To))
    return fail("cannot attach " + toString(From) + " to " + toString(To) +
                    ": region not in the reservation",
                Loc);
  if (!Ctx.Heap.canAttach(From, To))
    return fail("cannot attach " + toString(From) + " to " + toString(To) +
                    ": pinned region or conflicting tracked variables",
                Loc);
  record(rules::V5Attach, "attach " + toString(From) + " -> " + toString(To),
         [&] {
           Ctx.Heap.attach(From, To);
           Ctx.Vars.renameRegion(From, To);
         });
  return success();
}

ExpectedVoid VirtualEngine::dropRegion(RegionId R, SourceLoc Loc) {
  const RegionTrack *Track = Ctx.Heap.lookup(R);
  if (!Track)
    return fail("cannot drop absent region " + toString(R), Loc);
  if (Track->Pinned)
    return fail("cannot drop pinned region " + toString(R), Loc);
  record(rules::FDropRegion, "drop " + toString(R),
         [&] { Ctx.Heap.removeRegion(R); });
  return success();
}

ExpectedVoid VirtualEngine::pinRegion(RegionId R, SourceLoc Loc) {
  RegionTrack *Track = Ctx.Heap.lookup(R);
  if (!Track)
    return fail("cannot pin absent region " + toString(R), Loc);
  if (Track->Pinned)
    return success();
  record(rules::FPinRegion, "pin " + toString(R),
         [&] { Ctx.Heap.lookup(R)->Pinned = true; });
  return success();
}

ExpectedVoid VirtualEngine::pinVar(Symbol Var, SourceLoc Loc) {
  auto Region = Ctx.Heap.trackingRegionOf(Var);
  if (!Region)
    return fail("cannot pin untracked variable '" + Names.spelling(Var) +
                    "'",
                Loc);
  VarTrack *Track = Ctx.Heap.trackedVar(*Region, Var);
  if (Track->Pinned)
    return success();
  record(rules::FPinRegion, "pin var " + Names.spelling(Var),
         [&] { Ctx.Heap.trackedVar(*Region, Var)->Pinned = true; });
  return success();
}

ExpectedVoid VirtualEngine::ensureFocused(Symbol Var, SourceLoc Loc) {
  if (Ctx.Heap.trackingRegionOf(Var))
    return success();
  return focus(Var, Loc);
}

Expected<RegionId> VirtualEngine::ensureFieldTracked(Symbol Var,
                                                     Symbol Field,
                                                     SourceLoc Loc) {
  if (auto Err = ensureFocused(Var, Loc); !Err)
    return Err.takeFailure();
  auto Region = Ctx.Heap.trackingRegionOf(Var);
  assert(Region && "just focused");
  const VarTrack *Track = Ctx.Heap.trackedVar(*Region, Var);
  auto FieldIt = Track->Fields.find(Field);
  if (FieldIt != Track->Fields.end())
    return FieldIt->second;
  return explore(Var, Field, Loc);
}

ExpectedVoid VirtualEngine::releaseRegion(RegionId R, SourceLoc Loc) {
  std::vector<RegionId> InProgress;
  return releaseRegionImpl(R, Loc, InProgress);
}

ExpectedVoid
VirtualEngine::releaseRegionImpl(RegionId R, SourceLoc Loc,
                                 std::vector<RegionId> &InProgress) {
  const RegionTrack *Track = Ctx.Heap.lookup(R);
  if (!Track)
    return fail("cannot release absent region " + toString(R), Loc);
  if (Track->Pinned)
    return fail("cannot release pinned region " + toString(R), Loc);
  if (std::find(InProgress.begin(), InProgress.end(), R) !=
      InProgress.end())
    return fail("cannot release region " + toString(R) +
                    ": cyclic tracked-region structure (repoint the "
                    "offending iso fields first)",
                Loc);
  InProgress.push_back(R);
  // Copy the variable list; retracts mutate the context.
  while (true) {
    const RegionTrack *Current = Ctx.Heap.lookup(R);
    assert(Current && "region vanished while releasing");
    if (Current->Vars.empty())
      break;
    Symbol Var = Current->Vars.begin()->first;
    const VarTrack &VTrack = Current->Vars.begin()->second;
    if (VTrack.Pinned)
      return fail("cannot release region " + toString(R) +
                      ": tracked variable '" + Names.spelling(Var) +
                      "' is pinned",
                  Loc);
    while (true) {
      const VarTrack *VT = Ctx.Heap.trackedVar(R, Var);
      assert(VT && "tracked variable vanished while releasing");
      if (VT->Fields.empty())
        break;
      Symbol Field = VT->Fields.begin()->first;
      RegionId Target = VT->Fields.begin()->second;
      if (Ctx.Heap.hasRegion(Target) &&
          !Ctx.Heap.lookup(Target)->empty()) {
        if (auto Err = releaseRegionImpl(Target, Loc, InProgress); !Err)
          return Err;
      }
      if (auto Err = retract(Var, Field, Loc); !Err)
        return Err;
    }
    if (auto Err = unfocus(Var, Loc); !Err)
      return Err;
  }
  InProgress.pop_back();
  return success();
}

ExpectedVoid VirtualEngine::releaseVar(Symbol Var, SourceLoc Loc) {
  auto Region = Ctx.Heap.trackingRegionOf(Var);
  if (!Region)
    return success();
  while (true) {
    const VarTrack *Track = Ctx.Heap.trackedVar(*Region, Var);
    assert(Track && "tracked variable vanished while releasing");
    if (Track->Fields.empty())
      break;
    Symbol Field = Track->Fields.begin()->first;
    RegionId Target = Track->Fields.begin()->second;
    if (Ctx.Heap.hasRegion(Target) && !Ctx.Heap.lookup(Target)->empty()) {
      if (auto Err = releaseRegion(Target, Loc); !Err)
        return Err;
    }
    if (auto Err = retract(Var, Field, Loc); !Err)
      return Err;
  }
  return unfocus(Var, Loc);
}

ExpectedVoid VirtualEngine::mergeRegions(RegionId From, RegionId To,
                                         SourceLoc Loc) {
  return attach(From, To, Loc);
}
