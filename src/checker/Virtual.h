//===- checker/Virtual.h - Virtual transformations (V1–V5) ------*- C++ -*-===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The virtual transformation rules of Fig. 11, applied on demand by the
/// checker: transformations that change the *representation* of the static
/// heap context without changing the heap it describes.
///
///   V1 Focus    — start tracking a variable in an empty, unpinned region.
///   V2 Unfocus  — stop tracking a variable with no tracked fields.
///   V3 Explore  — start tracking an iso field, introducing a fresh region
///                 for its (dominating) target.
///   V4 Retract  — stop tracking an iso field whose target region is empty,
///                 dropping the target region (restores domination and
///                 invalidates other references into the target).
///   V5 Attach   — merge two regions into one (coarsens separation).
///
/// The VirtualEngine applies single rules with full legality checks and
/// records every application into a derivation sink; compound helpers
/// (ensureFocused, ensureFieldTracked, releaseRegion, mergeRegions) build
/// the greedy "transform on demand" decision procedure of §4.6.
///
//===----------------------------------------------------------------------===//

#ifndef FEARLESS_CHECKER_VIRTUAL_H
#define FEARLESS_CHECKER_VIRTUAL_H

#include "checker/Derivation.h"
#include "regions/Contexts.h"
#include "support/Expected.h"

namespace fearless {

/// Applies V-rules to a Contexts, recording derivation steps.
class VirtualEngine {
public:
  /// \p Sink may be null (no derivation recording, used by benchmarks).
  VirtualEngine(Contexts &Ctx, RegionSupply &Supply, const Interner &Names,
                DerivStep *Sink, size_t *StepCounter = nullptr)
      : Ctx(Ctx), Supply(Supply), Names(Names), Sink(Sink),
        StepCounter(StepCounter) {}

  //===--------------------------------------------------------------------===
  // Single rules
  //===--------------------------------------------------------------------===

  /// V1: focuses \p Var in its region. Requires: Var bound to a region
  /// present in H whose tracking context is empty and unpinned.
  ExpectedVoid focus(Symbol Var, SourceLoc Loc);

  /// V2: unfocuses \p Var. Requires: tracked with an empty field map.
  ExpectedVoid unfocus(Symbol Var, SourceLoc Loc);

  /// V3: tracks iso field \p Field of focused \p Var, returning the fresh
  /// target region. Requires: Var tracked and unpinned; field not already
  /// tracked.
  Expected<RegionId> explore(Symbol Var, Symbol Field, SourceLoc Loc);

  /// V4: untracks \p Field of \p Var, dropping its target region from H.
  /// Requires: the target region present, empty, unpinned, and not
  /// targeted by any other tracked field.
  ExpectedVoid retract(Symbol Var, Symbol Field, SourceLoc Loc);

  /// V5: merges region \p From into \p To (renaming From everywhere).
  /// Requires: both present and unpinned; merged context well-formed.
  ExpectedVoid attach(RegionId From, RegionId To, SourceLoc Loc);

  //===--------------------------------------------------------------------===
  // Framing-style weakenings (TS2)
  //===--------------------------------------------------------------------===

  /// Drops region \p R from H entirely, discarding its tracking context.
  /// Objects in R become permanently inaccessible (strict weakening).
  /// Requires: R present and unpinned.
  ExpectedVoid dropRegion(RegionId R, SourceLoc Loc);

  /// Pins region \p R (weakening to partial information).
  ExpectedVoid pinRegion(RegionId R, SourceLoc Loc);

  /// Pins the tracking entry of \p Var (no new fields may be explored).
  ExpectedVoid pinVar(Symbol Var, SourceLoc Loc);

  //===--------------------------------------------------------------------===
  // Compound, on-demand helpers (the greedy decision procedure)
  //===--------------------------------------------------------------------===

  /// Ensures \p Var is tracked, focusing if needed.
  ExpectedVoid ensureFocused(Symbol Var, SourceLoc Loc);

  /// Ensures \p Var.\p Field is tracked, focusing and exploring as needed.
  /// Returns the target region (may be a dead region if the field was
  /// invalidated; the caller decides whether that is acceptable).
  Expected<RegionId> ensureFieldTracked(Symbol Var, Symbol Field,
                                        SourceLoc Loc);

  /// Drives region \p R's tracking context to empty: recursively retracts
  /// every tracked field of every tracked variable in R (releasing the
  /// target regions), then unfocuses the variables. Fails on pinned
  /// entries, dead field targets, and cyclic tracked-region structure.
  ExpectedVoid releaseRegion(RegionId R, SourceLoc Loc);

  /// Unfocuses \p Var if tracked, first retracting all its fields (each
  /// target released recursively).
  ExpectedVoid releaseVar(Symbol Var, SourceLoc Loc);

  /// Makes \p From and \p To the same region via V5 (no-op when equal).
  ExpectedVoid mergeRegions(RegionId From, RegionId To, SourceLoc Loc);

private:
  ExpectedVoid releaseRegionImpl(RegionId R, SourceLoc Loc,
                                 std::vector<RegionId> &InProgress);

  /// Records a derivation step with rule \p Rule around mutation \p Fn.
  template <typename Fn>
  void record(const char *Rule, std::string Detail, Fn &&Mutate) {
    if (StepCounter)
      ++*StepCounter;
    if (!Sink) {
      Mutate();
      return;
    }
    auto Step = std::make_unique<DerivStep>();
    Step->Rule = Rule;
    Step->Detail = std::move(Detail);
    Step->Before = Ctx;
    Mutate();
    Step->After = Ctx;
    Sink->addChild(std::move(Step));
  }

  Contexts &Ctx;
  RegionSupply &Supply;
  const Interner &Names;
  DerivStep *Sink;
  size_t *StepCounter;
};

} // namespace fearless

#endif // FEARLESS_CHECKER_VIRTUAL_H
