//===- support/Expected.h - Lightweight expected<T, E> ---------*- C++ -*-===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal expected-style result type used by all fallible APIs in this
/// project. Library code does not use exceptions; a function that can fail
/// returns Expected<T> carrying either a value or a Diagnostic describing
/// the failure.
///
//===----------------------------------------------------------------------===//

#ifndef FEARLESS_SUPPORT_EXPECTED_H
#define FEARLESS_SUPPORT_EXPECTED_H

#include "support/Diagnostics.h"

#include <cassert>
#include <utility>
#include <variant>

namespace fearless {

/// Tag wrapper distinguishing the error alternative of Expected.
struct Failure {
  Diagnostic Diag;
};

/// Creates a Failure from a diagnostic message and optional location.
inline Failure fail(std::string Message, SourceLoc Loc = SourceLoc()) {
  return Failure{Diagnostic{DiagnosticSeverity::Error, std::move(Message),
                            Loc}};
}

/// Either a value of type T or a Diagnostic explaining why the value could
/// not be produced. Modeled on llvm::Expected but without the
/// checked-before-destruction discipline (we rely on tests instead).
template <typename T> class Expected {
public:
  /*implicit*/ Expected(T Value) : Storage(std::move(Value)) {}
  /*implicit*/ Expected(Failure F) : Storage(std::move(F.Diag)) {}

  /// True when a value is present.
  explicit operator bool() const {
    return std::holds_alternative<T>(Storage);
  }
  bool hasValue() const { return std::holds_alternative<T>(Storage); }

  T &operator*() {
    assert(hasValue() && "dereferencing an error Expected");
    return std::get<T>(Storage);
  }
  const T &operator*() const {
    assert(hasValue() && "dereferencing an error Expected");
    return std::get<T>(Storage);
  }
  T *operator->() { return &**this; }
  const T *operator->() const { return &**this; }

  /// The diagnostic; only valid when !hasValue().
  const Diagnostic &error() const {
    assert(!hasValue() && "no error present");
    return std::get<Diagnostic>(Storage);
  }

  /// Moves the value out; only valid when hasValue().
  T take() {
    assert(hasValue() && "taking from an error Expected");
    return std::move(std::get<T>(Storage));
  }

  /// Re-wraps the error for propagation into a differently-typed Expected.
  Failure takeFailure() const { return Failure{error()}; }

private:
  std::variant<T, Diagnostic> Storage;
};

/// Expected<void> analogue: success or a diagnostic.
class ExpectedVoid {
public:
  ExpectedVoid() = default;
  /*implicit*/ ExpectedVoid(Failure F) : Diag(std::move(F.Diag)) {}

  explicit operator bool() const { return !Diag.has_value(); }
  bool hasValue() const { return !Diag.has_value(); }

  const Diagnostic &error() const {
    assert(Diag && "no error present");
    return *Diag;
  }
  Failure takeFailure() const { return Failure{error()}; }

private:
  std::optional<Diagnostic> Diag;
};

/// Returns a success ExpectedVoid; reads better than `return {};`.
inline ExpectedVoid success() { return ExpectedVoid(); }

} // namespace fearless

#endif // FEARLESS_SUPPORT_EXPECTED_H
