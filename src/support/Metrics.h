//===- support/Metrics.h - Runtime metrics registry -------------*- C++ -*-===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime observability layer: cheap per-thread counters
/// (MachineStats) that every stepping thread updates without
/// synchronization, and the RuntimeMetrics registry that aggregates them
/// at join together with executor- and channel-level counters. The
/// registry renders to single-line JSON with stable keys so bench runs
/// and `fearlessc --metrics` output stay comparable across revisions.
///
//===----------------------------------------------------------------------===//

#ifndef FEARLESS_SUPPORT_METRICS_H
#define FEARLESS_SUPPORT_METRICS_H

#include <cstdint>
#include <functional>
#include <string>

namespace fearless {

/// Per-thread interpreter counters. Each thread owns one instance and
/// updates it lock-free; a machine aggregates them at join.
struct MachineStats {
  uint64_t Steps = 0;
  uint64_t ReservationChecks = 0;
  uint64_t DisconnectChecks = 0;
  /// `if disconnected` checks that actually found the graphs disjoint.
  uint64_t DisconnectTaken = 0;
  /// Checks answered from the static verdict table with no traversal.
  uint64_t DisconnectElided = 0;
  uint64_t DisconnectObjectsVisited = 0;
  uint64_t DisconnectEdgesTraversed = 0;
  uint64_t Sends = 0;
  uint64_t Recvs = 0;
  uint64_t Allocations = 0;
  /// Bytecode instructions retired by the VM engine (zero under the
  /// tree-walking interpreter).
  uint64_t VmInstructions = 0;
  /// Field-access inline-cache hits/misses (VM engine only).
  uint64_t IcHits = 0;
  uint64_t IcMisses = 0;

  /// Accumulates another stats block. Supervised restarts use it to fold
  /// a dying attempt's work into the thread's lifetime totals.
  void merge(const MachineStats &O);
};

/// Aggregated counters for one runtime execution (one Machine::run or
/// ParallelExec::run). Interpreter counters are merged from the
/// per-thread MachineStats at join; executor and channel counters are
/// filled in by the owning machine.
struct RuntimeMetrics {
  // Interpreter counters (sum over threads).
  uint64_t Steps = 0;
  uint64_t Sends = 0;
  uint64_t Recvs = 0;
  uint64_t Allocations = 0;
  uint64_t ReservationChecks = 0;
  uint64_t DisconnectChecks = 0;
  uint64_t DisconnectTaken = 0;
  uint64_t DisconnectElided = 0;
  uint64_t DisconnectObjectsVisited = 0;
  uint64_t DisconnectEdgesTraversed = 0;

  // VM engine counters (zero under the tree-walking interpreter).
  /// Bytecode instructions retired across all threads.
  uint64_t VmInstructions = 0;
  /// Field-access inline-cache hits and misses.
  uint64_t IcHits = 0;
  uint64_t IcMisses = 0;
  /// Dynamic checks the erased-mode codegen omitted (compile-time count;
  /// zero in checked mode and under the interpreter).
  uint64_t ChecksErased = 0;

  // Static-analysis counters (filled at analyze/compile time by the
  // driver, not by the execution engines): the per-site verdict split of
  // the region-graph analysis whose table feeds disconnect elision.
  uint64_t AnalysisMustDisconnected = 0;
  uint64_t AnalysisMustConnected = 0;
  uint64_t AnalysisUnknown = 0;

  // Executor counters.
  uint64_t ThreadsSpawned = 0;
  uint64_t ThreadsFinished = 0;
  /// Threads stopped cleanly mid-recv because every possible sender had
  /// already finished (channel closure), or cancelled by an abort.
  uint64_t ThreadsCancelled = 0;
  uint64_t ThreadsErrored = 0;
  /// Objects in the heap when the run ended.
  uint64_t HeapObjects = 0;
  uint64_t WallMicros = 0;
  /// 1 when the watchdog had to abort the run.
  uint64_t WatchdogFired = 0;

  // Task-scheduler counters (M:N executor only; zero under the legacy
  // thread-per-spawn mode and the deterministic machine).
  /// Language threads admitted to the task scheduler as green threads.
  uint64_t TasksSpawned = 0;
  /// Tasks taken from another worker's run queue.
  uint64_t Steals = 0;
  /// Times a task parked on a channel waiting for a value (instead of
  /// blocking an OS thread in recv).
  uint64_t Parks = 0;

  // Robustness counters (fault injection + supervision).
  /// Faults fired by the deterministic injector during the run.
  uint64_t FaultsInjected = 0;
  /// Thread attempts restarted by the supervision policy.
  uint64_t ThreadsRestarted = 0;
  /// Total supervision backoff slept before restarts (computed, so the
  /// value is deterministic for a given plan/seed).
  uint64_t RestartBackoffMillis = 0;
  /// Faults that could not be recovered and escalated to a run abort
  /// (restart budget exhausted, effects already externalized, or
  /// supervision disabled).
  uint64_t FaultsEscalated = 0;

  // Channel counters (real-thread executor only).
  uint64_t ChannelsCreated = 0;
  uint64_t ChannelSends = 0;
  uint64_t ChannelRecvs = 0;
  /// Highest queue depth observed on any single channel.
  uint64_t ChannelPeakDepth = 0;
  /// Values discarded because they were sent into a closing run.
  uint64_t ChannelDroppedValues = 0;

  // Model-checker counters (`fearlessc mc` only; zero elsewhere).
  /// Full executions the explorer ran to an end state.
  uint64_t McSchedulesExplored = 0;
  /// Redundant branches sleep-set pruning retired without re-execution.
  uint64_t McSchedulesPruned = 0;
  /// Completed end states canonically fingerprinted for the
  /// schedule-independence check.
  uint64_t McStatesFingerprinted = 0;

  // Daemon counters (fearlessd only; zero in standalone runs). The
  // daemon's `metrics` op reports its lifetime aggregate with these
  // gauges stamped in (docs/SERVER.md).
  /// Sessions currently owned by a server worker.
  uint64_t SessionsActive = 0;
  /// Derivation-cache lookups served without compiling (includes
  /// requests coalesced onto another session's in-flight compile).
  uint64_t CacheHits = 0;
  /// Derivation-cache lookups that had to compile.
  uint64_t CacheMisses = 0;
  /// Connections refused with a typed `overloaded` response because the
  /// pending-session queue was full.
  uint64_t RequestsRejected = 0;

  /// Accumulates one thread's interpreter counters (called at join).
  void mergeThread(const MachineStats &S);

  /// Accumulates a whole run's metrics — every counter summed. The
  /// daemon folds each served run into its lifetime aggregate with this
  /// (gauges like SessionsActive are overwritten afterwards, not summed).
  void merge(const RuntimeMetrics &O);

  /// Visits every counter as a (name, value) pair in a stable order.
  void forEach(
      const std::function<void(const char *, uint64_t)> &Fn) const;

  /// Renders the metrics as a single-line JSON object with stable keys,
  /// suitable for BENCH_*.json side files.
  std::string toJson() const;
};

} // namespace fearless

#endif // FEARLESS_SUPPORT_METRICS_H
