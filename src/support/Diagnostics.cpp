//===- support/Diagnostics.cpp --------------------------------------------===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

#include <sstream>

using namespace fearless;

std::string fearless::toString(SourceLoc Loc) {
  if (!Loc.isValid())
    return "<unknown>";
  return std::to_string(Loc.Line) + ":" + std::to_string(Loc.Column);
}

std::string Diagnostic::render() const {
  const char *Tag = "error";
  switch (Severity) {
  case DiagnosticSeverity::Error:
    Tag = "error";
    break;
  case DiagnosticSeverity::Warning:
    Tag = "warning";
    break;
  case DiagnosticSeverity::Note:
    Tag = "note";
    break;
  }
  std::ostringstream OS;
  OS << Tag << ": " << Message;
  if (Loc.isValid())
    OS << " at " << toString(Loc);
  return OS.str();
}

void DiagnosticEngine::report(DiagnosticSeverity Severity,
                              std::string Message, SourceLoc Loc) {
  if (Severity == DiagnosticSeverity::Error)
    ++NumErrors;
  Diags.push_back(Diagnostic{Severity, std::move(Message), Loc});
}

std::string DiagnosticEngine::renderAll() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.render();
    Out += '\n';
  }
  return Out;
}
