//===- support/Trace.cpp --------------------------------------------------===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//

#include "support/Trace.h"

#include <cstdio>
#include <fstream>

using namespace fearless;

#if FEARLESS_TRACING_ENABLED

namespace {

uint64_t steadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Minimal JSON string escaper. Names and labels are static strings
/// under our control, but escaping keeps the exporter robust if one ever
/// carries a quote or backslash.
void appendEscaped(std::string &Out, const char *S) {
  for (; *S; ++S) {
    switch (*S) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    default:
      if (static_cast<unsigned char>(*S) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", *S);
        Out += Buf;
      } else {
        Out += *S;
      }
    }
  }
}

/// Appends nanoseconds as fractional microseconds (Chrome's `ts`/`dur`
/// unit) with nanosecond resolution.
void appendMicros(std::string &Out, uint64_t Ns) {
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%llu.%03u",
                static_cast<unsigned long long>(Ns / 1000),
                static_cast<unsigned>(Ns % 1000));
  Out += Buf;
}

void appendEvent(std::string &Out, const TraceEvent &E) {
  Out += "{\"name\":\"";
  appendEscaped(Out, E.Name);
  Out += "\",\"cat\":\"";
  appendEscaped(Out, E.Category ? E.Category : "runtime");
  Out += "\",\"ph\":\"";
  Out += E.Phase;
  Out += "\",\"pid\":1,\"tid\":";
  Out += std::to_string(E.Tid);
  Out += ",\"ts\":";
  appendMicros(Out, E.StartNs);
  if (E.Phase == 'X') {
    Out += ",\"dur\":";
    appendMicros(Out, E.DurNs);
  }
  if (E.Phase == 'i')
    Out += ",\"s\":\"t\""; // instant scope: thread
  if (E.ArgName) {
    Out += ",\"args\":{\"";
    appendEscaped(Out, E.ArgName);
    Out += "\":";
    Out += std::to_string(E.ArgValue);
    Out += "}";
  }
  Out += "}";
}

} // namespace

uint64_t TraceBuffer::now() const { return steadyNowNs() - OriginNs; }

TraceSession::TraceSession(TraceConfig Config)
    : Config(Config), OriginNs(steadyNowNs()) {}

TraceBuffer &TraceSession::registerThread(uint32_t Tid,
                                          const char *Label) {
  std::lock_guard<std::mutex> Lock(M);
  Buffers.emplace_back(Tid, Label, Config.BufferCapacity, OriginNs);
  return Buffers.back();
}

uint64_t TraceSession::nowNs() const { return steadyNowNs() - OriginNs; }

uint64_t TraceSession::droppedEvents() const {
  std::lock_guard<std::mutex> Lock(M);
  uint64_t Dropped = 0;
  for (const TraceBuffer &B : Buffers)
    Dropped += B.dropped();
  return Dropped;
}

size_t TraceSession::bufferCount() const {
  std::lock_guard<std::mutex> Lock(M);
  return Buffers.size();
}

std::string TraceSession::toChromeJson() const {
  std::lock_guard<std::mutex> Lock(M);
  std::string Out = "{\"traceEvents\":[";
  bool First = true;
  auto Emit = [&](const std::string &Event) {
    if (!First)
      Out += ",\n";
    First = false;
    Out += Event;
  };

  // Process metadata, then one thread-name row per buffer.
  Emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
       "\"args\":{\"name\":\"fearless\"}}");
  uint64_t Dropped = 0, Recorded = 0;
  for (const TraceBuffer &B : Buffers) {
    std::string Meta = "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                       "\"tid\":";
    Meta += std::to_string(B.tid());
    Meta += ",\"args\":{\"name\":\"";
    appendEscaped(Meta, B.label());
    Meta += "\"}}";
    Emit(Meta);
    Dropped += B.dropped();
    Recorded += B.recorded();
  }

  for (const TraceBuffer &B : Buffers)
    B.forEachRetained([&](const TraceEvent &E) {
      std::string Event;
      Event.reserve(160);
      appendEvent(Event, E);
      Emit(Event);
    });

  Out += "],\"displayTimeUnit\":\"ns\",\"otherData\":{"
         "\"recorded_events\":\"" +
         std::to_string(Recorded) + "\",\"dropped_events\":\"" +
         std::to_string(Dropped) + "\"}}";
  Out += "\n";
  return Out;
}

bool TraceSession::writeChromeJson(const std::string &Path,
                                   std::string &Error) const {
  std::ofstream Out(Path);
  if (!Out) {
    Error = "cannot open trace output '" + Path + "' for writing";
    return false;
  }
  Out << toChromeJson();
  Out.flush();
  if (!Out) {
    Error = "failed while writing trace output '" + Path + "'";
    return false;
  }
  return true;
}

#else // !FEARLESS_TRACING_ENABLED

// The stubs still emit *valid* (empty) Chrome JSON so `--trace` degrades
// gracefully in a compile-out build instead of producing a broken file.

std::string TraceSession::toChromeJson() const {
  return "{\"traceEvents\":[],\"displayTimeUnit\":\"ns\",\"otherData\":{"
         "\"recorded_events\":\"0\",\"dropped_events\":\"0\","
         "\"tracing\":\"compiled out (FEARLESS_TRACE=OFF)\"}}\n";
}

bool TraceSession::writeChromeJson(const std::string &Path,
                                   std::string &Error) const {
  std::ofstream Out(Path);
  if (!Out) {
    Error = "cannot open trace output '" + Path + "' for writing";
    return false;
  }
  Out << toChromeJson();
  Out.flush();
  if (!Out) {
    Error = "failed while writing trace output '" + Path + "'";
    return false;
  }
  return true;
}

#endif // FEARLESS_TRACING_ENABLED
