//===- support/Interner.h - String interning ------------------*- C++ -*-===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A string interner mapping identifier spellings to dense Symbol ids, so
/// that names can be compared and used as map keys cheaply and printed
/// stably.
///
//===----------------------------------------------------------------------===//

#ifndef FEARLESS_SUPPORT_INTERNER_H
#define FEARLESS_SUPPORT_INTERNER_H

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace fearless {

/// A dense id for an interned identifier. Symbol 0 is the invalid symbol.
struct Symbol {
  uint32_t Id = 0;

  bool isValid() const { return Id != 0; }
  bool operator==(const Symbol &) const = default;
  auto operator<=>(const Symbol &) const = default;
};

/// Interns identifier spellings; owned by a Program.
class Interner {
public:
  /// Returns the unique Symbol for \p Text, interning it if new.
  Symbol intern(std::string_view Text);

  /// Returns the spelling of \p Sym; Sym must be valid and owned here.
  const std::string &spelling(Symbol Sym) const;

  /// Number of interned symbols (excluding the invalid symbol).
  size_t size() const { return Spellings.size() - 1; }

private:
  std::vector<std::string> Spellings = {""}; // index 0 reserved: invalid
  std::unordered_map<std::string, uint32_t> Index;
};

} // namespace fearless

template <> struct std::hash<fearless::Symbol> {
  size_t operator()(const fearless::Symbol &S) const noexcept {
    return std::hash<uint32_t>()(S.Id);
  }
};

#endif // FEARLESS_SUPPORT_INTERNER_H
