//===- support/Metrics.cpp ------------------------------------------------===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//

#include "support/Metrics.h"

using namespace fearless;

void MachineStats::merge(const MachineStats &O) {
  Steps += O.Steps;
  ReservationChecks += O.ReservationChecks;
  DisconnectChecks += O.DisconnectChecks;
  DisconnectTaken += O.DisconnectTaken;
  DisconnectElided += O.DisconnectElided;
  DisconnectObjectsVisited += O.DisconnectObjectsVisited;
  DisconnectEdgesTraversed += O.DisconnectEdgesTraversed;
  Sends += O.Sends;
  Recvs += O.Recvs;
  Allocations += O.Allocations;
  VmInstructions += O.VmInstructions;
  IcHits += O.IcHits;
  IcMisses += O.IcMisses;
}

void RuntimeMetrics::mergeThread(const MachineStats &S) {
  Steps += S.Steps;
  Sends += S.Sends;
  Recvs += S.Recvs;
  Allocations += S.Allocations;
  ReservationChecks += S.ReservationChecks;
  DisconnectChecks += S.DisconnectChecks;
  DisconnectTaken += S.DisconnectTaken;
  DisconnectElided += S.DisconnectElided;
  DisconnectObjectsVisited += S.DisconnectObjectsVisited;
  DisconnectEdgesTraversed += S.DisconnectEdgesTraversed;
  VmInstructions += S.VmInstructions;
  IcHits += S.IcHits;
  IcMisses += S.IcMisses;
}

void RuntimeMetrics::merge(const RuntimeMetrics &O) {
  Steps += O.Steps;
  Sends += O.Sends;
  Recvs += O.Recvs;
  Allocations += O.Allocations;
  ReservationChecks += O.ReservationChecks;
  DisconnectChecks += O.DisconnectChecks;
  DisconnectTaken += O.DisconnectTaken;
  DisconnectElided += O.DisconnectElided;
  DisconnectObjectsVisited += O.DisconnectObjectsVisited;
  DisconnectEdgesTraversed += O.DisconnectEdgesTraversed;
  VmInstructions += O.VmInstructions;
  IcHits += O.IcHits;
  IcMisses += O.IcMisses;
  ChecksErased += O.ChecksErased;
  AnalysisMustDisconnected += O.AnalysisMustDisconnected;
  AnalysisMustConnected += O.AnalysisMustConnected;
  AnalysisUnknown += O.AnalysisUnknown;
  ThreadsSpawned += O.ThreadsSpawned;
  ThreadsFinished += O.ThreadsFinished;
  ThreadsCancelled += O.ThreadsCancelled;
  ThreadsErrored += O.ThreadsErrored;
  HeapObjects += O.HeapObjects;
  WallMicros += O.WallMicros;
  WatchdogFired += O.WatchdogFired;
  TasksSpawned += O.TasksSpawned;
  Steals += O.Steals;
  Parks += O.Parks;
  FaultsInjected += O.FaultsInjected;
  ThreadsRestarted += O.ThreadsRestarted;
  RestartBackoffMillis += O.RestartBackoffMillis;
  FaultsEscalated += O.FaultsEscalated;
  ChannelsCreated += O.ChannelsCreated;
  ChannelSends += O.ChannelSends;
  ChannelRecvs += O.ChannelRecvs;
  ChannelPeakDepth =
      ChannelPeakDepth > O.ChannelPeakDepth ? ChannelPeakDepth
                                            : O.ChannelPeakDepth;
  ChannelDroppedValues += O.ChannelDroppedValues;
  McSchedulesExplored += O.McSchedulesExplored;
  McSchedulesPruned += O.McSchedulesPruned;
  McStatesFingerprinted += O.McStatesFingerprinted;
  SessionsActive += O.SessionsActive;
  CacheHits += O.CacheHits;
  CacheMisses += O.CacheMisses;
  RequestsRejected += O.RequestsRejected;
}

void RuntimeMetrics::forEach(
    const std::function<void(const char *, uint64_t)> &Fn) const {
  Fn("steps", Steps);
  Fn("sends", Sends);
  Fn("recvs", Recvs);
  Fn("allocations", Allocations);
  Fn("reservation_checks", ReservationChecks);
  Fn("disconnect_checks", DisconnectChecks);
  Fn("disconnect_taken", DisconnectTaken);
  Fn("elided_checks", DisconnectElided);
  Fn("disconnect_objects_visited", DisconnectObjectsVisited);
  Fn("disconnect_edges_traversed", DisconnectEdgesTraversed);
  Fn("threads_spawned", ThreadsSpawned);
  Fn("threads_finished", ThreadsFinished);
  Fn("threads_cancelled", ThreadsCancelled);
  Fn("threads_errored", ThreadsErrored);
  Fn("heap_objects", HeapObjects);
  Fn("wall_micros", WallMicros);
  Fn("watchdog_fired", WatchdogFired);
  Fn("tasks_spawned", TasksSpawned);
  Fn("steals", Steals);
  Fn("parks", Parks);
  Fn("faults_injected", FaultsInjected);
  Fn("threads_restarted", ThreadsRestarted);
  Fn("restart_backoff_millis", RestartBackoffMillis);
  Fn("faults_escalated", FaultsEscalated);
  Fn("channels_created", ChannelsCreated);
  Fn("channel_sends", ChannelSends);
  Fn("channel_recvs", ChannelRecvs);
  Fn("channel_peak_depth", ChannelPeakDepth);
  Fn("channel_dropped_values", ChannelDroppedValues);
  Fn("vm_instructions", VmInstructions);
  Fn("ic_hits", IcHits);
  Fn("ic_misses", IcMisses);
  Fn("checks_erased", ChecksErased);
  Fn("analysis_must_disconnected", AnalysisMustDisconnected);
  Fn("analysis_must_connected", AnalysisMustConnected);
  Fn("analysis_unknown", AnalysisUnknown);
  Fn("mc_schedules_explored", McSchedulesExplored);
  Fn("mc_schedules_pruned", McSchedulesPruned);
  Fn("mc_states_fingerprinted", McStatesFingerprinted);
  Fn("sessions_active", SessionsActive);
  Fn("cache_hits", CacheHits);
  Fn("cache_misses", CacheMisses);
  Fn("requests_rejected", RequestsRejected);
}

std::string RuntimeMetrics::toJson() const {
  std::string Out = "{";
  bool First = true;
  forEach([&](const char *Name, uint64_t V) {
    if (!First)
      Out += ", ";
    First = false;
    Out += '"';
    Out += Name;
    Out += "\": ";
    Out += std::to_string(V);
  });
  Out += "}";
  return Out;
}
