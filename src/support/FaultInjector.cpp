//===- support/FaultInjector.cpp ------------------------------------------===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjector.h"

#include <cstdlib>

using namespace fearless;

// Spec / docs / trace vocabulary, indexed by FaultPoint. check_docs.py
// extracts this array and cross-checks it against the fault-point table
// in docs/OBSERVABILITY.md.
static constexpr const char *PointNames[NumFaultPoints] = {
    "chan.send",    "chan.recv",  "heap.alloc",
    "thread.start", "sched.step", "disconnect.traverse",
};

const char *fearless::faultPointName(FaultPoint P) {
  return PointNames[static_cast<size_t>(P)];
}

bool fearless::faultPointByName(std::string_view Name, FaultPoint &Out) {
  for (size_t I = 0; I < NumFaultPoints; ++I)
    if (Name == PointNames[I]) {
      Out = static_cast<FaultPoint>(I);
      return true;
    }
  return false;
}

namespace {

/// splitmix64: a cheap, well-mixed 64-bit permutation. The decision hash
/// feeds every bit of (seed, point, occurrence) through it so nearby
/// occurrence indices draw independent-looking values.
uint64_t splitmix64(uint64_t X) {
  X += 0x9E3779B97F4A7C15ull;
  X = (X ^ (X >> 30)) * 0xBF58476D1CE4E5B9ull;
  X = (X ^ (X >> 27)) * 0x94D049BB133111EBull;
  return X ^ (X >> 31);
}

bool parseU64(std::string_view S, uint64_t &Out) {
  if (S.empty())
    return false;
  uint64_t V = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return false;
    V = V * 10 + static_cast<uint64_t>(C - '0');
  }
  Out = V;
  return true;
}

bool parseProbability(std::string_view S, double &Out) {
  if (S.empty())
    return false;
  // strtod needs a terminated buffer; specs are short, so copy.
  std::string Buf(S);
  char *End = nullptr;
  double V = std::strtod(Buf.c_str(), &End);
  if (!End || *End != '\0')
    return false;
  if (!(V >= 0.0 && V <= 1.0))
    return false;
  Out = V;
  return true;
}

} // namespace

double FaultInjector::decide(size_t PointIdx, uint64_t Occ) const {
  uint64_t H = splitmix64(Plan.Seed ^
                          splitmix64((PointIdx + 1) * 0xA24BAED4963EE407ull) ^
                          Occ);
  // 53 mantissa bits -> uniform in [0, 1).
  return static_cast<double>(H >> 11) * 0x1.0p-53;
}

Expected<FaultPlan> fearless::parseFaultSpec(std::string_view Spec) {
  FaultPlan Plan;
  size_t Pos = 0;
  while (Pos <= Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    std::string_view Entry = Spec.substr(
        Pos, Comma == std::string_view::npos ? Spec.size() - Pos
                                             : Comma - Pos);
    Pos = Comma == std::string_view::npos ? Spec.size() + 1 : Comma + 1;
    if (Entry.empty())
      continue;

    size_t Eq = Entry.find('=');
    if (Eq == std::string_view::npos)
      return fail("fault spec entry '" + std::string(Entry) +
                  "' has no '=' (expected POINT=TRIGGER or seed=N)");
    std::string_view Key = Entry.substr(0, Eq);
    std::string_view Val = Entry.substr(Eq + 1);

    if (Key == "seed") {
      if (!parseU64(Val, Plan.Seed))
        return fail("fault spec: seed '" + std::string(Val) +
                    "' is not an unsigned integer");
      continue;
    }

    FaultPoint Point;
    if (!faultPointByName(Key, Point))
      return fail("fault spec: unknown fault point '" + std::string(Key) +
                  "' (known: chan.send, chan.recv, heap.alloc, "
                  "thread.start, sched.step, disconnect.traverse)");

    size_t Colon = Val.find(':');
    if (Colon == std::string_view::npos)
      return fail("fault spec: trigger '" + std::string(Val) + "' for " +
                  std::string(Key) +
                  " has no ':' (expected nth:N, every:K, or prob:P)");
    std::string_view TrKind = Val.substr(0, Colon);
    std::string_view TrArg = Val.substr(Colon + 1);

    FaultTrigger Tr;
    if (TrKind == "nth") {
      Tr.TriggerKind = FaultTrigger::Kind::Nth;
      if (!parseU64(TrArg, Tr.N) || Tr.N == 0)
        return fail("fault spec: nth:'" + std::string(TrArg) +
                    "' must be a positive integer");
    } else if (TrKind == "every") {
      Tr.TriggerKind = FaultTrigger::Kind::EveryK;
      if (!parseU64(TrArg, Tr.N) || Tr.N == 0)
        return fail("fault spec: every:'" + std::string(TrArg) +
                    "' must be a positive integer");
    } else if (TrKind == "prob") {
      Tr.TriggerKind = FaultTrigger::Kind::Probability;
      if (!parseProbability(TrArg, Tr.Probability))
        return fail("fault spec: prob:'" + std::string(TrArg) +
                    "' must be a number in [0, 1]");
    } else {
      return fail("fault spec: unknown trigger kind '" +
                  std::string(TrKind) +
                  "' (expected nth, every, or prob)");
    }
    Plan.Triggers[static_cast<size_t>(Point)] = Tr;
  }
  return Plan;
}

std::unique_ptr<FaultInjector>
FaultInjector::fromEnv(std::string *ErrorOut) {
  const char *Env = std::getenv("FEARLESS_FAULTS");
  if (!Env || !*Env)
    return nullptr;
  Expected<FaultPlan> Plan = parseFaultSpec(Env);
  if (!Plan) {
    if (ErrorOut)
      *ErrorOut = "FEARLESS_FAULTS: " + Plan.error().Message;
    return nullptr;
  }
  return std::make_unique<FaultInjector>(*Plan);
}
