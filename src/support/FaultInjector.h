//===- support/FaultInjector.h - Deterministic fault injection --*- C++ -*-===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic, seeded fault injection for the runtime: a fixed set of
/// named fault points (channel send/recv, heap allocation, thread start,
/// scheduler step, disconnect traversal) that the executors and the
/// interpreter consult on their hot paths, with per-point triggers
/// (nth-occurrence, every-k, seeded probability) parsed from a compact
/// spec string (`fearlessc run --faults SPEC`, or the FEARLESS_FAULTS
/// environment hook used by benches and CI chaos runs).
///
/// Design constraints mirror support/Trace.h:
///
///  1. **One branch when disabled.** The runtime-disabled path is a null
///     `FaultInjector *`: every site guards on one pointer test
///     (`if (FI && FI->shouldFire(...))`). An armed injector costs one
///     relaxed atomic increment per *armed* point and a plain load for
///     unarmed ones; nothing on the query path allocates (asserted in
///     tests/fault_test.cpp, measured in bench/bench_faults.cpp).
///  2. **Deterministic.** Decisions depend only on (plan seed, point,
///     per-point occurrence index) — never on wall clock or global RNG —
///     so a fault spec plus a seed replays the same fault schedule. Under
///     the real-thread executor the *count* of nth/every-k firings is
///     exact; which OS thread observes an occurrence index may vary with
///     interleaving (the atomic counters race benignly).
///  3. **Thread-safe.** The per-point counters are relaxed atomics; the
///     plan itself is immutable after construction.
///
/// Spec grammar (documented in docs/OBSERVABILITY.md):
///
///   spec    := entry ("," entry)*
///   entry   := POINT "=" trigger | "seed=" N
///   trigger := "nth:" N | "every:" K | "prob:" P
///
/// e.g. `chan.send=nth:3,heap.alloc=prob:0.01,seed=42`.
///
//===----------------------------------------------------------------------===//

#ifndef FEARLESS_SUPPORT_FAULTINJECTOR_H
#define FEARLESS_SUPPORT_FAULTINJECTOR_H

#include "support/Expected.h"

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

namespace fearless {

/// The instrumented fault points. Names (faultPointName) are the spec /
/// docs / trace vocabulary; keep docs/OBSERVABILITY.md's fault-point
/// table in sync (tools/check_docs.py gates on it).
enum class FaultPoint : uint8_t {
  ChanSend,           ///< `chan.send` — a send operation completing.
  ChanRecv,           ///< `chan.recv` — a recv operation starting.
  HeapAlloc,          ///< `heap.alloc` — a language-level `new`.
  ThreadStart,        ///< `thread.start` — a thread attempt starting.
  SchedStep,          ///< `sched.step` — one scheduler pulse.
  DisconnectTraverse, ///< `disconnect.traverse` — an `if disconnected`.
};

inline constexpr size_t NumFaultPoints = 6;

/// The spec-string spelling of \p P (e.g. "chan.send").
const char *faultPointName(FaultPoint P);

/// Parses a spec-string point name; returns false for unknown names.
bool faultPointByName(std::string_view Name, FaultPoint &Out);

/// When one fault point fires.
struct FaultTrigger {
  enum class Kind : uint8_t {
    Never,       ///< Point not armed (the default).
    Nth,         ///< Fire exactly once, on the N-th occurrence.
    EveryK,      ///< Fire on every K-th occurrence.
    Probability, ///< Fire with probability P per occurrence (seeded).
  };
  Kind TriggerKind = Kind::Never;
  uint64_t N = 0;         ///< Nth / EveryK parameter (1-based).
  double Probability = 0; ///< Probability parameter in [0, 1].
};

/// A full parsed spec: one trigger per point plus the decision seed.
struct FaultPlan {
  std::array<FaultTrigger, NumFaultPoints> Triggers{};
  /// Seeds the per-occurrence probability decisions (and is the
  /// conventional source for supervision backoff jitter).
  uint64_t Seed = 0;

  bool empty() const {
    for (const FaultTrigger &T : Triggers)
      if (T.TriggerKind != FaultTrigger::Kind::Never)
        return false;
    return true;
  }
};

/// Parses the spec grammar above. Unknown points, malformed triggers,
/// zero counts, and out-of-range probabilities are diagnosed.
Expected<FaultPlan> parseFaultSpec(std::string_view Spec);

/// A configured injector, shared by every thread of one run. Query with
/// shouldFire() at instrumented sites; a null injector pointer is the
/// disabled state (one branch per site).
class FaultInjector {
public:
  explicit FaultInjector(const FaultPlan &Plan) : Plan(Plan) {}
  FaultInjector(const FaultInjector &) = delete;
  FaultInjector &operator=(const FaultInjector &) = delete;

  /// True when the site owning \p P should fail this occurrence.
  /// Thread-safe, allocation-free; deterministic in
  /// (seed, point, occurrence index).
  bool shouldFire(FaultPoint P) {
    size_t Idx = static_cast<size_t>(P);
    const FaultTrigger &Tr = Plan.Triggers[Idx];
    if (Tr.TriggerKind == FaultTrigger::Kind::Never)
      return false;
    uint64_t Occ =
        Points[Idx].Occurrences.fetch_add(1, std::memory_order_relaxed) +
        1;
    bool Fire = false;
    switch (Tr.TriggerKind) {
    case FaultTrigger::Kind::Never:
      break;
    case FaultTrigger::Kind::Nth:
      Fire = Occ == Tr.N;
      break;
    case FaultTrigger::Kind::EveryK:
      Fire = Occ % Tr.N == 0;
      break;
    case FaultTrigger::Kind::Probability:
      Fire = decide(Idx, Occ) < Tr.Probability;
      break;
    }
    if (Fire)
      Points[Idx].Fired.fetch_add(1, std::memory_order_relaxed);
    return Fire;
  }

  /// Occurrences observed at armed point \p P so far.
  uint64_t occurrences(FaultPoint P) const {
    return Points[static_cast<size_t>(P)].Occurrences.load(
        std::memory_order_relaxed);
  }
  /// Faults fired at point \p P so far.
  uint64_t fired(FaultPoint P) const {
    return Points[static_cast<size_t>(P)].Fired.load(
        std::memory_order_relaxed);
  }
  /// Faults fired across all points (the FaultsInjected metric).
  uint64_t totalFired() const {
    uint64_t Total = 0;
    for (const PointState &S : Points)
      Total += S.Fired.load(std::memory_order_relaxed);
    return Total;
  }

  const FaultPlan &plan() const { return Plan; }

  /// Builds an injector from the FEARLESS_FAULTS environment variable.
  /// Returns null when the variable is unset or empty; on a malformed
  /// spec returns null and fills \p ErrorOut (when given) so callers can
  /// warn instead of silently running fault-free.
  static std::unique_ptr<FaultInjector>
  fromEnv(std::string *ErrorOut = nullptr);

private:
  struct PointState {
    std::atomic<uint64_t> Occurrences{0};
    std::atomic<uint64_t> Fired{0};
  };

  /// Deterministic per-occurrence uniform draw in [0, 1).
  double decide(size_t PointIdx, uint64_t Occ) const;

  const FaultPlan Plan;
  std::array<PointState, NumFaultPoints> Points{};
};

} // namespace fearless

#endif // FEARLESS_SUPPORT_FAULTINJECTOR_H
