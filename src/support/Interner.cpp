//===- support/Interner.cpp -----------------------------------------------===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//

#include "support/Interner.h"

#include <cassert>

using namespace fearless;

Symbol Interner::intern(std::string_view Text) {
  assert(!Text.empty() && "interning an empty identifier");
  auto It = Index.find(std::string(Text));
  if (It != Index.end())
    return Symbol{It->second};
  uint32_t Id = static_cast<uint32_t>(Spellings.size());
  Spellings.emplace_back(Text);
  Index.emplace(std::string(Text), Id);
  return Symbol{Id};
}

const std::string &Interner::spelling(Symbol Sym) const {
  assert(Sym.isValid() && Sym.Id < Spellings.size() &&
         "spelling of an unknown symbol");
  return Spellings[Sym.Id];
}
