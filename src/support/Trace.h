//===- support/Trace.h - Structured runtime tracing -------------*- C++ -*-===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Low-overhead structured tracing for the runtime: per-thread
/// fixed-capacity ring buffers of POD trace events, RAII span helpers,
/// and a session registry that merges the buffers (after join) into
/// Chrome `trace_event` JSON loadable in Perfetto / chrome://tracing.
///
/// Design constraints, in priority order:
///
///  1. **Allocation-free hot path.** A buffer's storage is reserved once
///     at registration; recording an event is a clock read plus a store
///     into the ring. Event names and categories are static strings —
///     nothing is copied or owned. This preserves the PR 2 steady-state
///     zero-allocation guarantee (`allocs_per_iter == 0`) with tracing
///     *enabled*, not just disabled.
///  2. **Near-zero disabled cost.** The runtime-disabled path is a null
///     `TraceBuffer *`: every instrumentation site guards on one pointer
///     test (measured in bench_trace). The compile-out path
///     (`-DFEARLESS_TRACE=OFF`, which defines FEARLESS_TRACE_DISABLED)
///     replaces every class with an empty inline stub so call sites
///     compile unchanged and the optimizer deletes them.
///  3. **No synchronization at record time.** Each buffer has exactly one
///     writer (a worker thread, a language thread stepped by the
///     deterministic machine, or a lock-protected subsystem such as
///     ChannelSet, which records only under its own mutex). The session
///     mutex is taken only at registration and export, both outside the
///     measured region.
///
/// Ring semantics: when a buffer is full, new events overwrite the
/// oldest — a trace always holds the *newest* window of activity, and
/// the exporter reports how many events were dropped.
///
/// Documented for users in docs/OBSERVABILITY.md (event schema, how to
/// open a trace in Perfetto); surfaced on the CLI as
/// `fearlessc run --trace out.json`.
///
//===----------------------------------------------------------------------===//

#ifndef FEARLESS_SUPPORT_TRACE_H
#define FEARLESS_SUPPORT_TRACE_H

#include <cstddef>
#include <cstdint>
#include <string>

#ifdef FEARLESS_TRACE_DISABLED
#define FEARLESS_TRACING_ENABLED 0
#else
#define FEARLESS_TRACING_ENABLED 1
#endif

#if FEARLESS_TRACING_ENABLED
#include <chrono>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>
#endif

namespace fearless {

/// One recorded event. POD; names/categories are static strings and are
/// never owned. `Phase` follows the Chrome trace_event phases that the
/// exporter emits: 'X' (complete, with duration) and 'i' (instant).
struct TraceEvent {
  const char *Name = nullptr;
  const char *Category = nullptr;
  /// Optional single numeric argument (`"args":{ArgName:ArgValue}`);
  /// null ArgName means no argument.
  const char *ArgName = nullptr;
  uint64_t StartNs = 0; ///< Nanoseconds since the session origin.
  uint64_t DurNs = 0;   ///< 0 for instant events.
  uint64_t ArgValue = 0;
  uint32_t Tid = 0;
  char Phase = 'X';
};

#if FEARLESS_TRACING_ENABLED

/// A fixed-capacity single-writer ring buffer of trace events. Storage
/// is allocated once at construction; `record` never allocates. On
/// overflow the oldest events are overwritten (newest-window semantics).
class TraceBuffer {
public:
  TraceBuffer(uint32_t Tid, const char *Label, size_t Capacity,
              uint64_t OriginNs)
      : Events(Capacity ? Capacity : 1), ThreadId(Tid), ThreadLabel(Label),
        OriginNs(OriginNs) {}

  /// Nanoseconds since the owning session's origin (steady clock).
  uint64_t now() const;

  /// Records a complete ('X') or instant ('i') event. Single-writer:
  /// only this buffer's owning thread may call it.
  void record(const char *Name, const char *Category, char Phase,
              uint64_t StartNs, uint64_t DurNs,
              const char *ArgName = nullptr, uint64_t ArgValue = 0) {
    TraceEvent &E = Events[Count % Events.size()];
    E.Name = Name;
    E.Category = Category;
    E.ArgName = ArgName;
    E.StartNs = StartNs;
    E.DurNs = DurNs;
    E.ArgValue = ArgValue;
    E.Tid = ThreadId;
    E.Phase = Phase;
    ++Count;
  }

  /// Records an instant event stamped now.
  void instant(const char *Name, const char *Category,
               const char *ArgName = nullptr, uint64_t ArgValue = 0) {
    record(Name, Category, 'i', now(), 0, ArgName, ArgValue);
  }

  uint32_t tid() const { return ThreadId; }
  const char *label() const { return ThreadLabel; }
  size_t capacity() const { return Events.size(); }
  /// Events recorded over the buffer's lifetime (monotone).
  uint64_t recorded() const { return Count; }
  /// Events currently retained (== recorded() until the ring wraps).
  size_t retained() const {
    return Count < Events.size() ? static_cast<size_t>(Count)
                                 : Events.size();
  }
  /// Events lost to ring overwrite.
  uint64_t dropped() const {
    return Count > Events.size() ? Count - Events.size() : 0;
  }

  /// Visits retained events oldest-first. Export-time only — must not
  /// race the owning writer thread.
  void forEachRetained(
      const std::function<void(const TraceEvent &)> &Fn) const {
    size_t N = retained();
    size_t Start = Count > Events.size()
                       ? static_cast<size_t>(Count % Events.size())
                       : 0;
    for (size_t I = 0; I < N; ++I)
      Fn(Events[(Start + I) % Events.size()]);
  }

private:
  std::vector<TraceEvent> Events;
  uint64_t Count = 0;
  uint32_t ThreadId;
  const char *ThreadLabel;
  uint64_t OriginNs;
};

/// Session configuration.
struct TraceConfig {
  /// Events retained per thread buffer. The default (64Ki events à 56
  /// bytes ≈ 3.5 MiB/thread) holds a few seconds of heavily instrumented
  /// runtime activity.
  size_t BufferCapacity = 64 * 1024;
};

/// One tracing session: owns every registered thread buffer and merges
/// them into Chrome trace_event JSON after the writers have joined.
class TraceSession {
public:
  explicit TraceSession(TraceConfig Config = {});

  /// Creates and returns a buffer for a writer thread. Thread-safe; the
  /// returned reference is stable for the session's lifetime. Call once
  /// per writer, before its hot loop.
  TraceBuffer &registerThread(uint32_t Tid, const char *Label);

  /// Nanoseconds since the session origin.
  uint64_t nowNs() const;

  /// Merges every buffer into a Chrome trace_event JSON object
  /// (`{"traceEvents":[...]}`), including process/thread metadata and a
  /// dropped-event tally in `otherData`. Must not race active writers —
  /// call after join.
  std::string toChromeJson() const;

  /// Writes toChromeJson() to \p Path. Returns false and fills \p Error
  /// on an unwritable path instead of aborting.
  bool writeChromeJson(const std::string &Path, std::string &Error) const;

  /// Sum of every buffer's dropped-event count.
  uint64_t droppedEvents() const;
  size_t bufferCount() const;

private:
  TraceConfig Config;
  uint64_t OriginNs;
  mutable std::mutex M;
  /// Deque: growth never invalidates handed-out buffer references.
  std::deque<TraceBuffer> Buffers;
};

/// RAII span: stamps the start on construction and records one complete
/// event into \p Buffer on destruction. A null buffer (tracing disabled)
/// reduces every operation to one pointer test.
class TraceSpan {
public:
  TraceSpan(TraceBuffer *Buffer, const char *Name,
            const char *Category = "runtime")
      : Buffer(Buffer), Name(Name), Category(Category) {
    if (Buffer)
      StartNs = Buffer->now();
  }
  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;

  /// Attaches one numeric argument to the event (latest call wins).
  void setArg(const char *Name, uint64_t Value) {
    ArgName = Name;
    ArgValue = Value;
  }

  ~TraceSpan() {
    if (Buffer)
      Buffer->record(Name, Category, 'X', StartNs,
                     Buffer->now() - StartNs, ArgName, ArgValue);
  }

private:
  TraceBuffer *Buffer;
  const char *Name;
  const char *Category;
  const char *ArgName = nullptr;
  uint64_t StartNs = 0;
  uint64_t ArgValue = 0;
};

#else // !FEARLESS_TRACING_ENABLED

// Compile-out stubs: identical API surface, empty bodies. Call sites
// keep their null-pointer guards and the optimizer removes everything.

class TraceBuffer {
public:
  uint64_t now() const { return 0; }
  void record(const char *, const char *, char, uint64_t, uint64_t,
              const char * = nullptr, uint64_t = 0) {}
  void instant(const char *, const char *, const char * = nullptr,
               uint64_t = 0) {}
  uint32_t tid() const { return 0; }
  const char *label() const { return ""; }
  size_t capacity() const { return 0; }
  uint64_t recorded() const { return 0; }
  size_t retained() const { return 0; }
  uint64_t dropped() const { return 0; }
};

struct TraceConfig {
  size_t BufferCapacity = 0;
};

class TraceSession {
public:
  explicit TraceSession(TraceConfig = {}) {}
  TraceBuffer &registerThread(uint32_t, const char *) { return Dummy; }
  uint64_t nowNs() const { return 0; }
  std::string toChromeJson() const;
  bool writeChromeJson(const std::string &Path, std::string &Error) const;
  uint64_t droppedEvents() const { return 0; }
  size_t bufferCount() const { return 0; }

private:
  TraceBuffer Dummy;
};

class TraceSpan {
public:
  TraceSpan(TraceBuffer *, const char *, const char * = "runtime") {}
  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;
  void setArg(const char *, uint64_t) {}
};

#endif // FEARLESS_TRACING_ENABLED

} // namespace fearless

#endif // FEARLESS_SUPPORT_TRACE_H
