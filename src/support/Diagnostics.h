//===- support/Diagnostics.h - Source locations and diagnostics -*- C++ -*-===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Source locations, diagnostic records, and a collecting diagnostic engine
/// shared by the lexer, parser, sema, checker, and verifier.
///
//===----------------------------------------------------------------------===//

#ifndef FEARLESS_SUPPORT_DIAGNOSTICS_H
#define FEARLESS_SUPPORT_DIAGNOSTICS_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace fearless {

/// A position in a source buffer. Line and column are 1-based; a
/// default-constructed SourceLoc is "unknown".
struct SourceLoc {
  uint32_t Line = 0;
  uint32_t Column = 0;

  bool isValid() const { return Line != 0; }
  bool operator==(const SourceLoc &) const = default;
};

/// Renders "line:col" or "<unknown>".
std::string toString(SourceLoc Loc);

enum class DiagnosticSeverity { Error, Warning, Note };

/// Which pipeline stage produced a diagnostic. The CLI maps stages to
/// distinct exit codes (docs/OBSERVABILITY.md, "Exit codes"): scripts can
/// tell a syntax error from a type-checker rejection from a runtime
/// fault without parsing messages. Unknown covers infrastructure errors
/// (unreadable file, bad arguments) that predate any stage.
enum class DiagnosticStage : uint8_t { Unknown, Parse, Check, Runtime };

/// One diagnostic message attached to a source location.
struct Diagnostic {
  DiagnosticSeverity Severity = DiagnosticSeverity::Error;
  std::string Message;
  SourceLoc Loc;
  DiagnosticStage Stage = DiagnosticStage::Unknown;

  /// Renders "error: <msg> at line:col".
  std::string render() const;
};

/// Collects diagnostics produced while processing one source buffer.
class DiagnosticEngine {
public:
  void report(DiagnosticSeverity Severity, std::string Message,
              SourceLoc Loc);
  void error(std::string Message, SourceLoc Loc) {
    report(DiagnosticSeverity::Error, std::move(Message), Loc);
  }
  void note(std::string Message, SourceLoc Loc) {
    report(DiagnosticSeverity::Note, std::move(Message), Loc);
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders all diagnostics, one per line.
  std::string renderAll() const;

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace fearless

#endif // FEARLESS_SUPPORT_DIAGNOSTICS_H
