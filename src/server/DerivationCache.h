//===- server/DerivationCache.h - Content-hash artifact cache ---*- C++ -*-===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon's derivation cache: content hash of (source text, pipeline
/// options) → shared CompiledArtifact (interned AST, typing derivations,
/// check result, region-graph verdict table, bytecode chunks). The
/// paper's checked artifacts are pure functions of the source — the same
/// cache-the-proof framing that makes region capabilities shareable once
/// proven — so repeated submissions skip parse/check/analyze/compile
/// entirely and go straight to execution.
///
/// Three properties the server relies on:
///
///  - **Single-flight.** N concurrent requests for the same key trigger
///    exactly one compile; the other N-1 block until the builder
///    publishes (tests/server_test.cpp, ConcurrentSameKey).
///  - **Bounded.** Total approxBytes is capped; publishing past the cap
///    evicts least-recently-used Ready entries. Evicted artifacts stay
///    alive for whoever already holds the shared_ptr.
///  - **Negative caching.** A source that fails to parse or check is
///    also a pure function of the text: the diagnostic is cached under
///    the same key (tiny footprint), so hammering a broken program
///    costs one compile, not one per request.
///
//===----------------------------------------------------------------------===//

#ifndef FEARLESS_SERVER_DERIVATIONCACHE_H
#define FEARLESS_SERVER_DERIVATIONCACHE_H

#include "driver/CompilePipeline.h"

#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <mutex>

namespace fearless {
namespace server {

/// 128-bit content key: two independent FNV-1a passes over the source
/// (different offset bases) with the option fingerprint mixed into both
/// lanes. Collisions would silently serve the wrong artifact, so the
/// key is wide enough that they are out of reach for any realistic
/// corpus; the definition is part of the wire spec (docs/SERVER.md).
struct CacheKey {
  uint64_t Lo = 0;
  uint64_t Hi = 0;
  auto operator<=>(const CacheKey &) const = default;
};

/// Computes the cache key for one (source, options) pair.
CacheKey cacheKey(std::string_view Source, const PipelineOptions &Opts);

/// Point-in-time cache counters (served under the cache mutex).
struct CacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Evictions = 0;
  /// Requests that blocked on another session's in-flight compile of
  /// the same key (they count as hits: no compile work was done).
  uint64_t CoalescedWaits = 0;
  uint64_t Entries = 0;
  uint64_t Bytes = 0;
};

class DerivationCache {
public:
  /// \p MaxBytes bounds the sum of approxBytes over Ready entries;
  /// 0 disables caching entirely (every lookup is a miss that builds
  /// privately — the differential baseline for the bench).
  explicit DerivationCache(size_t MaxBytes) : MaxBytes(MaxBytes) {}

  /// Returns the artifact for (Source, Opts), building it at most once
  /// across all concurrent callers. \p WasHit reports whether this call
  /// skipped the compile (a cached artifact or a coalesced wait).
  /// Failures are the cached (or fresh) pipeline diagnostic.
  Expected<std::shared_ptr<const CompiledArtifact>>
  getOrBuild(std::string_view Source, const PipelineOptions &Opts,
             bool *WasHit = nullptr);

  CacheStats stats() const;

private:
  struct Entry {
    enum class State { Building, Ready, Failed } S = State::Building;
    std::shared_ptr<const CompiledArtifact> Artifact;
    Diagnostic Error;
    size_t Bytes = 0;
    /// Position in the LRU list (valid for Ready/Failed entries).
    std::list<CacheKey>::iterator LruPos;
    bool InLru = false;
  };

  /// Evicts LRU entries until the budget holds. Caller holds M.
  void evictLocked();
  /// Moves \p It to the most-recently-used position. Caller holds M.
  void touchLocked(std::map<CacheKey, Entry>::iterator It);

  const size_t MaxBytes;
  mutable std::mutex M;
  std::condition_variable BuildDone;
  std::map<CacheKey, Entry> Entries;
  /// LRU order, least recently used first.
  std::list<CacheKey> Lru;
  CacheStats Stats;
};

} // namespace server
} // namespace fearless

#endif // FEARLESS_SERVER_DERIVATIONCACHE_H
