//===- server/Client.h - fearless-wire-v1 client ----------------*- C++ -*-===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client half of the wire protocol: connect to a fearlessd socket,
/// send framed requests, read framed responses. Used by
/// `fearlessc --daemon`, tests/server_test.cpp, and bench/bench_server.
///
//===----------------------------------------------------------------------===//

#ifndef FEARLESS_SERVER_CLIENT_H
#define FEARLESS_SERVER_CLIENT_H

#include "server/Wire.h"

#include <string>

namespace fearless {
namespace server {

/// A decoded response, flattened for client consumption.
struct WireResponse {
  int64_t Id = 0;
  bool Ok = false;
  /// The exit code the client process should report.
  int Exit = 1;
  /// Exact stdout/stderr bytes of the equivalent standalone run.
  std::string Out;
  std::string Err;
  bool Cached = false;
  /// error.code / error.message when ok is false ("" otherwise).
  std::string ErrorCode;
  std::string ErrorMessage;
};

/// Parses a response payload into the flat struct above.
Expected<WireResponse> decodeResponse(std::string_view Payload);

/// One connection to a fearlessd instance. Not thread-safe; one
/// conversation at a time.
class WireClient {
public:
  WireClient() = default;
  ~WireClient();
  WireClient(const WireClient &) = delete;
  WireClient &operator=(const WireClient &) = delete;
  WireClient(WireClient &&O) noexcept
      : Fd(O.Fd), Reader(std::move(O.Reader)) {
    O.Fd = -1;
  }
  WireClient &operator=(WireClient &&O) noexcept {
    if (this != &O) {
      close();
      Fd = O.Fd;
      O.Fd = -1;
      Reader = std::move(O.Reader);
    }
    return *this;
  }

  /// Connects to the unix socket at \p SocketPath.
  ExpectedVoid connect(const std::string &SocketPath);

  bool connected() const { return Fd >= 0; }
  void close();

  /// Sends one already-encoded payload as a frame. Exposed (rather than
  /// only request()) so tests can ship malformed payloads.
  ExpectedVoid sendPayload(std::string_view Payload);

  /// Sends raw bytes with no framing — for protocol-abuse tests
  /// (truncated frames, garbage headers).
  ExpectedVoid sendRaw(std::string_view Bytes);

  /// Reads the next complete response frame. Fails on EOF (the daemon
  /// closed the connection) or a frame beyond DefaultMaxFrameBytes.
  Expected<std::string> readPayload();

  /// Full round trip: encode \p R, send, read, decode.
  Expected<WireResponse> request(const WireRequest &R);

private:
  int Fd = -1;
  FrameReader Reader;
};

} // namespace server
} // namespace fearless

#endif // FEARLESS_SERVER_CLIENT_H
