//===- server/Wire.h - The fearless-wire-v1 protocol ------------*- C++ -*-===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The versioned wire protocol spoken between `fearlessd` and its
/// clients (`fearlessc --daemon`, bench_server, tests): length-prefixed
/// JSON frames over a unix stream socket. docs/SERVER.md is the
/// normative spec; tools/check_docs.py gates it against the OpNames
/// vocabulary below so the documentation cannot drift from this header.
///
/// Framing: a 4-byte big-endian unsigned payload length, then exactly
/// that many bytes of UTF-8 JSON. A frame longer than the receiver's
/// limit is answered with a `bad_frame` error and the connection is
/// closed (the length cannot be trusted, so the stream cannot be
/// resynchronized).
///
/// This header contains pure encode/decode logic only — no sockets —
/// so the tests can exercise every malformed-frame path in memory.
///
//===----------------------------------------------------------------------===//

#ifndef FEARLESS_SERVER_WIRE_H
#define FEARLESS_SERVER_WIRE_H

#include "server/Json.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace fearless {
namespace server {

/// The protocol version tag carried in every request and response.
inline constexpr const char *WireVersion = "fearless-wire-v1";

/// Frame length prefix size and the default payload cap. The cap bounds
/// a single request's memory (admission control for bytes, not just
/// sessions); 16 MiB comfortably fits the generated corpus programs.
inline constexpr size_t WireHeaderBytes = 4;
inline constexpr size_t DefaultMaxFrameBytes = 16u << 20;

/// Request operations. Kept as an array-of-names (mirroring
/// FaultInjector's PointNames) so tools/check_docs.py can extract the
/// vocabulary and require a docs/SERVER.md section per op.
enum class WireOp : uint8_t { Check, Analyze, Run, Metrics, Shutdown };
inline constexpr size_t NumWireOps = 5;
extern const char *const OpNames[NumWireOps];

/// Parses an op name; nullopt for unknown ops.
std::optional<WireOp> parseOp(std::string_view Name);

/// Typed error codes of error responses. `usage`/`parse`/`check`/
/// `runtime`/`internal` map 1:1 onto the CLI's DiagnosticStage exit-code
/// table (docs/OBSERVABILITY.md, "Exit codes"); `overloaded` and
/// `shutting_down` are admission-control outcomes with the dedicated
/// client exit code 6; `bad_frame`/`bad_request` are protocol errors.
enum class WireError : uint8_t {
  Usage,        // exit 2: malformed request field values
  Parse,        // exit 3: source failed to parse
  Check,        // exit 4: region checker / verifier rejection
  Runtime,      // exit 5: structured runtime fault
  Internal,     // exit 1: infrastructure failure
  Overloaded,   // exit 6: admission queue full, retry later
  ShuttingDown, // exit 6: daemon is draining
  BadFrame,     // exit 1: framing violation (connection closes)
  BadRequest,   // exit 1: frame held no valid request object
};
const char *wireErrorName(WireError E);
/// The exit code a CLI client reports for an error response.
int wireErrorExit(WireError E);

/// Prepends the 4-byte big-endian length to \p Payload.
std::string frameMessage(std::string_view Payload);

/// Incremental frame reader: feed bytes, take complete payloads.
/// Oversized declared lengths fail immediately — before any payload
/// accumulates.
class FrameReader {
public:
  explicit FrameReader(size_t MaxFrameBytes = DefaultMaxFrameBytes)
      : MaxFrame(MaxFrameBytes) {}

  /// Appends raw bytes from the stream.
  void feed(std::string_view Bytes) { Buf.append(Bytes); }

  /// True when feed() saw a declared length beyond the limit. The
  /// stream is unrecoverable at that point.
  bool overflowed();

  /// Extracts the next complete payload, if any.
  std::optional<std::string> next();

  /// Bytes buffered but not yet consumed (truncated-frame detection).
  size_t pending() const { return Buf.size(); }

private:
  size_t MaxFrame;
  std::string Buf;
};

/// One decoded request.
struct WireRequest {
  WireOp Op = WireOp::Check;
  /// Client correlation id, echoed verbatim in the response. 0 when
  /// absent.
  int64_t Id = 0;
  /// Display name for diagnostics (the client's file path).
  std::string Name;
  /// The program text (check/analyze/run).
  std::string Source;
  /// run: entry function and integer arguments.
  std::string Fn = "main";
  std::vector<int64_t> Args;
  /// Pipeline options (cache-key relevant).
  bool Oracle = true;
  bool Interprocedural = true;
  bool Checks = true;
  bool Elide = true;
  std::string Engine = "vm";
  /// Per-run options (not cache-key relevant).
  uint64_t Seed = 0;
  bool Stats = false;
  bool Metrics = false;
  int64_t Workers = -1; ///< -1 = machine mode; >= 0 = ParallelExec.
  uint64_t SchedSeed = 0;
  /// analyze: rendering options.
  bool Json = false;
  bool Summaries = false;
  bool Werror = false;
};

/// Decodes a request payload. Failure means the frame was readable JSON
/// but not a valid request (answered with `bad_request`).
Expected<WireRequest> decodeRequest(std::string_view Payload);

/// Encodes a request (client side).
std::string encodeRequest(const WireRequest &R);

/// Builds an execution response: echoed id, the CLI exit code, and the
/// exact stdout/stderr bytes the standalone CLI would print. `ok` is
/// `exit == 0`; a nonzero exit attaches an `error` object whose code is
/// the exit's DiagnosticStage name (1 internal, 2 usage, 3 parse,
/// 4 check, 5 runtime) and whose message is \p Err trimmed.
Json makeExecResponse(int64_t Id, int Exit, std::string_view Out,
                      std::string_view Err, bool Cached);

/// Builds a protocol-level error response (admission control, framing,
/// malformed requests): `ok` false, empty out/err, the code's exit.
Json makeErrorResponse(int64_t Id, WireError Code,
                       std::string_view Message);

} // namespace server
} // namespace fearless

#endif // FEARLESS_SERVER_WIRE_H
