//===- server/Server.cpp --------------------------------------------------===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//

#include "server/Server.h"

#include "analysis/StaticDisconnect.h"
#include "driver/CompilePipeline.h"
#include "support/Trace.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace fearless;
using namespace fearless::server;

namespace {

/// Trace thread-id block for server threads (runtime workers use small
/// ids, the compile buffer uses 9999).
constexpr uint32_t AcceptTraceTid = 9000;
constexpr uint32_t WorkerTraceTidBase = 9100;

int closeQuietly(int Fd) {
  if (Fd >= 0)
    ::close(Fd);
  return -1;
}

} // namespace

Server::Server(ServerOptions O)
    : Opts(std::move(O)), Cache(Opts.CacheBytes) {
  WorkerCount = Opts.Workers;
  if (WorkerCount == 0) {
    unsigned HW = std::thread::hardware_concurrency();
    WorkerCount = HW == 0 ? 2 : (HW < 4 ? HW : 4);
  }
}

Server::~Server() {
  requestShutdown();
  run(); // joins whatever is still alive; idempotent
}

ExpectedVoid Server::start() {
  if (Opts.SocketPath.empty())
    return fail("fearlessd: socket path must not be empty");
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Opts.SocketPath.size() >= sizeof(Addr.sun_path))
    return fail("fearlessd: socket path too long (max " +
                std::to_string(sizeof(Addr.sun_path) - 1) + " bytes): " +
                Opts.SocketPath);
  std::memcpy(Addr.sun_path, Opts.SocketPath.c_str(),
              Opts.SocketPath.size() + 1);

  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return fail(std::string("fearlessd: socket(): ") +
                std::strerror(errno));
  // The daemon owns the path: replace a stale socket file from a
  // previous (crashed) instance instead of failing to start.
  ::unlink(Opts.SocketPath.c_str());
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    std::string E = std::strerror(errno);
    closeQuietly(Fd);
    return fail("fearlessd: bind(" + Opts.SocketPath + "): " + E);
  }
  if (::listen(Fd, 128) < 0) {
    std::string E = std::strerror(errno);
    closeQuietly(Fd);
    ::unlink(Opts.SocketPath.c_str());
    return fail("fearlessd: listen(" + Opts.SocketPath + "): " + E);
  }

  ListenFd.store(Fd, std::memory_order_release);
  Started = true;
  AcceptThread = std::thread([this] { acceptLoop(); });
  WorkerThreads.reserve(WorkerCount);
  for (size_t I = 0; I < WorkerCount; ++I)
    WorkerThreads.emplace_back([this, I] { workerLoop(I); });
  return {};
}

void Server::run() {
  if (AcceptThread.joinable())
    AcceptThread.join();
  for (std::thread &T : WorkerThreads)
    if (T.joinable())
      T.join();
  WorkerThreads.clear();
  // Everything has drained; reject whatever is still queued and remove
  // the socket path so the next instance starts clean.
  std::deque<int> Leftover;
  {
    std::lock_guard<std::mutex> L(QueueM);
    Leftover.swap(Pending);
  }
  for (int Fd : Leftover) {
    Json R = makeErrorResponse(0, WireError::ShuttingDown,
                               "daemon is shutting down");
    sendFrame(Fd, R.dump());
    closeQuietly(Fd);
  }
  // Close the listener only here, with every thread joined: closing it
  // in the accept thread would race requestShutdown()'s ::shutdown().
  closeQuietly(ListenFd.exchange(-1, std::memory_order_acq_rel));
  if (Started && !Opts.SocketPath.empty())
    ::unlink(Opts.SocketPath.c_str());
}

void Server::requestShutdown() {
  bool Expected = false;
  if (!Stop.compare_exchange_strong(Expected, true))
    return;
  // Unblock accept(): shut the listener down (not close — the fd stays
  // valid until run() has joined everyone). The accept thread sees the
  // error, checks Stop, and exits.
  int LFd = ListenFd.load(std::memory_order_acquire);
  if (LFd >= 0)
    ::shutdown(LFd, SHUT_RDWR);
  std::lock_guard<std::mutex> L(QueueM);
  // Poke idle sessions so their blocking recv() returns 0; in-flight
  // requests still complete and their responses still flush (SHUT_RD
  // leaves the write half open).
  for (int Fd : ActiveFds)
    ::shutdown(Fd, SHUT_RD);
  QueueCV.notify_all();
}

void Server::acceptLoop() {
  TraceBuffer *TB = nullptr;
  if (Opts.Trace)
    TB = &Opts.Trace->registerThread(AcceptTraceTid, "server-accept");
  const int LFd = ListenFd.load(std::memory_order_acquire);
  while (!stopped()) {
    int Fd = ::accept(LFd, nullptr, nullptr);
    if (Fd < 0) {
      if (stopped())
        break;
      if (errno == EINTR || errno == ECONNABORTED)
        continue;
      break; // listener is gone; shut down rather than spin
    }
    if (TB)
      TB->instant("server.accept", "server");
    if (stopped()) {
      Json R = makeErrorResponse(0, WireError::ShuttingDown,
                                 "daemon is shutting down");
      sendFrame(Fd, R.dump());
      closeQuietly(Fd);
      break;
    }
    std::unique_lock<std::mutex> L(QueueM);
    if (Pending.size() >= Opts.MaxSessions) {
      // Admission control: answer with one typed overloaded response
      // and close, instead of queueing without bound.
      L.unlock();
      RequestsRejected.fetch_add(1, std::memory_order_relaxed);
      Json R = makeErrorResponse(
          0, WireError::Overloaded,
          "pending-session queue is full (" +
              std::to_string(Opts.MaxSessions) + "); retry later");
      sendFrame(Fd, R.dump());
      closeQuietly(Fd);
      continue;
    }
    Pending.push_back(Fd);
    L.unlock();
    QueueCV.notify_one();
  }
  // Wake the workers so they notice Stop even with an empty queue.
  // (The listener fd is closed by run(), after this thread is joined.)
  QueueCV.notify_all();
}

void Server::workerLoop(size_t Index) {
  TraceBuffer *TB = nullptr;
  if (Opts.Trace)
    TB = &Opts.Trace->registerThread(
        static_cast<uint32_t>(WorkerTraceTidBase + Index),
        "server-worker");
  while (true) {
    int Fd = -1;
    {
      std::unique_lock<std::mutex> L(QueueM);
      QueueCV.wait(L, [&] { return stopped() || !Pending.empty(); });
      if (Pending.empty()) {
        if (stopped())
          return;
        continue;
      }
      Fd = Pending.front();
      Pending.pop_front();
      if (stopped()) {
        // Draining: queued-but-unserved sessions get the typed
        // shutting_down response rather than silence.
        L.unlock();
        Json R = makeErrorResponse(0, WireError::ShuttingDown,
                                   "daemon is shutting down");
        sendFrame(Fd, R.dump());
        closeQuietly(Fd);
        continue;
      }
      ActiveFds.push_back(Fd);
    }
    SessionsActive.fetch_add(1, std::memory_order_relaxed);
    SessionsTotal.fetch_add(1, std::memory_order_relaxed);
    serveSession(Fd, TB);
    SessionsActive.fetch_sub(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> L(QueueM);
      for (size_t I = 0; I < ActiveFds.size(); ++I)
        if (ActiveFds[I] == Fd) {
          ActiveFds[I] = ActiveFds.back();
          ActiveFds.pop_back();
          break;
        }
    }
    closeQuietly(Fd);
  }
}

void Server::serveSession(int Fd, TraceBuffer *TB) {
  FrameReader Reader(Opts.MaxFrameBytes);
  char Buf[64 * 1024];
  while (true) {
    std::optional<std::string> Payload = Reader.next();
    if (!Payload) {
      if (Reader.overflowed()) {
        // The declared length exceeds the limit; the stream cannot be
        // resynchronized, so answer once and drop the connection.
        Json R = makeErrorResponse(
            0, WireError::BadFrame,
            "frame exceeds the " + std::to_string(Opts.MaxFrameBytes) +
                "-byte payload limit");
        sendFrame(Fd, R.dump());
        return;
      }
      ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
      if (N <= 0)
        return; // EOF (clean disconnect, or shutdown's SHUT_RD) / error
      Reader.feed(std::string_view(Buf, static_cast<size_t>(N)));
      continue;
    }
    RequestsTotal.fetch_add(1, std::memory_order_relaxed);
    bool ShutdownRequested = false;
    Json Response = handleRequest(*Payload, TB, ShutdownRequested);
    bool Sent = sendFrame(Fd, Response.dump());
    if (ShutdownRequested) {
      requestShutdown();
      return;
    }
    if (!Sent || stopped())
      return;
  }
}

Json Server::handleRequest(const std::string &Payload, TraceBuffer *TB,
                           bool &ShutdownRequested) {
  TraceSpan RequestSpan(TB, "server.request", "server");

  Expected<WireRequest> Req = decodeRequest(Payload);
  if (!Req)
    return makeErrorResponse(0, WireError::BadRequest,
                             Req.error().Message);
  if (stopped() && Req->Op != WireOp::Shutdown &&
      Req->Op != WireOp::Metrics)
    return makeErrorResponse(Req->Id, WireError::ShuttingDown,
                             "daemon is shutting down");

  switch (Req->Op) {
  case WireOp::Shutdown:
    ShutdownRequested = true;
    return makeExecResponse(Req->Id, 0, "", "", false);

  case WireOp::Metrics: {
    RuntimeMetrics M = metricsSnapshot();
    return makeExecResponse(Req->Id, 0, M.toJson() + "\n", "", false);
  }

  case WireOp::Analyze: {
    // Diagnostic path: always fresh (uncached) — its output is the
    // rendered report, not a cacheable artifact.
    SourceAnalysisOptions AO;
    AO.Interprocedural = Req->Interprocedural;
    AO.DumpSummaries = Req->Summaries;
    AO.Json = Req->Json;
    SourceAnalysis A = analyzeSourceText(Req->Source, Req->Name, AO);
    if (A.HardError)
      return makeExecResponse(Req->Id, 3, A.Rendered, "", false);
    if (Req->Werror && A.LintDiags > 0) {
      std::string Err = "fearlessc: error: " +
                        std::to_string(A.LintDiags) +
                        " lint diagnostic(s) with --werror\n";
      return makeExecResponse(Req->Id, 4, A.Rendered, Err, false);
    }
    return makeExecResponse(Req->Id, 0, A.Rendered, "", false);
  }

  case WireOp::Check:
  case WireOp::Run: {
    PipelineOptions PO;
    PO.UseOracle = Req->Oracle;
    PO.Interprocedural = Req->Interprocedural;
    PO.Checks = Req->Checks;
    PO.Elide = Req->Elide;
    PO.EmitChecks = Req->Checks && Req->Workers < 0;
    PO.Engine = Req->Engine;

    bool WasHit = false;
    Expected<std::shared_ptr<const CompiledArtifact>> Artifact = [&] {
      TraceSpan LookupSpan(TB, "cache.lookup", "server");
      auto R = Cache.getOrBuild(Req->Source, PO, &WasHit);
      LookupSpan.setArg("hit", WasHit ? 1 : 0);
      return R;
    }();
    if (!Artifact) {
      // Exactly the bytes the CLI prints for a compile failure, plus
      // the DiagnosticStage exit code.
      std::string Err = Artifact.error().render() + "\n";
      return makeExecResponse(Req->Id,
                              exitCodeForStage(Artifact.error().Stage),
                              "", Err, WasHit);
    }

    if (Req->Op == WireOp::Check) {
      std::string Out =
          renderCheckOutput(**Artifact, Req->Name, Req->Stats);
      return makeExecResponse(Req->Id, 0, Out, "", WasHit);
    }

    RunSpec Spec;
    Spec.Fn = Req->Fn;
    Spec.Args = Req->Args;
    Spec.Seed = Req->Seed;
    if (Req->Workers >= 0) {
      Spec.Workers = static_cast<size_t>(Req->Workers);
      Spec.WorkersSet = true;
    }
    Spec.SchedSeed = Req->SchedSeed;
    Spec.Stats = Req->Stats;
    Spec.Metrics = Req->Metrics;
    RunOutcome O = runArtifact(**Artifact, Spec);
    if (O.HasMetrics) {
      std::lock_guard<std::mutex> L(MetricsM);
      Lifetime.merge(O.Metrics);
    }
    return makeExecResponse(Req->Id, O.Exit, O.Out, O.Err, WasHit);
  }
  }
  return makeErrorResponse(0, WireError::Internal, "unreachable op");
}

RuntimeMetrics Server::metricsSnapshot() const {
  RuntimeMetrics M;
  {
    std::lock_guard<std::mutex> L(MetricsM);
    M = Lifetime;
  }
  CacheStats CS = Cache.stats();
  M.SessionsActive = SessionsActive.load(std::memory_order_relaxed);
  M.CacheHits = CS.Hits;
  M.CacheMisses = CS.Misses;
  M.RequestsRejected =
      RequestsRejected.load(std::memory_order_relaxed);
  return M;
}

bool Server::sendFrame(int Fd, std::string_view Payload) {
  std::string Frame = frameMessage(Payload);
  size_t Off = 0;
  while (Off < Frame.size()) {
    ssize_t N = ::send(Fd, Frame.data() + Off, Frame.size() - Off,
                       MSG_NOSIGNAL);
    if (N <= 0) {
      if (N < 0 && errno == EINTR)
        continue;
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}
