//===- server/Server.h - The fearlessd check/run daemon ---------*- C++ -*-===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The long-lived `fearlessd` daemon core: a unix-socket listener
/// speaking fearless-wire-v1 (server/Wire.h), a fixed pool of session
/// workers, and the content-hash derivation cache
/// (server/DerivationCache.h) that lets repeated submissions skip
/// parse/check/analyze/compile and go straight to execution.
///
/// Admission control: the accept thread pushes connections into a
/// bounded pending queue (capacity `MaxSessions`). When the queue is
/// full, the connection is answered with one typed `overloaded`
/// response and closed — backpressure instead of unbounded growth
/// (`requests_rejected` counts these). A session owns one worker from
/// dequeue to disconnect; `Workers` bounds concurrent sessions.
///
/// Fault domains: a session's runtime faults unwind as the PR 5 typed
/// RuntimeFault path inside runArtifact and come back as exit-5
/// responses — a crashing program produces a response, never a dead
/// daemon. Frame violations poison only their own connection.
///
/// Shutdown (the `shutdown` op, or requestShutdown() from a signal
/// handler): the listener closes, queued-but-unserved sessions get a
/// `shutting_down` response, active sessions finish their in-flight
/// request, then run() returns. docs/SERVER.md is the operator's
/// handbook.
///
//===----------------------------------------------------------------------===//

#ifndef FEARLESS_SERVER_SERVER_H
#define FEARLESS_SERVER_SERVER_H

#include "server/DerivationCache.h"
#include "server/Wire.h"
#include "support/Metrics.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

namespace fearless {

class TraceSession;
class TraceBuffer;

namespace server {

struct ServerOptions {
  /// Filesystem path of the unix socket. The daemon owns the path: a
  /// stale file is replaced at bind, and the file is removed on clean
  /// shutdown.
  std::string SocketPath;
  /// Session worker threads == the number of concurrently served
  /// sessions. 0 = auto (min(4, hardware threads)).
  size_t Workers = 0;
  /// Bound on *pending* (accepted, not yet served) sessions before the
  /// overloaded rejection kicks in.
  size_t MaxSessions = 64;
  /// Derivation-cache budget in bytes; 0 disables caching.
  size_t CacheBytes = 64u << 20;
  /// Largest accepted frame payload.
  size_t MaxFrameBytes = DefaultMaxFrameBytes;
  /// Structured tracing: `server.accept` instants, `server.request`
  /// spans, `cache.lookup` spans. Null = disabled; must outlive run().
  TraceSession *Trace = nullptr;
};

class Server {
public:
  explicit Server(ServerOptions Opts);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds the socket and starts the accept thread and workers.
  ExpectedVoid start();

  /// Blocks until shutdown has been requested and every thread exited.
  void run();

  /// Signals shutdown: closes the listener, drains queued sessions,
  /// lets in-flight requests complete. Safe from any thread (including
  /// a session worker serving the `shutdown` op) and idempotent; does
  /// NOT join — run() / the destructor do.
  void requestShutdown();

  bool stopped() const { return Stop.load(std::memory_order_acquire); }

  /// Daemon-lifetime metrics: the aggregated RuntimeMetrics of every
  /// executed run plus the server gauges (`sessions_active`,
  /// `cache_hits`, `cache_misses`, `requests_rejected`).
  RuntimeMetrics metricsSnapshot() const;

  /// The effective worker count (after the 0 = auto resolution).
  size_t workerCount() const { return WorkerCount; }

private:
  void acceptLoop();
  void workerLoop(size_t Index);
  /// Serves one session (connection) to EOF, frame violation, or
  /// shutdown. \p TB is the worker's trace buffer (null when disabled).
  void serveSession(int Fd, TraceBuffer *TB);
  /// Decodes and executes one request payload; returns the response
  /// JSON. Sets \p ShutdownRequested on the shutdown op.
  Json handleRequest(const std::string &Payload, TraceBuffer *TB,
                     bool &ShutdownRequested);
  /// Writes one framed payload; false on a broken connection.
  static bool sendFrame(int Fd, std::string_view Payload);

  ServerOptions Opts;
  size_t WorkerCount = 0;
  DerivationCache Cache;

  /// The listening socket. Atomic because requestShutdown() (any
  /// thread) calls ::shutdown() on it while the accept thread uses it;
  /// it is only *closed* in run(), after every thread has joined.
  std::atomic<int> ListenFd{-1};
  bool Started = false;
  std::thread AcceptThread;
  std::vector<std::thread> WorkerThreads;

  /// Pending accepted connections, bounded by Opts.MaxSessions.
  std::mutex QueueM;
  std::condition_variable QueueCV;
  std::deque<int> Pending;

  /// Sockets currently owned by a worker; shutdown() pokes them so idle
  /// reads return. Guarded by QueueM.
  std::vector<int> ActiveFds;

  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> SessionsActive{0};
  std::atomic<uint64_t> SessionsTotal{0};
  std::atomic<uint64_t> RequestsTotal{0};
  std::atomic<uint64_t> RequestsRejected{0};

  /// Aggregate RuntimeMetrics over every run served by this daemon.
  mutable std::mutex MetricsM;
  RuntimeMetrics Lifetime;
};

} // namespace server
} // namespace fearless

#endif // FEARLESS_SERVER_SERVER_H
