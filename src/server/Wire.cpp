//===- server/Wire.cpp ----------------------------------------------------===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//

#include "server/Wire.h"

using namespace fearless;
using namespace fearless::server;

// The wire vocabulary. tools/check_docs.py extracts this array and
// requires a docs/SERVER.md entry per op — keep names lowercase.
const char *const fearless::server::OpNames[NumWireOps] = {
    "check", "analyze", "run", "metrics", "shutdown",
};

std::optional<WireOp> fearless::server::parseOp(std::string_view Name) {
  for (size_t I = 0; I < NumWireOps; ++I)
    if (Name == OpNames[I])
      return static_cast<WireOp>(I);
  return std::nullopt;
}

const char *fearless::server::wireErrorName(WireError E) {
  switch (E) {
  case WireError::Usage:
    return "usage";
  case WireError::Parse:
    return "parse";
  case WireError::Check:
    return "check";
  case WireError::Runtime:
    return "runtime";
  case WireError::Internal:
    return "internal";
  case WireError::Overloaded:
    return "overloaded";
  case WireError::ShuttingDown:
    return "shutting_down";
  case WireError::BadFrame:
    return "bad_frame";
  case WireError::BadRequest:
    return "bad_request";
  }
  return "internal";
}

int fearless::server::wireErrorExit(WireError E) {
  switch (E) {
  case WireError::Usage:
    return 2;
  case WireError::Parse:
    return 3;
  case WireError::Check:
    return 4;
  case WireError::Runtime:
    return 5;
  case WireError::Overloaded:
  case WireError::ShuttingDown:
    return 6;
  case WireError::Internal:
  case WireError::BadFrame:
  case WireError::BadRequest:
    return 1;
  }
  return 1;
}

std::string fearless::server::frameMessage(std::string_view Payload) {
  std::string Out;
  Out.reserve(WireHeaderBytes + Payload.size());
  uint32_t N = static_cast<uint32_t>(Payload.size());
  Out += static_cast<char>((N >> 24) & 0xFF);
  Out += static_cast<char>((N >> 16) & 0xFF);
  Out += static_cast<char>((N >> 8) & 0xFF);
  Out += static_cast<char>(N & 0xFF);
  Out.append(Payload);
  return Out;
}

bool FrameReader::overflowed() {
  if (Buf.size() < WireHeaderBytes)
    return false;
  uint32_t N = (static_cast<uint32_t>(static_cast<unsigned char>(Buf[0]))
                << 24) |
               (static_cast<uint32_t>(static_cast<unsigned char>(Buf[1]))
                << 16) |
               (static_cast<uint32_t>(static_cast<unsigned char>(Buf[2]))
                << 8) |
               static_cast<uint32_t>(static_cast<unsigned char>(Buf[3]));
  return N > MaxFrame;
}

std::optional<std::string> FrameReader::next() {
  if (Buf.size() < WireHeaderBytes || overflowed())
    return std::nullopt;
  uint32_t N = (static_cast<uint32_t>(static_cast<unsigned char>(Buf[0]))
                << 24) |
               (static_cast<uint32_t>(static_cast<unsigned char>(Buf[1]))
                << 16) |
               (static_cast<uint32_t>(static_cast<unsigned char>(Buf[2]))
                << 8) |
               static_cast<uint32_t>(static_cast<unsigned char>(Buf[3]));
  if (Buf.size() < WireHeaderBytes + N)
    return std::nullopt;
  std::string Payload = Buf.substr(WireHeaderBytes, N);
  Buf.erase(0, WireHeaderBytes + N);
  return Payload;
}

Expected<WireRequest>
fearless::server::decodeRequest(std::string_view Payload) {
  Expected<Json> Doc = parseJson(Payload);
  if (!Doc)
    return fail("request payload is not valid JSON: " +
                Doc.error().Message);
  if (!Doc->isObject())
    return fail("request payload must be a JSON object");
  std::string V = Doc->getString("v", "");
  if (V != WireVersion)
    return fail("unsupported protocol version '" + V + "' (expected " +
                WireVersion + ")");
  std::string OpName = Doc->getString("op", "");
  std::optional<WireOp> Op = parseOp(OpName);
  if (!Op)
    return fail("unknown op '" + OpName + "'");

  WireRequest R;
  R.Op = *Op;
  R.Id = Doc->getInt("id", 0);
  R.Name = Doc->getString("name", "<wire>");
  R.Source = Doc->getString("source", "");
  R.Fn = Doc->getString("fn", "main");
  if (const Json *Args = Doc->find("args")) {
    if (!Args->isArray())
      return fail("'args' must be an array of integers");
    for (const Json &A : Args->items()) {
      if (!A.isNumber())
        return fail("'args' must be an array of integers");
      R.Args.push_back(A.intValue());
    }
  }
  if (const Json *Opts = Doc->find("options")) {
    if (!Opts->isObject())
      return fail("'options' must be an object");
    R.Oracle = Opts->getBool("oracle", true);
    R.Interprocedural = Opts->getBool("interprocedural", true);
    R.Checks = Opts->getBool("checks", true);
    R.Elide = Opts->getBool("elide", true);
    R.Engine = Opts->getString("engine", "vm");
    if (R.Engine != "vm" && R.Engine != "interp")
      return fail("unknown engine '" + R.Engine +
                  "' (expected vm or interp)");
    R.Seed = static_cast<uint64_t>(Opts->getInt("seed", 0));
    R.Stats = Opts->getBool("stats", false);
    R.Metrics = Opts->getBool("metrics", false);
    R.Workers = Opts->getInt("workers", -1);
    R.SchedSeed = static_cast<uint64_t>(Opts->getInt("sched_seed", 0));
    R.Json = Opts->getBool("json", false);
    R.Summaries = Opts->getBool("summaries", false);
    R.Werror = Opts->getBool("werror", false);
  }
  bool NeedsSource = R.Op == WireOp::Check || R.Op == WireOp::Analyze ||
                     R.Op == WireOp::Run;
  if (NeedsSource && R.Source.empty())
    return fail(std::string("op '") + OpNames[static_cast<size_t>(R.Op)] +
                "' requires a non-empty 'source'");
  return R;
}

std::string fearless::server::encodeRequest(const WireRequest &R) {
  Json Doc = Json::object();
  Doc.set("v", WireVersion);
  Doc.set("op", OpNames[static_cast<size_t>(R.Op)]);
  if (R.Id)
    Doc.set("id", R.Id);
  Doc.set("name", R.Name);
  if (!R.Source.empty())
    Doc.set("source", R.Source);
  if (R.Op == WireOp::Run) {
    Doc.set("fn", R.Fn);
    Json Args = Json::array();
    for (int64_t A : R.Args)
      Args.push(A);
    Doc.set("args", std::move(Args));
  }
  Json Opts = Json::object();
  Opts.set("oracle", R.Oracle);
  Opts.set("interprocedural", R.Interprocedural);
  Opts.set("checks", R.Checks);
  Opts.set("elide", R.Elide);
  Opts.set("engine", R.Engine);
  Opts.set("seed", static_cast<int64_t>(R.Seed));
  Opts.set("stats", R.Stats);
  Opts.set("metrics", R.Metrics);
  Opts.set("workers", R.Workers);
  Opts.set("sched_seed", static_cast<int64_t>(R.SchedSeed));
  Opts.set("json", R.Json);
  Opts.set("summaries", R.Summaries);
  Opts.set("werror", R.Werror);
  Doc.set("options", std::move(Opts));
  return Doc.dump();
}

Json fearless::server::makeExecResponse(int64_t Id, int Exit,
                                        std::string_view Out,
                                        std::string_view Err,
                                        bool Cached) {
  Json Doc = Json::object();
  Doc.set("v", WireVersion);
  Doc.set("id", Id);
  Doc.set("ok", Exit == 0);
  Doc.set("exit", Exit);
  Doc.set("out", std::string(Out));
  Doc.set("err", std::string(Err));
  Doc.set("cached", Cached);
  if (Exit != 0) {
    // The exit → error-code map is the DiagnosticStage table.
    const char *Code = Exit == 2   ? "usage"
                       : Exit == 3 ? "parse"
                       : Exit == 4 ? "check"
                       : Exit == 5 ? "runtime"
                                   : "internal";
    std::string Message(Err);
    while (!Message.empty() &&
           (Message.back() == '\n' || Message.back() == '\r'))
      Message.pop_back();
    Json E = Json::object();
    E.set("code", Code);
    E.set("message", std::move(Message));
    Doc.set("error", std::move(E));
  }
  return Doc;
}

Json fearless::server::makeErrorResponse(int64_t Id, WireError Code,
                                         std::string_view Message) {
  Json Doc = Json::object();
  Doc.set("v", WireVersion);
  Doc.set("id", Id);
  Doc.set("ok", false);
  Doc.set("exit", wireErrorExit(Code));
  Doc.set("out", "");
  Doc.set("err", "");
  Doc.set("cached", false);
  Json E = Json::object();
  E.set("code", wireErrorName(Code));
  E.set("message", std::string(Message));
  Doc.set("error", std::move(E));
  return Doc;
}
