//===- server/DerivationCache.cpp -----------------------------------------===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//

#include "server/DerivationCache.h"

using namespace fearless;
using namespace fearless::server;

CacheKey fearless::server::cacheKey(std::string_view Source,
                                    const PipelineOptions &Opts) {
  // Two FNV-1a lanes over the same bytes with distinct offset bases.
  uint64_t H1 = 0xCBF29CE484222325ull;
  uint64_t H2 = 0x84222325CBF29CE4ull;
  for (unsigned char C : Source) {
    H1 = (H1 ^ C) * 0x100000001B3ull;
    H2 = (H2 ^ C) * 0x100000001B3ull;
  }
  uint64_t F = Opts.fingerprint();
  H1 = (H1 ^ F) * 0x100000001B3ull;
  H2 = (H2 ^ (F * 0x9E3779B97F4A7C15ull)) * 0x100000001B3ull;
  // Fold in the length so differing-length prefixes of a stream can
  // never alias even under an FNV weakness.
  H1 ^= Source.size();
  return CacheKey{H1, H2};
}

void DerivationCache::touchLocked(
    std::map<CacheKey, Entry>::iterator It) {
  if (It->second.InLru)
    Lru.erase(It->second.LruPos);
  Lru.push_back(It->first);
  It->second.LruPos = std::prev(Lru.end());
  It->second.InLru = true;
}

void DerivationCache::evictLocked() {
  while (Stats.Bytes > MaxBytes && !Lru.empty()) {
    CacheKey Victim = Lru.front();
    auto It = Entries.find(Victim);
    // Building entries are never in the LRU list, so a front() victim is
    // always evictable. The artifact itself stays alive for any session
    // still holding the shared_ptr.
    Lru.pop_front();
    if (It == Entries.end())
      continue;
    Stats.Bytes -= It->second.Bytes;
    Entries.erase(It);
    --Stats.Entries;
    ++Stats.Evictions;
  }
}

Expected<std::shared_ptr<const CompiledArtifact>>
DerivationCache::getOrBuild(std::string_view Source,
                            const PipelineOptions &Opts, bool *WasHit) {
  if (WasHit)
    *WasHit = false;
  if (MaxBytes == 0) {
    // Caching disabled: private build, no bookkeeping beyond the miss.
    {
      std::lock_guard<std::mutex> L(M);
      ++Stats.Misses;
    }
    return buildArtifact(Source, Opts);
  }

  CacheKey Key = cacheKey(Source, Opts);
  std::unique_lock<std::mutex> L(M);
  while (true) {
    auto It = Entries.find(Key);
    if (It == Entries.end())
      break; // miss: this caller becomes the builder
    Entry &E = It->second;
    if (E.S == Entry::State::Building) {
      // Another session is compiling this very key: wait for its
      // publication instead of compiling twice (single-flight).
      ++Stats.CoalescedWaits;
      BuildDone.wait(L);
      continue; // re-find: the entry may have been evicted since
    }
    touchLocked(It);
    ++Stats.Hits;
    if (WasHit)
      *WasHit = true;
    if (E.S == Entry::State::Failed)
      return Failure{E.Error};
    return E.Artifact;
  }

  // Miss: publish a Building placeholder, compile outside the lock.
  ++Stats.Misses;
  Entry &Placeholder = Entries[Key];
  Placeholder.S = Entry::State::Building;
  ++Stats.Entries;
  L.unlock();

  Expected<std::shared_ptr<const CompiledArtifact>> Built =
      buildArtifact(Source, Opts);

  L.lock();
  auto It = Entries.find(Key);
  // The placeholder cannot have been evicted (Building entries never
  // enter the LRU list) and no second builder can exist for the key.
  Entry &E = It->second;
  if (Built) {
    E.S = Entry::State::Ready;
    E.Artifact = *Built;
    E.Bytes = (*Built)->approxBytes();
  } else {
    E.S = Entry::State::Failed;
    E.Error = Built.error();
    // A failed compile retains only the diagnostic; charge the source
    // length so a flood of distinct broken programs still hits the cap.
    E.Bytes = Source.size() + 512;
  }
  Stats.Bytes += E.Bytes;
  touchLocked(It);
  evictLocked();
  L.unlock();
  BuildDone.notify_all();
  return Built;
}

CacheStats DerivationCache::stats() const {
  std::lock_guard<std::mutex> L(M);
  return Stats;
}
