//===- server/Json.h - Minimal JSON value, parser, writer -------*- C++ -*-===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The small JSON layer behind the `fearless-wire-v1` protocol
/// (server/Wire.h): an owning value type, a strict recursive-descent
/// parser, and a deterministic writer (object keys serialize in
/// insertion order, so request/response bytes are reproducible — the
/// bit-identity tests in tests/server_test.cpp rely on that).
///
/// Deliberately minimal: UTF-8 pass-through (no surrogate validation),
/// 64-bit integers kept exact (doubles only for fractional/exponent
/// literals), and a nesting-depth cap so a hostile frame cannot blow the
/// stack. Everything the wire needs, nothing more.
///
//===----------------------------------------------------------------------===//

#ifndef FEARLESS_SERVER_JSON_H
#define FEARLESS_SERVER_JSON_H

#include "support/Expected.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace fearless {
namespace server {

/// One JSON value. Objects preserve insertion order (a vector of pairs,
/// not a map): wire messages are small, lookups are linear, and the
/// serialized byte sequence stays deterministic.
class Json {
public:
  enum class Kind { Null, Bool, Int, Double, String, Array, Object };

  Json() : K(Kind::Null) {}
  /*implicit*/ Json(bool B) : K(Kind::Bool), BoolV(B) {}
  /*implicit*/ Json(int64_t I) : K(Kind::Int), IntV(I) {}
  /*implicit*/ Json(uint64_t I)
      : K(Kind::Int), IntV(static_cast<int64_t>(I)) {}
  /*implicit*/ Json(int I) : K(Kind::Int), IntV(I) {}
  /*implicit*/ Json(double D) : K(Kind::Double), DoubleV(D) {}
  /*implicit*/ Json(std::string S) : K(Kind::String), StrV(std::move(S)) {}
  /*implicit*/ Json(const char *S) : K(Kind::String), StrV(S) {}

  static Json array() {
    Json J;
    J.K = Kind::Array;
    return J;
  }
  static Json object() {
    Json J;
    J.K = Kind::Object;
    return J;
  }

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isInt() const { return K == Kind::Int; }
  bool isNumber() const { return K == Kind::Int || K == Kind::Double; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool boolValue() const { return BoolV; }
  int64_t intValue() const {
    return K == Kind::Double ? static_cast<int64_t>(DoubleV) : IntV;
  }
  double doubleValue() const {
    return K == Kind::Int ? static_cast<double>(IntV) : DoubleV;
  }
  const std::string &stringValue() const { return StrV; }
  const std::vector<Json> &items() const { return Items; }
  const std::vector<std::pair<std::string, Json>> &members() const {
    return Members;
  }

  /// Array append.
  void push(Json V) { Items.push_back(std::move(V)); }
  /// Object insert-or-overwrite (linear; wire objects are tiny).
  void set(std::string Key, Json V);
  /// Object lookup; null when absent or not an object.
  const Json *find(std::string_view Key) const;

  // Typed object accessors with defaults — the request decoder's staple.
  bool getBool(std::string_view Key, bool Default) const;
  int64_t getInt(std::string_view Key, int64_t Default) const;
  std::string getString(std::string_view Key,
                        std::string_view Default) const;

  /// Serializes compactly (no whitespace), escaping per RFC 8259.
  std::string dump() const;

private:
  void dumpTo(std::string &Out) const;

  Kind K;
  bool BoolV = false;
  int64_t IntV = 0;
  double DoubleV = 0;
  std::string StrV;
  std::vector<Json> Items;
  std::vector<std::pair<std::string, Json>> Members;
};

/// Parses one complete JSON document; trailing non-whitespace is an
/// error. Failures carry a byte offset in the message.
Expected<Json> parseJson(std::string_view Text);

/// Escapes \p S as the *contents* of a JSON string (no quotes added).
std::string escapeJson(std::string_view S);

} // namespace server
} // namespace fearless

#endif // FEARLESS_SERVER_JSON_H
