//===- server/Client.cpp --------------------------------------------------===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//

#include "server/Client.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace fearless;
using namespace fearless::server;

Expected<WireResponse>
fearless::server::decodeResponse(std::string_view Payload) {
  Expected<Json> Doc = parseJson(Payload);
  if (!Doc)
    return fail("response payload is not valid JSON: " +
                Doc.error().Message);
  if (!Doc->isObject())
    return fail("response payload must be a JSON object");
  std::string V = Doc->getString("v", "");
  if (V != WireVersion)
    return fail("unsupported response version '" + V + "'");
  WireResponse R;
  R.Id = Doc->getInt("id", 0);
  R.Ok = Doc->getBool("ok", false);
  R.Exit = static_cast<int>(Doc->getInt("exit", 1));
  R.Out = Doc->getString("out", "");
  R.Err = Doc->getString("err", "");
  R.Cached = Doc->getBool("cached", false);
  if (const Json *E = Doc->find("error")) {
    if (E->isObject()) {
      R.ErrorCode = E->getString("code", "");
      R.ErrorMessage = E->getString("message", "");
    }
  }
  return R;
}

WireClient::~WireClient() { close(); }

void WireClient::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

ExpectedVoid WireClient::connect(const std::string &SocketPath) {
  close();
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (SocketPath.size() >= sizeof(Addr.sun_path))
    return fail("socket path too long: " + SocketPath);
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size() + 1);
  Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return fail(std::string("socket(): ") + std::strerror(errno));
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
      0) {
    std::string E = std::strerror(errno);
    close();
    return fail("connect(" + SocketPath + "): " + E);
  }
  return {};
}

ExpectedVoid WireClient::sendRaw(std::string_view Bytes) {
  if (Fd < 0)
    return fail("not connected");
  size_t Off = 0;
  while (Off < Bytes.size()) {
    ssize_t N = ::send(Fd, Bytes.data() + Off, Bytes.size() - Off,
                       MSG_NOSIGNAL);
    if (N <= 0) {
      if (N < 0 && errno == EINTR)
        continue;
      return fail(std::string("send(): ") + std::strerror(errno));
    }
    Off += static_cast<size_t>(N);
  }
  return {};
}

ExpectedVoid WireClient::sendPayload(std::string_view Payload) {
  return sendRaw(frameMessage(Payload));
}

Expected<std::string> WireClient::readPayload() {
  if (Fd < 0)
    return fail("not connected");
  char Buf[64 * 1024];
  while (true) {
    if (std::optional<std::string> P = Reader.next())
      return *P;
    if (Reader.overflowed())
      return fail("response frame exceeds the payload limit");
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (N == 0)
      return fail("daemon closed the connection");
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return fail(std::string("recv(): ") + std::strerror(errno));
    }
    Reader.feed(std::string_view(Buf, static_cast<size_t>(N)));
  }
}

Expected<WireResponse> WireClient::request(const WireRequest &R) {
  if (ExpectedVoid S = sendPayload(encodeRequest(R)); !S)
    return S.takeFailure();
  Expected<std::string> Payload = readPayload();
  if (!Payload)
    return Payload.takeFailure();
  return decodeResponse(*Payload);
}
