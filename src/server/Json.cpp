//===- server/Json.cpp ----------------------------------------------------===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//

#include "server/Json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace fearless;
using namespace fearless::server;

void Json::set(std::string Key, Json V) {
  K = Kind::Object;
  for (auto &[Name, Value] : Members)
    if (Name == Key) {
      Value = std::move(V);
      return;
    }
  Members.emplace_back(std::move(Key), std::move(V));
}

const Json *Json::find(std::string_view Key) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &[Name, Value] : Members)
    if (Name == Key)
      return &Value;
  return nullptr;
}

bool Json::getBool(std::string_view Key, bool Default) const {
  const Json *V = find(Key);
  return V && V->isBool() ? V->boolValue() : Default;
}

int64_t Json::getInt(std::string_view Key, int64_t Default) const {
  const Json *V = find(Key);
  return V && V->isNumber() ? V->intValue() : Default;
}

std::string Json::getString(std::string_view Key,
                            std::string_view Default) const {
  const Json *V = find(Key);
  return V && V->isString() ? V->stringValue() : std::string(Default);
}

std::string fearless::server::escapeJson(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  return Out;
}

void Json::dumpTo(std::string &Out) const {
  switch (K) {
  case Kind::Null:
    Out += "null";
    break;
  case Kind::Bool:
    Out += BoolV ? "true" : "false";
    break;
  case Kind::Int:
    Out += std::to_string(IntV);
    break;
  case Kind::Double: {
    if (std::isfinite(DoubleV)) {
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "%.17g", DoubleV);
      Out += Buf;
    } else {
      Out += "null"; // JSON has no Inf/NaN; null is the lossless-ish out.
    }
    break;
  }
  case Kind::String:
    Out += '"';
    Out += escapeJson(StrV);
    Out += '"';
    break;
  case Kind::Array: {
    Out += '[';
    bool First = true;
    for (const Json &V : Items) {
      if (!First)
        Out += ',';
      First = false;
      V.dumpTo(Out);
    }
    Out += ']';
    break;
  }
  case Kind::Object: {
    Out += '{';
    bool First = true;
    for (const auto &[Name, Value] : Members) {
      if (!First)
        Out += ',';
      First = false;
      Out += '"';
      Out += escapeJson(Name);
      Out += "\":";
      Value.dumpTo(Out);
    }
    Out += '}';
    break;
  }
  }
}

std::string Json::dump() const {
  std::string Out;
  dumpTo(Out);
  return Out;
}

namespace {

/// Strict recursive-descent parser. Depth-capped so a pathological frame
/// of ten thousand '[' cannot overflow the session worker's stack.
class Parser {
public:
  explicit Parser(std::string_view Text) : Text(Text) {}

  Expected<Json> parse() {
    Expected<Json> V = parseValue(0);
    if (!V)
      return V;
    skipWs();
    if (Pos != Text.size())
      return err("trailing characters after JSON document");
    return V;
  }

private:
  static constexpr size_t MaxDepth = 64;

  Failure err(const std::string &Msg) const {
    return fail("JSON parse error at byte " + std::to_string(Pos) + ": " +
                Msg);
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool consumeWord(std::string_view W) {
    if (Text.substr(Pos, W.size()) == W) {
      Pos += W.size();
      return true;
    }
    return false;
  }

  Expected<Json> parseValue(size_t Depth) {
    if (Depth > MaxDepth)
      return err("nesting too deep");
    skipWs();
    if (Pos >= Text.size())
      return err("unexpected end of input");
    char C = Text[Pos];
    if (C == '{')
      return parseObject(Depth);
    if (C == '[')
      return parseArray(Depth);
    if (C == '"')
      return parseString();
    if (C == '-' || (C >= '0' && C <= '9'))
      return parseNumber();
    if (consumeWord("true"))
      return Json(true);
    if (consumeWord("false"))
      return Json(false);
    if (consumeWord("null"))
      return Json();
    return err(std::string("unexpected character '") + C + "'");
  }

  Expected<Json> parseObject(size_t Depth) {
    ++Pos; // '{'
    Json Out = Json::object();
    skipWs();
    if (consume('}'))
      return Out;
    while (true) {
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != '"')
        return err("expected object key string");
      Expected<Json> Key = parseString();
      if (!Key)
        return Key;
      skipWs();
      if (!consume(':'))
        return err("expected ':' after object key");
      Expected<Json> Value = parseValue(Depth + 1);
      if (!Value)
        return Value;
      Out.set(Key->stringValue(), Value.take());
      skipWs();
      if (consume(','))
        continue;
      if (consume('}'))
        return Out;
      return err("expected ',' or '}' in object");
    }
  }

  Expected<Json> parseArray(size_t Depth) {
    ++Pos; // '['
    Json Out = Json::array();
    skipWs();
    if (consume(']'))
      return Out;
    while (true) {
      Expected<Json> Value = parseValue(Depth + 1);
      if (!Value)
        return Value;
      Out.push(Value.take());
      skipWs();
      if (consume(','))
        continue;
      if (consume(']'))
        return Out;
      return err("expected ',' or ']' in array");
    }
  }

  Expected<Json> parseString() {
    ++Pos; // '"'
    std::string Out;
    while (true) {
      if (Pos >= Text.size())
        return err("unterminated string");
      char C = Text[Pos++];
      if (C == '"')
        return Json(std::move(Out));
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        return err("unterminated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'n':
        Out += '\n';
        break;
      case 't':
        Out += '\t';
        break;
      case 'r':
        Out += '\r';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return err("truncated \\u escape");
        unsigned Code = 0;
        for (int I = 0; I < 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= static_cast<unsigned>(H - 'A' + 10);
          else
            return err("bad hex digit in \\u escape");
        }
        // Encode the code point as UTF-8. Surrogate pairs are passed
        // through as two 3-byte sequences (WTF-8); the wire only ever
        // carries text that round-trips through this same layer.
        if (Code < 0x80) {
          Out += static_cast<char>(Code);
        } else if (Code < 0x800) {
          Out += static_cast<char>(0xC0 | (Code >> 6));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        } else {
          Out += static_cast<char>(0xE0 | (Code >> 12));
          Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        }
        break;
      }
      default:
        return err(std::string("bad escape '\\") + E + "'");
      }
    }
  }

  Expected<Json> parseNumber() {
    size_t Start = Pos;
    (void)consume('-');
    while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
      ++Pos;
    bool Fractional = false;
    if (Pos < Text.size() && Text[Pos] == '.') {
      Fractional = true;
      ++Pos;
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      Fractional = true;
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
    }
    std::string Tok(Text.substr(Start, Pos - Start));
    if (Tok.empty() || Tok == "-")
      return err("malformed number");
    if (!Fractional) {
      errno = 0;
      char *End = nullptr;
      long long V = std::strtoll(Tok.c_str(), &End, 10);
      if (errno == 0 && End && *End == '\0')
        return Json(static_cast<int64_t>(V));
      // Out-of-range integer: fall through to double.
    }
    return Json(std::strtod(Tok.c_str(), nullptr));
  }

  std::string_view Text;
  size_t Pos = 0;
};

} // namespace

Expected<Json> fearless::server::parseJson(std::string_view Text) {
  return Parser(Text).parse();
}
