//===- driver/CompilePipeline.cpp -----------------------------------------===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//

#include "driver/CompilePipeline.h"

#include "concurrency/ParallelExec.h"
#include "mc/Replay.h"
#include "runtime/Machine.h"
#include "support/FaultInjector.h"
#include "support/Trace.h"

#include <cstdio>

using namespace fearless;

uint64_t PipelineOptions::fingerprint() const {
  uint64_t F = 0;
  F |= UseOracle ? 1u : 0u;
  F |= Interprocedural ? 2u : 0u;
  F |= Checks ? 4u : 0u;
  F |= Elide ? 8u : 0u;
  F |= EmitChecks ? 16u : 0u;
  F |= (Engine == "vm" ? 32u : 0u);
  // Mix so distinct flag sets land far apart in the cache key space.
  F *= 0x9E3779B97F4A7C15ull;
  F ^= F >> 32;
  return F;
}

size_t CompiledArtifact::approxBytes() const {
  // The AST, typing derivations, analysis report, and constant pools are
  // all within a small constant factor of the source length for real
  // programs; the bytecode is measured exactly. The multiplier is
  // deliberately generous — the cache budget is a ceiling, not a ledger.
  size_t Bytes = SourceBytes * 24 + 4096;
  if (VmCode) {
    for (const vm::Chunk &C : VmCode->Chunks)
      Bytes += C.Code.size() * sizeof(vm::Instr) +
               C.Constants.size() * sizeof(Value);
  }
  return Bytes;
}

Expected<std::shared_ptr<const CompiledArtifact>>
fearless::buildArtifact(std::string_view Source,
                        const PipelineOptions &Opts, TraceSession *Trace) {
  CheckerOptions CO;
  CO.UseLivenessOracle = Opts.UseOracle;
  Expected<Pipeline> P = compile(Source, CO);
  if (!P)
    return P.takeFailure();

  auto A = std::make_shared<CompiledArtifact>();
  A->P = P.take();
  A->Options = Opts;
  A->SourceBytes = Source.size();

  AnalysisOptions AO;
  AO.Interprocedural = Opts.Interprocedural;
  A->Report = analyzeProgram(A->P.Checked, AO);
  A->Verdicts = A->Report.verdictTable();
  for (const SiteReport &S : A->Report.Sites) {
    switch (S.Verdict) {
    case DisconnectVerdict::MustDisconnected:
      ++A->MustDisconnectedSites;
      break;
    case DisconnectVerdict::MustConnected:
      ++A->MustConnectedSites;
      break;
    case DisconnectVerdict::Unknown:
      ++A->UnknownSites;
      break;
    }
  }

  if (Opts.Engine == "vm") {
    vm::CompileOptions VO;
    VO.EmitChecks = Opts.EmitChecks;
    VO.Verdicts = &A->Verdicts;
    VO.ElideDisconnect = Opts.Elide;
#ifndef NDEBUG
    VO.CrossCheckElision = true;
#endif
    uint64_t CompileStart = 0;
    TraceBuffer *CompileTB = nullptr;
    if (Trace) {
      CompileTB = &Trace->registerThread(4242, "vm-compiler");
      CompileStart = CompileTB->now();
    }
    Expected<vm::CompiledProgram> Code =
        vm::compileProgram(A->P.Checked, VO);
    if (CompileTB)
      CompileTB->record("vm.compile", "vm", 'X', CompileStart,
                        CompileTB->now() - CompileStart);
    if (!Code)
      return Code.takeFailure();
    A->VmCode.emplace(Code.take());
  }
  return std::shared_ptr<const CompiledArtifact>(std::move(A));
}

std::string fearless::renderCheckOutput(const CompiledArtifact &A,
                                        std::string_view DisplayName,
                                        bool Stats) {
  std::string Out(DisplayName);
  Out += ": OK (" + std::to_string(A.P.Checked.Functions.size()) +
         " functions)\n";
  // Checker-integrated warnings: always/never-taken disconnect branches
  // found by the static region-graph analysis.
  std::vector<AnalysisDiag> Warnings;
  for (const AnalysisDiag &D : A.Report.Diags)
    if (D.Kind == AnalysisDiagKind::DeadBranch ||
        D.Kind == AnalysisDiagKind::NeverPopulated)
      Warnings.push_back(D);
  if (!Warnings.empty())
    Out += renderDiags(Warnings, DisplayName);
  if (Stats) {
    size_t Virtuals = 0, Unify = 0, Loops = 0;
    for (const auto &[Name, Fn] : A.P.Checked.Functions) {
      (void)Name;
      Virtuals += Fn.Stats.VirtualSteps;
      Unify += Fn.Stats.UnifyCandidates;
      Loops += Fn.Stats.LoopIterations;
    }
    char Buf[256];
    std::snprintf(Buf, sizeof(Buf),
                  "functions: %zu, virtual transformations: %zu, "
                  "unification candidates: %zu, loop refinements: %zu\n"
                  "verifier: %zu derivation steps (%zu virtual) "
                  "re-checked\n",
                  A.P.Checked.Functions.size(), Virtuals, Unify, Loops,
                  A.P.Verified.StepsChecked,
                  A.P.Verified.VirtualStepsChecked);
    Out += Buf;
  }
  return Out;
}

int fearless::exitCodeForStage(DiagnosticStage Stage) {
  switch (Stage) {
  case DiagnosticStage::Parse:
    return 3;
  case DiagnosticStage::Check:
    return 4;
  case DiagnosticStage::Runtime:
    return 5;
  case DiagnosticStage::Unknown:
    break;
  }
  return 1;
}

RunOutcome fearless::runArtifact(const CompiledArtifact &A,
                                 const RunSpec &Spec) {
  RunOutcome O;
  const Pipeline &P = A.P;

  // Entry and --spawn functions share the same lookup and int-argument
  // validation.
  auto ResolveCall = [&](const std::string &Fn,
                         const std::vector<int64_t> &Args, Symbol &SymOut,
                         std::vector<Value> &ValuesOut) -> bool {
    SymOut = P.Prog->Names.intern(Fn);
    const FnDecl *Decl = P.Prog->findFunction(SymOut);
    if (!Decl) {
      O.Err = "no function '" + Fn + "'\n";
      O.Exit = 1;
      return false;
    }
    if (Decl->Params.size() != Args.size()) {
      O.Err = "'" + Fn + "' takes " + std::to_string(Decl->Params.size()) +
              " arguments, got " + std::to_string(Args.size()) +
              " (only int arguments are supported from the CLI)\n";
      O.Exit = 1;
      return false;
    }
    for (size_t I = 0; I < Args.size(); ++I) {
      if (!(Decl->Params[I].ParamType == Type::intTy())) {
        O.Err = "parameter " + std::to_string(I) + " of '" + Fn +
                "' is not int\n";
        O.Exit = 1;
        return false;
      }
      ValuesOut.push_back(Value::intVal(Args[I]));
    }
    return true;
  };

  Symbol Entry;
  std::vector<Value> Values;
  if (!ResolveCall(Spec.Fn, Spec.Args, Entry, Values))
    return O;
  std::vector<std::pair<Symbol, std::vector<Value>>> ExtraSpawns;
  for (const auto &[Fn, Args] : Spec.Spawns) {
    Symbol S;
    std::vector<Value> V;
    if (!ResolveCall(Fn, Args, S, V))
      return O;
    ExtraSpawns.emplace_back(S, std::move(V));
  }
  if (Spec.WorkersSet && (!Spec.Spawns.empty() || Spec.Schedule)) {
    O.Err = "--spawn and --schedule drive the deterministic machine and "
            "cannot combine with --workers\n";
    O.Exit = 2;
    return O;
  }

  // The verdict split goes out with --metrics so runs record how much of
  // the elision the analysis could prove (the engines never see these;
  // they are compile-time facts).
  auto WithAnalysis = [&](RuntimeMetrics M) {
    M.AnalysisMustDisconnected = A.MustDisconnectedSites;
    M.AnalysisMustConnected = A.MustConnectedSites;
    M.AnalysisUnknown = A.UnknownSites;
    return M;
  };
  bool UseVm = A.VmCode.has_value();

  // --workers: hand the entry function to the parallel executor (the
  // M:N task scheduler; dynamic checks erased, as for any checked
  // program) instead of the deterministic abstract machine.
  if (Spec.WorkersSet) {
    ParallelExecOptions PO;
    PO.NumWorkers = Spec.Workers;
    PO.SchedSeed = Spec.SchedSeed;
    PO.Faults = Spec.Faults;
    if (UseVm)
      PO.VmCode = &*A.VmCode;
    PO.Trace = Spec.Trace;
    ParallelExec Exec(P.Checked, PO);
    Exec.spawn(Entry, std::move(Values));
    Expected<std::vector<Value>> R = Exec.run();
    O.Metrics = WithAnalysis(Exec.metrics());
    O.HasMetrics = true;
    if (!R) {
      O.Err = R.error().render() + "\n";
      if (Spec.Metrics)
        O.Out += O.Metrics.toJson() + "\n";
      O.Exit = Exec.metrics().FaultsEscalated ? 5 : 1;
      return O;
    }
    O.Out = Spec.Fn + "(...) = " + toString((*R)[0]) + "\n";
    if (Spec.Metrics)
      O.Out += O.Metrics.toJson() + "\n";
    return O;
  }

  MachineOptions MO;
  MO.CheckReservations = A.Options.Checks;
  MO.StaticVerdicts = &A.Verdicts;
  MO.ElideDisconnect = A.Options.Elide;
  MO.Faults = Spec.Faults;
  if (UseVm)
    MO.VmCode = &*A.VmCode;
  MO.Trace = Spec.Trace;
  Machine M(P.Checked, MO);
  std::vector<Value> InterpValues = Values; // for the debug cross-check
  M.spawn(Entry, std::move(Values));
  for (auto &[S, V] : ExtraSpawns)
    M.spawn(S, std::move(V));
  Expected<MachineSummary> R =
      Spec.Schedule ? mc::runSchedule(M, *Spec.Schedule)
                    : M.run(Spec.Seed);

#ifndef NDEBUG
  // Debug builds: re-run the VM result through the tree-walking
  // interpreter and fail loudly on divergence — the two engines are
  // differential oracles for each other. Skipped under fault injection
  // (the injector's triggers are stateful and would fire differently on
  // the second run) and under --spawn/--schedule (the engines batch
  // decision points differently, so a recorded schedule only replays on
  // the engine that recorded it, and multi-root results are
  // schedule-relative).
  if (UseVm && R && !Spec.Faults && !Spec.Schedule &&
      ExtraSpawns.empty()) {
    MachineOptions IO = MO;
    IO.VmCode = nullptr;
    IO.Trace = nullptr;
    Machine IM(P.Checked, IO);
    IM.spawn(Entry, std::move(InterpValues));
    Expected<MachineSummary> IR = IM.run(Spec.Seed);
    if (!IR || !(IR->ThreadResults[0] == R->ThreadResults[0])) {
      O.Err = "fearlessc: engine divergence: vm produced " +
              (R ? toString(R->ThreadResults[0]) : std::string("<error>")) +
              ", interpreter produced " +
              (IR ? toString(IR->ThreadResults[0])
                  : IR.error().render()) +
              "\n";
      O.Exit = 1;
      return O;
    }
  }
#endif
  O.Metrics = WithAnalysis(M.metrics());
  O.HasMetrics = true;
  if (!R) {
    // A structured fault (runtime trap or injection) gets the dedicated
    // diagnostic and exit code; other failures (deadlock, violation,
    // step limit) stay generic.
    if (M.lastFault()) {
      O.Err = "fearlessc: " + M.lastFault()->render() + "\n";
      if (Spec.Metrics)
        O.Out += O.Metrics.toJson() + "\n";
      O.Exit = 5;
      return O;
    }
    O.Err = R.error().render() + "\n";
    O.Exit = 1;
    return O;
  }
  O.Out = Spec.Fn + "(...) = " + toString(R->ThreadResults[0]) + "\n";
  for (size_t I = 0; I < Spec.Spawns.size(); ++I)
    if (I + 1 < R->ThreadResults.size())
      O.Out += Spec.Spawns[I].first + "(...) = " +
               toString(R->ThreadResults[I + 1]) + "\n";
  if (Spec.Stats) {
    char Buf[256];
    std::snprintf(Buf, sizeof(Buf),
                  "steps: %llu, reservation checks: %llu, allocations: "
                  "%llu, disconnect checks: %llu\n",
                  static_cast<unsigned long long>(R->Steps),
                  static_cast<unsigned long long>(
                      M.stats().ReservationChecks),
                  static_cast<unsigned long long>(M.stats().Allocations),
                  static_cast<unsigned long long>(
                      M.stats().DisconnectChecks));
    O.Out += Buf;
  }
  if (Spec.Metrics)
    O.Out += O.Metrics.toJson() + "\n";
  return O;
}
