//===- driver/Driver.cpp --------------------------------------------------===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"

#include <string>

using namespace fearless;

Expected<Pipeline> fearless::compile(std::string_view Source,
                                     const CheckerOptions &Opts,
                                     bool Verify) {
  Expected<FrontendResult> Front = checkSource(Source, Opts);
  if (!Front)
    return Front.takeFailure();
  Pipeline Out;
  Out.Prog = std::move(Front->Prog);
  Out.Checked = std::move(Front->Checked);
  if (Verify && Opts.EmitDerivations) {
    Expected<VerifyStats> Stats = verifyProgram(Out.Checked);
    if (!Stats) {
      Failure F = Stats.takeFailure();
      F.Diag.Stage = DiagnosticStage::Check;
      return F;
    }
    Out.Verified = *Stats;
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Sample programs
//===----------------------------------------------------------------------===//

// Fig. 1 singly linked list plus the full suite referenced in §8: only
// two `consumes` annotations are needed across the suite, matching the
// paper's observation.
const char *programs::SllSuite = R"prog(
// A singly linked list with recursively linear ownership (Fig. 1).
struct data { value : int; }

struct sll_node {
  iso payload : data;
  iso next : sll_node?;
}

struct sll {
  iso hd : sll_node?;
}

def sll_new() : sll { new sll() }

def node_new(p : data) : sll_node consumes p {
  new sll_node(p, none)
}

def push_front(l : sll, p : data) : unit consumes p {
  let n = new sll_node(p, l.hd);
  l.hd = some n;
}

def pop_front(l : sll) : data? {
  let some(n) = l.hd in {
    l.hd = n.next;
    some n.payload
  } else { none }
}

// Fig. 2: removing the final element. The returned payload is a
// dominating reference no longer encapsulated by the list.
def remove_tail(n : sll_node) : data? {
  let some(next) = n.next in {
    if (is_none(next.next)) {
      n.next = none;
      some next.payload
    } else { remove_tail(next) }
  } else { none }
}

def list_remove_tail(l : sll) : data? {
  let some(hd) = l.hd in {
    if (is_none(hd.next)) {
      l.hd = none;
      some hd.payload
    } else { remove_tail(hd) }
  } else { none }
}

// Fig. 14: concatenation. The second list is consumed — retracted into an
// iso field of the first and wholly owned by it afterwards.
def concat(l1, l2 : sll_node) : unit consumes l2 {
  let some(l1_next) = l1.next in {
    concat(l1_next, l2);
  } else {
    l1.next = some l2;
  }
}

def length_node(n : sll_node) : int {
  let some(next) = n.next in { 1 + length_node(next) } else { 1 }
}

def length(l : sll) : int {
  let some(hd) = l.hd in { length_node(hd) } else { 0 }
}

def sum_node(n : sll_node) : int {
  let some(next) = n.next in {
    n.payload.value + sum_node(next)
  } else { n.payload.value }
}

def sum(l : sll) : int {
  let some(hd) = l.hd in { sum_node(hd) } else { 0 }
}

def nth_value_node(n : sll_node, pos : int) : int {
  if (pos <= 0) { n.payload.value }
  else {
    let some(next) = n.next in { nth_value_node(next, pos - 1) }
    else { -1 }
  }
}

def nth_value(l : sll, pos : int) : int {
  let some(hd) = l.hd in { nth_value_node(hd, pos) } else { -1 }
}
)prog";

// Fig. 1 circular doubly linked list with shared ownership, Fig. 5
// remove_tail via `if disconnected`, and Fig. 14 get_nth_node.
const char *programs::DllSuite = R"prog(
struct data { value : int; }

struct dll_node {
  iso payload : data;
  next : dll_node;
  prev : dll_node;
}

struct dll {
  iso hd : dll_node?;
}

def dll_new() : dll { new dll() }

// A fresh node's next/prev default to self-references: exactly the
// size-1 circular list of Fig. 3.
def dll_singleton(p : data) : dll consumes p {
  let n = new dll_node(p);
  let l = new dll() in {
    l.hd = some n;
    l
  }
}

def push_front(l : dll, p : data) : unit consumes p {
  let n = new dll_node(p);
  let some(hd) = l.hd in {
    let last = hd.prev;
    n.next = hd;
    n.prev = last;
    last.next = n;
    hd.prev = n;
    l.hd = some n;
  } else {
    l.hd = some n;
  }
}

def push_back(l : dll, p : data) : unit consumes p {
  let n = new dll_node(p);
  let some(hd) = l.hd in {
    let last = hd.prev;
    n.next = hd;
    n.prev = last;
    last.next = n;
    hd.prev = n;
    l.hd = some hd;
  } else {
    l.hd = some n;
  }
}

// Fig. 5: retrieving the tail of a circular doubly linked list, fixed
// with `if disconnected`. The manual repointing of tail.next/tail.prev is
// required because disconnection is symmetric, and l.hd must be
// reassigned in both branches because the type system cannot know which
// side of the split it targets.
def remove_tail(l : dll) : data? {
  let some(hd) = l.hd in {
    let tail = hd.prev;
    tail.prev.next = hd;
    hd.prev = tail.prev;
    // to ensure disjointness for if-disconnected
    tail.next = tail;
    tail.prev = tail;
    if disconnected(tail, hd) {
      l.hd = some hd; // l.hd invalid at branch start
      some tail.payload
    } else {
      l.hd = none;
      some hd.payload
    }
  } else { none }
}

// Fig. 14: the nth node, wrapping around. The after-annotation records
// that the result lives in the same region as the list's spine.
def get_nth_node(l : dll, pos : int) : dll_node?
    after: l.hd ~ result {
  let some(node) = l.hd in {
    while (pos > 0) {
      node = node.next;
      pos = pos - 1
    };
    some node
  } else { none }
}

def length(l : dll) : int {
  let some(hd) = l.hd in {
    let cursor = hd.next;
    let count = 1;
    let stop = is_last(cursor, hd);
    while (!stop) {
      count = count + 1;
      cursor = cursor.next;
      stop = is_last(cursor, hd)
    };
    count
  } else { 0 }
}

def pvalue(n : dll_node) : int { n.payload.value }

// Circularity makes "cursor is hd again" the stop test; the language has
// no reference equality, so payload identity stands in (payload values
// must be distinct). The two aliased same-region arguments require a
// `before:` relation; each payload read happens in its own call so the
// focus on one alias is released before the other is focused.
def is_last(cursor, hd : dll_node) : bool before: cursor ~ hd {
  pvalue(cursor) == pvalue(hd)
}

def value_at(l : dll, pos : int) : int {
  let some(node) = l.hd in {
    while (pos > 0) {
      node = node.next;
      pos = pos - 1
    };
    node.payload.value
  } else { -1 }
}

// Remove the node after the head: the same if-disconnected discipline as
// Fig. 5, exercised at a different position (victim == hd when the list
// is a singleton).
def remove_next(l : dll) : data? {
  let some(hd) = l.hd in {
    let victim = hd.next;
    victim.prev.next = victim.next;
    victim.next.prev = victim.prev;
    victim.next = victim;
    victim.prev = victim;
    if disconnected(victim, hd) {
      l.hd = some hd;
      some victim.payload
    } else {
      l.hd = none;
      some hd.payload
    }
  } else { none }
}

// Callers of get_nth_node: the after-annotation tells the caller the
// returned node shares the spine's region, so in-place surgery around it
// type-checks (T9 instantiating the Fig. 14 function type).
def set_value_at(l : dll, pos, v : int) : unit {
  let some(node) = get_nth_node(l, pos) in {
    node.payload.value = v;
  } else { unit }
}

def insert_after(l : dll, pos : int, p : data) : unit consumes p {
  let some(node) = get_nth_node(l, pos) in {
    let n = new dll_node(p);
    let nxt = node.next;
    n.next = nxt;
    n.prev = node;
    node.next = n;
    nxt.prev = n;
  } else {
    push_front(l, p);
  }
}
)prog";

// Fig. 4: the broken remove_tail. For size-1 lists hd and hd.prev alias,
// so the returned payload is not a dominating reference; the checker must
// reject this function (the fix is Fig. 5's `if disconnected`).
const char *programs::DllBrokenRemoveTail = R"prog(
struct data { value : int; }

struct dll_node {
  iso payload : data;
  next : dll_node;
  prev : dll_node;
}

struct dll {
  iso hd : dll_node?;
}

def remove_tail(l : dll) : data? {
  let some(hd) = l.hd in {
    let tail = hd.prev;
    tail.prev.next = hd;
    hd.prev = tail.prev;
    some tail.payload
  } else { none }
}
)prog";

// A red-black tree: iso payloads, intra-region parent/child pointers,
// rotations as aliased-parameter helper functions (`before:` region
// relations — the aliased-argument function types of §8's shuffle
// example). Keys are assumed distinct; each node records whether it is
// its parent's left child to avoid identity comparisons.
const char *programs::RedBlackTree = R"prog(
struct data { value : int; }

struct rb_node {
  iso payload : data;
  left : rb_node?;
  right : rb_node?;
  parent : rb_node?;
  red : bool;
  left_child : bool;
}

struct rb_tree {
  iso root : rb_node?;
}

def rb_new() : rb_tree { new rb_tree() }

def rb_node_new(p : data) : rb_node consumes p {
  let n = new rb_node(p) in {
    n.red = true;
    n
  }
}

def rb_value(n : rb_node) : int { n.payload.value }

// Left rotation around x; x and the tree's spine share a region.
def rotate_left(t : rb_tree, x : rb_node) : unit before: t.root ~ x {
  let some(y) = x.right in {
    x.right = y.left;
    let some(yl) = y.left in {
      yl.parent = some x;
      yl.left_child = false;
    } else { unit };
    y.parent = x.parent;
    y.left_child = x.left_child;
    let some(xp) = x.parent in {
      if (x.left_child) { xp.left = some y; }
      else { xp.right = some y; }
    } else {
      t.root = some y;
    };
    y.left = some x;
    x.parent = some y;
    x.left_child = true;
  } else { unit }
}

def rotate_right(t : rb_tree, x : rb_node) : unit before: t.root ~ x {
  let some(y) = x.left in {
    x.left = y.right;
    let some(yr) = y.right in {
      yr.parent = some x;
      yr.left_child = true;
    } else { unit };
    y.parent = x.parent;
    y.left_child = x.left_child;
    let some(xp) = x.parent in {
      if (x.left_child) { xp.left = some y; }
      else { xp.right = some y; }
    } else {
      t.root = some y;
    };
    y.right = some x;
    x.parent = some y;
    x.left_child = false;
  } else { unit }
}

// Plain BST insertion; the new node's region merges into the spine's.
def bst_insert(cur, n : rb_node) : unit after: n ~ cur {
  if (rb_value(n) < rb_value(cur)) {
    let some(l) = cur.left in {
      bst_insert(l, n);
    } else {
      cur.left = some n;
      n.parent = some cur;
      n.left_child = true;
    }
  } else {
    let some(r) = cur.right in {
      bst_insert(r, n);
    } else {
      cur.right = some n;
      n.parent = some cur;
      n.left_child = false;
    }
  }
}

def uncle_red_right(gp : rb_node) : bool {
  let some(u) = gp.right in { u.red } else { false }
}

def uncle_red_left(gp : rb_node) : bool {
  let some(u) = gp.left in { u.red } else { false }
}

def blacken_right(gp : rb_node) : unit {
  let some(u) = gp.right in { u.red = false; } else { unit }
}

def blacken_left(gp : rb_node) : unit {
  let some(u) = gp.left in { u.red = false; } else { unit }
}

// CLRS insert fixup, iterative.
def rb_fixup(t : rb_tree, z0 : rb_node) : unit before: t.root ~ z0 {
  let z = z0;
  let cont = true;
  while (cont) {
    cont = false;
    let some(zp) = z.parent in {
      if (zp.red) {
        let some(gp) = zp.parent in {
          if (zp.left_child) {
            if (uncle_red_right(gp)) {
              zp.red = false;
              blacken_right(gp);
              gp.red = true;
              z = gp;
              cont = true
            } else {
              if (z.left_child) { unit } else {
                z = zp;
                rotate_left(t, z)
              };
              let some(zp2) = z.parent in {
                zp2.red = false;
                let some(gp2) = zp2.parent in {
                  gp2.red = true;
                  rotate_right(t, gp2);
                } else { unit }
              } else { unit }
            }
          } else {
            if (uncle_red_left(gp)) {
              zp.red = false;
              blacken_left(gp);
              gp.red = true;
              z = gp;
              cont = true
            } else {
              if (z.left_child) {
                z = zp;
                rotate_right(t, z)
              } else { unit };
              let some(zp2) = z.parent in {
                zp2.red = false;
                let some(gp2) = zp2.parent in {
                  gp2.red = true;
                  rotate_left(t, gp2);
                } else { unit }
              } else { unit }
            }
          }
        } else { unit }
      } else { unit }
    } else { unit }
  };
  let some(r) = t.root in { r.red = false; } else { unit }
}

def rb_insert(t : rb_tree, p : data) : unit consumes p {
  let n = rb_node_new(p);
  let some(root) = t.root in {
    bst_insert(root, n);
    rb_fixup(t, n);
  } else {
    n.red = false;
    t.root = some n;
  }
}

def node_contains(cur : rb_node, v : int) : bool {
  let cv = rb_value(cur);
  if (cv == v) { true }
  else {
    if (v < cv) {
      let some(l) = cur.left in { node_contains(l, v) } else { false }
    } else {
      let some(r) = cur.right in { node_contains(r, v) } else { false }
    }
  }
}

def rb_contains(t : rb_tree, v : int) : bool {
  let some(root) = t.root in { node_contains(root, v) } else { false }
}

def node_min(cur : rb_node) : int {
  let some(l) = cur.left in { node_min(l) } else { rb_value(cur) }
}

def rb_min(t : rb_tree) : int {
  let some(root) = t.root in { node_min(root) } else { -1 }
}

def node_size(cur : rb_node) : int {
  let ls = let some(l) = cur.left in { node_size(l) } else { 0 };
  let rs = let some(r) = cur.right in { node_size(r) } else { 0 };
  1 + ls + rs
}

def rb_size(t : rb_tree) : int {
  let some(root) = t.root in { node_size(root) } else { 0 }
}

def node_height(cur : rb_node) : int {
  let lh = let some(l) = cur.left in { node_height(l) } else { 0 };
  let rh = let some(r) = cur.right in { node_height(r) } else { 0 };
  if (lh < rh) { 1 + rh } else { 1 + lh }
}

def rb_height(t : rb_tree) : int {
  let some(root) = t.root in { node_height(root) } else { 0 }
}

// Black-height of the subtree, or -1 on a red-red or imbalance violation.
def check_node(cur : rb_node) : int {
  let cr = cur.red;
  let lh = let some(l) = cur.left in {
    if (cr && l.red) { -1 } else { check_node(l) }
  } else { 0 };
  let rh = let some(r) = cur.right in {
    if (cr && r.red) { -1 } else { check_node(r) }
  } else { 0 };
  if (lh < 0 || rh < 0 || lh != rh) { -1 }
  else { if (cr) { lh } else { lh + 1 } }
}

// The appendix's shuffle idiom: take nodes in an arbitrary, possibly
// deeply aliased same-region state and impose a fixed pointer structure
// (a is the parent of leaves b and c).
def shuffle(a, b, c : rb_node) : unit before: a ~ b, a ~ c {
  a.left = some b;
  a.right = some c;
  a.parent = none;
  b.parent = some a;
  b.left_child = true;
  b.left = none;
  b.right = none;
  c.parent = some a;
  c.left_child = false;
  c.left = none;
  c.right = none;
}

def rb_check(t : rb_tree) : bool {
  let some(root) = t.root in {
    if (root.red) { false } else { 0 <= check_node(root) }
  } else { true }
}
)prog";

// A tree of regions: every edge is an iso field, so each node dominates
// its subtree and whole subtrees can be detached or sent independently.
const char *programs::BitTrie = R"prog(
struct trie_node {
  iso zero : trie_node?;
  iso one : trie_node?;
  value : int;
  present : bool;
}

struct trie {
  iso root : trie_node?;
}

def trie_new() : trie { new trie() }

def node_insert(n : trie_node, key, depth, v : int) : unit {
  if (depth <= 0) {
    n.value = v;
    n.present = true;
  } else {
    if (key % 2 == 0) {
      let some(z) = n.zero in {
        node_insert(z, key / 2, depth - 1, v);
      } else {
        let c = new trie_node();
        node_insert(c, key / 2, depth - 1, v);
        n.zero = some c;
      }
    } else {
      let some(o) = n.one in {
        node_insert(o, key / 2, depth - 1, v);
      } else {
        let c = new trie_node();
        node_insert(c, key / 2, depth - 1, v);
        n.one = some c;
      }
    }
  }
}

def trie_insert(t : trie, key, v : int) : unit {
  let some(r) = t.root in {
    node_insert(r, key, 16, v);
  } else {
    let c = new trie_node();
    node_insert(c, key, 16, v);
    t.root = some c;
  }
}

def node_lookup(n : trie_node, key, depth : int) : int {
  if (depth <= 0) {
    if (n.present) { n.value } else { -1 }
  } else {
    if (key % 2 == 0) {
      let some(z) = n.zero in { node_lookup(z, key / 2, depth - 1) }
      else { -1 }
    } else {
      let some(o) = n.one in { node_lookup(o, key / 2, depth - 1) }
      else { -1 }
    }
  }
}

def trie_lookup(t : trie, key : int) : int {
  let some(r) = t.root in { node_lookup(r, key, 16) } else { -1 }
}

def node_count(n : trie_node) : int {
  let zc = let some(z) = n.zero in { node_count(z) } else { 0 };
  let oc = let some(o) = n.one in { node_count(o) } else { 0 };
  let self = if (n.present) { 1 } else { 0 };
  zc + oc + self
}

def trie_count(t : trie) : int {
  let some(r) = t.root in { node_count(r) } else { 0 }
}

// Detach the entire zero-subtree of the root and send it to another
// thread: a whole subtree changes reservations with O(1) static
// reasoning (the iso edge dominates it).
def trie_send_zero_subtree(t : trie) : bool {
  let some(r) = t.root in {
    let some(z) = r.zero in {
      r.zero = none;
      send(z);
      true
    } else { false }
  } else { false }
}

def trie_recv_counter() : int {
  let n = recv<trie_node>();
  node_count(n)
}
)prog";

namespace {

/// MessagePassing = the sll suite + producer/consumer pipelines.
const std::string MessagePassingStorage = std::string(programs::SllSuite) +
                                          R"prog(
// Single-item pipeline: each item crosses threads with no locking.
def producer(count : int) : unit {
  let i = 0;
  while (i < count) {
    let d = new data(i) in { send(d) };
    i = i + 1
  }
}

def consumer(count : int) : int {
  let total = 0;
  let i = 0;
  while (i < count) {
    let d = recv<data>() in {
      total = total + d.value
    };
    i = i + 1
  };
  total
}

// Whole-list pipeline: entire list segments move between reservations.
def producer_lists(count, chunk : int) : unit {
  let i = 0;
  while (i < count) {
    let l = sll_new();
    let j = 0;
    while (j < chunk) {
      let p = new data(j) in { push_front(l, p) };
      j = j + 1
    };
    send(l);
    i = i + 1
  }
}

def consumer_lists(count : int) : int {
  let total = 0;
  let i = 0;
  while (i < count) {
    let l = recv<sll>() in {
      total = total + sum(l)
    };
    i = i + 1
  };
  total
}

// Map/reduce worker pool: workers turn list segments into int results;
// the reducer folds them. Channels are typed, so list traffic and result
// traffic never cross.
def worker(count : int) : unit {
  let i = 0;
  while (i < count) {
    let l = recv<sll>() in {
      send(sum(l))
    };
    i = i + 1
  }
}

def reducer(count : int) : int {
  let total = 0;
  let i = 0;
  while (i < count) {
    total = total + recv<int>();
    i = i + 1
  };
  total
}

// Echo stage for ring pipelines: receive a list, add one element, pass
// it on.
def relay(count : int) : unit {
  let i = 0;
  while (i < count) {
    let l = recv<sll>() in {
      let p = new data(1000) in { push_front(l, p) };
      send(l)
    };
    i = i + 1
  }
}
)prog";

/// Extras = the sll suite + reversal, sorting, and a queue.
const std::string ExtrasStorage = std::string(programs::SllSuite) +
                                  R"prog(
struct holder { iso head : sll_node?; }

def node_value(n : sll_node) : int { n.payload.value }

// In-place reversal: each loop iteration detaches the head node and
// pushes it onto the output. Retracting n.next after the repoint is what
// makes this sound — the old "reversed so far" list ends up dominated by
// the new head.
def reverse(h : holder) : unit {
  let out = new holder();
  let cont = true;
  while (cont) {
    let some(n) = h.head in {
      h.head = n.next;
      n.next = out.head;
      out.head = some n;
    } else { cont = false }
  };
  h.head = out.head;
}

// Sorted insertion. The inserted node must arrive dominating (its next
// broken), which the callers ensure.
def ins(cur, n : sll_node) : unit consumes n {
  let some(next) = cur.next in {
    if (node_value(n) < node_value(next)) {
      n.next = cur.next;
      cur.next = some n;
    } else {
      ins(next, n);
    }
  } else {
    n.next = none;
    cur.next = some n;
  }
}

def insert_sorted(h : holder, n : sll_node) : unit consumes n {
  let some(hd) = h.head in {
    if (node_value(n) < node_value(hd)) {
      n.next = h.head;
      h.head = some n;
    } else {
      ins(hd, n);
    }
  } else {
    n.next = none;
    h.head = some n;
  }
}

// Insertion sort: drain src into dst in sorted order. Note the mandatory
// `n.next = none` before the call: passing n while it still points into
// src would let the callee capture src's tail — the checker releases n's
// tracking at the call, which would otherwise invalidate src.head.
def sort_into(src, dst : holder) : unit {
  let cont = true;
  while (cont) {
    let some(n) = src.head in {
      src.head = n.next;
      n.next = none;
      insert_sorted(dst, n);
    } else { cont = false }
  }
}

def holder_push(h : holder, p : data) : unit consumes p {
  let n = new sll_node(p, h.head);
  h.head = some n;
}

def holder_sum(h : holder) : int {
  let some(hd) = h.head in { sum_node(hd) } else { 0 }
}

// Read n's value *before* tracking n.next: the call to node_value(n)
// conforms n's region to the default empty input, which would retract the
// tracked next field and invalidate the alias.
def is_sorted_from(n : sll_node) : bool {
  let nv = node_value(n);
  let some(next) = n.next in {
    if (node_value(next) < nv) { false }
    else { is_sorted_from(next) }
  } else { true }
}

def is_sorted(h : holder) : bool {
  let some(hd) = h.head in { is_sorted_from(hd) } else { true }
}

def holder_len(h : holder) : int {
  let some(hd) = h.head in { length_node(hd) } else { 0 }
}

// A two-ended queue out of two stacks: enqueue pushes the back stack;
// dequeue pops the front, reversing the back into the front when empty.
struct queue {
  iso front : holder;
  iso back : holder;
}

def queue_new() : queue {
  new queue(new holder(), new holder())
}

def enqueue(q : queue, p : data) : unit consumes p {
  let b = q.back;
  holder_push(b, p);
}

def dequeue(q : queue) : data? {
  let f = q.front;
  let some(hd) = f.head in {
    f.head = hd.next;
    some hd.payload
  } else {
    // Refill: reverse the back stack into the front.
    let b = q.back;
    reverse(b);
    f.head = b.head;
    b.head = none;
    let some(hd2) = f.head in {
      f.head = hd2.next;
      some hd2.payload
    } else { none }
  }
}

def queue_drain_sum(q : queue) : int {
  let total = 0;
  let cont = true;
  while (cont) {
    let d = dequeue(q);
    let got = let some(p) = d in { total = total + p.value; true }
              else { false };
    cont = got
  };
  total
}
)prog";

} // namespace

const char *programs::MessagePassing = MessagePassingStorage.c_str();
const char *programs::Extras = ExtrasStorage.c_str();
