//===- driver/Driver.h - End-to-end pipeline and sample programs -*- C++ -*-===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience pipeline (parse → sema → check → verify) plus the surface-
/// language sample programs shared by tests, examples, and benchmarks:
/// the paper's singly and doubly linked lists (Figs. 1, 2, 5, 14), the
/// broken Fig. 4 variant (which must be rejected), a red-black tree (the
/// appendix's flagship example), and message-passing pipelines.
///
//===----------------------------------------------------------------------===//

#ifndef FEARLESS_DRIVER_DRIVER_H
#define FEARLESS_DRIVER_DRIVER_H

#include "checker/Checker.h"
#include "verifier/Verifier.h"

namespace fearless {

/// Parses, resolves, checks, and (optionally) verifies a source buffer.
struct Pipeline {
  std::unique_ptr<Program> Prog;
  CheckedProgram Checked;
  VerifyStats Verified;
};

/// Runs the full pipeline; \p Verify re-checks all derivations.
Expected<Pipeline> compile(std::string_view Source,
                           const CheckerOptions &Opts = {},
                           bool Verify = true);

/// Sample surface programs.
namespace programs {

/// Fig. 1 sll + a full suite: construction, push/pop, remove_tail
/// (Fig. 2), concat (Fig. 14), length, sum, nth lookup.
extern const char *SllSuite;

/// Fig. 1 circular dll + suite: construction, push_front, remove_tail
/// (Fig. 5, with `if disconnected`), get_nth_node (Fig. 14), length.
extern const char *DllSuite;

/// Fig. 4: the broken dll remove_tail (no disconnection check). The
/// checker must reject it — the returned payload is not dominating for
/// size-1 lists.
extern const char *DllBrokenRemoveTail;

/// A red-black tree with iso payloads and intra-region parent pointers:
/// insert with rotations/recoloring, lookup, min, size, height, and an
/// invariant validator — the appendix's flagship data structure.
extern const char *RedBlackTree;

/// Producer/consumer pipelines over send/recv: single items and whole
/// list segments (fearless concurrency, §7).
extern const char *MessagePassing;

/// A binary trie keyed on integer bits where *every child edge is iso*:
/// a tree of regions (one region per node), the opposite discipline from
/// the red-black tree's single-region spine. Insert/lookup/count/depth.
extern const char *BitTrie;

/// Further algorithmic code in the spirit of §8's "thousands of lines":
/// in-place list reversal, insertion sort, and a two-ended queue, all on
/// recursively linear spines. Includes the domination-driven idiom of
/// breaking a node's links (`n.next = none`) before handing it to a
/// function that expects a dominating argument.
extern const char *Extras;

} // namespace programs

} // namespace fearless

#endif // FEARLESS_DRIVER_DRIVER_H
