//===- driver/CompilePipeline.h - Shared compile/run pipeline ---*- C++ -*-===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The reusable front half of `fearlessc` — parse + check + verify +
/// static analysis + bytecode lowering bundled into one immutable
/// CompiledArtifact — and the back half: executing an artifact and
/// rendering exactly the text the CLI prints. Factoring both out of
/// tools/fearlessc.cpp lets the `fearlessd` daemon (server/Server.h)
/// serve the same pipeline over a socket with **bit-identical** output:
/// client-mode runs and standalone runs compare equal byte for byte
/// because they are the same code path, not a re-implementation.
///
/// A CompiledArtifact is a pure function of (source text, options): it
/// holds no execution state, every run constructs its own Machine or
/// ParallelExec over it, and concurrent runs may share one artifact —
/// that is what makes the daemon's derivation cache
/// (server/DerivationCache.h) sound.
///
//===----------------------------------------------------------------------===//

#ifndef FEARLESS_DRIVER_COMPILEPIPELINE_H
#define FEARLESS_DRIVER_COMPILEPIPELINE_H

#include "analysis/StaticDisconnect.h"
#include "driver/Driver.h"
#include "support/Metrics.h"
#include "vm/Compiler.h"

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace fearless {

class FaultInjector;
class TraceSession;
namespace mc {
struct Schedule;
}

/// Everything that changes what buildArtifact produces. The fingerprint
/// joins the source hash in the derivation-cache key, so two requests
/// with different options never share an artifact.
struct PipelineOptions {
  /// Checker liveness oracle (§5.1); --no-oracle turns it off.
  bool UseOracle = true;
  /// Interprocedural summaries at analysis call sites (PR 8).
  bool Interprocedural = true;
  /// Dynamic reservation checks: Machine-mode check emission and the
  /// checked-vs-erased VM codegen mode (--no-checks turns off).
  bool Checks = true;
  /// Elide statically proven `if disconnected` traversals (--no-elide
  /// turns off).
  bool Elide = true;
  /// Emit reservation-check ops into the bytecode. The CLI computes this
  /// as `Checks && !WorkersSet` (the parallel executors always run
  /// erased — the checker proved the checks redundant).
  bool EmitChecks = true;
  /// Execution engine: "vm" (register bytecode, default) or "interp"
  /// (tree-walking interpreter). "interp" skips bytecode lowering.
  std::string Engine = "vm";

  /// Stable 64-bit fingerprint of every field above.
  uint64_t fingerprint() const;
};

/// The immutable product of the compile pipeline: AST + checked program
/// + verifier stats (Pipeline), the static region-graph analysis report
/// and its runtime verdict table, and (for the vm engine) the compiled
/// bytecode. Shared read-only by concurrent runs.
struct CompiledArtifact {
  Pipeline P;
  AnalysisReport Report;
  DisconnectVerdictTable Verdicts;
  /// Present iff Options.Engine == "vm".
  std::optional<vm::CompiledProgram> VmCode;
  /// The verdict split, stamped into --metrics output by runs.
  uint64_t MustDisconnectedSites = 0;
  uint64_t MustConnectedSites = 0;
  uint64_t UnknownSites = 0;
  /// The options the artifact was built under.
  PipelineOptions Options;
  /// Length of the source text the artifact was built from (cache
  /// accounting input).
  size_t SourceBytes = 0;

  /// Conservative estimate of resident bytes for cache budgeting: the
  /// AST, derivations, verdict table, and chunks all scale with source
  /// length, so the estimate is a calibrated multiple of it plus the
  /// bytecode pool actually measured.
  size_t approxBytes() const;
};

/// Runs parse + sema + check + verify + analyze (+ vm lowering for the
/// vm engine) over \p Source. \p Trace, when set, records a `vm.compile`
/// span on a dedicated buffer. Failures carry the DiagnosticStage that
/// maps to the CLI exit-code table.
Expected<std::shared_ptr<const CompiledArtifact>>
buildArtifact(std::string_view Source, const PipelineOptions &Opts,
              TraceSession *Trace = nullptr);

/// What to execute and what to report. Everything `fearlessc run`
/// accepts except the artifact-level options above.
struct RunSpec {
  std::string Fn = "main";
  std::vector<int64_t> Args;
  /// Machine schedule seed (--seed).
  uint64_t Seed = 0;
  /// --workers: run on ParallelExec's M:N task scheduler.
  size_t Workers = 0;
  bool WorkersSet = false;
  uint64_t SchedSeed = 0;
  /// Append the --stats / --metrics lines to Out.
  bool Stats = false;
  bool Metrics = false;
  /// Deterministic fault injection; null = disabled. Must outlive the
  /// call.
  FaultInjector *Faults = nullptr;
  /// Structured tracing for the execution engines; null = disabled.
  TraceSession *Trace = nullptr;
  /// Extra threads spawned alongside the entry (--spawn FN[:a,b,...],
  /// repeatable, in order). Machine mode only: this is how the CLI puts
  /// several root threads into the deterministic machine so `mc` and
  /// `run --schedule` have a schedule space to explore.
  std::vector<std::pair<std::string, std::vector<int64_t>>> Spawns;
  /// Replay a recorded schedule (--schedule FILE) instead of seeding the
  /// machine's own picker. Machine mode only; must outlive the call.
  const mc::Schedule *Schedule = nullptr;
};

/// One executed request: the exact bytes the CLI would print to stdout
/// (Out) and stderr (Err), the documented exit code, and the run's
/// metrics (valid when HasMetrics — compile-stage failures have none).
struct RunOutcome {
  int Exit = 0;
  std::string Out;
  std::string Err;
  RuntimeMetrics Metrics;
  bool HasMetrics = false;
};

/// Executes \p Spec.Fn over \p A on the engine the artifact was built
/// for. Never throws and never prints: all text lands in the outcome.
RunOutcome runArtifact(const CompiledArtifact &A, const RunSpec &Spec);

/// Renders `fearlessc check` output for \p A: the OK line (using
/// \p DisplayName verbatim), the analysis warnings, and optionally the
/// --stats block. Shared by the CLI and the daemon so both emit
/// identical bytes.
std::string renderCheckOutput(const CompiledArtifact &A,
                              std::string_view DisplayName,
                              bool Stats = false);

/// The documented exit code for a pipeline diagnostic (0 ok, 1 generic,
/// 2 usage, 3 parse, 4 check/verify, 5 runtime fault). One table,
/// shared by fearlessc, fearlessd, and the wire protocol's error codes.
int exitCodeForStage(DiagnosticStage Stage);

} // namespace fearless

#endif // FEARLESS_DRIVER_COMPILEPIPELINE_H
