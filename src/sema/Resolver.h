//===- sema/Resolver.h - Name and shape resolution --------------*- C++ -*-===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Early, region-free validation: variable scoping (no use of undeclared
/// variables, no shadowing), call targets and arity, struct/field names in
/// types, and annotation well-formedness. The region checker assumes a
/// resolved program.
///
//===----------------------------------------------------------------------===//

#ifndef FEARLESS_SEMA_RESOLVER_H
#define FEARLESS_SEMA_RESOLVER_H

#include "ast/Ast.h"
#include "sema/StructTable.h"

namespace fearless {

/// Resolves \p P against \p Structs. Returns false (with diagnostics) on
/// any error.
bool resolveProgram(const Program &P, const StructTable &Structs,
                    DiagnosticEngine &Diags);

} // namespace fearless

#endif // FEARLESS_SEMA_RESOLVER_H
