//===- sema/Signature.h - Function type elaboration ------------*- C++ -*-===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Elaborates the usable function surface syntax of §4.9 into the function
/// types of §4.8:  (H; Γ) ⇒ (H'; Γ'; r τ).
///
/// Defaults (no annotations):
///  - each regionful parameter enters in its own fresh, unpinned region
///    with an empty tracking context;
///  - at output each parameter is back in that region, again unpinned and
///    empty;
///  - a regionful result is in its own fresh, unpinned, empty region.
///
/// Annotations:
///  - `consumes p`  — p's region is absent from the output H (the callee
///    keeps it: sent away, or retracted into another argument).
///  - `pinned p`    — p's region is pinned in both input and output: the
///    callee promises not to focus into it, merge it, or consume it, so
///    the caller may frame away (and later restore) its tracking details.
///  - `after: a ~ b` — the regions denoted by paths a and b coincide in
///    the output. A path `p.f` additionally causes p to be focused with f
///    tracked in both the input and output contexts, exposing the region
///    structure to the caller (the get_nth_node example of Fig. 14).
///
//===----------------------------------------------------------------------===//

#ifndef FEARLESS_SEMA_SIGNATURE_H
#define FEARLESS_SEMA_SIGNATURE_H

#include "ast/Ast.h"
#include "regions/Contexts.h"
#include "sema/StructTable.h"
#include "support/Expected.h"

#include <map>

namespace fearless {

/// The elaborated function type. Region ids are private to the signature;
/// call sites instantiate them against caller regions by matching anchors.
struct FnSignature {
  Symbol Name;
  const FnDecl *Decl = nullptr;
  Type ReturnType;

  Contexts Input;  ///< H; Γ at entry — Γ binds exactly the parameters.
  Contexts Output; ///< H'; Γ' at exit — same Γ domain.
  RegionId ResultRegion; ///< Region of the result in Output (invalid for
                         ///< primitive results).

  /// The input region of each regionful parameter.
  std::map<Symbol, RegionId> ParamRegion;

  /// Maps every input region (parameter regions and tracked-field target
  /// regions) to its region in the Output context: identity by default,
  /// merged by `after:` relations, invalid when consumed.
  std::map<RegionId, RegionId> OutputImage;
};

/// Elaborates \p F. \p Supply provides the signature's region names.
Expected<FnSignature> elaborateSignature(const FnDecl &F,
                                         const StructTable &Structs,
                                         const Interner &Names,
                                         RegionSupply &Supply);

/// Renders the signature's full function type for diagnostics and docs,
/// e.g. "(r1<l[hd -> r2]>, r2<> ; l : r1 dll) => (... ; r2 dll_node?)".
std::string toString(const FnSignature &Sig, const Interner &Names);

} // namespace fearless

#endif // FEARLESS_SEMA_SIGNATURE_H
