//===- sema/StructTable.h - Struct declarations index ----------*- C++ -*-===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An index over struct declarations with field-layout queries used by the
/// checker and the runtime, plus validation of the declarations themselves
/// (duplicate names, unknown field types, constructability of `new S()`).
///
//===----------------------------------------------------------------------===//

#ifndef FEARLESS_SEMA_STRUCTTABLE_H
#define FEARLESS_SEMA_STRUCTTABLE_H

#include "ast/Ast.h"
#include "support/Expected.h"

#include <map>
#include <vector>

namespace fearless {

/// Dense per-struct field index used by the runtime object layout.
struct FieldInfo {
  Symbol Name;
  Type FieldType;
  bool Iso = false;
  uint32_t Index = 0; ///< Slot in the runtime object.
};

/// Resolved information about one struct.
struct StructInfo {
  Symbol Name;
  const StructDecl *Decl = nullptr;
  std::vector<FieldInfo> Fields;

  const FieldInfo *findField(Symbol FieldName) const;

  /// True when \p F can be default-initialized: maybe fields to none,
  /// primitives to 0/false/unit, and non-iso same-struct fields to a
  /// self-reference (the size-1 circular shape of Fig. 3).
  bool fieldDefaultable(const FieldInfo &F) const;

  /// Field indices without defaults, in declaration order. `new S(args)`
  /// accepts either one argument per field, or one per required field
  /// (the rest defaulting), or none when this list is empty.
  std::vector<uint32_t> requiredFieldIndices() const;

  /// True when `new S()` (no arguments) is legal.
  bool defaultConstructible() const {
    return requiredFieldIndices().empty();
  }
};

/// Index over all structs in a program.
class StructTable {
public:
  /// Builds and validates the table. Reports problems to \p Diags and
  /// returns false if any were errors.
  bool build(const Program &P, DiagnosticEngine &Diags);

  const StructInfo *lookup(Symbol Name) const;
  const std::map<Symbol, StructInfo> &structs() const { return Table; }

private:
  std::map<Symbol, StructInfo> Table;
};

} // namespace fearless

#endif // FEARLESS_SEMA_STRUCTTABLE_H
