//===- sema/Signature.cpp -------------------------------------------------===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//

#include "sema/Signature.h"

#include <cassert>

using namespace fearless;

namespace {

/// Helper resolving an `after:` path to the region it denotes within a
/// signature under construction.
class PathResolver {
public:
  PathResolver(FnSignature &Sig, const FnDecl &F, const Interner &Names,
               RegionSupply &Supply)
      : Sig(Sig), F(F), Names(Names), Supply(Supply) {}

  /// Ensures `p` is focused and `p.f` tracked in both Input and Output,
  /// creating the shared target region on first use. Returns the target
  /// region of the path (the parameter's own region for bare paths).
  Expected<RegionId> resolve(const AnnotPath &Path) {
    if (Path.IsResult) {
      ensureResultRegion();
      return Sig.ResultRegion;
    }
    auto RegionIt = Sig.ParamRegion.find(Path.Base);
    if (RegionIt == Sig.ParamRegion.end())
      return fail("'after' path parameter '" + Names.spelling(Path.Base) +
                      "' has no region (primitive type?)",
                  Path.Loc);
    RegionId ParamR = RegionIt->second;
    if (!Path.Field.isValid())
      return ParamR;
    if (F.isPinned(Path.Base))
      return fail("cannot track a field of pinned parameter '" +
                      Names.spelling(Path.Base) + "'",
                  Path.Loc);
    // Focus the parameter and track the field in both contexts, sharing
    // one target region id so input and output refer to the same region.
    RegionId Target;
    if (const VarTrack *Existing =
            Sig.Input.Heap.trackedVar(ParamR, Path.Base)) {
      auto FieldIt = Existing->Fields.find(Path.Field);
      if (FieldIt != Existing->Fields.end())
        Target = FieldIt->second;
    }
    if (!Target.isValid()) {
      Target = Supply.fresh();
      for (Contexts *Ctx : {&Sig.Input, &Sig.Output}) {
        RegionTrack *Track = Ctx->Heap.lookup(ParamR);
        assert(Track && "parameter region missing");
        Track->Vars[Path.Base].Fields[Path.Field] = Target;
        if (!Ctx->Heap.hasRegion(Target))
          Ctx->Heap.addRegion(Target);
      }
    }
    return Target;
  }

  void ensureResultRegion() {
    if (Sig.ResultRegion.isValid())
      return;
    Sig.ResultRegion = Supply.fresh();
    Sig.Output.Heap.addRegion(Sig.ResultRegion);
  }

private:
  FnSignature &Sig;
  const FnDecl &F;
  const Interner &Names;
  RegionSupply &Supply;
};

} // namespace

Expected<FnSignature> fearless::elaborateSignature(const FnDecl &F,
                                                   const StructTable &Structs,
                                                   const Interner &Names,
                                                   RegionSupply &Supply) {
  (void)Structs;
  FnSignature Sig;
  Sig.Name = F.Name;
  Sig.Decl = &F;
  Sig.ReturnType = F.ReturnType;

  // Parameters: fresh region each (regionful only), bound in both Γs.
  for (const ParamDecl &Param : F.Params) {
    RegionId R;
    if (Param.ParamType.isRegionful()) {
      R = Supply.fresh();
      Sig.ParamRegion[Param.Name] = R;
      Sig.Input.Heap.addRegion(R);
      Sig.Output.Heap.addRegion(R);
      if (F.isPinned(Param.Name)) {
        Sig.Input.Heap.lookup(R)->Pinned = true;
        Sig.Output.Heap.lookup(R)->Pinned = true;
      }
    }
    VarBinding Binding{R, Param.ParamType};
    Sig.Input.Vars.bind(Param.Name, Binding);
    Sig.Output.Vars.bind(Param.Name, Binding);
  }

  PathResolver Resolver(Sig, F, Names, Supply);

  // Before-relations: the denoted regions coincide already at the call.
  // Merge them in *both* contexts (input sharing persists to the output
  // unless an after-relation reshapes it further).
  for (const AfterRelation &Rel : F.Befores) {
    Expected<RegionId> Lhs = Resolver.resolve(Rel.Lhs);
    if (!Lhs)
      return Lhs.takeFailure();
    Expected<RegionId> Rhs = Resolver.resolve(Rel.Rhs);
    if (!Rhs)
      return Rhs.takeFailure();
    if (*Lhs == *Rhs)
      continue;
    for (Contexts *Ctx : {&Sig.Input, &Sig.Output}) {
      if (!Ctx->Heap.canAttach(*Rhs, *Lhs))
        return fail("'before' relation cannot merge the denoted regions",
                    Rel.Lhs.Loc);
      Ctx->Heap.attach(*Rhs, *Lhs);
      Ctx->Vars.renameRegion(*Rhs, *Lhs);
    }
    for (auto &[Param, Region] : Sig.ParamRegion)
      if (Region == *Rhs)
        Region = *Lhs;
  }

  // After-relations: track mentioned fields, then merge denoted regions in
  // the *output* context (input keeps them distinct; `a ~ b` speaks about
  // the state after the call).
  for (const AfterRelation &Rel : F.Afters) {
    Expected<RegionId> Lhs = Resolver.resolve(Rel.Lhs);
    if (!Lhs)
      return Lhs.takeFailure();
    Expected<RegionId> Rhs = Resolver.resolve(Rel.Rhs);
    if (!Rhs)
      return Rhs.takeFailure();
    if (*Lhs == *Rhs)
      continue;
    // Merge Rhs into Lhs in the output only. Parameters' own regions must
    // stay distinct at input, which they do by construction.
    if (!Sig.Output.Heap.canAttach(*Rhs, *Lhs))
      return fail("'after' relation cannot merge the denoted regions",
                  Rel.Lhs.Loc);
    Sig.Output.Heap.attach(*Rhs, *Lhs);
    Sig.Output.Vars.renameRegion(*Rhs, *Lhs);
    if (Sig.ResultRegion == *Rhs)
      Sig.ResultRegion = *Lhs;
  }

  // Consumed parameters: their region disappears from the output H. Any
  // tracked fields recorded for them would dangle, so forbid combining
  // consumes with after-paths on the same parameter (resolver also checks).
  for (Symbol C : F.Consumes) {
    auto It = Sig.ParamRegion.find(C);
    if (It == Sig.ParamRegion.end())
      return fail("'consumes' parameter '" + Names.spelling(C) +
                      "' has no region",
                  F.Loc);
    RegionId R = It->second;
    const RegionTrack *Track = Sig.Output.Heap.lookup(R);
    if (!Track)
      return fail("parameter '" + Names.spelling(C) +
                      "' consumed twice or merged away",
                  F.Loc);
    if (!Track->empty())
      return fail("'consumes' parameter '" + Names.spelling(C) +
                      "' may not also be focused by 'after' paths",
                  F.Loc);
    if (Sig.Output.Heap.isFieldTarget(R))
      return fail("'consumes' parameter '" + Names.spelling(C) +
                      "' is targeted by an 'after' tracked field",
                  F.Loc);
    Sig.Output.Heap.removeRegion(R);
  }

  // Result region: fresh and empty unless an after-relation placed it.
  if (F.ReturnType.isRegionful())
    Resolver.ensureResultRegion();

  // OutputImage: every input region maps to the output region absorbing
  // it. Output.Heap keys are the post-merge names, so chase each input
  // region through Γ (parameters keep their bindings in the output Γ) or
  // the merged tracking structure.
  for (const auto &[Region, Track] : Sig.Input.Heap.entries()) {
    (void)Track;
    RegionId Image; // invalid: consumed
    if (Sig.Output.Heap.hasRegion(Region)) {
      Image = Region;
    } else {
      // Find where the region went via Γ or tracked-field targets.
      for (const auto &[Var, Binding] : Sig.Input.Vars.entries()) {
        if (Binding.Region != Region)
          continue;
        const VarBinding *OutBinding = Sig.Output.Vars.lookup(Var);
        if (OutBinding && Sig.Output.Heap.hasRegion(OutBinding->Region))
          Image = OutBinding->Region;
        break;
      }
      if (!Image.isValid()) {
        // Tracked-field target: locate the same (var, field) slot in the
        // output context.
        for (const auto &[InRegion, InTrack] : Sig.Input.Heap.entries()) {
          (void)InRegion;
          for (const auto &[Var, VTrack] : InTrack.Vars)
            for (const auto &[Field, Target] : VTrack.Fields) {
              if (Target != Region)
                continue;
              auto OutRegion = Sig.Output.Heap.trackingRegionOf(Var);
              if (!OutRegion)
                continue;
              const VarTrack *OutTrack =
                  Sig.Output.Heap.trackedVar(*OutRegion, Var);
              auto It = OutTrack->Fields.find(Field);
              if (It != OutTrack->Fields.end())
                Image = It->second;
            }
        }
      }
    }
    Sig.OutputImage[Region] = Image;
  }

  return Sig;
}

std::string fearless::toString(const FnSignature &Sig,
                               const Interner &Names) {
  std::string Out = "(" + toString(Sig.Input, Names) + ") => (";
  Out += toString(Sig.Output, Names);
  Out += " ; ";
  if (Sig.ResultRegion.isValid())
    Out += toString(Sig.ResultRegion) + " ";
  Out += toString(Sig.ReturnType, Names);
  Out += ")";
  return Out;
}
