//===- sema/Resolver.cpp --------------------------------------------------===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//

#include "sema/Resolver.h"

#include <set>

using namespace fearless;

namespace {

/// Scope-checking walker for one function body.
class Resolver {
public:
  Resolver(const Program &P, const StructTable &Structs,
           DiagnosticEngine &Diags)
      : P(P), Structs(Structs), Diags(Diags) {}

  bool resolveFunction(const FnDecl &F) {
    Ok = true;
    Scope.clear();
    std::set<Symbol> ParamNames;
    for (const ParamDecl &Param : F.Params) {
      if (!ParamNames.insert(Param.Name).second) {
        error("duplicate parameter '" + P.Names.spelling(Param.Name) + "'",
              Param.Loc);
      }
      checkTypeNames(Param.ParamType, Param.Loc);
      Scope.insert(Param.Name);
    }
    checkTypeNames(F.ReturnType, F.Loc);
    checkAnnotations(F);
    walk(*F.Body);
    return Ok;
  }

private:
  void error(std::string Message, SourceLoc Loc) {
    Diags.error(std::move(Message), Loc);
    Ok = false;
  }

  void checkTypeNames(const Type &Ty, SourceLoc Loc) {
    if (Ty.isRegionful() && !Structs.lookup(Ty.StructName))
      error("unknown struct type '" + P.Names.spelling(Ty.StructName) + "'",
            Loc);
  }

  void checkAnnotations(const FnDecl &F) {
    auto CheckParamRef = [&](Symbol Name, SourceLoc Loc, const char *What) {
      const ParamDecl *Param = F.findParam(Name);
      if (!Param) {
        error(std::string(What) + " names unknown parameter '" +
                  P.Names.spelling(Name) + "'",
              Loc);
        return;
      }
      if (!Param->ParamType.isRegionful())
        error(std::string(What) + " parameter '" + P.Names.spelling(Name) +
                  "' must have a struct type",
              Loc);
    };
    for (Symbol C : F.Consumes)
      CheckParamRef(C, F.Loc, "'consumes'");
    for (Symbol Pn : F.Pinned) {
      CheckParamRef(Pn, F.Loc, "'pinned'");
      if (F.isConsumed(Pn))
        error("parameter '" + P.Names.spelling(Pn) +
                  "' cannot be both pinned and consumed",
              F.Loc);
    }
    auto CheckPath = [&](const AnnotPath &Path) {
      if (Path.IsResult) {
        if (!F.ReturnType.isRegionful())
          error("'after' relates 'result' but the return type is not a "
                "struct type",
                Path.Loc);
        return;
      }
      const ParamDecl *Param = F.findParam(Path.Base);
      if (!Param) {
        error("'after' path names unknown parameter '" +
                  P.Names.spelling(Path.Base) + "'",
              Path.Loc);
        return;
      }
      if (!Param->ParamType.isStruct()) {
        error("'after' path base '" + P.Names.spelling(Path.Base) +
                  "' must have a (non-maybe) struct type",
              Path.Loc);
        return;
      }
      if (!Path.Field.isValid())
        return;
      const StructInfo *Info = Structs.lookup(Param->ParamType.StructName);
      const FieldInfo *Field =
          Info ? Info->findField(Path.Field) : nullptr;
      if (!Field) {
        error("'after' path field '" + P.Names.spelling(Path.Field) +
                  "' is not a field of '" +
                  P.Names.spelling(Param->ParamType.StructName) + "'",
              Path.Loc);
        return;
      }
      if (!Field->Iso)
        error("'after' path field '" + P.Names.spelling(Path.Field) +
                  "' must be an iso field",
              Path.Loc);
      if (F.isConsumed(Path.Base))
        error("'after' path base '" + P.Names.spelling(Path.Base) +
                  "' is consumed",
              Path.Loc);
    };
    for (const AfterRelation &Rel : F.Afters) {
      CheckPath(Rel.Lhs);
      CheckPath(Rel.Rhs);
    }
    for (const AfterRelation &Rel : F.Befores) {
      if (Rel.Lhs.IsResult || Rel.Rhs.IsResult)
        error("'before' relations cannot mention 'result'", Rel.Lhs.Loc);
      CheckPath(Rel.Lhs);
      CheckPath(Rel.Rhs);
    }
  }

  void requireInScope(Symbol Name, SourceLoc Loc) {
    if (!Scope.count(Name))
      error("use of undeclared variable '" + P.Names.spelling(Name) + "'",
            Loc);
  }

  void walk(const Expr &E) {
    switch (E.kind()) {
    case ExprKind::IntLit:
    case ExprKind::BoolLit:
    case ExprKind::UnitLit:
    case ExprKind::NoneLit:
      return;
    case ExprKind::VarRef:
      requireInScope(cast<VarRefExpr>(E).Name, E.loc());
      return;
    case ExprKind::FieldRef:
      walk(*cast<FieldRefExpr>(E).Base);
      return;
    case ExprKind::AssignVar: {
      const auto &A = cast<AssignVarExpr>(E);
      requireInScope(A.Name, E.loc());
      walk(*A.Value);
      return;
    }
    case ExprKind::AssignField: {
      const auto &A = cast<AssignFieldExpr>(E);
      walk(*A.Base);
      walk(*A.Value);
      return;
    }
    case ExprKind::Let: {
      const auto &L = cast<LetExpr>(E);
      if (L.Declared.isValid())
        checkTypeNames(L.Declared, E.loc());
      walk(*L.Init);
      if (Scope.count(L.Name)) {
        error("shadowing of variable '" + P.Names.spelling(L.Name) +
                  "' is not allowed",
              E.loc());
        return;
      }
      Scope.insert(L.Name);
      walk(*L.Body);
      Scope.erase(L.Name);
      return;
    }
    case ExprKind::LetSome: {
      const auto &L = cast<LetSomeExpr>(E);
      walk(*L.Scrutinee);
      if (Scope.count(L.Name)) {
        error("shadowing of variable '" + P.Names.spelling(L.Name) +
                  "' is not allowed",
              E.loc());
        return;
      }
      Scope.insert(L.Name);
      walk(*L.SomeBody);
      Scope.erase(L.Name);
      walk(*L.NoneBody);
      return;
    }
    case ExprKind::If: {
      const auto &I = cast<IfExpr>(E);
      walk(*I.Cond);
      walk(*I.Then);
      if (I.Else)
        walk(*I.Else);
      return;
    }
    case ExprKind::IfDisconnected: {
      const auto &I = cast<IfDisconnectedExpr>(E);
      requireInScope(I.VarA, E.loc());
      requireInScope(I.VarB, E.loc());
      walk(*I.Then);
      walk(*I.Else);
      return;
    }
    case ExprKind::While: {
      const auto &W = cast<WhileExpr>(E);
      walk(*W.Cond);
      walk(*W.Body);
      return;
    }
    case ExprKind::Seq:
      for (const ExprPtr &Elem : cast<SeqExpr>(E).Elems)
        walk(*Elem);
      return;
    case ExprKind::New: {
      const auto &N = cast<NewExpr>(E);
      const StructInfo *Info = Structs.lookup(N.StructName);
      if (!Info) {
        error("unknown struct '" + P.Names.spelling(N.StructName) + "'",
              E.loc());
        return;
      }
      size_t Required = Info->requiredFieldIndices().size();
      if (N.Args.size() != Info->Fields.size() &&
          N.Args.size() != Required)
        error("'new " + P.Names.spelling(N.StructName) + "' takes " +
                  std::to_string(Required) + " (required fields) or " +
                  std::to_string(Info->Fields.size()) +
                  " (all fields) arguments, got " +
                  std::to_string(N.Args.size()),
              E.loc());
      for (const ExprPtr &Arg : N.Args)
        walk(*Arg);
      return;
    }
    case ExprKind::SomeExpr:
      walk(*cast<SomeExpr>(E).Operand);
      return;
    case ExprKind::IsNone:
      walk(*cast<IsNoneExpr>(E).Operand);
      return;
    case ExprKind::Send:
      walk(*cast<SendExpr>(E).Operand);
      return;
    case ExprKind::Recv: {
      const auto &R = cast<RecvExpr>(E);
      checkTypeNames(R.ValueType, E.loc());
      return;
    }
    case ExprKind::Call: {
      const auto &C = cast<CallExpr>(E);
      const FnDecl *Callee = P.findFunction(C.Callee);
      if (!Callee) {
        error("call to unknown function '" + P.Names.spelling(C.Callee) +
                  "'",
              E.loc());
      } else if (Callee->Params.size() != C.Args.size()) {
        error("function '" + P.Names.spelling(C.Callee) + "' takes " +
                  std::to_string(Callee->Params.size()) +
                  " arguments, got " + std::to_string(C.Args.size()),
              E.loc());
      }
      for (const ExprPtr &Arg : C.Args)
        walk(*Arg);
      return;
    }
    case ExprKind::Binary: {
      const auto &B = cast<BinaryExpr>(E);
      walk(*B.Lhs);
      walk(*B.Rhs);
      return;
    }
    case ExprKind::Unary:
      walk(*cast<UnaryExpr>(E).Operand);
      return;
    }
  }

  const Program &P;
  const StructTable &Structs;
  DiagnosticEngine &Diags;
  std::set<Symbol> Scope;
  bool Ok = true;
};

} // namespace

bool fearless::resolveProgram(const Program &P, const StructTable &Structs,
                              DiagnosticEngine &Diags) {
  bool Ok = true;
  std::set<Symbol> FnNames;
  for (const FnDecl &F : P.Functions) {
    if (!FnNames.insert(F.Name).second) {
      Diags.error("duplicate function '" + P.Names.spelling(F.Name) + "'",
                  F.Loc);
      Ok = false;
    }
    Resolver R(P, Structs, Diags);
    if (!R.resolveFunction(F))
      Ok = false;
  }
  return Ok;
}
