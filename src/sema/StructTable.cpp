//===- sema/StructTable.cpp -----------------------------------------------===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//

#include "sema/StructTable.h"

using namespace fearless;

const FieldInfo *StructInfo::findField(Symbol FieldName) const {
  for (const FieldInfo &F : Fields)
    if (F.Name == FieldName)
      return &F;
  return nullptr;
}

bool StructInfo::fieldDefaultable(const FieldInfo &F) const {
  if (F.FieldType.isMaybe() || !F.FieldType.isRegionful())
    return true;
  // Non-maybe struct field: only a non-iso self-reference has a default.
  return !F.Iso && F.FieldType.StructName == Name;
}

std::vector<uint32_t> StructInfo::requiredFieldIndices() const {
  std::vector<uint32_t> Out;
  for (const FieldInfo &F : Fields)
    if (!fieldDefaultable(F))
      Out.push_back(F.Index);
  return Out;
}

bool StructTable::build(const Program &P, DiagnosticEngine &Diags) {
  bool Ok = true;
  for (const StructDecl &S : P.Structs) {
    if (Table.count(S.Name)) {
      Diags.error("duplicate struct '" + P.Names.spelling(S.Name) + "'",
                  S.Loc);
      Ok = false;
      continue;
    }
    StructInfo Info;
    Info.Name = S.Name;
    Info.Decl = &S;
    uint32_t Index = 0;
    for (const FieldDecl &F : S.Fields) {
      if (Info.findField(F.Name)) {
        Diags.error("duplicate field '" + P.Names.spelling(F.Name) +
                        "' in struct '" + P.Names.spelling(S.Name) + "'",
                    F.Loc);
        Ok = false;
        continue;
      }
      if (F.Iso && !F.FieldType.isRegionful()) {
        Diags.error("iso field '" + P.Names.spelling(F.Name) +
                        "' must have a struct (or maybe-struct) type",
                    F.Loc);
        Ok = false;
      }
      Info.Fields.push_back(FieldInfo{F.Name, F.FieldType, F.Iso, Index++});
    }
    Table.emplace(S.Name, std::move(Info));
  }
  // Second pass: field types must name declared structs.
  for (const StructDecl &S : P.Structs)
    for (const FieldDecl &F : S.Fields)
      if (F.FieldType.isRegionful() && !Table.count(F.FieldType.StructName)) {
        Diags.error("field '" + P.Names.spelling(F.Name) +
                        "' has unknown struct type '" +
                        P.Names.spelling(F.FieldType.StructName) + "'",
                    F.Loc);
        Ok = false;
      }
  return Ok;
}

const StructInfo *StructTable::lookup(Symbol Name) const {
  auto It = Table.find(Name);
  return It == Table.end() ? nullptr : &It->second;
}
