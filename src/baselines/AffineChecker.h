//===- baselines/AffineChecker.h - Rust-like affine baseline ----*- C++ -*-===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A comparator checker modelling the affine *tree-of-objects* discipline
/// of Rust-style ownership (§9.2, Table 1): every heap reference is an
/// owning unique pointer, objects form a tree, and values move.
///
///  - Struct declarations may only hold owning (iso) references: a plain
///    (aliasing) struct field has no safe encoding, so the circular
///    doubly linked list of Fig. 1 is not representable (dll-repr ✗).
///  - Each owning variable may be consumed at most once (moved into a
///    field, sent, or passed to a consuming parameter); use-after-move is
///    rejected. Field reads borrow, so sll remove_tail's traversal is
///    accepted (sll ✓) — the Rust row of Table 1.
///  - `if disconnected` does not exist.
///
//===----------------------------------------------------------------------===//

#ifndef FEARLESS_BASELINES_AFFINECHECKER_H
#define FEARLESS_BASELINES_AFFINECHECKER_H

#include "baselines/GlobalDomChecker.h" // BaselineResult
#include "sema/StructTable.h"

namespace fearless {

/// Checks one struct declaration under the affine tree-of-objects rule.
BaselineResult affineCheckStruct(const Program &P,
                                 const StructTable &Structs,
                                 const StructDecl &S);

/// Checks one function body under affine move discipline.
BaselineResult affineCheckFunction(const Program &P,
                                   const StructTable &Structs,
                                   const FnDecl &F);

/// Checks a whole program (structs and functions).
BaselineResult affineCheckProgram(const Program &P,
                                  const StructTable &Structs);

} // namespace fearless

#endif // FEARLESS_BASELINES_AFFINECHECKER_H
