//===- baselines/GlobalDomChecker.h - LaCasa-style baseline -----*- C++ -*-===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A comparator checker modelling the *global domination* discipline of
/// LaCasa / extended Balloon types (§9.1, Table 1): iso (@unique) fields
/// must dominate their reachable subgraphs at all times, and there is no
/// focus mechanism to track temporary exceptions. Consequently:
///
///  - reading an iso field into a local alias is rejected — these systems
///    require a destructive read or swap primitive instead, which our
///    surface language deliberately lacks;
///  - assigning an iso field from an existing variable is rejected (the
///    variable would remain a second, domination-violating alias); only
///    freshly produced values (new / recv / none / call results) may be
///    stored;
///  - `if disconnected` does not exist.
///
/// Arbitrary aliasing *within* plain fields is allowed, so the circular
/// doubly linked list is representable (dll-repr ✓) but sll remove_tail's
/// non-destructive traversal is not (sll ✗) — exactly LaCasa's row.
///
//===----------------------------------------------------------------------===//

#ifndef FEARLESS_BASELINES_GLOBALDOMCHECKER_H
#define FEARLESS_BASELINES_GLOBALDOMCHECKER_H

#include "ast/Ast.h"
#include "sema/StructTable.h"

namespace fearless {

/// Outcome of a baseline check.
struct BaselineResult {
  bool Accepted = true;
  std::vector<Diagnostic> Errors;
};

/// Checks one struct declaration under global domination.
BaselineResult globalDomCheckStruct(const Program &P,
                                    const StructTable &Structs,
                                    const StructDecl &S);

/// Checks one function body under global domination.
BaselineResult globalDomCheckFunction(const Program &P,
                                      const StructTable &Structs,
                                      const FnDecl &F);

/// Checks a whole program; stops at nothing (collects all errors).
BaselineResult globalDomCheckProgram(const Program &P,
                                     const StructTable &Structs);

} // namespace fearless

#endif // FEARLESS_BASELINES_GLOBALDOMCHECKER_H
