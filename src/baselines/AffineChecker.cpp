//===- baselines/AffineChecker.cpp ----------------------------------------===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//

#include "baselines/AffineChecker.h"

#include <set>

using namespace fearless;

namespace {

/// Move-discipline walker: owning variables are consumed by moves.
class AffineWalker {
public:
  AffineWalker(const Program &P, const StructTable &Structs,
               BaselineResult &Result)
      : P(P), Structs(Structs), Result(Result) {}

  void walkFunction(const FnDecl &F) {
    Moved.clear();
    Owned.clear();
    for (const ParamDecl &Param : F.Params)
      if (Param.ParamType.isRegionful())
        Owned.insert(Param.Name);
    walk(*F.Body, /*Consuming=*/false);
  }

private:
  void error(std::string Message, SourceLoc Loc) {
    Result.Accepted = false;
    Result.Errors.push_back(
        Diagnostic{DiagnosticSeverity::Error, std::move(Message), Loc});
  }

  void useVar(Symbol Name, bool Consuming, SourceLoc Loc) {
    if (!Owned.count(Name))
      return;
    if (Moved.count(Name)) {
      error("affine ownership: use of moved variable '" +
                P.Names.spelling(Name) + "'",
            Loc);
      return;
    }
    if (Consuming)
      Moved.insert(Name);
  }

  /// Walks \p E; Consuming marks value positions that take ownership
  /// (field stores, sends, call arguments, new initializers).
  void walk(const Expr &E, bool Consuming) {
    switch (E.kind()) {
    case ExprKind::VarRef:
      useVar(cast<VarRefExpr>(E).Name, Consuming, E.loc());
      return;
    case ExprKind::FieldRef:
      // Borrowing read of the base.
      walk(*cast<FieldRefExpr>(E).Base, /*Consuming=*/false);
      return;
    case ExprKind::AssignVar: {
      const auto &A = cast<AssignVarExpr>(E);
      walk(*A.Value, /*Consuming=*/true);
      Moved.erase(A.Name); // reassignment refreshes ownership
      return;
    }
    case ExprKind::AssignField: {
      const auto &A = cast<AssignFieldExpr>(E);
      walk(*A.Base, /*Consuming=*/false);
      walk(*A.Value, /*Consuming=*/true);
      return;
    }
    case ExprKind::Let: {
      const auto &L = cast<LetExpr>(E);
      walk(*L.Init, /*Consuming=*/false); // binding borrows the place
      Owned.insert(L.Name);
      walk(*L.Body, Consuming);
      Owned.erase(L.Name);
      Moved.erase(L.Name);
      return;
    }
    case ExprKind::LetSome: {
      const auto &L = cast<LetSomeExpr>(E);
      walk(*L.Scrutinee, /*Consuming=*/false);
      Owned.insert(L.Name);
      auto SavedMoved = Moved;
      walk(*L.SomeBody, Consuming);
      Owned.erase(L.Name);
      Moved = std::move(SavedMoved);
      walk(*L.NoneBody, Consuming);
      return;
    }
    case ExprKind::If: {
      const auto &I = cast<IfExpr>(E);
      walk(*I.Cond, /*Consuming=*/false);
      auto SavedMoved = Moved;
      walk(*I.Then, Consuming);
      auto ThenMoved = Moved;
      Moved = SavedMoved;
      if (I.Else)
        walk(*I.Else, Consuming);
      // Conservative join: moved in either branch is moved.
      Moved.insert(ThenMoved.begin(), ThenMoved.end());
      return;
    }
    case ExprKind::IfDisconnected:
      error("'if disconnected' is not expressible in an affine "
            "tree-of-objects system",
            E.loc());
      walk(*cast<IfDisconnectedExpr>(E).Then, Consuming);
      walk(*cast<IfDisconnectedExpr>(E).Else, Consuming);
      return;
    case ExprKind::While: {
      const auto &W = cast<WhileExpr>(E);
      walk(*W.Cond, /*Consuming=*/false);
      walk(*W.Body, /*Consuming=*/false);
      return;
    }
    case ExprKind::Seq: {
      const auto &Sq = cast<SeqExpr>(E);
      for (size_t I = 0; I < Sq.Elems.size(); ++I)
        walk(*Sq.Elems[I],
             Consuming && I + 1 == Sq.Elems.size());
      return;
    }
    case ExprKind::New:
      for (const ExprPtr &Arg : cast<NewExpr>(E).Args)
        walk(*Arg, /*Consuming=*/true);
      return;
    case ExprKind::SomeExpr:
      walk(*cast<SomeExpr>(E).Operand, Consuming);
      return;
    case ExprKind::IsNone:
      walk(*cast<IsNoneExpr>(E).Operand, /*Consuming=*/false);
      return;
    case ExprKind::Send:
      walk(*cast<SendExpr>(E).Operand, /*Consuming=*/true);
      return;
    case ExprKind::Call:
      // Without lifetime syntax in this surface language, model calls as
      // borrowing (Rust's &mut): arguments stay usable.
      for (const ExprPtr &Arg : cast<CallExpr>(E).Args)
        walk(*Arg, /*Consuming=*/false);
      return;
    case ExprKind::Binary: {
      const auto &B = cast<BinaryExpr>(E);
      walk(*B.Lhs, false);
      walk(*B.Rhs, false);
      return;
    }
    case ExprKind::Unary:
      walk(*cast<UnaryExpr>(E).Operand, false);
      return;
    default:
      return;
    }
  }

  const Program &P;
  const StructTable &Structs;
  BaselineResult &Result;
  std::set<Symbol> Owned;
  std::set<Symbol> Moved;
};

} // namespace

BaselineResult fearless::affineCheckStruct(const Program &P,
                                           const StructTable &Structs,
                                           const StructDecl &S) {
  (void)Structs;
  BaselineResult Result;
  for (const FieldDecl &F : S.Fields) {
    if (!F.FieldType.isRegionful() || F.Iso)
      continue;
    Result.Accepted = false;
    Result.Errors.push_back(Diagnostic{
        DiagnosticSeverity::Error,
        "affine tree-of-objects: field '" + P.Names.spelling(F.Name) +
            "' of struct '" + P.Names.spelling(S.Name) +
            "' is an aliasing (non-owning) reference, which has no safe "
            "encoding",
        F.Loc});
  }
  return Result;
}

BaselineResult fearless::affineCheckFunction(const Program &P,
                                             const StructTable &Structs,
                                             const FnDecl &F) {
  BaselineResult Result;
  AffineWalker Walker(P, Structs, Result);
  Walker.walkFunction(F);
  return Result;
}

BaselineResult fearless::affineCheckProgram(const Program &P,
                                            const StructTable &Structs) {
  BaselineResult Result;
  auto Absorb = [&](BaselineResult One) {
    if (!One.Accepted)
      Result.Accepted = false;
    for (Diagnostic &D : One.Errors)
      Result.Errors.push_back(std::move(D));
  };
  for (const StructDecl &S : P.Structs)
    Absorb(affineCheckStruct(P, Structs, S));
  for (const FnDecl &F : P.Functions)
    Absorb(affineCheckFunction(P, Structs, F));
  return Result;
}
