//===- baselines/GlobalDomChecker.cpp -------------------------------------===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//

#include "baselines/GlobalDomChecker.h"

using namespace fearless;

namespace {

/// Expression walker enforcing the no-focus global-domination rules.
class GlobalDomWalker {
public:
  GlobalDomWalker(const Program &P, const StructTable &Structs,
                  BaselineResult &Result)
      : P(P), Structs(Structs), Result(Result) {}

  void walkFunction(const FnDecl &F) {
    VarTypes.clear();
    for (const ParamDecl &Param : F.Params)
      VarTypes[Param.Name] = Param.ParamType;
    walk(*F.Body);
  }

private:
  void error(std::string Message, SourceLoc Loc) {
    Result.Accepted = false;
    Result.Errors.push_back(
        Diagnostic{DiagnosticSeverity::Error, std::move(Message), Loc});
  }

  const FieldInfo *fieldOf(const Expr &Base, Symbol Field) {
    Type Ty = typeOf(Base);
    if (!Ty.isStruct())
      return nullptr;
    const StructInfo *Info = Structs.lookup(Ty.StructName);
    return Info ? Info->findField(Field) : nullptr;
  }

  /// Best-effort type reconstruction (enough for field lookups).
  Type typeOf(const Expr &E) {
    switch (E.kind()) {
    case ExprKind::VarRef: {
      auto It = VarTypes.find(cast<VarRefExpr>(E).Name);
      return It == VarTypes.end() ? Type::invalid() : It->second;
    }
    case ExprKind::FieldRef: {
      const auto &F = cast<FieldRefExpr>(E);
      const FieldInfo *Field = fieldOf(*F.Base, F.Field);
      return Field ? Field->FieldType : Type::invalid();
    }
    case ExprKind::New:
      return Type::structTy(cast<NewExpr>(E).StructName);
    case ExprKind::SomeExpr: {
      Type Inner = typeOf(*cast<SomeExpr>(E).Operand);
      return Inner.isValid() && !Inner.isMaybe() ? Inner.asMaybe()
                                                 : Type::invalid();
    }
    case ExprKind::Recv:
      return cast<RecvExpr>(E).ValueType;
    case ExprKind::Call: {
      const FnDecl *Callee = P.findFunction(cast<CallExpr>(E).Callee);
      return Callee ? Callee->ReturnType : Type::invalid();
    }
    default:
      return Type::invalid();
    }
  }

  /// True for values that carry no pre-existing alias: the only shapes a
  /// global-domination system may store into an iso field.
  static bool isFreshProducer(const Expr &E) {
    switch (E.kind()) {
    case ExprKind::New:
    case ExprKind::NoneLit:
    case ExprKind::Recv:
    case ExprKind::Call:
      return true;
    case ExprKind::SomeExpr:
      return isFreshProducer(*cast<SomeExpr>(E).Operand);
    default:
      return false;
    }
  }

  void walk(const Expr &E) {
    switch (E.kind()) {
    case ExprKind::FieldRef: {
      const auto &F = cast<FieldRefExpr>(E);
      const FieldInfo *Field = fieldOf(*F.Base, F.Field);
      if (Field && Field->Iso)
        error("global domination: reading iso field '" +
                  P.Names.spelling(F.Field) +
                  "' would create an alias; a destructive read or swap "
                  "primitive is required",
              E.loc());
      walk(*F.Base);
      return;
    }
    case ExprKind::AssignField: {
      const auto &A = cast<AssignFieldExpr>(E);
      const FieldInfo *Field = fieldOf(*A.Base, A.Field);
      if (Field && Field->Iso && !isFreshProducer(*A.Value))
        error("global domination: iso field '" +
                  P.Names.spelling(A.Field) +
                  "' may only store freshly produced values (the "
                  "right-hand side keeps an alias otherwise)",
              E.loc());
      walk(*A.Base);
      walk(*A.Value);
      return;
    }
    case ExprKind::IfDisconnected:
      error("'if disconnected' is not expressible without the tracked "
            "region graphs of this paper",
            E.loc());
      walk(*cast<IfDisconnectedExpr>(E).Then);
      walk(*cast<IfDisconnectedExpr>(E).Else);
      return;
    case ExprKind::Let: {
      const auto &L = cast<LetExpr>(E);
      walk(*L.Init);
      Type InitTy = typeOf(*L.Init);
      if (InitTy.isValid())
        VarTypes[L.Name] = InitTy;
      walk(*L.Body);
      VarTypes.erase(L.Name);
      return;
    }
    case ExprKind::LetSome: {
      const auto &L = cast<LetSomeExpr>(E);
      walk(*L.Scrutinee);
      Type ScrutTy = typeOf(*L.Scrutinee);
      if (ScrutTy.isValid() && ScrutTy.isMaybe())
        VarTypes[L.Name] = ScrutTy.stripMaybe();
      walk(*L.SomeBody);
      VarTypes.erase(L.Name);
      walk(*L.NoneBody);
      return;
    }
    // Purely structural recursion below.
    case ExprKind::AssignVar:
      walk(*cast<AssignVarExpr>(E).Value);
      return;
    case ExprKind::If: {
      const auto &I = cast<IfExpr>(E);
      walk(*I.Cond);
      walk(*I.Then);
      if (I.Else)
        walk(*I.Else);
      return;
    }
    case ExprKind::While: {
      const auto &W = cast<WhileExpr>(E);
      walk(*W.Cond);
      walk(*W.Body);
      return;
    }
    case ExprKind::Seq:
      for (const ExprPtr &Elem : cast<SeqExpr>(E).Elems)
        walk(*Elem);
      return;
    case ExprKind::New:
      for (const ExprPtr &Arg : cast<NewExpr>(E).Args)
        walk(*Arg);
      return;
    case ExprKind::SomeExpr:
      walk(*cast<SomeExpr>(E).Operand);
      return;
    case ExprKind::IsNone:
      walk(*cast<IsNoneExpr>(E).Operand);
      return;
    case ExprKind::Send:
      walk(*cast<SendExpr>(E).Operand);
      return;
    case ExprKind::Call:
      for (const ExprPtr &Arg : cast<CallExpr>(E).Args)
        walk(*Arg);
      return;
    case ExprKind::Binary: {
      const auto &B = cast<BinaryExpr>(E);
      walk(*B.Lhs);
      walk(*B.Rhs);
      return;
    }
    case ExprKind::Unary:
      walk(*cast<UnaryExpr>(E).Operand);
      return;
    default:
      return;
    }
  }

  const Program &P;
  const StructTable &Structs;
  BaselineResult &Result;
  std::map<Symbol, Type> VarTypes;
};

} // namespace

BaselineResult fearless::globalDomCheckStruct(const Program &P,
                                              const StructTable &Structs,
                                              const StructDecl &S) {
  // Global-domination systems represent arbitrary intra-"box" aliasing;
  // every struct declaration is admissible.
  (void)P;
  (void)Structs;
  (void)S;
  return BaselineResult{};
}

BaselineResult fearless::globalDomCheckFunction(const Program &P,
                                                const StructTable &Structs,
                                                const FnDecl &F) {
  BaselineResult Result;
  GlobalDomWalker Walker(P, Structs, Result);
  Walker.walkFunction(F);
  return Result;
}

BaselineResult fearless::globalDomCheckProgram(const Program &P,
                                               const StructTable &Structs) {
  BaselineResult Result;
  for (const FnDecl &F : P.Functions) {
    BaselineResult One = globalDomCheckFunction(P, Structs, F);
    if (!One.Accepted)
      Result.Accepted = false;
    for (Diagnostic &D : One.Errors)
      Result.Errors.push_back(std::move(D));
  }
  return Result;
}
