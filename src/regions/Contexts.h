//===- regions/Contexts.h - Static typing contexts H and Γ -----*- C++ -*-===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static contexts of the paper's typing judgment
///     H; Γ ⊢ e : r τ ⊣ H'; Γ'      (Fig. 9)
///
/// - Γ (VarCtx) binds variables to a region and a type.
/// - H (HeapCtx) is a set of tracking contexts  r°⟨ x°[f ↦ r, ...] ... ⟩:
///   each region capability r may carry tracked (focused) variables, each
///   with a map from tracked iso fields to their target regions. Regions
///   and tracked variables carry a "pinned" flag (§4.7): pinned entries
///   hold only partial information and forbid new tracking.
///
/// Regions are purely compile-time names. A region's presence in H is the
/// capability to access objects in that region; removing a region from H
/// invalidates every variable bound to it and every tracked field
/// targeting it.
///
//===----------------------------------------------------------------------===//

#ifndef FEARLESS_REGIONS_CONTEXTS_H
#define FEARLESS_REGIONS_CONTEXTS_H

#include "ast/Types.h"
#include "support/Interner.h"

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace fearless {

/// A compile-time region name. Id 0 is invalid; region-less bindings
/// (primitives) use RegionId::none().
struct RegionId {
  uint32_t Id = 0;

  static RegionId none() { return RegionId{}; }
  bool isValid() const { return Id != 0; }
  bool operator==(const RegionId &) const = default;
  auto operator<=>(const RegionId &) const = default;
};

/// Renders a region as "r<id>".
std::string toString(RegionId R);

/// Allocates fresh region names; one per function-check (and one per
/// runtime machine for live-set queries).
class RegionSupply {
public:
  RegionId fresh() { return RegionId{++Last}; }

private:
  uint32_t Last = 0;
};

//===----------------------------------------------------------------------===//
// Γ — variable context
//===----------------------------------------------------------------------===//

/// One Γ entry: the variable's type and (for regionful types) its region.
struct VarBinding {
  RegionId Region; ///< Invalid for primitive-typed variables.
  Type VarType;

  bool operator==(const VarBinding &) const = default;
};

/// Γ: an ordered map from variable symbols to bindings. Ordered so that
/// printing and canonicalization are deterministic.
class VarCtx {
public:
  using MapTy = std::map<Symbol, VarBinding>;

  bool contains(Symbol Var) const { return Vars.count(Var) != 0; }
  const VarBinding *lookup(Symbol Var) const;

  /// Binds or rebinds \p Var.
  void bind(Symbol Var, VarBinding Binding) { Vars[Var] = Binding; }
  void erase(Symbol Var) { Vars.erase(Var); }

  /// Renames every occurrence of region \p From to \p To (Attach).
  void renameRegion(RegionId From, RegionId To);

  const MapTy &entries() const { return Vars; }
  bool operator==(const VarCtx &) const = default;

private:
  MapTy Vars;
};

//===----------------------------------------------------------------------===//
// H — heap context
//===----------------------------------------------------------------------===//

/// Tracking entry for one focused variable: x°[f ↦ r, ...].
struct VarTrack {
  bool Pinned = false;
  /// Tracked iso fields and their target regions. A target region that is
  /// no longer present in H denotes an *invalidated* field (e.g. after the
  /// region split of `if disconnected`): the field must be reassigned
  /// before it can be read or retracted.
  std::map<Symbol, RegionId> Fields;

  bool operator==(const VarTrack &) const = default;
};

/// Tracking context for one region: r°⟨X⟩.
struct RegionTrack {
  bool Pinned = false;
  std::map<Symbol, VarTrack> Vars;

  bool empty() const { return Vars.empty(); }
  bool operator==(const RegionTrack &) const = default;
};

/// H: an ordered map from region capabilities to tracking contexts.
class HeapCtx {
public:
  using MapTy = std::map<RegionId, RegionTrack>;

  bool hasRegion(RegionId R) const { return Regions.count(R) != 0; }
  const RegionTrack *lookup(RegionId R) const;
  RegionTrack *lookup(RegionId R);

  /// Adds a fresh region with an empty, unpinned tracking context.
  /// Precondition: the region is not already present.
  void addRegion(RegionId R);

  /// Removes the region capability entirely (invalidates its objects).
  void removeRegion(RegionId R) { Regions.erase(R); }

  /// Finds the region in which \p Var is tracked, if any. Well-formedness
  /// guarantees at most one.
  std::optional<RegionId> trackingRegionOf(Symbol Var) const;

  /// Returns the tracking entry for \p Var in \p R, or nullptr.
  const VarTrack *trackedVar(RegionId R, Symbol Var) const;
  VarTrack *trackedVar(RegionId R, Symbol Var);

  /// V5 Attach: renames region \p From to \p To, merging From's tracking
  /// context into To's and substituting From in every field target.
  /// Precondition: both regions present; neither pinned; the merged
  /// context must remain well-formed (no variable tracked twice) — the
  /// caller checks this via canAttach.
  void attach(RegionId From, RegionId To);

  /// True when attach(From, To) would preserve well-formedness.
  bool canAttach(RegionId From, RegionId To) const;

  /// Substitutes region \p From with \p To in all field targets (without
  /// touching region keys). Used by attach and by signature instantiation.
  void renameFieldTargets(RegionId From, RegionId To);

  /// True when any tracked field in any region targets \p R.
  bool isFieldTarget(RegionId R) const;

  const MapTy &entries() const { return Regions; }
  bool operator==(const HeapCtx &) const = default;

private:
  MapTy Regions;
};

//===----------------------------------------------------------------------===//
// Combined state and utilities
//===----------------------------------------------------------------------===//

/// The pair (H; Γ) the checker threads through expressions.
struct Contexts {
  HeapCtx Heap;
  VarCtx Vars;

  bool operator==(const Contexts &) const = default;
};

/// Checks the well-formedness conditions of §4.3 (no duplicate bindings):
/// - no variable is tracked in more than one region;
/// - every tracked variable is bound in Γ, to the region tracking it;
/// - every tracked variable's type is a struct type.
/// Returns an explanatory message on failure.
std::optional<std::string> checkWellFormed(const Contexts &Ctx,
                                           const Interner &Names);

/// Renders H in paper notation, e.g. "r1⟨x[next ↦ r2]⟩, r2⟨⟩".
std::string toString(const HeapCtx &Heap, const Interner &Names);

/// Renders Γ, e.g. "x : r1 sll_node, n : int".
std::string toString(const VarCtx &Vars, const Interner &Names);

/// Renders "H ; Γ".
std::string toString(const Contexts &Ctx, const Interner &Names);

} // namespace fearless

#endif // FEARLESS_REGIONS_CONTEXTS_H
