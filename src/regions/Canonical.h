//===- regions/Canonical.h - Canonical region renaming ---------*- C++ -*-===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Region names are arbitrary; two contexts describe the same heap when
/// they are equal up to a bijective renaming of regions. This module
/// computes a canonical renaming (discovery order over Γ, then tracked
/// field targets) so that contexts can be compared with plain equality —
/// used by branch unification (T13/T15) and by function-application
/// matching (T9).
///
//===----------------------------------------------------------------------===//

#ifndef FEARLESS_REGIONS_CANONICAL_H
#define FEARLESS_REGIONS_CANONICAL_H

#include "regions/Contexts.h"

#include <map>

namespace fearless {

/// The canonical id assigned to every *dead* field target (a region absent
/// from H, produced by the region split of `if disconnected`). All dead
/// targets are identified: their identity is meaningless.
inline constexpr uint32_t DeadCanonicalRegion = 0xFFFFFFFFu;

/// Removes regions that are neither bound by any Γ variable nor targeted
/// by any tracked field. Such regions always carry empty tracking contexts
/// (well-formedness ties tracked variables to Γ); dropping a capability is
/// frame-style weakening and always sound. \p ExtraRoot, if valid, is kept
/// (used for the pending result region).
void dropUnreachableRegions(Contexts &Ctx, RegionId ExtraRoot = RegionId());

/// A canonicalized context plus the renaming that produced it.
struct CanonicalForm {
  Contexts Ctx;
  std::map<RegionId, RegionId> Renaming; ///< original -> canonical
};

/// Renames regions to 1..n in deterministic discovery order: first the
/// regions of Γ bindings (in symbol order), then \p ExtraRoot (the result
/// region, if any), then tracked-field targets breadth-first. Dead targets
/// map to DeadCanonicalRegion. Precondition: every region in H is
/// reachable (call dropUnreachableRegions first); unreached regions would
/// make the renaming ambiguous, so this asserts.
CanonicalForm canonicalize(const Contexts &Ctx,
                           RegionId ExtraRoot = RegionId());

/// True when the two contexts are equal up to region renaming (and the two
/// extra roots correspond). This is the T9/T13 context-match test.
bool equivalentUpToRenaming(const Contexts &A, RegionId RootA,
                            const Contexts &B, RegionId RootB);

} // namespace fearless

#endif // FEARLESS_REGIONS_CANONICAL_H
