//===- regions/Contexts.cpp -----------------------------------------------===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//

#include "regions/Contexts.h"

#include <cassert>
#include <sstream>

using namespace fearless;

std::string fearless::toString(RegionId R) {
  if (!R.isValid())
    return "r?";
  return "r" + std::to_string(R.Id);
}

//===----------------------------------------------------------------------===//
// VarCtx
//===----------------------------------------------------------------------===//

const VarBinding *VarCtx::lookup(Symbol Var) const {
  auto It = Vars.find(Var);
  return It == Vars.end() ? nullptr : &It->second;
}

void VarCtx::renameRegion(RegionId From, RegionId To) {
  for (auto &[Var, Binding] : Vars)
    if (Binding.Region == From)
      Binding.Region = To;
}

//===----------------------------------------------------------------------===//
// HeapCtx
//===----------------------------------------------------------------------===//

const RegionTrack *HeapCtx::lookup(RegionId R) const {
  auto It = Regions.find(R);
  return It == Regions.end() ? nullptr : &It->second;
}

RegionTrack *HeapCtx::lookup(RegionId R) {
  auto It = Regions.find(R);
  return It == Regions.end() ? nullptr : &It->second;
}

void HeapCtx::addRegion(RegionId R) {
  assert(R.isValid() && "adding the invalid region");
  [[maybe_unused]] bool Inserted = Regions.emplace(R, RegionTrack{}).second;
  assert(Inserted && "region already present in H");
}

std::optional<RegionId> HeapCtx::trackingRegionOf(Symbol Var) const {
  for (const auto &[Region, Track] : Regions)
    if (Track.Vars.count(Var))
      return Region;
  return std::nullopt;
}

const VarTrack *HeapCtx::trackedVar(RegionId R, Symbol Var) const {
  const RegionTrack *Track = lookup(R);
  if (!Track)
    return nullptr;
  auto It = Track->Vars.find(Var);
  return It == Track->Vars.end() ? nullptr : &It->second;
}

VarTrack *HeapCtx::trackedVar(RegionId R, Symbol Var) {
  RegionTrack *Track = lookup(R);
  if (!Track)
    return nullptr;
  auto It = Track->Vars.find(Var);
  return It == Track->Vars.end() ? nullptr : &It->second;
}

bool HeapCtx::canAttach(RegionId From, RegionId To) const {
  if (From == To)
    return false;
  const RegionTrack *FromTrack = lookup(From);
  const RegionTrack *ToTrack = lookup(To);
  if (!FromTrack || !ToTrack)
    return false;
  if (FromTrack->Pinned || ToTrack->Pinned)
    return false;
  // The merged context may not track the same variable twice.
  for (const auto &[Var, Track] : FromTrack->Vars) {
    (void)Track;
    if (ToTrack->Vars.count(Var))
      return false;
  }
  return true;
}

void HeapCtx::attach(RegionId From, RegionId To) {
  assert(canAttach(From, To) && "illegal attach");
  RegionTrack FromTrack = std::move(Regions[From]);
  Regions.erase(From);
  RegionTrack &ToTrack = Regions[To];
  for (auto &[Var, Track] : FromTrack.Vars)
    ToTrack.Vars.emplace(Var, std::move(Track));
  renameFieldTargets(From, To);
}

void HeapCtx::renameFieldTargets(RegionId From, RegionId To) {
  for (auto &[Region, Track] : Regions) {
    (void)Region;
    for (auto &[Var, VTrack] : Track.Vars) {
      (void)Var;
      for (auto &[Field, Target] : VTrack.Fields)
        if (Target == From)
          Target = To;
    }
  }
}

bool HeapCtx::isFieldTarget(RegionId R) const {
  for (const auto &[Region, Track] : Regions) {
    (void)Region;
    for (const auto &[Var, VTrack] : Track.Vars) {
      (void)Var;
      for (const auto &[Field, Target] : VTrack.Fields) {
        (void)Field;
        if (Target == R)
          return true;
      }
    }
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Well-formedness
//===----------------------------------------------------------------------===//

std::optional<std::string>
fearless::checkWellFormed(const Contexts &Ctx, const Interner &Names) {
  std::map<Symbol, RegionId> Seen;
  for (const auto &[Region, Track] : Ctx.Heap.entries()) {
    for (const auto &[Var, VTrack] : Track.Vars) {
      (void)VTrack;
      if (Seen.count(Var))
        return "variable '" + Names.spelling(Var) +
               "' tracked in two regions (" + toString(Seen[Var]) +
               " and " + toString(Region) + ")";
      Seen[Var] = Region;
      const VarBinding *Binding = Ctx.Vars.lookup(Var);
      if (!Binding)
        return "tracked variable '" + Names.spelling(Var) +
               "' is not bound in Γ";
      if (Binding->Region != Region)
        return "tracked variable '" + Names.spelling(Var) +
               "' is bound to " + toString(Binding->Region) +
               " but tracked in " + toString(Region);
      if (!Binding->VarType.isStruct())
        return "tracked variable '" + Names.spelling(Var) +
               "' does not have a struct type";
    }
  }
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// Printing
//===----------------------------------------------------------------------===//

std::string fearless::toString(const HeapCtx &Heap, const Interner &Names) {
  std::ostringstream OS;
  bool FirstRegion = true;
  for (const auto &[Region, Track] : Heap.entries()) {
    if (!FirstRegion)
      OS << ", ";
    FirstRegion = false;
    OS << toString(Region);
    if (Track.Pinned)
      OS << "^";
    OS << "<";
    bool FirstVar = true;
    for (const auto &[Var, VTrack] : Track.Vars) {
      if (!FirstVar)
        OS << ", ";
      FirstVar = false;
      OS << Names.spelling(Var);
      if (VTrack.Pinned)
        OS << "^";
      OS << "[";
      bool FirstField = true;
      for (const auto &[Field, Target] : VTrack.Fields) {
        if (!FirstField)
          OS << ", ";
        FirstField = false;
        OS << Names.spelling(Field) << " -> " << toString(Target);
      }
      OS << "]";
    }
    OS << ">";
  }
  if (FirstRegion)
    OS << "·";
  return OS.str();
}

std::string fearless::toString(const VarCtx &Vars, const Interner &Names) {
  std::ostringstream OS;
  bool First = true;
  for (const auto &[Var, Binding] : Vars.entries()) {
    if (!First)
      OS << ", ";
    First = false;
    OS << Names.spelling(Var) << " : ";
    if (Binding.Region.isValid())
      OS << toString(Binding.Region) << " ";
    OS << toString(Binding.VarType, Names);
  }
  if (First)
    OS << "·";
  return OS.str();
}

std::string fearless::toString(const Contexts &Ctx, const Interner &Names) {
  return toString(Ctx.Heap, Names) + " ; " + toString(Ctx.Vars, Names);
}
