//===- regions/Canonical.cpp ----------------------------------------------===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//

#include "regions/Canonical.h"

#include <cassert>
#include <deque>

using namespace fearless;

void fearless::dropUnreachableRegions(Contexts &Ctx, RegionId ExtraRoot) {
  // Iterate to a fixpoint: dropping a region never makes another region
  // reachable, so a single pass over a recomputed reachable set suffices.
  std::map<RegionId, bool> Reachable;
  for (const auto &[Region, Track] : Ctx.Heap.entries()) {
    (void)Track;
    Reachable[Region] = false;
  }
  auto MarkIfPresent = [&](RegionId R) {
    auto It = Reachable.find(R);
    if (It != Reachable.end())
      It->second = true;
  };
  for (const auto &[Var, Binding] : Ctx.Vars.entries()) {
    (void)Var;
    if (Binding.Region.isValid())
      MarkIfPresent(Binding.Region);
  }
  if (ExtraRoot.isValid())
    MarkIfPresent(ExtraRoot);
  for (const auto &[Region, Track] : Ctx.Heap.entries()) {
    (void)Region;
    for (const auto &[Var, VTrack] : Track.Vars) {
      (void)Var;
      for (const auto &[Field, Target] : VTrack.Fields) {
        (void)Field;
        MarkIfPresent(Target);
      }
    }
  }
  // Regions only tracked *from* an unreachable region do not exist:
  // unreachable regions have empty tracking contexts (well-formedness ties
  // tracked variables to Γ), so no second pass is needed.
  for (const auto &[Region, IsReachable] : Reachable)
    if (!IsReachable) {
      assert(Ctx.Heap.lookup(Region)->empty() &&
             "unreachable region with non-empty tracking context");
      Ctx.Heap.removeRegion(Region);
    }
}

CanonicalForm fearless::canonicalize(const Contexts &Ctx,
                                     RegionId ExtraRoot) {
  CanonicalForm Result;
  uint32_t Next = 0;
  std::deque<RegionId> Worklist;

  auto Assign = [&](RegionId R) -> RegionId {
    if (!R.isValid())
      return R;
    auto It = Result.Renaming.find(R);
    if (It != Result.Renaming.end())
      return It->second;
    RegionId Canon;
    if (Ctx.Heap.hasRegion(R)) {
      Canon = RegionId{++Next};
      Worklist.push_back(R);
    } else {
      Canon = RegionId{DeadCanonicalRegion};
    }
    Result.Renaming.emplace(R, Canon);
    return Canon;
  };

  // Seed: Γ bindings in symbol order, then the extra root.
  for (const auto &[Var, Binding] : Ctx.Vars.entries()) {
    (void)Var;
    Assign(Binding.Region);
  }
  if (ExtraRoot.isValid())
    Assign(ExtraRoot);

  // Breadth-first over tracked-field targets.
  while (!Worklist.empty()) {
    RegionId R = Worklist.front();
    Worklist.pop_front();
    const RegionTrack *Track = Ctx.Heap.lookup(R);
    assert(Track && "worklist region vanished");
    for (const auto &[Var, VTrack] : Track->Vars) {
      (void)Var;
      for (const auto &[Field, Target] : VTrack.Fields) {
        (void)Field;
        Assign(Target);
      }
    }
  }

  assert(Result.Renaming.size() >=
             Ctx.Heap.entries().size() &&
         "canonicalize requires all regions reachable; run "
         "dropUnreachableRegions first");

  // Build the renamed contexts.
  for (const auto &[Var, Binding] : Ctx.Vars.entries()) {
    VarBinding NewBinding = Binding;
    if (Binding.Region.isValid())
      NewBinding.Region = Result.Renaming.at(Binding.Region);
    Result.Ctx.Vars.bind(Var, NewBinding);
  }
  for (const auto &[Region, Track] : Ctx.Heap.entries()) {
    RegionId Canon = Result.Renaming.at(Region);
    RegionTrack NewTrack;
    NewTrack.Pinned = Track.Pinned;
    for (const auto &[Var, VTrack] : Track.Vars) {
      VarTrack NewVTrack;
      NewVTrack.Pinned = VTrack.Pinned;
      for (const auto &[Field, Target] : VTrack.Fields)
        NewVTrack.Fields[Field] = Result.Renaming.count(Target)
                                      ? Result.Renaming.at(Target)
                                      : RegionId{DeadCanonicalRegion};
      NewTrack.Vars.emplace(Var, std::move(NewVTrack));
    }
    // Canonical ids are unique per original region, so no clash.
    Result.Ctx.Heap.addRegion(Canon);
    *Result.Ctx.Heap.lookup(Canon) = std::move(NewTrack);
  }
  return Result;
}

bool fearless::equivalentUpToRenaming(const Contexts &A, RegionId RootA,
                                      const Contexts &B, RegionId RootB) {
  Contexts CopyA = A;
  Contexts CopyB = B;
  dropUnreachableRegions(CopyA, RootA);
  dropUnreachableRegions(CopyB, RootB);
  CanonicalForm FormA = canonicalize(CopyA, RootA);
  CanonicalForm FormB = canonicalize(CopyB, RootB);
  if (!(FormA.Ctx == FormB.Ctx))
    return false;
  // The roots must correspond under the renaming.
  auto CanonRoot = [](const CanonicalForm &Form, RegionId Root) {
    if (!Root.isValid())
      return RegionId();
    auto It = Form.Renaming.find(Root);
    return It == Form.Renaming.end() ? RegionId{DeadCanonicalRegion}
                                     : It->second;
  };
  return CanonRoot(FormA, RootA) == CanonRoot(FormB, RootB);
}
