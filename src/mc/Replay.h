//===- mc/Replay.h - Schedule files and deterministic replay ----*- C++ -*-===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The replay contract of the model checker (docs/MODELCHECK.md): a
/// schedule is the sequence of thread ids chosen at *branching* decision
/// points (two or more runnable threads). The machine is deterministic
/// given that sequence — pairing is first-match, fault decisions are
/// occurrence-indexed — so a schedule file pins down one execution
/// exactly, the same way a --faults spec pins down one fault pattern,
/// and the two compose.
///
/// File format `fearless-schedule-v1` (text, one token pair per line):
///
///   fearless-schedule-v1
///   # free-form comment lines
///   choices <N>
///   t <thread-id>          (exactly N of these)
///   end
///
/// The declared count plus the `end` trailer make truncation detectable:
/// a cut-off file is a clean diagnostic, never a silently shorter run.
///
//===----------------------------------------------------------------------===//

#ifndef FEARLESS_MC_REPLAY_H
#define FEARLESS_MC_REPLAY_H

#include "runtime/Machine.h"

#include <string>
#include <vector>

namespace fearless {
namespace mc {

/// A recorded interleaving: thread ids chosen at branching decision
/// points, in order.
struct Schedule {
  std::vector<uint32_t> Choices;
  /// Emitted as `#` lines after the header (reason, replay hint, ...).
  std::vector<std::string> Comments;

  /// Renders the fearless-schedule-v1 text form.
  std::string render() const;
  /// Parses the text form; malformed, truncated, or trailing-garbage
  /// input is a diagnostic naming the offending line.
  static Expected<Schedule> parse(std::string_view Text);
  static Expected<Schedule> loadFile(const std::string &Path);
  ExpectedVoid writeFile(const std::string &Path) const;
};

/// Runs \p M under \p S: at every decision point with two or more
/// runnable threads the next choice is consumed (a sole runnable thread
/// steps without consuming one). Divergence — a choice naming a
/// non-runnable thread, the schedule running out, or choices left over
/// at completion — is a clean diagnostic; a failure of the replayed
/// execution itself (deadlock, violation, injected fault) propagates
/// as-is, which is exactly how a counterexample reproduces.
Expected<MachineSummary> runSchedule(Machine &M, const Schedule &S);

/// Reproduces Machine::run(\p Seed)'s interleaving decision-for-decision
/// while recording the branching choices into \p Out, so a failing
/// seed-sweep run can be re-run from a schedule file instead of hoping
/// the seed logic never changes.
Expected<MachineSummary> runRecording(Machine &M, uint64_t Seed,
                                      Schedule &Out);

} // namespace mc
} // namespace fearless

#endif // FEARLESS_MC_REPLAY_H
