//===- mc/DependencyRelation.h - Step commutativity -------------*- C++ -*-===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static dependency relation the DPOR pruning is built on: two
/// steps of different threads commute (swapping adjacent occurrences
/// reaches the same state up to heap-location renaming) unless
///
///   * both are communication steps with the same rendezvous type τ —
///     pairing is type-routed, so τ *is* the channel identity, and two
///     comm steps on the same τ can steal each other's partner; or
///   * both advanced the occurrence counter of the same armed fault
///     point — the injector's nth/every-k triggers are global
///     occurrence-indexed state, so ordering decides which step faults.
///
/// Everything else a step touches is thread-local: the environment,
/// stack, continuation, and — because the checker proves reservations
/// disjoint (§6) — the objects it reads and writes. Heap *allocation*
/// order does differ across interleavings, which is why commutativity
/// is stated up to location renaming; every property the model checker
/// evaluates (deadlock, stuck thread, reservation disjointness, the
/// canonical result fingerprint) is renaming-invariant, so the
/// quotient is sound for them. The disjointness premise itself is
/// discharged by the checks-on invariant validator that runs at every
/// explored step (docs/MODELCHECK.md spells out the argument), and
/// `--mc-dpor=off` removes the pruning entirely for paranoia runs.
///
//===----------------------------------------------------------------------===//

#ifndef FEARLESS_MC_DEPENDENCYRELATION_H
#define FEARLESS_MC_DEPENDENCYRELATION_H

#include "runtime/Machine.h"

namespace fearless {
namespace mc {

/// True when \p A and \p B may not be reordered: same thread (program
/// order), same rendezvous type, or same armed fault point.
bool dependent(const McStepRecord &A, const McStepRecord &B);

} // namespace mc
} // namespace fearless

#endif // FEARLESS_MC_DEPENDENCYRELATION_H
