//===- mc/ScheduleTree.cpp ------------------------------------------------===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//

#include "mc/ScheduleTree.h"

#include <algorithm>

using namespace fearless;
using namespace fearless::mc;

void ScheduleTree::addBacktrack(ChoiceNode &N, uint32_t Thread) {
  if (std::find(N.Backtrack.begin(), N.Backtrack.end(), Thread) !=
      N.Backtrack.end())
    return;
  if (std::find(N.Done.begin(), N.Done.end(), Thread) != N.Done.end())
    return;
  N.Backtrack.push_back(Thread);
}

bool ScheduleTree::isEnabled(const ChoiceNode &N, uint32_t Thread) {
  return std::find(N.Enabled.begin(), N.Enabled.end(), Thread) !=
         N.Enabled.end();
}

bool ScheduleTree::isSleeping(const ChoiceNode &N, uint32_t Thread) {
  for (const McStepRecord &R : N.Sleep)
    if (R.Thread == Thread)
      return true;
  for (const McStepRecord &R : N.DoneRecords)
    if (R.Thread == Thread)
      return true;
  return false;
}

Schedule ScheduleTree::prefixSchedule(size_t UpTo) const {
  Schedule S;
  UpTo = std::min(UpTo, Nodes.size());
  for (size_t I = 0; I < UpTo; ++I)
    if (Nodes[I].Branching)
      S.Choices.push_back(Nodes[I].Chosen);
  return S;
}

bool ScheduleTree::advance(uint64_t &PrunedOut) {
  while (!Nodes.empty()) {
    ChoiceNode &N = Nodes.back();
    // Retire the branch just explored; its first action joins the sleep
    // entries shadowing later siblings.
    N.Done.push_back(N.Chosen);
    N.DoneRecords.push_back(N.Record);
    // Next unexplored, awake backtrack candidate.
    uint32_t Next = UINT32_MAX;
    for (uint32_t Q : N.Backtrack) {
      if (std::find(N.Done.begin(), N.Done.end(), Q) != N.Done.end())
        continue;
      bool Asleep = false;
      for (const McStepRecord &R : N.Sleep)
        if (R.Thread == Q) {
          Asleep = true;
          break;
        }
      if (Asleep) {
        // Covered by an earlier branch of an ancestor: retire it
        // unexplored. (DoneRecords gains no entry — the thread never
        // stepped here — but Done marks it handled.)
        N.Done.push_back(Q);
        ++PrunedOut;
        continue;
      }
      Next = Q;
      break;
    }
    if (Next != UINT32_MAX) {
      N.Chosen = Next;
      N.Record = McStepRecord{};
      return true;
    }
    Nodes.pop_back();
  }
  return false;
}
