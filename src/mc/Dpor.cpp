//===- mc/Dpor.cpp --------------------------------------------------------===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//

#include "mc/Dpor.h"

#include "mc/DependencyRelation.h"
#include "mc/ScheduleTree.h"
#include "runtime/RuntimeFault.h"

#include <algorithm>
#include <cstdio>

using namespace fearless;
using namespace fearless::mc;

namespace {

/// True when \p R can be dependent with a step of another thread at all
/// (comm step or armed-fault-counter touch). Local pure steps commute
/// with everything cross-thread, so race detection skips them — that is
/// what keeps the scan linear in the number of *interacting* steps, not
/// the execution length.
bool interacting(const McStepRecord &R) {
  if (R.FaultPointsTouched)
    return true;
  switch (R.StepKind) {
  case McStepRecord::Kind::BlockSend:
  case McStepRecord::Kind::BlockRecv:
  case McStepRecord::Kind::CommPair:
    return true;
  case McStepRecord::Kind::Local:
  case McStepRecord::Kind::Finish:
    return false;
  }
  return false;
}

std::string hex(uint64_t V) {
  char Buf[19];
  std::snprintf(Buf, sizeof(Buf), "0x%016llx",
                static_cast<unsigned long long>(V));
  return Buf;
}

/// Flanagan–Godefroid race detection for the step just executed at
/// \p Depth: find the latest earlier interacting step of another thread
/// it depends on and request that the dependent thread (or, when it was
/// not enabled there, every enabled thread) be explored from that point.
void raceDetect(ScheduleTree &Tree, const std::vector<size_t> &Interacting,
                size_t Depth, const McStepRecord &Rec) {
  for (auto It = Interacting.rbegin(); It != Interacting.rend(); ++It) {
    size_t J = *It;
    if (J >= Depth)
      continue;
    const McStepRecord &Prev = Tree.Nodes[J].Record;
    if (Prev.Thread == Rec.Thread)
      continue;
    if (!dependent(Prev, Rec))
      continue;
    ChoiceNode &NJ = Tree.Nodes[J];
    if (ScheduleTree::isEnabled(NJ, Rec.Thread))
      ScheduleTree::addBacktrack(NJ, Rec.Thread);
    else
      for (uint32_t E : NJ.Enabled)
        ScheduleTree::addBacktrack(NJ, E);
    return;
  }
}

} // namespace

Expected<McReport> mc::explore(const MachineFactory &Factory,
                               const McOptions &Opts) {
  if (!Factory)
    return fail("mc: no machine factory");
  McReport Rep;
  ScheduleTree Tree;
  std::optional<uint64_t> BaselineFp;

  bool More = true;
  while (More) {
    std::unique_ptr<Machine> M = Factory();
    if (!M)
      return fail("mc: machine factory returned no machine");

    enum class End { Completed, FaultEnded, Clipped, Redundant };
    End EndKind = End::Completed;
    bool CountPrune = false;
    std::optional<McCounterexample> Violation;
    size_t Depth = 0;
    uint32_t Prev = UINT32_MAX;
    int64_t Preempts = 0;
    std::vector<McStepRecord> CurSleep;
    /// Node indices whose records can interact cross-thread — the only
    /// candidates race detection needs to scan.
    std::vector<size_t> Interacting;

    auto InjectedFault = [&M] {
      return M->lastFault() &&
             M->lastFault()->Kind == RuntimeFaultKind::Injected;
    };

    if (ExpectedVoid B = M->beginStepping(); !B) {
      // A thread.start fault fires before any scheduling choice, so it
      // is schedule-independent: an allowed fault outcome, never a
      // counterexample.
      if (InjectedFault())
        EndKind = End::FaultEnded;
      else
        Violation = McCounterexample{Tree.prefixSchedule(0),
                                     B.error().Message,
                                     M->blockedStateDump()};
    } else {
      while (true) {
        Expected<MachineProgress> P = M->checkProgress();
        if (!P) {
          if (InjectedFault()) {
            EndKind = End::FaultEnded;
          } else {
            Violation = McCounterexample{Tree.prefixSchedule(Depth),
                                         P.error().Message,
                                         M->blockedStateDump()};
          }
          break;
        }
        if (*P == MachineProgress::Done)
          break;
        if (*P == MachineProgress::Deadlock) {
          // deadlockMessage() already embeds the blocked-state dump.
          Violation = McCounterexample{Tree.prefixSchedule(Depth),
                                       M->deadlockMessage(), ""};
          break;
        }
        if (Depth >= Opts.MaxDepth) {
          EndKind = End::Clipped;
          break;
        }

        const std::vector<size_t> &Runnable = M->runnableThreads();
        bool Frontier = Depth >= Tree.Nodes.size();
        uint32_t Chosen;
        if (!Frontier) {
          // Forced prefix replay; the machine is deterministic, so the
          // enabled set must reproduce exactly.
          ChoiceNode &N = Tree.Nodes[Depth];
          bool Same = N.Enabled.size() == Runnable.size();
          for (size_t I = 0; Same && I < Runnable.size(); ++I)
            Same = N.Enabled[I] == Runnable[I];
          if (!Same)
            return fail("mc: nondeterministic replay — the enabled set "
                        "changed under an identical choice prefix "
                        "(machine bug)");
          Chosen = N.Chosen;
        } else {
          ChoiceNode N;
          N.Enabled.reserve(Runnable.size());
          for (size_t R : Runnable)
            N.Enabled.push_back(static_cast<uint32_t>(R));
          N.Branching = N.Enabled.size() >= 2;
          N.Sleep = CurSleep;
          std::vector<uint32_t> Cands;
          for (uint32_t T : N.Enabled)
            if (!Opts.UseDpor || !ScheduleTree::isSleeping(N, T))
              Cands.push_back(T);
          bool BoundClipped = false;
          if (Opts.PreemptionBound >= 0 &&
              Preempts >= Opts.PreemptionBound && Prev != UINT32_MAX &&
              ScheduleTree::isEnabled(N, Prev)) {
            // Budget spent: only the non-preemptive continuation may go
            // on. If it is asleep, the remaining continuations all need
            // a preemption — outside the bounded space.
            if (std::find(Cands.begin(), Cands.end(), Prev) !=
                Cands.end())
              Cands.assign(1, Prev);
            else {
              Cands.clear();
              BoundClipped = true;
            }
          }
          if (Cands.empty()) {
            EndKind = End::Redundant;
            CountPrune = !BoundClipped;
            break;
          }
          Chosen = std::find(Cands.begin(), Cands.end(), Prev) !=
                           Cands.end()
                       ? Prev
                       : Cands[0];
          N.Chosen = Chosen;
          if (Opts.UseDpor)
            N.Backtrack.push_back(Chosen);
          else
            N.Backtrack = N.Enabled; // naive DFS: explore everything
          Tree.Nodes.push_back(std::move(N));
        }

        ChoiceNode &Node = Tree.Nodes[Depth];
        if (Prev != UINT32_MAX && Chosen != Prev &&
            ScheduleTree::isEnabled(Node, Prev))
          ++Preempts;

        Expected<McStepRecord> R = M->stepChosen(Chosen);
        ++Rep.StepsExecuted;
        if (!R) {
          if (InjectedFault()) {
            // The fault ends the execution; for backtracking purposes
            // the step still happened. Its effects are the fault
            // counters themselves, so a conservative all-points mask
            // keeps the dependence sound.
            if (Frontier) {
              Node.Record.Thread = Chosen;
              Node.Record.StepKind = McStepRecord::Kind::Local;
              Node.Record.FaultPointsTouched = ~0u;
              if (Opts.UseDpor)
                raceDetect(Tree, Interacting, Depth, Node.Record);
            }
            EndKind = End::FaultEnded;
          } else {
            Violation = McCounterexample{Tree.prefixSchedule(Depth + 1),
                                         R.error().Message,
                                         M->blockedStateDump()};
          }
          break;
        }
        if (Frontier) {
          Node.Record = *R;
          if (Opts.UseDpor && interacting(*R))
            raceDetect(Tree, Interacting, Depth, *R);
        }
        if (interacting(Node.Record))
          Interacting.push_back(Depth);

        // Entry sleep set for the next turn: survivors are entries of
        // other threads whose (deterministic) next step commutes with
        // what just ran. Naive mode carries no sleep sets — that is the
        // whole difference the bench measures.
        if (Opts.UseDpor) {
          std::vector<McStepRecord> NextSleep;
          for (const McStepRecord &Sl : Node.Sleep)
            if (Sl.Thread != Chosen && !dependent(Sl, Node.Record))
              NextSleep.push_back(Sl);
          for (const McStepRecord &Sl : Node.DoneRecords)
            if (Sl.Thread != Chosen && !dependent(Sl, Node.Record))
              NextSleep.push_back(Sl);
          CurSleep = std::move(NextSleep);
        }

        Prev = Chosen;
        ++Depth;
        Rep.MaxDepthSeen = std::max<uint64_t>(Rep.MaxDepthSeen, Depth);
      }
    }

    if (Violation) {
      Rep.Counterexample = std::move(Violation);
      return Rep;
    }

    switch (EndKind) {
    case End::Completed: {
      ++Rep.SchedulesExplored;
      uint64_t Fp = M->resultFingerprint();
      ++Rep.StatesFingerprinted;
      if (Opts.CheckDivergence) {
        if (!BaselineFp) {
          BaselineFp = Fp;
        } else if (*BaselineFp != Fp) {
          Rep.Counterexample = McCounterexample{
              Tree.prefixSchedule(Tree.Nodes.size()),
              "schedule-dependent result: canonical result fingerprint " +
                  hex(Fp) +
                  " differs from the first explored schedule's " +
                  hex(*BaselineFp) + " (confluence violation)",
              ""};
          return Rep;
        }
      }
      if (Opts.Validate) {
        if (auto Problem = Opts.Validate(*M)) {
          Rep.Counterexample = McCounterexample{
              Tree.prefixSchedule(Tree.Nodes.size()),
              "end-state property failed: " + *Problem, ""};
          return Rep;
        }
      }
      break;
    }
    case End::FaultEnded:
      // An injected fault legitimately ends the run — the point of
      // composing mc with --faults is exploring every interleaving of
      // the fault pattern, not flagging the fault itself.
      ++Rep.SchedulesExplored;
      break;
    case End::Clipped:
      ++Rep.SchedulesExplored;
      Rep.Complete = false;
      Rep.Clipped = "depth budget (--mc-depth) clipped at least one "
                    "schedule";
      break;
    case End::Redundant:
      if (CountPrune)
        ++Rep.SchedulesPruned;
      break;
    }

    if (Opts.MaxSchedules && Rep.SchedulesExplored >= Opts.MaxSchedules) {
      if (Tree.advance(Rep.SchedulesPruned)) {
        Rep.Complete = false;
        Rep.Clipped = "schedule budget (--mc-schedules) stopped "
                      "exploration early";
      }
      break;
    }
    More = Tree.advance(Rep.SchedulesPruned);
  }
  return Rep;
}
