//===- mc/Dpor.h - Stateless model checking with DPOR -----------*- C++ -*-===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stateless model checker: a DFS over the machine's schedule space
/// by re-execution — each iteration builds a fresh machine, replays the
/// forced prefix from the schedule tree, extends it at the frontier, and
/// backtracks — pruned by persistent-set DPOR (race detection over
/// mc/DependencyRelation.h adds backtrack points at the latest dependent
/// turn) plus sleep sets (explored first-actions shadow redundant
/// siblings), optionally bounded by preemption count (iterative context
/// bounding), depth, and schedule budget.
///
/// Properties checked over the entire explored space: no deadlock, no
/// stuck thread (reservation violations surface here), no step-validator
/// failure, and — unless fault injection legitimately diversifies
/// outcomes — one canonical result fingerprint across every schedule
/// (the confluence / schedule-independence claim). The first violation
/// stops exploration and yields the branching-choice prefix as a
/// counterexample schedule (mc/Replay.h replays it).
///
//===----------------------------------------------------------------------===//

#ifndef FEARLESS_MC_DPOR_H
#define FEARLESS_MC_DPOR_H

#include "mc/Replay.h"
#include "runtime/Machine.h"

#include <functional>
#include <memory>
#include <optional>
#include <string>

namespace fearless {
namespace mc {

/// Exploration budgets and modes (`fearlessc mc --mc-*`).
struct McOptions {
  /// Max scheduler turns per execution (--mc-depth); exceeding it clips
  /// the branch and marks the report incomplete.
  uint64_t MaxDepth = 100000;
  /// Max schedules to explore (--mc-schedules); 0 = unlimited.
  uint64_t MaxSchedules = 100000;
  /// Iterative context bounding (--mc-preemptions): max preemptive
  /// switches (away from a still-runnable thread) per schedule. < 0 =
  /// unbounded. A bound turns the search into heuristic bug hunting —
  /// coverage holds only for the bounded space.
  int64_t PreemptionBound = -1;
  /// DPOR + sleep sets (--mc-dpor=off disables both: naive DFS over
  /// every interleaving, the bench baseline and the paranoia mode).
  bool UseDpor = true;
  /// Fail when two schedules finish with different canonical result
  /// fingerprints. Off under fault injection, where divergence is
  /// legitimate (a fault may kill one interleaving and not another).
  bool CheckDivergence = true;
  /// Extra end-state property, evaluated on every completed schedule.
  std::function<std::optional<std::string>(const Machine &)> Validate;
};

/// A property violation plus the schedule that reaches it.
struct McCounterexample {
  Schedule Sched;
  std::string Reason;
  /// Per-thread blocked-state dump at the failure point.
  std::string BlockedDump;
};

/// What the exploration covered.
struct McReport {
  uint64_t SchedulesExplored = 0;
  /// Redundant branches retired by sleep sets without re-execution.
  uint64_t SchedulesPruned = 0;
  /// Completed schedules whose end state was fingerprinted.
  uint64_t StatesFingerprinted = 0;
  uint64_t StepsExecuted = 0;
  uint64_t MaxDepthSeen = 0;
  /// False when a depth/schedule budget clipped the space; Clipped says
  /// which. (A preemption bound does not clear this — it redefines the
  /// space instead.)
  bool Complete = true;
  std::string Clipped;
  std::optional<McCounterexample> Counterexample;
};

/// Builds a fresh machine per execution. Must arm a *fresh*
/// FaultInjector each call when faults are in play — the injector's
/// occurrence counters are run-local state.
using MachineFactory = std::function<std::unique_ptr<Machine>()>;

/// Explores the bounded schedule space of the machines \p Factory
/// builds. Returns the coverage report; a counterexample lives inside
/// it, not in the error channel (errors are infrastructure failures
/// such as a null factory or nondeterministic replay).
Expected<McReport> explore(const MachineFactory &Factory,
                           const McOptions &Opts);

} // namespace mc
} // namespace fearless

#endif // FEARLESS_MC_DPOR_H
