//===- mc/Replay.cpp ------------------------------------------------------===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//

#include "mc/Replay.h"

#include <algorithm>
#include <fstream>
#include <sstream>

using namespace fearless;
using namespace fearless::mc;

std::string Schedule::render() const {
  std::string Out = "fearless-schedule-v1\n";
  for (const std::string &C : Comments)
    Out += "# " + C + "\n";
  Out += "choices " + std::to_string(Choices.size()) + "\n";
  for (uint32_t T : Choices)
    Out += "t " + std::to_string(T) + "\n";
  Out += "end\n";
  return Out;
}

Expected<Schedule> Schedule::parse(std::string_view Text) {
  Schedule S;
  std::istringstream In{std::string(Text)};
  std::string Line;
  size_t LineNo = 0;
  auto NextLine = [&]() -> bool {
    while (std::getline(In, Line)) {
      ++LineNo;
      // Trim a trailing carriage return so CRLF files parse too.
      if (!Line.empty() && Line.back() == '\r')
        Line.pop_back();
      if (Line.empty() || Line[0] == '#')
        continue;
      return true;
    }
    return false;
  };
  auto Err = [&](const std::string &What) {
    return fail("schedule file: " + What +
                (LineNo ? " (line " + std::to_string(LineNo) + ")" : ""));
  };

  if (!NextLine() || Line != "fearless-schedule-v1")
    return Err("missing 'fearless-schedule-v1' header");
  if (!NextLine() || Line.rfind("choices ", 0) != 0)
    return Err("expected 'choices <count>' after the header");
  uint64_t Declared = 0;
  {
    std::istringstream LS(Line.substr(8));
    if (!(LS >> Declared) || !LS.eof())
      return Err("malformed choice count '" + Line.substr(8) + "'");
  }
  for (uint64_t I = 0; I < Declared; ++I) {
    if (!NextLine())
      return Err("truncated: declared " + std::to_string(Declared) +
                 " choices, found " + std::to_string(I));
    if (Line.rfind("t ", 0) != 0)
      return Err("expected 't <thread-id>', got '" + Line + "'");
    uint32_t T = 0;
    std::istringstream LS(Line.substr(2));
    if (!(LS >> T) || !LS.eof())
      return Err("malformed thread id '" + Line.substr(2) + "'");
    S.Choices.push_back(T);
  }
  if (!NextLine() || Line != "end")
    return Err("missing 'end' trailer (file truncated?)");
  if (NextLine())
    return Err("trailing content after 'end': '" + Line + "'");
  return S;
}

Expected<Schedule> Schedule::loadFile(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return fail("cannot open schedule file '" + Path + "'");
  std::ostringstream OS;
  OS << In.rdbuf();
  return parse(OS.str());
}

ExpectedVoid Schedule::writeFile(const std::string &Path) const {
  std::ofstream Out(Path, std::ios::trunc);
  if (!Out)
    return fail("cannot open schedule file '" + Path + "' for writing");
  Out << render();
  Out.flush();
  if (!Out)
    return fail("error writing schedule file '" + Path + "'");
  return {};
}

Expected<MachineSummary> mc::runSchedule(Machine &M, const Schedule &S) {
  if (ExpectedVoid B = M.beginStepping(); !B)
    return B.takeFailure();
  size_t Next = 0;
  while (true) {
    Expected<MachineProgress> P = M.checkProgress();
    if (!P)
      return P.takeFailure();
    if (*P == MachineProgress::Done)
      break;
    if (*P == MachineProgress::Deadlock)
      return fail(M.deadlockMessage());
    const std::vector<size_t> &Runnable = M.runnableThreads();
    size_t Pick;
    if (Runnable.size() == 1) {
      Pick = Runnable[0];
    } else {
      if (Next >= S.Choices.size())
        return fail(
            "schedule replay: schedule exhausted after " +
            std::to_string(S.Choices.size()) + " choices with " +
            std::to_string(Runnable.size()) +
            " threads still runnable (schedule does not match this "
            "program/flags)");
      uint32_t T = S.Choices[Next];
      if (std::find(Runnable.begin(), Runnable.end(), size_t(T)) ==
          Runnable.end())
        return fail("schedule replay: choice " + std::to_string(Next) +
                    " picks thread " + std::to_string(T) +
                    ", which is not runnable at that point (schedule "
                    "does not match this program/flags)");
      ++Next;
      Pick = T;
    }
    if (Expected<McStepRecord> R = M.stepChosen(Pick); !R)
      return R.takeFailure();
  }
  if (Next != S.Choices.size())
    return fail("schedule replay: " +
                std::to_string(S.Choices.size() - Next) +
                " unused choices after the run completed (schedule does "
                "not match this program/flags)");
  return M.finishStepping();
}

Expected<MachineSummary> mc::runRecording(Machine &M, uint64_t Seed,
                                          Schedule &Out) {
  if (ExpectedVoid B = M.beginStepping(); !B)
    return B.takeFailure();
  // Decision-for-decision mirror of Machine::run: the xorshift advances
  // (and the round-robin counter increments) on every turn, branching or
  // not, so the recorded schedule replays the seed's exact interleaving.
  uint64_t Rng = Seed ? Seed : 0;
  auto NextRandom = [&Rng]() {
    Rng ^= Rng << 13;
    Rng ^= Rng >> 7;
    Rng ^= Rng << 17;
    return Rng;
  };
  size_t RoundRobin = 0;
  while (true) {
    Expected<MachineProgress> P = M.checkProgress();
    if (!P)
      return P.takeFailure();
    if (*P == MachineProgress::Done)
      break;
    if (*P == MachineProgress::Deadlock)
      return fail(M.deadlockMessage());
    const std::vector<size_t> &Runnable = M.runnableThreads();
    size_t Pick = Seed ? Runnable[NextRandom() % Runnable.size()]
                       : Runnable[RoundRobin++ % Runnable.size()];
    if (Runnable.size() >= 2)
      Out.Choices.push_back(static_cast<uint32_t>(Pick));
    if (Expected<McStepRecord> R = M.stepChosen(Pick); !R)
      return R.takeFailure();
  }
  return M.finishStepping();
}
