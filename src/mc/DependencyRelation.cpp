//===- mc/DependencyRelation.cpp ------------------------------------------===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//

#include "mc/DependencyRelation.h"

using namespace fearless;
using namespace fearless::mc;

static bool isComm(const McStepRecord &R) {
  switch (R.StepKind) {
  case McStepRecord::Kind::BlockSend:
  case McStepRecord::Kind::BlockRecv:
  case McStepRecord::Kind::CommPair:
    return true;
  case McStepRecord::Kind::Local:
  case McStepRecord::Kind::Finish:
    return false;
  }
  return false;
}

bool mc::dependent(const McStepRecord &A, const McStepRecord &B) {
  if (A.Thread == B.Thread)
    return true;
  if (A.FaultPointsTouched & B.FaultPointsTouched)
    return true;
  if (isComm(A) && isComm(B) && A.CommType == B.CommType)
    return true;
  return false;
}
