//===- mc/ScheduleTree.h - DFS stack of choice points -----------*- C++ -*-===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The explorer's explicit DFS stack: one ChoiceNode per scheduler turn
/// of the current execution, carrying the enabled set, the DPOR
/// backtrack set, the already-explored alternatives (with their first
/// actions, which become sleep-set entries for later siblings), and the
/// entry sleep set. Stateless model checking re-executes from the root
/// on every backtrack, replaying Nodes[0..k].Chosen as a forced prefix.
///
//===----------------------------------------------------------------------===//

#ifndef FEARLESS_MC_SCHEDULETREE_H
#define FEARLESS_MC_SCHEDULETREE_H

#include "mc/Replay.h"
#include "runtime/Machine.h"

#include <vector>

namespace fearless {
namespace mc {

/// One scheduler turn of the execution being explored.
struct ChoiceNode {
  /// Thread indices runnable at this point.
  std::vector<uint32_t> Enabled;
  /// Threads to explore from here (persistent set under construction).
  /// Always contains Chosen; DPOR race detection grows it.
  std::vector<uint32_t> Backtrack;
  /// Alternatives already fully explored, with the action each took as
  /// its first step — the sleep-set entries for the siblings after it.
  std::vector<uint32_t> Done;
  std::vector<McStepRecord> DoneRecords;
  /// Sleep set on entry to this node (inherited, filtered by
  /// dependence): threads whose next step is already covered by an
  /// earlier branch.
  std::vector<McStepRecord> Sleep;
  /// The thread currently being explored and what its step did.
  uint32_t Chosen = 0;
  McStepRecord Record;
  /// Enabled.size() >= 2: this turn consumes a schedule-file choice.
  bool Branching = false;
};

/// The DFS stack plus the bookkeeping the explorer shares with reports.
class ScheduleTree {
public:
  std::vector<ChoiceNode> Nodes;

  /// Adds \p Thread to \p N's backtrack set unless already tracked.
  static void addBacktrack(ChoiceNode &N, uint32_t Thread);
  /// True when \p Thread appears in \p N.Enabled.
  static bool isEnabled(const ChoiceNode &N, uint32_t Thread);
  /// True when \p Thread sleeps at \p N (entry sleep set or an explored
  /// sibling — a sleeping thread's next step is deterministic, so
  /// thread identity is the whole key).
  static bool isSleeping(const ChoiceNode &N, uint32_t Thread);

  /// The schedule (branching choices only) for the prefix up to and
  /// including node \p UpTo; pass Nodes.size() for the whole stack.
  Schedule prefixSchedule(size_t UpTo) const;

  /// Retires the deepest node's current choice and advances to the next
  /// unexplored backtrack alternative, popping exhausted nodes. Returns
  /// false when the whole space is exhausted. Backtrack candidates that
  /// are asleep are retired unexplored; \p PrunedOut counts them.
  bool advance(uint64_t &PrunedOut);
};

} // namespace mc
} // namespace fearless

#endif // FEARLESS_MC_SCHEDULETREE_H
