//===- vm/Compiler.h - Typed-AST → bytecode lowering ------------*- C++ -*-===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a checked program to the register bytecode of vm/Bytecode.h:
/// one chunk per function, stack-disciplined register allocation
/// (parameters, then lexical bindings, then expression temporaries),
/// deduplicated constant/type pools, and per-site inline-cache slots for
/// field accesses. The two codegen modes (checked / erased) and the
/// verdict-table folding of `if disconnected` are selected by
/// CompileOptions; see Bytecode.h for the semantics.
///
//===----------------------------------------------------------------------===//

#ifndef FEARLESS_VM_COMPILER_H
#define FEARLESS_VM_COMPILER_H

#include "checker/Checker.h"
#include "support/Expected.h"
#include "vm/Bytecode.h"

#include <string>

namespace fearless {
namespace vm {

/// Compiles every function of \p Checked. Fails only on internal limits
/// (register-file overflow) or malformed input a checker bug let through;
/// checked programs always compile.
Expected<CompiledProgram> compileProgram(const CheckedProgram &Checked,
                                         const CompileOptions &Opts = {});

/// Renders \p P human-readably: per-chunk code with mnemonics and
/// resolved names, constant pools, the `if disconnected` site decisions,
/// and the checks-erased summary. Backs `fearlessc disasm`.
std::string disassemble(const CompiledProgram &P,
                        const CheckedProgram &Checked);

} // namespace vm
} // namespace fearless

#endif // FEARLESS_VM_COMPILER_H
