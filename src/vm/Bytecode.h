//===- vm/Bytecode.h - Register bytecode definitions ------------*- C++ -*-===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compact register bytecode the VM executes (ROADMAP item 1): one
/// Chunk per function with a register file, a deduplicated constant pool,
/// and absolute jump targets. Two codegen modes share the instruction
/// set:
///
///  - **checked**: explicit reservation-check ops (ChkVal, ChkWriteBase,
///    the *Chk field flavors) mirror every dynamic check the tree-walking
///    interpreter performs, making the checked VM a faithful differential
///    baseline for the erased one.
///  - **erased**: the erasability theorem (Theorems 6.1/6.2) says checked
///    programs never fail those checks, so the compiler simply does not
///    emit them — checks are compiled out, not branched over. The PR 3
///    per-site verdict table additionally folds `if disconnected` on
///    must-* sites into straight-line code (DisconnElided + only the
///    proven branch), with an optional debug cross-check.
///
/// Field accesses carry an inline-cache slot: the cache memoizes the
/// (struct, field-symbol) → field-index resolution per site, per thread
/// (VmState owns the IC array, so no synchronization is needed).
///
//===----------------------------------------------------------------------===//

#ifndef FEARLESS_VM_BYTECODE_H
#define FEARLESS_VM_BYTECODE_H

#include "analysis/Verdict.h"
#include "ast/Types.h"
#include "runtime/Value.h"
#include "support/Diagnostics.h"
#include "support/Interner.h"

#include <cstdint>
#include <map>
#include <vector>

namespace fearless {

class Expr;

namespace vm {

/// Opcodes. A/B/C are register (or small-operand) fields; Imm is a
/// constant-pool index, jump target, symbol id, or table index depending
/// on the op.
enum class Op : uint8_t {
  LoadConst, ///< A = Constants[Imm]
  LoadUnit,  ///< A = unit
  LoadNone,  ///< A = none
  LoadBool,  ///< A = bool(B)
  Move,      ///< A = B

  /// Checked mode only: reservation check on the value in A (stuck on
  /// violation). C selects the diagnostic flavor (CheckWhat).
  ChkVal,
  /// Checked mode only: field-write base check on A — must be a location
  /// inside the reservation. Emitted after the base evaluates and before
  /// the value expression, preserving the interpreter's check order.
  ChkWriteBase,

  GetField,    ///< A = B.field(Imm), inline cache slot C
  GetFieldChk, ///< checked flavor: base + result reservation checks
  SetField,    ///< A.field(Imm) = B, inline cache slot C

  NewDefault, ///< A = new S() where S = symbol(Imm)
  NewInit,    ///< A = new S(regs B..): NewTables[Imm] drives the init

  IsNone, ///< A = is_none(B)
  Not,    ///< A = !B  (stuck when B is not bool)
  Neg,    ///< A = -B  (stuck when B is not int)

  Add, ///< A = B + C (int; stuck otherwise) — likewise below
  Sub,
  Mul,
  Div, ///< stuck on division by zero
  Mod,
  Lt,
  Le,
  Gt,
  Ge,
  Eq, ///< A = (B == C), full Value equality
  Ne,

  Jump,        ///< pc = Imm
  JumpIfFalse, ///< pc = Imm when !A; stuck when A is not bool (flavor C)
  JumpIfTrue,  ///< pc = Imm when A; stuck when A is not bool (flavor C)
  JumpIfNone,  ///< pc = Imm when A is none

  Call, ///< A = Chunks[Imm](regs B .. B+C-1)
  Ret,  ///< return A (top frame: the thread finishes with A)

  Send, ///< block sending B (τ = TypePool[Imm], or derived when Imm < 0);
        ///< resumes with unit into A
  Recv, ///< block receiving τ = TypePool[Imm]; resumes with value into A

  /// Dynamic `if disconnected(A, B)`: run the §5.2 traversal, fall
  /// through on disconnected, jump to Imm otherwise. C carries
  /// DisconnFlags.
  Disconn,
  /// Statically folded `if disconnected`: perform the site's checks and
  /// counters (and the optional cross-check traversal), then fall through
  /// into the single compiled branch. C carries DisconnFlags.
  DisconnElided,
};

/// Diagnostic flavor of ChkVal / the conditional-jump bool checks.
enum class CheckWhat : uint16_t {
  VarRead,
  VarWrite,
  FieldWrite,
  IfCond,
  WhileCond,
  LogicalOp,
};

/// Bit flags in the C field of Disconn / DisconnElided.
enum DisconnFlags : uint16_t {
  DisconnCheckReservation = 1 << 0, ///< checked mode: membership checks
  DisconnFoldedTaken = 1 << 1,      ///< elided: the then-branch compiled
  DisconnCrossCheck = 1 << 2,       ///< elided: re-run the traversal
};

/// One instruction. Fixed-width; Imm doubles as constant index, jump
/// target, interned-symbol id, or side-table index.
struct Instr {
  Op Opcode = Op::LoadUnit;
  uint16_t A = 0;
  uint16_t B = 0;
  uint16_t C = 0;
  int32_t Imm = 0;
};

/// Side table of one `new S(args)` site: which field slots the argument
/// registers initialize (full form or required-only form, resolved at
/// compile time), and whether initializers are reservation-checked.
struct NewInitInfo {
  Symbol Struct;
  std::vector<uint32_t> ArgFields;
  bool Checked = false;
};

/// One compiled function.
struct Chunk {
  Symbol FnName;
  /// The function's body expression; executors hand stepThread a
  /// ThreadState whose ControlExpr is this body, and the VM maps it back
  /// to the chunk (CompiledProgram::ByBody).
  const Expr *Body = nullptr;
  uint16_t NumParams = 0;
  /// Register-file size: parameters in r0..NumParams-1, then lets and
  /// expression temporaries under a stack discipline.
  uint16_t NumRegs = 0;
  std::vector<Instr> Code;
  std::vector<Value> Constants;
};

/// How one `if disconnected` site was compiled (for `fearlessc disasm`).
struct SiteDecision {
  Symbol Function;
  SourceLoc Loc;
  DisconnectVerdict Verdict = DisconnectVerdict::Unknown;
  enum class Action { Dynamic, FoldedThen, FoldedElse } Taken =
      Action::Dynamic;
};

/// A whole compiled program.
struct CompiledProgram {
  std::vector<Chunk> Chunks;
  /// Function-body expression → chunk index (VM entry resolution).
  std::map<const Expr *, uint32_t> ByBody;
  /// Function name → chunk index (disasm, tests).
  std::map<Symbol, uint32_t> ByName;
  /// Deduplicated send/recv τ pool (send pairing is by exact type).
  std::vector<Type> TypePool;
  /// Per-new-site initializer tables.
  std::vector<NewInitInfo> NewTables;
  /// Total inline-cache slots across all chunks; VmState sizes its
  /// per-thread cache array from this.
  uint32_t NumIcSlots = 0;
  /// Compile-time count of dynamic checks the codegen omitted: one per
  /// reservation-check site not emitted in erased mode, plus one per
  /// `if disconnected` site folded to a constant branch. Surfaced as the
  /// `checks_erased` runtime metric.
  uint64_t ChecksErased = 0;
  /// True when compiled in checked mode (check ops present).
  bool Checked = false;
  /// Per-site fold decisions, in compile order.
  std::vector<SiteDecision> Sites;
};

/// Codegen configuration.
struct CompileOptions {
  /// Emit the dynamic reservation checks (the differential baseline).
  /// False = erased mode: the erasability theorem makes the checks
  /// redundant for checked programs, so none are emitted.
  bool EmitChecks = false;
  /// Per-site verdicts from the static region-graph analysis; null
  /// disables `if disconnected` folding.
  const DisconnectVerdictTable *Verdicts = nullptr;
  /// Fold must-* sites to a constant branch (mirrors the interpreter's
  /// ElideDisconnect elision, but at compile time).
  bool ElideDisconnect = true;
  /// Folded sites re-run the real traversal and go stuck on disagreement
  /// with the static verdict (debug builds / property tests).
  bool CrossCheckElision = false;
};

/// Returns the mnemonic of \p O, e.g. "get_field.chk".
const char *toString(Op O);

} // namespace vm
} // namespace fearless

#endif // FEARLESS_VM_BYTECODE_H
