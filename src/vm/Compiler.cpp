//===- vm/Compiler.cpp ----------------------------------------------------===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//

#include "vm/Compiler.h"

#include "ast/Ast.h"

#include <algorithm>
#include <cassert>

using namespace fearless;
using namespace fearless::vm;

namespace {

/// Compiles one function body into a chunk. Register discipline:
/// parameters occupy r0..NumParams-1, `let` bindings and expression
/// temporaries are allocated from a bump counter and freed in LIFO order
/// when their scope or expression ends, so NumRegs is the high-water mark.
class FnCompiler {
public:
  FnCompiler(const CheckedProgram &Checked, const CompileOptions &Opts,
             CompiledProgram &Out, Chunk &Ch)
      : Checked(Checked), Opts(Opts), Out(Out), Ch(Ch) {}

  bool compileFn(const FnDecl &Fn) {
    for (const ParamDecl &P : Fn.Params) {
      uint16_t R = allocReg();
      if (Failed)
        return false;
      Scope.emplace_back(P.Name, R);
    }
    uint16_t Dst = allocReg();
    if (!compileExpr(Fn.Body.get(), Dst))
      return false;
    emit(Op::Ret, Dst);
    Ch.NumParams = static_cast<uint16_t>(Fn.Params.size());
    Ch.NumRegs = MaxRegs;
    return true;
  }

  const std::string &error() const { return Err; }

private:
  //===--------------------------------------------------------------------===
  // Emission helpers
  //===--------------------------------------------------------------------===

  size_t emit(Op O, uint16_t A = 0, uint16_t B = 0, uint16_t C = 0,
              int32_t Imm = 0) {
    Ch.Code.push_back(Instr{O, A, B, C, Imm});
    return Ch.Code.size() - 1;
  }

  /// Patches the jump at \p At to target the next emitted instruction.
  void patchToHere(size_t At) {
    Ch.Code[At].Imm = static_cast<int32_t>(Ch.Code.size());
  }

  size_t here() const { return Ch.Code.size(); }

  uint16_t allocReg() {
    if (NextReg == UINT16_MAX) {
      fail("register file overflow (function too large for the VM)");
      return 0;
    }
    uint16_t R = NextReg++;
    MaxRegs = std::max<uint16_t>(MaxRegs, NextReg);
    return R;
  }

  void freeTo(uint16_t Mark) { NextReg = Mark; }

  bool fail(std::string Why) {
    if (!Failed) {
      Err = std::move(Why);
      Failed = true;
    }
    return false;
  }

  int32_t constIndex(Value V) {
    for (size_t I = 0; I < Ch.Constants.size(); ++I)
      if (Ch.Constants[I] == V)
        return static_cast<int32_t>(I);
    Ch.Constants.push_back(V);
    return static_cast<int32_t>(Ch.Constants.size() - 1);
  }

  int32_t typeIndex(const Type &Ty) {
    for (size_t I = 0; I < Out.TypePool.size(); ++I)
      if (Out.TypePool[I] == Ty)
        return static_cast<int32_t>(I);
    Out.TypePool.push_back(Ty);
    return static_cast<int32_t>(Out.TypePool.size() - 1);
  }

  uint16_t icSlot() {
    // Per-site cache slot; VmState sizes its array from the global count.
    return static_cast<uint16_t>(Out.NumIcSlots++);
  }

  const uint16_t *lookupVar(Symbol Name) const {
    for (size_t I = Scope.size(); I-- > 0;)
      if (Scope[I].first == Name)
        return &Scope[I].second;
    return nullptr;
  }

  /// Checked mode: reservation-check the value in \p R.
  void emitChkVal(uint16_t R, CheckWhat What) {
    if (Opts.EmitChecks)
      emit(Op::ChkVal, R, 0, static_cast<uint16_t>(What));
    else
      ++Out.ChecksErased;
  }

  //===--------------------------------------------------------------------===
  // Expression lowering (value lands in Dst)
  //===--------------------------------------------------------------------===

  bool compileExpr(const Expr *E, uint16_t Dst) {
    if (Failed)
      return false;
    switch (E->kind()) {
    case ExprKind::IntLit:
      emit(Op::LoadConst, Dst, 0, 0,
           constIndex(Value::intVal(cast<IntLitExpr>(*E).Value)));
      return true;
    case ExprKind::BoolLit:
      emit(Op::LoadBool, Dst, cast<BoolLitExpr>(*E).Value ? 1 : 0);
      return true;
    case ExprKind::UnitLit:
      emit(Op::LoadUnit, Dst);
      return true;
    case ExprKind::NoneLit:
      emit(Op::LoadNone, Dst);
      return true;
    case ExprKind::VarRef: {
      const auto &Var = cast<VarRefExpr>(*E);
      const uint16_t *R = lookupVar(Var.Name);
      if (!R)
        return fail("unbound variable at compile time (checker bug)");
      // E2: the read value must be in the reservation.
      emitChkVal(*R, CheckWhat::VarRead);
      if (*R != Dst)
        emit(Op::Move, Dst, *R);
      return true;
    }
    case ExprKind::FieldRef: {
      const auto &Ref = cast<FieldRefExpr>(*E);
      uint16_t Mark = NextReg;
      uint16_t Base = allocReg();
      if (!compileExpr(Ref.Base.get(), Base))
        return false;
      // The checked flavor folds both E5a checks (base membership,
      // result membership) into the op; erased omits them entirely.
      if (!Opts.EmitChecks)
        Out.ChecksErased += 2;
      emit(Opts.EmitChecks ? Op::GetFieldChk : Op::GetField, Dst, Base,
           icSlot(), static_cast<int32_t>(Ref.Field.Id));
      freeTo(Mark);
      return true;
    }
    case ExprKind::AssignVar: {
      const auto &A = cast<AssignVarExpr>(*E);
      const uint16_t *R = lookupVar(A.Name);
      if (!R)
        return fail("unbound variable at compile time (checker bug)");
      uint16_t VarReg = *R;
      uint16_t Mark = NextReg;
      uint16_t Tmp = allocReg();
      if (!compileExpr(A.Value.get(), Tmp))
        return false;
      // E8: the assigned value must be in the reservation.
      emitChkVal(Tmp, CheckWhat::VarWrite);
      emit(Op::Move, VarReg, Tmp);
      freeTo(Mark);
      emit(Op::LoadUnit, Dst);
      return true;
    }
    case ExprKind::AssignField: {
      const auto &A = cast<AssignFieldExpr>(*E);
      uint16_t Mark = NextReg;
      uint16_t Base = allocReg();
      if (!compileExpr(A.Base.get(), Base))
        return false;
      // The interpreter checks the base before evaluating the value
      // expression; ChkWriteBase preserves that order.
      if (Opts.EmitChecks)
        emit(Op::ChkWriteBase, Base);
      else
        ++Out.ChecksErased;
      uint16_t Val = allocReg();
      if (!compileExpr(A.Value.get(), Val))
        return false;
      // E7a: the written value must be in the reservation.
      emitChkVal(Val, CheckWhat::FieldWrite);
      emit(Op::SetField, Base, Val, icSlot(),
           static_cast<int32_t>(A.Field.Id));
      freeTo(Mark);
      emit(Op::LoadUnit, Dst);
      return true;
    }
    case ExprKind::Let: {
      const auto &L = cast<LetExpr>(*E);
      uint16_t Mark = NextReg;
      uint16_t R = allocReg();
      if (!compileExpr(L.Init.get(), R)) // binding not yet visible
        return false;
      Scope.emplace_back(L.Name, R);
      bool Ok = compileExpr(L.Body.get(), Dst);
      Scope.pop_back();
      freeTo(Mark);
      return Ok;
    }
    case ExprKind::LetSome: {
      const auto &L = cast<LetSomeExpr>(*E);
      uint16_t Mark = NextReg;
      uint16_t R = allocReg();
      if (!compileExpr(L.Scrutinee.get(), R))
        return false;
      size_t JNone = emit(Op::JumpIfNone, R);
      Scope.emplace_back(L.Name, R);
      bool Ok = compileExpr(L.SomeBody.get(), Dst);
      Scope.pop_back();
      if (!Ok)
        return false;
      size_t JEnd = emit(Op::Jump);
      patchToHere(JNone);
      if (!compileExpr(L.NoneBody.get(), Dst))
        return false;
      patchToHere(JEnd);
      freeTo(Mark);
      return true;
    }
    case ExprKind::If: {
      const auto &I = cast<IfExpr>(*E);
      uint16_t Mark = NextReg;
      uint16_t Cond = allocReg();
      if (!compileExpr(I.Cond.get(), Cond))
        return false;
      size_t JFalse = emit(Op::JumpIfFalse, Cond, 0,
                           static_cast<uint16_t>(CheckWhat::IfCond));
      freeTo(Mark);
      if (!I.Else) {
        // Statement form: the then-result is discarded, both paths
        // produce unit.
        if (!compileExpr(I.Then.get(), Dst))
          return false;
        patchToHere(JFalse);
        emit(Op::LoadUnit, Dst);
        return true;
      }
      if (!compileExpr(I.Then.get(), Dst))
        return false;
      size_t JEnd = emit(Op::Jump);
      patchToHere(JFalse);
      if (!compileExpr(I.Else.get(), Dst))
        return false;
      patchToHere(JEnd);
      return true;
    }
    case ExprKind::IfDisconnected:
      return compileIfDisconnected(cast<IfDisconnectedExpr>(*E), Dst);
    case ExprKind::While: {
      const auto &W = cast<WhileExpr>(*E);
      size_t Head = here();
      uint16_t Mark = NextReg;
      uint16_t Cond = allocReg();
      if (!compileExpr(W.Cond.get(), Cond))
        return false;
      size_t JExit = emit(Op::JumpIfFalse, Cond, 0,
                          static_cast<uint16_t>(CheckWhat::WhileCond));
      freeTo(Mark);
      if (!compileExpr(W.Body.get(), Dst)) // body result discarded
        return false;
      emit(Op::Jump, 0, 0, 0, static_cast<int32_t>(Head));
      patchToHere(JExit);
      emit(Op::LoadUnit, Dst);
      return true;
    }
    case ExprKind::Seq: {
      const auto &Sq = cast<SeqExpr>(*E);
      assert(!Sq.Elems.empty() && "parser guarantees nonempty blocks");
      for (const ExprPtr &Elem : Sq.Elems) // intermediates overwritten
        if (!compileExpr(Elem.get(), Dst))
          return false;
      return true;
    }
    case ExprKind::New: {
      const auto &N = cast<NewExpr>(*E);
      if (N.Args.empty()) {
        emit(Op::NewDefault, Dst, 0, 0,
             static_cast<int32_t>(N.StructName.Id));
        return true;
      }
      const StructInfo *SI = Checked.Structs.lookup(N.StructName);
      if (!SI)
        return fail("new of unknown struct at compile time (checker bug)");
      // Full form (one argument per field) or required form — the arity
      // is static, so the field table is resolved here, not per
      // execution.
      NewInitInfo Info;
      Info.Struct = N.StructName;
      Info.Checked = Opts.EmitChecks;
      if (N.Args.size() == SI->Fields.size()) {
        for (uint32_t FI = 0; FI < SI->Fields.size(); ++FI)
          Info.ArgFields.push_back(FI);
      } else {
        Info.ArgFields = SI->requiredFieldIndices();
      }
      if (Info.ArgFields.size() != N.Args.size())
        return fail("new-arity mismatch at compile time (checker bug)");
      if (!Opts.EmitChecks)
        Out.ChecksErased += N.Args.size();
      uint16_t Mark = NextReg;
      uint16_t ArgBase = NextReg;
      for (const ExprPtr &Arg : N.Args) {
        uint16_t R = allocReg();
        uint16_t Tail = NextReg;
        if (!compileExpr(Arg.get(), R))
          return false;
        freeTo(Tail); // keep earlier args live, drop this arg's temps
      }
      Out.NewTables.push_back(std::move(Info));
      emit(Op::NewInit, Dst, ArgBase, 0,
           static_cast<int32_t>(Out.NewTables.size() - 1));
      freeTo(Mark);
      return true;
    }
    case ExprKind::SomeExpr:
      // some(v) is represented by v itself.
      return compileExpr(cast<SomeExpr>(*E).Operand.get(), Dst);
    case ExprKind::IsNone: {
      if (!compileExpr(cast<IsNoneExpr>(*E).Operand.get(), Dst))
        return false;
      emit(Op::IsNone, Dst, Dst);
      return true;
    }
    case ExprKind::Send: {
      const auto &S = cast<SendExpr>(*E);
      uint16_t Mark = NextReg;
      uint16_t Val = allocReg();
      if (!compileExpr(S.Operand.get(), Val))
        return false;
      // τ statically recorded by the checker; -1 = derive from the
      // runtime value (unchecked programs).
      int32_t TyIdx = -1;
      auto It = Checked.SendTypes.find(E);
      if (It != Checked.SendTypes.end() && It->second.isValid())
        TyIdx = typeIndex(It->second);
      emit(Op::Send, Dst, Val, 0, TyIdx);
      freeTo(Mark);
      return true;
    }
    case ExprKind::Recv: {
      const auto &R = cast<RecvExpr>(*E);
      emit(Op::Recv, Dst, 0, 0, typeIndex(R.ValueType));
      return true;
    }
    case ExprKind::Call: {
      const auto &C = cast<CallExpr>(*E);
      auto It = Out.ByName.find(C.Callee);
      if (It == Out.ByName.end())
        return fail("call to unknown function at compile time "
                    "(checker bug)");
      uint16_t Mark = NextReg;
      uint16_t ArgBase = NextReg;
      for (const ExprPtr &Arg : C.Args) {
        uint16_t R = allocReg();
        uint16_t Tail = NextReg;
        if (!compileExpr(Arg.get(), R))
          return false;
        freeTo(Tail);
      }
      emit(Op::Call, Dst, ArgBase,
           static_cast<uint16_t>(C.Args.size()),
           static_cast<int32_t>(It->second));
      freeTo(Mark);
      return true;
    }
    case ExprKind::Binary: {
      const auto &B = cast<BinaryExpr>(*E);
      if (B.Op == BinaryOp::And || B.Op == BinaryOp::Or) {
        // Short-circuit: lhs lands in Dst and is the result when the
        // jump fires; the rhs is not bool-checked (interp semantics).
        if (!compileExpr(B.Lhs.get(), Dst))
          return false;
        size_t J = emit(B.Op == BinaryOp::And ? Op::JumpIfFalse
                                              : Op::JumpIfTrue,
                        Dst, 0,
                        static_cast<uint16_t>(CheckWhat::LogicalOp));
        if (!compileExpr(B.Rhs.get(), Dst))
          return false;
        patchToHere(J);
        return true;
      }
      uint16_t Mark = NextReg;
      uint16_t L = allocReg();
      if (!compileExpr(B.Lhs.get(), L))
        return false;
      uint16_t R = allocReg();
      if (!compileExpr(B.Rhs.get(), R))
        return false;
      Op O;
      switch (B.Op) {
      case BinaryOp::Add: O = Op::Add; break;
      case BinaryOp::Sub: O = Op::Sub; break;
      case BinaryOp::Mul: O = Op::Mul; break;
      case BinaryOp::Div: O = Op::Div; break;
      case BinaryOp::Mod: O = Op::Mod; break;
      case BinaryOp::Lt:  O = Op::Lt;  break;
      case BinaryOp::Le:  O = Op::Le;  break;
      case BinaryOp::Gt:  O = Op::Gt;  break;
      case BinaryOp::Ge:  O = Op::Ge;  break;
      case BinaryOp::Eq:  O = Op::Eq;  break;
      case BinaryOp::Ne:  O = Op::Ne;  break;
      default:
        return fail("internal: unhandled binary operator");
      }
      emit(O, Dst, L, R);
      freeTo(Mark);
      return true;
    }
    case ExprKind::Unary: {
      const auto &U = cast<UnaryExpr>(*E);
      if (!compileExpr(U.Operand.get(), Dst))
        return false;
      emit(U.Op == UnaryOp::Not ? Op::Not : Op::Neg, Dst, Dst);
      return true;
    }
    }
    return fail("internal: unhandled expression kind");
  }

  bool compileIfDisconnected(const IfDisconnectedExpr &E, uint16_t Dst) {
    const uint16_t *A = lookupVar(E.VarA);
    const uint16_t *B = lookupVar(E.VarB);
    if (!A || !B)
      return fail("unbound 'if disconnected' argument at compile time "
                  "(checker bug)");
    uint16_t Flags = Opts.EmitChecks ? DisconnCheckReservation : 0;
    if (!Opts.EmitChecks)
      Out.ChecksErased += 2; // the two argument membership checks

    SiteDecision Site;
    Site.Function = Ch.FnName;
    Site.Loc = E.loc();
    if (Opts.ElideDisconnect && Opts.Verdicts) {
      auto It = Opts.Verdicts->find(&E);
      if (It != Opts.Verdicts->end())
        Site.Verdict = It->second;
    }
    if (Site.Verdict != DisconnectVerdict::Unknown) {
      // Constant branch: the traversal is gone and the dead branch is
      // not even emitted. DisconnElided keeps the site's counters,
      // fault point, and optional cross-check alive.
      bool Taken = Site.Verdict == DisconnectVerdict::MustDisconnected;
      if (Taken)
        Flags |= DisconnFoldedTaken;
      if (Opts.CrossCheckElision)
        Flags |= DisconnCrossCheck;
      emit(Op::DisconnElided, *A, *B, Flags);
      ++Out.ChecksErased; // the folded traversal
      Site.Taken = Taken ? SiteDecision::Action::FoldedThen
                         : SiteDecision::Action::FoldedElse;
      Out.Sites.push_back(Site);
      return compileExpr(Taken ? E.Then.get() : E.Else.get(), Dst);
    }

    Out.Sites.push_back(Site);
    size_t D = emit(Op::Disconn, *A, *B, Flags);
    if (!compileExpr(E.Then.get(), Dst))
      return false;
    size_t JEnd = emit(Op::Jump);
    patchToHere(D);
    if (!compileExpr(E.Else.get(), Dst))
      return false;
    patchToHere(JEnd);
    return true;
  }

  const CheckedProgram &Checked;
  const CompileOptions &Opts;
  CompiledProgram &Out;
  Chunk &Ch;

  uint16_t NextReg = 0;
  uint16_t MaxRegs = 0;
  std::vector<std::pair<Symbol, uint16_t>> Scope;
  bool Failed = false;
  std::string Err;
};

} // namespace

Expected<CompiledProgram> vm::compileProgram(const CheckedProgram &Checked,
                                             const CompileOptions &Opts) {
  CompiledProgram Out;
  Out.Checked = Opts.EmitChecks;

  // Pre-pass: assign chunk indices so calls resolve to direct indices
  // regardless of declaration order.
  for (const FnDecl &Fn : Checked.Prog->Functions) {
    uint32_t Idx = static_cast<uint32_t>(Out.Chunks.size());
    Out.Chunks.emplace_back();
    Out.Chunks.back().FnName = Fn.Name;
    Out.Chunks.back().Body = Fn.Body.get();
    Out.ByName[Fn.Name] = Idx;
    Out.ByBody[Fn.Body.get()] = Idx;
  }

  for (size_t I = 0; I < Checked.Prog->Functions.size(); ++I) {
    const FnDecl &Fn = Checked.Prog->Functions[I];
    FnCompiler FC(Checked, Opts, Out, Out.Chunks[I]);
    if (!FC.compileFn(Fn))
      return fail("vm compile of '" +
                  Checked.Prog->Names.spelling(Fn.Name) +
                  "' failed: " + FC.error());
  }
  return Out;
}

const char *vm::toString(Op O) {
  switch (O) {
  case Op::LoadConst:     return "load_const";
  case Op::LoadUnit:      return "load_unit";
  case Op::LoadNone:      return "load_none";
  case Op::LoadBool:      return "load_bool";
  case Op::Move:          return "move";
  case Op::ChkVal:        return "chk_val";
  case Op::ChkWriteBase:  return "chk_write_base";
  case Op::GetField:      return "get_field";
  case Op::GetFieldChk:   return "get_field.chk";
  case Op::SetField:      return "set_field";
  case Op::NewDefault:    return "new_default";
  case Op::NewInit:       return "new_init";
  case Op::IsNone:        return "is_none";
  case Op::Not:           return "not";
  case Op::Neg:           return "neg";
  case Op::Add:           return "add";
  case Op::Sub:           return "sub";
  case Op::Mul:           return "mul";
  case Op::Div:           return "div";
  case Op::Mod:           return "mod";
  case Op::Lt:            return "lt";
  case Op::Le:            return "le";
  case Op::Gt:            return "gt";
  case Op::Ge:            return "ge";
  case Op::Eq:            return "eq";
  case Op::Ne:            return "ne";
  case Op::Jump:          return "jump";
  case Op::JumpIfFalse:   return "jump_if_false";
  case Op::JumpIfTrue:    return "jump_if_true";
  case Op::JumpIfNone:    return "jump_if_none";
  case Op::Call:          return "call";
  case Op::Ret:           return "ret";
  case Op::Send:          return "send";
  case Op::Recv:          return "recv";
  case Op::Disconn:       return "disconn";
  case Op::DisconnElided: return "disconn.elided";
  }
  return "?";
}

std::string vm::disassemble(const CompiledProgram &P,
                            const CheckedProgram &Checked) {
  const Interner &Names = Checked.Prog->Names;
  std::string Out;
  auto Line = [&Out](const std::string &S) {
    Out += S;
    Out += '\n';
  };

  Line(std::string("; mode: ") + (P.Checked ? "checked" : "erased") +
       ", checks erased: " + std::to_string(P.ChecksErased) +
       ", ic slots: " + std::to_string(P.NumIcSlots));
  for (const Chunk &Ch : P.Chunks) {
    Line("");
    Line("chunk " + Names.spelling(Ch.FnName) + " (params " +
         std::to_string(Ch.NumParams) + ", regs " +
         std::to_string(Ch.NumRegs) + ")");
    if (!Ch.Constants.empty()) {
      std::string Pool = "  constants:";
      for (size_t I = 0; I < Ch.Constants.size(); ++I)
        Pool += " [" + std::to_string(I) + "]=" +
                fearless::toString(Ch.Constants[I]);
      Line(Pool);
    }
    for (size_t I = 0; I < Ch.Code.size(); ++I) {
      const Instr &In = Ch.Code[I];
      std::string L = "  " + std::to_string(I) + ": " +
                      std::string(toString(In.Opcode));
      switch (In.Opcode) {
      case Op::LoadConst:
        L += " r" + std::to_string(In.A) + ", const[" +
             std::to_string(In.Imm) + "]";
        break;
      case Op::LoadBool:
        L += " r" + std::to_string(In.A) + ", " +
             (In.B ? "true" : "false");
        break;
      case Op::GetField:
      case Op::GetFieldChk:
        L += " r" + std::to_string(In.A) + ", r" + std::to_string(In.B) +
             "." +
             Names.spelling(Symbol{static_cast<uint32_t>(In.Imm)}) +
             " ; ic" + std::to_string(In.C);
        break;
      case Op::SetField:
        L += " r" + std::to_string(In.A) + "." +
             Names.spelling(Symbol{static_cast<uint32_t>(In.Imm)}) +
             ", r" + std::to_string(In.B) + " ; ic" +
             std::to_string(In.C);
        break;
      case Op::NewDefault:
        L += " r" + std::to_string(In.A) + ", " +
             Names.spelling(Symbol{static_cast<uint32_t>(In.Imm)});
        break;
      case Op::NewInit: {
        const NewInitInfo &Info = P.NewTables[In.Imm];
        L += " r" + std::to_string(In.A) + ", " +
             Names.spelling(Info.Struct) + "(r" + std::to_string(In.B) +
             "..+" + std::to_string(Info.ArgFields.size()) + ")";
        break;
      }
      case Op::Jump:
        L += " -> " + std::to_string(In.Imm);
        break;
      case Op::JumpIfFalse:
      case Op::JumpIfTrue:
      case Op::JumpIfNone:
        L += " r" + std::to_string(In.A) + " -> " +
             std::to_string(In.Imm);
        break;
      case Op::Call:
        L += " r" + std::to_string(In.A) + ", " +
             Names.spelling(P.Chunks[In.Imm].FnName) + "(r" +
             std::to_string(In.B) + "..+" + std::to_string(In.C) + ")";
        break;
      case Op::Send:
        L += " r" + std::to_string(In.A) + ", r" + std::to_string(In.B) +
             (In.Imm >= 0
                  ? " : " + fearless::toString(P.TypePool[In.Imm], Names)
                  : std::string(" : <derived>"));
        break;
      case Op::Recv:
        L += " r" + std::to_string(In.A) + " : " +
             fearless::toString(P.TypePool[In.Imm], Names);
        break;
      case Op::Disconn:
        L += " r" + std::to_string(In.A) + ", r" + std::to_string(In.B) +
             " else -> " + std::to_string(In.Imm);
        break;
      case Op::DisconnElided:
        L += " r" + std::to_string(In.A) + ", r" + std::to_string(In.B) +
             ((In.C & DisconnFoldedTaken) ? " ; folded: then"
                                          : " ; folded: else");
        break;
      case Op::Move:
      case Op::IsNone:
      case Op::Not:
      case Op::Neg:
        L += " r" + std::to_string(In.A) + ", r" + std::to_string(In.B);
        break;
      case Op::Add:
      case Op::Sub:
      case Op::Mul:
      case Op::Div:
      case Op::Mod:
      case Op::Lt:
      case Op::Le:
      case Op::Gt:
      case Op::Ge:
      case Op::Eq:
      case Op::Ne:
        L += " r" + std::to_string(In.A) + ", r" + std::to_string(In.B) +
             ", r" + std::to_string(In.C);
        break;
      default:
        L += " r" + std::to_string(In.A);
        break;
      }
      Line(L);
    }
  }

  Line("");
  if (P.Sites.empty()) {
    Line("; no 'if disconnected' sites");
  } else {
    Line("; 'if disconnected' sites (verdict -> codegen):");
    for (const SiteDecision &S : P.Sites) {
      const char *Action =
          S.Taken == SiteDecision::Action::Dynamic      ? "dynamic check"
          : S.Taken == SiteDecision::Action::FoldedThen ? "folded to then"
                                                        : "folded to else";
      Line(";   " + Names.spelling(S.Function) + " @ " +
           fearless::toString(S.Loc) + ": " +
           std::string(fearless::toString(S.Verdict)) + " -> " + Action);
    }
  }
  return Out;
}
