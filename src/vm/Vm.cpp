//===- vm/Vm.cpp - Bytecode dispatch loop ---------------------------------===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
//
// The dispatch loop mirrors the tree-walking interpreter's observable
// semantics exactly — same stuck messages, same counter increments, same
// fault points, same blocking protocol — so the two engines are
// bit-identical differential oracles for each other. Deviations are
// bugs; tests/vm_test.cpp enforces this.
//
//===----------------------------------------------------------------------===//

#include "vm/Vm.h"

#include "runtime/Disconnected.h"

#include <cassert>

using namespace fearless;
using namespace fearless::vm;

// Computed-goto dispatch on GNU-compatible compilers (one indirect
// branch per op, so the predictor sees per-op history); portable switch
// fallback elsewhere. The op bodies are written once and shared by both
// via the VM_CASE / VM_NEXT macros.
#if defined(__GNUC__) || defined(__clang__)
#define FEARLESS_VM_COMPUTED_GOTO 1
#endif

namespace {

/// Instructions retired per stepThread call. The batch is the VM's step
/// granularity: executors keep their per-step concerns (deterministic
/// interleaving, preemption quanta, watchdog cancellation, sched.step
/// fault injection) at a bounded latency while the hot loop stays inside
/// the dispatcher.
constexpr int BatchSize = 128;

[[noreturn]] void injectFaultVm(FaultPoint P, ThreadId Id) {
  RuntimeFault F;
  F.Kind = RuntimeFaultKind::Injected;
  F.Detail = static_cast<uint32_t>(P);
  F.Thread = Id;
  raiseInjectedFault(F);
}

const char *checkWhatStr(CheckWhat W) {
  switch (W) {
  case CheckWhat::VarRead:
    return "variable read";
  case CheckWhat::VarWrite:
    return "variable write";
  case CheckWhat::FieldWrite:
    return "field write";
  default:
    return "access";
  }
}

const char *boolCheckMsg(CheckWhat W) {
  switch (W) {
  case CheckWhat::IfCond:
    return "if condition is not a bool";
  case CheckWhat::WhileCond:
    return "while condition is not a bool";
  case CheckWhat::LogicalOp:
    return "logical operator on a non-bool";
  default:
    return "conditional on a non-bool";
  }
}

} // namespace

StepOutcome vm::stepThreadVm(ThreadState &T, const InterpServices &S) {
  const CompiledProgram &P = *S.VmCode;
  ++S.Stats->Steps;

  if (!T.Vm) {
    // First step: map the executor-provided entry body to its chunk and
    // build the register file, seeding parameters from the Env slots the
    // executor populated (the same startThread path the interpreter
    // uses).
    auto EntryIt = P.ByBody.find(T.ControlExpr);
    if (EntryIt == P.ByBody.end()) {
      T.Error = "no compiled chunk for thread entry (vm compiler bug)";
      T.Status = ThreadStatus::Failed;
      return StepOutcome::Stuck;
    }
    T.Vm = std::make_shared<VmState>();
    VmState &Init = *T.Vm;
    const Chunk &Entry = P.Chunks[EntryIt->second];
    Init.Frames.push_back(VmFrame{EntryIt->second, 0, 0, UINT32_MAX});
    Init.Regs.resize(Entry.NumRegs);
    size_t EnvBase = T.FrameBases.back();
    assert(T.Env.size() - EnvBase >= Entry.NumParams && "arity checked");
    for (uint16_t I = 0; I < Entry.NumParams; ++I)
      Init.Regs[I] = T.Env[EnvBase + I].second;
    Init.Ic.resize(P.NumIcSlots);
  }

  VmState &V = *T.Vm;
  if (T.HasValue) {
    // Resuming from a paired send/recv: the executor parked us at a
    // Send/Recv op and hands the value back through ControlValue.
    if (V.ResumeReg != UINT32_MAX)
      V.Regs[V.ResumeReg] = T.ControlValue;
    V.ResumeReg = UINT32_MAX;
    T.HasValue = false;
  }

  const Chunk *Ch = &P.Chunks[V.Frames.back().Chunk];
  const Instr *Code = Ch->Code.data();
  const Value *Consts = Ch->Constants.data();
  uint32_t Pc = V.Frames.back().Pc;
  uint32_t Base = V.Frames.back().Base;
  Value *Regs = V.Regs.data();
  MachineStats &Stats = *S.Stats;
  Heap &H = *S.TheHeap;

  uint64_t Executed = 0;
  int Budget = BatchSize;
  const uint64_t BatchStart = T.Trace ? T.Trace->now() : 0;
  const Instr *In = nullptr;

  auto Flush = [&] {
    Stats.VmInstructions += Executed;
    if (T.Trace && Executed)
      T.Trace->record("vm.dispatch", "vm", 'X', BatchStart,
                      T.Trace->now() - BatchStart, "instructions",
                      Executed);
  };
  auto Fail = [&](std::string Why) {
    Flush();
    T.Error = std::move(Why);
    T.Status = ThreadStatus::Failed;
    return StepOutcome::Stuck;
  };
  // The dynamic reservation check of the E-rules (same gating and
  // counter as the interpreter's inReservation).
  auto InReservation = [&](Loc L) {
    if (!S.CheckReservations)
      return true;
    ++Stats.ReservationChecks;
    return T.Reservation.count(L.Index) != 0;
  };
  auto ValueViolation = [](const Value &Val, const char *What) {
    return std::string("reservation violation: ") + What + " yielded " +
           fearless::toString(Val) +
           " outside this thread's reservation";
  };
  // IC-accelerated (struct, field-symbol) → field-index resolution;
  // UINT32_MAX = no such field.
  auto ResolveField = [&](Loc BaseLoc, uint32_t IcSlot,
                          Symbol Field) -> uint32_t {
    const Object &O = H.get(BaseLoc);
    VmState::IcEntry &E = V.Ic[IcSlot];
    if (E.Struct == O.Struct) {
      ++Stats.IcHits;
      return E.Field;
    }
    const FieldInfo *F = O.Struct->findField(Field);
    if (!F)
      return UINT32_MAX;
    ++Stats.IcMisses;
    E.Struct = O.Struct;
    E.Field = F->Index;
    return F->Index;
  };
  auto Allocate = [&](Symbol StructName) {
    if (S.Faults && S.Faults->shouldFire(FaultPoint::HeapAlloc))
      injectFaultVm(FaultPoint::HeapAlloc, T.Id);
    Loc L = H.allocate(StructName);
    if (L.isValid()) {
      ++Stats.Allocations;
      T.Reservation.insert(L.Index);
    }
    return L;
  };
  auto HeapExhausted = [&] {
    RuntimeFault F;
    F.Kind = RuntimeFaultKind::HeapExhausted;
    F.Thread = T.Id;
    T.Fault = F;
    return Fail("heap exhausted: allocation failed at " +
                std::to_string(H.size()) + " live objects (capacity " +
                std::to_string(H.capacity()) + ")");
  };

#ifdef FEARLESS_VM_COMPUTED_GOTO

#define VM_CASE(Name) L_##Name:
#define VM_NEXT()                                                        \
  do {                                                                   \
    if (--Budget < 0)                                                    \
      goto BatchEnd;                                                     \
    In = Code + Pc++;                                                    \
    ++Executed;                                                          \
    goto *JumpTable[static_cast<size_t>(In->Opcode)];                    \
  } while (0)

  // Must match the Op enum order exactly.
  static const void *const JumpTable[] = {
      &&L_LoadConst, &&L_LoadUnit,    &&L_LoadNone,    &&L_LoadBool,
      &&L_Move,      &&L_ChkVal,      &&L_ChkWriteBase, &&L_GetField,
      &&L_GetFieldChk, &&L_SetField,  &&L_NewDefault,  &&L_NewInit,
      &&L_IsNone,    &&L_Not,         &&L_Neg,         &&L_Add,
      &&L_Sub,       &&L_Mul,         &&L_Div,         &&L_Mod,
      &&L_Lt,        &&L_Le,          &&L_Gt,          &&L_Ge,
      &&L_Eq,        &&L_Ne,          &&L_Jump,        &&L_JumpIfFalse,
      &&L_JumpIfTrue, &&L_JumpIfNone, &&L_Call,        &&L_Ret,
      &&L_Send,      &&L_Recv,        &&L_Disconn,     &&L_DisconnElided,
  };
  VM_NEXT();

#else

#define VM_CASE(Name) case Op::Name:
#define VM_NEXT() break

  for (;;) {
    if (--Budget < 0)
      goto BatchEnd;
    In = Code + Pc++;
    ++Executed;
    switch (In->Opcode) {

#endif

  VM_CASE(LoadConst) {
    Regs[Base + In->A] = Consts[In->Imm];
  }
  VM_NEXT();

  VM_CASE(LoadUnit) {
    Regs[Base + In->A] = Value::unitVal();
  }
  VM_NEXT();

  VM_CASE(LoadNone) {
    Regs[Base + In->A] = Value::noneVal();
  }
  VM_NEXT();

  VM_CASE(LoadBool) {
    Regs[Base + In->A] = Value::boolVal(In->B != 0);
  }
  VM_NEXT();

  VM_CASE(Move) {
    Regs[Base + In->A] = Regs[Base + In->B];
  }
  VM_NEXT();

  VM_CASE(ChkVal) {
    const Value &Val = Regs[Base + In->A];
    if (Val.isLoc() && !InReservation(Val.asLoc()))
      return Fail(ValueViolation(
          Val, checkWhatStr(static_cast<CheckWhat>(In->C))));
  }
  VM_NEXT();

  VM_CASE(ChkWriteBase) {
    const Value &BV = Regs[Base + In->A];
    if (!BV.isLoc())
      return Fail("field write on a non-object value");
    if (!InReservation(BV.asLoc()))
      return Fail("reservation violation: field write on " +
                  fearless::toString(BV));
  }
  VM_NEXT();

  VM_CASE(GetField) {
    const Value &BV = Regs[Base + In->B];
    if (!BV.isLoc())
      return Fail("field read on a non-object value");
    uint32_t FI = ResolveField(BV.asLoc(), In->C,
                               Symbol{static_cast<uint32_t>(In->Imm)});
    if (FI == UINT32_MAX)
      return Fail("no such field at runtime (checker bug)");
    Regs[Base + In->A] = H.getField(BV.asLoc(), FI);
  }
  VM_NEXT();

  VM_CASE(GetFieldChk) {
    const Value &BV = Regs[Base + In->B];
    if (!BV.isLoc())
      return Fail("field read on a non-object value");
    if (!InReservation(BV.asLoc()))
      return Fail("reservation violation: field read on " +
                  fearless::toString(BV));
    uint32_t FI = ResolveField(BV.asLoc(), In->C,
                               Symbol{static_cast<uint32_t>(In->Imm)});
    if (FI == UINT32_MAX)
      return Fail("no such field at runtime (checker bug)");
    Value Out = H.getField(BV.asLoc(), FI);
    // E5a: the read result must be within the reservation.
    if (Out.isLoc() && !InReservation(Out.asLoc()))
      return Fail(ValueViolation(Out, "field read"));
    Regs[Base + In->A] = Out;
  }
  VM_NEXT();

  VM_CASE(SetField) {
    const Value &BV = Regs[Base + In->A];
    if (!BV.isLoc())
      return Fail("field write on a non-object value");
    uint32_t FI = ResolveField(BV.asLoc(), In->C,
                               Symbol{static_cast<uint32_t>(In->Imm)});
    if (FI == UINT32_MAX)
      return Fail("no such field at runtime (checker bug)");
    H.setField(BV.asLoc(), FI, Regs[Base + In->B]);
  }
  VM_NEXT();

  VM_CASE(NewDefault) {
    Loc L = Allocate(Symbol{static_cast<uint32_t>(In->Imm)});
    if (!L.isValid())
      return HeapExhausted();
    Regs[Base + In->A] = Value::locVal(L);
  }
  VM_NEXT();

  VM_CASE(NewInit) {
    const NewInitInfo &Info = P.NewTables[In->Imm];
    Loc L = Allocate(Info.Struct);
    if (!L.isValid())
      return HeapExhausted();
    for (size_t I = 0; I < Info.ArgFields.size(); ++I) {
      const Value &Arg = Regs[Base + In->B + I];
      if (Info.Checked && Arg.isLoc() && !InReservation(Arg.asLoc()))
        return Fail("reservation violation: 'new' initializer outside "
                    "the reservation");
      H.setField(L, Info.ArgFields[I], Arg);
    }
    Regs[Base + In->A] = Value::locVal(L);
  }
  VM_NEXT();

  VM_CASE(IsNone) {
    Regs[Base + In->A] = Value::boolVal(Regs[Base + In->B].isNone());
  }
  VM_NEXT();

  VM_CASE(Not) {
    const Value &Val = Regs[Base + In->B];
    if (Val.kind() != Value::Kind::Bool)
      return Fail("'!' on a non-bool");
    Regs[Base + In->A] = Value::boolVal(!Val.asBool());
  }
  VM_NEXT();

  VM_CASE(Neg) {
    const Value &Val = Regs[Base + In->B];
    if (Val.kind() != Value::Kind::Int)
      return Fail("unary '-' on a non-int");
    Regs[Base + In->A] = Value::intVal(-Val.asInt());
  }
  VM_NEXT();

#define VM_ARITH(Name, Expr)                                             \
  VM_CASE(Name) {                                                        \
    const Value &L = Regs[Base + In->B];                                 \
    const Value &R = Regs[Base + In->C];                                 \
    if (L.kind() != Value::Kind::Int || R.kind() != Value::Kind::Int)    \
      return Fail("arithmetic on non-ints");                             \
    int64_t A = L.asInt(), B = R.asInt();                                \
    Regs[Base + In->A] = Value::intVal(Expr);                            \
  }                                                                      \
  VM_NEXT()

  VM_ARITH(Add, A + B);
  VM_ARITH(Sub, A - B);
  VM_ARITH(Mul, A * B);
#undef VM_ARITH

#define VM_DIVMOD(Name, Expr)                                            \
  VM_CASE(Name) {                                                        \
    const Value &L = Regs[Base + In->B];                                 \
    const Value &R = Regs[Base + In->C];                                 \
    if (L.kind() != Value::Kind::Int || R.kind() != Value::Kind::Int)    \
      return Fail("arithmetic on non-ints");                             \
    if (R.asInt() == 0)                                                  \
      return Fail("division by zero");                                   \
    int64_t A = L.asInt(), B = R.asInt();                                \
    Regs[Base + In->A] = Value::intVal(Expr);                            \
  }                                                                      \
  VM_NEXT()

  VM_DIVMOD(Div, A / B);
  VM_DIVMOD(Mod, A % B);
#undef VM_DIVMOD

#define VM_COMPARE(Name, OpTok)                                          \
  VM_CASE(Name) {                                                        \
    const Value &L = Regs[Base + In->B];                                 \
    const Value &R = Regs[Base + In->C];                                 \
    if (L.kind() != Value::Kind::Int || R.kind() != Value::Kind::Int)    \
      return Fail("comparison on non-ints");                             \
    Regs[Base + In->A] = Value::boolVal(L.asInt() OpTok R.asInt());      \
  }                                                                      \
  VM_NEXT()

  VM_COMPARE(Lt, <);
  VM_COMPARE(Le, <=);
  VM_COMPARE(Gt, >);
  VM_COMPARE(Ge, >=);
#undef VM_COMPARE

  VM_CASE(Eq) {
    Regs[Base + In->A] =
        Value::boolVal(Regs[Base + In->B] == Regs[Base + In->C]);
  }
  VM_NEXT();

  VM_CASE(Ne) {
    Regs[Base + In->A] =
        Value::boolVal(!(Regs[Base + In->B] == Regs[Base + In->C]));
  }
  VM_NEXT();

  VM_CASE(Jump) {
    Pc = static_cast<uint32_t>(In->Imm);
  }
  VM_NEXT();

  VM_CASE(JumpIfFalse) {
    const Value &Val = Regs[Base + In->A];
    if (Val.kind() != Value::Kind::Bool)
      return Fail(boolCheckMsg(static_cast<CheckWhat>(In->C)));
    if (!Val.asBool())
      Pc = static_cast<uint32_t>(In->Imm);
  }
  VM_NEXT();

  VM_CASE(JumpIfTrue) {
    const Value &Val = Regs[Base + In->A];
    if (Val.kind() != Value::Kind::Bool)
      return Fail(boolCheckMsg(static_cast<CheckWhat>(In->C)));
    if (Val.asBool())
      Pc = static_cast<uint32_t>(In->Imm);
  }
  VM_NEXT();

  VM_CASE(JumpIfNone) {
    if (Regs[Base + In->A].isNone())
      Pc = static_cast<uint32_t>(In->Imm);
  }
  VM_NEXT();

  VM_CASE(Call) {
    const Chunk &Callee = P.Chunks[In->Imm];
    uint32_t NewBase = Base + Ch->NumRegs;
    size_t Need = static_cast<size_t>(NewBase) + Callee.NumRegs;
    V.Frames.back().Pc = Pc;
    V.Frames.push_back(VmFrame{static_cast<uint32_t>(In->Imm), 0, NewBase,
                               Base + In->A});
    if (V.Regs.size() < Need)
      V.Regs.resize(Need); // amortized; capacity is kept across calls
    Regs = V.Regs.data();
    for (uint16_t I = 0; I < In->C; ++I)
      Regs[NewBase + I] = Regs[Base + In->B + I];
    Ch = &Callee;
    Code = Ch->Code.data();
    Consts = Ch->Constants.data();
    Pc = 0;
    Base = NewBase;
  }
  VM_NEXT();

  VM_CASE(Ret) {
    Value RetVal = Regs[Base + In->A];
    uint32_t RetReg = V.Frames.back().RetReg;
    V.Frames.pop_back();
    if (V.Frames.empty()) {
      T.Result = RetVal;
      T.Status = ThreadStatus::Finished;
      Flush();
      return StepOutcome::Finished;
    }
    const VmFrame &F = V.Frames.back();
    Regs[RetReg] = RetVal;
    Ch = &P.Chunks[F.Chunk];
    Code = Ch->Code.data();
    Consts = Ch->Constants.data();
    Pc = F.Pc;
    Base = F.Base;
  }
  VM_NEXT();

  VM_CASE(Send) {
    if (S.Faults && S.Faults->shouldFire(FaultPoint::ChanSend))
      injectFaultVm(FaultPoint::ChanSend, T.Id);
    const Value &Val = Regs[Base + In->B];
    // τ statically recorded by the checker, or derived from the runtime
    // value for unchecked programs (same fallback as the interpreter).
    Type Ty;
    if (In->Imm >= 0) {
      Ty = P.TypePool[In->Imm];
    } else {
      switch (Val.kind()) {
      case Value::Kind::Unit:
        Ty = Type::unitTy();
        break;
      case Value::Kind::Int:
        Ty = Type::intTy();
        break;
      case Value::Kind::Bool:
        Ty = Type::boolTy();
        break;
      case Value::Kind::Location:
        Ty = Type::structTy(H.get(Val.asLoc()).Struct->Name);
        break;
      case Value::Kind::None:
        return Fail("cannot derive the type of a sent 'none' without "
                    "checker information");
      }
    }
    // Block; the machine pairs senders and receivers (EC3) and resumes
    // us with unit into register A.
    T.PendingSend = Val;
    T.CommType = Ty;
    T.Status = ThreadStatus::BlockedSend;
    if (T.Trace) {
      T.TraceBlockStartNs = T.Trace->now();
      T.Trace->instant("send.block", "channel");
    }
    V.ResumeReg = Base + In->A;
    V.Frames.back().Pc = Pc;
    Flush();
    return StepOutcome::BlockedSend;
  }

  VM_CASE(Recv) {
    if (S.Faults && S.Faults->shouldFire(FaultPoint::ChanRecv))
      injectFaultVm(FaultPoint::ChanRecv, T.Id);
    T.CommType = P.TypePool[In->Imm];
    T.Status = ThreadStatus::BlockedRecv;
    if (T.Trace) {
      T.TraceBlockStartNs = T.Trace->now();
      T.Trace->instant("recv.block", "channel");
    }
    V.ResumeReg = Base + In->A;
    V.Frames.back().Pc = Pc;
    Flush();
    return StepOutcome::BlockedRecv;
  }

  VM_CASE(Disconn) {
    const Value &VA = Regs[Base + In->A];
    const Value &VB = Regs[Base + In->B];
    if (!VA.isLoc() || !VB.isLoc())
      return Fail("'if disconnected' arguments must be objects");
    Loc A = VA.asLoc(), B = VB.asLoc();
    if ((In->C & DisconnCheckReservation) &&
        (!InReservation(A) || !InReservation(B)))
      return Fail("reservation violation: 'if disconnected' argument "
                  "outside the reservation");
    if (S.Faults && S.Faults->shouldFire(FaultPoint::DisconnectTraverse))
      injectFaultVm(FaultPoint::DisconnectTraverse, T.Id);
    ++Stats.DisconnectChecks;
    uint64_t TraceStart = T.Trace ? T.Trace->now() : 0;
    DisconnectOutcome Out =
        S.UseNaiveDisconnect
            ? checkDisconnectedNaive(H, A, B, T.Scratch)
            : checkDisconnectedRefCount(H, A, B, T.Scratch);
    if (T.Trace)
      T.Trace->record("disconnect.traverse", "disconnect", 'X',
                      TraceStart, T.Trace->now() - TraceStart,
                      "objects_visited", Out.ObjectsVisited);
    Stats.DisconnectObjectsVisited += Out.ObjectsVisited;
    Stats.DisconnectEdgesTraversed += Out.EdgesTraversed;
    if (Out.Disconnected)
      ++Stats.DisconnectTaken;
    else
      Pc = static_cast<uint32_t>(In->Imm); // else branch
  }
  VM_NEXT();

  VM_CASE(DisconnElided) {
    // The analysis proved this site's outcome at compile time; only the
    // proven branch was emitted. This op keeps the site's checks,
    // counters, fault point, and optional cross-check identical to the
    // interpreter's elision path, then falls through.
    const Value &VA = Regs[Base + In->A];
    const Value &VB = Regs[Base + In->B];
    if (!VA.isLoc() || !VB.isLoc())
      return Fail("'if disconnected' arguments must be objects");
    Loc A = VA.asLoc(), B = VB.asLoc();
    if ((In->C & DisconnCheckReservation) &&
        (!InReservation(A) || !InReservation(B)))
      return Fail("reservation violation: 'if disconnected' argument "
                  "outside the reservation");
    if (S.Faults && S.Faults->shouldFire(FaultPoint::DisconnectTraverse))
      injectFaultVm(FaultPoint::DisconnectTraverse, T.Id);
    ++Stats.DisconnectChecks;
    bool Taken = (In->C & DisconnFoldedTaken) != 0;
    if (In->C & DisconnCrossCheck) {
      DisconnectOutcome Real =
          S.UseNaiveDisconnect
              ? checkDisconnectedNaive(H, A, B, T.Scratch)
              : checkDisconnectedRefCount(H, A, B, T.Scratch);
      if (Real.Disconnected != Taken)
        return Fail("static 'if disconnected' verdict contradicts the "
                    "runtime traversal (analysis bug)");
    }
    ++Stats.DisconnectElided;
    if (Taken)
      ++Stats.DisconnectTaken;
    if (T.Trace)
      T.Trace->instant("disconnect.elided", "disconnect");
  }
  VM_NEXT();

#ifndef FEARLESS_VM_COMPUTED_GOTO
    }
  }
#endif

#undef VM_CASE
#undef VM_NEXT

BatchEnd:
  V.Frames.back().Pc = Pc;
  Flush();
  return StepOutcome::Progress;
}
