//===- vm/Vm.h - Register bytecode execution engine -------------*- C++ -*-===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bytecode execution engine behind `fearlessc run --engine=vm`: a
/// computed-goto dispatch loop (switch fallback on non-GNU compilers)
/// over the chunks of vm/Bytecode.h. It plugs into the executors through
/// the exact stepThread contract the tree-walking interpreter satisfies —
/// sends/recvs block the ThreadState and resume through
/// ControlValue/HasValue, faults unwind as RuntimeFaultError to the
/// step-boundary trap in stepThread, and all counters land in the same
/// per-thread MachineStats — so the Machine, ParallelExec, and the task
/// scheduler drive it unchanged.
///
/// One stepThread "step" executes a bounded batch of instructions, so
/// executor-level concerns (deterministic interleaving, preemption
/// quanta, watchdog cancellation, sched.step fault injection) keep their
/// granularity while the hot loop stays inside the dispatch loop.
///
//===----------------------------------------------------------------------===//

#ifndef FEARLESS_VM_VM_H
#define FEARLESS_VM_VM_H

#include "runtime/Interp.h"
#include "sema/StructTable.h"
#include "vm/Bytecode.h"

#include <vector>

namespace fearless {
namespace vm {

/// One activation record. Base indexes the shared register stack;
/// RetReg is the *absolute* caller register receiving the return value.
struct VmFrame {
  uint32_t Chunk = 0;
  uint32_t Pc = 0;
  uint32_t Base = 0;
  uint32_t RetReg = UINT32_MAX;
};

/// Per-thread VM execution state, created lazily on the first step and
/// owned by the ThreadState. The register stack and frame vector only
/// grow (capacity is reused), so steady-state dispatch — including
/// call/return and park/resume cycles — performs no heap allocations.
struct VmState {
  /// The register stack: every frame's window [Base, Base+NumRegs).
  std::vector<Value> Regs;
  std::vector<VmFrame> Frames;

  /// Per-site field-access inline cache: memoizes the last
  /// (struct → field index) resolution. Thread-local by construction,
  /// so no synchronization (and no sharing-induced misses) under the
  /// parallel executors.
  struct IcEntry {
    const StructInfo *Struct = nullptr;
    uint32_t Field = 0;
  };
  std::vector<IcEntry> Ic;

  /// Absolute register awaiting the resume value of a blocked send/recv;
  /// UINT32_MAX when not blocked.
  uint32_t ResumeReg = UINT32_MAX;
};

/// Executes one bounded batch of instructions for \p T. Same contract as
/// stepThread (which dispatches here when Services.VmCode is set);
/// RuntimeFaultError propagates to stepThread's trap handler.
StepOutcome stepThreadVm(ThreadState &T, const InterpServices &Services);

} // namespace vm
} // namespace fearless

#endif // FEARLESS_VM_VM_H
