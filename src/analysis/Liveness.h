//===- analysis/Liveness.h - Liveness of vars and iso fields ----*- C++ -*-===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The unification oracle of §5.1: "by employing liveness analysis of
/// variables and isolated fields as a unification oracle, our checker can
/// verify our largest examples in a handful of seconds."
///
/// This module computes, per expression, the set of variables read or
/// written and the set of (variable, field) pairs whose tracking a
/// continuation may need: direct accesses `x.f`, assignments `x.f = e`,
/// and calls whose signature demands `x.f` tracked via an `after:` path.
/// The checker threads a Continuation (liveness after the current point)
/// downward and consults it when deciding which linear resources to
/// preserve at branch merges.
///
//===----------------------------------------------------------------------===//

#ifndef FEARLESS_ANALYSIS_LIVENESS_H
#define FEARLESS_ANALYSIS_LIVENESS_H

#include "ast/Ast.h"

#include <map>
#include <set>
#include <utility>

namespace fearless {

/// Variables and field slots an expression (sub)tree may use.
struct UseSet {
  std::set<Symbol> Vars;
  std::set<std::pair<Symbol, Symbol>> FieldUses; ///< (var, field)

  void merge(const UseSet &Other);
  bool usesVar(Symbol Var) const { return Vars.count(Var) != 0; }
  bool usesField(Symbol Var, Symbol Field) const {
    return FieldUses.count({Var, Field}) != 0;
  }
};

/// Liveness information at a program point: what the continuation still
/// needs. ResultLive distinguishes value position from statement position.
struct Continuation {
  UseSet Live;
  bool ResultLive = true;
  /// Variables whose region capability must survive merges even when the
  /// variable itself is dead: function parameters (the signature's output
  /// context mentions them) — the "wanted" set of the unification oracle.
  std::set<Symbol> AlwaysValid;

  /// True when the continuation (or the function contract) still cares
  /// about \p Var's capability.
  bool wants(Symbol Var) const {
    return Live.usesVar(Var) || AlwaysValid.count(Var) != 0;
  }

  /// Continuation extended with the uses of expressions evaluated later
  /// in the same sequence.
  Continuation withUses(const UseSet &Uses) const {
    Continuation Out = *this;
    Out.Live.merge(Uses);
    return Out;
  }
};

/// Memoizing computer of UseSets. Calls contribute the callee's `after`
/// field paths applied to the actual argument variables.
class UseCache {
public:
  explicit UseCache(const Program &P) : P(P) {}

  /// The uses of \p E (computed once, cached by node identity).
  const UseSet &uses(const Expr &E);

private:
  UseSet compute(const Expr &E);

  const Program &P;
  std::map<const Expr *, UseSet> Cache;
};

} // namespace fearless

#endif // FEARLESS_ANALYSIS_LIVENESS_H
