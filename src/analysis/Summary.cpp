//===- analysis/Summary.cpp - Interprocedural region-effect summaries -----===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//

#include "analysis/Summary.h"

#include "analysis/CallGraph.h"
#include "ast/Ast.h"

#include <sstream>

using namespace fearless;

namespace {

/// The regionful parameters of \p Sig in declaration order, with the
/// consumed bit derived from the output image exactly as the call-site
/// havoc derives it (an input region with no valid output image was
/// released by the callee).
void signatureSlots(const FnSignature &Sig, std::vector<Symbol> &Params,
                    std::vector<bool> &Consumed) {
  for (const ParamDecl &P : Sig.Decl->Params) {
    if (!P.ParamType.isRegionful())
      continue;
    Params.push_back(P.Name);
    bool IsConsumed = true;
    auto RIt = Sig.ParamRegion.find(P.Name);
    if (RIt != Sig.ParamRegion.end()) {
      auto OIt = Sig.OutputImage.find(RIt->second);
      IsConsumed = OIt == Sig.OutputImage.end() || !OIt->second.isValid();
    }
    Consumed.push_back(IsConsumed);
  }
}

/// The optimistic starting point for an SCC member: every non-consumed
/// parameter preserved, nothing connected beyond the diagonal. Degraded
/// monotonically by the fixpoint below.
FnSummary optimisticSummary(const FnSignature &Sig) {
  FnSummary S;
  S.Valid = true;
  signatureSlots(Sig, S.Params, S.Consumed);
  S.Preserved.resize(S.Params.size());
  for (size_t I = 0; I < S.Params.size(); ++I)
    S.Preserved[I] = !S.Consumed[I];
  S.ResultRegionful = Sig.ReturnType.isRegionful();
  size_t N = S.Params.size() + 1;
  S.MayConnect.assign(N, std::vector<bool>(N, false));
  for (size_t I = 0; I < N; ++I)
    S.MayConnect[I][I] = true;
  return S;
}

/// Folds one effects run into \p S, returning true when anything
/// degraded. Degradation is one-directional (Preserved only clears,
/// MayConnect only sets), which makes the SCC iteration monotone over a
/// finite lattice regardless of any non-monotonicity in the underlying
/// abstract interpretation.
bool degradeWith(FnSummary &S, const FnEffects &E) {
  bool Changed = false;
  if (E.Params.size() != S.Params.size()) {
    // Shape mismatch (should not happen for checked programs): give up
    // on precision but stay sound.
    if (S.Valid) {
      S.Valid = false;
      Changed = true;
    }
    return Changed;
  }
  for (size_t I = 0; I < S.Params.size(); ++I)
    if (E.Touched[I] && S.Preserved[I]) {
      S.Preserved[I] = false;
      Changed = true;
    }
  size_t N = S.Params.size() + 1;
  for (size_t I = 0; I < N; ++I)
    for (size_t J = 0; J < N; ++J)
      if (I < E.SlotOverlap.size() && J < E.SlotOverlap[I].size() &&
          E.SlotOverlap[I][J] && !S.MayConnect[I][J]) {
        S.MayConnect[I][J] = true;
        Changed = true;
      }
  return Changed;
}

} // namespace

SummaryTable fearless::computeSummaries(const CheckedProgram &CP,
                                        SummaryStats *Stats) {
  SummaryTable Table;
  SummaryStats Local;
  CallGraph CG = CallGraph::build(*CP.Prog);
  Local.Functions = CP.Prog->Functions.size();
  Local.Sccs = CG.sccs().size();

  for (size_t SccI = 0; SccI < CG.sccs().size(); ++SccI) {
    const std::vector<Symbol> &Scc = CG.sccs()[SccI];
    bool Recursive = CG.isRecursiveScc(SccI);
    if (Recursive)
      ++Local.RecursiveSccs;

    // Optimistic initialization for every member, so intra-SCC call
    // sites resolve against the current approximation instead of the
    // havoc bottom.
    bool Usable = true;
    for (Symbol Fn : Scc) {
      auto SigIt = CP.Signatures.find(Fn);
      auto FnIt = CP.Functions.find(Fn);
      if (SigIt == CP.Signatures.end() || FnIt == CP.Functions.end()) {
        Usable = false;
        continue;
      }
      Table[Fn] = optimisticSummary(SigIt->second);
    }
    if (!Usable) {
      for (Symbol Fn : Scc)
        Table[Fn].Valid = false;
      Local.Invalidated += Scc.size();
      continue;
    }

    // One pass suffices for non-recursive components; recursive ones
    // iterate to a fixpoint. The lattice height is bounded by the
    // member's parameter and slot-pair counts, so the cap below is a
    // backstop, not a tuning knob.
    size_t Cap = Recursive ? 4 * Scc.size() + 4 : 1;
    bool Stable = false;
    for (size_t Iter = 0; Iter < Cap && !Stable; ++Iter) {
      Stable = true;
      for (Symbol Fn : Scc) {
        FnEffects E = analyzeFunctionEffects(CP, CP.Functions.at(Fn),
                                             Table);
        ++Local.EffectRuns;
        if (degradeWith(Table[Fn], E))
          Stable = false;
      }
      if (!Recursive)
        Stable = true;
    }
    if (Recursive && !Stable) {
      // Did not converge under the cap: drop to the sound bottom.
      for (Symbol Fn : Scc)
        Table[Fn].Valid = false;
      Local.Invalidated += Scc.size();
    }
  }

  for (const auto &[Fn, S] : Table) {
    (void)Fn;
    if (!S.Valid)
      continue;
    Local.TotalParams += S.Params.size();
    for (size_t I = 0; I < S.Params.size(); ++I)
      if (S.Preserved[I])
        ++Local.PreservedParams;
  }
  if (Stats)
    *Stats = Local;
  return Table;
}

std::string fearless::renderSummary(Symbol Fn, const FnSummary &S,
                                    const Interner &Names) {
  std::ostringstream OS;
  OS << "summary `" << Names.spelling(Fn) << "(";
  for (size_t I = 0; I < S.Params.size(); ++I)
    OS << (I ? ", " : "") << Names.spelling(S.Params[I]);
  OS << ")`: ";
  if (!S.Valid) {
    OS << "no summary (signature havoc)";
    return OS.str();
  }
  auto List = [&](const std::vector<bool> &Bits) {
    OS << "{";
    bool First = true;
    for (size_t I = 0; I < Bits.size(); ++I)
      if (Bits[I]) {
        OS << (First ? "" : ", ") << Names.spelling(S.Params[I]);
        First = false;
      }
    OS << "}";
  };
  OS << "preserved ";
  List(S.Preserved);
  OS << ", consumed ";
  List(S.Consumed);
  OS << ", connects {";
  bool First = true;
  size_t N = S.Params.size() + 1;
  auto SlotName = [&](size_t I) {
    return I == S.Params.size() ? std::string("result")
                                : Names.spelling(S.Params[I]);
  };
  for (size_t I = 0; I < N; ++I)
    for (size_t J = I + 1; J < N; ++J)
      if (S.MayConnect[I][J]) {
        if (J == S.Params.size() && !S.ResultRegionful)
          continue;
        OS << (First ? "" : ", ") << SlotName(I) << "~" << SlotName(J);
        First = false;
      }
  OS << "}, result "
     << (S.ResultRegionful ? "regionful" : "primitive");
  return OS.str();
}
