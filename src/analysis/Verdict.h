//===- analysis/Verdict.h - Static disconnect verdicts ----------*- C++ -*-===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The verdict lattice of the static region-graph analysis and the per-site
/// verdict table the runtime consults to elide `if disconnected` traversals.
/// Kept dependency-free so the runtime can include it without pulling in
/// the checker.
///
//===----------------------------------------------------------------------===//

#ifndef FEARLESS_ANALYSIS_VERDICT_H
#define FEARLESS_ANALYSIS_VERDICT_H

#include <map>

namespace fearless {

class Expr;

/// Classification of one `if disconnected(a, b)` site.
///
///  - MustDisconnected: on every execution reaching the site, the graphs
///    reachable from a and b are disjoint (the then-branch always runs).
///  - MustConnected: on every execution they share an object (the
///    else-branch always runs).
///  - Unknown: the verdict depends on the dynamic heap.
///
/// Must-verdicts are sound with respect to *both* runtime algorithms
/// (naive exact reachability and the §5.2 refcount check): the analysis
/// only claims must-disconnected when the subgraphs are locally allocated,
/// closed under incoming references, and provably disjoint — exactly the
/// conditions under which the refcount comparison cannot conservatively
/// report "connected". See docs/ANALYSIS.md.
enum class DisconnectVerdict { Unknown, MustDisconnected, MustConnected };

/// Renders "unknown", "must-disconnected", or "must-connected".
const char *toString(DisconnectVerdict V);

/// Per-site verdicts keyed by the IfDisconnectedExpr node. The runtime
/// skips the dynamic traversal for must-* entries (Interp's elision hook).
using DisconnectVerdictTable = std::map<const Expr *, DisconnectVerdict>;

} // namespace fearless

#endif // FEARLESS_ANALYSIS_VERDICT_H
