//===- analysis/StaticDisconnect.cpp - Static disconnect verdicts --------===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
//
// The abstract interpreter over the typed AST. Per function it threads a
// RegionGraph through the body (branch join, while fixpoint), derives the
// entry state from the checker's elaborated signature (parameter cohorts
// from the input (H; Γ) contexts), applies signature-derived havoc at
// calls, and classifies every `if disconnected` site.
//
// The must-verdict side conditions are chosen so that the verdicts agree
// with BOTH runtime algorithms (runtime/Disconnected.cpp):
//
//  * must-disconnected requires, for each side, that every node is a
//    locally allocated, never-call-exposed object (Kind == Alloc and
//    !Havocked), that the side has no incoming abstract edge from outside
//    itself, that it contains no iso edges, and that the two sides'
//    full-edge reachability sets are disjoint. Under these conditions the
//    naive check trivially reports disconnected, and the §5.2 refcount
//    check cannot see a stored-count surplus (StoredRefCount counts only
//    non-iso stored fields, all of which originate inside the side and are
//    traversed), so it reports disconnected too.
//
//  * must-connected requires both operands to be definite single exact
//    nodes whose closures over non-iso Must edges through exact nodes
//    intersect. The shared object makes the naive check report connected;
//    the refcount check either observes the frontier intersection or,
//    when one side exhausts first, a count surplus from the other side's
//    witness edge — both of which it reports as connected.
//
// docs/ANALYSIS.md spells the argument out in full.
//
//===----------------------------------------------------------------------===//

#include "analysis/StaticDisconnect.h"

#include "analysis/RegionGraph.h"
#include "parser/Parser.h"
#include "sema/Resolver.h"

#include <algorithm>
#include <sstream>

namespace fearless {

const char *toString(DisconnectVerdict V) {
  switch (V) {
  case DisconnectVerdict::Unknown:
    return "unknown";
  case DisconnectVerdict::MustDisconnected:
    return "must-disconnected";
  case DisconnectVerdict::MustConnected:
    return "must-connected";
  }
  return "unknown";
}

namespace {

bool isHubKind(AbsNodeKind K) {
  switch (K) {
  case AbsNodeKind::Summary:
  case AbsNodeKind::RecvRest:
  case AbsNodeKind::CallRest:
  case AbsNodeKind::Glue:
    return true;
  default:
    return false;
  }
}

//===----------------------------------------------------------------------===//
// Per-function abstract interpreter
//===----------------------------------------------------------------------===//

class FnAnalyzer {
public:
  /// \p Report may be null (effects-only mode: no site classification,
  /// no diagnostics). \p Summaries may be null (intra-procedural mode:
  /// every call applies the signature-derived havoc).
  FnAnalyzer(const CheckedProgram &CP, const CheckedFunction &Fn,
             AnalysisReport *Report, const SummaryTable *Summaries)
      : CP(CP), Fn(Fn), Report(Report), Summaries(Summaries),
        Names(CP.Prog->Names) {}

  void run();
  FnEffects runForEffects();

private:
  const CheckedProgram &CP;
  const CheckedFunction &Fn;
  AnalysisReport *Report;
  const SummaryTable *Summaries;
  const Interner &Names;

  NodeTable Nodes;
  RegionGraph G;
  int LoopDepth = 0;

  // Effect collection for the interprocedural summary engine. EverEdges
  // is the monotone union of every edge ever added to any program
  // point's graph (as untyped may-edges), so reachability over it
  // over-approximates reachability at *every* point of the execution —
  // strong updates remove edges from G but never from EverEdges.
  // WriteTouched holds every node that was the base of a field write,
  // was sent, or was havocked by a call; StoredValues every node that
  // was stored as a field value (a new stored reference the §5.2
  // refcount check would observe).
  RegionGraph EverEdges;
  NodeSet WriteTouched;
  NodeSet StoredValues;
  // Per regionful parameter (declaration order): its entry cohort (the
  // parameter node plus its group's summary hub) — the roots the
  // effects computation measures reach from.
  std::vector<Symbol> ParamNames;
  std::vector<NodeSet> ParamCohorts;

  void noteEdges(AbsNodeId From, const NodeSet &Targets) {
    if (Targets.empty())
      return;
    FieldEdge &W = EverEdges.Edges[From][Symbol{}];
    W.Targets.insert(Targets.begin(), Targets.end());
    W.Must = false;
  }

  // Site-memoized nodes, so fixpoint revisits reuse ids.
  std::map<const NewExpr *, AbsNodeId> AllocNodes;
  std::map<const RecvExpr *, std::pair<AbsNodeId, AbsNodeId>> RecvNodes;
  std::map<const CallExpr *, std::pair<AbsNodeId, AbsNodeId>> ResultNodes;
  std::map<std::pair<const CallExpr *, size_t>, AbsNodeId> GlueNodes;

  // Verdicts, overwritten on each visit; the last visit (under the stable
  // loop state) wins.
  std::map<const IfDisconnectedExpr *, SiteReport> SiteVerdicts;
  // Sites in first-visit order, for deterministic reporting.
  std::vector<const IfDisconnectedExpr *> SiteOrder;

  void buildEntryState();
  PointsTo evaluate(const Expr *E);
  PointsTo evalNew(const NewExpr &E);
  PointsTo evalCall(const CallExpr &E);
  PointsTo evalRecv(const RecvExpr &E);
  void evalIfDisconnected(const IfDisconnectedExpr &E, PointsTo &Value);
  void classify(const IfDisconnectedExpr &E);

  /// Writes \p V into field \p F of every node the base may denote, with
  /// the strong/weak decision per node, and keeps call/entry cohorts
  /// closed under mutation: if a base node's wildcard entry mentions a hub
  /// node, the written value becomes reachable from that hub too.
  void assignField(const PointsTo &Base, Symbol F, const PointsTo &V);

  bool fieldIsIso(AbsNodeId N, Symbol F) const;
  std::string describeNode(AbsNodeId N) const;
  std::string renderMustPath(Symbol Var, AbsNodeId Target,
                             const std::map<AbsNodeId, RegionGraph::MustStep>
                                 &Closure) const;
};

void FnAnalyzer::buildEntryState() {
  const FnSignature &Sig = Fn.Sig;
  const FnDecl &Decl = *Sig.Decl;

  // Region adjacency of the input heap context: region -> tracked-field
  // target regions.
  std::map<RegionId, std::set<RegionId>> Adj;
  for (const auto &[R, Track] : Sig.Input.Heap.entries())
    for (const auto &[Var, VT] : Track.Vars)
      for (const auto &[Field, Target] : VT.Fields)
        Adj[R].insert(Target);

  auto regionClosure = [&](RegionId Root) {
    std::set<RegionId> Seen{Root};
    std::vector<RegionId> Frontier{Root};
    while (!Frontier.empty()) {
      RegionId R = Frontier.back();
      Frontier.pop_back();
      auto It = Adj.find(R);
      if (It == Adj.end())
        continue;
      for (RegionId T : It->second)
        if (Seen.insert(T).second)
          Frontier.push_back(T);
    }
    return Seen;
  };

  // Regionful parameters and their input-region closures.
  struct ParamInfo {
    Symbol Name;
    Type Ty;
    SourceLoc Loc;
    std::set<RegionId> Regions;
    AbsNodeId Node;
    size_t Group = 0;
  };
  std::vector<ParamInfo> Ps;
  for (const ParamDecl &P : Decl.Params) {
    if (!P.ParamType.isRegionful())
      continue;
    ParamInfo PI;
    PI.Name = P.Name;
    PI.Ty = P.ParamType;
    PI.Loc = P.Loc;
    auto It = Sig.ParamRegion.find(P.Name);
    if (It != Sig.ParamRegion.end())
      PI.Regions = regionClosure(It->second);
    Ps.push_back(PI);
  }

  // Group parameters whose input-region closures intersect (before:
  // relations, tracked fields targeting a shared region): such parameters
  // may alias or reach one another at entry.
  std::vector<size_t> Group(Ps.size());
  for (size_t I = 0; I < Ps.size(); ++I)
    Group[I] = I;
  auto findRep = [&](size_t I) {
    while (Group[I] != I)
      I = Group[I] = Group[Group[I]];
    return I;
  };
  for (size_t I = 0; I < Ps.size(); ++I)
    for (size_t J = I + 1; J < Ps.size(); ++J) {
      bool Related = std::any_of(
          Ps[I].Regions.begin(), Ps[I].Regions.end(),
          [&](RegionId R) { return Ps[J].Regions.contains(R); });
      if (Related)
        Group[findRep(J)] = findRep(I);
    }

  // Materialize one node per parameter and one summary node per group for
  // the unknown rest of the group's entry regions.
  for (ParamInfo &PI : Ps) {
    AbsNode N;
    N.Kind = AbsNodeKind::Param;
    N.Exact = true;
    N.StructName = PI.Ty.StructName;
    N.Origin = PI.Name;
    N.Loc = PI.Loc;
    PI.Node = Nodes.add(N);
  }
  std::map<size_t, std::vector<size_t>> Groups;
  for (size_t I = 0; I < Ps.size(); ++I)
    Groups[findRep(I)].push_back(I);
  std::vector<AbsNodeId> GroupHub(Ps.size());
  for (const auto &[Rep, Members] : Groups) {
    AbsNode S;
    S.Kind = AbsNodeKind::Summary;
    S.Havocked = true;
    S.Origin = Ps[Rep].Name;
    S.Loc = Ps[Rep].Loc;
    AbsNodeId Sum = Nodes.add(S);

    NodeSet Cohort{Sum};
    for (size_t I : Members)
      Cohort.insert(Ps[I].Node);
    for (AbsNodeId M : Cohort) {
      FieldEdge &W = G.Edges[M][Symbol{}];
      W.Targets = Cohort;
      W.Must = false;
      noteEdges(M, Cohort);
      if (Members.size() > 1)
        Nodes[M].Havocked = true;
    }
    Nodes[Sum].Havocked = true;
    for (size_t I : Members)
      GroupHub[I] = Sum;
  }

  for (size_t I = 0; I < Ps.size(); ++I) {
    ParamNames.push_back(Ps[I].Name);
    ParamCohorts.push_back(NodeSet{Ps[I].Node, GroupHub[I]});
  }

  for (const ParamInfo &PI : Ps) {
    PointsTo V;
    V.Targets = {PI.Node};
    V.Definite = PI.Ty.isStruct();
    G.Vars[PI.Name] = V;
  }
}

PointsTo FnAnalyzer::evalNew(const NewExpr &E) {
  // Evaluate argument expressions first (they may have effects) and
  // remember the values of regionful initializers.
  std::vector<PointsTo> ArgVals;
  ArgVals.reserve(E.Args.size());
  for (const ExprPtr &A : E.Args)
    ArgVals.push_back(evaluate(A.get()));

  auto It = AllocNodes.find(&E);
  AbsNodeId Self;
  if (It != AllocNodes.end()) {
    Self = It->second;
  } else {
    AbsNode N;
    N.Kind = AbsNodeKind::Alloc;
    N.Exact = LoopDepth == 0;
    N.StructName = E.StructName;
    N.Loc = E.loc();
    Self = Nodes.add(N);
    AllocNodes[&E] = Self;
  }
  bool Exact = Nodes[Self].Exact && !Nodes[Self].Havocked;

  const StructInfo *SI = CP.Structs.lookup(E.StructName);
  if (!SI)
    return PointsTo{{Self}, Exact};

  // Map arguments to field slots: one per field, or one per required
  // field with the rest defaulted (StructTable's `new` contract).
  std::vector<int> ArgOfField(SI->Fields.size(), -1);
  if (E.Args.size() == SI->Fields.size()) {
    for (size_t I = 0; I < SI->Fields.size(); ++I)
      ArgOfField[I] = static_cast<int>(I);
  } else if (!E.Args.empty()) {
    std::vector<uint32_t> Req = SI->requiredFieldIndices();
    for (size_t I = 0; I < Req.size() && I < E.Args.size(); ++I)
      ArgOfField[Req[I]] = static_cast<int>(I);
  }

  for (size_t FI = 0; FI < SI->Fields.size(); ++FI) {
    const FieldInfo &F = SI->Fields[FI];
    if (!F.FieldType.isRegionful())
      continue;
    PointsTo V;
    if (ArgOfField[FI] >= 0) {
      V = ArgVals[ArgOfField[FI]];
    } else if (F.FieldType.isMaybe()) {
      V.Definite = true; // definitely none
    } else if (!F.Iso && F.FieldType.StructName == E.StructName) {
      // Argless-new self-reference default (Fig. 3's size-1 circle).
      V.Targets = {Self};
      V.Definite = Exact;
    } else {
      V.Definite = false;
    }
    G.writeField(Self, F.Name, V, /*Strong=*/Exact, F.Iso);
    noteEdges(Self, V.Targets);
    StoredValues.insert(V.Targets.begin(), V.Targets.end());
  }
  return PointsTo{{Self}, Exact};
}

PointsTo FnAnalyzer::evalRecv(const RecvExpr &E) {
  auto It = RecvNodes.find(&E);
  AbsNodeId Root, Rest;
  if (It != RecvNodes.end()) {
    Root = It->second.first;
    Rest = It->second.second;
  } else {
    AbsNode R;
    R.Kind = AbsNodeKind::Recv;
    R.Exact = LoopDepth == 0;
    if (E.ValueType.isRegionful())
      R.StructName = E.ValueType.StructName;
    R.Loc = E.loc();
    Root = Nodes.add(R);
    AbsNode S;
    S.Kind = AbsNodeKind::RecvRest;
    S.Havocked = true;
    S.Loc = E.loc();
    Rest = Nodes.add(S);
    RecvNodes[&E] = {Root, Rest};
  }
  // The received graph is isolated from everything local, but its
  // internal structure is unknown: root and rest may reference each other
  // arbitrarily.
  NodeSet Cohort{Root, Rest};
  for (AbsNodeId M : Cohort) {
    FieldEdge &W = G.Edges[M][Symbol{}];
    W.Targets.insert(Cohort.begin(), Cohort.end());
    W.Must = false;
    noteEdges(M, Cohort);
  }
  if (!E.ValueType.isRegionful())
    return PointsTo{};
  PointsTo V;
  V.Targets = {Root};
  V.Definite = E.ValueType.isStruct() && Nodes[Root].Exact;
  return V;
}

PointsTo FnAnalyzer::evalCall(const CallExpr &E) {
  std::vector<PointsTo> ArgVals;
  ArgVals.reserve(E.Args.size());
  for (const ExprPtr &A : E.Args)
    ArgVals.push_back(evaluate(A.get()));

  auto SigIt = CP.Signatures.find(E.Callee);
  const FnSignature *Sig =
      SigIt == CP.Signatures.end() ? nullptr : &SigIt->second;
  const FnDecl *Decl = Sig ? Sig->Decl : nullptr;

  // Regionful argument slots.
  struct Slot {
    size_t ArgIndex;
    Symbol ParamName;
    bool Consumed = false;
    std::set<RegionId> InRegions; ///< Input-region closure.
  };
  std::vector<Slot> Slots;
  bool ResultRegionful = Sig ? Sig->ReturnType.isRegionful() : true;

  std::map<RegionId, std::set<RegionId>> Adj;
  if (Sig)
    for (const auto &[R, Track] : Sig->Input.Heap.entries())
      for (const auto &[Var, VT] : Track.Vars)
        for (const auto &[Field, Target] : VT.Fields)
          Adj[R].insert(Target);
  auto regionClosure = [&](RegionId RootR) {
    std::set<RegionId> Seen{RootR};
    std::vector<RegionId> Frontier{RootR};
    while (!Frontier.empty()) {
      RegionId R = Frontier.back();
      Frontier.pop_back();
      auto AIt = Adj.find(R);
      if (AIt == Adj.end())
        continue;
      for (RegionId T : AIt->second)
        if (Seen.insert(T).second)
          Frontier.push_back(T);
    }
    return Seen;
  };

  if (Decl) {
    for (size_t I = 0; I < Decl->Params.size() && I < E.Args.size(); ++I) {
      const ParamDecl &P = Decl->Params[I];
      if (!P.ParamType.isRegionful())
        continue;
      Slot S;
      S.ArgIndex = I;
      S.ParamName = P.Name;
      auto RIt = Sig->ParamRegion.find(P.Name);
      if (RIt != Sig->ParamRegion.end()) {
        S.InRegions = regionClosure(RIt->second);
        auto OIt = Sig->OutputImage.find(RIt->second);
        S.Consumed = OIt == Sig->OutputImage.end() || !OIt->second.isValid();
      } else {
        S.Consumed = true; // Unknown region: be conservative.
      }
      Slots.push_back(S);
    }
  } else {
    // Unresolvable callee (cannot happen in a checked program): havoc
    // every regionful-looking argument together with the result.
    for (size_t I = 0; I < E.Args.size(); ++I)
      Slots.push_back(Slot{I, Symbol{}, /*Consumed=*/true, {}});
  }

  // Interprocedural mode: a valid callee summary replaces both the
  // signature-derived grouping and — for groups made purely of preserved
  // parameters — the havoc itself. A shape mismatch against the slots
  // (cannot happen for a checked program) falls back to the signature
  // path, the sound bottom.
  const FnSummary *Sum = nullptr;
  if (Summaries && Decl) {
    auto SumIt = Summaries->find(E.Callee);
    if (SumIt != Summaries->end() && SumIt->second.Valid &&
        SumIt->second.Params.size() == Slots.size()) {
      Sum = &SumIt->second;
      for (size_t I = 0; I < Slots.size(); ++I)
        if (Slots[I].ParamName != Sum->Params[I]) {
          Sum = nullptr;
          break;
        }
    }
  }

  // Output-region image of a slot's input closure.
  auto outImage = [&](const Slot &S) {
    std::set<RegionId> Out;
    if (!Sig)
      return Out;
    for (RegionId R : S.InRegions) {
      auto OIt = Sig->OutputImage.find(R);
      if (OIt != Sig->OutputImage.end() && OIt->second.isValid())
        Out.insert(OIt->second);
    }
    return Out;
  };

  // Union-find over slot indices plus a virtual result slot: two slots
  // group when the callee may leave their graphs connected.
  size_t NumGroups = Slots.size() + 1; // last = result
  size_t ResultSlot = Slots.size();
  std::vector<size_t> Group(NumGroups);
  for (size_t I = 0; I < NumGroups; ++I)
    Group[I] = I;
  auto findRep = [&](size_t I) {
    while (Group[I] != I)
      I = Group[I] = Group[Group[I]];
    return I;
  };
  auto unite = [&](size_t A, size_t B) { Group[findRep(A)] = findRep(B); };

  if (Sum) {
    // Summary-driven grouping: the callee's measured may-connect
    // relation, usually far sparser than what the signature admits. In
    // particular a consumed-and-sent region connects to nothing, and a
    // read-only callee connects nothing at all.
    for (size_t I = 0; I < Slots.size(); ++I)
      for (size_t J = I + 1; J < Slots.size(); ++J)
        if (Sum->mayConnect(I, J))
          unite(I, J);
    if (ResultRegionful)
      for (size_t I = 0; I < Slots.size(); ++I)
        if (Sum->mayConnect(I, Sum->resultSlot()))
          unite(I, ResultSlot);
  } else {
    std::vector<std::set<RegionId>> Images;
    for (const Slot &S : Slots)
      Images.push_back(outImage(S));
    for (size_t I = 0; I < Slots.size(); ++I)
      for (size_t J = I + 1; J < Slots.size(); ++J) {
        bool InRelated = std::any_of(
            Slots[I].InRegions.begin(), Slots[I].InRegions.end(),
            [&](RegionId R) { return Slots[J].InRegions.contains(R); });
        bool OutRelated =
            std::any_of(Images[I].begin(), Images[I].end(),
                        [&](RegionId R) { return Images[J].contains(R); });
        if (InRelated || OutRelated)
          unite(I, J);
      }
    for (size_t I = 0; I < Slots.size(); ++I) {
      if (Slots[I].Consumed) {
        // A consumed region may have been sent away — or retracted into
        // any other argument or the result. Group with everything.
        for (size_t J = 0; J < NumGroups; ++J)
          unite(I, J);
      }
      if (Sig && ResultRegionful && Images[I].contains(Sig->ResultRegion))
        unite(I, ResultSlot);
    }
    if (!Sig)
      for (size_t I = 0; I < NumGroups; ++I)
        unite(I, 0);
  }

  // Result nodes (memoized per site).
  AbsNodeId Root, Rest;
  if (ResultRegionful) {
    auto RIt = ResultNodes.find(&E);
    if (RIt != ResultNodes.end()) {
      Root = RIt->second.first;
      Rest = RIt->second.second;
    } else {
      AbsNode R;
      R.Kind = AbsNodeKind::CallResult;
      R.Exact = LoopDepth == 0;
      if (Sig && Sig->ReturnType.isRegionful())
        R.StructName = Sig->ReturnType.StructName;
      R.Origin = E.Callee;
      R.Loc = E.loc();
      Root = Nodes.add(R);
      AbsNode S;
      S.Kind = AbsNodeKind::CallRest;
      S.Havocked = true;
      S.Origin = E.Callee;
      S.Loc = E.loc();
      Rest = Nodes.add(S);
      ResultNodes[&E] = {Root, Rest};
    }
    NodeSet Cohort{Root, Rest};
    for (AbsNodeId M : Cohort) {
      FieldEdge &W = G.Edges[M][Symbol{}];
      W.Targets.insert(Cohort.begin(), Cohort.end());
      W.Must = false;
      noteEdges(M, Cohort);
    }
  }

  // Per group with at least one argument slot: a bidirectional glue hub
  // over everything reachable from the group's arguments (plus the result
  // cohort when the result belongs to the group). The hub models every
  // connection the callee may have created, including through objects it
  // allocated itself.
  std::map<size_t, std::vector<size_t>> Groups;
  for (size_t I = 0; I < Slots.size(); ++I)
    Groups[findRep(I)].push_back(I);
  for (const auto &[Rep, Members] : Groups) {
    bool HasResult = ResultRegionful && findRep(ResultSlot) == Rep;
    // Preserved groups: the summary proves the callee neither wrote into
    // nor stored a new reference to anything reachable from these
    // arguments, and the result does not alias them — leave the caller's
    // abstract graph completely untouched. This is where cross-call
    // must-* verdicts come from. Result-aliasing groups (identity-like
    // callees) deliberately stay on the havoc path: a later write
    // through the returned alias would otherwise leave stale must-edges
    // on the argument's nodes.
    if (Sum && !HasResult &&
        std::all_of(Members.begin(), Members.end(),
                    [&](size_t I) { return Sum->Preserved[I]; }))
      continue;
    NodeSet Reach;
    for (size_t I : Members) {
      const PointsTo &AV = ArgVals[Slots[I].ArgIndex];
      NodeSet R = G.reachableFrom(AV.Targets);
      Reach.insert(R.begin(), R.end());
    }
    if (HasResult) {
      NodeSet R = G.reachableFrom({Root, Rest});
      Reach.insert(R.begin(), R.end());
    }
    if (Reach.empty())
      continue;

    AbsNodeId Glue;
    auto GIt = GlueNodes.find({&E, Rep});
    if (GIt != GlueNodes.end()) {
      Glue = GIt->second;
    } else {
      AbsNode N;
      N.Kind = AbsNodeKind::Glue;
      N.Havocked = true;
      N.Origin = E.Callee;
      N.Loc = E.loc();
      Glue = Nodes.add(N);
      GlueNodes[{&E, Rep}] = Glue;
    }

    for (AbsNodeId N : Reach) {
      Nodes[N].Havocked = true;
      WriteTouched.insert(N);
      auto &FieldMap = G.Edges[N];
      // The callee may have rewritten any field of any reachable object
      // to point anywhere in the (merged) region: degrade every named
      // entry and widen it with the hub.
      for (auto &[Field, Edge] : FieldMap) {
        Edge.Must = false;
        if (Field.isValid())
          Edge.Targets.insert(Glue);
      }
      FieldEdge &W = FieldMap[Symbol{}];
      W.Targets.insert(Glue);
      W.Must = false;
      FieldEdge &GW = G.Edges[Glue][Symbol{}];
      GW.Targets.insert(N);
      GW.Must = false;
      noteEdges(N, {Glue});
      noteEdges(Glue, {N});
    }
    G.Edges[Glue][Symbol{}].Targets.insert(Glue);
  }

  if (!ResultRegionful)
    return PointsTo{};
  PointsTo V;
  V.Targets = {Root};
  V.Definite = Sig && Sig->ReturnType.isStruct() && Nodes[Root].Exact;
  return V;
}

bool FnAnalyzer::fieldIsIso(AbsNodeId N, Symbol F) const {
  Symbol SN = Nodes[N].StructName;
  if (!SN.isValid())
    return false;
  const StructInfo *SI = CP.Structs.lookup(SN);
  if (!SI)
    return false;
  const FieldInfo *FI = SI->findField(F);
  return FI && FI->Iso;
}

void FnAnalyzer::assignField(const PointsTo &Base, Symbol F,
                             const PointsTo &V) {
  bool Strong = Base.Definite && Base.Targets.size() == 1;
  WriteTouched.insert(Base.Targets.begin(), Base.Targets.end());
  StoredValues.insert(V.Targets.begin(), V.Targets.end());
  for (AbsNodeId N : Base.Targets) {
    bool NodeStrong = Strong && Nodes[N].Exact && !Nodes[N].Havocked;
    G.writeField(N, F, V, NodeStrong, fieldIsIso(N, F));
    noteEdges(N, V.Targets);
    // Keep cohorts closed under mutation: if this node belongs to an
    // entry/call cohort (its wildcard mentions a hub), objects denoted by
    // cohort mates may be the one actually written — make the value
    // reachable from the hub so their may-information stays sound.
    auto It = G.Edges.find(N);
    if (It == G.Edges.end())
      continue;
    auto WIt = It->second.find(Symbol{});
    if (WIt == It->second.end())
      continue;
    NodeSet Hubs;
    for (AbsNodeId T : WIt->second.Targets)
      if (isHubKind(Nodes[T].Kind))
        Hubs.insert(T);
    for (AbsNodeId H : Hubs) {
      for (AbsNodeId T : V.Targets)
        G.addMayEdge(H, Symbol{}, T);
      noteEdges(H, V.Targets);
    }
  }
}

std::string FnAnalyzer::describeNode(AbsNodeId N) const {
  const AbsNode &Node = Nodes[N];
  std::ostringstream OS;
  switch (Node.Kind) {
  case AbsNodeKind::Alloc:
    OS << "the object allocated at " << toString(Node.Loc);
    break;
  case AbsNodeKind::Param:
    OS << "parameter `" << Names.spelling(Node.Origin) << "`'s object";
    break;
  case AbsNodeKind::Recv:
    OS << "the object received at " << toString(Node.Loc);
    break;
  case AbsNodeKind::CallResult:
    OS << "the object returned by `" << Names.spelling(Node.Origin)
       << "` at " << toString(Node.Loc);
    break;
  default:
    OS << "an unknown object";
    break;
  }
  return OS.str();
}

std::string FnAnalyzer::renderMustPath(
    Symbol Var, AbsNodeId Target,
    const std::map<AbsNodeId, RegionGraph::MustStep> &Closure) const {
  std::vector<Symbol> Fields;
  AbsNodeId N = Target;
  while (true) {
    auto It = Closure.find(N);
    if (It == Closure.end() || !It->second.Prev.isValid())
      break;
    Fields.push_back(It->second.Field);
    N = It->second.Prev;
  }
  std::string Out = "`" + Names.spelling(Var);
  for (auto It = Fields.rbegin(); It != Fields.rend(); ++It)
    Out += "." + Names.spelling(*It);
  Out += "`";
  return Out;
}

void FnAnalyzer::classify(const IfDisconnectedExpr &E) {
  SiteReport R;
  R.Site = &E;
  R.Function = Fn.Sig.Name;
  R.Loc = E.loc();
  R.Verdict = DisconnectVerdict::Unknown;

  PointsTo PA, PB;
  if (auto It = G.Vars.find(E.VarA); It != G.Vars.end())
    PA = It->second;
  if (auto It = G.Vars.find(E.VarB); It != G.Vars.end())
    PB = It->second;

  // Must-connected: definite single exact operands whose non-iso must
  // closures share a node.
  if (R.Verdict == DisconnectVerdict::Unknown && PA.Definite &&
      PA.Targets.size() == 1 && PB.Definite && PB.Targets.size() == 1) {
    AbsNodeId NA = *PA.Targets.begin();
    AbsNodeId NB = *PB.Targets.begin();
    if (NA == NB) {
      R.Verdict = DisconnectVerdict::MustConnected;
      R.Witness = "`" + Names.spelling(E.VarA) + "` and `" +
                  Names.spelling(E.VarB) + "` are the same object";
    } else if (Nodes[NA].Exact && Nodes[NB].Exact) {
      auto CA = G.mustClosure(NA, Nodes);
      auto CB = G.mustClosure(NB, Nodes);
      AbsNodeId Shared;
      for (const auto &[N, Step] : CA)
        if (CB.contains(N)) {
          Shared = N;
          break;
        }
      if (Shared.isValid()) {
        R.Verdict = DisconnectVerdict::MustConnected;
        R.Witness = renderMustPath(E.VarA, Shared, CA) + " and " +
                    renderMustPath(E.VarB, Shared, CB) + " reach " +
                    describeNode(Shared);
      }
    }
  }

  // Must-disconnected: disjoint full-edge reach over sides made purely of
  // local, never-call-exposed allocations, closed under incoming edges,
  // with no iso edges inside (see the file header for why each condition
  // is needed for agreement with the refcount algorithm).
  if (R.Verdict == DisconnectVerdict::Unknown && !PA.Targets.empty() &&
      !PB.Targets.empty()) {
    NodeSet RA = G.reachableFrom(PA.Targets);
    NodeSet RB = G.reachableFrom(PB.Targets);
    bool Disjoint = std::none_of(RA.begin(), RA.end(), [&](AbsNodeId N) {
      return RB.contains(N);
    });
    auto sideOk = [&](const NodeSet &Side) {
      for (AbsNodeId N : Side) {
        const AbsNode &Node = Nodes[N];
        if (Node.Kind != AbsNodeKind::Alloc || Node.Havocked)
          return false;
        auto It = G.Edges.find(N);
        if (It == G.Edges.end())
          continue;
        for (const auto &[Field, Edge] : It->second)
          if (Edge.Iso && !Edge.Targets.empty())
            return false;
      }
      return true;
    };
    if (Disjoint && sideOk(RA) && sideOk(RB) &&
        !G.hasExternalEdgeInto(RA) && !G.hasExternalEdgeInto(RB))
      R.Verdict = DisconnectVerdict::MustDisconnected;
  }

  if (!SiteVerdicts.contains(&E))
    SiteOrder.push_back(&E);
  SiteVerdicts[&E] = std::move(R);
}

void FnAnalyzer::evalIfDisconnected(const IfDisconnectedExpr &E,
                                    PointsTo &Value) {
  if (Report) // Effects-only runs skip the (side-effect-free) verdicts.
    classify(E);
  // Both branches are analyzed regardless of the verdict (the dead one is
  // reported, not skipped): the runtime split in the then-branch does not
  // change the physical heap, so no abstract transfer is needed beyond
  // the join.
  RegionGraph Saved = G;
  PointsTo VThen = evaluate(E.Then.get());
  RegionGraph GThen = std::move(G);
  G = std::move(Saved);
  PointsTo VElse = E.Else ? evaluate(E.Else.get()) : PointsTo{};
  G.join(GThen);
  Value = joinPointsTo(VThen, VElse);
}

PointsTo FnAnalyzer::evaluate(const Expr *E) {
  if (!E)
    return PointsTo{};
  switch (E->kind()) {
  case ExprKind::IntLit:
  case ExprKind::BoolLit:
  case ExprKind::UnitLit:
  case ExprKind::NoneLit: {
    PointsTo V;
    V.Definite = E->kind() == ExprKind::NoneLit;
    return V;
  }
  case ExprKind::VarRef: {
    const auto &VR = cast<VarRefExpr>(*E);
    auto It = G.Vars.find(VR.Name);
    return It == G.Vars.end() ? PointsTo{} : It->second;
  }
  case ExprKind::FieldRef: {
    const auto &FR = cast<FieldRefExpr>(*E);
    PointsTo Base = evaluate(FR.Base.get());
    return G.readField(Base.Targets, FR.Field, Nodes);
  }
  case ExprKind::AssignVar: {
    const auto &AV = cast<AssignVarExpr>(*E);
    G.Vars[AV.Name] = evaluate(AV.Value.get());
    return PointsTo{};
  }
  case ExprKind::AssignField: {
    const auto &AF = cast<AssignFieldExpr>(*E);
    PointsTo Base = evaluate(AF.Base.get());
    PointsTo V = evaluate(AF.Value.get());
    assignField(Base, AF.Field, V);
    return PointsTo{};
  }
  case ExprKind::Let: {
    const auto &L = cast<LetExpr>(*E);
    G.Vars[L.Name] = evaluate(L.Init.get());
    return evaluate(L.Body.get());
  }
  case ExprKind::LetSome: {
    const auto &LS = cast<LetSomeExpr>(*E);
    PointsTo Scrut = evaluate(LS.Scrutinee.get());
    RegionGraph Saved = G;
    G.Vars[LS.Name] = Scrut;
    PointsTo VSome = evaluate(LS.SomeBody.get());
    RegionGraph GSome = std::move(G);
    G = std::move(Saved);
    PointsTo VNone =
        LS.NoneBody ? evaluate(LS.NoneBody.get()) : PointsTo{};
    G.join(GSome);
    return joinPointsTo(VSome, VNone);
  }
  case ExprKind::If: {
    const auto &I = cast<IfExpr>(*E);
    evaluate(I.Cond.get());
    RegionGraph Saved = G;
    PointsTo VThen = evaluate(I.Then.get());
    RegionGraph GThen = std::move(G);
    G = std::move(Saved);
    PointsTo VElse = I.Else ? evaluate(I.Else.get()) : PointsTo{};
    G.join(GThen);
    return joinPointsTo(VThen, VElse);
  }
  case ExprKind::IfDisconnected: {
    PointsTo V;
    evalIfDisconnected(cast<IfDisconnectedExpr>(*E), V);
    return V;
  }
  case ExprKind::While: {
    const auto &W = cast<WhileExpr>(*E);
    evaluate(W.Cond.get());
    RegionGraph H = G;
    // Monotone join-at-head fixpoint; the domain is finite once all sites
    // have materialized their nodes, so this terminates well inside the
    // iteration cap.
    for (int Iter = 0; Iter < 64; ++Iter) {
      ++LoopDepth;
      G = H;
      evaluate(W.Body.get());
      evaluate(W.Cond.get());
      --LoopDepth;
      RegionGraph Next = H;
      Next.join(G);
      if (Next == H)
        break;
      H = std::move(Next);
    }
    G = std::move(H);
    return PointsTo{};
  }
  case ExprKind::Seq: {
    const auto &S = cast<SeqExpr>(*E);
    PointsTo Last;
    for (const ExprPtr &Elem : S.Elems)
      Last = evaluate(Elem.get());
    return Last;
  }
  case ExprKind::New:
    return evalNew(cast<NewExpr>(*E));
  case ExprKind::SomeExpr:
    return evaluate(cast<SomeExpr>(*E).Operand.get());
  case ExprKind::IsNone:
    evaluate(cast<IsNoneExpr>(*E).Operand.get());
    return PointsTo{};
  case ExprKind::Send: {
    PointsTo Op = evaluate(cast<SendExpr>(*E).Operand.get());
    // The sent subgraph leaves the thread: everything reachable from the
    // operand counts as touched for the effects summary (a caller must
    // not treat the argument's region as preserved).
    NodeSet R = G.reachableFrom(Op.Targets);
    WriteTouched.insert(R.begin(), R.end());
    return PointsTo{};
  }
  case ExprKind::Recv:
    return evalRecv(cast<RecvExpr>(*E));
  case ExprKind::Call:
    return evalCall(cast<CallExpr>(*E));
  case ExprKind::Binary: {
    const auto &B = cast<BinaryExpr>(*E);
    evaluate(B.Lhs.get());
    evaluate(B.Rhs.get());
    return PointsTo{};
  }
  case ExprKind::Unary:
    evaluate(cast<UnaryExpr>(*E).Operand.get());
    return PointsTo{};
  }
  return PointsTo{};
}

void FnAnalyzer::run() {
  buildEntryState();
  evaluate(Fn.Sig.Decl->Body.get());
  if (!Report)
    return;

  for (const IfDisconnectedExpr *Site : SiteOrder) {
    const SiteReport &R = SiteVerdicts.at(Site);
    Report->Sites.push_back(R);

    std::string Args = "`if disconnected(" + Names.spelling(Site->VarA) +
                       ", " + Names.spelling(Site->VarB) + ")`";
    AnalysisDiag D;
    D.Kind = AnalysisDiagKind::SiteVerdict;
    D.Loc = R.Loc;
    switch (R.Verdict) {
    case DisconnectVerdict::MustDisconnected:
      D.Message = Args + " is must-disconnected: the then-branch always "
                         "runs and the traversal can be elided";
      break;
    case DisconnectVerdict::MustConnected:
      D.Message = Args + " is must-connected: the else-branch always runs "
                         "(witness: " +
                  R.Witness + ")";
      break;
    case DisconnectVerdict::Unknown:
      D.Message = Args + " is unknown: the runtime traversal decides";
      break;
    }
    Report->Diags.push_back(D);

    if (R.Verdict != DisconnectVerdict::Unknown) {
      const Expr *Dead = R.Verdict == DisconnectVerdict::MustDisconnected
                             ? Site->Else.get()
                             : Site->Then.get();
      const char *Which =
          R.Verdict == DisconnectVerdict::MustDisconnected ? "else" : "then";
      if (Dead) {
        AnalysisDiag DB;
        DB.Kind = AnalysisDiagKind::DeadBranch;
        DB.Loc = Dead->loc();
        DB.Message = std::string("dead ") + Which +
                     "-branch: the `if disconnected` at " + toString(R.Loc) +
                     " is " + toString(R.Verdict);
        Report->Diags.push_back(DB);
      }
    }
  }
}

FnEffects FnAnalyzer::runForEffects() {
  buildEntryState();
  PointsTo Exit = evaluate(Fn.Sig.Decl->Body.get());

  FnEffects E;
  E.Params = ParamNames;
  E.ResultRegionful = Fn.Sig.ReturnType.isRegionful();

  // Ever-reach per slot: reachability over the monotone union of every
  // edge any program point had, so a write into a subgraph the function
  // later strong-updated away from is still charged to the parameter.
  std::vector<NodeSet> Reach;
  for (const NodeSet &Cohort : ParamCohorts)
    Reach.push_back(EverEdges.reachableFrom(Cohort));
  Reach.push_back(EverEdges.reachableFrom(Exit.Targets)); // result slot

  NodeSet Touched = WriteTouched;
  Touched.insert(StoredValues.begin(), StoredValues.end());
  for (size_t I = 0; I < ParamCohorts.size(); ++I) {
    bool Hit = std::any_of(Reach[I].begin(), Reach[I].end(),
                           [&](AbsNodeId N) { return Touched.contains(N); });
    E.Touched.push_back(Hit);
  }

  size_t N = Reach.size();
  E.SlotOverlap.assign(N, std::vector<bool>(N, false));
  for (size_t I = 0; I < N; ++I) {
    E.SlotOverlap[I][I] = true;
    for (size_t J = I + 1; J < N; ++J) {
      bool Overlap =
          std::any_of(Reach[I].begin(), Reach[I].end(),
                      [&](AbsNodeId M) { return Reach[J].contains(M); });
      E.SlotOverlap[I][J] = E.SlotOverlap[J][I] = Overlap;
    }
  }
  return E;
}

//===----------------------------------------------------------------------===//
// Syntactic lints
//===----------------------------------------------------------------------===//

bool mentionsVar(const Expr *E, Symbol Var) {
  if (!E)
    return false;
  switch (E->kind()) {
  case ExprKind::VarRef:
    return cast<VarRefExpr>(*E).Name == Var;
  case ExprKind::FieldRef:
    return mentionsVar(cast<FieldRefExpr>(*E).Base.get(), Var);
  case ExprKind::AssignVar: {
    const auto &AV = cast<AssignVarExpr>(*E);
    return AV.Name == Var || mentionsVar(AV.Value.get(), Var);
  }
  case ExprKind::AssignField: {
    const auto &AF = cast<AssignFieldExpr>(*E);
    return mentionsVar(AF.Base.get(), Var) ||
           mentionsVar(AF.Value.get(), Var);
  }
  case ExprKind::Let: {
    const auto &L = cast<LetExpr>(*E);
    return mentionsVar(L.Init.get(), Var) || mentionsVar(L.Body.get(), Var);
  }
  case ExprKind::LetSome: {
    const auto &LS = cast<LetSomeExpr>(*E);
    return mentionsVar(LS.Scrutinee.get(), Var) ||
           mentionsVar(LS.SomeBody.get(), Var) ||
           mentionsVar(LS.NoneBody.get(), Var);
  }
  case ExprKind::If: {
    const auto &I = cast<IfExpr>(*E);
    return mentionsVar(I.Cond.get(), Var) ||
           mentionsVar(I.Then.get(), Var) || mentionsVar(I.Else.get(), Var);
  }
  case ExprKind::IfDisconnected: {
    const auto &ID = cast<IfDisconnectedExpr>(*E);
    return ID.VarA == Var || ID.VarB == Var ||
           mentionsVar(ID.Then.get(), Var) ||
           mentionsVar(ID.Else.get(), Var);
  }
  case ExprKind::While: {
    const auto &W = cast<WhileExpr>(*E);
    return mentionsVar(W.Cond.get(), Var) || mentionsVar(W.Body.get(), Var);
  }
  case ExprKind::Seq:
    for (const ExprPtr &Elem : cast<SeqExpr>(*E).Elems)
      if (mentionsVar(Elem.get(), Var))
        return true;
    return false;
  case ExprKind::New:
    for (const ExprPtr &A : cast<NewExpr>(*E).Args)
      if (mentionsVar(A.get(), Var))
        return true;
    return false;
  case ExprKind::SomeExpr:
    return mentionsVar(cast<SomeExpr>(*E).Operand.get(), Var);
  case ExprKind::IsNone:
    return mentionsVar(cast<IsNoneExpr>(*E).Operand.get(), Var);
  case ExprKind::Send:
    return mentionsVar(cast<SendExpr>(*E).Operand.get(), Var);
  case ExprKind::Call:
    for (const ExprPtr &A : cast<CallExpr>(*E).Args)
      if (mentionsVar(A.get(), Var))
        return true;
    return false;
  case ExprKind::Binary: {
    const auto &B = cast<BinaryExpr>(*E);
    return mentionsVar(B.Lhs.get(), Var) || mentionsVar(B.Rhs.get(), Var);
  }
  case ExprKind::Unary:
    return mentionsVar(cast<UnaryExpr>(*E).Operand.get(), Var);
  default:
    return false;
  }
}

/// Tracks definitely-consumed variables through one function body.
class LintWalker {
public:
  LintWalker(const Program &P, std::vector<AnalysisDiag> &Diags)
      : P(P), Diags(Diags) {}

  void walk(const Expr *E);

private:
  const Program &P;
  std::vector<AnalysisDiag> &Diags;
  std::map<Symbol, SourceLoc> Consumed; ///< var -> consuming site

  void flagUse(Symbol Var, SourceLoc Loc) {
    auto It = Consumed.find(Var);
    if (It == Consumed.end())
      return;
    AnalysisDiag D;
    D.Kind = AnalysisDiagKind::UseAfterConsume;
    D.Loc = Loc;
    D.Message = "`" + P.Names.spelling(Var) +
                "` is used here but its region was consumed at " +
                toString(It->second);
    Diags.push_back(D);
  }

  static std::map<Symbol, SourceLoc>
  intersect(const std::map<Symbol, SourceLoc> &A,
            const std::map<Symbol, SourceLoc> &B) {
    std::map<Symbol, SourceLoc> Out;
    for (const auto &[Var, Loc] : A)
      if (B.contains(Var))
        Out.emplace(Var, Loc);
    return Out;
  }
};

void LintWalker::walk(const Expr *E) {
  if (!E)
    return;
  switch (E->kind()) {
  case ExprKind::VarRef:
    flagUse(cast<VarRefExpr>(*E).Name, E->loc());
    return;
  case ExprKind::FieldRef:
    walk(cast<FieldRefExpr>(*E).Base.get());
    return;
  case ExprKind::AssignVar: {
    const auto &AV = cast<AssignVarExpr>(*E);
    walk(AV.Value.get());
    Consumed.erase(AV.Name); // Rebound: the old region no longer matters.
    return;
  }
  case ExprKind::AssignField: {
    const auto &AF = cast<AssignFieldExpr>(*E);
    walk(AF.Base.get());
    walk(AF.Value.get());
    return;
  }
  case ExprKind::Let: {
    const auto &L = cast<LetExpr>(*E);
    walk(L.Init.get());
    if (const auto *N = dyn_cast<NewExpr>(L.Init.get());
        N && N->Args.empty() && !mentionsVar(L.Body.get(), L.Name)) {
      AnalysisDiag D;
      D.Kind = AnalysisDiagKind::NeverPopulated;
      D.Loc = E->loc();
      D.Message = "the region of `" + P.Names.spelling(L.Name) +
                  "` (fresh `new " + P.Names.spelling(N->StructName) +
                  "`) is never populated or read";
      Diags.push_back(D);
    }
    Consumed.erase(L.Name);
    walk(L.Body.get());
    return;
  }
  case ExprKind::LetSome: {
    const auto &LS = cast<LetSomeExpr>(*E);
    walk(LS.Scrutinee.get());
    auto Saved = Consumed;
    Consumed.erase(LS.Name);
    walk(LS.SomeBody.get());
    auto AfterSome = std::move(Consumed);
    Consumed = Saved;
    walk(LS.NoneBody.get());
    Consumed = intersect(AfterSome, Consumed);
    return;
  }
  case ExprKind::If: {
    const auto &I = cast<IfExpr>(*E);
    walk(I.Cond.get());
    auto Saved = Consumed;
    walk(I.Then.get());
    auto AfterThen = std::move(Consumed);
    Consumed = Saved;
    walk(I.Else.get());
    Consumed = intersect(AfterThen, Consumed);
    return;
  }
  case ExprKind::IfDisconnected: {
    const auto &ID = cast<IfDisconnectedExpr>(*E);
    flagUse(ID.VarA, E->loc());
    flagUse(ID.VarB, E->loc());
    auto Saved = Consumed;
    walk(ID.Then.get());
    auto AfterThen = std::move(Consumed);
    Consumed = Saved;
    walk(ID.Else.get());
    Consumed = intersect(AfterThen, Consumed);
    return;
  }
  case ExprKind::While: {
    const auto &W = cast<WhileExpr>(*E);
    walk(W.Cond.get());
    auto Saved = Consumed;
    walk(W.Body.get());
    Consumed = std::move(Saved); // The body may not run at all.
    return;
  }
  case ExprKind::Seq:
    for (const ExprPtr &Elem : cast<SeqExpr>(*E).Elems)
      walk(Elem.get());
    return;
  case ExprKind::New:
    for (const ExprPtr &A : cast<NewExpr>(*E).Args)
      walk(A.get());
    return;
  case ExprKind::SomeExpr:
    walk(cast<SomeExpr>(*E).Operand.get());
    return;
  case ExprKind::IsNone:
    walk(cast<IsNoneExpr>(*E).Operand.get());
    return;
  case ExprKind::Send: {
    const auto &S = cast<SendExpr>(*E);
    walk(S.Operand.get());
    if (const auto *V = dyn_cast<VarRefExpr>(S.Operand.get()))
      Consumed.emplace(V->Name, E->loc());
    return;
  }
  case ExprKind::Recv:
    return;
  case ExprKind::Call: {
    const auto &C = cast<CallExpr>(*E);
    for (const ExprPtr &A : C.Args)
      walk(A.get());
    if (const FnDecl *Callee = P.findFunction(C.Callee))
      for (size_t I = 0; I < C.Args.size() && I < Callee->Params.size();
           ++I)
        if (const auto *V = dyn_cast<VarRefExpr>(C.Args[I].get());
            V && Callee->isConsumed(Callee->Params[I].Name))
          Consumed.emplace(V->Name, E->loc());
    return;
  }
  case ExprKind::Binary: {
    const auto &B = cast<BinaryExpr>(*E);
    walk(B.Lhs.get());
    walk(B.Rhs.get());
    return;
  }
  case ExprKind::Unary:
    walk(cast<UnaryExpr>(*E).Operand.get());
    return;
  default:
    return;
  }
}

} // namespace

std::vector<AnalysisDiag> lintProgram(const Program &P) {
  std::vector<AnalysisDiag> Diags;
  for (const FnDecl &F : P.Functions) {
    LintWalker W(P, Diags);
    W.walk(F.Body.get());
  }
  return Diags;
}

//===----------------------------------------------------------------------===//
// Program analysis and rendering
//===----------------------------------------------------------------------===//

DisconnectVerdictTable AnalysisReport::verdictTable() const {
  DisconnectVerdictTable T;
  for (const SiteReport &S : Sites)
    T[S.Site] = S.Verdict;
  return T;
}

FnEffects analyzeFunctionEffects(const CheckedProgram &CP,
                                 const CheckedFunction &Fn,
                                 const SummaryTable &Summaries) {
  FnAnalyzer A(CP, Fn, /*Report=*/nullptr, &Summaries);
  return A.runForEffects();
}

AnalysisReport analyzeProgram(const CheckedProgram &CP,
                              const AnalysisOptions &Opts) {
  AnalysisReport Report;
  if (Opts.Interprocedural)
    Report.Summaries = computeSummaries(CP, &Report.SummaryInfo);
  const SummaryTable *Sums =
      Opts.Interprocedural ? &Report.Summaries : nullptr;
  for (const FnDecl &F : CP.Prog->Functions) {
    auto It = CP.Functions.find(F.Name);
    if (It == CP.Functions.end())
      continue;
    FnAnalyzer A(CP, It->second, &Report, Sums);
    A.run();
  }
  auto Lints = lintProgram(*CP.Prog);
  Report.Diags.insert(Report.Diags.end(), Lints.begin(), Lints.end());
  return Report;
}

static std::string basenameOf(std::string_view Path) {
  size_t Slash = Path.find_last_of('/');
  return std::string(Slash == std::string_view::npos
                         ? Path
                         : Path.substr(Slash + 1));
}

static int diagRank(AnalysisDiagKind K) {
  switch (K) {
  case AnalysisDiagKind::SiteVerdict:
    return 0;
  case AnalysisDiagKind::DeadBranch:
    return 1;
  case AnalysisDiagKind::UseAfterConsume:
    return 2;
  case AnalysisDiagKind::NeverPopulated:
    return 3;
  }
  return 4;
}

std::string renderDiags(const std::vector<AnalysisDiag> &Diags,
                        std::string_view FileName) {
  std::string Base = basenameOf(FileName);
  std::vector<const AnalysisDiag *> Sorted;
  Sorted.reserve(Diags.size());
  for (const AnalysisDiag &D : Diags)
    Sorted.push_back(&D);
  std::stable_sort(Sorted.begin(), Sorted.end(),
                   [](const AnalysisDiag *A, const AnalysisDiag *B) {
                     auto KeyA = std::make_tuple(A->Loc.Line, A->Loc.Column,
                                                 diagRank(A->Kind));
                     auto KeyB = std::make_tuple(B->Loc.Line, B->Loc.Column,
                                                 diagRank(B->Kind));
                     return KeyA < KeyB;
                   });
  std::string Out;
  for (const AnalysisDiag *D : Sorted) {
    Out += Base + ":" + toString(D->Loc) + ": " + D->Message + "\n";
  }
  return Out;
}

static std::string jsonEscape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

static const char *diagKindName(AnalysisDiagKind K) {
  switch (K) {
  case AnalysisDiagKind::SiteVerdict:
    return "site-verdict";
  case AnalysisDiagKind::DeadBranch:
    return "dead-branch";
  case AnalysisDiagKind::UseAfterConsume:
    return "use-after-consume";
  case AnalysisDiagKind::NeverPopulated:
    return "never-populated";
  }
  return "unknown";
}

static bool isLintDiag(AnalysisDiagKind K) {
  return K == AnalysisDiagKind::UseAfterConsume ||
         K == AnalysisDiagKind::NeverPopulated;
}

/// Renders the stable machine-readable document of one analyze run
/// (schema "fearless-analysis-v1"). Error paths keep the same envelope
/// with "error" set, so tooling can parse every exit uniformly.
static std::string renderJson(const SourceAnalysis &Out, std::string_view Base,
                              const SourceAnalysisOptions &Opts,
                              const AnalysisReport *R, const Interner *Names,
                              std::string_view Error) {
  std::ostringstream OS;
  OS << "{\n";
  OS << "  \"schema\": \"fearless-analysis-v1\",\n";
  OS << "  \"file\": \"" << jsonEscape(Base) << "\",\n";
  OS << "  \"interprocedural\": "
     << (Opts.Interprocedural ? "true" : "false") << ",\n";
  OS << "  \"hard_error\": " << (Out.HardError ? "true" : "false") << ",\n";
  OS << "  \"checked\": " << (Out.CheckedOk ? "true" : "false") << ",\n";
  OS << "  \"error\": \"" << jsonEscape(Error) << "\",\n";
  OS << "  \"functions\": " << Out.FunctionCount << ",\n";
  OS << "  \"lint_diags\": " << Out.LintDiags << ",\n";
  OS << "  \"verdicts\": {\"must_disconnected\": " << Out.MustDisconnectedSites
     << ", \"must_connected\": " << Out.MustConnectedSites
     << ", \"unknown\": " << Out.UnknownSites << "},\n";
  OS << "  \"sites\": [";
  if (R && Names) {
    bool First = true;
    for (const SiteReport &S : R->Sites) {
      OS << (First ? "" : ",") << "\n    {\"function\": \""
         << jsonEscape(Names->spelling(S.Function)) << "\", \"line\": "
         << S.Loc.Line << ", \"col\": " << S.Loc.Column << ", \"verdict\": \""
         << toString(S.Verdict) << "\", \"witness\": \""
         << jsonEscape(S.Witness) << "\"}";
      First = false;
    }
    if (!First)
      OS << "\n  ";
  }
  OS << "],\n";
  OS << "  \"diags\": [";
  if (R) {
    bool First = true;
    for (const AnalysisDiag &D : R->Diags) {
      OS << (First ? "" : ",") << "\n    {\"kind\": \""
         << diagKindName(D.Kind) << "\", \"line\": " << D.Loc.Line
         << ", \"col\": " << D.Loc.Column << ", \"message\": \""
         << jsonEscape(D.Message) << "\"}";
      First = false;
    }
    if (!First)
      OS << "\n  ";
  }
  OS << "],\n";
  OS << "  \"summaries\": [";
  if (R && Names) {
    bool First = true;
    for (const auto &[Fn, S] : R->Summaries) {
      OS << (First ? "" : ",") << "\n    {\"function\": \""
         << jsonEscape(Names->spelling(Fn)) << "\", \"valid\": "
         << (S.Valid ? "true" : "false") << ", \"params\": [";
      for (size_t I = 0; I < S.Params.size(); ++I)
        OS << (I ? ", " : "") << "\"" << jsonEscape(Names->spelling(S.Params[I]))
           << "\"";
      OS << "], \"preserved\": [";
      bool FirstBit = true;
      for (size_t I = 0; S.Valid && I < S.Params.size(); ++I)
        if (S.Preserved[I]) {
          OS << (FirstBit ? "" : ", ") << "\""
             << jsonEscape(Names->spelling(S.Params[I])) << "\"";
          FirstBit = false;
        }
      OS << "], \"consumed\": [";
      FirstBit = true;
      for (size_t I = 0; S.Valid && I < S.Params.size(); ++I)
        if (S.Consumed[I]) {
          OS << (FirstBit ? "" : ", ") << "\""
             << jsonEscape(Names->spelling(S.Params[I])) << "\"";
          FirstBit = false;
        }
      OS << "], \"connects\": [";
      FirstBit = true;
      size_t NSlots = S.Params.size() + 1;
      auto SlotName = [&](size_t I) {
        return I == S.Params.size() ? std::string("result")
                                    : Names->spelling(S.Params[I]);
      };
      for (size_t I = 0; S.Valid && I < NSlots; ++I)
        for (size_t J = I + 1; J < NSlots; ++J) {
          if (!S.mayConnect(I, J))
            continue;
          if (J == S.Params.size() && !S.ResultRegionful)
            continue;
          OS << (FirstBit ? "" : ", ") << "[\"" << jsonEscape(SlotName(I))
             << "\", \"" << jsonEscape(SlotName(J)) << "\"]";
          FirstBit = false;
        }
      OS << "], \"result_regionful\": "
         << (S.ResultRegionful ? "true" : "false") << "}";
      First = false;
    }
    if (!First)
      OS << "\n  ";
  }
  OS << "]\n";
  OS << "}\n";
  return OS.str();
}

SourceAnalysis analyzeSourceText(std::string_view Source,
                                 std::string_view FileName,
                                 const SourceAnalysisOptions &Opts) {
  SourceAnalysis Out;
  std::string Base = basenameOf(FileName);

  DiagnosticEngine Diags;
  auto ProgOpt = parseProgram(Source, Diags);
  if (!ProgOpt) {
    Out.HardError = true;
    if (Opts.Json)
      Out.Rendered = renderJson(Out, Base, Opts, nullptr, nullptr,
                                "parsing failed");
    else
      Out.Rendered = Base + ": error: parsing failed\n" + Diags.renderAll();
    return Out;
  }
  Program P = std::move(*ProgOpt);
  StructTable Structs;
  if (!Structs.build(P, Diags) || !resolveProgram(P, Structs, Diags)) {
    Out.HardError = true;
    if (Opts.Json)
      Out.Rendered = renderJson(Out, Base, Opts, nullptr, nullptr,
                                "resolution failed");
    else
      Out.Rendered = Base + ": error: resolution failed\n" + Diags.renderAll();
    return Out;
  }
  Out.FunctionCount = P.Functions.size();

  auto Checked = checkProgram(P);
  if (!Checked) {
    // The region checker rejected the program: fall back to the syntactic
    // lints, which usually explain the misuse more directly.
    auto Lints = lintProgram(P);
    for (const AnalysisDiag &D : Lints)
      if (isLintDiag(D.Kind))
        ++Out.LintDiags;
    std::string Error = "region check failed: " + Checked.error().Message +
                        " at " + toString(Checked.error().Loc);
    if (Opts.Json) {
      AnalysisReport LintOnly;
      LintOnly.Diags = std::move(Lints);
      Out.Rendered =
          renderJson(Out, Base, Opts, &LintOnly, &P.Names, Error);
    } else {
      Out.Rendered = Base + ": note: region check failed (" +
                     Checked.error().Message + " at " +
                     toString(Checked.error().Loc) +
                     "); syntactic lints only\n" +
                     renderDiags(Lints, FileName);
    }
    return Out;
  }
  Out.CheckedOk = true;

  AnalysisOptions AOpts;
  AOpts.Interprocedural = Opts.Interprocedural;
  AnalysisReport R = analyzeProgram(*Checked, AOpts);
  for (const SiteReport &S : R.Sites) {
    switch (S.Verdict) {
    case DisconnectVerdict::MustDisconnected:
      ++Out.MustDisconnectedSites;
      break;
    case DisconnectVerdict::MustConnected:
      ++Out.MustConnectedSites;
      break;
    case DisconnectVerdict::Unknown:
      ++Out.UnknownSites;
      break;
    }
  }
  for (const AnalysisDiag &D : R.Diags)
    if (isLintDiag(D.Kind))
      ++Out.LintDiags;

  if (Opts.Json) {
    Out.Rendered = renderJson(Out, Base, Opts, &R, &P.Names, "");
    return Out;
  }

  std::ostringstream Header;
  Header << Base << ": analyzed " << Checked->Functions.size()
         << " function(s), " << R.Sites.size()
         << " `if disconnected` site(s): " << Out.MustDisconnectedSites
         << " must-disconnected, " << Out.MustConnectedSites
         << " must-connected, " << Out.UnknownSites << " unknown\n";
  Out.Rendered = Header.str() + renderDiags(R.Diags, FileName);
  if (Opts.DumpSummaries) {
    Out.Rendered += "--- summaries (" +
                    std::to_string(R.Summaries.size()) + " function(s), " +
                    std::to_string(R.SummaryInfo.Sccs) + " scc(s), " +
                    std::to_string(R.SummaryInfo.RecursiveSccs) +
                    " recursive)\n";
    for (const auto &[Fn, S] : R.Summaries)
      Out.Rendered += renderSummary(Fn, S, P.Names) + "\n";
  }
  return Out;
}

} // namespace fearless
