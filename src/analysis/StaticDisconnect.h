//===- analysis/StaticDisconnect.h - Static disconnect verdicts -*- C++ -*-===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static region-graph analysis: a flow-sensitive abstract interpreter
/// over the typed AST (domain in analysis/RegionGraph.h) that classifies
/// every `if disconnected(a, b)` site as must-disconnected, must-connected,
/// or unknown, flags the resulting dead branches, and lints region misuse
/// (use-after-`consumes`, regions created but never populated).
///
/// Verdicts are sound with respect to *both* runtime disconnect algorithms
/// (naive exact reachability and the §5.2 refcount check) so the
/// interpreter may skip the dynamic traversal for must-* sites and a debug
/// cross-check re-running the real traversal never disagrees. The
/// soundness argument lives in docs/ANALYSIS.md.
///
/// Entry points:
///  - analyzeProgram: the full abstract interpretation of a checked
///    program, producing per-site verdicts and diagnostics;
///  - lintProgram: the syntactic lint pass, usable even when the region
///    checker rejects the program;
///  - analyzeSourceText: parse + sema + check + analyze with rendered
///    output — shared verbatim by `fearlessc analyze` and the golden-file
///    tests.
///
//===----------------------------------------------------------------------===//

#ifndef FEARLESS_ANALYSIS_STATICDISCONNECT_H
#define FEARLESS_ANALYSIS_STATICDISCONNECT_H

#include "analysis/Summary.h"
#include "analysis/Verdict.h"
#include "checker/Checker.h"

#include <string>
#include <string_view>
#include <vector>

namespace fearless {

/// The diagnostic kinds the analysis emits, ordered by rendering rank
/// within one source line.
enum class AnalysisDiagKind {
  SiteVerdict,     ///< One `if disconnected` site's classification.
  DeadBranch,      ///< A branch a must-verdict proves unreachable.
  UseAfterConsume, ///< A variable used after `send` / a consuming call.
  NeverPopulated,  ///< A fresh region never populated or read.
};

/// One rendered-ready diagnostic.
struct AnalysisDiag {
  AnalysisDiagKind Kind = AnalysisDiagKind::SiteVerdict;
  SourceLoc Loc;
  std::string Message; ///< Full message text after "file:line:col: ".
};

/// The classification of one `if disconnected` site.
struct SiteReport {
  const Expr *Site = nullptr; ///< The IfDisconnectedExpr.
  Symbol Function;            ///< Enclosing function.
  SourceLoc Loc;
  DisconnectVerdict Verdict = DisconnectVerdict::Unknown;
  /// For must-connected: a human-readable witness, e.g.
  /// "a.next and b reach the object allocated at 3:11".
  std::string Witness;
};

/// Everything the analysis produced for one program.
struct AnalysisReport {
  std::vector<SiteReport> Sites;
  std::vector<AnalysisDiag> Diags;
  /// Per-function region-effect summaries (empty in intra-procedural
  /// mode) and the statistics of their bottom-up computation.
  SummaryTable Summaries;
  SummaryStats SummaryInfo;

  /// The per-site verdict table the runtime elision hook consumes.
  DisconnectVerdictTable verdictTable() const;
};

/// Analysis knobs. Interprocedural mode (the default) computes bottom-up
/// function summaries first and instantiates them at call sites;
/// switching it off restores the pure signature-havoc treatment of
/// calls (the sound bottom every summary falls back to).
struct AnalysisOptions {
  bool Interprocedural = true;
};

/// Runs the abstract interpretation over every checked function of \p CP
/// and the syntactic lints over its program.
AnalysisReport analyzeProgram(const CheckedProgram &CP,
                              const AnalysisOptions &Opts = {});

/// The syntactic lint pass alone (use-after-consumes, never-populated
/// regions). Works on any parsed program — in particular on programs the
/// region checker rejects, where the lints explain the misuse.
std::vector<AnalysisDiag> lintProgram(const Program &P);

/// Renders \p Diags in deterministic order, one "file:line:col: message"
/// line each, using only the basename of \p FileName (golden-test
/// stability across checkouts).
std::string renderDiags(const std::vector<AnalysisDiag> &Diags,
                        std::string_view FileName);

/// Options of the `fearlessc analyze` pipeline.
struct SourceAnalysisOptions {
  /// Forwarded to analyzeProgram.
  bool Interprocedural = true;
  /// Append the per-function summary dump to the rendered report.
  bool DumpSummaries = false;
  /// Render a machine-readable JSON document (schema
  /// "fearless-analysis-v1") instead of the human-readable listing.
  bool Json = false;
};

/// The `fearlessc analyze` pipeline over a source buffer: parse + resolve,
/// then check + analyze (or, when the checker rejects the program, the
/// syntactic lints with the checker's diagnostic as a note).
struct SourceAnalysis {
  std::string Rendered;     ///< The full diagnostic listing (or JSON).
  bool HardError = false;   ///< Parse / resolution failure.
  bool CheckedOk = false;   ///< The region checker accepted the program.
  size_t MustDisconnectedSites = 0;
  size_t MustConnectedSites = 0;
  size_t UnknownSites = 0;
  size_t FunctionCount = 0;
  /// Lint diagnostics (use-after-consume, never-populated) — the count
  /// `fearlessc analyze --werror` turns into a check-stage failure.
  size_t LintDiags = 0;
};
SourceAnalysis analyzeSourceText(std::string_view Source,
                                 std::string_view FileName,
                                 const SourceAnalysisOptions &Opts = {});

} // namespace fearless

#endif // FEARLESS_ANALYSIS_STATICDISCONNECT_H
