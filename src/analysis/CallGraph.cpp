//===- analysis/CallGraph.cpp - Program call graph + SCC order ------------===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//

#include "analysis/CallGraph.h"

#include "ast/Ast.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

using namespace fearless;

namespace {

/// Collects callee symbols from one expression tree. Iterative (explicit
/// worklist) so pathological bodies cannot overflow the C++ stack, but
/// sites are still recorded in a deterministic order (preorder,
/// left-to-right).
void collectCalls(const Expr *Root, std::vector<Symbol> &Out) {
  std::vector<const Expr *> Stack;
  // Pushing children in reverse keeps the pop order = source order.
  auto PushRev = [&Stack](std::initializer_list<const Expr *> Es) {
    std::vector<const Expr *> Tmp;
    for (const Expr *E : Es)
      if (E)
        Tmp.push_back(E);
    for (auto It = Tmp.rbegin(); It != Tmp.rend(); ++It)
      Stack.push_back(*It);
  };
  if (Root)
    Stack.push_back(Root);
  while (!Stack.empty()) {
    const Expr *E = Stack.back();
    Stack.pop_back();
    switch (E->kind()) {
    case ExprKind::IntLit:
    case ExprKind::BoolLit:
    case ExprKind::UnitLit:
    case ExprKind::NoneLit:
    case ExprKind::VarRef:
    case ExprKind::Recv:
      break;
    case ExprKind::FieldRef:
      PushRev({cast<FieldRefExpr>(*E).Base.get()});
      break;
    case ExprKind::AssignVar:
      PushRev({cast<AssignVarExpr>(*E).Value.get()});
      break;
    case ExprKind::AssignField: {
      const auto &A = cast<AssignFieldExpr>(*E);
      PushRev({A.Base.get(), A.Value.get()});
      break;
    }
    case ExprKind::Let: {
      const auto &L = cast<LetExpr>(*E);
      PushRev({L.Init.get(), L.Body.get()});
      break;
    }
    case ExprKind::LetSome: {
      const auto &L = cast<LetSomeExpr>(*E);
      PushRev({L.Scrutinee.get(), L.SomeBody.get(), L.NoneBody.get()});
      break;
    }
    case ExprKind::If: {
      const auto &I = cast<IfExpr>(*E);
      PushRev({I.Cond.get(), I.Then.get(), I.Else.get()});
      break;
    }
    case ExprKind::IfDisconnected: {
      const auto &I = cast<IfDisconnectedExpr>(*E);
      PushRev({I.Then.get(), I.Else.get()});
      break;
    }
    case ExprKind::While: {
      const auto &W = cast<WhileExpr>(*E);
      PushRev({W.Cond.get(), W.Body.get()});
      break;
    }
    case ExprKind::Seq: {
      const auto &S = cast<SeqExpr>(*E);
      for (auto It = S.Elems.rbegin(); It != S.Elems.rend(); ++It)
        if (It->get())
          Stack.push_back(It->get());
      break;
    }
    case ExprKind::New: {
      const auto &N = cast<NewExpr>(*E);
      for (auto It = N.Args.rbegin(); It != N.Args.rend(); ++It)
        if (It->get())
          Stack.push_back(It->get());
      break;
    }
    case ExprKind::SomeExpr:
      PushRev({cast<SomeExpr>(*E).Operand.get()});
      break;
    case ExprKind::IsNone:
      PushRev({cast<IsNoneExpr>(*E).Operand.get()});
      break;
    case ExprKind::Send:
      PushRev({cast<SendExpr>(*E).Operand.get()});
      break;
    case ExprKind::Call: {
      const auto &C = cast<CallExpr>(*E);
      Out.push_back(C.Callee);
      for (auto It = C.Args.rbegin(); It != C.Args.rend(); ++It)
        if (It->get())
          Stack.push_back(It->get());
      break;
    }
    case ExprKind::Binary: {
      const auto &B = cast<BinaryExpr>(*E);
      PushRev({B.Lhs.get(), B.Rhs.get()});
      break;
    }
    case ExprKind::Unary:
      PushRev({cast<UnaryExpr>(*E).Operand.get()});
      break;
    }
  }
}

} // namespace

CallGraph CallGraph::build(const Program &P) {
  CallGraph G;

  std::unordered_set<Symbol> Known;
  for (const FnDecl &Fn : P.Functions)
    Known.insert(Fn.Name);

  for (const FnDecl &Fn : P.Functions) {
    std::vector<Symbol> Sites;
    collectCalls(Fn.Body.get(), Sites);
    G.CallSites[Fn.Name] = Sites.size();
    std::vector<Symbol> Dedup;
    std::unordered_set<Symbol> Seen;
    for (Symbol Callee : Sites)
      if (Known.count(Callee) && Seen.insert(Callee).second)
        Dedup.push_back(Callee);
    G.Callees[Fn.Name] = std::move(Dedup);
  }

  // Iterative Tarjan over functions in declaration order. Generated
  // corpora contain multi-thousand-function call chains, so recursion
  // depth must not track call-chain depth.
  struct VState {
    size_t Index = SIZE_MAX; // SIZE_MAX = unvisited
    size_t Lowlink = 0;
    bool OnStack = false;
  };
  std::unordered_map<Symbol, VState> State;
  State.reserve(P.Functions.size());
  std::vector<Symbol> TarjanStack;
  size_t NextIndex = 0;

  struct Frame {
    Symbol Fn;
    size_t NextChild = 0;
  };
  std::vector<Frame> Work;

  for (const FnDecl &Root : P.Functions) {
    if (State[Root.Name].Index != SIZE_MAX)
      continue;
    Work.push_back({Root.Name, 0});
    State[Root.Name].Index = State[Root.Name].Lowlink = NextIndex++;
    State[Root.Name].OnStack = true;
    TarjanStack.push_back(Root.Name);

    while (!Work.empty()) {
      Frame &F = Work.back();
      const std::vector<Symbol> &Kids = G.Callees[F.Fn];
      if (F.NextChild < Kids.size()) {
        Symbol Child = Kids[F.NextChild++];
        VState &CS = State[Child];
        if (CS.Index == SIZE_MAX) {
          CS.Index = CS.Lowlink = NextIndex++;
          CS.OnStack = true;
          TarjanStack.push_back(Child);
          Work.push_back({Child, 0});
        } else if (CS.OnStack) {
          State[F.Fn].Lowlink = std::min(State[F.Fn].Lowlink, CS.Index);
        }
        continue;
      }
      // F's children are exhausted: maybe pop an SCC, then propagate the
      // lowlink into the parent frame.
      VState &FS = State[F.Fn];
      if (FS.Lowlink == FS.Index) {
        std::vector<Symbol> Scc;
        for (;;) {
          Symbol Member = TarjanStack.back();
          TarjanStack.pop_back();
          State[Member].OnStack = false;
          Scc.push_back(Member);
          if (Member == F.Fn)
            break;
        }
        // Tarjan pops components in reverse topological order, so
        // appending here directly yields the bottom-up order the summary
        // engine wants. Keep members in declaration order for stable
        // reporting.
        std::sort(Scc.begin(), Scc.end());
        for (Symbol Member : Scc)
          G.SccIndex[Member] = G.Sccs.size();
        G.Sccs.push_back(std::move(Scc));
      }
      Symbol Done = F.Fn;
      Work.pop_back();
      if (!Work.empty()) {
        VState &PS = State[Work.back().Fn];
        PS.Lowlink = std::min(PS.Lowlink, State[Done].Lowlink);
      }
    }
  }

  return G;
}

const std::vector<Symbol> &CallGraph::callees(Symbol Fn) const {
  static const std::vector<Symbol> Empty;
  auto It = Callees.find(Fn);
  return It == Callees.end() ? Empty : It->second;
}

size_t CallGraph::callSiteCount(Symbol Fn) const {
  auto It = CallSites.find(Fn);
  return It == CallSites.end() ? 0 : It->second;
}

bool CallGraph::isRecursiveScc(size_t SccIndex) const {
  assert(SccIndex < Sccs.size());
  const std::vector<Symbol> &Scc = Sccs[SccIndex];
  if (Scc.size() > 1)
    return true;
  const std::vector<Symbol> &Kids = callees(Scc.front());
  return std::find(Kids.begin(), Kids.end(), Scc.front()) != Kids.end();
}

size_t CallGraph::sccOf(Symbol Fn) const {
  auto It = SccIndex.find(Fn);
  assert(It != SccIndex.end() && "function not in the graph");
  return It->second;
}

size_t CallGraph::edgeCount() const {
  size_t N = 0;
  for (const auto &[Fn, Kids] : Callees)
    N += Kids.size();
  return N;
}
