//===- analysis/RegionGraph.h - Abstract heap for region analysis -*- C++ -*-===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract domain of the static disconnect analysis: a per-program-
/// point graph of abstract nodes (one per allocation site, parameter,
/// receive, or call result) with may-point-to edges labeled by field and
/// kind (iso / non-iso), plus a points-to map for the regionful variables
/// in scope. StaticDisconnect.cpp interprets the typed AST over this
/// domain; the queries here (reachability, incoming-edge closure, must-
/// path search) are what the verdict engine is built from.
///
/// Precision flags:
///  - AbsNode::Exact — the node stands for at most one concrete object per
///    activation (false for loop-allocated nodes and summaries), so an
///    intersection of must-paths at an exact node names one physical
///    object.
///  - FieldEdge::Must — the field of the (unique) concrete object denoted
///    by the source definitely holds exactly the listed target set
///    (established by strong updates, destroyed by joins and call havoc).
///  - PointsTo::Definite — the variable's value is exactly the single
///    listed exact node (or definitely none when the target set is empty).
///
//===----------------------------------------------------------------------===//

#ifndef FEARLESS_ANALYSIS_REGIONGRAPH_H
#define FEARLESS_ANALYSIS_REGIONGRAPH_H

#include "support/Diagnostics.h"
#include "support/Interner.h"

#include <cstdint>
#include <map>
#include <set>
#include <vector>

namespace fearless {

/// Dense index of one abstract node in a NodeTable.
struct AbsNodeId {
  uint32_t Id = UINT32_MAX;

  bool isValid() const { return Id != UINT32_MAX; }
  bool operator==(const AbsNodeId &) const = default;
  auto operator<=>(const AbsNodeId &) const = default;
};

/// What a node stands for.
enum class AbsNodeKind {
  Alloc,      ///< A `new S(...)` site — locally allocated objects.
  Param,      ///< One function parameter's root object.
  Summary,    ///< The unknown entry contents of one input region group.
  Recv,       ///< The root of a `recv<T>()`'d graph.
  RecvRest,   ///< The rest of a received graph (summary).
  CallResult, ///< The root returned by a call.
  CallRest,   ///< The unknown structure behind a call result (summary).
  Glue,       ///< Havoc hub for one call's may-connected argument group.
};

/// One abstract node. Only Alloc nodes may appear in a must-disconnected
/// side: every other kind admits concrete incoming references the function
/// body cannot see (entry-region siblings, the sender's stale iso edges,
/// callee-made links), which the refcount check observes as count
/// mismatches.
struct AbsNode {
  AbsNodeKind Kind = AbsNodeKind::Alloc;
  bool Exact = false;
  /// Set once the node's object may be denoted by another node too (same-
  /// group parameters, call results aliasing arguments, anything exposed
  /// to a call). Havocked nodes never receive strong updates, and a call
  /// may leave stale stored-reference counts on them, so they are excluded
  /// from must-disconnected sides. Monotone: never cleared.
  bool Havocked = false;
  Symbol StructName; ///< Invalid for summaries and glue.
  Symbol Origin;     ///< Parameter / callee name, for rendering.
  SourceLoc Loc;     ///< Originating site.
};

/// Registry of the abstract nodes of one function analysis. Node ids are
/// stable across the while-loop fixpoint because every site materializes
/// its node at most once.
class NodeTable {
public:
  AbsNodeId add(AbsNode N) {
    Nodes.push_back(N);
    return AbsNodeId{static_cast<uint32_t>(Nodes.size() - 1)};
  }
  const AbsNode &operator[](AbsNodeId Id) const { return Nodes[Id.Id]; }
  AbsNode &operator[](AbsNodeId Id) { return Nodes[Id.Id]; }
  size_t size() const { return Nodes.size(); }

private:
  std::vector<AbsNode> Nodes;
};

using NodeSet = std::set<AbsNodeId>;

/// Abstract value of a regionful expression / variable.
struct PointsTo {
  NodeSet Targets;
  bool Definite = false;

  bool operator==(const PointsTo &) const = default;
};

/// Least upper bound of two variable values.
PointsTo joinPointsTo(const PointsTo &A, const PointsTo &B);

/// One field's may-target set. The wildcard field (invalid Symbol) models
/// "any field of this node may point here" and backs the lazily-defaulted
/// entry contents of parameters, receives, and call results; field reads
/// fall back to it when no specific entry exists, and it participates in
/// reachability and closure queries unconditionally.
struct FieldEdge {
  NodeSet Targets;
  bool Must = false;
  bool Iso = false;

  bool operator==(const FieldEdge &) const = default;
};

/// The abstract state at one program point.
class RegionGraph {
public:
  std::map<Symbol, PointsTo> Vars;
  std::map<AbsNodeId, std::map<Symbol, FieldEdge>> Edges;

  /// Adds a may edge (unions targets; clears Must if already present).
  void addMayEdge(AbsNodeId From, Symbol Field, AbsNodeId To,
                  bool Iso = false);

  /// Reads field \p Field over every node in \p Bases, falling back to
  /// each node's wildcard edge when the field was never written.
  PointsTo readField(const NodeSet &Bases, Symbol Field,
                     const NodeTable &Nodes) const;

  /// Writes field \p Field of \p Base. A strong write replaces the entry
  /// (Must iff \p V is a definite singleton / definite none); a weak write
  /// unions with the previous contents (including the wildcard fallback)
  /// and clears Must.
  void writeField(AbsNodeId Base, Symbol Field, const PointsTo &V,
                  bool Strong, bool Iso);

  /// All nodes reachable from \p Roots over every edge, wildcard and iso
  /// included (matching the naive exact-reachability spec of E15A/E15B).
  NodeSet reachableFrom(const NodeSet &Roots) const;

  /// True when any edge whose source lies outside \p Side targets a node
  /// inside it. A side with no external in-edges is "reference-closed":
  /// the refcount comparison on it cannot see a count surplus.
  bool hasExternalEdgeInto(const NodeSet &Side) const;

  /// Must-reachability: the closure of \p Root over non-iso Must edges
  /// whose targets are Exact nodes, with the discovering edge recorded per
  /// node (for witness paths). \p Root itself is included with an invalid
  /// predecessor.
  struct MustStep {
    AbsNodeId Prev; ///< Invalid for the root.
    Symbol Field;
  };
  std::map<AbsNodeId, MustStep> mustClosure(AbsNodeId Root,
                                            const NodeTable &Nodes) const;

  /// Least upper bound (branch merge / loop head). Edge entries present on
  /// one side only are widened with the other side's wildcard fallback.
  void join(const RegionGraph &Other);

  bool operator==(const RegionGraph &) const = default;
};

} // namespace fearless

#endif // FEARLESS_ANALYSIS_REGIONGRAPH_H
