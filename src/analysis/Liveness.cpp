//===- analysis/Liveness.cpp ----------------------------------------------===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//

#include "analysis/Liveness.h"

using namespace fearless;

void UseSet::merge(const UseSet &Other) {
  Vars.insert(Other.Vars.begin(), Other.Vars.end());
  FieldUses.insert(Other.FieldUses.begin(), Other.FieldUses.end());
}

const UseSet &UseCache::uses(const Expr &E) {
  auto It = Cache.find(&E);
  if (It != Cache.end())
    return It->second;
  UseSet Set = compute(E);
  return Cache.emplace(&E, std::move(Set)).first->second;
}

UseSet UseCache::compute(const Expr &E) {
  UseSet Set;
  switch (E.kind()) {
  case ExprKind::IntLit:
  case ExprKind::BoolLit:
  case ExprKind::UnitLit:
  case ExprKind::NoneLit:
  case ExprKind::Recv:
    break;
  case ExprKind::VarRef:
    Set.Vars.insert(cast<VarRefExpr>(E).Name);
    break;
  case ExprKind::FieldRef: {
    const auto &F = cast<FieldRefExpr>(E);
    Set.merge(uses(*F.Base));
    if (const auto *Var = dyn_cast<VarRefExpr>(F.Base.get()))
      Set.FieldUses.insert({Var->Name, F.Field});
    break;
  }
  case ExprKind::AssignVar: {
    const auto &A = cast<AssignVarExpr>(E);
    Set.Vars.insert(A.Name);
    Set.merge(uses(*A.Value));
    break;
  }
  case ExprKind::AssignField: {
    const auto &A = cast<AssignFieldExpr>(E);
    Set.merge(uses(*A.Base));
    Set.merge(uses(*A.Value));
    if (const auto *Var = dyn_cast<VarRefExpr>(A.Base.get()))
      Set.FieldUses.insert({Var->Name, A.Field});
    break;
  }
  case ExprKind::Let: {
    const auto &L = cast<LetExpr>(E);
    Set.merge(uses(*L.Init));
    Set.merge(uses(*L.Body));
    // The bound variable is local; its uses are harmless to keep (no
    // shadowing), but drop them for precision.
    Set.Vars.erase(L.Name);
    break;
  }
  case ExprKind::LetSome: {
    const auto &L = cast<LetSomeExpr>(E);
    Set.merge(uses(*L.Scrutinee));
    Set.merge(uses(*L.SomeBody));
    Set.merge(uses(*L.NoneBody));
    Set.Vars.erase(L.Name);
    break;
  }
  case ExprKind::If: {
    const auto &I = cast<IfExpr>(E);
    Set.merge(uses(*I.Cond));
    Set.merge(uses(*I.Then));
    if (I.Else)
      Set.merge(uses(*I.Else));
    break;
  }
  case ExprKind::IfDisconnected: {
    const auto &I = cast<IfDisconnectedExpr>(E);
    Set.Vars.insert(I.VarA);
    Set.Vars.insert(I.VarB);
    Set.merge(uses(*I.Then));
    Set.merge(uses(*I.Else));
    break;
  }
  case ExprKind::While: {
    const auto &W = cast<WhileExpr>(E);
    Set.merge(uses(*W.Cond));
    Set.merge(uses(*W.Body));
    break;
  }
  case ExprKind::Seq:
    for (const ExprPtr &Elem : cast<SeqExpr>(E).Elems)
      Set.merge(uses(*Elem));
    break;
  case ExprKind::New:
    for (const ExprPtr &Arg : cast<NewExpr>(E).Args)
      Set.merge(uses(*Arg));
    break;
  case ExprKind::SomeExpr:
    Set.merge(uses(*cast<SomeExpr>(E).Operand));
    break;
  case ExprKind::IsNone:
    Set.merge(uses(*cast<IsNoneExpr>(E).Operand));
    break;
  case ExprKind::Send:
    Set.merge(uses(*cast<SendExpr>(E).Operand));
    break;
  case ExprKind::Call: {
    const auto &C = cast<CallExpr>(E);
    for (const ExprPtr &Arg : C.Args)
      Set.merge(uses(*Arg));
    // A call whose signature tracks `p.f` (after-paths) is a field use of
    // the actual argument bound to p.
    if (const FnDecl *Callee = P.findFunction(C.Callee)) {
      auto FieldUseOfPath = [&](const AnnotPath &Path) {
        if (Path.IsResult || !Path.Field.isValid())
          return;
        for (size_t I = 0; I < Callee->Params.size() && I < C.Args.size();
             ++I) {
          if (Callee->Params[I].Name != Path.Base)
            continue;
          if (const auto *Var = dyn_cast<VarRefExpr>(C.Args[I].get()))
            Set.FieldUses.insert({Var->Name, Path.Field});
        }
      };
      for (const AfterRelation &Rel : Callee->Afters) {
        FieldUseOfPath(Rel.Lhs);
        FieldUseOfPath(Rel.Rhs);
      }
      for (const AfterRelation &Rel : Callee->Befores) {
        FieldUseOfPath(Rel.Lhs);
        FieldUseOfPath(Rel.Rhs);
      }
    }
    break;
  }
  case ExprKind::Binary: {
    const auto &B = cast<BinaryExpr>(E);
    Set.merge(uses(*B.Lhs));
    Set.merge(uses(*B.Rhs));
    break;
  }
  case ExprKind::Unary:
    Set.merge(uses(*cast<UnaryExpr>(E).Operand));
    break;
  }
  return Set;
}
