//===- analysis/Summary.h - Interprocedural region-effect summaries -*- C++ -*-===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-function region-effect summaries and the bottom-up engine that
/// computes them over the call graph (analysis/CallGraph.h). A summary
/// records, for each regionful parameter of a function, whether the
/// function provably leaves the parameter's region graph untouched
/// (Preserved: no field writes into it, no new stored references to its
/// objects, no havoc from inner calls) and which parameter/result slots
/// the function may leave physically connected (MayConnect). Call sites
/// in StaticDisconnect.cpp instantiate the callee's summary instead of
/// applying the signature-derived havoc: groups made purely of preserved
/// parameters are skipped entirely, so the caller's must-edges and
/// never-havocked allocation nodes survive the call and must-* verdicts
/// propagate across call boundaries.
///
/// Recursion is handled per SCC with an optimistic fixpoint: members
/// start fully preserved / fully disconnected and monotonically degrade
/// until stable (the lattice is finite — one bit per parameter plus one
/// bit per slot pair — so the loop terminates; an iteration cap
/// invalidates the whole SCC as a backstop, falling back to the
/// signature havoc, which is the sound bottom). Summaries describe
/// effects that are only consumed after the callee *returns*, so the
/// least fixpoint is sound for every terminating execution by induction
/// on call depth; a non-terminating call never reaches the site that
/// would have trusted its summary. docs/ANALYSIS.md spells the argument
/// out.
///
//===----------------------------------------------------------------------===//

#ifndef FEARLESS_ANALYSIS_SUMMARY_H
#define FEARLESS_ANALYSIS_SUMMARY_H

#include "checker/Checker.h"

#include <map>
#include <vector>

namespace fearless {

/// One function's region-effect summary. Slot indices 0..Params.size()-1
/// are the regionful parameters in declaration order; slot Params.size()
/// is the result (meaningful only when ResultRegionful).
struct FnSummary {
  /// False = no usable summary: the call site must fall back to the
  /// signature-derived havoc (the sound bottom). Set for functions whose
  /// SCC fixpoint hit the iteration cap and for unresolvable callees.
  bool Valid = false;
  /// Regionful parameter names in declaration order.
  std::vector<Symbol> Params;
  /// Per parameter: the callee releases the region (send / retraction —
  /// from the signature's output image, exactly as the havoc path
  /// computes it).
  std::vector<bool> Consumed;
  /// Per parameter: the callee provably performs no field write into the
  /// parameter's region graph, stores no new reference to any of its
  /// objects, and exposes none of it to an unsummarized call. A call
  /// group made purely of preserved parameters (with no result in the
  /// group) is left untouched by evalCall.
  std::vector<bool> Preserved;
  /// Symmetric (Params.size()+1)^2 matrix over parameter slots plus the
  /// result slot: MayConnect[i][j] is true when the callee may leave the
  /// two slots' graphs physically connected (reach overlap at exit in
  /// the callee's own abstract graph, accumulated over all program
  /// points). The diagonal is true by convention.
  std::vector<std::vector<bool>> MayConnect;
  bool ResultRegionful = false;

  bool operator==(const FnSummary &) const = default;

  size_t resultSlot() const { return Params.size(); }
  bool mayConnect(size_t I, size_t J) const {
    return I < MayConnect.size() && J < MayConnect[I].size() &&
           MayConnect[I][J];
  }
};

using SummaryTable = std::map<Symbol, FnSummary>;

/// Aggregate statistics of one computeSummaries run, for reporting.
struct SummaryStats {
  size_t Functions = 0;
  size_t Sccs = 0;
  size_t RecursiveSccs = 0;
  /// Total per-function effect analyses run (fixpoint revisits included).
  size_t EffectRuns = 0;
  /// Functions whose SCC hit the iteration cap (summary invalidated).
  size_t Invalidated = 0;
  size_t PreservedParams = 0;
  size_t TotalParams = 0;
};

/// The raw effects one abstract interpretation of a function body
/// observed, from which Summary.cpp derives the FnSummary. Computed by
/// the FnAnalyzer in StaticDisconnect.cpp (analyzeFunctionEffects):
/// Touched[i] is true when any node ever reachable from parameter i's
/// entry cohort was the base of a field write, was stored as a field
/// value, was sent, or was havocked by an inner call; SlotOverlap is the
/// ever-reach overlap over parameter slots plus the result slot.
struct FnEffects {
  std::vector<Symbol> Params;
  std::vector<bool> Touched;
  std::vector<std::vector<bool>> SlotOverlap;
  bool ResultRegionful = false;
};

/// Runs the abstract interpreter over \p Fn in effects-collection mode,
/// resolving inner calls against \p Summaries (absent or invalid entries
/// fall back to signature havoc). Implemented in StaticDisconnect.cpp.
FnEffects analyzeFunctionEffects(const CheckedProgram &CP,
                                 const CheckedFunction &Fn,
                                 const SummaryTable &Summaries);

/// Computes the summary of every checked function of \p CP bottom-up
/// over the SCC condensation of its call graph.
SummaryTable computeSummaries(const CheckedProgram &CP,
                              SummaryStats *Stats = nullptr);

/// Renders one summary as a single human-readable line (the `fearlessc
/// analyze --summaries` dump), e.g.
/// "summary `walk(list, n)`: preserved {list}, consumed {}, connects {},
/// result int".
std::string renderSummary(Symbol Fn, const FnSummary &S,
                          const Interner &Names);

} // namespace fearless

#endif // FEARLESS_ANALYSIS_SUMMARY_H
