//===- analysis/RegionGraph.cpp - Abstract heap for region analysis ------===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//

#include "analysis/RegionGraph.h"

#include <deque>

namespace fearless {

PointsTo joinPointsTo(const PointsTo &A, const PointsTo &B) {
  PointsTo Out;
  Out.Targets = A.Targets;
  Out.Targets.insert(B.Targets.begin(), B.Targets.end());
  Out.Definite = A.Definite && B.Definite && A.Targets == B.Targets;
  return Out;
}

void RegionGraph::addMayEdge(AbsNodeId From, Symbol Field, AbsNodeId To,
                             bool Iso) {
  FieldEdge &E = Edges[From][Field];
  if (!E.Targets.empty() && !E.Targets.contains(To))
    E.Must = false;
  if (E.Targets.empty())
    E.Must = false; // A may edge alone never establishes a must fact.
  E.Targets.insert(To);
  E.Iso = E.Iso || Iso;
}

PointsTo RegionGraph::readField(const NodeSet &Bases, Symbol Field,
                                const NodeTable &Nodes) const {
  PointsTo Out;
  bool First = true;
  for (AbsNodeId B : Bases) {
    PointsTo V;
    auto NodeIt = Edges.find(B);
    const FieldEdge *E = nullptr;
    if (NodeIt != Edges.end()) {
      auto FieldIt = NodeIt->second.find(Field);
      if (FieldIt != NodeIt->second.end())
        E = &FieldIt->second;
      else {
        auto WildIt = NodeIt->second.find(Symbol{});
        if (WildIt != NodeIt->second.end())
          E = &WildIt->second;
      }
    }
    if (E) {
      V.Targets = E->Targets;
      // A must edge to a single exact node reads back as a definite value;
      // a must edge with an empty target set is a definite none.
      V.Definite = E->Must && (V.Targets.empty() ||
                               (V.Targets.size() == 1 &&
                                Nodes[*V.Targets.begin()].Exact));
    }
    // Never-written field with no wildcard fallback (the analyzer eagerly
    // initializes allocation-site fields, so this is a corner): no targets,
    // and conservatively not definite.
    Out = First ? V : joinPointsTo(Out, V);
    First = false;
  }
  if (Bases.empty())
    Out.Definite = false;
  return Out;
}

void RegionGraph::writeField(AbsNodeId Base, Symbol Field, const PointsTo &V,
                             bool Strong, bool Iso) {
  auto &FieldMap = Edges[Base];
  if (Strong) {
    FieldEdge E;
    E.Targets = V.Targets;
    E.Must = V.Definite;
    E.Iso = Iso;
    FieldMap[Field] = E;
    return;
  }
  // Weak write: the field may retain any previous contents. If the named
  // entry does not exist yet, its previous contents are the wildcard
  // fallback (or nothing for plain allocation sites).
  FieldEdge &E = FieldMap[Field];
  if (E.Targets.empty() && !E.Must) {
    auto WildIt = FieldMap.find(Symbol{});
    if (WildIt != FieldMap.end() && Field.isValid())
      E.Targets = WildIt->second.Targets;
  }
  E.Targets.insert(V.Targets.begin(), V.Targets.end());
  E.Must = false;
  E.Iso = E.Iso || Iso;
}

NodeSet RegionGraph::reachableFrom(const NodeSet &Roots) const {
  NodeSet Seen = Roots;
  std::deque<AbsNodeId> Frontier(Roots.begin(), Roots.end());
  while (!Frontier.empty()) {
    AbsNodeId N = Frontier.front();
    Frontier.pop_front();
    auto It = Edges.find(N);
    if (It == Edges.end())
      continue;
    for (const auto &[Field, E] : It->second)
      for (AbsNodeId T : E.Targets)
        if (Seen.insert(T).second)
          Frontier.push_back(T);
  }
  return Seen;
}

bool RegionGraph::hasExternalEdgeInto(const NodeSet &Side) const {
  for (const auto &[From, FieldMap] : Edges) {
    if (Side.contains(From))
      continue;
    for (const auto &[Field, E] : FieldMap)
      for (AbsNodeId T : E.Targets)
        if (Side.contains(T))
          return true;
  }
  return false;
}

std::map<AbsNodeId, RegionGraph::MustStep>
RegionGraph::mustClosure(AbsNodeId Root, const NodeTable &Nodes) const {
  std::map<AbsNodeId, MustStep> Out;
  Out[Root] = MustStep{AbsNodeId{}, Symbol{}};
  std::deque<AbsNodeId> Frontier{Root};
  while (!Frontier.empty()) {
    AbsNodeId N = Frontier.front();
    Frontier.pop_front();
    auto It = Edges.find(N);
    if (It == Edges.end())
      continue;
    for (const auto &[Field, E] : It->second) {
      // The wildcard entry and iso fields never carry must facts we can
      // use: the runtime traversal skips iso fields (refcount algorithm),
      // and wildcard targets are may-information only.
      if (!Field.isValid() || E.Iso || !E.Must || E.Targets.size() != 1)
        continue;
      AbsNodeId T = *E.Targets.begin();
      if (!Nodes[T].Exact)
        continue;
      if (Out.try_emplace(T, MustStep{N, Field}).second)
        Frontier.push_back(T);
    }
  }
  return Out;
}

void RegionGraph::join(const RegionGraph &Other) {
  // Variables: union of keys; a var bound on one side only keeps its value
  // but loses definiteness (the other path may not reach this point with
  // the var in scope — the checker guarantees it does for uses, but the
  // conservative join is simpler and sound).
  for (const auto &[Var, V] : Other.Vars) {
    auto It = Vars.find(Var);
    if (It == Vars.end())
      Vars[Var] = V;
    else
      It->second = joinPointsTo(It->second, V);
  }

  // Helper: the fallback contents of (Node, Field) on a graph where the
  // entry is absent — the node's wildcard entry if any, else empty.
  auto Fallback = [](const RegionGraph &G, AbsNodeId N) -> const FieldEdge * {
    auto It = G.Edges.find(N);
    if (It == G.Edges.end())
      return nullptr;
    auto WildIt = It->second.find(Symbol{});
    return WildIt == It->second.end() ? nullptr : &WildIt->second;
  };

  for (const auto &[N, OtherFields] : Other.Edges) {
    auto &MyFields = Edges[N];
    for (const auto &[Field, OE] : OtherFields) {
      auto It = MyFields.find(Field);
      if (It == MyFields.end()) {
        FieldEdge E = OE;
        if (Field.isValid()) {
          if (const FieldEdge *W = Fallback(*this, N)) {
            E.Targets.insert(W->Targets.begin(), W->Targets.end());
            E.Must = false;
            E.Iso = E.Iso || W->Iso;
          }
        }
        MyFields[Field] = E;
        continue;
      }
      FieldEdge &E = It->second;
      bool SameTargets = E.Targets == OE.Targets;
      E.Targets.insert(OE.Targets.begin(), OE.Targets.end());
      E.Must = E.Must && OE.Must && SameTargets;
      E.Iso = E.Iso || OE.Iso;
    }
    // Entries present here but not on the other side: widen with the other
    // side's wildcard fallback and drop must.
    for (auto &[Field, E] : MyFields) {
      if (OtherFields.contains(Field))
        continue;
      if (Field.isValid()) {
        if (const FieldEdge *W = Fallback(Other, N)) {
          E.Targets.insert(W->Targets.begin(), W->Targets.end());
          E.Iso = E.Iso || W->Iso;
        }
      }
      E.Must = false;
    }
  }
  // Nodes with edges here but absent entirely on the other side: their
  // entries are one-sided facts; drop must.
  for (auto &[N, MyFields] : Edges) {
    if (Other.Edges.contains(N))
      continue;
    for (auto &[Field, E] : MyFields)
      E.Must = false;
  }
}

} // namespace fearless
