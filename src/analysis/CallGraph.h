//===- analysis/CallGraph.h - Program call graph + SCC order ----*- C++ -*-===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The syntactic call graph of a program and its strongly-connected-
/// component condensation, in bottom-up (callees-before-callers) order.
/// This is the skeleton the interprocedural summary engine (Summary.h)
/// walks: each SCC is analyzed to a fixpoint before any of its callers,
/// so a callee's region-effect summary is always available (or soundly
/// pessimized) when a call site is interpreted.
///
/// The graph is purely syntactic — every `f(...)` call expression adds an
/// edge to `f` if a function of that name exists; calls to unknown names
/// (rejected later by the checker anyway) are ignored. Ordering is
/// deterministic: callee lists keep first-occurrence order, and the SCC
/// order is the reverse of Tarjan's completion order over functions
/// visited in program declaration order, which is a topological order of
/// the condensation.
///
//===----------------------------------------------------------------------===//

#ifndef FEARLESS_ANALYSIS_CALLGRAPH_H
#define FEARLESS_ANALYSIS_CALLGRAPH_H

#include "support/Interner.h"

#include <unordered_map>
#include <vector>

namespace fearless {

struct Program;

/// Call graph over the named functions of one program.
class CallGraph {
public:
  /// Builds the graph by walking every function body.
  static CallGraph build(const Program &P);

  /// The distinct functions \p Fn may call, in first-occurrence order.
  /// Empty for leaf functions and unknown names.
  const std::vector<Symbol> &callees(Symbol Fn) const;

  /// Call sites in \p Fn's body (not deduplicated) — the edge count.
  size_t callSiteCount(Symbol Fn) const;

  /// The strongly connected components in bottom-up order: every callee
  /// of a member of sccs()[i] outside the component itself belongs to
  /// some sccs()[j] with j < i. Members keep declaration order.
  const std::vector<std::vector<Symbol>> &sccs() const { return Sccs; }

  /// True when the SCC at \p SccIndex needs a fixpoint: more than one
  /// member, or a single member that calls itself.
  bool isRecursiveScc(size_t SccIndex) const;

  /// Index into sccs() of the component containing \p Fn.
  size_t sccOf(Symbol Fn) const;

  /// Total distinct call edges (sum of callees() sizes).
  size_t edgeCount() const;

private:
  std::unordered_map<Symbol, std::vector<Symbol>> Callees;
  std::unordered_map<Symbol, size_t> CallSites;
  std::unordered_map<Symbol, size_t> SccIndex;
  std::vector<std::vector<Symbol>> Sccs;
};

} // namespace fearless

#endif // FEARLESS_ANALYSIS_CALLGRAPH_H
