//===- lexer/Lexer.h - Surface-language lexer ------------------*- C++ -*-===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokens and a hand-written lexer for the surface language of Fig. 6 plus
/// the function annotation syntax of §4.9. Comments are `//` to end of
/// line.
///
//===----------------------------------------------------------------------===//

#ifndef FEARLESS_LEXER_LEXER_H
#define FEARLESS_LEXER_LEXER_H

#include "support/Diagnostics.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace fearless {

enum class TokenKind {
  // Literals and identifiers.
  Identifier,
  IntLiteral,
  // Keywords.
  KwStruct,
  KwDef,
  KwLet,
  KwSome,
  KwNone,
  KwIn,
  KwElse,
  KwIf,
  KwWhile,
  KwDisconnected,
  KwNew,
  KwIso,
  KwUnit,
  KwInt,
  KwBool,
  KwTrue,
  KwFalse,
  KwIsNone,
  KwSend,
  KwRecv,
  KwConsumes,
  KwPinned,
  KwAfter,
  KwBefore,
  KwResult,
  // Punctuation.
  LBrace,
  RBrace,
  LParen,
  RParen,
  Semicolon,
  Colon,
  Comma,
  Dot,
  Question,
  Tilde,
  Assign,     // =
  EqEq,       // ==
  NotEq,      // !=
  Less,       // <
  LessEq,     // <=
  Greater,    // >
  GreaterEq,  // >=
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Bang,       // !
  AmpAmp,     // &&
  PipePipe,   // ||
  EndOfFile,
  Error,
};

/// Returns a human-readable name for a token kind, e.g. "'{'".
const char *tokenKindName(TokenKind Kind);

/// One token: kind, source text slice, decoded integer value, location.
struct Token {
  TokenKind Kind = TokenKind::Error;
  std::string_view Text;
  int64_t IntValue = 0;
  SourceLoc Loc;

  bool is(TokenKind K) const { return Kind == K; }
};

/// Lexes \p Source completely into a token vector ending with EndOfFile.
/// Lexical errors are reported to \p Diags and produce Error tokens.
std::vector<Token> lex(std::string_view Source, DiagnosticEngine &Diags);

} // namespace fearless

#endif // FEARLESS_LEXER_LEXER_H
