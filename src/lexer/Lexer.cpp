//===- lexer/Lexer.cpp ----------------------------------------------------===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//

#include "lexer/Lexer.h"

#include <cassert>
#include <cctype>
#include <unordered_map>

using namespace fearless;

const char *fearless::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::IntLiteral:
    return "integer literal";
  case TokenKind::KwStruct:
    return "'struct'";
  case TokenKind::KwDef:
    return "'def'";
  case TokenKind::KwLet:
    return "'let'";
  case TokenKind::KwSome:
    return "'some'";
  case TokenKind::KwNone:
    return "'none'";
  case TokenKind::KwIn:
    return "'in'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::KwDisconnected:
    return "'disconnected'";
  case TokenKind::KwNew:
    return "'new'";
  case TokenKind::KwIso:
    return "'iso'";
  case TokenKind::KwUnit:
    return "'unit'";
  case TokenKind::KwInt:
    return "'int'";
  case TokenKind::KwBool:
    return "'bool'";
  case TokenKind::KwTrue:
    return "'true'";
  case TokenKind::KwFalse:
    return "'false'";
  case TokenKind::KwIsNone:
    return "'is_none'";
  case TokenKind::KwSend:
    return "'send'";
  case TokenKind::KwRecv:
    return "'recv'";
  case TokenKind::KwConsumes:
    return "'consumes'";
  case TokenKind::KwPinned:
    return "'pinned'";
  case TokenKind::KwAfter:
    return "'after'";
  case TokenKind::KwBefore:
    return "'before'";
  case TokenKind::KwResult:
    return "'result'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::Semicolon:
    return "';'";
  case TokenKind::Colon:
    return "':'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Dot:
    return "'.'";
  case TokenKind::Question:
    return "'?'";
  case TokenKind::Tilde:
    return "'~'";
  case TokenKind::Assign:
    return "'='";
  case TokenKind::EqEq:
    return "'=='";
  case TokenKind::NotEq:
    return "'!='";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::LessEq:
    return "'<='";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::GreaterEq:
    return "'>='";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::Bang:
    return "'!'";
  case TokenKind::AmpAmp:
    return "'&&'";
  case TokenKind::PipePipe:
    return "'||'";
  case TokenKind::EndOfFile:
    return "end of file";
  case TokenKind::Error:
    return "invalid token";
  }
  return "?";
}

namespace {

const std::unordered_map<std::string_view, TokenKind> &keywordTable() {
  static const std::unordered_map<std::string_view, TokenKind> Table = {
      {"struct", TokenKind::KwStruct},
      {"def", TokenKind::KwDef},
      {"let", TokenKind::KwLet},
      {"some", TokenKind::KwSome},
      {"none", TokenKind::KwNone},
      {"in", TokenKind::KwIn},
      {"else", TokenKind::KwElse},
      {"if", TokenKind::KwIf},
      {"while", TokenKind::KwWhile},
      {"disconnected", TokenKind::KwDisconnected},
      {"new", TokenKind::KwNew},
      {"iso", TokenKind::KwIso},
      {"unit", TokenKind::KwUnit},
      {"int", TokenKind::KwInt},
      {"bool", TokenKind::KwBool},
      {"true", TokenKind::KwTrue},
      {"false", TokenKind::KwFalse},
      {"is_none", TokenKind::KwIsNone},
      {"send", TokenKind::KwSend},
      {"recv", TokenKind::KwRecv},
      {"consumes", TokenKind::KwConsumes},
      {"pinned", TokenKind::KwPinned},
      {"after", TokenKind::KwAfter},
      {"before", TokenKind::KwBefore},
      {"result", TokenKind::KwResult},
  };
  return Table;
}

/// Streaming lexer over one source buffer.
class LexerImpl {
public:
  LexerImpl(std::string_view Source, DiagnosticEngine &Diags)
      : Source(Source), Diags(Diags) {}

  std::vector<Token> run() {
    std::vector<Token> Tokens;
    for (;;) {
      Token Tok = next();
      Tokens.push_back(Tok);
      if (Tok.is(TokenKind::EndOfFile))
        break;
    }
    return Tokens;
  }

private:
  bool atEnd() const { return Pos >= Source.size(); }
  char peek() const { return atEnd() ? '\0' : Source[Pos]; }
  char peekAhead() const {
    return Pos + 1 < Source.size() ? Source[Pos + 1] : '\0';
  }

  char advance() {
    char C = Source[Pos++];
    if (C == '\n') {
      ++Line;
      Column = 1;
    } else {
      ++Column;
    }
    return C;
  }

  void skipTrivia() {
    for (;;) {
      if (atEnd())
        return;
      char C = peek();
      if (std::isspace(static_cast<unsigned char>(C))) {
        advance();
        continue;
      }
      if (C == '/' && peekAhead() == '/') {
        while (!atEnd() && peek() != '\n')
          advance();
        continue;
      }
      return;
    }
  }

  Token make(TokenKind Kind, size_t Start, SourceLoc Loc) {
    return Token{Kind, Source.substr(Start, Pos - Start), 0, Loc};
  }

  Token next() {
    skipTrivia();
    SourceLoc Loc{Line, Column};
    if (atEnd())
      return Token{TokenKind::EndOfFile, {}, 0, Loc};

    size_t Start = Pos;
    char C = advance();

    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      while (!atEnd() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                          peek() == '_'))
        advance();
      std::string_view Text = Source.substr(Start, Pos - Start);
      auto It = keywordTable().find(Text);
      TokenKind Kind =
          It != keywordTable().end() ? It->second : TokenKind::Identifier;
      return Token{Kind, Text, 0, Loc};
    }

    if (std::isdigit(static_cast<unsigned char>(C))) {
      while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
        advance();
      Token Tok = make(TokenKind::IntLiteral, Start, Loc);
      int64_t Value = 0;
      for (char Digit : Tok.Text) {
        if (Value > (INT64_MAX - (Digit - '0')) / 10) {
          Diags.error("integer literal overflows 64 bits", Loc);
          return Token{TokenKind::Error, Tok.Text, 0, Loc};
        }
        Value = Value * 10 + (Digit - '0');
      }
      Tok.IntValue = Value;
      return Tok;
    }

    auto Single = [&](TokenKind Kind) { return make(Kind, Start, Loc); };
    auto Pair = [&](char Second, TokenKind Long, TokenKind Short) {
      if (peek() == Second) {
        advance();
        return make(Long, Start, Loc);
      }
      return make(Short, Start, Loc);
    };

    switch (C) {
    case '{':
      return Single(TokenKind::LBrace);
    case '}':
      return Single(TokenKind::RBrace);
    case '(':
      return Single(TokenKind::LParen);
    case ')':
      return Single(TokenKind::RParen);
    case ';':
      return Single(TokenKind::Semicolon);
    case ':':
      return Single(TokenKind::Colon);
    case ',':
      return Single(TokenKind::Comma);
    case '.':
      return Single(TokenKind::Dot);
    case '?':
      return Single(TokenKind::Question);
    case '~':
      return Single(TokenKind::Tilde);
    case '+':
      return Single(TokenKind::Plus);
    case '-':
      return Single(TokenKind::Minus);
    case '*':
      return Single(TokenKind::Star);
    case '/':
      return Single(TokenKind::Slash);
    case '%':
      return Single(TokenKind::Percent);
    case '=':
      return Pair('=', TokenKind::EqEq, TokenKind::Assign);
    case '!':
      return Pair('=', TokenKind::NotEq, TokenKind::Bang);
    case '<':
      return Pair('=', TokenKind::LessEq, TokenKind::Less);
    case '>':
      return Pair('=', TokenKind::GreaterEq, TokenKind::Greater);
    case '&':
      if (peek() == '&') {
        advance();
        return make(TokenKind::AmpAmp, Start, Loc);
      }
      break;
    case '|':
      if (peek() == '|') {
        advance();
        return make(TokenKind::PipePipe, Start, Loc);
      }
      break;
    default:
      break;
    }

    Diags.error(std::string("unexpected character '") + C + "'", Loc);
    return make(TokenKind::Error, Start, Loc);
  }

  std::string_view Source;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Column = 1;
};

} // namespace

std::vector<Token> fearless::lex(std::string_view Source,
                                 DiagnosticEngine &Diags) {
  return LexerImpl(Source, Diags).run();
}
