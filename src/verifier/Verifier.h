//===- verifier/Verifier.h - Independent derivation checking ----*- C++ -*-===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper implements its type system as a prover–verifier pair: an
/// OCaml prover searches for derivations, and a Coq verifier re-checks
/// them, so the search heuristics need not be trusted (§5). This module
/// plays the verifier's role for our C++ prover: it walks an emitted
/// derivation and independently re-validates, without re-running any
/// search:
///
///  - well-formedness (§4.3) of every recorded context,
///  - every virtual transformation and framing step (V1–V5, F-rules):
///    the step's Before/After pair must be an exact legal instance,
///    recomputed here from first principles,
///  - local facts of the load-bearing expression rules (T2 variable
///    capability, T5 tracked-target presence, T7 tracking update, T16
///    region consumption, T10/T17 region freshness),
///  - conformance of the root's final context to the function signature's
///    declared output (up to region renaming).
///
/// A verifier failure means the prover produced an inadmissible
/// derivation — a checker bug, not a program error.
///
//===----------------------------------------------------------------------===//

#ifndef FEARLESS_VERIFIER_VERIFIER_H
#define FEARLESS_VERIFIER_VERIFIER_H

#include "checker/Checker.h"
#include "support/Expected.h"

namespace fearless {

/// Statistics from one verification run.
struct VerifyStats {
  size_t StepsChecked = 0;
  size_t VirtualStepsChecked = 0;
};

/// Re-validates the derivation of \p Fn against \p Program's declarations.
Expected<VerifyStats> verifyFunction(const CheckedProgram &Program,
                                     const CheckedFunction &Fn);

/// Verifies every function with a derivation. Returns aggregate stats.
Expected<VerifyStats> verifyProgram(const CheckedProgram &Program);

} // namespace fearless

#endif // FEARLESS_VERIFIER_VERIFIER_H
