//===- verifier/Verifier.cpp ----------------------------------------------===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//

#include "verifier/Verifier.h"

#include "regions/Canonical.h"

#include <cassert>
#include <set>

using namespace fearless;

namespace {

/// Walks a derivation re-validating each step.
class Verifier {
public:
  Verifier(const CheckedProgram &Program, const CheckedFunction &Fn)
      : Program(Program), Fn(Fn), Names(Program.Prog->Names) {}

  Expected<VerifyStats> run() {
    if (!Fn.Derivation)
      return fail("function has no derivation to verify");
    if (auto Err = verifyStep(*Fn.Derivation); !Err)
      return Err.takeFailure();
    // The root's final context must conform to the declared output.
    Contexts Final = Fn.Derivation->After;
    Contexts Output = Fn.Sig.Output;
    RegionId FinalResult = Fn.Derivation->ResultRegion;
    dropUnreachableRegions(Final, FinalResult);
    dropUnreachableRegions(Output, Fn.Sig.ResultRegion);
    if (!equivalentUpToRenaming(Final, FinalResult, Output,
                                Fn.Sig.ResultRegion))
      return fail("derivation's final context does not match the declared "
                  "signature output:\n  have: " +
                  toString(Final, Names) + "\n  want: " +
                  toString(Output, Names));
    return Stats;
  }

private:
  ExpectedVoid verifyStep(const DerivStep &Step) {
    ++Stats.StepsChecked;
    if (auto Problem = checkWellFormed(Step.Before, Names))
      return fail("ill-formed context before " + Step.Rule + ": " +
                  *Problem);
    if (auto Problem = checkWellFormed(Step.After, Names))
      return fail("ill-formed context after " + Step.Rule + ": " +
                  *Problem);

    if (Step.Rule == rules::V1Focus)
      return verifyFocus(Step);
    if (Step.Rule == rules::V2Unfocus)
      return verifyUnfocus(Step);
    if (Step.Rule == rules::V3Explore)
      return verifyExplore(Step);
    if (Step.Rule == rules::V4Retract)
      return verifyRetract(Step);
    if (Step.Rule == rules::V5Attach)
      return verifyAttach(Step);
    if (Step.Rule == rules::FDropRegion)
      return verifyDropRegion(Step);
    if (Step.Rule == rules::FPinRegion)
      return verifyPin(Step);

    // Expression steps: verify recursively, then rule-local facts.
    for (const auto &Child : Step.Children)
      if (auto Err = verifyStep(*Child); !Err)
        return Err;
    return verifyExprFacts(Step);
  }

  //===--------------------------------------------------------------------===
  // Virtual transformations: recompute the instance and compare exactly.
  //===--------------------------------------------------------------------===

  /// Finds the unique (region, var) whose tracking differs. Returns false
  /// if the diff is not a single-variable tracking change.
  static bool
  diffTrackedVars(const HeapCtx &Before, const HeapCtx &After,
                  RegionId &Region, Symbol &Var, bool &AddedInAfter) {
    // Collect (region, var) keys on both sides.
    std::set<std::pair<RegionId, Symbol>> BeforeKeys, AfterKeys;
    for (const auto &[R, Track] : Before.entries())
      for (const auto &[V, VT] : Track.Vars) {
        (void)VT;
        BeforeKeys.insert({R, V});
      }
    for (const auto &[R, Track] : After.entries())
      for (const auto &[V, VT] : Track.Vars) {
        (void)VT;
        AfterKeys.insert({R, V});
      }
    std::vector<std::pair<RegionId, Symbol>> OnlyBefore, OnlyAfter;
    for (const auto &Key : BeforeKeys)
      if (!AfterKeys.count(Key))
        OnlyBefore.push_back(Key);
    for (const auto &Key : AfterKeys)
      if (!BeforeKeys.count(Key))
        OnlyAfter.push_back(Key);
    if (OnlyBefore.size() + OnlyAfter.size() != 1)
      return false;
    AddedInAfter = !OnlyAfter.empty();
    std::tie(Region, Var) =
        AddedInAfter ? OnlyAfter.front() : OnlyBefore.front();
    return true;
  }

  ExpectedVoid verifyVStepEnd() {
    ++Stats.VirtualStepsChecked;
    return success();
  }

  ExpectedVoid verifyFocus(const DerivStep &Step) {
    RegionId Region;
    Symbol Var;
    bool Added = false;
    if (!diffTrackedVars(Step.Before.Heap, Step.After.Heap, Region, Var,
                         Added) ||
        !Added)
      return fail("V1-Focus: diff is not a single added tracked variable");
    const RegionTrack *BeforeTrack = Step.Before.Heap.lookup(Region);
    if (!BeforeTrack || !BeforeTrack->empty() || BeforeTrack->Pinned)
      return fail("V1-Focus: region was not empty and unpinned");
    const VarBinding *Binding = Step.Before.Vars.lookup(Var);
    if (!Binding || Binding->Region != Region ||
        !Binding->VarType.isStruct())
      return fail("V1-Focus: variable not bound to the focused region "
                  "with a struct type");
    // Recompute After.
    Contexts Expect = Step.Before;
    Expect.Heap.lookup(Region)->Vars.emplace(Var, VarTrack{});
    if (!(Expect == Step.After))
      return fail("V1-Focus: After context is not the exact instance");
    return verifyVStepEnd();
  }

  ExpectedVoid verifyUnfocus(const DerivStep &Step) {
    RegionId Region;
    Symbol Var;
    bool Added = false;
    if (!diffTrackedVars(Step.Before.Heap, Step.After.Heap, Region, Var,
                         Added) ||
        Added)
      return fail("V2-Unfocus: diff is not a single removed tracked "
                  "variable");
    const VarTrack *Track = Step.Before.Heap.trackedVar(Region, Var);
    if (!Track || !Track->Fields.empty())
      return fail("V2-Unfocus: variable still had tracked fields");
    Contexts Expect = Step.Before;
    Expect.Heap.lookup(Region)->Vars.erase(Var);
    if (!(Expect == Step.After))
      return fail("V2-Unfocus: After context is not the exact instance");
    return verifyVStepEnd();
  }

  /// Finds the unique (region, var, field) tracked-field diff.
  static bool diffTrackedFields(const HeapCtx &Before, const HeapCtx &After,
                                RegionId &Region, Symbol &Var,
                                Symbol &Field, RegionId &Target,
                                bool &AddedInAfter) {
    using Key = std::tuple<RegionId, Symbol, Symbol>;
    std::map<Key, RegionId> BeforeFields, AfterFields;
    auto Collect = [](const HeapCtx &H, std::map<Key, RegionId> &Out) {
      for (const auto &[R, Track] : H.entries())
        for (const auto &[V, VT] : Track.Vars)
          for (const auto &[F, T] : VT.Fields)
            Out[{R, V, F}] = T;
    };
    Collect(Before, BeforeFields);
    Collect(After, AfterFields);
    std::vector<std::pair<Key, RegionId>> OnlyBefore, OnlyAfter;
    for (const auto &[K, T] : BeforeFields)
      if (!AfterFields.count(K))
        OnlyBefore.push_back({K, T});
    for (const auto &[K, T] : AfterFields)
      if (!BeforeFields.count(K))
        OnlyAfter.push_back({K, T});
    if (OnlyBefore.size() + OnlyAfter.size() != 1)
      return false;
    AddedInAfter = !OnlyAfter.empty();
    const auto &[K, T] =
        AddedInAfter ? OnlyAfter.front() : OnlyBefore.front();
    std::tie(Region, Var, Field) = K;
    Target = T;
    return true;
  }

  ExpectedVoid verifyExplore(const DerivStep &Step) {
    RegionId Region, Target;
    Symbol Var, Field;
    bool Added = false;
    if (!diffTrackedFields(Step.Before.Heap, Step.After.Heap, Region, Var,
                           Field, Target, Added) ||
        !Added)
      return fail("V3-Explore: diff is not a single added tracked field");
    if (Step.Before.Heap.hasRegion(Target))
      return fail("V3-Explore: target region is not fresh");
    const VarTrack *Track = Step.Before.Heap.trackedVar(Region, Var);
    if (!Track || Track->Pinned)
      return fail("V3-Explore: variable untracked or pinned");
    Contexts Expect = Step.Before;
    Expect.Heap.trackedVar(Region, Var)->Fields[Field] = Target;
    Expect.Heap.addRegion(Target);
    if (!(Expect == Step.After))
      return fail("V3-Explore: After context is not the exact instance");
    return verifyVStepEnd();
  }

  ExpectedVoid verifyRetract(const DerivStep &Step) {
    RegionId Region, Target;
    Symbol Var, Field;
    bool Added = false;
    if (!diffTrackedFields(Step.Before.Heap, Step.After.Heap, Region, Var,
                           Field, Target, Added) ||
        Added)
      return fail("V4-Retract: diff is not a single removed tracked "
                  "field");
    const RegionTrack *TargetTrack = Step.Before.Heap.lookup(Target);
    if (!TargetTrack || !TargetTrack->empty() || TargetTrack->Pinned)
      return fail("V4-Retract: target region not present, empty, and "
                  "unpinned");
    Contexts Expect = Step.Before;
    Expect.Heap.trackedVar(Region, Var)->Fields.erase(Field);
    Expect.Heap.removeRegion(Target);
    if (!(Expect == Step.After))
      return fail("V4-Retract: After context is not the exact instance");
    return verifyVStepEnd();
  }

  ExpectedVoid verifyAttach(const DerivStep &Step) {
    // The removed region is the one present before and absent after.
    RegionId From;
    for (const auto &[R, Track] : Step.Before.Heap.entries()) {
      (void)Track;
      if (!Step.After.Heap.hasRegion(R)) {
        if (From.isValid())
          return fail("V5-Attach: more than one region disappeared");
        From = R;
      }
    }
    if (!From.isValid())
      return fail("V5-Attach: no region disappeared");
    // Find To: the region whose tracking gained From's variables, or any
    // region that From's references now point to. Recompute for every
    // candidate To and compare.
    for (const auto &[To, Track] : Step.After.Heap.entries()) {
      (void)Track;
      if (!Step.Before.Heap.hasRegion(To))
        continue;
      if (!Step.Before.Heap.canAttach(From, To))
        continue;
      Contexts Expect = Step.Before;
      Expect.Heap.attach(From, To);
      Expect.Vars.renameRegion(From, To);
      if (Expect == Step.After)
        return verifyVStepEnd();
    }
    return fail("V5-Attach: no legal attach target reproduces the After "
                "context");
  }

  ExpectedVoid verifyDropRegion(const DerivStep &Step) {
    RegionId Dropped;
    for (const auto &[R, Track] : Step.Before.Heap.entries()) {
      (void)Track;
      if (!Step.After.Heap.hasRegion(R)) {
        if (Dropped.isValid())
          return fail("F-Drop-Region: more than one region disappeared");
        Dropped = R;
      }
    }
    if (!Dropped.isValid())
      return fail("F-Drop-Region: no region disappeared");
    if (Step.Before.Heap.lookup(Dropped)->Pinned)
      return fail("F-Drop-Region: dropped region was pinned");
    Contexts Expect = Step.Before;
    Expect.Heap.removeRegion(Dropped);
    if (!(Expect == Step.After))
      return fail("F-Drop-Region: After context is not the exact "
                  "instance");
    return verifyVStepEnd();
  }

  ExpectedVoid verifyPin(const DerivStep &Step) {
    // A pin sets exactly one pin flag (region or tracked variable).
    size_t Diffs = 0;
    Contexts Expect = Step.Before;
    for (auto &[R, Track] : Step.Before.Heap.entries()) {
      const RegionTrack *AfterTrack = Step.After.Heap.lookup(R);
      if (!AfterTrack)
        return fail("F-Pin-Region: region disappeared");
      if (Track.Pinned != AfterTrack->Pinned) {
        if (Track.Pinned)
          return fail("F-Pin-Region: pin flag removed");
        Expect.Heap.lookup(R)->Pinned = true;
        ++Diffs;
      }
      for (auto &[V, VT] : Track.Vars) {
        const VarTrack *AfterVT = Step.After.Heap.trackedVar(R, V);
        if (!AfterVT)
          return fail("F-Pin-Region: tracked variable disappeared");
        if (VT.Pinned != AfterVT->Pinned) {
          if (VT.Pinned)
            return fail("F-Pin-Region: variable pin flag removed");
          Expect.Heap.trackedVar(R, V)->Pinned = true;
          ++Diffs;
        }
      }
    }
    if (Diffs != 1 || !(Expect == Step.After))
      return fail("F-Pin-Region: After context is not a single added pin");
    return verifyVStepEnd();
  }

  //===--------------------------------------------------------------------===
  // Expression-rule local facts
  //===--------------------------------------------------------------------===

  ExpectedVoid verifyExprFacts(const DerivStep &Step) {
    if (Step.Rule == "T2-Variable-Ref") {
      const auto *Var = dyn_cast<VarRefExpr>(Step.E);
      if (!Var)
        return fail("T2: step is not a variable reference");
      const VarBinding *Binding = Step.Before.Vars.lookup(Var->Name);
      if (!Binding)
        return fail("T2: variable not bound in Γ");
      if (Binding->VarType.isRegionful() &&
          !Step.Before.Heap.hasRegion(Binding->Region))
        return fail("T2: variable's region capability missing from H");
      if (!(Step.Before == Step.After))
        return fail("T2: variable reference must not change the context");
      return success();
    }
    if (Step.Rule == "T5-Isolated-Field-Reference") {
      const auto *Ref = dyn_cast<FieldRefExpr>(Step.E);
      if (!Ref || !isa<VarRefExpr>(Ref->Base.get()))
        return fail("T5: step is not an iso field read on a variable");
      Symbol Var = cast<VarRefExpr>(*Ref->Base).Name;
      auto Region = Step.After.Heap.trackingRegionOf(Var);
      if (!Region)
        return fail("T5: base variable is not tracked afterwards");
      const VarTrack *Track = Step.After.Heap.trackedVar(*Region, Var);
      auto It = Track->Fields.find(Ref->Field);
      if (It == Track->Fields.end())
        return fail("T5: field is not tracked afterwards");
      if (Step.ResultType.isRegionful() &&
          It->second != Step.ResultRegion)
        return fail("T5: result region is not the tracked target");
      if (!Step.After.Heap.hasRegion(It->second))
        return fail("T5: tracked target region missing from H");
      return success();
    }
    if (Step.Rule == "T7-Isolated-Field-Assignment") {
      const auto *Assign = dyn_cast<AssignFieldExpr>(Step.E);
      if (!Assign || !isa<VarRefExpr>(Assign->Base.get()))
        return fail("T7: step is not an iso field write on a variable");
      Symbol Var = cast<VarRefExpr>(*Assign->Base).Name;
      auto Region = Step.After.Heap.trackingRegionOf(Var);
      if (!Region)
        return fail("T7: base variable is not tracked afterwards");
      const VarTrack *Track = Step.After.Heap.trackedVar(*Region, Var);
      if (!Track->Fields.count(Assign->Field))
        return fail("T7: assigned field is not tracked afterwards");
      return success();
    }
    if (Step.Rule == "T16-Send") {
      // The operand child's result region must have left H.
      if (Step.Children.empty())
        return fail("T16: missing operand derivation");
      const DerivStep *Operand = nullptr;
      for (const auto &Child : Step.Children)
        if (Child->E)
          Operand = Child.get();
      if (!Operand)
        return fail("T16: missing operand derivation");
      if (Operand->ResultType.isRegionful() &&
          Step.After.Heap.hasRegion(Operand->ResultRegion))
        return fail("T16: sent region still present in H");
      return success();
    }
    if (Step.Rule == "T17-Receive" || Step.Rule == "T10-New-Loc") {
      if (Step.ResultType.isRegionful()) {
        if (!Step.After.Heap.hasRegion(Step.ResultRegion))
          return fail(Step.Rule + ": result region missing from H");
        if (Step.Before.Heap.hasRegion(Step.ResultRegion))
          return fail(Step.Rule + ": result region is not fresh");
      }
      return success();
    }
    if (Step.Rule == "T9-Function-Application") {
      const auto *Call = dyn_cast<CallExpr>(Step.E);
      if (!Call)
        return fail("T9: step is not a call");
      auto It = Program.Signatures.find(Call->Callee);
      if (It == Program.Signatures.end())
        return fail("T9: unknown callee");
      if (!(Step.ResultType == It->second.ReturnType))
        return fail("T9: result type does not match the signature");
      if (Step.ResultType.isRegionful() &&
          !Step.After.Heap.hasRegion(Step.ResultRegion))
        return fail("T9: result region missing from H");
      return success();
    }
    // Other rules: structural checks (well-formedness, children) already
    // ran; result-region sanity where applicable.
    if (Step.ResultType.isRegionful() && Step.ResultRegion.isValid() &&
        !Step.After.Heap.hasRegion(Step.ResultRegion))
      return fail(Step.Rule + ": result region missing from H");
    return success();
  }

  Failure fail(std::string Message) {
    return fearless::fail("verifier: " + Message +
                          (CurrentExpr.empty() ? "" : " [at " + CurrentExpr +
                                                          "]"));
  }

  const CheckedProgram &Program;
  const CheckedFunction &Fn;
  const Interner &Names;
  VerifyStats Stats;
  std::string CurrentExpr;
};

} // namespace

Expected<VerifyStats> fearless::verifyFunction(const CheckedProgram &Program,
                                               const CheckedFunction &Fn) {
  return Verifier(Program, Fn).run();
}

Expected<VerifyStats> fearless::verifyProgram(const CheckedProgram &Program) {
  VerifyStats Total;
  for (const auto &[Name, Fn] : Program.Functions) {
    (void)Name;
    if (!Fn.Derivation)
      continue;
    Expected<VerifyStats> Stats = verifyFunction(Program, Fn);
    if (!Stats)
      return Stats.takeFailure();
    Total.StepsChecked += Stats->StepsChecked;
    Total.VirtualStepsChecked += Stats->VirtualStepsChecked;
  }
  return Total;
}
