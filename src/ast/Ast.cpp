//===- ast/Ast.cpp --------------------------------------------------------===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//

#include "ast/Ast.h"

#include <algorithm>

using namespace fearless;

const char *fearless::toString(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return "+";
  case BinaryOp::Sub:
    return "-";
  case BinaryOp::Mul:
    return "*";
  case BinaryOp::Div:
    return "/";
  case BinaryOp::Mod:
    return "%";
  case BinaryOp::Eq:
    return "==";
  case BinaryOp::Ne:
    return "!=";
  case BinaryOp::Lt:
    return "<";
  case BinaryOp::Le:
    return "<=";
  case BinaryOp::Gt:
    return ">";
  case BinaryOp::Ge:
    return ">=";
  case BinaryOp::And:
    return "&&";
  case BinaryOp::Or:
    return "||";
  }
  return "?";
}

const char *fearless::toString(UnaryOp Op) {
  switch (Op) {
  case UnaryOp::Not:
    return "!";
  case UnaryOp::Neg:
    return "-";
  }
  return "?";
}

const FieldDecl *StructDecl::findField(Symbol FieldName) const {
  for (const FieldDecl &F : Fields)
    if (F.Name == FieldName)
      return &F;
  return nullptr;
}

const ParamDecl *FnDecl::findParam(Symbol ParamName) const {
  for (const ParamDecl &P : Params)
    if (P.Name == ParamName)
      return &P;
  return nullptr;
}

bool FnDecl::isConsumed(Symbol Param) const {
  return std::find(Consumes.begin(), Consumes.end(), Param) !=
         Consumes.end();
}

bool FnDecl::isPinned(Symbol Param) const {
  return std::find(Pinned.begin(), Pinned.end(), Param) != Pinned.end();
}

const StructDecl *Program::findStruct(Symbol Name) const {
  for (const StructDecl &S : Structs)
    if (S.Name == Name)
      return &S;
  return nullptr;
}

const FnDecl *Program::findFunction(Symbol Name) const {
  for (const FnDecl &F : Functions)
    if (F.Name == Name)
      return &F;
  return nullptr;
}
