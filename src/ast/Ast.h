//===- ast/Ast.h - Surface-language abstract syntax ------------*- C++ -*-===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The AST of the paper's core language (Fig. 6) plus the usable function
/// surface syntax of §4.9: struct declarations with `iso` fields, maybe
/// introduction/elimination, `if disconnected`, `send`/`recv`, and function
/// declarations with `consumes` / `pinned` / `after: a ~ b` annotations.
///
/// Nodes use an LLVM-style kind tag with classof; there is no RTTI.
///
//===----------------------------------------------------------------------===//

#ifndef FEARLESS_AST_AST_H
#define FEARLESS_AST_AST_H

#include "ast/Types.h"
#include "support/Diagnostics.h"
#include "support/Interner.h"

#include <cassert>
#include <memory>
#include <vector>

namespace fearless {

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

class Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Discriminator for the expression hierarchy.
enum class ExprKind {
  IntLit,
  BoolLit,
  UnitLit,
  VarRef,
  FieldRef,
  AssignVar,
  AssignField,
  Let,
  LetSome,
  If,
  IfDisconnected,
  While,
  Seq,
  New,
  SomeExpr,
  NoneLit,
  IsNone,
  Send,
  Recv,
  Call,
  Binary,
  Unary,
};

/// Base class of all expressions.
class Expr {
public:
  virtual ~Expr() = default;

  ExprKind kind() const { return Kind; }
  SourceLoc loc() const { return Loc; }

protected:
  Expr(ExprKind Kind, SourceLoc Loc) : Kind(Kind), Loc(Loc) {}

private:
  const ExprKind Kind;
  SourceLoc Loc;
};

/// LLVM-style checked downcast helpers.
template <typename T> bool isa(const Expr *E) { return T::classof(E); }
template <typename T> const T *dyn_cast(const Expr *E) {
  return T::classof(E) ? static_cast<const T *>(E) : nullptr;
}
template <typename T> T *dyn_cast(Expr *E) {
  return T::classof(E) ? static_cast<T *>(E) : nullptr;
}
template <typename T> const T &cast(const Expr &E) {
  assert(T::classof(&E) && "cast to wrong expression kind");
  return static_cast<const T &>(E);
}
template <typename T> T &cast(Expr &E) {
  assert(T::classof(&E) && "cast to wrong expression kind");
  return static_cast<T &>(E);
}

/// Integer literal.
class IntLitExpr : public Expr {
public:
  IntLitExpr(int64_t Value, SourceLoc Loc)
      : Expr(ExprKind::IntLit, Loc), Value(Value) {}
  int64_t Value;
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::IntLit;
  }
};

/// Boolean literal.
class BoolLitExpr : public Expr {
public:
  BoolLitExpr(bool Value, SourceLoc Loc)
      : Expr(ExprKind::BoolLit, Loc), Value(Value) {}
  bool Value;
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::BoolLit;
  }
};

/// The unit value, written `unit`.
class UnitLitExpr : public Expr {
public:
  explicit UnitLitExpr(SourceLoc Loc) : Expr(ExprKind::UnitLit, Loc) {}
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::UnitLit;
  }
};

/// A variable read.
class VarRefExpr : public Expr {
public:
  VarRefExpr(Symbol Name, SourceLoc Loc)
      : Expr(ExprKind::VarRef, Loc), Name(Name) {}
  Symbol Name;
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::VarRef;
  }
};

/// A field read `base.f`. `base` may itself be a field chain.
class FieldRefExpr : public Expr {
public:
  FieldRefExpr(ExprPtr Base, Symbol Field, SourceLoc Loc)
      : Expr(ExprKind::FieldRef, Loc), Base(std::move(Base)), Field(Field) {}
  ExprPtr Base;
  Symbol Field;
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::FieldRef;
  }
};

/// A variable assignment `x = e`; evaluates to unit.
class AssignVarExpr : public Expr {
public:
  AssignVarExpr(Symbol Name, ExprPtr Value, SourceLoc Loc)
      : Expr(ExprKind::AssignVar, Loc), Name(Name), Value(std::move(Value)) {}
  Symbol Name;
  ExprPtr Value;
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::AssignVar;
  }
};

/// A field assignment `base.f = e`; evaluates to unit.
class AssignFieldExpr : public Expr {
public:
  AssignFieldExpr(ExprPtr Base, Symbol Field, ExprPtr Value, SourceLoc Loc)
      : Expr(ExprKind::AssignField, Loc), Base(std::move(Base)),
        Field(Field), Value(std::move(Value)) {}
  ExprPtr Base;
  Symbol Field;
  ExprPtr Value;
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::AssignField;
  }
};

/// `let x [: T] = init in body`. The parser desugars the statement form
/// `let x = init; rest...` into this node with `rest` as the body. The
/// optional type ascription guides inference (e.g. `let x : node? =
/// none`).
class LetExpr : public Expr {
public:
  LetExpr(Symbol Name, Type Declared, ExprPtr Init, ExprPtr Body,
          SourceLoc Loc)
      : Expr(ExprKind::Let, Loc), Name(Name), Declared(Declared),
        Init(std::move(Init)), Body(std::move(Body)) {}
  Symbol Name;
  Type Declared; ///< Invalid when no ascription was written.
  ExprPtr Init;
  ExprPtr Body;
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Let; }
};

/// Maybe elimination: `let some(x) = scrut in { ... } else { ... }`.
class LetSomeExpr : public Expr {
public:
  LetSomeExpr(Symbol Name, ExprPtr Scrutinee, ExprPtr SomeBody,
              ExprPtr NoneBody, SourceLoc Loc)
      : Expr(ExprKind::LetSome, Loc), Name(Name),
        Scrutinee(std::move(Scrutinee)), SomeBody(std::move(SomeBody)),
        NoneBody(std::move(NoneBody)) {}
  Symbol Name;
  ExprPtr Scrutinee;
  ExprPtr SomeBody;
  ExprPtr NoneBody;
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::LetSome;
  }
};

/// `if (cond) { ... } else { ... }`. Else may be null (implicit unit).
class IfExpr : public Expr {
public:
  IfExpr(ExprPtr Cond, ExprPtr Then, ExprPtr Else, SourceLoc Loc)
      : Expr(ExprKind::If, Loc), Cond(std::move(Cond)),
        Then(std::move(Then)), Else(std::move(Else)) {}
  ExprPtr Cond;
  ExprPtr Then;
  ExprPtr Else; ///< May be null.
  static bool classof(const Expr *E) { return E->kind() == ExprKind::If; }
};

/// `if disconnected(a, b) { ... } else { ... }` — the paper's novel
/// dynamic region-split primitive (§2.2, T15). Both arguments must be
/// variables; the parser enforces this.
class IfDisconnectedExpr : public Expr {
public:
  IfDisconnectedExpr(Symbol VarA, Symbol VarB, ExprPtr Then, ExprPtr Else,
                     SourceLoc Loc)
      : Expr(ExprKind::IfDisconnected, Loc), VarA(VarA), VarB(VarB),
        Then(std::move(Then)), Else(std::move(Else)) {}
  Symbol VarA;
  Symbol VarB;
  ExprPtr Then;
  ExprPtr Else;
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::IfDisconnected;
  }
};

/// `while (cond) { ... }`; evaluates to unit.
class WhileExpr : public Expr {
public:
  WhileExpr(ExprPtr Cond, ExprPtr Body, SourceLoc Loc)
      : Expr(ExprKind::While, Loc), Cond(std::move(Cond)),
        Body(std::move(Body)) {}
  ExprPtr Cond;
  ExprPtr Body;
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::While;
  }
};

/// A block `{ e1; e2; ... }`; evaluates to the last expression. An empty
/// block or one with a trailing `;` yields unit (the parser appends a
/// UnitLitExpr in that case).
class SeqExpr : public Expr {
public:
  SeqExpr(std::vector<ExprPtr> Elems, SourceLoc Loc)
      : Expr(ExprKind::Seq, Loc), Elems(std::move(Elems)) {}
  std::vector<ExprPtr> Elems;
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Seq; }
};

/// Allocation `new S()` or `new S(e1, ..., en)`.
///
/// With no arguments, every field is default-initialized: maybe fields to
/// none, primitives to 0/false/unit, and non-maybe non-iso fields whose
/// type is S itself to a self-reference (matching the size-1 circular
/// doubly linked list of Fig. 3). Non-maybe `iso` fields have no default
/// and require the argument form, which supplies one initializer per
/// field in declaration order.
class NewExpr : public Expr {
public:
  NewExpr(Symbol StructName, std::vector<ExprPtr> Args, SourceLoc Loc)
      : Expr(ExprKind::New, Loc), StructName(StructName),
        Args(std::move(Args)) {}
  Symbol StructName;
  std::vector<ExprPtr> Args; ///< Empty, or one initializer per field.
  static bool classof(const Expr *E) { return E->kind() == ExprKind::New; }
};

/// Maybe introduction `some e`.
class SomeExpr : public Expr {
public:
  SomeExpr(ExprPtr Operand, SourceLoc Loc)
      : Expr(ExprKind::SomeExpr, Loc), Operand(std::move(Operand)) {}
  ExprPtr Operand;
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::SomeExpr;
  }
};

/// The empty maybe `none`. Its type is taken from the expected type at the
/// use site (assignment target, declared return type, ...).
class NoneLitExpr : public Expr {
public:
  explicit NoneLitExpr(SourceLoc Loc) : Expr(ExprKind::NoneLit, Loc) {}
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::NoneLit;
  }
};

/// `is_none(e)` — true when the maybe operand is none. Does not consume
/// region capabilities.
class IsNoneExpr : public Expr {
public:
  IsNoneExpr(ExprPtr Operand, SourceLoc Loc)
      : Expr(ExprKind::IsNone, Loc), Operand(std::move(Operand)) {}
  ExprPtr Operand;
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::IsNone;
  }
};

/// `send(e)` — blocking send of e's reachable subgraph to a thread
/// performing a matching `recv<T>()` (T16 / EC3).
class SendExpr : public Expr {
public:
  SendExpr(ExprPtr Operand, SourceLoc Loc)
      : Expr(ExprKind::Send, Loc), Operand(std::move(Operand)) {}
  ExprPtr Operand;
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Send; }
};

/// `recv<T>()` — blocking receive of a T (T17 / EC3).
class RecvExpr : public Expr {
public:
  RecvExpr(Type ValueType, SourceLoc Loc)
      : Expr(ExprKind::Recv, Loc), ValueType(ValueType) {}
  Type ValueType;
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Recv; }
};

/// A call `f(e1, ..., en)`.
class CallExpr : public Expr {
public:
  CallExpr(Symbol Callee, std::vector<ExprPtr> Args, SourceLoc Loc)
      : Expr(ExprKind::Call, Loc), Callee(Callee), Args(std::move(Args)) {}
  Symbol Callee;
  std::vector<ExprPtr> Args;
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Call; }
};

enum class BinaryOp {
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  And,
  Or,
};

/// Returns the operator spelling, e.g. "+".
const char *toString(BinaryOp Op);

/// An arithmetic / comparison / logical binary operation on primitives.
class BinaryExpr : public Expr {
public:
  BinaryExpr(BinaryOp Op, ExprPtr Lhs, ExprPtr Rhs, SourceLoc Loc)
      : Expr(ExprKind::Binary, Loc), Op(Op), Lhs(std::move(Lhs)),
        Rhs(std::move(Rhs)) {}
  BinaryOp Op;
  ExprPtr Lhs;
  ExprPtr Rhs;
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::Binary;
  }
};

enum class UnaryOp { Not, Neg };

/// Returns the operator spelling, e.g. "!".
const char *toString(UnaryOp Op);

/// `!e` or `-e`.
class UnaryExpr : public Expr {
public:
  UnaryExpr(UnaryOp Op, ExprPtr Operand, SourceLoc Loc)
      : Expr(ExprKind::Unary, Loc), Op(Op), Operand(std::move(Operand)) {}
  UnaryOp Op;
  ExprPtr Operand;
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::Unary;
  }
};

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

/// One struct field, possibly `iso` (transitively dominating reference).
struct FieldDecl {
  Symbol Name;
  Type FieldType;
  bool Iso = false;
  SourceLoc Loc;
};

/// `struct S { ... }`.
struct StructDecl {
  Symbol Name;
  std::vector<FieldDecl> Fields;
  SourceLoc Loc;

  /// Returns the field named \p Name, or nullptr.
  const FieldDecl *findField(Symbol Name) const;
};

/// A path usable in `after:` annotations: `p`, `p.f`, or `result`.
struct AnnotPath {
  bool IsResult = false;
  Symbol Base;  ///< Valid iff !IsResult.
  Symbol Field; ///< May be invalid (bare variable path).
  SourceLoc Loc;

  bool operator==(const AnnotPath &) const = default;
};

/// An `after: a ~ b` region-equality annotation (§4.9).
struct AfterRelation {
  AnnotPath Lhs;
  AnnotPath Rhs;
};

/// One function parameter.
struct ParamDecl {
  Symbol Name;
  Type ParamType;
  SourceLoc Loc;
};

/// `def f(params) : ret annotations { body }`.
struct FnDecl {
  Symbol Name;
  std::vector<ParamDecl> Params;
  Type ReturnType;
  std::vector<Symbol> Consumes;       ///< `consumes p` parameters.
  std::vector<Symbol> Pinned;         ///< `pinned p` parameters.
  std::vector<AfterRelation> Afters;  ///< `after: a ~ b, ...`.
  /// `before: a ~ b, ...` — the denoted regions coincide already at the
  /// call (and stay merged at output): aliased-argument function types
  /// such as the red-black tree's rotation helpers.
  std::vector<AfterRelation> Befores;
  ExprPtr Body;
  SourceLoc Loc;

  const ParamDecl *findParam(Symbol Name) const;
  bool isConsumed(Symbol Param) const;
  bool isPinned(Symbol Param) const;
};

/// A whole translation unit: interner plus declarations.
struct Program {
  Interner Names;
  std::vector<StructDecl> Structs;
  std::vector<FnDecl> Functions;

  const StructDecl *findStruct(Symbol Name) const;
  const FnDecl *findFunction(Symbol Name) const;
};

} // namespace fearless

#endif // FEARLESS_AST_AST_H
