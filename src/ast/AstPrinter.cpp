//===- ast/AstPrinter.cpp -------------------------------------------------===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//

#include "ast/AstPrinter.h"

#include <sstream>

using namespace fearless;

namespace {

/// Stateful printer carrying the interner.
class Printer {
public:
  explicit Printer(const Interner &Names) : Names(Names) {}

  void print(const Expr &E, std::ostream &OS) {
    switch (E.kind()) {
    case ExprKind::IntLit:
      OS << cast<IntLitExpr>(E).Value;
      return;
    case ExprKind::BoolLit:
      OS << (cast<BoolLitExpr>(E).Value ? "true" : "false");
      return;
    case ExprKind::UnitLit:
      OS << "unit";
      return;
    case ExprKind::VarRef:
      OS << Names.spelling(cast<VarRefExpr>(E).Name);
      return;
    case ExprKind::FieldRef: {
      const auto &F = cast<FieldRefExpr>(E);
      print(*F.Base, OS);
      OS << '.' << Names.spelling(F.Field);
      return;
    }
    case ExprKind::AssignVar: {
      const auto &A = cast<AssignVarExpr>(E);
      OS << Names.spelling(A.Name) << " = ";
      print(*A.Value, OS);
      return;
    }
    case ExprKind::AssignField: {
      const auto &A = cast<AssignFieldExpr>(E);
      print(*A.Base, OS);
      OS << '.' << Names.spelling(A.Field) << " = ";
      print(*A.Value, OS);
      return;
    }
    case ExprKind::Let: {
      const auto &L = cast<LetExpr>(E);
      OS << "let " << Names.spelling(L.Name);
      if (L.Declared.isValid())
        OS << " : " << toString(L.Declared, Names);
      OS << " = ";
      print(*L.Init, OS);
      OS << " in ";
      print(*L.Body, OS);
      return;
    }
    case ExprKind::LetSome: {
      const auto &L = cast<LetSomeExpr>(E);
      OS << "let some(" << Names.spelling(L.Name) << ") = ";
      print(*L.Scrutinee, OS);
      OS << " in ";
      print(*L.SomeBody, OS);
      OS << " else ";
      print(*L.NoneBody, OS);
      return;
    }
    case ExprKind::If: {
      const auto &I = cast<IfExpr>(E);
      OS << "if (";
      print(*I.Cond, OS);
      OS << ") ";
      print(*I.Then, OS);
      if (I.Else) {
        OS << " else ";
        print(*I.Else, OS);
      }
      return;
    }
    case ExprKind::IfDisconnected: {
      const auto &I = cast<IfDisconnectedExpr>(E);
      OS << "if disconnected(" << Names.spelling(I.VarA) << ", "
         << Names.spelling(I.VarB) << ") ";
      print(*I.Then, OS);
      OS << " else ";
      print(*I.Else, OS);
      return;
    }
    case ExprKind::While: {
      const auto &W = cast<WhileExpr>(E);
      OS << "while (";
      print(*W.Cond, OS);
      OS << ") ";
      print(*W.Body, OS);
      return;
    }
    case ExprKind::Seq: {
      const auto &S = cast<SeqExpr>(E);
      OS << "{ ";
      for (size_t I = 0; I < S.Elems.size(); ++I) {
        if (I != 0)
          OS << "; ";
        print(*S.Elems[I], OS);
      }
      OS << " }";
      return;
    }
    case ExprKind::New: {
      const auto &N = cast<NewExpr>(E);
      OS << "new " << Names.spelling(N.StructName) << '(';
      for (size_t I = 0; I < N.Args.size(); ++I) {
        if (I != 0)
          OS << ", ";
        print(*N.Args[I], OS);
      }
      OS << ')';
      return;
    }
    case ExprKind::SomeExpr: {
      OS << "some (";
      print(*cast<SomeExpr>(E).Operand, OS);
      OS << ')';
      return;
    }
    case ExprKind::NoneLit:
      OS << "none";
      return;
    case ExprKind::IsNone: {
      OS << "is_none(";
      print(*cast<IsNoneExpr>(E).Operand, OS);
      OS << ')';
      return;
    }
    case ExprKind::Send: {
      OS << "send(";
      print(*cast<SendExpr>(E).Operand, OS);
      OS << ')';
      return;
    }
    case ExprKind::Recv:
      OS << "recv<" << toString(cast<RecvExpr>(E).ValueType, Names)
         << ">()";
      return;
    case ExprKind::Call: {
      const auto &C = cast<CallExpr>(E);
      OS << Names.spelling(C.Callee) << '(';
      for (size_t I = 0; I < C.Args.size(); ++I) {
        if (I != 0)
          OS << ", ";
        print(*C.Args[I], OS);
      }
      OS << ')';
      return;
    }
    case ExprKind::Binary: {
      const auto &B = cast<BinaryExpr>(E);
      OS << '(';
      print(*B.Lhs, OS);
      OS << ' ' << toString(B.Op) << ' ';
      print(*B.Rhs, OS);
      OS << ')';
      return;
    }
    case ExprKind::Unary: {
      const auto &U = cast<UnaryExpr>(E);
      OS << toString(U.Op);
      print(*U.Operand, OS);
      return;
    }
    }
  }

private:
  const Interner &Names;
};

} // namespace

std::string fearless::printExpr(const Expr &E, const Interner &Names) {
  std::ostringstream OS;
  Printer(Names).print(E, OS);
  return OS.str();
}

std::string fearless::printProgram(const Program &P) {
  std::ostringstream OS;
  for (const StructDecl &S : P.Structs) {
    OS << "struct " << P.Names.spelling(S.Name) << " {\n";
    for (const FieldDecl &F : S.Fields) {
      OS << "  ";
      if (F.Iso)
        OS << "iso ";
      OS << P.Names.spelling(F.Name) << " : "
         << toString(F.FieldType, P.Names) << ";\n";
    }
    OS << "}\n\n";
  }
  for (const FnDecl &F : P.Functions) {
    OS << "def " << P.Names.spelling(F.Name) << '(';
    for (size_t I = 0; I < F.Params.size(); ++I) {
      if (I != 0)
        OS << ", ";
      OS << P.Names.spelling(F.Params[I].Name) << " : "
         << toString(F.Params[I].ParamType, P.Names);
    }
    OS << ") : " << toString(F.ReturnType, P.Names);
    for (Symbol C : F.Consumes)
      OS << " consumes " << P.Names.spelling(C);
    for (Symbol Pn : F.Pinned)
      OS << " pinned " << P.Names.spelling(Pn);
    auto PrintPath = [&](const AnnotPath &Path) {
      if (Path.IsResult) {
        OS << "result";
        return;
      }
      OS << P.Names.spelling(Path.Base);
      if (Path.Field.isValid())
        OS << '.' << P.Names.spelling(Path.Field);
    };
    auto PrintRels = [&](const char *Keyword,
                         const std::vector<AfterRelation> &Rels) {
      if (Rels.empty())
        return;
      OS << ' ' << Keyword << ": ";
      for (size_t I = 0; I < Rels.size(); ++I) {
        if (I != 0)
          OS << ", ";
        PrintPath(Rels[I].Lhs);
        OS << " ~ ";
        PrintPath(Rels[I].Rhs);
      }
    };
    PrintRels("before", F.Befores);
    PrintRels("after", F.Afters);
    OS << ' ' << printExpr(*F.Body, P.Names) << "\n\n";
  }
  return OS.str();
}
