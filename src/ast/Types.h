//===- ast/Types.h - Surface-language types --------------------*- C++ -*-===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The type grammar of the surface language: unit, int, bool, named struct
/// types, and "maybe" types written `T?`. Maybe wraps a base type exactly
/// once (the paper's examples never nest `?`, and sema rejects nesting).
///
//===----------------------------------------------------------------------===//

#ifndef FEARLESS_AST_TYPES_H
#define FEARLESS_AST_TYPES_H

#include "support/Interner.h"

#include <string>

namespace fearless {

/// A surface-language type. Structs are referenced by interned name;
/// resolution to a StructDecl happens in sema.
struct Type {
  enum class Base { Invalid, Unit, Int, Bool, Struct };

  Base BaseKind = Base::Invalid;
  Symbol StructName; ///< Valid iff BaseKind == Base::Struct.
  bool Maybe = false;

  static Type invalid() { return Type{}; }
  static Type unitTy() { return Type{Base::Unit, Symbol{}, false}; }
  static Type intTy() { return Type{Base::Int, Symbol{}, false}; }
  static Type boolTy() { return Type{Base::Bool, Symbol{}, false}; }
  static Type structTy(Symbol Name) {
    return Type{Base::Struct, Name, false};
  }

  bool isValid() const { return BaseKind != Base::Invalid; }
  bool isStruct() const { return BaseKind == Base::Struct && !Maybe; }
  bool isMaybe() const { return Maybe; }

  /// True for types whose values are heap references and therefore carry a
  /// region: struct and maybe-struct types. Primitives (and maybes of
  /// primitives) are copied values without regions.
  bool isRegionful() const { return BaseKind == Base::Struct; }

  /// The type with the maybe layer added; requires !Maybe.
  Type asMaybe() const;
  /// The type with the maybe layer removed; requires Maybe.
  Type stripMaybe() const;

  bool operator==(const Type &) const = default;
  auto operator<=>(const Type &) const = default;
};

/// Renders a type using \p Names for struct spellings, e.g. "sll_node?".
std::string toString(const Type &Ty, const Interner &Names);

} // namespace fearless

#endif // FEARLESS_AST_TYPES_H
