//===- ast/AstPrinter.h - Pretty-print the AST -----------------*- C++ -*-===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders expressions and declarations back to the surface syntax. Used in
/// diagnostics, derivation dumps, and tests (round-trip checks).
///
//===----------------------------------------------------------------------===//

#ifndef FEARLESS_AST_ASTPRINTER_H
#define FEARLESS_AST_ASTPRINTER_H

#include "ast/Ast.h"

#include <string>

namespace fearless {

/// Renders \p E in surface syntax (single line, fully parenthesized where
/// needed).
std::string printExpr(const Expr &E, const Interner &Names);

/// Renders a whole program, one declaration per block.
std::string printProgram(const Program &P);

} // namespace fearless

#endif // FEARLESS_AST_ASTPRINTER_H
