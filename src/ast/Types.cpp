//===- ast/Types.cpp ------------------------------------------------------===//
//
// Part of the fearless-concurrency reproduction.
//
//===----------------------------------------------------------------------===//

#include "ast/Types.h"

#include <cassert>

using namespace fearless;

Type Type::asMaybe() const {
  assert(!Maybe && "maybe types do not nest");
  Type Result = *this;
  Result.Maybe = true;
  return Result;
}

Type Type::stripMaybe() const {
  assert(Maybe && "stripMaybe on a non-maybe type");
  Type Result = *this;
  Result.Maybe = false;
  return Result;
}

std::string fearless::toString(const Type &Ty, const Interner &Names) {
  std::string Out;
  switch (Ty.BaseKind) {
  case Type::Base::Invalid:
    Out = "<invalid>";
    break;
  case Type::Base::Unit:
    Out = "unit";
    break;
  case Type::Base::Int:
    Out = "int";
    break;
  case Type::Base::Bool:
    Out = "bool";
    break;
  case Type::Base::Struct:
    Out = Names.spelling(Ty.StructName);
    break;
  }
  if (Ty.Maybe)
    Out += '?';
  return Out;
}
